// Tests for the real-threads runtime (src/rt/): mailbox FIFO and MPSC
// stress (the TSan targets), cross-engine rng parity, generic actors on
// real threads, crash semantics, the full RtScenario acceptance run, the
// rt fuzz sweep (monitor agreement on every run) and replay determinism.
//
// All tests carry the ctest label `rt`; CI runs them under TSan and
// ASan+UBSan. Horizons are sized for wall-clock runs: ticks here are
// 100 µs (or less in the tight tests), so a 3000-tick scenario is ~0.3 s.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "obs/monitors.hpp"
#include "rt/arq.hpp"
#include "rt/dining_driver.hpp"
#include "rt/mailbox.hpp"
#include "rt/recorder.hpp"
#include "rt/replay.hpp"
#include "rt/runtime.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/payload.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

Message make_msg(ProcessId from, std::uint64_t seq) {
  Message m;
  m.from = from;
  m.to = 0;
  m.layer = MsgLayer::kOther;
  m.seq = seq;
  return m;
}

// ---------------------------------------------------------------- mailbox

class MailboxKindTest : public ::testing::TestWithParam<ekbd::rt::MailboxKind> {};

TEST_P(MailboxKindTest, FifoSingleThread) {
  auto mb = ekbd::rt::make_mailbox(GetParam(), 8);
  EXPECT_FALSE(mb->maybe_nonempty());
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mb->try_push(make_msg(1, i)));
  }
  EXPECT_FALSE(mb->try_push(make_msg(1, 99)));  // full
  EXPECT_TRUE(mb->maybe_nonempty());
  Message out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mb->try_pop(out));
    EXPECT_EQ(out.seq, i);
  }
  EXPECT_FALSE(mb->try_pop(out));
  EXPECT_FALSE(mb->maybe_nonempty());
  // Slots recycle: a full lap later the ring still works.
  ASSERT_TRUE(mb->try_push(make_msg(1, 100)));
  ASSERT_TRUE(mb->try_pop(out));
  EXPECT_EQ(out.seq, 100u);
}

TEST(MailboxTest, CapacityRoundsUpToPowerOfTwo) {
  ekbd::rt::MpscRingMailbox mb(100);
  EXPECT_EQ(mb.capacity(), 128u);
  EXPECT_EQ(ekbd::rt::MpscRingMailbox(1).capacity(), 2u);  // minimum 2
  EXPECT_EQ(ekbd::rt::MpscRingMailbox(2).capacity(), 2u);
  EXPECT_EQ(ekbd::rt::MpscRingMailbox(3).capacity(), 4u);
  EXPECT_EQ(ekbd::rt::MpscRingMailbox(64).capacity(), 64u);  // exact power stays
  EXPECT_EQ(ekbd::rt::MpscRingMailbox(65).capacity(), 128u);
}

// Batched drain edge cases: empty pop_n, partial batches, full-ring
// backpressure with slot recycling, and cursor wraparound across many
// laps of a small ring.
TEST_P(MailboxKindTest, PopNDrainsFifoAcrossWraparoundAndBackpressure) {
  auto mb = ekbd::rt::make_mailbox(GetParam(), 8);
  Message out[8];
  EXPECT_EQ(mb->pop_n(out, 8), 0u);  // empty drain is a no-op

  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;

  // Partial batches: 6 in, two drains of at-most 4 → 4 then 2.
  for (int k = 0; k < 6; ++k) ASSERT_TRUE(mb->try_push(make_msg(1, pushed++)));
  ASSERT_EQ(mb->pop_n(out, 4), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].seq, popped++);
  ASSERT_EQ(mb->pop_n(out, 4), 2u);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(out[i].seq, popped++);

  // Full-ring backpressure: fill to capacity, verify refusal, free exactly
  // three slots with a batched drain, verify exactly three pushes fit.
  while (mb->try_push(make_msg(1, pushed))) ++pushed;
  EXPECT_FALSE(mb->try_push(make_msg(1, 999'999)));
  ASSERT_EQ(mb->pop_n(out, 3), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].seq, popped++);
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(mb->try_push(make_msg(1, pushed++)));
  EXPECT_FALSE(mb->try_push(make_msg(1, 999'999)));

  // Wraparound: many laps of the 8-slot ring (full at this point) with
  // alternating batch sizes so drains straddle the boundary at varying
  // offsets; FIFO must hold the whole way.
  for (int lap = 0; lap < 50; ++lap) {
    const std::size_t n = mb->pop_n(out, (lap % 2 == 0) ? 5 : 3);
    ASSERT_GT(n, 0u);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i].seq, popped++);
    for (std::size_t i = 0; i < n; ++i) ASSERT_TRUE(mb->try_push(make_msg(1, pushed++)));
  }
  while (true) {
    const std::size_t n = mb->pop_n(out, 8);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i].seq, popped++);
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_FALSE(mb->maybe_nonempty());
}

// The TSan target for the batched drain: producers race try_push against a
// consumer draining in bursts; per-producer FIFO must survive the batch
// cursor's once-per-batch publication.
TEST_P(MailboxKindTest, MpscStressBatchedDrainPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10'000;
  auto mb = ekbd::rt::make_mailbox(GetParam(), 64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!mb->try_push(make_msg(static_cast<ProcessId>(p), i))) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::uint64_t next_seq[kProducers] = {};
  std::uint64_t total = 0;
  Message buf[16];
  while (total < kProducers * kPerProducer) {
    const std::size_t n = mb->pop_n(buf, 16);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = static_cast<std::size_t>(buf[i].from);
      ASSERT_EQ(buf[i].seq, next_seq[p]) << "per-producer FIFO broken for producer " << p;
      ++next_seq[p];
    }
    total += n;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(mb->pop_n(buf, 16), 0u);
}

// The TSan stress target: many producers, one consumer, per-producer FIFO.
TEST_P(MailboxKindTest, MpscStressPerProducerFifo) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 20'000;
  auto mb = ekbd::rt::make_mailbox(GetParam(), 256);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!mb->try_push(make_msg(static_cast<ProcessId>(p), i))) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::uint64_t next_seq[kProducers] = {};
  std::uint64_t total = 0;
  Message out;
  while (total < kProducers * kPerProducer) {
    if (!mb->try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::size_t>(out.from);
    ASSERT_EQ(out.seq, next_seq[p]) << "per-producer FIFO broken for producer " << p;
    ++next_seq[p];
    ++total;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(mb->try_pop(out));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MailboxKindTest,
                         ::testing::Values(ekbd::rt::MailboxKind::kLockFree,
                                           ekbd::rt::MailboxKind::kMutex),
                         [](const auto& info) {
                           return std::string(ekbd::rt::to_string(info.param));
                         });

// -------------------------------------------------------------- rng parity

// The TransportIface contract: actor_rng(p) derives identically in every
// engine — Rng(seed).fork(p + 1) — so seeded protocol decisions replay
// across engines.
TEST(RtRuntimeTest, ActorRngMatchesSimulator) {
  constexpr std::uint64_t kSeed = 123457;
  ekbd::sim::Simulator sim(kSeed);
  ekbd::rt::Recorder rec;
  ekbd::rt::Options opt;
  opt.seed = kSeed;
  ekbd::rt::Runtime rt(opt, rec);

  class Idle final : public ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };
  for (int i = 0; i < 3; ++i) {
    sim.add_actor(std::make_unique<Idle>());
    rt.add_actor(std::make_unique<Idle>());
  }
  for (ProcessId p = 0; p < 3; ++p) {
    for (int draw = 0; draw < 64; ++draw) {
      ASSERT_EQ(sim.actor_rng(p).u64(), rt.actor_rng(p).u64())
          << "stream diverged at p=" << p << " draw=" << draw;
    }
  }
}

// ------------------------------------------------------ generic rt actors

// A pair of plain sim::Actors ping-ponging on real threads: proves the
// engine runs arbitrary actors (not just diners), that per-channel FIFO
// holds at the actor level, and that timers fire.
class PingPonger final : public ekbd::sim::Actor {
 public:
  PingPonger(ProcessId peer, int rounds) : peer_(peer), rounds_(rounds) {}

  void on_start() override {
    if (id() < peer_) send_ping();  // lower id serves
  }

  void on_message(const Message& m) override {
    const auto* ping = m.as<ekbd::sim::Datum>();
    ASSERT_NE(ping, nullptr);
    // Per-channel FIFO: the round counters must arrive in order.
    EXPECT_EQ(ping->value, expected_round_);
    ++expected_round_;
    ++received_;
    if (received_ < rounds_) {
      // Reply after a short timer, exercising the timer path.
      reply_armed_ = set_timer(1);
    }
  }

  void on_timer(ekbd::sim::TimerId id) override {
    if (id == reply_armed_) send_ping();
  }

  [[nodiscard]] int received() const { return received_; }

 private:
  void send_ping() {
    ekbd::sim::Datum p;
    p.value = sent_++;
    send(peer_, p, MsgLayer::kOther);
  }

  ProcessId peer_;
  int rounds_;
  std::int64_t sent_ = 0;
  int received_ = 0;
  std::int64_t expected_round_ = 0;
  ekbd::sim::TimerId reply_armed_ = 0;
};

TEST(RtRuntimeTest, GenericActorsPingPongWithTimers) {
  ekbd::rt::Recorder rec;
  ekbd::rt::Options opt;
  opt.seed = 7;
  opt.tick_ns = 50'000;  // 50 µs ticks: timers fire fast
  ekbd::rt::Runtime rt(opt, rec);
  auto* a = rt.make_actor<PingPonger>(1, 50);
  auto* b = rt.make_actor<PingPonger>(0, 50);
  rt.run_for(2'000);
  EXPECT_GE(a->received() + b->received(), 50);
  // Every recorded send was either delivered or is still in flight; the
  // books never go negative (agreement with the recorder's network).
  EXPECT_GE(rec.network().total_sent(MsgLayer::kOther), 50u);
}

// ---------------------------------------------------------------- crashes

class CrashProbe final : public ekbd::sim::Actor {
 public:
  void on_message(const Message&) override { ++handled_; }
  void on_crash() override { crashed_flag_ = true; }
  [[nodiscard]] int handled() const { return handled_; }
  [[nodiscard]] bool saw_crash() const { return crashed_flag_; }

 private:
  int handled_ = 0;
  bool crashed_flag_ = false;
};

class Flooder final : public ekbd::sim::Actor {
 public:
  explicit Flooder(ProcessId target) : target_(target) {}
  void on_start() override { timer_ = set_timer(5); }
  void on_message(const Message&) override {}
  void on_timer(ekbd::sim::TimerId) override {
    send(target_, ekbd::core::Ping{}, MsgLayer::kOther);
    timer_ = set_timer(5);
  }

 private:
  ProcessId target_;
  ekbd::sim::TimerId timer_ = 0;
};

TEST(RtRuntimeTest, CrashStopsHandlersAndDropsDeliveries) {
  ekbd::sim::EventLog log;
  ekbd::rt::Recorder rec;
  rec.set_event_log(&log);
  ekbd::rt::Options opt;
  opt.seed = 11;
  opt.tick_ns = 50'000;
  ekbd::rt::Runtime rt(opt, rec);
  auto* victim = rt.make_actor<CrashProbe>();
  rt.make_actor<Flooder>(0);
  rt.schedule_crash(0, 500);
  rt.run_for(1'500);

  EXPECT_TRUE(rt.crashed(0));
  EXPECT_TRUE(victim->saw_crash());
  EXPECT_GE(rt.crash_time(0), 500);
  ASSERT_EQ(log.count(ekbd::sim::LoggedEvent::Kind::kCrash), 1u);
  // The corpse keeps draining: messages sent at it after the crash are
  // recorded as kDrop, never handled.
  EXPECT_GT(log.count(ekbd::sim::LoggedEvent::Kind::kDrop), 0u);
  bool saw_drop_after_crash = false;
  Time crash_at = -1;
  for (const auto& ev : log.events()) {
    if (ev.kind == ekbd::sim::LoggedEvent::Kind::kCrash) crash_at = ev.at;
    if (ev.kind == ekbd::sim::LoggedEvent::Kind::kDeliver && ev.to == 0) {
      EXPECT_LE(ev.at, crash_at < 0 ? ev.at : crash_at)
          << "a delivery to the victim was handled after its crash";
    }
    if (ev.kind == ekbd::sim::LoggedEvent::Kind::kDrop && crash_at >= 0) {
      saw_drop_after_crash = true;
    }
  }
  EXPECT_TRUE(saw_drop_after_crash);
}

// ------------------------------------------------------------- rt scenario

ekbd::scenario::Config rt_config(std::uint64_t seed) {
  ekbd::scenario::Config cfg;
  cfg.engine = ekbd::scenario::Engine::kRt;
  cfg.seed = seed;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kHeartbeat;
  cfg.observability = true;
  cfg.rt_tick_ns = 100'000;
  cfg.run_for = 3'000;  // 0.3 s wall
  return cfg;
}

// The PR's acceptance scenario: a crash-faulted lossy dining run on 8 OS
// threads with live monitors — zero monitor agreement failures, and the
// crash victims' neighbors keep eating (wait-freedom past the fault).
TEST(RtScenarioTest, CrashFaultedLossyDiningOnEightThreads) {
  ekbd::scenario::Config cfg = rt_config(42);
  cfg.net_mode = ekbd::scenario::NetMode::kLossy;  // detector-layer drop/dup
  cfg.crashes = {{2, 800}, {5, 1'200}};
  ekbd::scenario::RtScenario s(cfg);
  s.run();

  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_TRUE(s.runtime().crashed(2));
  EXPECT_TRUE(s.runtime().crashed(5));
  // The run made progress: somebody ate, and the trace is well-formed.
  EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
  const auto wf = s.wait_freedom(/*starvation_horizon=*/1'500);
  EXPECT_GT(wf.sessions_completed, 0u);
  // P1 holds outright (fork uniqueness is crash- and loss-proof here:
  // forks ride the reliable dining channels).
  EXPECT_TRUE(s.monitors()->forks().violations().empty());
}

// With the perfect oracle there are no false suspicions, so the paper's
// perpetual weak exclusion holds: the monitors must be spotless.
TEST(RtScenarioTest, PerfectDetectorRunsClean) {
  ekbd::scenario::Config cfg = rt_config(77);
  cfg.detector = ekbd::scenario::DetectorKind::kPerfect;
  cfg.crashes = {{3, 1'000}};
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_TRUE(s.monitors()->clean())
      << "exclusion violations under a perfect detector:\n"
      << s.trace().to_string();
  EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
}

// The mutex-baseline mailbox must behave identically (it exists to bisect
// suspected ring bugs).
TEST(RtScenarioTest, MutexMailboxBaseline) {
  ekbd::scenario::Config cfg = rt_config(99);
  cfg.rt_mutex_mailbox = true;
  cfg.n = 6;
  cfg.run_for = 2'000;
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
}

// rt fuzz sweep: seeds × {ideal, lossy} × {waitfree, chandy-misra}; the
// online monitors must agree with the post-hoc checkers on every run.
TEST(RtScenarioTest, FuzzSweepMonitorAgreementOnEveryRun) {
  std::vector<ekbd::scenario::Config> configs;
  for (std::uint64_t seed : {1001u, 2002u, 3003u}) {
    for (const bool lossy : {false, true}) {
      ekbd::scenario::Config cfg = rt_config(seed);
      cfg.n = 6;
      cfg.run_for = 1'500;
      if (lossy) {
        cfg.net_mode = ekbd::scenario::NetMode::kLossy;
        cfg.crashes = {{1, 600}};
      }
      configs.push_back(cfg);
      cfg.algorithm = ekbd::scenario::Algorithm::kChandyMisra;
      cfg.detector = ekbd::scenario::DetectorKind::kNever;
      cfg.crashes.clear();
      configs.push_back(cfg);
    }
  }
  ekbd::scenario::SweepOptions sweep;
  sweep.threads = 2;  // each job spawns n=6 actor threads of its own
  ekbd::scenario::run_rt_scenarios(
      configs, [](std::size_t i, ekbd::scenario::RtScenario& s) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_EQ(s.monitor_agreement(), "");
        EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
      },
      sweep);
}

// ----------------------------------------------------------------- replay

// A concurrent run can't be re-executed, but its recorded linearization
// can: replaying the log + trace into fresh hubs must reproduce the live
// monitor verdicts exactly, every time.
TEST(RtReplayTest, ReplayReproducesLiveMonitorVerdicts) {
  ekbd::scenario::Config cfg = rt_config(1234);
  cfg.net_mode = ekbd::scenario::NetMode::kLossy;
  cfg.crashes = {{4, 900}};
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  ASSERT_NE(s.event_log(), nullptr);
  ASSERT_EQ(s.monitor_agreement(), "");

  ekbd::obs::MonitorHub replayed(s.graph());
  ekbd::rt::replay(*s.event_log(), s.trace(), replayed);
  EXPECT_EQ(replayed.to_json(), s.monitors()->to_json());
  // And against the post-hoc sources of truth, like the live hub.
  EXPECT_EQ(replayed.agreement_failures(s.trace(), s.graph(), s.recorder().network()), "");

  ekbd::obs::MonitorHub again(s.graph());
  ekbd::rt::replay(*s.event_log(), s.trace(), again);
  EXPECT_EQ(again.to_json(), replayed.to_json()) << "replay is not deterministic";
}

// ------------------------------------------------------------ ARQ over rt

// Regression for the FaultParams::include_dining gap: with an RtArq
// installed, dining traffic rides the ARQ while the drop/dup coins attack
// its physical kTransport segments — so the faults finally reach the
// dining layer on the rt engine without violating the paper's reliable-
// channel assumption, and the monitors must stay in full agreement.
TEST(RtArqTest, DiningTrafficRidesArqUnderDropDupCoins) {
  const ekbd::graph::ConflictGraph g = ekbd::graph::ring(6);
  const ekbd::graph::Coloring colors = ekbd::graph::welsh_powell_coloring(g);

  ekbd::rt::Recorder rec;
  ekbd::sim::EventLog log;
  ekbd::obs::MonitorHub hub(g);
  rec.set_event_log(&log);
  rec.set_event_sink(&hub);
  rec.set_watch(&hub);
  rec.set_trace_observer(&hub);

  ekbd::rt::Options opt;
  opt.seed = 606;
  opt.tick_ns = 100'000;
  opt.faults.drop_prob = 0.15;
  opt.faults.dup_prob = 0.1;
  opt.faults.include_dining = true;  // the knob under test
  ekbd::rt::Runtime rt(opt, rec);
  const ekbd::rt::RtPerfectDetector detector(rt);

  ekbd::rt::DiningDriver driver(rt, g);
  for (std::size_t v = 0; v < g.size(); ++v) {
    const auto p = static_cast<ProcessId>(v);
    std::vector<ProcessId> neighbors = g.neighbors(p);
    std::vector<int> ncolors;
    ncolors.reserve(neighbors.size());
    for (const ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
    driver.manage(rt.make_actor<ekbd::core::WaitFreeDiner>(
        std::move(neighbors), colors[v], std::move(ncolors), detector,
        ekbd::core::WaitFreeDiner::Options{}));
  }
  rt.schedule_crash(2, 800);

  ekbd::rt::RtArq arq(rt, ekbd::net::ReliableTransport::Params{}, &detector);
  rt.run_for(2'500);

  // The coins were live and the ARQ actually repaired their damage.
  EXPECT_GT(arq.inner().retransmissions(), 0u) << "drop coins never hit the ARQ";
  EXPECT_GT(arq.inner().duplicates_suppressed(), 0u) << "dup coins never hit the ARQ";
  // Dining traffic went through: logical dining books and physical
  // transport books both populated.
  EXPECT_GT(rec.network().total_sent(MsgLayer::kDining), 0u);
  EXPECT_GT(rec.network().total_sent(MsgLayer::kTransport), 0u);
  EXPECT_GT(rec.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);

  // Zero monitor disagreement: online monitors, post-hoc checkers and the
  // network books all tell the same story despite loss and duplication on
  // the dining layer's physical segments.
  EXPECT_EQ(hub.agreement_failures(rec.trace(), g, rec.network()), "");
}

// ------------------------------------------------------- shard invariance

// Shard counts under test: {1, 2, C, 2C} where C = hardware cores, plus n
// (which reproduces the old thread-per-actor layout exactly).
std::vector<std::size_t> shard_counts_under_test(std::size_t n) {
  const auto hw = static_cast<std::size_t>(
      std::max(2u, std::thread::hardware_concurrency()));
  std::vector<std::size_t> counts = {1, 2, hw, 2 * hw, n};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// The TransportIface contract must be shard-blind: actor_rng(p) derives
// from (seed, p) alone, so every shard count yields bit-identical
// per-actor streams.
TEST(RtShardTest, ActorRngStreamsIdenticalAcrossShardCounts) {
  constexpr std::uint64_t kSeed = 9091;
  constexpr int kActors = 6;

  class Idle final : public ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };

  std::vector<std::uint64_t> reference;
  for (const std::size_t shards : shard_counts_under_test(kActors)) {
    ekbd::rt::Recorder rec;
    ekbd::rt::Options opt;
    opt.seed = kSeed;
    opt.shards = shards;
    ekbd::rt::Runtime rt(opt, rec);
    for (int i = 0; i < kActors; ++i) rt.add_actor(std::make_unique<Idle>());

    std::vector<std::uint64_t> draws;
    for (ProcessId p = 0; p < kActors; ++p) {
      for (int d = 0; d < 32; ++d) draws.push_back(rt.actor_rng(p).u64());
    }
    if (reference.empty()) {
      reference = std::move(draws);
    } else {
      EXPECT_EQ(draws, reference) << "rng streams diverged at shards=" << shards;
    }
  }
}

// Full scenario sweep over shard counts with lossy coins and crash
// injection: every count must finish with zero monitor disagreement, the
// scheduled crashes executed, and real dining progress. (Traces differ —
// wall-clock interleavings are not reproducible — but every safety verdict
// and the crash plan must be shard-invariant.)
TEST(RtShardTest, MonitorAgreementAndCrashPlanInvariantAcrossShardCounts) {
  for (const std::size_t shards : shard_counts_under_test(8)) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ekbd::scenario::Config cfg = rt_config(4242);
    cfg.rt_shards = shards;
    cfg.net_mode = ekbd::scenario::NetMode::kLossy;
    cfg.crashes = {{2, 700}, {6, 1'100}};
    cfg.run_for = 2'000;
    ekbd::scenario::RtScenario s(cfg);
    s.run();

    EXPECT_EQ(s.runtime().shard_count(), std::min<std::size_t>(shards, cfg.n));
    EXPECT_EQ(s.monitor_agreement(), "");
    EXPECT_TRUE(s.runtime().crashed(2));
    EXPECT_TRUE(s.runtime().crashed(6));
    EXPECT_GE(s.runtime().crash_time(2), 700);
    EXPECT_GE(s.runtime().crash_time(6), 1'100);
    EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
  }
}

// ------------------------------------------------------- helping/stealing

// An actor that wedges its home shard's worker inside a dispatch.
class Staller final : public ekbd::sim::Actor {
 public:
  void on_start() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  void on_message(const Message&) override {}
};

// Ben-David–Blelloch-style helping, observably: with 2 shards, actor 0
// (home shard 0) wedges its worker for 50 ms while actors 1 (shard 1) and
// 2 (shard 0) ping-pong. Every dispatch of actor 2 during the stall must
// be claimed by shard 1 — work stealing — and actor 2's reply timers live
// in shard 0's registry, serviceable only through timer helping. The
// ping-pong completing during the stall proves dispatches of a stalled
// shard complete via neighbors.
TEST(RtShardTest, StalledShardDispatchesCompleteViaNeighbors) {
  ekbd::rt::Recorder rec;
  ekbd::rt::Options opt;
  opt.seed = 31337;
  opt.tick_ns = 50'000;  // 50 µs ticks; 50 ms stall = 1000 ticks
  opt.shards = 2;
  ekbd::rt::Runtime rt(opt, rec);
  rt.make_actor<Staller>();                 // id 0 → home shard 0
  auto* a = rt.make_actor<PingPonger>(2, 30);  // id 1 → home shard 1
  auto* b = rt.make_actor<PingPonger>(1, 30);  // id 2 → home shard 0
  rt.run_for(2'500);  // 125 ms wall: the stall covers the first 40%

  ASSERT_EQ(rt.shard_count(), 2u);
  ASSERT_EQ(rt.shard_of(0), 0u);  // staller and actor 2 share shard 0
  ASSERT_EQ(rt.shard_of(2), 0u);

  EXPECT_GE(a->received() + b->received(), 30)
      << "ping-pong starved while shard 0 was wedged";
  const ekbd::rt::ExecutorStats st = rt.stats();
  EXPECT_GT(st.steals + st.helps + st.timer_helps, 0u)
      << "progress without any cross-shard claim: stealing/helping never engaged";
}

}  // namespace
