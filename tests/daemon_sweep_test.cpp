// Parameterized daemon sweep: every stabilizing protocol under the
// wait-free daemon across topologies, seeds, crash plans and transient
// bursts — the application-layer analogue of the dining property sweep.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "daemon/fault_injector.hpp"
#include "daemon/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "stab/bfs_tree.hpp"
#include "stab/coloring.hpp"
#include "stab/matching.hpp"
#include "stab/mis.hpp"
#include "stab/token_ring.hpp"

namespace {

using ekbd::daemon::DaemonScheduler;
using ekbd::daemon::FaultInjector;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::stab::StateTable;

enum class Proto { kTokenRing, kColoring, kMis, kBfs, kMatching };

struct DaemonSweep {
  Proto proto;
  const char* topology;
  std::size_t n;
  std::uint64_t seed;
  bool crashes;
  bool transients;
};

std::string proto_name(Proto p) {
  switch (p) {
    case Proto::kTokenRing: return "tokenring";
    case Proto::kColoring: return "coloring";
    case Proto::kMis: return "mis";
    case Proto::kBfs: return "bfs";
    case Proto::kMatching: return "matching";
  }
  return "?";
}

std::unique_ptr<ekbd::stab::Protocol> make_proto(Proto p, std::size_t n) {
  switch (p) {
    case Proto::kTokenRing: return std::make_unique<ekbd::stab::DijkstraTokenRing>(n);
    case Proto::kColoring: return std::make_unique<ekbd::stab::StabilizingColoring>();
    case Proto::kMis: return std::make_unique<ekbd::stab::StabilizingMis>();
    case Proto::kBfs: return std::make_unique<ekbd::stab::StabilizingBfsTree>();
    case Proto::kMatching: return std::make_unique<ekbd::stab::StabilizingMatching>();
  }
  return nullptr;
}

class StabilizationSweep : public ::testing::TestWithParam<DaemonSweep> {};

TEST_P(StabilizationSweep, ConvergesUnderWaitFreeDaemon) {
  const DaemonSweep& sw = GetParam();

  Config cfg;
  cfg.seed = sw.seed;
  cfg.topology = sw.topology;
  cfg.n = sw.n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 150;
  cfg.fp_count = 2 * sw.n;
  cfg.fp_until = 8'000;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 50;
  cfg.run_for = 220'000;
  if (sw.crashes) {
    cfg.crashes = {{static_cast<ekbd::sim::ProcessId>(sw.n / 2), 1},
                   {static_cast<ekbd::sim::ProcessId>(sw.n - 1), 50'000}};
  }

  Scenario s(cfg);
  auto proto = make_proto(sw.proto, sw.n);
  StateTable regs(sw.n, proto->regs_per_process());
  ekbd::sim::Rng rng(sw.seed ^ 0x5EED);
  regs.randomize(rng, 0, proto->corruption_hi(s.graph()));
  DaemonScheduler daemon(s.harness(), *proto, regs);
  std::unique_ptr<FaultInjector> inj;
  if (sw.transients) {
    inj = std::make_unique<FaultInjector>(s.sim(), regs, *proto, s.graph(), sw.seed ^ 0xFA17);
    inj->schedule_train(60'000, 30'000, 3, 3);  // last burst at t=120000
  }
  s.run();

  EXPECT_TRUE(daemon.converged())
      << proto_name(sw.proto) << " on " << sw.topology << " failed to stabilize "
      << "(steps=" << daemon.steps_executed()
      << ", last illegitimate=" << daemon.last_illegitimate() << ")";
  EXPECT_TRUE(s.wait_freedom(30'000).wait_free());
  if (sw.transients) {
    EXPECT_GT(inj->corruptions_applied(), 0u);
  }
}

std::string sweep_label(const ::testing::TestParamInfo<DaemonSweep>& info) {
  const auto& s = info.param;
  return proto_name(s.proto) + "_" + s.topology + "_n" + std::to_string(s.n) + "_s" +
         std::to_string(s.seed) + (s.crashes ? "_crash" : "") +
         (s.transients ? "_trans" : "");
}

INSTANTIATE_TEST_SUITE_P(
    All, StabilizationSweep,
    ::testing::Values(
        // Token ring: crash-free only (its spec needs the whole ring).
        DaemonSweep{Proto::kTokenRing, "ring", 6, 1, false, false},
        DaemonSweep{Proto::kTokenRing, "ring", 8, 2, false, true},
        DaemonSweep{Proto::kTokenRing, "ring", 10, 3, false, true},
        // Coloring: every flavor.
        DaemonSweep{Proto::kColoring, "ring", 8, 4, false, true},
        DaemonSweep{Proto::kColoring, "random", 10, 5, true, false},
        DaemonSweep{Proto::kColoring, "random", 10, 6, true, true},
        DaemonSweep{Proto::kColoring, "clique", 6, 7, true, true},
        DaemonSweep{Proto::kColoring, "grid", 9, 8, true, false},
        // MIS.
        DaemonSweep{Proto::kMis, "grid", 9, 9, false, true},
        DaemonSweep{Proto::kMis, "grid", 9, 10, true, true},
        DaemonSweep{Proto::kMis, "star", 8, 11, true, false},
        DaemonSweep{Proto::kMis, "random", 12, 12, true, true},
        // BFS tree (root 0 must stay alive; crashes hit n/2 and n-1).
        DaemonSweep{Proto::kBfs, "tree", 7, 13, false, true},
        DaemonSweep{Proto::kBfs, "grid", 9, 14, false, true},
        // Matching.
        DaemonSweep{Proto::kMatching, "ring", 8, 15, false, true},
        DaemonSweep{Proto::kMatching, "grid", 9, 16, true, false},
        DaemonSweep{Proto::kMatching, "random", 10, 17, true, true},
        DaemonSweep{Proto::kMatching, "path", 7, 18, false, false}),
    sweep_label);

}  // namespace
