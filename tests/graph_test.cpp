// Unit tests for conflict graphs, topologies and colorings.
#include <gtest/gtest.h>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/topology.hpp"

namespace {

using ekbd::graph::ConflictGraph;
using ekbd::graph::ProcessId;
using ekbd::sim::Rng;

TEST(Graph, EmptyGraph) {
  ConflictGraph g(4);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_FALSE(g.connected());
}

TEST(Graph, AddEdgeIsSymmetricAndIdempotent) {
  ConflictGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, NeighborsSorted) {
  ConflictGraph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  EXPECT_EQ(g.neighbors(2), (std::vector<ProcessId>{0, 3, 4}));
}

TEST(Graph, EdgesListAscending) {
  ConflictGraph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  for (auto [a, b] : es) EXPECT_LT(a, b);
}

TEST(Topology, RingShape) {
  auto g = ekbd::graph::ring(6);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.adjacent(0, 5));
  EXPECT_TRUE(g.adjacent(2, 3));
  EXPECT_TRUE(g.connected());
}

TEST(Topology, PathShape) {
  auto g = ekbd::graph::path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, CliqueShape) {
  auto g = ekbd::graph::clique(5);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.max_degree(), 4u);
  for (ProcessId i = 0; i < 5; ++i) {
    for (ProcessId j = 0; j < 5; ++j) {
      if (i != j) EXPECT_TRUE(g.adjacent(i, j));
    }
  }
}

TEST(Topology, StarShape) {
  auto g = ekbd::graph::star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Topology, GridShape) {
  auto g = ekbd::graph::grid(3, 4);
  EXPECT_EQ(g.size(), 12u);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.connected());
}

TEST(Topology, BinaryTreeShape) {
  auto g = ekbd::graph::binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(0, 2));
  EXPECT_TRUE(g.adjacent(1, 3));
  EXPECT_TRUE(g.connected());
}

TEST(Topology, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto g = ekbd::graph::random_connected(20, 0.1, rng);
    EXPECT_TRUE(g.connected()) << "seed " << seed;
    EXPECT_GE(g.num_edges(), 19u);
  }
}

TEST(Topology, HypercubeShape) {
  auto g = ekbd::graph::hypercube(3);
  EXPECT_EQ(g.size(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);  // d * 2^d / 2
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(0, 2));
  EXPECT_TRUE(g.adjacent(0, 4));
  EXPECT_FALSE(g.adjacent(0, 3));  // differs in two bits
  EXPECT_TRUE(g.connected());
}

TEST(Topology, TorusShape) {
  auto g = ekbd::graph::torus(3, 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.num_edges(), 24u);  // 2 * rows * cols (4-regular)
  for (std::size_t p = 0; p < g.size(); ++p) {
    EXPECT_EQ(g.degree(static_cast<ProcessId>(p)), 4u) << p;
  }
  EXPECT_TRUE(g.adjacent(0, 3));  // row wraparound
  EXPECT_TRUE(g.adjacent(0, 8));  // column wraparound
  EXPECT_TRUE(g.connected());
}

TEST(Topology, CompleteBipartiteShape) {
  auto g = ekbd::graph::complete_bipartite(3, 4);
  EXPECT_EQ(g.size(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  // No intra-side edges.
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_FALSE(g.adjacent(3, 4));
  EXPECT_TRUE(g.adjacent(0, 3));
  EXPECT_TRUE(g.connected());
  // Two colors suffice.
  auto c = ekbd::graph::greedy_coloring(g);
  EXPECT_EQ(ekbd::graph::num_colors(c), 2u);
}

TEST(Topology, ByNameDispatch) {
  Rng rng(1);
  EXPECT_EQ(ekbd::graph::by_name("ring", 5, rng).num_edges(), 5u);
  EXPECT_EQ(ekbd::graph::by_name("clique", 4, rng).num_edges(), 6u);
  EXPECT_GE(ekbd::graph::by_name("grid", 9, rng).size(), 9u);
  EXPECT_EQ(ekbd::graph::by_name("hypercube", 8, rng).num_edges(), 12u);
  EXPECT_EQ(ekbd::graph::by_name("hypercube", 5, rng).size(), 8u);  // rounds up
  EXPECT_GE(ekbd::graph::by_name("torus", 9, rng).size(), 9u);
  EXPECT_EQ(ekbd::graph::by_name("bipartite", 7, rng).num_edges(), 12u);
  EXPECT_THROW(ekbd::graph::by_name("moebius", 5, rng), std::invalid_argument);
}

TEST(Coloring, GreedyProperOnStandardTopologies) {
  Rng rng(2);
  for (const char* name : {"ring", "path", "clique", "star", "grid", "tree", "random",
                           "hypercube", "torus", "bipartite"}) {
    auto g = ekbd::graph::by_name(name, 16, rng);
    auto c = ekbd::graph::greedy_coloring(g);
    EXPECT_TRUE(ekbd::graph::is_proper(g, c)) << name;
    EXPECT_LE(ekbd::graph::num_colors(c), g.max_degree() + 1) << name;
  }
}

TEST(Coloring, WelshPowellProperAndBounded) {
  Rng rng(3);
  for (const char* name : {"ring", "clique", "star", "random"}) {
    auto g = ekbd::graph::by_name(name, 24, rng);
    auto c = ekbd::graph::welsh_powell_coloring(g);
    EXPECT_TRUE(ekbd::graph::is_proper(g, c)) << name;
    EXPECT_LE(ekbd::graph::num_colors(c), g.max_degree() + 1) << name;
  }
}

TEST(Coloring, StarUsesTwoColors) {
  auto g = ekbd::graph::star(10);
  auto c = ekbd::graph::welsh_powell_coloring(g);
  EXPECT_EQ(ekbd::graph::num_colors(c), 2u);
}

TEST(Coloring, CliqueUsesNColors) {
  auto g = ekbd::graph::clique(6);
  auto c = ekbd::graph::greedy_coloring(g);
  EXPECT_EQ(ekbd::graph::num_colors(c), 6u);
}

TEST(Coloring, IsProperRejectsBadColoring) {
  auto g = ekbd::graph::path(3);
  EXPECT_FALSE(ekbd::graph::is_proper(g, {0, 0, 1}));
  EXPECT_FALSE(ekbd::graph::is_proper(g, {0, 1}));     // wrong size
  EXPECT_FALSE(ekbd::graph::is_proper(g, {0, -1, 0})); // unassigned
  EXPECT_TRUE(ekbd::graph::is_proper(g, {0, 1, 0}));
}

// ----------------------------------------- incremental recoloring repair

TEST(Repair, EdgeAddBetweenDistinctColorsIsFree) {
  auto g = ekbd::graph::path(4);  // 0-1-2-3
  ekbd::graph::Coloring c = {0, 1, 0, 1};
  g.add_edge(0, 3);  // endpoints already differ (0 vs 1)
  EXPECT_EQ(ekbd::graph::repair_after_edge_add(g, c, 0, 3), ekbd::graph::kNoRecolor);
  EXPECT_EQ(c, (ekbd::graph::Coloring{0, 1, 0, 1}));  // untouched
}

TEST(Repair, EdgeAddConflictForcesColorBump) {
  // Odd ring: 2-coloring fails once a chord joins two same-colored
  // vertices; the repair must bump exactly one endpoint to a fresh color.
  auto g = ekbd::graph::path(5);  // 0-1-2-3-4
  ekbd::graph::Coloring c = {0, 1, 0, 1, 0};
  ASSERT_TRUE(ekbd::graph::is_proper(g, c));
  g.add_edge(0, 2);  // both color 0
  const ProcessId moved = ekbd::graph::repair_after_edge_add(g, c, 0, 2);
  ASSERT_NE(moved, ekbd::graph::kNoRecolor);
  EXPECT_TRUE(moved == 0 || moved == 2);
  EXPECT_TRUE(ekbd::graph::is_proper(g, c));
  // degree(0)=2 < degree(2)=3 → the lower-degree endpoint moves, and the
  // smallest free color around 0 = {1 (from 1), 0 (from 2)} is 2.
  EXPECT_EQ(moved, 0);
  EXPECT_EQ(c[0], 2);
}

TEST(Repair, TieBreaksTowardHigherId) {
  // Two disjoint same-colored edges joined by a new edge: equal degrees,
  // so the higher-id endpoint is the one recolored.
  ConflictGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  ekbd::graph::Coloring c = {0, 1, 0, 1};
  g.add_edge(0, 2);  // degree(0) == degree(2) == 2, both color 0
  const ProcessId moved = ekbd::graph::repair_after_edge_add(g, c, 0, 2);
  EXPECT_EQ(moved, 2);
  EXPECT_TRUE(ekbd::graph::is_proper(g, c));
}

TEST(Repair, NeverRecolorsOutsideTheAffectedNeighborhood) {
  // Invariant: a repair touches at most one vertex, and that vertex is an
  // endpoint of the added edge — never a bystander. Sweep random graphs
  // and random chord additions.
  Rng rng(2026);
  for (int round = 0; round < 50; ++round) {
    ConflictGraph g = ekbd::graph::random_connected(12, 0.25, rng);
    ekbd::graph::Coloring c = ekbd::graph::welsh_powell_coloring(g);
    // Pick a random absent pair.
    ProcessId a = -1, b = -1;
    for (int tries = 0; tries < 100; ++tries) {
      const auto x = static_cast<ProcessId>(rng.index(12));
      const auto y = static_cast<ProcessId>(rng.index(12));
      if (x != y && !g.adjacent(x, y)) { a = x; b = y; break; }
    }
    if (a < 0) continue;  // dense draw, nothing to add
    const ekbd::graph::Coloring before = c;
    g.add_edge(a, b);
    const ProcessId moved = ekbd::graph::repair_after_edge_add(g, c, a, b);
    ASSERT_TRUE(ekbd::graph::is_proper(g, c));
    for (std::size_t v = 0; v < c.size(); ++v) {
      if (static_cast<ProcessId>(v) == moved) continue;
      EXPECT_EQ(c[v], before[v]) << "bystander " << v << " recolored";
    }
    if (moved != ekbd::graph::kNoRecolor) {
      EXPECT_TRUE(moved == a || moved == b);
      // The repaired color is the greedy choice, so the palette never
      // exceeds the new neighborhood size + 1.
      EXPECT_LE(static_cast<std::size_t>(c[static_cast<std::size_t>(moved)]),
                g.degree(moved));
    } else {
      EXPECT_EQ(c, before);
    }
  }
}

TEST(Repair, LowerColorShrinksPaletteAfterRemoval) {
  // Triangle forces 3 colors; removing one edge lets the vertex that held
  // the third color drop back down.
  ConflictGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  ekbd::graph::Coloring c = {0, 1, 2};
  ASSERT_EQ(ekbd::graph::num_colors(c), 3u);

  g.remove_edge(0, 2);  // now the path 0-1-2
  EXPECT_TRUE(ekbd::graph::is_proper(g, c));  // removal never breaks properness
  EXPECT_TRUE(ekbd::graph::lower_color(g, c, 2));  // 2's neighborhood = {1}: 0 free
  EXPECT_EQ(c[2], 0);
  EXPECT_EQ(ekbd::graph::num_colors(c), 2u);
  EXPECT_FALSE(ekbd::graph::lower_color(g, c, 2));  // already minimal
  EXPECT_TRUE(ekbd::graph::is_proper(g, c));
}

TEST(Repair, NodeRemovalShrinksPaletteViaProbes) {
  // A star needs two colors while the hub stands; cutting every hub edge
  // (= removing the node from the conflict community) frees that
  // constraint and lower_color probes shrink the palette to 1.
  auto g = ekbd::graph::star(5);
  ekbd::graph::Coloring c = ekbd::graph::welsh_powell_coloring(g);
  ASSERT_EQ(ekbd::graph::num_colors(c), 2u);
  for (ProcessId leaf = 1; leaf < 5; ++leaf) g.remove_edge(0, leaf);
  EXPECT_TRUE(ekbd::graph::lower_color(g, c, 0) || c[0] == 0);
  for (ProcessId v = 0; v < 5; ++v) {
    ekbd::graph::lower_color(g, c, v);
    EXPECT_EQ(c[static_cast<std::size_t>(v)], 0);
  }
  EXPECT_EQ(ekbd::graph::num_colors(c), 1u);
}

TEST(Repair, SmallestFreeColorSkipsOccupied) {
  auto g = ekbd::graph::star(4);  // hub 0, leaves 1..3
  const ekbd::graph::Coloring c = {3, 0, 1, 2};
  // Hub sees {0,1,2} → smallest free is 3; a leaf sees {3} → 0.
  EXPECT_EQ(ekbd::graph::smallest_free_color(g, c, 0), 3);
  EXPECT_EQ(ekbd::graph::smallest_free_color(g, c, 1), 0);
}

}  // namespace
