// Unit tests for the discrete-event simulator: ordering, FIFO channels,
// timers, crash semantics, determinism, delay models, network accounting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Rng;
using ekbd::sim::Simulator;
using ekbd::sim::Time;
using ekbd::sim::TimerId;

// Payload is a closed variant now; tests send the generic Datum value.
using Note = ekbd::sim::Datum;

/// Records everything it receives.
class Recorder : public ekbd::sim::Actor {
 public:
  void on_message(const Message& m) override {
    received.push_back(*m.as<Note>());
    receive_times.push_back(now());
    froms.push_back(m.from);
  }
  void on_timer(TimerId id) override { timers.push_back(id); }

  using Actor::send;       // widen for tests
  using Actor::set_timer;  // widen for tests
  using Actor::cancel_timer;

  std::vector<Note> received;
  std::vector<Time> receive_times;
  std::vector<ProcessId> froms;
  std::vector<TimerId> timers;
};

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.u64(), b.u64());
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(7);
  Rng c1 = a.fork(1);
  Rng a2(7);
  Rng c2 = a2.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.u64() == c2.u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(1);
  for (int i = 0; i < 100; ++i) EXPECT_GE(r.exponential(10.0), 0);
}

TEST(DelayModels, FixedAlwaysSame) {
  ekbd::sim::FixedDelay d(5);
  Rng r(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(0, 1, 100, r), 5);
}

TEST(DelayModels, UniformWithinBounds) {
  ekbd::sim::UniformDelay d(2, 7);
  Rng r(1);
  for (int i = 0; i < 200; ++i) {
    Time t = d.sample(0, 1, 0, r);
    EXPECT_GE(t, 2);
    EXPECT_LE(t, 7);
  }
}

TEST(DelayModels, PartialSynchronyBoundedAfterGst) {
  ekbd::sim::PartialSynchronyDelay::Params p;
  p.gst = 1000;
  p.pre_lo = 1;
  p.pre_hi = 100;
  p.spike_prob = 0.5;
  p.spike_factor = 50;
  p.post_lo = 1;
  p.post_hi = 10;
  ekbd::sim::PartialSynchronyDelay d(p);
  Rng r(1);
  Time max_pre = 0;
  for (int i = 0; i < 500; ++i) max_pre = std::max(max_pre, d.sample(0, 1, 0, r));
  EXPECT_GT(max_pre, 100);  // spikes exceeded the base range
  for (int i = 0; i < 500; ++i) {
    Time t = d.sample(0, 1, p.gst, r);
    EXPECT_GE(t, 1);
    EXPECT_LE(t, 10);
  }
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(10, [&order, i] { order.push_back(i); });
  }
  sim.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
  Simulator sim(1);
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, MessageDeliveredWithDelay) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(7));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  a->send(b->id(), Note{42}, MsgLayer::kOther);
  sim.run_until(100);
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].value, 42);
  EXPECT_EQ(b->receive_times[0], 7);
  EXPECT_EQ(b->froms[0], a->id());
}

TEST(Simulator, FifoPreservedDespiteRandomDelays) {
  // With highly variable delays, per-channel FIFO must still hold.
  Simulator sim(3, ekbd::sim::make_uniform_delay(1, 50));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  for (int i = 0; i < 100; ++i) a->send(b->id(), Note{i}, MsgLayer::kOther);
  sim.run_until(10'000);
  ASSERT_EQ(b->received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b->received[static_cast<size_t>(i)].value, i);
}

TEST(Simulator, FifoAcrossInterleavedSends) {
  Simulator sim(9, ekbd::sim::make_uniform_delay(1, 30));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  auto* c = sim.make_actor<Recorder>();
  sim.start();
  // a and c both send to b; per-channel order must hold independently.
  for (int i = 0; i < 50; ++i) {
    a->send(b->id(), Note{i}, MsgLayer::kOther);
    c->send(b->id(), Note{1000 + i}, MsgLayer::kOther);
  }
  sim.run_until(10'000);
  ASSERT_EQ(b->received.size(), 100u);
  int last_a = -1, last_c = 999;
  for (const Note& n : b->received) {
    if (n.value < 1000) {
      EXPECT_GT(n.value, last_a);
      last_a = n.value;
    } else {
      EXPECT_GT(n.value, last_c);
      last_c = n.value;
    }
  }
}

TEST(Simulator, TimerFiresOnce) {
  Simulator sim(1);
  auto* a = sim.make_actor<Recorder>();
  sim.start();
  TimerId id = a->set_timer(25);
  sim.run_until(1000);
  ASSERT_EQ(a->timers.size(), 1u);
  EXPECT_EQ(a->timers[0], id);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim(1);
  auto* a = sim.make_actor<Recorder>();
  sim.start();
  TimerId id = a->set_timer(25);
  a->cancel_timer(id);
  sim.run_until(1000);
  EXPECT_TRUE(a->timers.empty());
}

TEST(Simulator, CrashedProcessReceivesNothing) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(10));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  sim.schedule_crash(b->id(), 5);
  a->send(b->id(), Note{1}, MsgLayer::kOther);  // delivery at 10 > crash at 5
  sim.run_until(1000);
  EXPECT_TRUE(b->received.empty());
  EXPECT_TRUE(sim.crashed(b->id()));
  EXPECT_EQ(sim.crash_time(b->id()), 5);
}

TEST(Simulator, MessagesSentBeforeCrashStillDelivered) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(10));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  a->send(b->id(), Note{1}, MsgLayer::kOther);  // sent at 0, delivered at 10
  sim.schedule_crash(a->id(), 1);               // sender crashes after sending
  sim.run_until(1000);
  ASSERT_EQ(b->received.size(), 1u);  // the message was already in flight
}

TEST(Simulator, CrashedProcessCannotSend) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(10));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  sim.crash(a->id());
  a->send(b->id(), Note{1}, MsgLayer::kOther);  // silently dropped
  sim.run_until(1000);
  EXPECT_TRUE(b->received.empty());
}

TEST(Simulator, CrashedProcessTimersDropped) {
  Simulator sim(1);
  auto* a = sim.make_actor<Recorder>();
  sim.start();
  a->set_timer(50);
  sim.schedule_crash(a->id(), 10);
  sim.run_until(1000);
  EXPECT_TRUE(a->timers.empty());
}

TEST(Simulator, LiveProcessesExcludesCrashed) {
  Simulator sim(1);
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  auto* c = sim.make_actor<Recorder>();
  (void)a;
  (void)c;
  sim.start();
  sim.crash(b->id());
  auto live = sim.live_processes();
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], 0);
  EXPECT_EQ(live[1], 2);
}

TEST(Simulator, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed, ekbd::sim::make_uniform_delay(1, 40));
    auto* a = sim.make_actor<Recorder>();
    auto* b = sim.make_actor<Recorder>();
    sim.start();
    for (int i = 0; i < 50; ++i) a->send(b->id(), Note{i}, MsgLayer::kOther);
    sim.run_until(10'000);
    return b->receive_times;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(Network, InTransitAccounting) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(100));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  for (int i = 0; i < 5; ++i) a->send(b->id(), Note{i}, MsgLayer::kDining);
  // All five in flight now.
  auto cs = sim.network().channel(a->id(), b->id(), MsgLayer::kDining);
  EXPECT_EQ(cs.in_transit, 5);
  EXPECT_EQ(cs.max_in_transit, 5);
  EXPECT_EQ(cs.total, 5u);
  sim.run_until(10'000);
  cs = sim.network().channel(a->id(), b->id(), MsgLayer::kDining);
  EXPECT_EQ(cs.in_transit, 0);
  EXPECT_EQ(cs.max_in_transit, 5);
}

TEST(Network, LayersAreSeparate) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(10));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  a->send(b->id(), Note{1}, MsgLayer::kDining);
  a->send(b->id(), Note{2}, MsgLayer::kDetector);
  a->send(b->id(), Note{3}, MsgLayer::kDetector);
  sim.run_until(100);
  EXPECT_EQ(sim.network().total_sent(MsgLayer::kDining), 1u);
  EXPECT_EQ(sim.network().total_sent(MsgLayer::kDetector), 2u);
  EXPECT_EQ(sim.network().channel(0, 1, MsgLayer::kDetector).total, 2u);
}

TEST(Network, SendsToCrashedCounted) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(10));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  sim.crash(b->id());
  a->send(b->id(), Note{1}, MsgLayer::kDining);
  sim.run_until(50);
  a->send(b->id(), Note{2}, MsgLayer::kDining);
  sim.run_until(1000);
  EXPECT_EQ(sim.network().sends_to_crashed(b->id(), MsgLayer::kDining), 2u);
  EXPECT_EQ(sim.network().last_send_to(b->id(), MsgLayer::kDining), 50);
}

TEST(Network, MaxInTransitAnyScansAllPairs) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(100));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  auto* c = sim.make_actor<Recorder>();
  sim.start();
  a->send(b->id(), Note{1}, MsgLayer::kDining);
  a->send(c->id(), Note{1}, MsgLayer::kDining);
  a->send(c->id(), Note{2}, MsgLayer::kDining);
  EXPECT_EQ(sim.network().max_in_transit_any(MsgLayer::kDining), 2);
  sim.run_until(1000);
}

TEST(ChannelFaults, DuplicationDeliversTwice) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(5));
  sim.set_channel_faults(/*dup=*/1.0, /*reorder=*/0.0);
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  for (int i = 0; i < 10; ++i) a->send(b->id(), Note{i}, MsgLayer::kOther);
  sim.run_until(1'000);
  EXPECT_EQ(b->received.size(), 20u);  // every message twice
}

TEST(ChannelFaults, ReorderingViolatesFifo) {
  // With reorder probability 1 and wildly variable delays, some later
  // message must arrive before an earlier one (that's the point).
  Simulator sim(5, ekbd::sim::make_uniform_delay(1, 60));
  sim.set_channel_faults(0.0, /*reorder=*/1.0);
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  for (int i = 0; i < 100; ++i) a->send(b->id(), Note{i}, MsgLayer::kOther);
  sim.run_until(10'000);
  ASSERT_EQ(b->received.size(), 100u);
  bool inverted = false;
  for (std::size_t i = 1; i < b->received.size(); ++i) {
    if (b->received[i].value < b->received[i - 1].value) inverted = true;
  }
  EXPECT_TRUE(inverted) << "expected at least one FIFO inversion";
}

TEST(ChannelFaults, DefaultOffPreservesModel) {
  Simulator sim(5, ekbd::sim::make_uniform_delay(1, 60));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  for (int i = 0; i < 100; ++i) a->send(b->id(), Note{i}, MsgLayer::kOther);
  sim.run_until(10'000);
  ASSERT_EQ(b->received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b->received[static_cast<size_t>(i)].value, i);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim(1);
  sim.schedule(1, [] {});
  sim.schedule(2, [] {});
  sim.run_until(10);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Network, OccupancySettlesToZeroAfterCrashDrops) {
  // Regression (ChannelStats accounting): messages addressed to a crashed
  // process are dropped *at delivery time*, and that drop must decrement
  // in_transit exactly like a delivery — otherwise the §7 channel-bound
  // reader sees phantom occupancy forever after any crash.
  Simulator sim(3, ekbd::sim::make_uniform_delay(5, 30));
  auto* a = sim.make_actor<Recorder>();
  auto* b = sim.make_actor<Recorder>();
  sim.start();
  sim.schedule_crash(b->id(), 10);
  // Sends straddling the crash: some deliver, some drop at a dead target.
  for (int i = 0; i < 12; ++i) {
    sim.schedule(1 + 2 * i, [&sim, a, b] {
      sim.send(a->id(), b->id(), Note{0}, MsgLayer::kDining);
    });
  }
  sim.run_until(1'000);
  ASSERT_GT(sim.network().sends_to_crashed(b->id(), MsgLayer::kDining), 0u);
  const auto cs = sim.network().channel(a->id(), b->id(), MsgLayer::kDining);
  EXPECT_EQ(cs.total, 12u);
  EXPECT_EQ(cs.in_transit, 0) << "drop-at-crashed-target leaked channel occupancy";
}

TEST(Network, StampWithoutFifoMayUndercutTheHorizon) {
  // Direct unit test of the fifo=false stamping path (adversarial
  // reordering): a message stamped non-FIFO takes its sampled latency
  // verbatim, undercutting an earlier slow message on the same channel.
  ekbd::sim::Network net;
  Message slow;
  slow.from = 0;
  slow.to = 1;
  net.stamp(slow, /*now=*/0, /*latency=*/100, /*target_crashed=*/false);
  EXPECT_EQ(slow.deliver_at, 100);

  Message fifo;
  fifo.from = 0;
  fifo.to = 1;
  net.stamp(fifo, /*now=*/10, /*latency=*/5, /*target_crashed=*/false);
  EXPECT_EQ(fifo.deliver_at, slow.deliver_at) << "FIFO stamp clamps to the horizon";

  Message rogue;
  rogue.from = 0;
  rogue.to = 1;
  net.stamp(rogue, /*now=*/10, /*latency=*/5, /*target_crashed=*/false, /*fifo=*/false);
  EXPECT_EQ(rogue.deliver_at, 15) << "non-FIFO stamp must take the raw latency";
  EXPECT_LT(rogue.deliver_at, slow.deliver_at);
  // Sequence numbers stay globally increasing either way.
  EXPECT_GT(rogue.seq, fifo.seq);

  // All three settle the books on delivery.
  net.delivered(slow);
  net.delivered(fifo);
  net.delivered(rogue);
  EXPECT_EQ(net.channel(0, 1, MsgLayer::kOther).in_transit, 0);
  EXPECT_EQ(net.channel(0, 1, MsgLayer::kOther).max_in_transit, 3);
}

TEST(Network, LogicalBooksMirrorPhysicalBooks) {
  // The ARQ's logical accounting must read through the same API as raw
  // stamped traffic: occupancy, totals, quiescence counters.
  ekbd::sim::Network net;
  const std::uint64_t s1 = net.logical_sent(0, 1, MsgLayer::kDining, 10, false);
  const std::uint64_t s2 = net.logical_sent(1, 0, MsgLayer::kDining, 12, false);
  EXPECT_GT(s2, s1);
  EXPECT_EQ(net.channel(0, 1, MsgLayer::kDining).in_transit, 2);
  EXPECT_EQ(net.total_sent(MsgLayer::kDining), 2u);
  EXPECT_EQ(net.last_send_to(1, MsgLayer::kDining), 10);
  net.logical_delivered(0, 1, MsgLayer::kDining);
  net.logical_dropped(1, 0, MsgLayer::kDining);  // abandon settles identically
  EXPECT_EQ(net.channel(0, 1, MsgLayer::kDining).in_transit, 0);
  EXPECT_EQ(net.channel(0, 1, MsgLayer::kDining).max_in_transit, 2);
  // Sends to an already-crashed target book the quiescence counter.
  net.logical_sent(0, 2, MsgLayer::kDining, 20, /*target_crashed=*/true);
  EXPECT_EQ(net.sends_to_crashed(2, MsgLayer::kDining), 1u);
  net.logical_dropped(0, 2, MsgLayer::kDining);
  EXPECT_EQ(net.channel(0, 2, MsgLayer::kDining).in_transit, 0);
}

}  // namespace
