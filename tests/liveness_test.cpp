/// \file liveness_test.cpp
/// Fair-lasso liveness checking (mc/liveness.hpp) over the closed dining
/// and drinking universes (scenario/liveness.hpp).
///
/// The suite does four jobs:
///  1. certification — mechanically verify P3 (wait-freedom) on the full
///     K3 closure (crash-free and with an adversarially timed crash) and
///     on restricted C5 / 2x3-grid closures (three adjacent perpetual
///     re-hungerers; the all-hungry graphs are beyond any feasible
///     budget — docs/MODELCHECK.md), and P4 (2-bounded waiting) on an
///     edge, bound tightness and budget-abuse-on-K3 included;
///  2. honesty — every seeded mutation must be re-detected, and each
///     counterexample must replay through the post-hoc trace checkers
///     (dining/checkers.hpp) to the same verdict as the model checker;
///  3. round-trips — lassos unroll for any number of laps and close the
///     state key every lap; Results are bit-identical for 1/2/8 threads;
///  4. guards — sleep sets and random walks are refused for liveness,
///     and the sleep-set tick-insensitivity contract still holds for
///     explore() on the finite-meal crash-free liveness worlds.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dining/checkers.hpp"
#include "mc/liveness.hpp"
#include "scenario/liveness.hpp"

namespace {

using ekbd::mc::Fairness;
using ekbd::mc::Options;
using ekbd::mc::Result;
using ekbd::scenario::DinnerLivenessWorld;
using ekbd::scenario::LivenessConfig;
using ekbd::scenario::LivenessMutation;
using ekbd::scenario::make_dinner_liveness_factory;
using ekbd::scenario::make_drinking_edge_liveness_factory;

Options live_options(std::size_t max_depth, std::uint64_t max_nodes,
                     bool include_timers = false) {
  Options opt;
  opt.max_depth = max_depth;
  opt.max_nodes = max_nodes;
  opt.include_timers = include_timers;
  opt.threads = 2;
  opt.fairness = Fairness::kWeakEvent;
  return opt;
}

/// The full certification claim: a verdict is a proof only when the graph
/// was built to the end (liveness.hpp "Soundness caveats").
void expect_certified(const Result& r) {
  EXPECT_TRUE(r.ok()) << "violation: " << r.violation
                      << " config_error: " << r.config_error;
  EXPECT_EQ(r.paths_truncated, 0u) << "graph truncated at max_depth: not a proof";
  EXPECT_FALSE(r.budget_exhausted) << "budget exhausted: not a proof";
  EXPECT_EQ(r.fair_cycles, 0u);
  EXPECT_GT(r.unique_states, 0u);
  // Infinite-session universes must actually recur: a cycle-free graph
  // would mean the closure (re-hungry choices) is broken.
  EXPECT_GT(r.scc_count, 0u);
}

/// Drive recorded event ids through a fresh world, checking invariants
/// after each step — the honest-trace side of the cross-check.
std::string drive_ids(DinnerLivenessWorld& world, const std::vector<std::uint64_t>& ids) {
  for (std::uint64_t id : ids) {
    if (!world.simulator().execute_event(id)) return "replay diverged";
    std::string v = world.check();
    if (!v.empty()) return v;
  }
  return "";
}

// ------------------------------------------------------ P3 certification

TEST(LivenessCertify, WaitFreedomOnK3) {
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 3;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg),
                                  live_options(120, 80'000'000));
  expect_certified(r);
}

TEST(LivenessCertify, WaitFreedomOnC5) {
  // Restricted closure: with meals = -1 only initially-hungry processes
  // ever re-hungry, so the mask selects the recurrent class. Three
  // adjacent perpetual re-hungerers among responsive peers — the
  // all-hungry C5 closure exceeds any feasible budget (>4 GB of state
  // table; measured in docs/MODELCHECK.md) and is deliberately NOT
  // claimed here.
  LivenessConfig cfg;
  cfg.topology = "ring";
  cfg.n = 5;
  cfg.initial_hungry = 0b00111;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg),
                                  live_options(160, 400'000'000));
  expect_certified(r);
}

TEST(LivenessCertify, WaitFreedomOnGrid2x3) {
  // Same restricted-closure discipline as C5. by_name("grid", 6) is the
  // 3x2 grid laid out row-major with two columns, so {0, 1, 2} is a
  // corner L: 0-1 and 0-2 are edges, 1 and 2 contend only through 0 —
  // a different conflict shape than the C5 chain (whose two outer
  // hungry diners never share a neighbor's fork with each other).
  LivenessConfig cfg;
  cfg.topology = "grid";  // 6 vertices -> most-square shape = 3x2
  cfg.n = 6;
  cfg.initial_hungry = 0b00111;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg),
                                  live_options(160, 400'000'000));
  expect_certified(r);
}

TEST(LivenessCertify, WaitFreedomOnK3WithAdversarialCrash) {
  // The crash of process 0 is one more controlled choice, interleaved
  // with every delivery; the truthful ◇P₁ (PerfectDetector) must keep the
  // survivors live on every schedule. Timers stay in: the post-crash
  // recovery path is pump-driven. Restricted closure (hungry = {0, 1}):
  // timers blow the all-hungry crash graph past any feasible budget, and
  // the demanding part — the victim's hungry neighbor surviving a crash
  // timed against every delivery — needs only one perpetual waiter next
  // to the victim plus a responsive third party.
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 3;
  cfg.crash_victim = 0;
  cfg.initial_hungry = 0b011;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg),
                                  live_options(160, 80'000'000, /*include_timers=*/true));
  expect_certified(r);
}

TEST(LivenessCertify, DrinkingEdgeHasNoThirstForeverCycle) {
  const Result r = check_liveness(make_drinking_edge_liveness_factory(),
                                  live_options(120, 80'000'000));
  expect_certified(r);
}

// ------------------------------------------------------ P4 certification

LivenessConfig edge_overtake_config(int bound) {
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 2;
  cfg.check_overtakes = true;
  cfg.overtake_bound = bound;
  return cfg;
}

TEST(LivenessP4, TwoBoundedWaitingHoldsOnEdge) {
  // Theorem 3 with ack budget 1: on every infinite schedule, a hungry
  // process is overtaken at most twice per neighbor. The overtake
  // counters live in the state key, so this quantifies over ALL reachable
  // states of the infinite-session graph.
  const Result r = check_liveness(make_dinner_liveness_factory(edge_overtake_config(2)),
                                  live_options(120, 80'000'000));
  expect_certified(r);
}

TEST(LivenessP4, BoundOneIsViolatedSoTwoIsTight) {
  const Result r = check_liveness(make_dinner_liveness_factory(edge_overtake_config(1)),
                                  live_options(120, 80'000'000));
  EXPECT_TRUE(r.violation_found);
  EXPECT_EQ(r.cycle_length, 0u);  // a safety counterexample, not a lasso
  EXPECT_NE(r.violation.find("bounded waiting violated"), std::string::npos) << r.violation;
}

TEST(LivenessP4, AckBudgetThreeBreaksBoundTwo) {
  // The bound tracks the spent ack budget (Theorem 3): a diner that may
  // grant three acks per session admits triple overtaking. Degree
  // matters here — on a single edge, per-channel FIFO delivers the
  // granted ack before any later ping on the same channel and caps
  // overtaking at 2 REGARDLESS of the budget, so the abuse only
  // manifests at degree >= 2: a waiter stuck outside the doorway
  // awaiting one neighbor's adversarially delayed ack while the other
  // neighbor loops sessions. Hence K3, not K2. fail_fast: a safety
  // violation on the liveness graph is a real counterexample whatever
  // the rest of the graph holds, and the full K3 overtake graph is
  // bench territory (e23).
  LivenessConfig cfg = edge_overtake_config(2);
  cfg.topology = "clique";
  cfg.n = 3;
  cfg.acks_per_session = 3;
  Options opt = live_options(160, 400'000'000);
  opt.fail_fast = true;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  EXPECT_TRUE(r.violation_found);
  EXPECT_EQ(r.cycle_length, 0u);
  EXPECT_NE(r.violation.find("bounded waiting violated"), std::string::npos) << r.violation;
}

// ---------------------------------------------------------- honesty suite

LivenessConfig drop_fork_config() {
  // Process 0 (token holder) hungry alone; process 1 holds the initial
  // fork and silently drops the handover. Every schedule strands 0
  // inside the doorway with only its pump timer firing — a fair lasso.
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 2;
  cfg.mutation = LivenessMutation::kDropForkHandover;
  cfg.initial_hungry = 0b01;
  return cfg;
}

LivenessConfig stuck_detector_config() {
  // Process 1 may crash at an adversarial instant while the oracle never
  // suspects anyone: a schedule that crashes 1 before its ack leaves 0
  // waiting at the doorway forever. (With a truthful oracle the same
  // crash is survivable — LivenessCertify.WaitFreedomOnK3WithAdversarialCrash.)
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 2;
  cfg.mutation = LivenessMutation::kStuckDetector;
  cfg.crash_victim = 1;
  cfg.initial_hungry = 0b01;
  return cfg;
}

/// Checker-vs-checker agreement for a starvation lasso: unroll it, then
/// make the post-hoc trace checkers reach the same verdict.
void expect_starvation_cross_check(const LivenessConfig& cfg, const Result& r,
                                   const Options& opt) {
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.violation.rfind(ekbd::mc::kLivenessViolationPrefix, 0), 0u) << r.violation;
  EXPECT_NE(r.violation.find("process 0"), std::string::npos) << r.violation;
  EXPECT_GT(r.cycle_length, 0u);
  EXPECT_EQ(r.stem_length + r.cycle_length, r.counterexample.size());

  const auto factory = make_dinner_liveness_factory(cfg);
  constexpr std::size_t kLaps = 3;
  ekbd::mc::LassoReplay replay = unroll_lasso(factory, r, kLaps, opt);
  ASSERT_TRUE(replay.valid);
  EXPECT_EQ(replay.laps_closed, kLaps);
  EXPECT_TRUE(replay.violation.empty()) << replay.violation;
  EXPECT_EQ(replay.fired.size(), r.stem_length + kLaps * r.cycle_length);

  auto* world = dynamic_cast<DinnerLivenessWorld*>(replay.world.get());
  ASSERT_NE(world, nullptr);
  // The liveness predicate and its post-hoc face agree: process 0 is
  // hungry at the end of the unrolled trace...
  EXPECT_TRUE(ekbd::dining::hungry_at_end_mask(world->trace()) & 1ULL);
  // ...and check_wait_freedom calls that same process starving.
  const auto report =
      ekbd::dining::check_wait_freedom(world->trace(), world->crash_times(),
                                       /*starvation_horizon=*/1);
  EXPECT_FALSE(report.wait_free());
  ASSERT_EQ(report.starving.size(), 1u);
  EXPECT_EQ(report.starving[0], 0);
}

TEST(LivenessMutants, DetectsDroppedForkHandover) {
  const LivenessConfig cfg = drop_fork_config();
  const Options opt = live_options(80, 20'000'000, /*include_timers=*/true);
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  expect_starvation_cross_check(cfg, r, opt);
}

TEST(LivenessMutants, DetectsStuckDetector) {
  const LivenessConfig cfg = stuck_detector_config();
  const Options opt = live_options(80, 20'000'000, /*include_timers=*/true);
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  expect_starvation_cross_check(cfg, r, opt);
}

TEST(LivenessMutants, DetectsGrantBeyondBudget) {
  // Ignoring the ack budget does NOT starve anyone (weak fairness still
  // drives every waiter through the doorway) — it breaks the overtake
  // bound instead, so the harness must catch it as a safety violation on
  // the liveness graph, not as a lasso. On K3, not K2: FIFO alone keeps
  // a single edge 2-bounded whatever the diner grants (see
  // AckBudgetThreeBreaksBoundTwo).
  LivenessConfig cfg = edge_overtake_config(2);
  cfg.topology = "clique";
  cfg.n = 3;
  cfg.mutation = LivenessMutation::kGrantBeyondBudget;
  Options opt = live_options(160, 400'000'000);
  opt.fail_fast = true;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.cycle_length, 0u);
  EXPECT_NE(r.violation.find("bounded waiting violated"), std::string::npos) << r.violation;

  // Cross-check: the recorded schedule replays to the same verdict, and
  // the post-hoc overtake census counts the same unbounded overtaking.
  DinnerLivenessWorld world(cfg);
  EXPECT_EQ(drive_ids(world, r.counterexample), r.violation);
  const auto census = ekbd::dining::overtake_census(world.trace(), world.graph());
  EXPECT_GT(ekbd::dining::max_overtakes(census), 2);
}

TEST(LivenessMutants, KBoundedDaemonPredicateAlsoCatchesStarvation) {
  // The starvation lasso of the dropped handover is a one-process spin:
  // trivially 2-bounded, so even the most restrictive daemon class
  // exhibits it — the kKBounded predicate must report it too.
  const LivenessConfig cfg = drop_fork_config();
  Options opt = live_options(80, 20'000'000, /*include_timers=*/true);
  opt.fairness = Fairness::kKBounded;
  opt.fairness_k = 2;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  EXPECT_TRUE(r.violation_found);
  EXPECT_GT(r.cycle_length, 0u);
  EXPECT_NE(r.violation.find("k-bounded"), std::string::npos) << r.violation;
}

// ------------------------------------------------- round-trip / parity

TEST(LivenessRoundTrip, LassoUnrollsForAnyLapCount) {
  const LivenessConfig cfg = drop_fork_config();
  const Options opt = live_options(80, 20'000'000, /*include_timers=*/true);
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  ASSERT_TRUE(r.violation_found);
  ASSERT_GT(r.cycle_length, 0u);
  const auto factory = make_dinner_liveness_factory(cfg);
  for (std::size_t laps : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    const auto replay = unroll_lasso(factory, r, laps, opt);
    EXPECT_TRUE(replay.valid) << laps << " laps";
    EXPECT_EQ(replay.laps_closed, laps);
    EXPECT_EQ(replay.fired.size(), r.stem_length + laps * r.cycle_length);
  }
}

void expect_same_result(const Result& a, const Result& b, const std::string& what) {
  // Every field except wall_seconds (explicitly outside the guarantee).
  EXPECT_EQ(a.nodes_executed, b.nodes_executed) << what;
  EXPECT_EQ(a.replayed_events, b.replayed_events) << what;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << what;
  EXPECT_EQ(a.paths_truncated, b.paths_truncated) << what;
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned) << what;
  EXPECT_EQ(a.max_depth_seen, b.max_depth_seen) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
  EXPECT_EQ(a.unique_states, b.unique_states) << what;
  EXPECT_EQ(a.scc_count, b.scc_count) << what;
  EXPECT_EQ(a.fair_cycles, b.fair_cycles) << what;
  EXPECT_EQ(a.violation_found, b.violation_found) << what;
  EXPECT_EQ(a.violation, b.violation) << what;
  EXPECT_EQ(a.counterexample, b.counterexample) << what;
  EXPECT_EQ(a.stem_length, b.stem_length) << what;
  EXPECT_EQ(a.cycle_length, b.cycle_length) << what;
  EXPECT_EQ(a.config_error, b.config_error) << what;
}

TEST(LivenessRoundTrip, ResultBitIdenticalForOneTwoEightThreads) {
  // One certifying config and one violating config, each swept over the
  // thread grid: graph construction, SCC analysis and witness choice must
  // be pure functions of (factory, options).
  LivenessConfig clean;
  clean.topology = "clique";
  clean.n = 3;
  const LivenessConfig broken = drop_fork_config();
  for (const bool use_broken : {false, true}) {
    const LivenessConfig& cfg = use_broken ? broken : clean;
    Options opt = live_options(use_broken ? 80 : 120, use_broken ? 20'000'000 : 80'000'000,
                               /*include_timers=*/use_broken);
    opt.threads = 1;
    const Result base = check_liveness(make_dinner_liveness_factory(cfg), opt);
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      opt.threads = threads;
      const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
      expect_same_result(base, r,
                         (use_broken ? "broken@" : "clean@") + std::to_string(threads));
    }
  }
}

// ------------------------------------------------------------- guards

TEST(LivenessGuards, RefusesSleepSets) {
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 2;
  Options opt = live_options(60, 1'000'000);
  opt.sleep_sets = true;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.config_error, ekbd::mc::kLivenessSleepSetRefusal);
  EXPECT_FALSE(r.violation_found);  // no verdict, not a violation
  EXPECT_EQ(r.unique_states, 0u);
  EXPECT_EQ(r.nodes_executed, 0u);
}

TEST(LivenessGuards, RefusesRandomWalks) {
  LivenessConfig cfg;
  cfg.topology = "clique";
  cfg.n = 2;
  Options opt = live_options(60, 1'000'000);
  opt.random_walks = 16;
  const Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.config_error, ekbd::mc::kLivenessRandomWalkRefusal);
  EXPECT_EQ(r.unique_states, 0u);
}

/// Adapt the liveness factory for plain explore() (safety DFS).
ekbd::mc::WorldFactory as_world_factory(LivenessConfig cfg) {
  return [cfg]() -> std::unique_ptr<ekbd::mc::World> {
    return std::make_unique<DinnerLivenessWorld>(cfg);
  };
}

TEST(LivenessGuards, SleepSetVerdictUnchangedOnFiniteCrashFreeWorlds) {
  // The tick-insensitivity contract (sleep_sets.hpp): on crash-free
  // truthful-oracle worlds, pruning only drops permutations of commuting
  // deliveries, so explore()'s VERDICT cannot change — regression-tested
  // here on the finite-meal liveness worlds, one clean and one whose
  // every schedule deadlocks.
  LivenessConfig clean;
  clean.topology = "clique";
  clean.n = 2;
  clean.meals = 1;

  LivenessConfig broken = drop_fork_config();
  broken.meals = 1;

  for (const bool use_broken : {false, true}) {
    const LivenessConfig& cfg = use_broken ? broken : clean;
    Options opt;
    opt.max_depth = 80;
    opt.max_nodes = 20'000'000;
    opt.include_timers = false;  // message-driven: the worlds stay tick-insensitive
    opt.threads = 2;
    const Result plain = explore(as_world_factory(cfg), opt);
    opt.sleep_sets = true;
    const Result pruned = explore(as_world_factory(cfg), opt);

    EXPECT_EQ(plain.violation_found, pruned.violation_found);
    EXPECT_EQ(plain.violation, pruned.violation);
    EXPECT_FALSE(plain.budget_exhausted);
    EXPECT_FALSE(pruned.budget_exhausted);
    EXPECT_LE(pruned.nodes_executed, plain.nodes_executed);
    if (use_broken) {
      // The dropped handover strands the requester; with timers excluded
      // the stranded state is a deadlock on every schedule. (No pruning
      // expected here: one hungry process serializes every schedule on a
      // single edge, so no two eligible deliveries ever commute.)
      EXPECT_TRUE(plain.violation_found);
      EXPECT_NE(plain.violation.find("deadlock"), std::string::npos) << plain.violation;
    } else {
      EXPECT_TRUE(plain.ok()) << plain.violation;
      EXPECT_GT(plain.paths_completed, 0u);
      // Both hungry: the two opening pings commute, so the reduction
      // must actually have engaged for the verdict equality to mean
      // anything.
      EXPECT_GT(pruned.sleep_pruned, 0u);
    }
  }
}

}  // namespace
