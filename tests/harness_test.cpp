// Harness tests: hunger driving, think-forever, drain mode, eat hook,
// crash bookkeeping — the environment half of the dining model.
#include <gtest/gtest.h>

#include <vector>

#include "core/wait_free_diner.hpp"
#include "dining/harness.hpp"
#include "fd/scripted.hpp"
#include "graph/topology.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::Harness;
using ekbd::dining::HarnessOptions;
using ekbd::dining::TraceEventKind;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;

struct World {
  explicit World(std::size_t n, HarnessOptions opt = {})
      : graph(ekbd::graph::ring(n)), sim(7), det(sim, 50), harness(sim, graph, opt) {
    colors = ekbd::graph::greedy_coloring(graph);
    for (std::size_t p = 0; p < n; ++p) {
      std::vector<ProcessId> neighbors = graph.neighbors(static_cast<ProcessId>(p));
      std::vector<int> ncolors;
      for (ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
      diners.push_back(sim.make_actor<ekbd::core::WaitFreeDiner>(
          std::move(neighbors), colors[p], std::move(ncolors), det));
      harness.manage(diners.back());
    }
  }
  ekbd::graph::ConflictGraph graph;
  Simulator sim;
  ekbd::fd::ScriptedDetector det;
  Harness harness;
  ekbd::graph::Coloring colors;
  std::vector<ekbd::core::WaitFreeDiner*> diners;
};

TEST(Harness, DrivesRepeatedHungerForEveryone) {
  World w(5);
  w.harness.run_until(20'000);
  for (std::size_t p = 0; p < 5; ++p) {
    EXPECT_GT(w.harness.trace().count(TraceEventKind::kBecameHungry, static_cast<int>(p)), 5u)
        << p;
  }
}

TEST(Harness, ThinkForeverProcessNeverGetsHungryAgain) {
  World w(5);
  w.harness.set_think_forever(2, true);
  w.harness.run_until(30'000);
  // p2 may have been hungry at most once (the initial hunger could fire
  // before think-forever takes effect is impossible here: set before run).
  EXPECT_EQ(w.harness.trace().count(TraceEventKind::kBecameHungry, 2), 0u);
  // Everyone else lives a normal life.
  EXPECT_GT(w.harness.trace().count(TraceEventKind::kStartEating, 0), 5u);
}

TEST(Harness, ThinkForeverCanBeLifted) {
  World w(4);
  w.harness.set_think_forever(1, true);
  w.harness.run_until(10'000);
  EXPECT_EQ(w.harness.trace().count(TraceEventKind::kBecameHungry, 1), 0u);
  w.harness.set_think_forever(1, false);
  // Re-arm: hunger scheduling for p1 stopped, so nudge via a new cycle:
  // the harness only schedules on StopEating, so lift + manual kick.
  w.sim.schedule(w.sim.now() + 10, [&] {
    if (w.diners[1]->thinking()) w.diners[1]->become_hungry();
  });
  w.harness.run_until(20'000);
  EXPECT_GT(w.harness.trace().count(TraceEventKind::kStartEating, 1), 0u);
}

TEST(Harness, StopHungerDrainsToThinking) {
  World w(6);
  w.harness.stop_hunger_after(10'000);
  w.harness.run_until(40'000);
  for (auto* d : w.diners) EXPECT_TRUE(d->thinking());
  // No hunger events after the deadline.
  for (const auto& e : w.harness.trace().events()) {
    if (e.kind == TraceEventKind::kBecameHungry) EXPECT_LT(e.at, 10'000);
  }
}

TEST(Harness, EatHookFiresOncePerMeal) {
  World w(4);
  std::size_t hook_calls = 0;
  w.harness.set_eat_hook([&](ProcessId) { ++hook_calls; });
  w.harness.run_until(15'000);
  EXPECT_EQ(hook_calls, w.harness.trace().count(TraceEventKind::kStartEating));
  EXPECT_GT(hook_calls, 0u);
}

TEST(Harness, CrashTimesReflectSimulator) {
  World w(4);
  w.harness.schedule_crash(3, 5'000);
  w.harness.run_until(10'000);
  auto ct = w.harness.crash_times();
  ASSERT_EQ(ct.size(), 4u);
  EXPECT_EQ(ct[3], 5'000);
  EXPECT_EQ(ct[0], -1);
  EXPECT_EQ(w.harness.trace().count(TraceEventKind::kCrashed, 3), 1u);
}

TEST(Harness, DinerLookupById) {
  World w(3);
  EXPECT_EQ(w.harness.diner(1), w.diners[1]);
  EXPECT_EQ(w.harness.diner(2), w.diners[2]);
}

TEST(Harness, EatingDurationsWithinConfiguredRange) {
  HarnessOptions opt;
  opt.eat_lo = 10;
  opt.eat_hi = 12;
  World w(4, opt);
  w.harness.run_until(20'000);
  // Reconstruct meal durations from the trace.
  std::vector<ekbd::sim::Time> start(4, -1);
  for (const auto& e : w.harness.trace().events()) {
    auto p = static_cast<std::size_t>(e.process);
    if (e.kind == TraceEventKind::kStartEating) start[p] = e.at;
    if (e.kind == TraceEventKind::kStopEating && start[p] >= 0) {
      const auto dur = e.at - start[p];
      EXPECT_GE(dur, 10);
      EXPECT_LE(dur, 12);
      start[p] = -1;
    }
  }
}

TEST(Harness, CrashedProcessStopsParticipating) {
  World w(5);
  w.harness.schedule_crash(0, 2'000);
  w.harness.run_until(30'000);
  // No scheduling events for p0 after the crash instant.
  for (const auto& e : w.harness.trace().events()) {
    if (e.process == 0 && e.at > 2'000) {
      ADD_FAILURE() << "dead process produced " << ekbd::dining::to_string(e.kind)
                    << " at t=" << e.at;
    }
  }
}

}  // namespace
