// Model-checking tests: exhaustively (or by mass random walks) explore
// message interleavings of Algorithm 1 in controlled-execution mode,
// verifying the safety invariants over EVERY schedule of small worlds —
// the strongest form of evidence a test suite can give for Lemmas 1.1/1.2
// and Theorem 1's no-mistake case.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/chandy_misra_diner.hpp"
#include "baseline/doorway_diner.hpp"
#include "core/wait_free_diner.hpp"
#include "drinking/drinking_diner.hpp"
#include "fd/detector.hpp"
#include "fd/scripted.hpp"
#include "mc/explorer.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::core::WaitFreeDiner;
using ekbd::fd::ScriptedDetector;
using ekbd::mc::Options;
using ekbd::mc::Result;
using ekbd::mc::World;
using ekbd::sim::ExecMode;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;

/// Two diners on one edge in controlled mode. Both become hungry at the
/// start; when one starts eating, ending the meal is *scheduled as a
/// choice event* — the adversary also controls meal lengths relative to
/// message arrivals. Goal: both have eaten and gone back to thinking.
class EdgeWorld : public World {
 public:
  /// `mutual_suspicion_steps` > 0 injects a scripted mutual false positive
  /// covering the first N ticks of virtual time (controlled-mode time = one
  /// tick per event), to explore schedules during an oracle mistake.
  explicit EdgeWorld(bool crash_hi = false, long mutual_suspicion_steps = 0)
      : sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled),
        det_(sim_, 0),
        crash_hi_(crash_hi) {
    if (mutual_suspicion_steps > 0) {
      det_.add_mutual_false_positive(0, 1, 0, mutual_suspicion_steps);
      allow_exclusion_violation_ = true;
    }
    hi_ = sim_.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                         det_);
    lo_ = sim_.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                         det_);
    for (WaitFreeDiner* d : {hi_, lo_}) {
      d->set_event_callback([this](ekbd::dining::Diner& diner,
                                   ekbd::dining::TraceEventKind kind) {
        if (kind == ekbd::dining::TraceEventKind::kStartEating) {
          auto* wd = static_cast<WaitFreeDiner*>(&diner);
          ++meals_[wd == hi_ ? 0 : 1];
          // Ending the meal becomes one more adversarial choice.
          sim_.schedule(sim_.now(), [wd] {
            if (wd->eating()) wd->finish_eating();
          });
        }
      });
    }
    sim_.start();
    if (crash_hi_) {
      // The crash instant is adversarial too.
      sim_.schedule(0, [this] { sim_.crash(0); });
    }
    hi_->become_hungry();
    lo_->become_hungry();
  }

  Simulator& simulator() override { return sim_; }

  std::string check() override {
    if (hi_->holds_fork(1) && lo_->holds_fork(0)) return "fork duplicated";
    if (hi_->holds_token(1) && lo_->holds_token(0)) return "token duplicated";
    if (hi_->lemma11_violations() + lo_->lemma11_violations() > 0) {
      return "Lemma 1.1 violated (request reached a non-holder)";
    }
    // ◇WX concerns *live* neighbors; a process that crashed mid-meal has
    // its state frozen at eating but holds no claim on the resource.
    if (!allow_exclusion_violation_ && hi_->eating() && lo_->eating() &&
        !sim_.crashed(0) && !sim_.crashed(1)) {
      return "live neighbors eating simultaneously with a truthful oracle";
    }
    return "";
  }

  bool done() override {
    if (crash_hi_) {
      // hi may or may not have eaten before dying; lo must always eat.
      return meals_[1] >= 1 && !lo_->eating();
    }
    return meals_[0] >= 1 && meals_[1] >= 1 && hi_->thinking() && lo_->thinking();
  }

 private:
  Simulator sim_;
  ScriptedDetector det_;
  bool crash_hi_;
  bool allow_exclusion_violation_ = false;
  WaitFreeDiner* hi_ = nullptr;
  WaitFreeDiner* lo_ = nullptr;
  int meals_[2] = {0, 0};
};

TEST(ControlledMode, EligibleEventsRespectChannelFifo) {
  struct Echo : ekbd::sim::Actor {
    void on_message(const ekbd::sim::Message&) override {}
    using Actor::send;
  };
  Simulator sim(1, nullptr, ExecMode::kControlled);
  auto* a = sim.make_actor<Echo>();
  auto* b = sim.make_actor<Echo>();
  sim.start();
  a->send(b->id(), int{1}, ekbd::sim::MsgLayer::kOther);
  a->send(b->id(), int{2}, ekbd::sim::MsgLayer::kOther);
  b->send(a->id(), int{3}, ekbd::sim::MsgLayer::kOther);
  auto eligible = sim.eligible_events();
  // Only the FIRST a->b message plus the b->a message are eligible.
  ASSERT_EQ(eligible.size(), 2u);
  // Executing an ineligible id fails; executing the head succeeds and
  // unlocks the second message.
  EXPECT_TRUE(sim.execute_event(eligible[0].id));
  EXPECT_EQ(sim.eligible_events().size(), 2u);
}

TEST(ControlledMode, ExecuteUnknownIdFails) {
  Simulator sim(1, nullptr, ExecMode::kControlled);
  EXPECT_FALSE(sim.execute_event(12345));
}

TEST(ModelCheck, ExhaustiveCrashFreeEdgeIsSafeAndLive) {
  // EVERY schedule: forks/tokens unique, Lemma 1.1 holds, never two
  // eaters, no deadlock, both diners complete a meal.
  Options opt;
  opt.include_timers = false;  // crash-free progress is message-driven
  opt.max_depth = 60;
  opt.max_nodes = 2'000'000;
  Result r = ekbd::mc::explore([] { return std::make_unique<EdgeWorld>(); }, opt);
  EXPECT_TRUE(r.ok()) << r.violation << " (path length "
                      << r.counterexample.size() << ")";
  EXPECT_FALSE(r.budget_exhausted) << "state space unexpectedly large: "
                                   << r.nodes_executed;
  EXPECT_GT(r.paths_completed, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
}

TEST(ModelCheck, ExhaustiveWithAdversarialCrash) {
  // The fork holder may crash at ANY point relative to every message;
  // timers must be offered (suspicion progress needs the pump), and every
  // schedule must still feed the survivor. Depth-bounded: the pump timer
  // re-arms forever, so complete paths are those where lo finishes first.
  Options opt;
  opt.include_timers = true;
  opt.max_depth = 26;
  opt.max_nodes = 3'000'000;
  Result r = ekbd::mc::explore([] { return std::make_unique<EdgeWorld>(true); }, opt);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.paths_completed, 0u);
}

TEST(ModelCheck, RandomWalksDuringMutualSuspicion) {
  // During a mutual false positive both may enter the doorway and eat
  // together (allowed pre-convergence); fork/token/Lemma-1.1 invariants
  // must STILL hold on every schedule.
  Options opt;
  opt.include_timers = true;
  opt.max_depth = 80;
  opt.random_walks = 3'000;
  opt.seed = 7;
  Result r = ekbd::mc::explore(
      [] { return std::make_unique<EdgeWorld>(false, 6); }, opt);
  EXPECT_TRUE(r.ok()) << r.violation;
}

/// Baseline edge world: same adversarial setting (both hungry, meal
/// endings as choice events) for any diner type with the common fork
/// accessors. No oracle (NeverSuspect), no crashes: the baselines' home
/// turf, where they too must be safe and deadlock-free on EVERY schedule.
template <typename DinerT>
class BaselineEdgeWorld : public World {
 public:
  BaselineEdgeWorld()
      : sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled) {
    hi_ = sim_.make_actor<DinerT>(std::vector<ProcessId>{1}, 1, std::vector<int>{0}, det_);
    lo_ = sim_.make_actor<DinerT>(std::vector<ProcessId>{0}, 0, std::vector<int>{1}, det_);
    auto hook = [this](ekbd::dining::Diner& diner, ekbd::dining::TraceEventKind kind) {
      if (kind == ekbd::dining::TraceEventKind::kStartEating) {
        auto* d = static_cast<DinerT*>(&diner);
        ++meals_[d == hi_ ? 0 : 1];
        sim_.schedule(sim_.now(), [d] {
          if (d->eating()) d->finish_eating();
        });
      }
    };
    hi_->set_event_callback(hook);
    lo_->set_event_callback(hook);
    sim_.start();
    hi_->become_hungry();
    lo_->become_hungry();
  }

  Simulator& simulator() override { return sim_; }

  std::string check() override {
    if (hi_->holds_fork(1) && lo_->holds_fork(0)) return "fork duplicated";
    if (hi_->eating() && lo_->eating()) return "neighbors eating simultaneously";
    return "";
  }

  bool done() override {
    return meals_[0] >= 1 && meals_[1] >= 1 && hi_->thinking() && lo_->thinking();
  }

 private:
  Simulator sim_;
  ekbd::fd::NeverSuspect det_;
  DinerT* hi_ = nullptr;
  DinerT* lo_ = nullptr;
  int meals_[2] = {0, 0};
};

TEST(ModelCheck, ExhaustiveChoySinghEdge) {
  Options opt;
  opt.include_timers = false;
  opt.max_depth = 60;
  opt.max_nodes = 2'000'000;
  Result r = ekbd::mc::explore(
      [] { return std::make_unique<BaselineEdgeWorld<ekbd::baseline::DoorwayDiner>>(); },
      opt);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.paths_completed, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
}

TEST(ModelCheck, ExhaustiveChandyMisraEdge) {
  Options opt;
  opt.include_timers = false;
  opt.max_depth = 60;
  opt.max_nodes = 2'000'000;
  Result r = ekbd::mc::explore(
      [] { return std::make_unique<BaselineEdgeWorld<ekbd::baseline::ChandyMisraDiner>>(); },
      opt);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_GT(r.paths_completed, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
}

/// Drinking edge world: both endpoints cycle thirst sessions that need the
/// shared bottle. Meal endings are internal to the construction; drink
/// endings and re-thirsts are adversarial choice events. Invariants: the
/// shared bottle is never double-held, never requested from a non-holder,
/// and the two never drink simultaneously (both always need the bottle,
/// oracle truthful). Goal: both complete a drink (one each keeps the
/// exhaustive space tractable; the random-walk MC rows in e13 cover
/// longer horizons).
class DrinkingEdgeWorld : public World {
 public:
  DrinkingEdgeWorld()
      : sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled), det_(sim_, 0) {
    hi_ = sim_.make_actor<ekbd::drinking::DrinkingDiner>(std::vector<ProcessId>{1}, 1,
                                                         std::vector<int>{0}, det_);
    lo_ = sim_.make_actor<ekbd::drinking::DrinkingDiner>(std::vector<ProcessId>{0}, 0,
                                                         std::vector<int>{1}, det_);
    auto wire = [this](ekbd::drinking::DrinkingDiner* d, ProcessId peer, int idx) {
      d->set_drink_callback([this, d, peer, idx](ekbd::drinking::DrinkingDiner&,
                                                 ekbd::drinking::DrinkingDiner::DrinkEvent ev) {
        using DrinkEvent = ekbd::drinking::DrinkingDiner::DrinkEvent;
        if (ev == DrinkEvent::kStartDrinking) {
          // Ending the drink is an adversarial choice.
          sim_.schedule(sim_.now(), [d] {
            if (d->drinking()) d->finish_drinking();
          });
        } else if (ev == DrinkEvent::kStopDrinking) {
          ++drinks_[idx];
          if (drinks_[idx] < kTargetDrinks) {
            // Re-thirst (another choice event); retry until the dining
            // session has drained back to thinking.
            rethirst(d, peer);
          }
        }
      });
    };
    wire(hi_, 1, 0);
    wire(lo_, 0, 1);
    sim_.start();
    hi_->become_thirsty({1});
    lo_->become_thirsty({0});
  }

  Simulator& simulator() override { return sim_; }

  std::string check() override {
    if (hi_->holds_bottle(1) && lo_->holds_bottle(0)) return "bottle duplicated";
    if (hi_->bottle_conservation_violations() + lo_->bottle_conservation_violations() > 0) {
      return "bottle conservation violated";
    }
    if (hi_->drinking() && lo_->drinking()) {
      return "shared-bottle co-drinking with a truthful oracle";
    }
    if (hi_->holds_fork(1) && lo_->holds_fork(0)) return "fork duplicated";
    return "";
  }

  bool done() override { return drinks_[0] >= kTargetDrinks && drinks_[1] >= kTargetDrinks; }

 private:
  void rethirst(ekbd::drinking::DrinkingDiner* d, ProcessId peer) {
    sim_.schedule(sim_.now(), [this, d, peer] {
      if (d->thirsty() || d->drinking()) return;
      if (!d->thinking()) {
        rethirst(d, peer);  // the catalyst dining session is still draining
        return;
      }
      d->become_thirsty({peer});
    });
  }

  Simulator sim_;
  ScriptedDetector det_;
  ekbd::drinking::DrinkingDiner* hi_ = nullptr;
  ekbd::drinking::DrinkingDiner* lo_ = nullptr;
  static constexpr int kTargetDrinks = 1;
  int drinks_[2] = {0, 0};
};

TEST(ModelCheck, ExhaustiveDrinkingEdge) {
  Options opt;
  opt.include_timers = false;  // crash-free drinking progress is message-driven
  opt.max_depth = 80;
  opt.max_nodes = 10'000'000;
  Result r = ekbd::mc::explore([] { return std::make_unique<DrinkingEdgeWorld>(); }, opt);
  EXPECT_TRUE(r.ok()) << r.violation << " (depth " << r.counterexample.size() << ")";
  EXPECT_FALSE(r.budget_exhausted) << r.nodes_executed;
  EXPECT_GT(r.paths_completed, 0u);
  EXPECT_EQ(r.paths_truncated, 0u);
}

TEST(ModelCheck, DetectsSeededDeadlock) {
  // Sanity: the explorer can actually find bugs. A world that never
  // reaches its goal and has no events is a deadlock.
  class StuckWorld : public World {
   public:
    StuckWorld() : sim_(1, nullptr, ExecMode::kControlled) { sim_.start(); }
    Simulator& simulator() override { return sim_; }
    std::string check() override { return ""; }
    bool done() override { return false; }

   private:
    Simulator sim_;
  };
  Result r = ekbd::mc::explore([] { return std::make_unique<StuckWorld>(); }, Options{});
  EXPECT_TRUE(r.violation_found);
  EXPECT_NE(r.violation.find("deadlock"), std::string::npos);
}

TEST(ModelCheck, DetectsSeededInvariantViolation) {
  // Sanity: a world whose invariant fails after the 3rd event is caught,
  // with a counterexample path of length 3.
  class BadWorld : public World {
   public:
    BadWorld() : sim_(1, nullptr, ExecMode::kControlled) {
      struct Echo : ekbd::sim::Actor {
        void on_message(const ekbd::sim::Message&) override {}
        using Actor::send;
      };
      auto* a = sim_.make_actor<Echo>();
      auto* b = sim_.make_actor<Echo>();
      sim_.start();
      for (int i = 0; i < 5; ++i) a->send(b->id(), i, ekbd::sim::MsgLayer::kOther);
    }
    Simulator& simulator() override { return sim_; }
    std::string check() override {
      return sim_.events_processed() >= 3 ? "boom" : "";
    }
    bool done() override { return true; }

   private:
    Simulator sim_;
  };
  Result r = ekbd::mc::explore([] { return std::make_unique<BadWorld>(); }, Options{});
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.violation, "boom");
  EXPECT_EQ(r.counterexample.size(), 3u);
}

}  // namespace
