// Workload-harness tests: open-loop arrival processes, churn planning
// over dynamic conflict graphs, the load book + overload detector, and
// the full LoadScenario wiring on both engines.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "dining/trace.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/topology.hpp"
#include "load/arrivals.hpp"
#include "load/churn.hpp"
#include "load/controller.hpp"
#include "obs/json.hpp"
#include "scenario/load_scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/rng.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::load::ArrivalKind;
using ekbd::load::ArrivalProcess;
using ekbd::load::ArrivalSpec;
using ekbd::load::ChurnOp;
using ekbd::load::ChurnParams;
using ekbd::load::ChurnPlan;
using ekbd::load::CrashWindow;
using ekbd::load::LoadBook;
using ekbd::load::OverloadDetector;
using ekbd::load::OverloadParams;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Engine;
using ekbd::scenario::LoadConfig;
using ekbd::scenario::LoadScenario;
using ekbd::scenario::RecoverySpec;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

// ------------------------------------------------------------- arrivals

std::vector<Time> realize(const ArrivalSpec& spec, std::uint64_t seed, Time horizon) {
  ArrivalProcess proc(spec);
  ekbd::sim::Rng rng(seed);
  std::vector<Time> out;
  Time t = 0;
  while (true) {
    t = proc.next_after(t, rng);
    if (t >= horizon) break;
    out.push_back(t);
  }
  return out;
}

TEST(Arrivals, DeterministicReplay) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_kilotick = 10.0;
  const auto a = realize(spec, 42, 50'000);
  const auto b = realize(spec, 42, 50'000);
  const auto c = realize(spec, 43, 50'000);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Arrivals, GapsStrictlyAdvance) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kUniform, ArrivalKind::kBursty}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_per_kilotick = 20.0;
    const auto ts = realize(spec, 7, 30'000);
    ASSERT_GT(ts.size(), 10u) << to_string(kind);
    for (std::size_t i = 1; i < ts.size(); ++i) {
      EXPECT_LT(ts[i - 1], ts[i]) << to_string(kind);
    }
  }
}

TEST(Arrivals, PoissonRateMatchesSpec) {
  ArrivalSpec spec;
  spec.rate_per_kilotick = 10.0;  // expect ~2000 arrivals in 200k ticks
  const auto ts = realize(spec, 5, 200'000);
  EXPECT_GT(ts.size(), 1'700u);
  EXPECT_LT(ts.size(), 2'300u);
}

TEST(Arrivals, UniformGapsWithinBounds) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kUniform;
  spec.gap_lo = 100;
  spec.gap_hi = 300;
  const auto ts = realize(spec, 9, 100'000);
  ASSERT_GT(ts.size(), 100u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    const Time gap = ts[i] - ts[i - 1];
    EXPECT_GE(gap, 100);
    EXPECT_LE(gap, 300);
  }
}

TEST(Arrivals, BurstyConcentratesArrivalsInBursts) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.rate_per_kilotick = 5.0;
  spec.burst_len = 2'000;
  spec.idle_len = 8'000;
  spec.burst_factor = 8.0;
  const auto ts = realize(spec, 11, 400'000);
  std::size_t in_burst = 0;
  const Time cycle = spec.burst_len + spec.idle_len;
  for (Time t : ts) {
    if (t % cycle < spec.burst_len) ++in_burst;
  }
  // Bursts are 20% of wall time but carry rate×8 vs rate÷8: the burst
  // phase must dominate the count by a wide margin.
  EXPECT_GT(in_burst, (ts.size() - in_burst) * 4);
}

TEST(Arrivals, SplitPreservesAggregateRate) {
  ArrivalSpec spec;
  spec.rate_per_kilotick = 12.0;
  spec.per_actor = false;
  const ArrivalSpec each = spec.split(4);
  EXPECT_TRUE(each.per_actor);
  EXPECT_DOUBLE_EQ(each.rate_per_kilotick, 3.0);
}

// ---------------------------------------------------------------- churn

/// Replay `plan` against a copy of (g, c), asserting validity of every op
/// at its point in the sequence. Returns the mutated pair.
void replay_plan(const ChurnPlan& plan, ekbd::graph::ConflictGraph g,
                 ekbd::graph::Coloring c, bool expect_min_degree_one) {
  Time prev = -1;
  for (const ChurnOp& op : plan.ops) {
    ASSERT_GE(op.at, prev) << "ops must be time-sorted";
    prev = op.at;
    switch (op.kind) {
      case ChurnOp::Kind::kRecolor:
        c[static_cast<std::size_t>(op.a)] = op.color;
        break;
      case ChurnOp::Kind::kAddEdge:
        ASSERT_FALSE(g.adjacent(op.a, op.b)) << "duplicate add " << op.a << "-" << op.b;
        g.add_edge(op.a, op.b);
        break;
      case ChurnOp::Kind::kRemoveEdge:
        ASSERT_TRUE(g.adjacent(op.a, op.b)) << "removing absent " << op.a << "-" << op.b;
        g.remove_edge(op.a, op.b);
        if (expect_min_degree_one) {
          EXPECT_GE(g.degree(op.a), 1u);
          EXPECT_GE(g.degree(op.b), 1u);
        }
        break;
    }
    // Proper after *every* step — the recolor-before-add ordering exists
    // exactly so no intermediate instant has two adjacent equal colors.
    ASSERT_TRUE(ekbd::graph::is_proper(g, c)) << "improper after op at t=" << op.at;
  }
  EXPECT_EQ(g.edges(), plan.final_graph.edges());
  EXPECT_EQ(c, plan.final_colors);
}

TEST(Churn, PlanReplaysValidAndProper) {
  ekbd::graph::ConflictGraph g = ekbd::graph::ring(12);
  const ekbd::graph::Coloring c = ekbd::graph::welsh_powell_coloring(g);
  ChurnParams params;
  params.mutations = 200;
  params.start = 1'000;
  params.end = 100'000;
  const ChurnPlan plan = ekbd::load::plan_churn(g, c, params, {}, 77);
  EXPECT_EQ(plan.mutations(), 200u);
  EXPECT_EQ(plan.ops.size(), plan.adds + plan.removes + plan.recolors);
  for (const ChurnOp& op : plan.ops) {
    EXPECT_GE(op.at, params.start);
    EXPECT_LE(op.at, params.end);
  }
  replay_plan(plan, g, c, /*expect_min_degree_one=*/true);
  // Local repair keeps the greedy palette bound on the final graph.
  EXPECT_LE(ekbd::graph::num_colors(plan.final_colors),
            plan.final_graph.max_degree() + 1);
}

TEST(Churn, DeterministicInSeed) {
  ekbd::graph::ConflictGraph g = ekbd::graph::ring(10);
  const ekbd::graph::Coloring c = ekbd::graph::welsh_powell_coloring(g);
  ChurnParams params;
  params.mutations = 50;
  params.start = 0;
  params.end = 20'000;
  const ChurnPlan p1 = ekbd::load::plan_churn(g, c, params, {}, 5);
  const ChurnPlan p2 = ekbd::load::plan_churn(g, c, params, {}, 5);
  const ChurnPlan p3 = ekbd::load::plan_churn(g, c, params, {}, 6);
  ASSERT_EQ(p1.ops.size(), p2.ops.size());
  for (std::size_t i = 0; i < p1.ops.size(); ++i) {
    EXPECT_EQ(p1.ops[i].at, p2.ops[i].at);
    EXPECT_EQ(p1.ops[i].kind, p2.ops[i].kind);
    EXPECT_EQ(p1.ops[i].a, p2.ops[i].a);
    EXPECT_EQ(p1.ops[i].b, p2.ops[i].b);
  }
  EXPECT_NE(p1.final_graph.edges(), p3.final_graph.edges());
}

TEST(Churn, AvoidsCrashWindows) {
  ekbd::graph::ConflictGraph g = ekbd::graph::ring(10);
  const ekbd::graph::Coloring c = ekbd::graph::welsh_powell_coloring(g);
  ChurnParams params;
  params.mutations = 120;
  params.start = 0;
  params.end = 80'000;
  const std::vector<CrashWindow> windows = {
      {3, 20'000, 40'000, 1'000},  // outage with recovery
      {7, 60'000, -1, 1'000},      // crash, never comes back
  };
  const ChurnPlan plan = ekbd::load::plan_churn(g, c, params, windows, 13);
  ASSERT_GT(plan.ops.size(), 0u);
  for (const ChurnOp& op : plan.ops) {
    const bool touches_3 = op.a == 3 || (op.kind != ChurnOp::Kind::kRecolor && op.b == 3);
    const bool touches_7 = op.a == 7 || (op.kind != ChurnOp::Kind::kRecolor && op.b == 7);
    if (touches_3) {
      EXPECT_FALSE(op.at >= 19'000 && op.at <= 41'000) << "op at t=" << op.at;
    }
    if (touches_7) {
      EXPECT_LT(op.at, 59'000) << "op at t=" << op.at;
    }
  }
}

// ------------------------------------------------- load book + detector

TEST(LoadBook, ArrivalsBacklogAndDrain) {
  LoadBook book(4);
  EXPECT_TRUE(book.on_arrival(1, /*idle=*/true));   // starts immediately
  EXPECT_FALSE(book.on_arrival(1, /*idle=*/false));  // queues
  EXPECT_FALSE(book.on_arrival(1, /*idle=*/false));
  EXPECT_EQ(book.offered(), 3u);
  EXPECT_EQ(book.backlog(1), 2u);
  EXPECT_EQ(book.max_backlog(), 2u);

  book.on_complete();
  EXPECT_TRUE(book.try_drain(1));
  EXPECT_EQ(book.backlog(1), 1u);
  EXPECT_TRUE(book.try_drain(1));
  EXPECT_FALSE(book.try_drain(1));  // queue empty
  EXPECT_EQ(book.completed(), 1u);
  EXPECT_EQ(book.dropped(), 0u);
}

TEST(LoadBook, CrashShedsQueue) {
  LoadBook book(3);
  EXPECT_FALSE(book.on_arrival(2, false));
  EXPECT_FALSE(book.on_arrival(2, false));
  book.on_arrival_dropped();  // arrival addressed at a corpse
  book.on_crash(2);
  EXPECT_EQ(book.backlog(2), 0u);
  EXPECT_EQ(book.dropped(), 3u);  // 2 shed + 1 dead-on-arrival
  EXPECT_EQ(book.offered(), 3u);
  EXPECT_FALSE(book.try_drain(2));
}

TEST(Overload, KeepingUpNeverFlags) {
  OverloadParams params;
  params.window = 4;
  OverloadDetector det(params);
  // Completions track offers exactly; queues stay empty.
  for (int i = 0; i <= 20; ++i) {
    det.observe({i * 100, static_cast<std::uint64_t>(i * 10),
                 static_cast<std::uint64_t>(i * 10), 0});
  }
  EXPECT_FALSE(det.overloaded());
  EXPECT_EQ(det.overloaded_samples(), 0u);
  EXPECT_DOUBLE_EQ(det.window_completion_ratio(), 1.0);
}

TEST(Overload, PersistentLagWithBacklogFlags) {
  OverloadParams params;
  params.window = 4;
  params.lag_ratio = 0.9;
  params.backlog_watermark = 4;
  OverloadDetector det(params);
  // Offered 20/interval, completed 10/interval, queue growing.
  for (int i = 0; i <= 10; ++i) {
    det.observe({i * 100, static_cast<std::uint64_t>(i * 20),
                 static_cast<std::uint64_t>(i * 10),
                 static_cast<std::uint64_t>(i * 10)});
  }
  EXPECT_TRUE(det.overloaded());
  EXPECT_GT(det.overloaded_samples(), 0u);
  EXPECT_LT(det.window_completion_ratio(), 0.9);
  EXPECT_EQ(det.backlog_high_water(), 100u);
}

TEST(Overload, EmptyQueuesVetoTheFlag) {
  OverloadParams params;
  params.window = 4;
  params.backlog_watermark = 4;
  OverloadDetector det(params);
  // Ratio lags (rounding-noise regime) but queues never build.
  for (int i = 0; i <= 10; ++i) {
    det.observe({i * 100, static_cast<std::uint64_t>(i * 20),
                 static_cast<std::uint64_t>(i * 10), 1});
  }
  EXPECT_FALSE(det.overloaded());
}

TEST(Overload, TinyWindowsIgnored) {
  OverloadParams params;
  params.window = 4;
  params.min_offered = 8;
  OverloadDetector det(params);
  // Severe lag but only ~1 arrival per window: noise, not overload.
  for (int i = 0; i <= 10; ++i) {
    det.observe({i * 100, static_cast<std::uint64_t>(i), 0, 10});
  }
  EXPECT_FALSE(det.overloaded());
}

// ------------------------------------------------- LoadScenario (sim)

LoadConfig sim_load_config(std::uint64_t seed, std::size_t n, Time run_for) {
  LoadConfig lc;
  lc.base.seed = seed;
  lc.base.topology = "ring";
  lc.base.n = n;
  lc.base.algorithm = Algorithm::kWaitFree;
  lc.base.detector = DetectorKind::kPerfect;
  lc.base.run_for = run_for;
  return lc;
}

TEST(LoadScenarioSim, ModerateOpenLoopKeepsUp) {
  LoadConfig lc = sim_load_config(3, 8, 60'000);
  lc.arrivals.rate_per_kilotick = 2.0;  // one session per 500 ticks per actor
  LoadScenario sc(lc);
  sc.run();

  EXPECT_GT(sc.book().offered(), 400u);
  // Sessions complete at nearly the offered rate (the tail of the run may
  // hold a few in flight).
  EXPECT_GE(sc.book().completed() + 3 * lc.base.n, sc.book().offered());
  EXPECT_EQ(sc.book().dropped(), 0u);
  EXPECT_FALSE(sc.overload().overloaded());
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_TRUE(sc.wait_freedom(10'000).wait_free());
  EXPECT_EQ(sc.monitor_agreement(), "");
  EXPECT_GT(sc.latency().count(), 0u);
}

TEST(LoadScenarioSim, SustainedOverloadIsDetected) {
  LoadConfig lc = sim_load_config(5, 8, 60'000);
  lc.arrivals.rate_per_kilotick = 50.0;  // one arrival per 20 ticks ≫ capacity
  lc.overload.backlog_watermark = 8;
  LoadScenario sc(lc);
  sc.run();

  EXPECT_GT(sc.book().offered(), sc.book().completed());
  EXPECT_TRUE(sc.overload().overloaded());
  EXPECT_GT(sc.overload().backlog_high_water(), 8u);
  EXPECT_GE(sc.book().max_backlog(), 4u);
  // Overload degrades latency, never safety.
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.monitor_agreement(), "");
  // The p99/p999 the harness exists to measure are well defined under
  // sustained overload.
  const auto lat = sc.latency();
  EXPECT_GT(lat.count(), 100u);
  EXPECT_GE(lat.quantile(0.999), lat.quantile(0.50));
}

TEST(LoadScenarioSim, HundredMutationsNoGlobalRecolor) {
  LoadConfig lc = sim_load_config(9, 16, 80'000);
  lc.arrivals.rate_per_kilotick = 1.5;
  lc.churn.mutations = 100;
  LoadScenario sc(lc);
  EXPECT_EQ(sc.churn_plan().mutations(), 100u);
  sc.run();

  // Every op was issued live (no crashes scheduled, nothing skipped).
  EXPECT_EQ(sc.churn_issued(), sc.churn_plan().ops.size());
  EXPECT_EQ(sc.churn_skipped(), 0u);
  // The run actually saw the topology change.
  EXPECT_GT(sc.trace().count(TraceEventKind::kEdgeAdded), 0u);
  EXPECT_GT(sc.trace().count(TraceEventKind::kEdgeRemoved), 0u);
  // "No global recolor": repairs touched at most one vertex per mutation,
  // so recolor ops can never exceed mutations — and the palette stayed
  // within the greedy bound of the final topology.
  EXPECT_LE(sc.churn_plan().recolors, sc.churn_plan().mutations());
  EXPECT_LE(ekbd::graph::num_colors(sc.churn_plan().final_colors),
            sc.churn_plan().final_graph.max_degree() + 1);
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_TRUE(sc.wait_freedom(14'000).wait_free());
  EXPECT_EQ(sc.monitor_agreement(), "");
}

TEST(LoadScenarioSim, FullStackLoadChurnRecovery) {
  LoadConfig lc = sim_load_config(21, 12, 80'000);
  lc.arrivals.kind = ArrivalKind::kBursty;
  lc.arrivals.rate_per_kilotick = 3.0;
  lc.churn.mutations = 40;
  lc.recoveries = {{4, 15'000, 30'000}};
  LoadScenario sc(lc);
  sc.run();

  EXPECT_EQ(sc.trace().count(TraceEventKind::kCrashed, 4), 1u);
  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, 4), 1u);
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.monitor_agreement(), "");
  EXPECT_GT(sc.book().completed(), 0u);
  EXPECT_GT(sc.churn_issued(), 0u);
  // The victim's queue was shed at the crash (arrivals kept coming).
  EXPECT_GT(sc.book().dropped(), 0u);
  EXPECT_TRUE(sc.wait_freedom(14'000).wait_free());
}

TEST(LoadScenarioSim, GlobalStreamDealsAcrossActors) {
  LoadConfig lc = sim_load_config(31, 8, 40'000);
  lc.arrivals.per_actor = false;
  lc.arrivals.rate_per_kilotick = 20.0;  // one global stream, ~800 arrivals
  LoadScenario sc(lc);
  sc.run();
  EXPECT_GT(sc.book().offered(), 500u);
  EXPECT_GT(sc.book().completed(), 0u);
  EXPECT_TRUE(sc.exclusion().violations.empty());
}

TEST(LoadScenarioSim, TelemetryJsonRoundTrips) {
  LoadConfig lc = sim_load_config(17, 8, 30'000);
  lc.arrivals.rate_per_kilotick = 4.0;
  lc.churn.mutations = 10;
  LoadScenario sc(lc);
  sc.run();

  const std::string json = sc.telemetry_json();
  const auto doc = ekbd::obs::json::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const auto* load = doc->find("load");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->num_or("offered", -1), static_cast<double>(sc.book().offered()));
  EXPECT_EQ(load->num_or("completed", -1), static_cast<double>(sc.book().completed()));
  const auto* churn = load->find("churn");
  ASSERT_NE(churn, nullptr);
  EXPECT_EQ(churn->num_or("planned", -1), static_cast<double>(sc.churn_plan().ops.size()));
  const auto* lat = load->find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->num_or("count", 0), 0.0);
  EXPECT_GE(lat->num_or("p999", 0), lat->num_or("p50", 0));
}

// The sweep runner over LoadConfigs: jobs parallelize on the pool, the
// telemetry JSONL keeps config order, and every line carries both the
// scenario's "load" object and the runner's "sweep" object.
TEST(LoadSweep, ParallelRunnerKeepsConfigOrderAndTelemetry) {
  const std::vector<double> rates = {2.0, 6.0, 12.0};
  std::vector<LoadConfig> configs;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    LoadConfig lc = sim_load_config(50 + i, 8, 20'000);
    lc.arrivals.rate_per_kilotick = rates[i];
    configs.push_back(lc);
  }
  const std::string path = ::testing::TempDir() + "load_sweep_telemetry.jsonl";
  ekbd::scenario::SweepOptions opt;
  opt.threads = 2;
  opt.telemetry_path = path;

  std::vector<std::uint64_t> offered;
  ekbd::scenario::run_load_scenarios(
      configs,
      [&](std::size_t i, LoadScenario& s) {
        EXPECT_EQ(s.config().arrivals.rate_per_kilotick, rates[i]);
        EXPECT_TRUE(s.exclusion().violations.empty());
        EXPECT_EQ(s.monitor_agreement(), "");
        offered.push_back(s.book().offered());
      },
      opt);
  ASSERT_EQ(offered.size(), rates.size());
  // Higher offered rate => more offered sessions, in config order.
  EXPECT_LT(offered[0], offered[1]);
  EXPECT_LT(offered[1], offered[2]);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const auto doc = ekbd::obs::json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto* load = doc->find("load");
    ASSERT_NE(load, nullptr) << line;
    ASSERT_LT(lines, offered.size());
    EXPECT_EQ(load->num_or("offered", -1), static_cast<double>(offered[lines]));
    const auto* sweep = doc->find("sweep");
    ASSERT_NE(sweep, nullptr) << line;
    EXPECT_GT(sweep->num_or("wall_seconds", 0), 0.0);
    // The runner's offered = sessions actually started (kBecameHungry);
    // the book's offered also counts still-backlogged and dropped
    // arrivals, so it bounds the runner's count from above.
    EXPECT_GT(sweep->num_or("offered", 0), 0.0);
    EXPECT_LE(sweep->num_or("offered", 0), static_cast<double>(offered[lines]));
    ++lines;
  }
  EXPECT_EQ(lines, rates.size());
}

// -------------------------------------------------- LoadScenario (rt)

TEST(LoadScenarioRt, OpenLoopSmoke) {
  LoadConfig lc = sim_load_config(41, 6, 3'000);
  lc.base.engine = Engine::kRt;
  lc.base.rt_tick_ns = 100'000;  // 0.3 s wall
  lc.arrivals.rate_per_kilotick = 8.0;
  LoadScenario sc(lc);
  sc.run();

  EXPECT_GT(sc.book().offered(), 0u);
  EXPECT_GT(sc.book().completed(), 0u);
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.monitor_agreement(), "");
  EXPECT_GT(sc.latency().count(), 0u);
}

TEST(LoadScenarioRt, ChurnAndRecoveryStayClean) {
  LoadConfig lc = sim_load_config(43, 8, 4'000);
  lc.base.engine = Engine::kRt;
  lc.base.rt_tick_ns = 100'000;  // 0.4 s wall
  lc.arrivals.rate_per_kilotick = 6.0;
  lc.churn.mutations = 20;
  lc.churn.start = 400;
  lc.churn.end = 3'400;
  lc.churn_margin = 300;
  lc.recoveries = {{3, 900, 1'800}};
  LoadScenario sc(lc);
  sc.run();

  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, 3), 1u);
  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.monitor_agreement(), "");
  EXPECT_GT(sc.churn_issued(), 0u);
  EXPECT_GT(sc.book().completed(), 0u);
}

}  // namespace
