// Action-level tests of Algorithm 1: two or three hand-driven diners on a
// fixed-delay network, stepping through exact message interleavings and
// asserting the per-action state transitions the paper specifies.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "fd/scripted.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::core::WaitFreeDiner;
using ekbd::fd::ScriptedDetector;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;
using ekbd::sim::Time;

/// Two neighbors on an edge, fixed delay 1, scripted detector.
/// Process 0 ("hi") has color 1 and therefore starts with the fork;
/// process 1 ("lo") has color 0 and starts with the token.
struct Edge {
  Edge() : sim(1, ekbd::sim::make_fixed_delay(1)), det(sim, 0) {
    hi = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0}, det);
    lo = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1}, det);
    sim.start();
  }
  Simulator sim;
  ScriptedDetector det;
  WaitFreeDiner* hi;
  WaitFreeDiner* lo;
};

TEST(Actions, InitialForkAtHigherColorTokenAtLower) {
  Edge e;
  EXPECT_TRUE(e.hi->holds_fork(1));
  EXPECT_FALSE(e.hi->holds_token(1));
  EXPECT_FALSE(e.lo->holds_fork(0));
  EXPECT_TRUE(e.lo->holds_token(0));
}

TEST(Actions, Action2SendsOnePingAndSetsPinged) {
  Edge e;
  e.hi->become_hungry();
  EXPECT_TRUE(e.hi->has_pending_ping(1));
  // Exactly one ping in flight on the dining layer.
  auto cs = e.sim.network().channel(0, 1, ekbd::sim::MsgLayer::kDining);
  EXPECT_EQ(cs.in_transit, 1);
  EXPECT_EQ(e.hi->message_counts().pings, 1u);
  // Re-running the guard (pump via timer) must NOT duplicate the ping.
  e.sim.run_until(e.sim.now());  // no time: nothing changes
  EXPECT_EQ(e.hi->message_counts().pings, 1u);
}

TEST(Actions, Action3ThinkingNeighborAcksWithoutReplied) {
  Edge e;
  e.hi->become_hungry();
  e.sim.run_until(1);  // lo receives the ping while thinking
  // Thinking grantor does not set replied (line 10: replied := hungry).
  EXPECT_FALSE(e.lo->has_replied_to(0));
  e.sim.run_until(2);  // hi receives the ack
  EXPECT_FALSE(e.hi->has_pending_ping(1));
  // hi had every ack: it entered the doorway (Action 5) and, holding the
  // fork already, went straight to eating (Action 9).
  EXPECT_TRUE(e.hi->inside_doorway());
  EXPECT_TRUE(e.hi->eating());
}

TEST(Actions, Action3HungryGrantorSetsRepliedAndDefersSecondPing) {
  Edge e;
  e.lo->become_hungry();    // lo pings hi at t=0
  e.sim.run_until(4);       // ping(1), ack(2) -> lo inside, requests fork(3), hi gets req(4)
  // hi stayed thinking; lo is inside the doorway now.
  EXPECT_TRUE(e.lo->inside_doorway());

  // Now hi becomes hungry and pings lo; lo is INSIDE -> defer (Action 3).
  e.hi->become_hungry();
  const Time t = e.sim.now();
  e.sim.run_until(t + 1);
  EXPECT_TRUE(e.lo->has_deferred_ping_from(0));
  EXPECT_TRUE(e.hi->has_pending_ping(1));  // still pending (Lemma 2.2)
  EXPECT_FALSE(e.hi->has_ack_from(1));
}

TEST(Actions, Action4StaleAckDiscardedWhenInside) {
  // hi becomes hungry, pings lo; before the ack returns, hi is already
  // inside via a scripted suspicion — the ack must NOT set the ack flag
  // (Action 4 guard: hungry AND outside), but must clear `pinged`.
  Edge e;
  e.det.add_false_positive(0, 1, 0, 5);  // hi suspects lo during [0,5)
  e.hi->become_hungry();                 // enters doorway instantly (suspects lo)
  EXPECT_TRUE(e.hi->inside_doorway());
  EXPECT_TRUE(e.hi->eating());           // holds the fork: eats immediately
  // The ping was never sent because Action 2 ran while... actually the
  // ping IS sent first (pump order), so let the ack flow back.
  e.sim.run_until(3);
  EXPECT_FALSE(e.hi->has_ack_from(1));       // stale ack discarded
  EXPECT_FALSE(e.hi->has_pending_ping(1));   // but pinged was cleared
}

TEST(Actions, Action5EntryResetsAckAndReplied) {
  Edge e;
  e.hi->become_hungry();
  e.lo->become_hungry();
  e.sim.run_until(2);  // both acked each other (each replied once), both inside
  EXPECT_TRUE(e.hi->inside_doorway());
  EXPECT_TRUE(e.lo->inside_doorway());
  // Entry reset both ack and replied (Action 5, lines 16-17).
  EXPECT_FALSE(e.hi->has_ack_from(1));
  EXPECT_FALSE(e.hi->has_replied_to(1));
  EXPECT_FALSE(e.lo->has_ack_from(0));
  EXPECT_FALSE(e.lo->has_replied_to(0));
}

TEST(Actions, Action6SpendsTokenOnRequest) {
  Edge e;
  e.lo->become_hungry();
  e.sim.run_until(2);  // lo inside
  EXPECT_TRUE(e.lo->inside_doorway());
  EXPECT_FALSE(e.lo->holds_token(0));  // token spent on the fork request
  EXPECT_EQ(e.lo->message_counts().fork_requests, 1u);
}

TEST(Actions, Action7OutsideHolderYieldsImmediately) {
  Edge e;
  e.lo->become_hungry();
  e.sim.run_until(3);  // hi (thinking = outside) received the request
  EXPECT_FALSE(e.hi->holds_fork(1));  // yielded
  EXPECT_TRUE(e.hi->holds_token(1));  // and kept the token (right to re-request)
  e.sim.run_until(4);
  EXPECT_TRUE(e.lo->holds_fork(0));
  EXPECT_TRUE(e.lo->eating());
}

TEST(Actions, Action7HungryHigherColorDefers) {
  Edge e;
  // Both hungry; both enter the doorway; lo requests hi's fork; hi is
  // hungry-inside with the higher color -> defers until after eating.
  e.hi->become_hungry();
  e.lo->become_hungry();
  e.sim.run_until(4);
  EXPECT_TRUE(e.hi->eating());
  EXPECT_TRUE(e.hi->holds_fork(1));
  EXPECT_TRUE(e.hi->holds_token(1));  // fork ∧ token = deferred request
  EXPECT_FALSE(e.lo->eating());

  // Action 10: on exit, the deferred fork goes out; lo then eats.
  e.hi->finish_eating();
  e.sim.run_until(e.sim.now() + 2);
  EXPECT_FALSE(e.hi->holds_fork(1));
  EXPECT_TRUE(e.lo->holds_fork(0));
  EXPECT_TRUE(e.lo->eating());
}

TEST(Actions, Action7LowerColorYieldsWhileHungryInside) {
  // The "hungry ∧ inside ∧ lower color → yield" branch needs a holder
  // that is inside the doorway but not yet eating (blocked on a third
  // fork). Path a(0)-b(1)-c(2), colors a=2, b=1, c=3: b acquires fork_ab,
  // then all three enter the doorway together; b blocks on c's fork while
  // a's request for fork_ab arrives — b must yield to the higher color.
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  ScriptedDetector det(sim, 0);
  auto* a = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 2,
                                          std::vector<int>{1}, det);
  auto* b = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0, 2}, 1,
                                          std::vector<int>{2, 3}, det);
  auto* c = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 3,
                                          std::vector<int>{1}, det);
  sim.start();

  // Phase 1: b eats alone, acquiring both of its forks.
  b->become_hungry();
  sim.run_until(8);
  ASSERT_TRUE(b->eating());
  b->finish_eating();
  ASSERT_TRUE(b->holds_fork(0));
  ASSERT_TRUE(b->holds_fork(2));

  // Phase 1.5: c eats alone, taking fork_bc back.
  c->become_hungry();
  sim.run_until(sim.now() + 8);
  ASSERT_TRUE(c->eating());
  c->finish_eating();
  ASSERT_TRUE(c->holds_fork(1));
  ASSERT_TRUE(b->holds_fork(0));  // b still holds fork_ab

  // Phase 2: everyone hungry at once.
  const Time t0 = sim.now();
  a->become_hungry();
  b->become_hungry();
  c->become_hungry();
  sim.run_until(t0 + 2);
  ASSERT_TRUE(a->inside_doorway());
  ASSERT_TRUE(b->inside_doorway());
  ASSERT_TRUE(c->eating());  // c held its only fork: eats on entry

  sim.run_until(t0 + 4);
  // b was hungry-inside (blocked on c's deferred fork) when a's request
  // for fork_ab arrived: lower color yields immediately.
  EXPECT_FALSE(b->holds_fork(0));
  EXPECT_TRUE(a->eating());
  EXPECT_TRUE(b->hungry());

  // And the chain unwinds: both meals end, b finally gets both forks.
  a->finish_eating();
  c->finish_eating();
  sim.run_until(sim.now() + 4);
  EXPECT_TRUE(b->eating());
}

TEST(Actions, Action9EatsOnSuspicionWithoutFork) {
  Edge e;
  e.sim.schedule_crash(0, 1);  // hi (the fork holder) dies at t=1;
                               // scripted completeness suspects from t=1
  e.lo->become_hungry();
  e.sim.run_until(50);
  // lo never got an ack or the fork, but suspicion let it pass both
  // guards: wait-freedom at the action level.
  EXPECT_TRUE(e.lo->eating());
  EXPECT_FALSE(e.lo->holds_fork(0));
}

TEST(Actions, Action10GrantsDeferredAcksOnExit) {
  Edge e;
  e.lo->become_hungry();
  e.sim.run_until(4);
  ASSERT_TRUE(e.lo->eating());
  // hi pings while lo eats (inside) -> deferred.
  e.hi->become_hungry();
  e.sim.run_until(e.sim.now() + 1);
  ASSERT_TRUE(e.lo->has_deferred_ping_from(0));
  // Exit grants the deferred ack; hi then enters, re-requests the fork
  // (which lo took during its meal) and eats.
  e.lo->finish_eating();
  EXPECT_FALSE(e.lo->has_deferred_ping_from(0));
  e.sim.run_until(e.sim.now() + 5);
  EXPECT_TRUE(e.hi->eating());
}


TEST(Actions, TokenConservationAcrossManyMeals) {
  Edge e;
  for (int round = 0; round < 20; ++round) {
    e.lo->become_hungry();
    e.hi->become_hungry();
    e.sim.run_until(e.sim.now() + 10);
    if (e.hi->eating()) e.hi->finish_eating();
    e.sim.run_until(e.sim.now() + 10);
    if (e.lo->eating()) e.lo->finish_eating();
    e.sim.run_until(e.sim.now() + 10);
    if (e.hi->eating()) e.hi->finish_eating();
    if (e.lo->eating()) e.lo->finish_eating();
    // Exactly one fork and one token exist (held or in transit, never
    // duplicated).
    EXPECT_FALSE(e.hi->holds_fork(1) && e.lo->holds_fork(0)) << round;
    EXPECT_FALSE(e.hi->holds_token(1) && e.lo->holds_token(0)) << round;
    EXPECT_EQ(e.hi->lemma11_violations(), 0u);
    EXPECT_EQ(e.lo->lemma11_violations(), 0u);
  }
}

TEST(Actions, GeneralizedAckBudgetCapsOvertakingExactly) {
  // Path a(0) - b(1) - c(2), colors a=0, b=2, c=1. c grabs its shared
  // fork and eats forever, pinning b outside the doorway (c defers b's
  // ping). Then a cycles: each meal of a needs one fresh ack from the
  // continuously hungry b, so a can eat exactly `acks_per_session` times
  // before b's budget shuts the doorway.
  for (int budget : {1, 3, 5}) {
    Simulator sim(1, ekbd::sim::make_fixed_delay(1));
    ScriptedDetector det(sim, 0);
    WaitFreeDiner::Options opt{.acks_per_session = budget};
    auto* a = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 0,
                                            std::vector<int>{2}, det, opt);
    auto* b = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0, 2}, 2,
                                            std::vector<int>{0, 1}, det, opt);
    auto* c = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1,
                                            std::vector<int>{2}, det, opt);
    sim.start();

    c->become_hungry();  // c acquires the b-c fork (b thinking yields) and eats
    sim.run_until(6);
    ASSERT_TRUE(c->eating()) << "budget " << budget;

    b->become_hungry();  // pings a (thinking: acks) and c (eating: defers)
    sim.run_until(12);
    ASSERT_TRUE(b->hungry());
    ASSERT_FALSE(b->inside_doorway());  // stuck on c's deferred ack

    int meals_of_a = 0;
    for (int i = 0; i < budget + 3; ++i) {
      a->become_hungry();
      sim.run_until(sim.now() + 10);
      if (!a->eating()) break;  // blocked outside: b's budget exhausted
      ++meals_of_a;
      a->finish_eating();
      sim.run_until(sim.now() + 4);
    }
    EXPECT_EQ(meals_of_a, budget) << "budget " << budget;
    EXPECT_TRUE(b->hungry());  // b never starved-by-spec here, just waiting on c
  }
}

TEST(Actions, StateBitsGrowWithAckBudget) {
  Simulator sim(1);
  ScriptedDetector det(sim, 0);
  auto* m1 = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                           det, WaitFreeDiner::Options{.acks_per_session = 1});
  auto* m7 = sim.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                           det, WaitFreeDiner::Options{.acks_per_session = 7});
  EXPECT_LT(m1->state_bits(), m7->state_bits());
}

}  // namespace
