// Algorithm 1 tests: unit scenarios for each action plus the paper's
// lemmas/theorems on directed executions.
#include <gtest/gtest.h>

#include <functional>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::Time;

Config base_config() {
  Config cfg;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.uniform_delay_lo = 1;
  cfg.uniform_delay_hi = 10;
  cfg.run_for = 30'000;
  return cfg;
}

/// Install a periodic global invariant check (every `period` ticks).
void sample_invariant(Scenario& s, Time period, const std::function<void()>& check) {
  auto& sim = s.sim();
  auto recur = std::make_shared<std::function<void()>>();
  *recur = [&sim, period, check, recur] {
    check();
    sim.schedule_in(period, *recur);
  };
  sim.schedule_in(period, *recur);
}

TEST(WaitFree, TwoNeighborsBothEatRepeatedly) {
  Config cfg = base_config();
  cfg.topology = "path";
  cfg.n = 2;
  Scenario s(cfg);
  s.run();
  EXPECT_GE(s.trace().count(TraceEventKind::kStartEating, 0), 5u);
  EXPECT_GE(s.trace().count(TraceEventKind::kStartEating, 1), 5u);
  EXPECT_TRUE(s.exclusion().violations.empty());
}

TEST(WaitFree, IsolatedProcessEatsImmediately) {
  Config cfg = base_config();
  cfg.topology = "path";
  cfg.n = 1;  // no neighbors: the doorway and fork guards are vacuous
  Scenario s(cfg);
  s.run();
  EXPECT_GE(s.trace().count(TraceEventKind::kStartEating, 0), 10u);
}

TEST(WaitFree, EveryHungrySessionEntersDoorwayBeforeEating) {
  Config cfg = base_config();
  cfg.topology = "ring";
  cfg.n = 6;
  Scenario s(cfg);
  s.run();
  for (const auto& sess : hungry_sessions(s.trace())) {
    if (sess.completed()) {
      ASSERT_GE(sess.entered_doorway, 0) << "ate without passing the doorway";
      EXPECT_LE(sess.entered_doorway, sess.started_eating);
      EXPECT_GE(sess.entered_doorway, sess.became_hungry);
    }
  }
}

TEST(WaitFree, NoViolationsWithoutFalseSuspicions) {
  // Scripted detector with zero false positives and no crashes = perpetual
  // weak exclusion (mistakes only come from detector mistakes).
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    Config cfg = base_config();
    cfg.seed = seed;
    cfg.topology = "clique";
    cfg.n = 6;
    Scenario s(cfg);
    s.run();
    EXPECT_TRUE(s.exclusion().violations.empty()) << "seed " << seed;
  }
}

TEST(WaitFree, SurvivesCrashOfForkHolderNeighbor) {
  // path(2): one process holds the shared fork initially. Crash each role
  // in turn; the survivor must keep eating (wait-freedom).
  for (ekbd::sim::ProcessId victim : {0, 1}) {
    Config cfg = base_config();
    cfg.topology = "path";
    cfg.n = 2;
    cfg.detection_delay = 200;
    cfg.crashes = {{victim, 2'000}};
    Scenario s(cfg);
    s.run();
    const ekbd::sim::ProcessId survivor = 1 - victim;
    auto wf = s.wait_freedom(5'000);
    EXPECT_TRUE(wf.wait_free()) << "victim " << victim;
    // The survivor kept eating after the crash + detection delay.
    std::size_t eats_after = 0;
    for (const auto& e : s.trace().events()) {
      if (e.kind == TraceEventKind::kStartEating && e.process == survivor && e.at > 3'000) {
        ++eats_after;
      }
    }
    EXPECT_GE(eats_after, 5u) << "victim " << victim;
  }
}

TEST(WaitFree, SurvivesManySimultaneousCrashes) {
  // Arbitrarily many crash faults: crash all but one in a clique at once.
  Config cfg = base_config();
  cfg.topology = "clique";
  cfg.n = 6;
  cfg.detection_delay = 150;
  for (int p = 1; p < 6; ++p) cfg.crashes.emplace_back(p, 3'000);
  Scenario s(cfg);
  s.run();
  auto wf = s.wait_freedom(6'000);
  EXPECT_TRUE(wf.wait_free());
  std::size_t eats_after = 0;
  for (const auto& e : s.trace().events()) {
    if (e.kind == TraceEventKind::kStartEating && e.process == 0 && e.at > 4'000) ++eats_after;
  }
  EXPECT_GE(eats_after, 10u);
}

TEST(WaitFree, ForkNeverDoubleHeld) {
  // Lemma 1.2 (fork uniqueness), sampled throughout a chaotic run.
  Config cfg = base_config();
  cfg.topology = "random";
  cfg.n = 10;
  cfg.fp_count = 30;
  cfg.fp_until = 10'000;
  cfg.detection_delay = 100;
  cfg.crashes = {{2, 8'000}};
  Scenario s(cfg);
  sample_invariant(s, 50, [&] {
    for (const auto& [a, b] : s.graph().edges()) {
      auto* da = s.wait_free_diner(a);
      auto* db = s.wait_free_diner(b);
      EXPECT_FALSE(da->holds_fork(b) && db->holds_fork(a))
          << "edge (" << a << "," << b << ") fork duplicated at t=" << s.sim().now();
    }
  });
  s.run();
}

TEST(WaitFree, TokenNeverDoubleHeld) {
  Config cfg = base_config();
  cfg.topology = "grid";
  cfg.n = 9;
  cfg.fp_count = 20;
  cfg.fp_until = 8'000;
  Scenario s(cfg);
  sample_invariant(s, 50, [&] {
    for (const auto& [a, b] : s.graph().edges()) {
      EXPECT_FALSE(s.wait_free_diner(a)->holds_token(b) && s.wait_free_diner(b)->holds_token(a))
          << "edge (" << a << "," << b << ") token duplicated at t=" << s.sim().now();
    }
  });
  s.run();
}

TEST(WaitFree, Lemma11NeverViolated) {
  // A fork request must always find the fork at the receiver.
  Config cfg = base_config();
  cfg.topology = "clique";
  cfg.n = 8;
  cfg.fp_count = 40;
  cfg.fp_until = 12'000;
  cfg.crashes = {{1, 6'000}, {5, 9'000}};
  Scenario s(cfg);
  s.run();
  for (std::size_t p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u);
  }
}

TEST(WaitFree, Lemma22AtMostOnePendingPing) {
  // pinged_ij true means exactly one outstanding ping; the channel books
  // corroborate: never more than 2 ping/acks between a pair, never more
  // than 4 dining messages total (§7) — checked in the channel test below.
  Config cfg = base_config();
  cfg.topology = "ring";
  cfg.n = 8;
  Scenario s(cfg);
  sample_invariant(s, 100, [&] {
    for (const auto& [a, b] : s.graph().edges()) {
      // No way to have two pings in flight: pinged is cleared only by the
      // matching ack. We approximate the lemma by asserting the dining
      // in-transit count per pair never exceeds 4 (1 fork + 1 token + 2
      // ping/ack), which fails if pings could pile up.
      auto cs = s.sim().network().channel(a, b, ekbd::sim::MsgLayer::kDining);
      EXPECT_LE(cs.in_transit, 4);
    }
  });
  s.run();
}

TEST(WaitFree, ChannelCapacityAtMostFour) {
  // §7: at most 4 dining messages in transit per neighbor pair, measured
  // as the all-run high-water mark over every pair, under chaos.
  for (const char* topo : {"ring", "clique", "star", "grid"}) {
    Config cfg = base_config();
    cfg.topology = topo;
    cfg.n = 9;
    cfg.fp_count = 25;
    cfg.fp_until = 10'000;
    cfg.crashes = {{3, 7'000}};
    Scenario s(cfg);
    s.run();
    EXPECT_LE(s.sim().network().max_in_transit_any(ekbd::sim::MsgLayer::kDining), 4)
        << topo;
  }
}

TEST(WaitFree, QuiescenceTowardsCrashedNeighbor) {
  // §7: eventually no dining messages are sent to a crashed process.
  Config cfg = base_config();
  cfg.topology = "star";
  cfg.n = 6;
  cfg.detection_delay = 100;
  cfg.crashes = {{0, 5'000}};  // the hub crashes
  cfg.run_for = 60'000;
  Scenario s(cfg);
  s.run();
  const Time last = s.sim().network().last_send_to(0, ekbd::sim::MsgLayer::kDining);
  // After the crash, each neighbor sends at most one ping and one fork
  // request that go unanswered; all of that happens shortly after the
  // crash, not for the remaining ~50k ticks.
  EXPECT_LT(last, 15'000);
  // And the number of messages addressed to the corpse is tiny (<= 2 per
  // neighbor: one ping + one fork request/token).
  EXPECT_LE(s.sim().network().sends_to_crashed(0, ekbd::sim::MsgLayer::kDining),
            2u * (cfg.n - 1));
}

TEST(WaitFree, Theorem1EventualWeakExclusion) {
  // Scripted mutual false positives force early violations; after the
  // last scripted lie ends, no two live neighbors ever eat together.
  Config cfg = base_config();
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.fp_count = 60;
  cfg.fp_until = 15'000;
  cfg.fp_len_lo = 100;
  cfg.fp_len_hi = 400;
  cfg.harness.think_lo = 10;  // high contention
  cfg.harness.think_hi = 50;
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  auto ex = s.exclusion();
  const Time converged = s.fd_convergence_estimate();
  // Non-vacuous: the adversarial oracle must have caused real mistakes...
  EXPECT_GT(ex.violations.size(), 0u) << "scenario failed to exercise 3WX";
  // ...and every one of them predates convergence (Theorem 1).
  EXPECT_EQ(ex.violations_after(converged), 0u)
      << "violations after detector convergence at " << converged;
}

TEST(WaitFree, Theorem2WaitFreedomUnderChaos) {
  for (std::uint64_t seed : {3ull, 11ull, 42ull}) {
    Config cfg = base_config();
    cfg.seed = seed;
    cfg.topology = "random";
    cfg.n = 12;
    cfg.fp_count = 30;
    cfg.fp_until = 10'000;
    cfg.detection_delay = 150;
    cfg.crashes = {{1, 4'000}, {6, 9'000}, {9, 14'000}};
    cfg.run_for = 60'000;
    Scenario s(cfg);
    s.run();
    auto wf = s.wait_freedom(10'000);
    EXPECT_TRUE(wf.wait_free())
        << "seed " << seed << ": starving processes despite crashes";
    EXPECT_GT(wf.sessions_completed, 0u);
  }
}

TEST(WaitFree, Theorem3EventualTwoBoundedWaiting) {
  // High contention, scripted chaos early on; after convergence no
  // neighbor overtakes a continuously hungry process more than twice.
  for (std::uint64_t seed : {5ull, 17ull}) {
    Config cfg = base_config();
    cfg.seed = seed;
    cfg.topology = "ring";
    cfg.n = 8;
    cfg.fp_count = 40;
    cfg.fp_until = 10'000;
    cfg.harness.think_lo = 5;
    cfg.harness.think_hi = 30;  // everyone re-hungers almost immediately
    cfg.run_for = 100'000;
    Scenario s(cfg);
    s.run();
    auto census = s.census();
    const Time converged = s.fd_convergence_estimate();
    EXPECT_LE(ekbd::dining::max_overtakes(census, converged), 2)
        << "seed " << seed << " (convergence at " << converged << ")";
  }
}

TEST(WaitFree, DeferredAcksGrantedAfterEating) {
  // Run and verify replied/deferred bookkeeping drains: at the end (after
  // hunger stops) nobody still owes a deferred ack while thinking.
  Config cfg = base_config();
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.run_for = 40'000;
  Scenario s(cfg);
  s.harness().stop_hunger_after(25'000);
  s.run();
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = s.wait_free_diner(static_cast<int>(p));
    if (d->thinking()) {
      for (auto j : d->diner_neighbors()) {
        EXPECT_FALSE(d->has_deferred_ping_from(j))
            << p << " still defers a ping from " << j << " while thinking";
      }
    }
  }
}

TEST(WaitFree, DrainsToQuiescenceWhenHungerStops) {
  // Once no process becomes hungry anymore, everyone finishes and the
  // dining layer goes silent (messages stop).
  Config cfg = base_config();
  cfg.topology = "clique";
  cfg.n = 6;
  cfg.run_for = 60'000;
  Scenario s(cfg);
  s.harness().stop_hunger_after(20'000);
  s.run();
  for (std::size_t p = 0; p < cfg.n; ++p) {
    EXPECT_TRUE(s.diner(static_cast<int>(p))->thinking()) << p;
  }
  // No dining sends in the last stretch of the run.
  Time last_dining_send = -1;
  for (std::size_t p = 0; p < cfg.n; ++p) {
    last_dining_send = std::max(
        last_dining_send,
        s.sim().network().last_send_to(static_cast<int>(p), ekbd::sim::MsgLayer::kDining));
  }
  EXPECT_LT(last_dining_send, 30'000);
}

TEST(WaitFree, StateBitsMatchPaperFormula) {
  Config cfg = base_config();
  cfg.topology = "clique";
  cfg.n = 8;
  Scenario s(cfg);
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = s.wait_free_diner(static_cast<int>(p));
    const std::size_t delta = s.graph().degree(static_cast<int>(p));
    // log2(color) + 6δ + c with a small constant c.
    EXPECT_LE(d->state_bits(), 8 + 6 * delta + 3);
    EXPECT_GE(d->state_bits(), 6 * delta);
  }
}

TEST(WaitFree, MessageCountsAreBounded) {
  // Per completed session, the algorithm exchanges O(δ) messages: at most
  // one ping+ack and one request+fork per neighbor per phase transition.
  Config cfg = base_config();
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.run_for = 50'000;
  Scenario s(cfg);
  s.run();
  std::uint64_t eats = s.trace().count(TraceEventKind::kStartEating);
  std::uint64_t dining_msgs = s.sim().network().total_sent(ekbd::sim::MsgLayer::kDining);
  ASSERT_GT(eats, 0u);
  // Ring δ = 2: generous bound of 16 messages per eating session amortized.
  EXPECT_LT(dining_msgs, eats * 16 + 100);
}

TEST(WaitFree, DeterministicTraceForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Config cfg = base_config();
    cfg.seed = seed;
    cfg.topology = "grid";
    cfg.n = 9;
    cfg.fp_count = 10;
    cfg.fp_until = 5'000;
    Scenario s(cfg);
    s.run();
    std::vector<std::tuple<Time, int, int>> events;
    for (const auto& e : s.trace().events()) {
      events.emplace_back(e.at, e.process, static_cast<int>(e.kind));
    }
    return events;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(WaitFree, HeartbeatDetectorEndToEnd) {
  // The full stack: real heartbeats under partial synchrony, crashes, and
  // all three theorems checked on one execution.
  Config cfg;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kHeartbeat;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 10'000, .pre_lo = 1, .pre_hi = 120,
               .spike_prob = 0.10, .spike_factor = 25,
               .post_lo = 1, .post_hi = 6};
  cfg.heartbeat = {.period = 25, .initial_timeout = 40, .timeout_increment = 30};
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.crashes = {{2, 30'000}};
  cfg.run_for = 150'000;
  Scenario s(cfg);
  s.run();

  auto wf = s.wait_freedom(25'000);
  EXPECT_TRUE(wf.wait_free());

  auto ex = s.exclusion();
  const Time converged = s.fd_convergence_estimate();
  EXPECT_EQ(ex.violations_after(converged), 0u);

  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), converged), 2);

  // The dining layer respects the channel bound even with heartbeats
  // flowing on their own layer.
  EXPECT_LE(s.sim().network().max_in_transit_any(ekbd::sim::MsgLayer::kDining), 4);
}

TEST(WaitFree, PerfectDetectorNeverViolates) {
  // Ablation: with a perfect oracle there are no scheduling mistakes at
  // all (perpetual weak exclusion), even with crashes mid-meal.
  Config cfg = base_config();
  cfg.detector = DetectorKind::kPerfect;
  cfg.topology = "clique";
  cfg.n = 7;
  cfg.crashes = {{0, 5'000}, {3, 10'000}};
  cfg.run_for = 60'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.exclusion().violations.empty());
  EXPECT_TRUE(s.wait_freedom(10'000).wait_free());
}

}  // namespace
