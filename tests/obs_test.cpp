// Observability tests: metrics registry, online invariant monitors,
// telemetry JSON and the Perfetto exporter.
//
// The load-bearing property is *agreement*: every online monitor verdict
// must match the corresponding post-hoc checker/book on the same run
// (MonitorHub::agreement_failures == ""). The fuzz suite asserts this on
// every fuzzed configuration; here we pin it on deterministic scenarios
// and unit-test each monitor's violation detection on hand-built inputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/monitors.hpp"
#include "obs/perfetto.hpp"
#include "obs/telemetry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/event_log.hpp"

namespace {

namespace obs = ekbd::obs;
namespace json = ekbd::obs::json;
using ekbd::sim::LoggedEvent;
using ekbd::sim::MsgLayer;
using Kind = ekbd::sim::LoggedEvent::Kind;

// -- counters / gauges ------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.get(), 42u);

  obs::Gauge g;
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.get(), 2);
  EXPECT_EQ(g.max(), 5);  // high-water survives the drop
  g.add(10);
  EXPECT_EQ(g.get(), 12);
  EXPECT_EQ(g.max(), 12);
  g.add(-12);
  EXPECT_EQ(g.get(), 0);
  EXPECT_EQ(g.max(), 12);
}

// -- histograms -------------------------------------------------------------

TEST(Metrics, HistogramBucketBoundariesAndClamping) {
  obs::Histogram h(0.0, 10.0, 5);  // buckets [0,2) [2,4) [4,6) [6,8) [8,10)
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);

  h.add(0.0);    // lower edge → bucket 0
  h.add(1.999);  // still bucket 0
  h.add(2.0);    // boundary → bucket 1 (inclusive-exclusive)
  h.add(9.999);  // bucket 4
  h.add(-5.0);   // clamps into bucket 0
  h.add(10.0);   // hi is exclusive: clamps into bucket 4
  h.add(1e9);    // clamps into bucket 4
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[4], 3u);
  // Clamping never corrupts sum/mean: they use the raw samples.
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 1.999 + 2.0 + 9.999 - 5.0 + 10.0 + 1e9);
}

TEST(Metrics, HistogramCountsOutOfRangeSamples) {
  obs::Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  EXPECT_EQ(h.under(), 0u);
  EXPECT_EQ(h.over(), 0u);
  h.add(-1.0);  // clamps into bucket 0 AND counts as under
  h.add(10.0);  // hi is exclusive: clamps into bucket 4 AND counts as over
  h.add(1e9);
  EXPECT_EQ(h.under(), 1u);
  EXPECT_EQ(h.over(), 2u);
  // under/over are an overlay: the buckets still sum to count().
  std::uint64_t in_buckets = 0;
  for (auto b : h.buckets()) in_buckets += b;
  EXPECT_EQ(in_buckets, h.count());

  // They merge, round-trip through JSON, and default to 0 when absent
  // (pre-existing snapshots).
  obs::Histogram other(0.0, 10.0, 5);
  other.add(-2.0);
  ASSERT_TRUE(h.merge(other));
  EXPECT_EQ(h.under(), 2u);
  const auto back = obs::histogram_from_json(h.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->under(), 2u);
  EXPECT_EQ(back->over(), 2u);
  EXPECT_EQ(back->to_json(), h.to_json());
  const auto legacy = obs::histogram_from_json(
      "{\"lo\":0,\"hi\":10,\"count\":1,\"sum\":3,\"buckets\":[1,0,0,0,0]}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->under(), 0u);
  EXPECT_EQ(legacy->over(), 0u);
}

TEST(Metrics, HistogramQuantileBucketMidpoints) {
  obs::Histogram h(0.0, 100.0, 10);  // 10-wide buckets
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty → 0
  for (int i = 0; i < 99; ++i) h.add(5.0);   // bucket [0,10)
  h.add(95.0);                               // bucket [90,100)
  // Ranks 1..99 land in the first bucket, rank 100 in the last.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 95.0);
}

TEST(Metrics, HistogramMergeSameShapeIsExact) {
  obs::Histogram a(0.0, 10.0, 5);
  obs::Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(9.0);
  b.add(3.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[4], 1u);

  // Empty mismatched sources flag the approximate path but have nothing
  // to resample.
  obs::Histogram wrong_bins(0.0, 10.0, 4);
  obs::Histogram wrong_range(0.0, 20.0, 5);
  EXPECT_FALSE(a.merge(wrong_bins));
  EXPECT_FALSE(a.merge(wrong_range));
  EXPECT_EQ(a.count(), 3u);
}

TEST(Metrics, HistogramMergeMismatchedShapeResamples) {
  // Regression: merging across shapes used to be a silent no-op, so
  // shard-local histograms sized independently (or snapshots from an
  // older config) quietly vanished from the merged percentiles. Now the
  // source is resampled at bucket midpoints: count and sum stay exact,
  // placement degrades by at most one source-bucket width.
  obs::Histogram dst(0.0, 100.0, 10);   // width 10
  obs::Histogram src(0.0, 50.0, 25);    // width 2 — finer and narrower
  dst.add(95.0);
  src.add(1.0);    // src bucket [0,2)  → midpoint 1  → dst bucket 0
  src.add(13.0);   // src bucket [12,14)→ midpoint 13 → dst bucket 1
  src.add(13.5);
  src.add(49.0);   // src bucket [48,50)→ midpoint 49 → dst bucket 4

  EXPECT_FALSE(dst.merge(src));  // false = approximate path taken
  EXPECT_EQ(dst.count(), 5u);
  EXPECT_DOUBLE_EQ(dst.sum(), 95.0 + 1.0 + 13.0 + 13.5 + 49.0);
  EXPECT_EQ(dst.buckets()[0], 1u);
  EXPECT_EQ(dst.buckets()[1], 2u);
  EXPECT_EQ(dst.buckets()[4], 1u);
  EXPECT_EQ(dst.buckets()[9], 1u);
  EXPECT_EQ(dst.under(), 0u);
  EXPECT_EQ(dst.over(), 0u);
  std::uint64_t in_buckets = 0;
  for (auto b : dst.buckets()) in_buckets += b;
  EXPECT_EQ(in_buckets, dst.count());

  // Out-of-range midpoints clamp into the edge buckets and the under/over
  // tallies, exactly like live adds.
  obs::Histogram wide(-100.0, 300.0, 4);  // width 100
  wide.add(-50.0);   // bucket [-100,0) → midpoint -50 → under dst.lo
  wide.add(250.0);   // bucket [200,300)→ midpoint 250 → over dst.hi
  EXPECT_FALSE(dst.merge(wide));
  EXPECT_EQ(dst.count(), 7u);
  EXPECT_EQ(dst.under(), 1u);
  EXPECT_EQ(dst.over(), 1u);
  EXPECT_EQ(dst.buckets()[0], 2u);  // clamped under
  EXPECT_EQ(dst.buckets()[9], 2u);  // clamped over
}

TEST(Metrics, HistogramJsonRoundTrip) {
  obs::Histogram h(0.0, 100.0, 10);
  h.add(5.0);
  h.add(5.0);
  h.add(55.5);
  h.add(99.0);
  const std::string text = h.to_json();
  const auto back = obs::histogram_from_json(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->lo(), h.lo());
  EXPECT_DOUBLE_EQ(back->hi(), h.hi());
  EXPECT_EQ(back->bins(), h.bins());
  EXPECT_EQ(back->count(), h.count());
  EXPECT_DOUBLE_EQ(back->sum(), h.sum());
  EXPECT_EQ(back->buckets(), h.buckets());
  // And the round-trip is a fixed point: re-serialization is identical.
  EXPECT_EQ(back->to_json(), text);

  EXPECT_FALSE(obs::histogram_from_json("not json").has_value());
  EXPECT_FALSE(obs::histogram_from_json("{\"lo\":0}").has_value());
}

// -- registry ---------------------------------------------------------------

TEST(Metrics, RegistryHandlesAreGetOrCreateAndPointerStable) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("sim.events");
  c1.inc(7);
  // Force rebalancing traffic, then re-resolve: same node.
  for (int i = 0; i < 100; ++i) reg.counter("x", std::to_string(i));
  obs::Counter& c2 = reg.counter("sim.events");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.get(), 7u);

  // Labels distinguish instances of the same instrument.
  reg.gauge("net.in_transit", "p0-p1").set(3);
  reg.gauge("net.in_transit", "p1-p2").set(1);
  ASSERT_NE(reg.find_gauge("net.in_transit", "p0-p1"), nullptr);
  EXPECT_EQ(reg.find_gauge("net.in_transit", "p0-p1")->get(), 3);
  EXPECT_EQ(reg.find_gauge("net.in_transit", "p1-p2")->get(), 1);
  EXPECT_EQ(reg.find_gauge("net.in_transit", "p9-p9"), nullptr);
  EXPECT_EQ(reg.find_counter("no.such"), nullptr);
  EXPECT_EQ(reg.find_histogram("no.such"), nullptr);
}

TEST(Metrics, RegistryJsonIsParseableAndSorted) {
  obs::MetricsRegistry reg;
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("level").set(-4);
  reg.histogram("lat", "", 0.0, 10.0, 2).add(3.0);
  const auto doc = json::parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->arr.size(), 2u);
  // Sorted by (name, label): "a.first" precedes "b.second".
  EXPECT_EQ(counters->arr[0].find("name")->str, "a.first");
  EXPECT_EQ(counters->arr[1].find("name")->str, "b.second");
  EXPECT_DOUBLE_EQ(counters->arr[1].num_or("value", 0), 2.0);
  const json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_EQ(gauges->arr.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges->arr[0].num_or("value", 0), -4.0);
  const json::Value* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->arr.size(), 1u);
  EXPECT_DOUBLE_EQ(hists->arr[0].find("data")->num_or("count", 0), 1.0);
}

// -- json helpers -----------------------------------------------------------

TEST(Json, ParserHandlesTheGrammarWeEmit) {
  const auto v = json::parse(R"({"a":[1,2.5,-3],"s":"x\"y","t":true,"n":null})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->find("a")->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(v->find("a")->arr[1].number, 2.5);
  EXPECT_EQ(v->find("s")->str, "x\"y");
  EXPECT_TRUE(v->find("t")->boolean);
  EXPECT_EQ(v->find("n")->kind, json::Value::Kind::kNull);
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json::parse("{").has_value());
}

TEST(Json, QuoteEscapesAndFormatDoubleRoundTrips) {
  EXPECT_EQ(json::quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json::format_double(3.0), "3");
  EXPECT_EQ(json::format_double(-17.0), "-17");
  for (double v : {0.1, 1.0 / 3.0, 12345.6789, -2.5e-7}) {
    const std::string s = json::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

// -- monitors: unit-level violation detection -------------------------------

LoggedEvent fork_event(Kind kind, ekbd::sim::Time at, ekbd::sim::ProcessId from,
                       ekbd::sim::ProcessId to) {
  LoggedEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.from = from;
  ev.to = to;
  ev.layer = MsgLayer::kDining;
  ev.payload = ekbd::sim::kPayloadTagOf<ekbd::core::Fork>;
  return ev;
}

TEST(Monitors, ForkUniquenessFlagsTwoForksOnOneEdge) {
  obs::ForkUniquenessMonitor m;
  m.on_event(fork_event(Kind::kSend, 10, 0, 1));
  EXPECT_TRUE(m.violations().empty());
  EXPECT_EQ(m.in_transit(0, 1), 1);
  EXPECT_EQ(m.in_transit(1, 0), 1);  // undirected
  m.on_event(fork_event(Kind::kDeliver, 15, 0, 1));
  EXPECT_EQ(m.in_transit(0, 1), 0);
  // Two live forks on the same edge (one per direction) is the P1 break.
  m.on_event(fork_event(Kind::kSend, 20, 0, 1));
  m.on_event(fork_event(Kind::kSend, 21, 1, 0));
  ASSERT_EQ(m.violations().size(), 1u);
  EXPECT_EQ(m.violations()[0].at, 21);
  EXPECT_EQ(m.violations()[0].in_transit, 2);
  EXPECT_EQ(m.fork_sends(), 3u);
  // Non-fork traffic and timers never touch the books.
  LoggedEvent ping = fork_event(Kind::kSend, 30, 2, 3);
  ping.payload = ekbd::sim::kPayloadTagOf<ekbd::core::Ping>;
  m.on_event(ping);
  EXPECT_EQ(m.in_transit(2, 3), 0);
}

TEST(Monitors, ExclusionMonitorMatchesPostHocCheckerOnHandBuiltTrace) {
  // Triangle: everyone conflicts with everyone.
  ekbd::graph::ConflictGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  obs::ExclusionMonitor m(g);
  ekbd::dining::Trace t;
  t.set_observer(nullptr);  // we drive the monitor by hand
  using TK = ekbd::dining::TraceEventKind;
  const auto feed = [&](ekbd::sim::Time at, ekbd::sim::ProcessId p, TK k) {
    t.record(at, p, k);
    m.on_trace_event(ekbd::dining::TraceEvent{at, p, k});
  };
  feed(1, 0, TK::kBecameHungry);
  feed(2, 0, TK::kStartEating);
  feed(3, 1, TK::kStartEating);  // violation: 0 still eating
  feed(4, 0, TK::kStopEating);
  feed(5, 2, TK::kStartEating);  // fine: only 1 eating, but 1∦2... edge(1,2) → violation
  feed(6, 1, TK::kStopEating);
  feed(7, 2, TK::kStopEating);
  const auto post = ekbd::dining::check_exclusion(t, g);
  ASSERT_EQ(m.violations().size(), post.violations.size());
  for (std::size_t i = 0; i < post.violations.size(); ++i) {
    EXPECT_EQ(m.violations()[i].at, post.violations[i].at) << i;
    EXPECT_EQ(m.violations()[i].a, post.violations[i].a) << i;
    EXPECT_EQ(m.violations()[i].b, post.violations[i].b) << i;
  }
  EXPECT_GE(post.violations.size(), 2u);
  EXPECT_EQ(m.eating_now(), 0u);
}

TEST(Monitors, ChannelBoundMonitorFlagsDiningExcessOnly) {
  obs::ChannelBoundMonitor m;
  m.on_high_water(MsgLayer::kDining, 0, 1, 4, 10);
  EXPECT_TRUE(m.violations().empty());  // 4 is the bound, not a breach
  m.on_high_water(MsgLayer::kDining, 1, 0, 5, 11);
  ASSERT_EQ(m.violations().size(), 1u);
  EXPECT_EQ(m.violations()[0].in_transit, 5);
  EXPECT_EQ(m.violations()[0].at, 11);
  EXPECT_EQ(m.max_in_transit(MsgLayer::kDining, 0, 1), 5);
  // Transport-layer occupancy is unbounded by design (ARQ retransmits).
  m.on_high_water(MsgLayer::kTransport, 0, 1, 40, 12);
  EXPECT_EQ(m.violations().size(), 1u);
  EXPECT_EQ(m.max_in_transit_any(MsgLayer::kTransport), 40);
  EXPECT_EQ(m.max_in_transit(MsgLayer::kDetector, 0, 1), 0);
}

TEST(Monitors, QuiescenceMonitorTracksLastSendAndPostCrashSends) {
  obs::QuiescenceMonitor m;
  EXPECT_EQ(m.last_send_to(3, MsgLayer::kDining), -1);
  m.on_send(MsgLayer::kDining, 3, 100, /*target_crashed=*/false);
  m.on_send(MsgLayer::kDining, 3, 250, /*target_crashed=*/true);
  m.on_send(MsgLayer::kDetector, 3, 300, /*target_crashed=*/true);
  EXPECT_EQ(m.last_send_to(3, MsgLayer::kDining), 250);
  EXPECT_EQ(m.sends_to_crashed(3, MsgLayer::kDining), 1u);
  EXPECT_EQ(m.sends_to_crashed(3, MsgLayer::kDetector), 1u);
  EXPECT_EQ(m.sends_to_crashed(2, MsgLayer::kDining), 0u);
}

// -- monitors wired into a real scenario ------------------------------------

ekbd::scenario::Config observed_config(std::uint64_t seed) {
  ekbd::scenario::Config cfg;
  cfg.seed = seed;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.observability = true;
  cfg.run_for = 20'000;
  cfg.crashes = {{2, 9'000}};
  return cfg;
}

TEST(Monitors, OnlineVerdictsAgreeWithPostHocCheckersOnScenarioRun) {
  ekbd::scenario::Scenario s(observed_config(0x0B5));
  ASSERT_NE(s.monitors(), nullptr);
  ASSERT_NE(s.metrics(), nullptr);
  s.run();
  EXPECT_EQ(s.monitors()->agreement_failures(s.trace(), s.graph(), s.sim().network()), "");
  EXPECT_TRUE(s.monitors()->clean());
  // The monitors actually saw the run: forks moved, sessions completed.
  EXPECT_GT(s.monitors()->forks().fork_sends(), 0u);
  EXPECT_GT(s.monitors()->channels().max_in_transit_any(MsgLayer::kDining), 0);
  EXPECT_LE(s.monitors()->channels().max_in_transit_any(MsgLayer::kDining),
            obs::ChannelBoundMonitor::kDiningBound);
  // Harness instrumentation fed the registry.
  const auto* meals = s.metrics()->find_counter("dining.meals");
  ASSERT_NE(meals, nullptr);
  EXPECT_GT(meals->get(), 0u);
  const auto* lat = s.metrics()->find_histogram("dining.hungry_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), meals->get());
  // Simulator metrics moved too.
  EXPECT_GT(s.metrics()->find_counter("sim.events")->get(), 0u);
  EXPECT_GT(s.metrics()->find_counter("sim.sends")->get(), 0u);
  EXPECT_GT(s.metrics()->find_gauge("sim.queue_depth")->max(), 0);
}

TEST(Monitors, AgreementHoldsUnderLossyNetworkWithArq) {
  ekbd::scenario::Config cfg = observed_config(0x0B6);
  cfg.net_mode = ekbd::scenario::NetMode::kLossy;
  ekbd::scenario::Scenario s(cfg);
  s.run();
  EXPECT_EQ(s.monitors()->agreement_failures(s.trace(), s.graph(), s.sim().network()), "");
  EXPECT_TRUE(s.monitors()->clean());
  // ARQ telemetry flows through telemetry_json's collection path.
  const std::string line = s.telemetry_json();
  const auto doc = json::parse(line);
  ASSERT_TRUE(doc.has_value()) << line;
  EXPECT_EQ(doc->find("config")->find("net_mode")->str, "lossy");
  const auto monitors = doc->find("monitors");
  ASSERT_NE(monitors, nullptr);
  EXPECT_DOUBLE_EQ(monitors->num_or("p1_violations", -1), 0.0);
  ASSERT_NE(monitors->find("clean"), nullptr);
  EXPECT_TRUE(monitors->find("clean")->boolean);
}

TEST(Monitors, TelemetryJsonWithoutObservabilityIsEmptyObject) {
  ekbd::scenario::Config cfg = observed_config(1);
  cfg.observability = false;
  cfg.crashes.clear();
  cfg.run_for = 2'000;
  ekbd::scenario::Scenario s(cfg);
  EXPECT_EQ(s.monitors(), nullptr);
  s.run();
  EXPECT_EQ(s.telemetry_json(), "{}");
}

// -- telemetry collectors ---------------------------------------------------

TEST(Telemetry, CollectorsSnapshotNetworkLogAndMcNumbers) {
  ekbd::scenario::Config cfg = observed_config(0x0B7);
  cfg.net_mode = ekbd::scenario::NetMode::kLossy;
  ekbd::scenario::Scenario s(cfg);
  ekbd::sim::EventLog log(/*cap=*/500);
  s.sim().set_event_log(&log);
  s.run();

  obs::MetricsRegistry reg;
  obs::collect_network_metrics(s.sim().network(), reg);
  const auto* dining_sent = reg.find_counter("net.sent", "dining");
  const auto* transport_sent = reg.find_counter("net.sent", "transport");
  ASSERT_NE(dining_sent, nullptr);
  ASSERT_NE(transport_sent, nullptr);
  EXPECT_GT(dining_sent->get(), 0u);
  // Retransmissions make physical ≥ logical on the covered layer.
  EXPECT_GE(transport_sent->get(), dining_sent->get());

  obs::collect_transport_metrics(*s.transport(), reg);
  EXPECT_GT(reg.find_counter("arq.logical_sends")->get(), 0u);
  EXPECT_GT(reg.find_counter("arq.retransmissions")->get(), 0u);

  obs::collect_event_log_metrics(log, reg);
  EXPECT_EQ(reg.find_counter("log.events")->get(), log.size());
  EXPECT_EQ(reg.find_counter("log.dropped")->get(), log.dropped());
  EXPECT_GT(log.dropped(), 0u);  // cap 500 is far below a 20k-tick run

  obs::collect_mc_metrics(/*nodes_executed=*/1000, /*sleep_pruned=*/500,
                          /*wall_seconds=*/2.0, reg);
  EXPECT_EQ(reg.find_counter("mc.nodes_executed")->get(), 1000u);
  EXPECT_EQ(reg.find_gauge("mc.states_per_sec")->get(), 500);
  EXPECT_EQ(reg.find_gauge("mc.sleep_hit_rate_pct")->get(), 33);
  // Degenerate inputs stay finite.
  obs::MetricsRegistry reg2;
  obs::collect_mc_metrics(0, 0, 0.0, reg2);
  EXPECT_EQ(reg2.find_gauge("mc.states_per_sec")->get(), 0);
  EXPECT_EQ(reg2.find_gauge("mc.sleep_hit_rate_pct")->get(), 0);
}

// -- sweep JSONL ------------------------------------------------------------

TEST(Telemetry, SweepEmitsOneParseableJsonlLinePerScenarioInConfigOrder) {
  const std::string path = ::testing::TempDir() + "/obs_sweep_telemetry.jsonl";
  std::vector<ekbd::scenario::Config> configs;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    ekbd::scenario::Config cfg = observed_config(seed);
    cfg.run_for = 8'000;
    cfg.crashes.clear();
    configs.push_back(cfg);
  }
  ekbd::scenario::SweepOptions opt;
  opt.threads = 3;
  opt.telemetry_path = path;
  std::size_t inspected = 0;
  ekbd::scenario::run_scenarios(
      configs, [&](std::size_t, ekbd::scenario::Scenario&) { ++inspected; }, opt);
  EXPECT_EQ(inspected, configs.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), configs.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto doc = json::parse(lines[i]);
    ASSERT_TRUE(doc.has_value()) << "line " << i << ": " << lines[i];
    // Line order matches config order regardless of pool scheduling.
    EXPECT_DOUBLE_EQ(doc->find("config")->num_or("seed", 0),
                     static_cast<double>(configs[i].seed));
    const auto* metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr) << "line " << i;
    EXPECT_FALSE(metrics->find("counters")->arr.empty());
    EXPECT_TRUE(doc->find("monitors")->find("clean")->boolean);
    // Every line carries the sweep object: worker wall-clock plus the
    // trace's offered/completed session counts, round-tripped via json.
    const auto* sweep = doc->find("sweep");
    ASSERT_NE(sweep, nullptr) << "line " << i;
    EXPECT_GT(sweep->num_or("wall_seconds", -1), 0.0);
    EXPECT_GT(sweep->num_or("offered", 0), 0.0);
    EXPECT_GT(sweep->num_or("completed", 0), 0.0);
    // Closed-loop runs complete what they offer, up to in-flight tails.
    EXPECT_LE(sweep->num_or("completed", 0), sweep->num_or("offered", 0));
  }
  std::remove(path.c_str());
}

TEST(Telemetry, SweepObjectAppearsOnObservabilityOffPlaceholderLines) {
  const std::string path = ::testing::TempDir() + "/obs_sweep_placeholder.jsonl";
  ekbd::scenario::Config cfg;
  cfg.seed = 77;
  cfg.n = 6;
  cfg.run_for = 6'000;
  cfg.observability = false;  // telemetry_json() alone would be "{}"
  ekbd::scenario::SweepOptions opt;
  opt.threads = 2;
  opt.telemetry_path = path;
  ekbd::scenario::run_scenarios(
      {cfg, cfg}, [](std::size_t, ekbd::scenario::Scenario&) {}, opt);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const auto doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->find("metrics"), nullptr);  // still no registry snapshot
    const auto* sweep = doc->find("sweep");
    ASSERT_NE(sweep, nullptr) << line;
    EXPECT_GT(sweep->num_or("wall_seconds", -1), 0.0);
    EXPECT_GT(sweep->num_or("offered", 0), 0.0);
  }
  std::remove(path.c_str());
}

// -- perfetto ---------------------------------------------------------------

TEST(Perfetto, ExportsSpansFlowsAndThreadNamesFromARealRun) {
  ekbd::scenario::Config cfg = observed_config(0x0B8);
  cfg.run_for = 5'000;
  cfg.crashes = {{1, 2'500}};
  ekbd::scenario::Scenario s(cfg);
  ekbd::sim::EventLog log;
  s.sim().set_event_log(&log);
  s.run();

  const std::string text = obs::chrome_trace_json(&log, &s.trace());
  const auto doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->arr.empty());
  std::size_t spans = 0, flow_starts = 0, flow_ends = 0, instants = 0, meta = 0;
  std::size_t eat_spans = 0, hungry_spans = 0;
  for (const auto& ev : events->arr) {
    const std::string ph = ev.find("ph")->str;
    if (ph == "X") {
      ++spans;
      const std::string name = ev.find("name")->str;
      if (name == "eat") ++eat_spans;
      if (name == "hungry") ++hungry_spans;
      EXPECT_GE(ev.num_or("dur", -1), 0.0);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "M") {
      ++meta;
      EXPECT_EQ(ev.find("name")->str, "thread_name");
    }
  }
  EXPECT_GT(eat_spans, 0u);
  EXPECT_GT(hungry_spans, 0u);
  EXPECT_GT(flow_starts, 0u);
  // Every flow arrow that ends somewhere started somewhere; deliveries
  // can be outstanding at the horizon, so ends ≤ starts.
  EXPECT_LE(flow_ends, flow_starts);
  EXPECT_GT(instants, 0u);  // the crash at t=2500 at minimum
  EXPECT_EQ(meta, cfg.n);   // one thread_name record per process
  // Sessions-only export works without an event log and vice versa.
  EXPECT_TRUE(json::parse(obs::chrome_trace_json(nullptr, &s.trace())).has_value());
  EXPECT_TRUE(json::parse(obs::chrome_trace_json(&log, nullptr)).has_value());
  EXPECT_TRUE(json::parse(obs::chrome_trace_json(nullptr, nullptr)).has_value());
}

}  // namespace
