// Unit tests for util/stats and util/table.
#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using ekbd::util::Histogram;
using ekbd::util::Summary;
using ekbd::util::Table;

TEST(Stats, EmptySampleIsAllZero) {
  Summary s = ekbd::util::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Stats, SingleValue) {
  Summary s = ekbd::util::summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownSample) {
  Summary s = ekbd::util::summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(s.p95, 10.0);
}

TEST(Stats, PercentileNearestRank) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(ekbd::util::percentile(xs, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile({}, 0.5), 0.0);
}

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(ekbd::util::mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(ekbd::util::mean({}), 0.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  Summary s = ekbd::util::summarize({7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileExtremeQuantiles) {
  // q=0 must be the minimum (rank ceil(0·n) clamps to 1), q=1 the maximum,
  // and a one-element sample answers every quantile with that element.
  std::vector<double> xs{30, 10, 20};  // deliberately unsorted
  EXPECT_DOUBLE_EQ(ekbd::util::percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile({5.0}, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(ekbd::util::percentile({5.0}, 1.0), 5.0);
}

TEST(Stats, P999TinySamples) {
  // On tiny samples the nearest-rank p999 degenerates to the maximum —
  // never out-of-range, never a crash.
  EXPECT_DOUBLE_EQ(ekbd::util::summarize({}).p999, 0.0);
  EXPECT_DOUBLE_EQ(ekbd::util::summarize({42.0}).p999, 42.0);
  EXPECT_DOUBLE_EQ(ekbd::util::summarize({1.0, 2.0}).p999, 2.0);
  Summary s = ekbd::util::summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.p999, 10.0);
}

TEST(Stats, P999LargeSampleSeparatesFromP99) {
  // 10 000 distinct values: p99 picks the 9900th, p999 the 9990th —
  // distinct ranks once the sample is big enough to resolve them.
  std::vector<double> xs;
  xs.reserve(10'000);
  for (int i = 1; i <= 10'000; ++i) xs.push_back(static_cast<double>(i));
  Summary s = ekbd::util::summarize(xs);
  EXPECT_DOUBLE_EQ(s.p99, 9'900.0);
  EXPECT_DOUBLE_EQ(s.p999, 9'990.0);
  EXPECT_LT(s.p99, s.p999);
}

TEST(Stats, NegativeValuesSummarizeCorrectly) {
  Summary s = ekbd::util::summarize({-3.0, -1.0, -2.0});
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, -1.0);
  EXPECT_DOUBLE_EQ(s.mean, -2.0);
}

TEST(Stats, TwoValueStddevIsHalfTheGap) {
  // Population stddev of {a, b} is |a-b|/2 — pins down the population
  // (not sample) convention documented on Summary::stddev.
  Summary s = ekbd::util::summarize({2.0, 6.0});
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Stats, SummaryToStringMentionsFields) {
  Summary s = ekbd::util::summarize({1, 2, 3});
  std::string str = s.to_string();
  EXPECT_NE(str.find("n=3"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bucket
  h.add(100.0);   // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(Histogram, SparklineWidthMatchesBuckets) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 100; ++i) h.add(0.5);
  // Sparkline glyphs are multi-byte UTF-8; check bucket count via the
  // buckets accessor and non-empty rendering instead of byte length.
  EXPECT_EQ(h.buckets().size(), 8u);
  EXPECT_FALSE(h.sparkline().empty());
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1);
  t.row().cell("beta").cell(2.5, 1);
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, AlignsColumns) {
  Table t({"x"});
  t.row().cell("short");
  t.row().cell("a-much-longer-cell");
  std::string s = t.to_string();
  // Every line has the same display length.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, BoolAndIntegerCells) {
  Table t({"a", "b", "c"});
  t.row().cell(true).cell(std::int64_t{-5}).cell(std::uint64_t{7});
  std::string s = t.to_string();
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_NE(s.find("-5"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
}

}  // namespace
