// Property-checker tests on hand-crafted traces — including traces that
// *violate* each property, proving the checkers can detect violations.
#include <gtest/gtest.h>

#include "dining/checkers.hpp"
#include "graph/topology.hpp"

namespace {

using ekbd::dining::check_exclusion;
using ekbd::dining::check_wait_freedom;
using ekbd::dining::k_bound_establishment;
using ekbd::dining::max_overtakes;
using ekbd::dining::overtake_census;
using ekbd::dining::Trace;
using ekbd::dining::TraceEventKind;
using ekbd::sim::Time;

constexpr auto kHungry = TraceEventKind::kBecameHungry;
constexpr auto kEat = TraceEventKind::kStartEating;
constexpr auto kExit = TraceEventKind::kStopEating;
constexpr auto kCrash = TraceEventKind::kCrashed;

TEST(Exclusion, CleanTraceHasNoViolations) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kHungry);
  t.record(2, 0, kEat);
  t.record(3, 0, kExit);
  t.record(4, 1, kHungry);
  t.record(5, 1, kEat);
  t.record(6, 1, kExit);
  auto r = check_exclusion(t, g);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.last_violation(), -1);
}

TEST(Exclusion, DetectsOverlappingNeighbors) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kEat);
  t.record(2, 1, kEat);  // neighbor of 0 in the ring: violation
  t.record(3, 0, kExit);
  t.record(4, 1, kExit);
  auto r = check_exclusion(t, g);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].at, 2);
  EXPECT_EQ(r.violations[0].a, 1);
  EXPECT_EQ(r.violations[0].b, 0);
  EXPECT_EQ(r.last_violation(), 2);
}

TEST(Exclusion, NonNeighborsMayOverlap) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kEat);
  t.record(2, 2, kEat);  // 0 and 2 are not adjacent in ring(4)
  auto r = check_exclusion(t, g);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Exclusion, CrashEndsEatingForOverlapPurposes) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kEat);
  t.record(2, 0, kCrash);  // 0 dies at the table
  t.record(3, 1, kEat);    // no live overlap
  auto r = check_exclusion(t, g);
  EXPECT_TRUE(r.violations.empty());
}

TEST(Exclusion, ViolationsAfterFiltersByTime) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kEat);
  t.record(2, 1, kEat);
  t.record(3, 0, kExit);
  t.record(4, 1, kExit);
  t.record(10, 2, kEat);
  t.record(11, 3, kEat);
  auto r = check_exclusion(t, g);
  EXPECT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations_after(5), 1u);
  EXPECT_EQ(r.violations_after(11), 0u);
}

TEST(WaitFreedom, AllSessionsCompleteIsWaitFree) {
  Trace t;
  t.record(1, 0, kHungry);
  t.record(5, 0, kEat);
  t.set_end_time(1000);
  auto r = check_wait_freedom(t, {-1, -1}, 100);
  EXPECT_TRUE(r.wait_free());
  EXPECT_EQ(r.sessions_total, 1u);
  EXPECT_EQ(r.sessions_completed, 1u);
  EXPECT_EQ(r.response.count, 1u);
  EXPECT_DOUBLE_EQ(r.response.mean, 4.0);
}

TEST(WaitFreedom, DetectsStarvation) {
  Trace t;
  t.record(1, 0, kHungry);  // never eats
  t.set_end_time(1000);
  auto r = check_wait_freedom(t, {-1}, 100);
  EXPECT_FALSE(r.wait_free());
  ASSERT_EQ(r.starving.size(), 1u);
  EXPECT_EQ(r.starving[0], 0);
}

TEST(WaitFreedom, RecentHungerIsNotStarvation) {
  Trace t;
  t.record(950, 0, kHungry);  // hungry only 50 ticks before the horizon
  t.set_end_time(1000);
  auto r = check_wait_freedom(t, {-1}, 100);
  EXPECT_TRUE(r.wait_free());
}

TEST(WaitFreedom, CrashedProcessIsNotStarving) {
  Trace t;
  t.record(1, 0, kHungry);
  t.record(500, 0, kCrash);
  t.set_end_time(10'000);
  auto r = check_wait_freedom(t, {500}, 100);
  EXPECT_TRUE(r.wait_free());
  EXPECT_EQ(r.sessions_crashed, 1u);
}

TEST(WaitFreedom, CrashedProcessResponsesExcludedFromStats) {
  Trace t;
  t.record(1, 0, kHungry);
  t.record(11, 0, kEat);   // completes, but 0 crashes later
  t.record(20, 0, kExit);
  t.record(30, 0, kCrash);
  t.record(40, 1, kHungry);
  t.record(45, 1, kEat);
  t.set_end_time(1000);
  auto r = check_wait_freedom(t, {30, -1}, 100);
  EXPECT_EQ(r.sessions_completed, 2u);
  EXPECT_EQ(r.response.count, 1u);  // only the correct process's session
  EXPECT_DOUBLE_EQ(r.response.mean, 5.0);
}

TEST(Overtakes, CountsEatsDuringNeighborHunger) {
  auto g = ekbd::graph::ring(4);  // 0-1-2-3-0
  Trace t;
  t.record(1, 0, kHungry);
  // Neighbor 1 eats three times while 0 stays hungry.
  for (Time b = 10; b <= 50; b += 20) {
    t.record(b, 1, kHungry);
    t.record(b + 2, 1, kEat);
    t.record(b + 4, 1, kExit);
  }
  t.record(100, 0, kEat);
  auto census = overtake_census(t, g);
  int count_1_over_0 = -1;
  for (const auto& obs : census) {
    if (obs.waiter == 0 && obs.eater == 1) count_1_over_0 = obs.count;
  }
  EXPECT_EQ(count_1_over_0, 3);
  EXPECT_EQ(max_overtakes(census), 3);
}

TEST(Overtakes, SessionBoundariesResetCounts) {
  auto g = ekbd::graph::path(2);
  Trace t;
  // Session A of 0: one overtake by 1.
  t.record(1, 0, kHungry);
  t.record(2, 1, kHungry);
  t.record(3, 1, kEat);
  t.record(4, 1, kExit);
  t.record(5, 0, kEat);
  t.record(6, 0, kExit);
  // Session B of 0: two overtakes by 1.
  t.record(10, 0, kHungry);
  t.record(11, 1, kHungry);
  t.record(12, 1, kEat);
  t.record(13, 1, kExit);
  t.record(14, 1, kHungry);
  t.record(15, 1, kEat);
  t.record(16, 1, kExit);
  t.record(20, 0, kEat);
  auto census = overtake_census(t, g);
  std::vector<int> counts;
  for (const auto& obs : census) {
    if (obs.waiter == 0) counts.push_back(obs.count);
  }
  EXPECT_EQ(counts, (std::vector<int>{1, 2}));
}

TEST(Overtakes, OpenSessionAtHorizonStillCounts) {
  auto g = ekbd::graph::path(2);
  Trace t;
  t.record(1, 0, kHungry);  // 0 never eats
  for (Time b = 10; b <= 90; b += 20) {
    t.record(b, 1, kHungry);
    t.record(b + 1, 1, kEat);
    t.record(b + 2, 1, kExit);
  }
  t.set_end_time(200);
  auto census = overtake_census(t, g);
  EXPECT_EQ(max_overtakes(census), 5);
}

TEST(Overtakes, MaxAfterFiltersBySessionStart) {
  auto g = ekbd::graph::path(2);
  Trace t;
  // Early bad session: 3 overtakes.
  t.record(1, 0, kHungry);
  for (Time b = 2; b <= 10; b += 4) {
    t.record(b, 1, kHungry);
    t.record(b + 1, 1, kEat);
    t.record(b + 2, 1, kExit);
  }
  t.record(20, 0, kEat);
  t.record(21, 0, kExit);
  // Late good session: 1 overtake.
  t.record(100, 0, kHungry);
  t.record(101, 1, kHungry);
  t.record(102, 1, kEat);
  t.record(103, 1, kExit);
  t.record(110, 0, kEat);
  auto census = overtake_census(t, g);
  EXPECT_EQ(max_overtakes(census), 3);
  EXPECT_EQ(max_overtakes(census, 50), 1);
  EXPECT_EQ(k_bound_establishment(census, 2), 2);  // last violating start + 1
  EXPECT_EQ(k_bound_establishment(census, 3), 0);  // whole run 3-bounded
}

TEST(Overtakes, CrashClosesWaiterSession) {
  auto g = ekbd::graph::path(2);
  Trace t;
  t.record(1, 0, kHungry);
  t.record(5, 1, kHungry);
  t.record(6, 1, kEat);
  t.record(7, 1, kExit);
  t.record(8, 0, kCrash);
  // Eats after the waiter crashed do not count.
  t.record(10, 1, kHungry);
  t.record(11, 1, kEat);
  t.set_end_time(100);
  auto census = overtake_census(t, g);
  int count = -1;
  for (const auto& obs : census) {
    if (obs.waiter == 0 && obs.eater == 1) count = obs.count;
  }
  EXPECT_EQ(count, 1);
}

TEST(Concurrency, ProfilesOverlaps) {
  auto g = ekbd::graph::ring(4);  // 0-1-2-3-0; 0 and 2 not adjacent
  Trace t;
  t.record(0, 0, kEat);
  t.record(5, 2, kEat);   // non-neighbor overlap
  t.record(10, 0, kExit);
  t.record(10, 2, kExit);
  t.set_end_time(20);
  auto r = ekbd::dining::concurrency_profile(t, g);
  EXPECT_EQ(r.max_concurrent_eaters, 2);
  EXPECT_EQ(r.nonneighbor_overlaps, 1u);
  // Time-weighted mean: 1 eater over [0,5), 2 over [5,10), 0 over [10,20)
  // = (5*1 + 5*2) / 20 = 0.75.
  EXPECT_DOUBLE_EQ(r.mean_concurrent_eaters, 0.75);
}

TEST(Concurrency, NeighborOverlapNotCountedAsHarmless) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(0, 0, kEat);
  t.record(5, 1, kEat);  // neighbors: a violation, not harmless concurrency
  t.set_end_time(10);
  auto r = ekbd::dining::concurrency_profile(t, g);
  EXPECT_EQ(r.nonneighbor_overlaps, 0u);
  EXPECT_EQ(r.max_concurrent_eaters, 2);
}

TEST(Concurrency, EmptyTrace) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  auto r = ekbd::dining::concurrency_profile(t, g);
  EXPECT_EQ(r.max_concurrent_eaters, 0);
  EXPECT_DOUBLE_EQ(r.mean_concurrent_eaters, 0.0);
}

TEST(Concurrency, CrashEndsOverlap) {
  auto g = ekbd::graph::ring(6);
  Trace t;
  t.record(0, 0, kEat);
  t.record(2, 0, kCrash);
  t.record(3, 2, kEat);
  t.record(4, 4, kEat);
  t.set_end_time(10);
  auto r = ekbd::dining::concurrency_profile(t, g);
  EXPECT_EQ(r.max_concurrent_eaters, 2);  // 2 and 4 (0 died before)
  EXPECT_EQ(r.nonneighbor_overlaps, 1u);  // {2,4} only
}

TEST(Overtakes, ZeroCountObservationsPresent) {
  auto g = ekbd::graph::ring(4);
  Trace t;
  t.record(1, 0, kHungry);
  t.record(2, 0, kEat);
  auto census = overtake_census(t, g);
  // 0 has two ring neighbors; both observations exist with count 0.
  std::size_t zero_obs = 0;
  for (const auto& obs : census) {
    if (obs.waiter == 0) {
      EXPECT_EQ(obs.count, 0);
      ++zero_obs;
    }
  }
  EXPECT_EQ(zero_obs, 2u);
  EXPECT_EQ(k_bound_establishment(census, 0), 0);
}

}  // namespace
