// Drinking philosophers tests: safety (shared-bottle exclusion), wait-free
// progress, concurrency beyond dining, and the co-eating tie-break.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dining/checkers.hpp"
#include "drinking/drinking_harness.hpp"
#include "fd/scripted.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::drinking::DrinkingDiner;
using ekbd::drinking::DrinkingHarness;
using ekbd::drinking::DrinkingOptions;
using ekbd::fd::ScriptedDetector;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;
using ekbd::sim::Time;

struct World {
  World(ekbd::graph::ConflictGraph g, std::uint64_t seed, DrinkingOptions opt = {})
      : graph(std::move(g)),
        sim(seed, ekbd::sim::make_uniform_delay(1, 8)),
        det(sim, 120),
        harness(sim, graph, opt) {
    colors = ekbd::graph::welsh_powell_coloring(graph);
    for (std::size_t v = 0; v < graph.size(); ++v) {
      const auto p = static_cast<ProcessId>(v);
      std::vector<ProcessId> neighbors = graph.neighbors(p);
      std::vector<int> ncolors;
      for (ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
      drinkers.push_back(
          sim.make_actor<DrinkingDiner>(std::move(neighbors), colors[v], std::move(ncolors),
                                        det));
      harness.manage(drinkers.back());
    }
  }
  ekbd::graph::ConflictGraph graph;
  Simulator sim;
  ScriptedDetector det;
  DrinkingHarness harness;
  ekbd::graph::Coloring colors;
  std::vector<DrinkingDiner*> drinkers;
};

TEST(Drinking, EveryoneDrinksRepeatedly) {
  World w(ekbd::graph::ring(6), 1);
  w.harness.run_until(40'000);
  for (std::size_t p = 0; p < 6; ++p) {
    EXPECT_GT(w.harness.drink_trace().count(TraceEventKind::kStartEating,
                                            static_cast<int>(p)),
              10u)
        << p;
  }
  EXPECT_EQ(w.harness.shared_bottle_violations(), 0u);
  for (auto* d : w.drinkers) EXPECT_EQ(d->bottle_conservation_violations(), 0u);
}

TEST(Drinking, DiningSessionsAreBriefCatalysts) {
  // The construction holds the dining CS only until the drink can start:
  // dining meals must be much shorter than drinks on average.
  DrinkingOptions opt;
  opt.drink_lo = 80;
  opt.drink_hi = 120;
  World w(ekbd::graph::ring(6), 2, opt);
  w.harness.run_until(40'000);
  double meal_total = 0, drink_total = 0;
  for (const auto& s : hungry_sessions(w.harness.dining_trace())) {
    if (s.completed()) {
      // meal length = stop - start; reconstruct from the trace horizon via
      // the drink trace instead: use session response as proxy not needed.
      (void)s;
    }
  }
  // Direct measurement: time-weighted eating vs drinking occupancy.
  auto occupancy = [](const ekbd::dining::Trace& trace) {
    double total = 0;
    std::vector<Time> start(64, -1);
    for (const auto& e : trace.events()) {
      auto p = static_cast<std::size_t>(e.process);
      if (e.kind == TraceEventKind::kStartEating) start[p] = e.at;
      if (e.kind == TraceEventKind::kStopEating && start[p] >= 0) {
        total += static_cast<double>(e.at - start[p]);
        start[p] = -1;
      }
    }
    return total;
  };
  meal_total = occupancy(w.harness.dining_trace());
  drink_total = occupancy(w.harness.drink_trace());
  ASSERT_GT(drink_total, 0.0);
  EXPECT_LT(meal_total, drink_total / 4.0)
      << "dining sessions should be brief (meals " << meal_total << " vs drinks "
      << drink_total << ")";
}

TEST(Drinking, ConcurrencyExceedsDiningOnSparseNeeds) {
  // With sparse needs, adjacent processes drink simultaneously (disjoint
  // bottles) — something the dining layer alone forbids. Expect the
  // number of adjacent-overlap drink pairs to be substantial, with zero
  // shared-bottle violations.
  DrinkingOptions opt;
  opt.need_prob = 0.3;
  opt.dry_lo = 5;
  opt.dry_hi = 30;
  opt.drink_lo = 50;
  opt.drink_hi = 100;
  World w(ekbd::graph::ring(8), 3, opt);
  w.harness.run_until(60'000);
  // Adjacent overlaps in the DRINK trace (violations of dining-style
  // exclusion — which is precisely drinking's concurrency win):
  auto ex = ekbd::dining::check_exclusion(w.harness.drink_trace(), w.graph);
  EXPECT_GT(ex.violations.size(), 50u)
      << "neighbors should routinely drink simultaneously on disjoint bottles";
  EXPECT_EQ(w.harness.shared_bottle_violations(), 0u)
      << "but never while both need the shared bottle";
  EXPECT_GT(w.harness.mean_concurrent_drinkers(), 2.0);
}

TEST(Drinking, FullNeedsReducesToDiningExclusion) {
  // With need_prob = 1 every session needs every incident bottle: adjacent
  // drinks must then never overlap at all (post-convergence; detector here
  // never lies), recovering dining semantics.
  DrinkingOptions opt;
  opt.need_prob = 1.0;
  World w(ekbd::graph::ring(6), 4, opt);
  w.harness.run_until(40'000);
  auto ex = ekbd::dining::check_exclusion(w.harness.drink_trace(), w.graph);
  EXPECT_TRUE(ex.violations.empty());
  EXPECT_EQ(w.harness.shared_bottle_violations(), 0u);
}

TEST(Drinking, WaitFreePastACrashedBottleHolder) {
  // p2 crashes (holding whatever bottles it holds); its neighbors keep
  // drinking via suspicion. Uses full needs so the dead bottle matters.
  DrinkingOptions opt;
  opt.need_prob = 1.0;
  World w(ekbd::graph::ring(6), 5, opt);
  w.harness.schedule_crash(2, 8'000);
  w.harness.run_until(80'000);
  for (ProcessId p : {1, 3}) {  // the victim's neighbors
    std::size_t late_drinks = 0;
    for (const auto& e : w.harness.drink_trace().events()) {
      if (e.kind == TraceEventKind::kStartEating && e.process == p && e.at > 12'000) {
        ++late_drinks;
      }
    }
    EXPECT_GT(late_drinks, 10u) << "p" << p << " starved next to the corpse";
  }
  auto wf = ekbd::dining::check_wait_freedom(w.harness.drink_trace(),
                                             w.harness.crash_times(), 20'000);
  EXPECT_TRUE(wf.wait_free());
}

TEST(Drinking, PreConvergenceMistakesAreFiniteAndEarly) {
  // Scripted mutual false positives let neighbors drink sharing a bottle
  // before convergence; afterwards, never again (the drinking analogue of
  // Theorem 1).
  DrinkingOptions opt;
  opt.need_prob = 1.0;
  opt.dry_lo = 5;
  opt.dry_hi = 40;
  ekbd::graph::ConflictGraph g = ekbd::graph::ring(6);
  Simulator sim(7, ekbd::sim::make_uniform_delay(1, 8));
  ScriptedDetector det(sim, 120);
  for (const auto& [a, b] : g.edges()) det.add_mutual_false_positive(a, b, 500, 4'000);
  DrinkingHarness harness(sim, g, opt);
  auto colors = ekbd::graph::welsh_powell_coloring(g);
  for (std::size_t v = 0; v < g.size(); ++v) {
    const auto p = static_cast<ProcessId>(v);
    std::vector<ProcessId> neighbors = g.neighbors(p);
    std::vector<int> ncolors;
    for (ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
    harness.manage(sim.make_actor<DrinkingDiner>(std::move(neighbors), colors[v],
                                                 std::move(ncolors), det));
  }
  harness.run_until(80'000);
  EXPECT_GT(harness.shared_bottle_violations(), 0u) << "scenario failed to cause mistakes";
  EXPECT_LT(harness.last_violation(), 8'000) << "violations persisted past convergence";
  // And the system is still live for everyone afterwards.
  for (std::size_t p = 0; p < 6; ++p) {
    std::size_t late = 0;
    for (const auto& e : harness.drink_trace().events()) {
      if (e.kind == TraceEventKind::kStartEating && e.process == static_cast<int>(p) &&
          e.at > 40'000) {
        ++late;
      }
    }
    EXPECT_GT(late, 5u) << p;
  }
}

// ------------------------- parameterized sweep ---------------------------

struct DrinkSweep {
  const char* topology;
  std::size_t n;
  std::uint64_t seed;
  double need_prob;
  std::size_t crashes;
};

class DrinkingSweep : public ::testing::TestWithParam<DrinkSweep> {};

TEST_P(DrinkingSweep, SafeLiveAndConservative) {
  const DrinkSweep& sw = GetParam();
  ekbd::sim::Rng trng(sw.seed ^ 0xD21);
  DrinkingOptions opt;
  opt.need_prob = sw.need_prob;
  opt.dry_lo = 5;
  opt.dry_hi = 60;
  World w(ekbd::graph::by_name(sw.topology, sw.n, trng), sw.seed, opt);
  for (std::size_t i = 0; i < sw.crashes; ++i) {
    w.harness.schedule_crash(static_cast<ProcessId>((i * 3 + 1) % sw.n),
                             10'000 + static_cast<Time>(i) * 8'000);
  }
  w.harness.run_until(90'000);

  // Safety: never two live neighbors drinking while both need the bottle
  // (detector here is truthful, so zero tolerance).
  EXPECT_EQ(w.harness.shared_bottle_violations(), 0u);
  // Conservation (Lemma 1.1 analogue for bottles).
  for (auto* d : w.drinkers) EXPECT_EQ(d->bottle_conservation_violations(), 0u);
  // Liveness: every correct process keeps completing drinks.
  auto wf = ekbd::dining::check_wait_freedom(w.harness.drink_trace(),
                                             w.harness.crash_times(), 25'000);
  EXPECT_TRUE(wf.wait_free());
  EXPECT_GT(w.harness.drinks_completed(), sw.n * 5);
  // The dining substrate stayed clean too (truthful oracle, and crashed
  // diners leave the table).
  EXPECT_TRUE(
      ekbd::dining::check_exclusion(w.harness.dining_trace(), w.graph).violations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DrinkingSweep,
    ::testing::Values(DrinkSweep{"ring", 6, 1, 1.0, 0}, DrinkSweep{"ring", 10, 2, 0.5, 1},
                      DrinkSweep{"ring", 8, 3, 0.3, 2}, DrinkSweep{"path", 7, 4, 0.7, 1},
                      DrinkSweep{"clique", 5, 5, 0.5, 1}, DrinkSweep{"clique", 6, 6, 1.0, 2},
                      DrinkSweep{"star", 8, 7, 0.6, 1}, DrinkSweep{"grid", 9, 8, 0.4, 1},
                      DrinkSweep{"tree", 9, 9, 0.6, 2}, DrinkSweep{"random", 10, 10, 0.5, 2},
                      DrinkSweep{"torus", 9, 11, 0.4, 1},
                      DrinkSweep{"hypercube", 8, 12, 0.5, 1}),
    [](const ::testing::TestParamInfo<DrinkSweep>& info) {
      return std::string(info.param.topology) + "_n" + std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed) + "_f" + std::to_string(info.param.crashes);
    });

TEST(Drinking, EmptyNeedsDrinkImmediately) {
  DrinkingOptions opt;
  opt.need_prob = 0.0;  // every session needs nothing
  World w(ekbd::graph::ring(4), 8, opt);
  w.harness.run_until(10'000);
  EXPECT_GT(w.harness.drinks_completed(), 40u);
  EXPECT_EQ(w.harness.shared_bottle_violations(), 0u);
}

}  // namespace
