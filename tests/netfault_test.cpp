// End-to-end network-fault suite (ctest label: netfault): Algorithm 1 run
// over lossy, duplicating, reordering and partitioned links through the
// net/ ARQ shim. The paper's properties are stated for reliable FIFO
// channels; these tests check that the transport's fair-lossy → reliable
// FIFO reduction preserves them in full —
//   P1  fork uniqueness            (lemma11_violations == 0)
//   P2  eventual weak exclusion    (no violations after FD convergence)
//   P3  wait-freedom               (every correct hungry process eats)
//   P4  eventual (m+1)-bounded waiting
// plus the §7 *logical* channel bound (≤ 4 dining messages per edge) and
// retransmission quiescence toward crashed/suspected peers. A permanent
// partition is exercised last: it violates the fair-lossy premise, so it
// sits outside the paper's guarantee envelope (see docs/MODEL.md) — the
// test pins down what still holds (per-side progress, cross-cut traffic
// quiescence) rather than the full property set.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::net::LinkFaultParams;
using ekbd::net::Partition;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::NetMode;
using ekbd::scenario::Scenario;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

Config lossy_config(std::uint64_t seed, const std::string& topology, std::size_t n) {
  Config cfg;
  cfg.seed = seed;
  cfg.topology = topology;
  cfg.n = n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.partial_synchrony = false;
  cfg.uniform_delay_lo = 1;
  cfg.uniform_delay_hi = 10;
  cfg.detector = DetectorKind::kScripted;
  cfg.net_mode = NetMode::kLossy;
  cfg.link_faults = LinkFaultParams{.drop_prob = 0.25, .dup_prob = 0.15, .reorder_prob = 0.15};
  cfg.run_for = 60'000;
  return cfg;
}

/// The full property battery every in-envelope run must pass.
/// `conv_floor` pushes the "eventually" cutoff past events the detector
/// estimate cannot see (a partition heal + the ARQ flush that follows it).
void expect_paper_properties(Scenario& s, Time starvation_horizon, Time conv_floor = 0) {
  const Time conv = std::max(s.fd_convergence_estimate(), conv_floor);
  ASSERT_LT(conv, s.config().run_for) << "detector never converged";
  // P3: wait-freedom.
  const auto wf = s.wait_freedom(starvation_horizon);
  EXPECT_TRUE(wf.wait_free()) << wf.starving.size() << " starving";
  // P2: eventual weak exclusion.
  EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
  // P4: eventual (m+1)-bounded waiting.
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv),
            s.config().acks_per_session + 1);
  // §7 channel bound — on *logical* dining messages: the ARQ books them
  // via Network::logical_sent/logical_delivered, so the same reader
  // applies with and without the transport interposed.
  EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
  // P1: fork uniqueness (Lemma 1.1 counters, per diner).
  for (std::size_t p = 0; p < s.config().n; ++p) {
    EXPECT_EQ(s.wait_free_diner(static_cast<ProcessId>(p))->lemma11_violations(), 0u);
  }
}

TEST(NetFault, LossyLinksKeepEveryPaperProperty) {
  for (const char* topo : {"ring", "grid", "clique"}) {
    SCOPED_TRACE(topo);
    Config cfg = lossy_config(0xA11CE, topo, 8);
    Scenario s(cfg);
    s.run();
    expect_paper_properties(s, 25'000);
    // The link was genuinely hostile and the shim genuinely absorbed it.
    ASSERT_NE(s.fault_model(), nullptr);
    EXPECT_GT(s.fault_model()->drops(), 0u);
    EXPECT_GT(s.transport()->retransmissions(), 0u);
    EXPECT_GT(s.transport()->overhead(), 1.0);
    // The cutoff catches the system mid-cycle, so a few messages are
    // legitimately in flight — but never more than the §7 logical bound
    // (≤ 4 dining messages per edge) allows in aggregate.
    EXPECT_LE(s.transport()->logical_in_flight(), 4u * s.graph().num_edges());
  }
}

TEST(NetFault, LossyLinksWithCrashesKeepEveryPaperProperty) {
  Config cfg = lossy_config(0xBEA7, "ring", 8);
  cfg.crashes = {{1, 12'000}, {5, 20'000}};
  cfg.detection_delay = 150;
  Scenario s(cfg);
  s.run();
  expect_paper_properties(s, 25'000);
}

TEST(NetFault, FinitePartitionHealsAndPropertiesRecover) {
  // Cut {0,1,2} off a ring of 8 for 8k ticks on top of probabilistic loss.
  // ◇P₁ here must be message-driven (heartbeats): a partition is invisible
  // to the crash-scripted oracle. During the cut, cross-cut peers are
  // (correctly, per ◇P₁ semantics) suspected; after the heal heartbeats
  // resume, suspicions retract, paused retransmissions resume, and every
  // eventual property holds from convergence on.
  Config cfg = lossy_config(0xCAFE, "ring", 8);
  cfg.detector = DetectorKind::kHeartbeat;
  cfg.net_mode = NetMode::kLossyPartition;
  cfg.link_faults = LinkFaultParams{.drop_prob = 0.15, .dup_prob = 0.1, .reorder_prob = 0.1};
  cfg.partitions.push_back(Partition{.side = {0, 1, 2}, .from = 10'000, .until = 18'000});
  cfg.run_for = 90'000;
  Scenario s(cfg);
  s.run();
  // "Eventually" starts no earlier than heal (18k) + ARQ flush slack: the
  // paused retransmission loops idle at rto_max and need one more firing
  // after the heal before cross-cut forks flow again.
  expect_paper_properties(s, 35'000, 18'000 + 6'000);

  ASSERT_NE(s.fault_model(), nullptr);
  EXPECT_GT(s.fault_model()->partition_drops(), 0u);
  EXPECT_EQ(s.fault_model()->last_heal_time(), 18'000);
  // No logical message was lost to a live process: false suspicions pause
  // retransmission, they never abandon the queue.
  EXPECT_EQ(s.transport()->abandoned_to_dead(), 0u);
  EXPECT_LE(s.transport()->logical_in_flight(), 4u * s.graph().num_edges());
  // The partition boundaries are on the record.
  EXPECT_EQ(s.trace().count(ekbd::dining::TraceEventKind::kPartitionCut), 1u);
  EXPECT_EQ(s.trace().count(ekbd::dining::TraceEventKind::kPartitionHeal), 1u);
}

TEST(NetFault, RetransmissionQuiescesTowardCrashedPeer) {
  // §7 quiescence, transport edition: once ◇P₁ suspects the crashed peer,
  // the ARQ stops transmitting toward it — both the logical dining books
  // and the physical data-segment clock freeze.
  Config cfg = lossy_config(0xDEAD, "ring", 6);
  cfg.detector = DetectorKind::kHeartbeat;
  const ProcessId crashed = 2;
  cfg.crashes = {{crashed, 10'000}};
  cfg.run_for = 70'000;
  Scenario s(cfg);

  s.run_until(35'000);  // ample time for heartbeat suspicion to settle
  ASSERT_NE(s.transport(), nullptr);
  const Time phys_mark = s.transport()->last_data_send_to(crashed);
  const Time logical_mark = s.sim().network().last_send_to(crashed, MsgLayer::kDining);
  EXPECT_TRUE(s.detector().suspects((crashed + 1) % 6, crashed));

  s.run_until(70'000);
  // Quiescent: not one more data segment, not one more logical send.
  EXPECT_EQ(s.transport()->last_data_send_to(crashed), phys_mark);
  EXPECT_EQ(s.sim().network().last_send_to(crashed, MsgLayer::kDining), logical_mark);
  // And the freeze happened promptly after the crash, not at the horizon.
  EXPECT_LT(phys_mark, 35'000);

  // The run as a whole still satisfies the paper battery.
  s.harness().trace().set_end_time(70'000);
  expect_paper_properties(s, 30'000);
}

TEST(NetFault, PermanentPartitionIsOutsideTheEnvelopeButDegradesGracefully) {
  // A partition that never heals violates fair-lossiness — the paper's
  // guarantees are NOT claimed across the cut (docs/MODEL.md "Network
  // fault model"). This test documents the degraded contract we *do*
  // provide: ◇P₁ (correctly, by its own semantics) permanently suspects
  // unreachable peers, cross-cut retransmission quiesces instead of
  // retrying forever, and both fragments keep making progress internally.
  Config cfg = lossy_config(0xF00D, "ring", 8);
  cfg.detector = DetectorKind::kHeartbeat;
  cfg.net_mode = NetMode::kLossyPartition;
  cfg.link_faults = LinkFaultParams{.drop_prob = 0.1, .dup_prob = 0.05, .reorder_prob = 0.05};
  // {0,1,2,3} vs {4,5,6,7}: ring edges 3–4 and 7–0 are cut forever.
  cfg.partitions.push_back(Partition{.side = {0, 1, 2, 3}, .from = 15'000, .until = -1});
  cfg.run_for = 100'000;
  Scenario s(cfg);

  s.run_until(60'000);
  // Suspicion across the cut, in both directions.
  EXPECT_TRUE(s.detector().suspects(3, 4));
  EXPECT_TRUE(s.detector().suspects(4, 3));
  EXPECT_TRUE(s.detector().suspects(0, 7));
  EXPECT_TRUE(s.detector().suspects(7, 0));
  // Watch the cut edges themselves: 4 still receives plenty from 5 (same
  // side), so the aggregate per-receiver clock keeps ticking — only the
  // per-edge clocks across the cut must freeze.
  const Time mark_34 = s.transport()->last_data_send(3, 4);
  const Time mark_07 = s.transport()->last_data_send(0, 7);

  s.run_until(100'000);
  // Cross-cut transport traffic quiesced (the peer is live — so the queue
  // is retained, not abandoned — but nothing is transmitted while the
  // permanent suspicion stands).
  EXPECT_EQ(s.transport()->last_data_send(3, 4), mark_34);
  EXPECT_EQ(s.transport()->last_data_send(0, 7), mark_07);
  // Both fragments keep eating: wait-freedom *per side* survives because
  // Algorithm 1 treats suspected neighbors as crashed and proceeds.
  s.harness().trace().set_end_time(100'000);
  for (ProcessId p = 0; p < 8; ++p) {
    EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating, p), 0u)
        << "process " << p << " starved after the permanent cut";
  }
  // In-envelope properties still hold *within* each fragment: exclusion
  // violations, if any, may involve only cross-cut pairs.
  const auto ex = s.exclusion();
  for (const auto& v : ex.violations) {
    const bool a_left = v.a < 4;
    const bool b_left = v.b < 4;
    EXPECT_NE(a_left, b_left) << "same-side exclusion violation " << v.a << " vs " << v.b;
  }
  // P1 is structural and survives even this: fork counters stay clean.
  for (std::size_t p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(s.wait_free_diner(static_cast<ProcessId>(p))->lemma11_violations(), 0u);
  }
}

}  // namespace
