// Tests for the multi-process socket engine (src/netproc) and the wire
// codec underneath it (sim/codec): fuzzed round-trips and hostile-frame
// rejection, loopback UDP smoke, orchestrated clusters with real SIGKILL
// crashes and runtime partitions, wedged-node supervision, and the serial
// proc sweep. All sockets bind ephemeral loopback ports (port 0), so the
// suite is safe under `ctest -j`.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "netproc/cluster.hpp"
#include "netproc/control.hpp"
#include "netproc/node.hpp"
#include "netproc/udp.hpp"
#include "scenario/sweep.hpp"
#include "sim/codec.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ekbd;
using namespace ekbd::sim;

// ------------------------------------------------------------------ codec

/// A random payload of the given variant tag, every field drawn from
/// `rng` (within the wire format's packing bounds where it has them).
Payload random_payload(std::size_t tag, Rng& rng) {
  switch (tag) {
    case 0: return std::monostate{};
    case 1: return core::Ping{};
    case 2: return core::Ack{};
    case 3: return core::ForkRequest{static_cast<int>(rng.uniform_int(-1000, 1000))};
    case 4: return core::Fork{};
    case 5: return fd::Heartbeat{};
    case 6: return fd::Probe{rng.u64()};
    case 7: return fd::ProbeEcho{rng.u64()};
    case 8: return drinking::BottleRequest{rng.chance(0.5)};
    case 9: return drinking::Bottle{};
    case 10: return drinking::BottleEscalate{};
    case 11:
      return net::DataSegment(
          rng.u64() & net::DataSegment::kMaxSeq,
          static_cast<MsgLayer>(rng.uniform_int(0, kNumMsgLayers - 1)),
          rng.u64() & net::DataSegment::kMaxLogicalSeq,
          static_cast<Time>(rng.u64() >> 2), static_cast<std::uint8_t>(rng.u64() & 0x3F),
          rng.u64());
    case 12: return net::AckSegment{rng.u64()};
    case 13: return static_cast<int>(rng.uniform_int(-100000, 100000));
    case 14: return Datum{static_cast<std::int64_t>(rng.u64())};
    case 15: return core::EdgeProposal{static_cast<int>(rng.uniform_int(-1000, 1000))};
    case 16:
      return core::EdgeAccept{static_cast<std::int32_t>(rng.uniform_int(-1000, 1000)),
                              static_cast<std::uint32_t>(rng.uniform_int(0, 1))};
    case 17: return core::EdgeDrop{};
    case 18: return core::RejoinRequest{static_cast<std::uint32_t>(rng.u64())};
    case 19:
      return core::RejoinAck{static_cast<std::uint32_t>(rng.u64()),
                             static_cast<std::uint16_t>(rng.uniform_int(0, 1)),
                             static_cast<std::uint16_t>(rng.uniform_int(0, 1))};
    default: ADD_FAILURE() << "unhandled payload tag " << tag; return std::monostate{};
  }
}

Message random_message(std::size_t tag, Rng& rng) {
  Message m;
  m.from = static_cast<ProcessId>(rng.uniform_int(0, 63));
  m.to = static_cast<ProcessId>(rng.uniform_int(0, 63));
  m.sent_at = static_cast<Time>(rng.u64() >> 2);
  m.layer = static_cast<MsgLayer>(rng.uniform_int(0, kNumMsgLayers - 1));
  m.seq = rng.u64();
  m.payload = random_payload(tag, rng);
  return m;
}

// Fuzz: every payload alternative, random field values, many rounds.
// The round-trip criterion is bit-identity of the *encoding* (encode →
// decode → re-encode must reproduce the exact bytes), which is stronger
// than field equality and is the property the log merge relies on.
TEST(Codec, FuzzEveryPayloadTagRoundTripsBitIdentically) {
  Rng rng(20260808);
  for (std::size_t tag = 0; tag < std::variant_size_v<Payload>; ++tag) {
    for (int round = 0; round < 200; ++round) {
      const Message m = random_message(tag, rng);
      std::uint8_t frame[codec::kMaxFrameSize];
      const std::size_t size = codec::encode_message(m, frame, sizeof frame);
      ASSERT_GT(size, 0u) << "tag " << tag;

      std::uint8_t kind = 0;
      const std::uint8_t* body = nullptr;
      std::size_t body_len = 0;
      ASSERT_EQ(codec::open_frame(frame, size, kind, body, body_len),
                codec::DecodeStatus::kOk);
      ASSERT_EQ(kind, static_cast<std::uint8_t>(codec::FrameKind::kMessage));

      Message out;
      ASSERT_EQ(codec::decode_message(body, body_len, out), codec::DecodeStatus::kOk);
      EXPECT_EQ(out.from, m.from);
      EXPECT_EQ(out.to, m.to);
      EXPECT_EQ(out.sent_at, m.sent_at);
      EXPECT_EQ(out.deliver_at, 0) << "deliver_at must not travel on the wire";
      EXPECT_EQ(out.layer, m.layer);
      EXPECT_EQ(out.seq, m.seq);
      EXPECT_EQ(payload_tag(out.payload), payload_tag(m.payload));

      std::uint8_t again[codec::kMaxFrameSize];
      out.deliver_at = m.deliver_at;  // not encoded; normalize before re-encoding
      const std::size_t size2 = codec::encode_message(out, again, sizeof again);
      ASSERT_EQ(size2, size);
      EXPECT_EQ(std::memcmp(frame, again, size), 0)
          << "re-encoding diverged for tag " << tag;
    }
  }
}

TEST(Codec, EventRoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    LoggedEvent ev;
    ev.at = static_cast<Time>(rng.u64() >> 2);
    ev.kind = static_cast<LoggedEvent::Kind>(rng.uniform_int(0, 7));
    ev.from = static_cast<ProcessId>(rng.uniform_int(-1, 100));
    ev.to = static_cast<ProcessId>(rng.uniform_int(-1, 100));
    ev.layer = static_cast<MsgLayer>(rng.uniform_int(0, kNumMsgLayers - 1));
    ev.seq = rng.u64();
    ev.payload = static_cast<PayloadTag>(
        rng.uniform_int(0, static_cast<int>(std::variant_size_v<Payload>) - 1));

    std::uint8_t frame[codec::kMaxFrameSize];
    const std::size_t size = codec::encode_event(ev, frame, sizeof frame);
    ASSERT_GT(size, 0u);
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    ASSERT_EQ(codec::open_frame(frame, size, kind, body, body_len),
              codec::DecodeStatus::kOk);
    LoggedEvent out;
    ASSERT_EQ(codec::decode_event(body, body_len, out), codec::DecodeStatus::kOk);
    EXPECT_EQ(out.at, ev.at);
    EXPECT_EQ(out.kind, ev.kind);
    EXPECT_EQ(out.from, ev.from);
    EXPECT_EQ(out.to, ev.to);
    EXPECT_EQ(out.layer, ev.layer);
    EXPECT_EQ(out.seq, ev.seq);
    EXPECT_EQ(out.payload, ev.payload);
  }
}

// Every strict prefix of a valid frame must be rejected, not mis-parsed.
TEST(Codec, TruncatedFramesRejected) {
  Rng rng(7);
  const Message m = random_message(11, rng);  // DataSegment: the largest body
  std::uint8_t frame[codec::kMaxFrameSize];
  const std::size_t size = codec::encode_message(m, frame, sizeof frame);
  ASSERT_GT(size, 0u);
  for (std::size_t len = 0; len < size; ++len) {
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    EXPECT_NE(codec::open_frame(frame, len, kind, body, body_len),
              codec::DecodeStatus::kOk)
        << "prefix of length " << len << " parsed as a whole frame";
  }
}

// Every single-bit flip lands in a field the checksum covers or in the
// header the parser validates — no flipped frame may open as kOk.
TEST(Codec, BitFlippedFramesRejected) {
  Rng rng(8);
  for (std::size_t tag : {std::size_t{0}, std::size_t{3}, std::size_t{11}}) {
    const Message m = random_message(tag, rng);
    std::uint8_t frame[codec::kMaxFrameSize];
    const std::size_t size = codec::encode_message(m, frame, sizeof frame);
    ASSERT_GT(size, 0u);
    for (std::size_t byte = 0; byte < size; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::uint8_t mutated[codec::kMaxFrameSize];
        std::memcpy(mutated, frame, size);
        mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
        std::uint8_t kind = 0;
        const std::uint8_t* body = nullptr;
        std::size_t body_len = 0;
        EXPECT_NE(codec::open_frame(mutated, size, kind, body, body_len),
                  codec::DecodeStatus::kOk)
            << "flip of byte " << byte << " bit " << bit << " accepted";
      }
    }
  }
}

// Random garbage of every length must be rejected without touching
// out-of-range memory (ASan/UBSan make this assertion meaningful).
TEST(Codec, GarbageNeverParses) {
  Rng rng(9);
  for (int round = 0; round < 2000; ++round) {
    std::uint8_t buf[128];
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 128));
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::uint8_t>(rng.u64());
    }
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    EXPECT_NE(codec::open_frame(buf, len, kind, body, body_len),
              codec::DecodeStatus::kOk);
  }
}

// ---------------------------------------------------------------- control

TEST(Control, FramesRoundTrip) {
  std::uint8_t buf[codec::kMaxFrameSize];
  std::uint8_t kind = 0;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;

  const std::size_t hsize = netproc::encode_hello(netproc::Hello{3, 40001}, buf, sizeof buf);
  ASSERT_GT(hsize, 0u);
  ASSERT_EQ(codec::open_frame(buf, hsize, kind, body, body_len), codec::DecodeStatus::kOk);
  ASSERT_EQ(kind, static_cast<std::uint8_t>(netproc::ControlKind::kHello));
  netproc::Hello hello;
  ASSERT_TRUE(netproc::decode_hello(body, body_len, hello));
  EXPECT_EQ(hello.node, 3);
  EXPECT_EQ(hello.port, 40001);

  netproc::Start start;
  start.epoch_ns = 123456789;
  start.ports = {40001, 40002, 40003, 40004};
  const std::size_t ssize = netproc::encode_start(start, buf, sizeof buf);
  ASSERT_GT(ssize, 0u);
  ASSERT_EQ(codec::open_frame(buf, ssize, kind, body, body_len), codec::DecodeStatus::kOk);
  netproc::Start start2;
  ASSERT_TRUE(netproc::decode_start(body, body_len, start2));
  EXPECT_EQ(start2.epoch_ns, start.epoch_ns);
  EXPECT_EQ(start2.ports, start.ports);
  // A short body (count says 4, bytes carry 3) must be rejected.
  ASSERT_GT(body_len, 2u);
  EXPECT_FALSE(netproc::decode_start(body, body_len - 2, start2));

  const std::size_t csize =
      netproc::encode_cut(netproc::Cut{1, 2, 500, 900}, buf, sizeof buf);
  ASSERT_GT(csize, 0u);
  ASSERT_EQ(codec::open_frame(buf, csize, kind, body, body_len), codec::DecodeStatus::kOk);
  netproc::Cut cut;
  ASSERT_TRUE(netproc::decode_cut(body, body_len, cut));
  EXPECT_EQ(cut.a, 1);
  EXPECT_EQ(cut.b, 2);
  EXPECT_EQ(cut.from, 500);
  EXPECT_EQ(cut.until, 900);

  const std::size_t psize =
      netproc::encode_split(netproc::Split{0x0F, 100, 200}, buf, sizeof buf);
  ASSERT_GT(psize, 0u);
  ASSERT_EQ(codec::open_frame(buf, psize, kind, body, body_len), codec::DecodeStatus::kOk);
  netproc::Split split;
  ASSERT_TRUE(netproc::decode_split(body, body_len, split));
  EXPECT_EQ(split.side_mask, 0x0Fu);
  EXPECT_EQ(split.from, 100);
  EXPECT_EQ(split.until, 200);

  const std::size_t nsize = netproc::encode_crash_notice(netproc::CrashNotice{5}, buf, sizeof buf);
  ASSERT_GT(nsize, 0u);
  ASSERT_EQ(codec::open_frame(buf, nsize, kind, body, body_len), codec::DecodeStatus::kOk);
  netproc::CrashNotice notice;
  ASSERT_TRUE(netproc::decode_crash_notice(body, body_len, notice));
  EXPECT_EQ(notice.node, 5);

  const std::size_t zsize = netproc::encode_stop(buf, sizeof buf);
  ASSERT_GT(zsize, 0u);
  ASSERT_EQ(codec::open_frame(buf, zsize, kind, body, body_len), codec::DecodeStatus::kOk);
  EXPECT_EQ(kind, static_cast<std::uint8_t>(netproc::ControlKind::kStop));
  EXPECT_EQ(body_len, 0u);
}

// -------------------------------------------------------------------- UDP

// Two ephemeral loopback sockets exchange one checksummed frame. Port 0
// binding is what keeps this suite collision-free under `ctest -j`.
TEST(Udp, LoopbackFrameExchangeOnEphemeralPorts) {
  netproc::UdpSocket a;
  netproc::UdpSocket b;
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);
  ASSERT_NE(a.port(), b.port());

  Message m;
  m.from = 0;
  m.to = 1;
  m.sent_at = 42;
  m.layer = MsgLayer::kDining;
  m.payload = core::Ping{};
  std::uint8_t frame[codec::kMaxFrameSize];
  const std::size_t size = codec::encode_message(m, frame, sizeof frame);
  ASSERT_GT(size, 0u);
  ASSERT_TRUE(a.send_to(b.port(), frame, size));

  ASSERT_TRUE(b.wait_readable(2000));
  std::uint8_t in[codec::kMaxFrameSize];
  const int got = b.recv(in, sizeof in);
  ASSERT_EQ(static_cast<std::size_t>(got), size);
  std::uint8_t kind = 0;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
  ASSERT_EQ(codec::open_frame(in, static_cast<std::size_t>(got), kind, body, body_len),
            codec::DecodeStatus::kOk);
  Message out;
  ASSERT_EQ(codec::decode_message(body, body_len, out), codec::DecodeStatus::kOk);
  EXPECT_EQ(out.sent_at, 42);
  EXPECT_NE(out.as<core::Ping>(), nullptr);
}

// ---------------------------------------------------------------- cluster

scenario::Config proc_config(std::uint64_t seed) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kProc;
  cfg.seed = seed;
  cfg.topology = "ring";
  cfg.detector = scenario::DetectorKind::kPerfect;
  cfg.net_mode = scenario::NetMode::kIdeal;
  cfg.rt_tick_ns = 100'000;  // 100 µs ticks → run_for 5'000 = 0.5 s wall
  cfg.run_for = 5'000;
  return cfg;
}

TEST(Cluster, ThreeNodeCleanRunAgreesEverywhere) {
  scenario::Config cfg = proc_config(21);
  cfg.n = 3;
  scenario::ProcScenario s(cfg);
  s.run();

  ASSERT_TRUE(s.result().ok) << s.result().error;
  for (const auto& node : s.result().nodes) {
    EXPECT_EQ(node.exit_code, 0);
    EXPECT_FALSE(node.timed_out);
  }
  EXPECT_GT(s.trace().count(dining::TraceEventKind::kStartEating), 0u);
  EXPECT_TRUE(s.exclusion().violations.empty());
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_EQ(s.replay_agreement(), "");
}

// The PR's acceptance scenario: 8 nodes over UDP loopback, ≥10% injected
// socket loss plus duplicates, a timed partition that heals, and two
// mid-session SIGKILLs — the books rebuilt from the shipped logs must
// satisfy the paper's safety properties and agree with both the post-hoc
// checkers and a full replay; the survivors must all finish cleanly.
TEST(Cluster, EightNodeLossPartitionCrashAcceptance) {
  scenario::Config cfg = proc_config(4242);
  cfg.n = 8;
  cfg.net_mode = scenario::NetMode::kLossyPartition;
  cfg.link_faults.drop_prob = 0.1;
  cfg.link_faults.dup_prob = 0.05;
  cfg.link_faults.reorder_prob = 0.0;  // the real wire reorders on its own
  cfg.partitions.push_back(net::Partition{{0, 1, 2, 3}, 6'000, 12'000});
  cfg.crashes = {{2, 8'000}, {5, 12'000}};
  cfg.run_for = 20'000;  // 2 s wall
  scenario::ProcScenario s(cfg);
  s.run();

  ASSERT_TRUE(s.result().ok) << s.result().error;
  EXPECT_EQ(s.result().crashes.size(), 2u);
  for (std::size_t p = 0; p < s.result().nodes.size(); ++p) {
    const auto& node = s.result().nodes[p];
    if (p == 2 || p == 5) {
      EXPECT_TRUE(node.killed_by_plan) << "node " << p;
    } else {
      EXPECT_EQ(node.exit_code, 0) << "survivor " << p << " did not finish cleanly";
      EXPECT_FALSE(node.timed_out) << "survivor " << p << " wedged";
    }
  }

  // Safety + agreement on the merged shipped logs.
  EXPECT_TRUE(s.exclusion().violations.empty());
  const auto wf = s.wait_freedom(cfg.run_for / 4);
  EXPECT_TRUE(wf.wait_free());
  EXPECT_GT(wf.sessions_completed, 0u);
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_EQ(s.replay_agreement(), "");
}

// Heartbeats as real datagrams: the ◇P₁ modules ride the same lossy
// socket as the diners and must still converge after a real SIGKILL.
TEST(Cluster, HeartbeatDetectorOverRealDatagrams) {
  scenario::Config cfg = proc_config(77);
  cfg.n = 4;
  cfg.detector = scenario::DetectorKind::kHeartbeat;
  cfg.net_mode = scenario::NetMode::kLossy;
  cfg.link_faults.drop_prob = 0.1;
  cfg.link_faults.dup_prob = 0.0;
  cfg.crashes = {{1, 4'000}};
  cfg.run_for = 12'000;
  scenario::ProcScenario s(cfg);
  s.run();

  ASSERT_TRUE(s.result().ok) << s.result().error;
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_EQ(s.replay_agreement(), "");
  const auto wf = s.wait_freedom(cfg.run_for / 2);
  EXPECT_TRUE(wf.wait_free());
}

// Supervision: a node that finishes its run but never exits (the `wedge`
// hook) must be caught by the per-node timeout — reaped, flagged, and
// never allowed to hang the orchestrator or the survivors.
TEST(Cluster, WedgedNodeIsReapedNotWaitedForForever) {
  struct Quiet final : sim::Actor {
    void on_message(const Message&) override {}
  };

  netproc::ClusterOptions opt;
  opt.n = 2;
  opt.seed = 5;
  opt.tick_ns = 1;
  opt.horizon = 50'000'000;  // 50 ms
  opt.log_dir = "ekbd_wedge_test_logs";
  opt.node_timeout_ms = 1'000;
  opt.wedge_node = 1;
  ::mkdir(opt.log_dir.c_str(), 0755);

  const netproc::ClusterResult res =
      netproc::run_cluster(opt, [](netproc::NodeEngine& eng) {
        eng.make_actor<Quiet>();
      });

  ASSERT_EQ(res.nodes.size(), 2u);
  EXPECT_EQ(res.nodes[0].exit_code, 0);
  EXPECT_FALSE(res.nodes[0].timed_out);
  EXPECT_TRUE(res.nodes[1].timed_out) << "supervisor never caught the wedge";
  EXPECT_FALSE(res.ok) << "a wedged node must fail the run";
  EXPECT_NE(res.error.find("node 1"), std::string::npos) << res.error;

  for (const auto& node : res.nodes) {
    if (!node.log_path.empty()) (void)std::remove(node.log_path.c_str());
  }
  (void)::rmdir(opt.log_dir.c_str());
}

// Determinism at the fault layer: two clusters with the same seed draw
// the same socket-boundary coin schedule (the wall-clock interleaving
// differs, but the injected-fault counters come from the same streams —
// so a fault plan reproduces across runs at the seed level).
TEST(Cluster, SameSeedSameFaultPlanShapesBooks) {
  scenario::Config cfg = proc_config(333);
  cfg.n = 3;
  cfg.net_mode = scenario::NetMode::kLossy;
  cfg.link_faults.drop_prob = 0.15;
  cfg.link_faults.dup_prob = 0.1;
  cfg.run_for = 4'000;

  scenario::ProcScenario a(cfg);
  a.run();
  ASSERT_TRUE(a.result().ok) << a.result().error;
  EXPECT_EQ(a.monitor_agreement(), "");

  scenario::ProcScenario b(cfg);
  b.run();
  ASSERT_TRUE(b.result().ok) << b.result().error;
  EXPECT_EQ(b.monitor_agreement(), "");

  // Both runs injected faults (the coins are real) and both rebuilt
  // self-consistent books; exact event counts differ with timing, but
  // loss must be present in both (drop_prob 0.15 over thousands of
  // datagrams cannot produce a lossless run).
  std::size_t losses_a = 0;
  std::size_t losses_b = 0;
  for (const auto& ev : a.event_log().events()) {
    losses_a += ev.kind == LoggedEvent::Kind::kLoss ? 1 : 0;
  }
  for (const auto& ev : b.event_log().events()) {
    losses_b += ev.kind == LoggedEvent::Kind::kLoss ? 1 : 0;
  }
  EXPECT_GT(losses_a, 0u);
  EXPECT_GT(losses_b, 0u);
}

// ------------------------------------------------------------------ sweep

TEST(Sweep, RunProcScenariosIsSerialAndEmitsTelemetry) {
  std::vector<scenario::Config> configs;
  for (std::uint64_t seed : {51u, 52u}) {
    scenario::Config cfg = proc_config(seed);
    cfg.n = 3;
    cfg.run_for = 3'000;
    configs.push_back(cfg);
  }
  scenario::SweepOptions sweep;
  sweep.telemetry_path = "ekbd_proc_sweep_telemetry.jsonl";
  std::size_t inspected = 0;
  scenario::run_proc_scenarios(
      configs,
      [&](std::size_t i, scenario::ProcScenario& s) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_EQ(i, inspected++);  // serial, in order
        EXPECT_TRUE(s.result().ok) << s.result().error;
        EXPECT_EQ(s.monitor_agreement(), "");
      },
      sweep);
  EXPECT_EQ(inspected, configs.size());

  std::ifstream in(sweep.telemetry_path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"engine\":\"proc\""), std::string::npos);
    EXPECT_NE(line.find("\"cluster\":{\"ok\":true"), std::string::npos);
    ++lines;
  }
  in.close();
  EXPECT_EQ(lines, configs.size());
  (void)std::remove(sweep.telemetry_path.c_str());
}

}  // namespace
