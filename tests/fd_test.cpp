// Failure-detector tests: trivial detectors, scripted ◇P₁, and the real
// heartbeat implementation's completeness/accuracy under partial synchrony.
#include <gtest/gtest.h>

#include <memory>

#include "fd/accrual.hpp"
#include "fd/detector.hpp"
#include "fd/heartbeat.hpp"
#include "fd/pingpong.hpp"
#include "fd/scripted.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::fd::HeartbeatDetector;
using ekbd::fd::HeartbeatModule;
using ekbd::fd::ModuleHost;
using ekbd::fd::NeverSuspect;
using ekbd::fd::PerfectDetector;
using ekbd::fd::ScriptedDetector;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;
using ekbd::sim::Time;
using ekbd::sim::TimerId;

TEST(TrivialDetectors, NeverSuspectsNobody) {
  NeverSuspect d;
  EXPECT_FALSE(d.suspects(0, 1));
  EXPECT_FALSE(d.suspects(1, 0));
}

TEST(TrivialDetectors, PerfectTracksCrashes) {
  Simulator sim(1);
  struct Dummy : ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  PerfectDetector d(sim);
  sim.start();
  EXPECT_FALSE(d.suspects(0, 1));
  sim.crash(1);
  EXPECT_TRUE(d.suspects(0, 1));   // zero latency
  EXPECT_FALSE(d.suspects(1, 0));  // and zero mistakes
}

TEST(Scripted, CompletenessAfterDetectionDelay) {
  Simulator sim(1);
  struct Dummy : ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };
  auto* a = sim.make_actor<Dummy>();
  auto* b = sim.make_actor<Dummy>();
  (void)a;
  ScriptedDetector det(sim, /*detection_delay=*/50);
  sim.start();
  sim.schedule_crash(b->id(), 100);
  sim.run_until(120);
  EXPECT_FALSE(det.suspects(0, 1));  // crashed at 100, delay 50
  sim.run_until(160);
  EXPECT_TRUE(det.suspects(0, 1));
  sim.run_until(100'000);
  EXPECT_TRUE(det.suspects(0, 1));  // permanent
}

TEST(Scripted, FalsePositiveIntervals) {
  Simulator sim(1);
  struct Dummy : ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, 0);
  det.add_false_positive(0, 1, 100, 200);
  sim.start();
  sim.run_until(50);
  EXPECT_FALSE(det.suspects(0, 1));
  sim.run_until(150);
  EXPECT_TRUE(det.suspects(0, 1));
  EXPECT_FALSE(det.suspects(1, 0));  // one-directional
  sim.run_until(250);
  EXPECT_FALSE(det.suspects(0, 1));  // interval over: accuracy restored
  EXPECT_EQ(det.last_false_positive_end(), 200);
}

TEST(Scripted, MutualFalsePositive) {
  Simulator sim(1);
  struct Dummy : ekbd::sim::Actor {
    void on_message(const Message&) override {}
  };
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, 0);
  det.add_mutual_false_positive(0, 1, 10, 20);
  sim.start();
  sim.run_until(15);
  EXPECT_TRUE(det.suspects(0, 1));
  EXPECT_TRUE(det.suspects(1, 0));
}

// --- heartbeat detector -----------------------------------------------

/// Host actor that owns a heartbeat module and nothing else.
class HbHost : public ekbd::sim::Actor, public ModuleHost {
 public:
  explicit HbHost(std::vector<ProcessId> neighbors, HeartbeatModule::Params params)
      : module_(std::move(neighbors), params) {}

  void on_start() override { module_.start(*this); }
  void on_message(const Message& m) override { module_.handle_message(*this, m); }
  void on_timer(TimerId id) override { module_.handle_timer(*this, id); }

  void module_send(ProcessId to, ekbd::sim::Payload payload, MsgLayer layer) override {
    send(to, payload, layer);
  }
  TimerId module_set_timer(Time delay) override { return set_timer(delay); }
  [[nodiscard]] Time module_now() const override { return now(); }
  [[nodiscard]] ProcessId module_id() const override { return id(); }

  HeartbeatModule module_;
};

struct HbWorld {
  explicit HbWorld(std::unique_ptr<ekbd::sim::DelayModel> delays,
                   HeartbeatModule::Params params = {}, int n = 3)
      : sim(42, std::move(delays)) {
    for (int i = 0; i < n; ++i) {
      std::vector<ProcessId> neighbors;
      for (int j = 0; j < n; ++j) {
        if (j != i) neighbors.push_back(j);
      }
      hosts.push_back(sim.make_actor<HbHost>(neighbors, params));
      detector.attach(hosts.back()->id(), &hosts.back()->module_);
    }
  }
  Simulator sim;
  HeartbeatDetector detector;
  std::vector<HbHost*> hosts;
};

TEST(Heartbeat, NoSuspicionsInSynchronousCalm) {
  HbWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.run_until(20'000);
  EXPECT_EQ(w.detector.total_false_suspicions(), 0u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j));
    }
  }
}

TEST(Heartbeat, CompletenessCrashedPermanentlySuspected) {
  HbWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.schedule_crash(2, 1'000);
  w.sim.run_until(50'000);
  EXPECT_TRUE(w.detector.suspects(0, 2));
  EXPECT_TRUE(w.detector.suspects(1, 2));
  // Live pair unsuspected.
  EXPECT_FALSE(w.detector.suspects(0, 1));
  EXPECT_FALSE(w.detector.suspects(1, 0));
}

TEST(Heartbeat, EventualAccuracyUnderPartialSynchrony) {
  // Violent pre-GST delays force false suspicions; after GST the adaptive
  // timeout must converge: no suspicions among live processes at the end.
  ekbd::sim::PartialSynchronyDelay::Params dp;
  dp.gst = 20'000;
  dp.pre_lo = 1;
  dp.pre_hi = 200;
  dp.spike_prob = 0.2;
  dp.spike_factor = 30;
  dp.post_lo = 1;
  dp.post_hi = 8;
  HeartbeatModule::Params hp;
  hp.period = 20;
  hp.initial_timeout = 30;  // deliberately aggressive: will misfire pre-GST
  hp.timeout_increment = 25;
  HbWorld w(ekbd::sim::make_partial_synchrony(dp), hp);
  w.sim.start();
  w.sim.run_until(200'000);
  // Mistakes happened (the point of the scenario)...
  EXPECT_GT(w.detector.total_false_suspicions(), 0u);
  // ...but accuracy was eventually restored and held.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j)) << i << "->" << j;
    }
  }
  EXPECT_LT(w.detector.last_retraction(), 200'000);
}

TEST(Heartbeat, TimeoutGrowsOnMistakes) {
  ekbd::sim::PartialSynchronyDelay::Params dp;
  dp.gst = 10'000;
  dp.pre_lo = 50;
  dp.pre_hi = 400;
  dp.post_lo = 1;
  dp.post_hi = 5;
  HeartbeatModule::Params hp;
  hp.period = 20;
  hp.initial_timeout = 25;
  hp.timeout_increment = 10;
  HbWorld w(ekbd::sim::make_partial_synchrony(dp), hp, 2);
  w.sim.start();
  w.sim.run_until(50'000);
  EXPECT_GT(w.hosts[0]->module_.timeout_of(1), 25);
}

TEST(Heartbeat, IgnoresNonNeighborHeartbeats) {
  HbWorld w(ekbd::sim::make_fixed_delay(5), {}, 2);
  // Module of host 0 has only neighbor 1; a heartbeat "from 5" can't occur
  // in practice, but the module must not crash on unknown senders.
  Message m;
  m.from = 5;
  m.to = 0;
  m.payload = ekbd::fd::Heartbeat{};
  w.sim.start();
  EXPECT_TRUE(w.hosts[0]->module_.handle_message(*w.hosts[0], m));
  EXPECT_FALSE(w.detector.suspects(0, 5));
}

TEST(Heartbeat, DetectorFacadeUnknownOwner) {
  HeartbeatDetector det;
  EXPECT_FALSE(det.suspects(9, 1));
}

// --- ping-pong detector --------------------------------------------------

/// Host actor owning a ping-pong module.
class PpHost : public ekbd::sim::Actor, public ModuleHost {
 public:
  PpHost(std::vector<ProcessId> neighbors, ekbd::fd::PingPongModule::Params params)
      : module_(std::move(neighbors), params) {}

  void on_start() override { module_.start(*this); }
  void on_message(const Message& m) override { module_.handle_message(*this, m); }
  void on_timer(TimerId id) override { module_.handle_timer(*this, id); }

  void module_send(ProcessId to, ekbd::sim::Payload payload, MsgLayer layer) override {
    send(to, payload, layer);
  }
  TimerId module_set_timer(Time delay) override { return set_timer(delay); }
  [[nodiscard]] Time module_now() const override { return now(); }
  [[nodiscard]] ProcessId module_id() const override { return id(); }

  ekbd::fd::PingPongModule module_;
};

struct PpWorld {
  explicit PpWorld(std::unique_ptr<ekbd::sim::DelayModel> delays,
                   ekbd::fd::PingPongModule::Params params = {}, int n = 3)
      : sim(43, std::move(delays)) {
    for (int i = 0; i < n; ++i) {
      std::vector<ProcessId> neighbors;
      for (int j = 0; j < n; ++j) {
        if (j != i) neighbors.push_back(j);
      }
      hosts.push_back(sim.make_actor<PpHost>(neighbors, params));
      detector.attach(hosts.back()->id(), &hosts.back()->module_);
    }
  }
  Simulator sim;
  ekbd::fd::PingPongDetector detector;
  std::vector<PpHost*> hosts;
};

TEST(PingPong, NoSuspicionsInSynchronousCalm) {
  PpWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.run_until(20'000);
  EXPECT_EQ(w.detector.total_false_suspicions(), 0u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j));
    }
  }
}

TEST(PingPong, RttEstimateConvergesToActual) {
  PpWorld w(ekbd::sim::make_fixed_delay(7));  // RTT = 14
  w.sim.start();
  w.sim.run_until(50'000);
  const Time srtt = w.hosts[0]->module_.srtt_of(1);
  EXPECT_GE(srtt, 12);
  EXPECT_LE(srtt, 16);
}

TEST(PingPong, CompletenessCrashedPermanentlySuspected) {
  PpWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.schedule_crash(2, 1'000);
  w.sim.run_until(50'000);
  EXPECT_TRUE(w.detector.suspects(0, 2));
  EXPECT_TRUE(w.detector.suspects(1, 2));
  EXPECT_FALSE(w.detector.suspects(0, 1));
}

TEST(PingPong, EventualAccuracyUnderPartialSynchrony) {
  ekbd::sim::PartialSynchronyDelay::Params dp;
  dp.gst = 20'000;
  dp.pre_lo = 1;
  dp.pre_hi = 200;
  dp.spike_prob = 0.2;
  dp.spike_factor = 30;
  dp.post_lo = 1;
  dp.post_hi = 8;
  ekbd::fd::PingPongModule::Params pp;
  pp.period = 20;
  pp.initial_rtt = 10;
  pp.initial_slack = 10;  // aggressive: will misfire pre-GST
  PpWorld w(ekbd::sim::make_partial_synchrony(dp), pp);
  w.sim.start();
  w.sim.run_until(200'000);
  EXPECT_GT(w.detector.total_false_suspicions(), 0u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j)) << i << "->" << j;
    }
  }
  EXPECT_LT(w.detector.last_retraction(), 200'000);
}

TEST(PingPong, StaleEchoIgnored) {
  // An echo whose seq doesn't match the pending probe must not count as a
  // fresh response (it could mask a crash window).
  PpWorld w(ekbd::sim::make_fixed_delay(5), {}, 2);
  w.sim.start();
  Message stale;
  stale.from = 1;
  stale.to = 0;
  stale.payload = ekbd::fd::ProbeEcho{999};
  EXPECT_TRUE(w.hosts[0]->module_.handle_message(*w.hosts[0], stale));
  // No pending probe was satisfied, no estimator update (srtt unchanged
  // from seed 20).
  EXPECT_EQ(w.hosts[0]->module_.srtt_of(1), 20);
}

TEST(PingPong, AnswersProbesFromNonNeighbors) {
  // The responder side must help anyone who asks (scope restriction is
  // about whom we monitor, not whom we answer).
  PpWorld w(ekbd::sim::make_fixed_delay(5), {}, 2);
  w.sim.start();
  Message probe;
  probe.from = 1;
  probe.to = 0;
  probe.payload = ekbd::fd::Probe{5};
  EXPECT_TRUE(w.hosts[0]->module_.handle_message(*w.hosts[0], probe));
}

// --- on-demand ping-pong --------------------------------------------------

TEST(OnDemandPingPong, SilentWhileUnwatched) {
  ekbd::fd::PingPongModule::Params pp;
  pp.on_demand = true;
  PpWorld w(ekbd::sim::make_fixed_delay(5), pp, 2);
  w.sim.start();
  w.sim.run_until(10'000);
  EXPECT_EQ(w.sim.network().total_sent(MsgLayer::kDetector), 0u)
      << "nobody watching: the detector layer must be silent";
}

TEST(OnDemandPingPong, ProbesWhileWatchedAndStopsAfter) {
  ekbd::fd::PingPongModule::Params pp;
  pp.on_demand = true;
  pp.period = 20;
  PpWorld w(ekbd::sim::make_fixed_delay(5), pp, 2);
  w.sim.start();
  w.hosts[0]->module_.set_watching(*w.hosts[0], true);
  w.sim.run_until(2'000);
  const auto during = w.sim.network().total_sent(MsgLayer::kDetector);
  EXPECT_GT(during, 50u);  // ~100 probes + echoes
  w.hosts[0]->module_.set_watching(*w.hosts[0], false);
  w.sim.run_until(2'100);  // drain in-flight echoes
  const auto baseline = w.sim.network().total_sent(MsgLayer::kDetector);
  w.sim.run_until(10'000);
  EXPECT_LE(w.sim.network().total_sent(MsgLayer::kDetector), baseline + 2);
}

TEST(OnDemandPingPong, IdleGapNotMisreadAsCrash) {
  // Watch, go idle for a long time, watch again: the live neighbor must
  // NOT be suspected just because no echo arrived during the idle phase.
  ekbd::fd::PingPongModule::Params pp;
  pp.on_demand = true;
  pp.period = 20;
  PpWorld w(ekbd::sim::make_fixed_delay(5), pp, 2);
  w.sim.start();
  w.hosts[0]->module_.set_watching(*w.hosts[0], true);
  w.sim.run_until(500);
  w.hosts[0]->module_.set_watching(*w.hosts[0], false);
  w.sim.run_until(50'000);  // idle gap far beyond any threshold
  w.hosts[0]->module_.set_watching(*w.hosts[0], true);
  w.sim.run_until(50'200);
  EXPECT_FALSE(w.detector.suspects(0, 1));
}

TEST(OnDemandPingPong, EndToEndWaitFreeDining) {
  ekbd::scenario::Config cfg;
  cfg.seed = 18;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kPingPong;
  cfg.pingpong = {.period = 20, .initial_rtt = 15, .initial_slack = 20, .on_demand = true};
  cfg.partial_synchrony = false;
  cfg.crashes = {{2, 20'000}};
  cfg.run_for = 80'000;
  ekbd::scenario::Scenario s(cfg);
  s.harness().stop_hunger_after(60'000);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
  // Once everyone drained to thinking, monitoring ceased: the last
  // detector message predates the end of the run by a wide margin.
  ekbd::sim::Time last_probe = -1;
  for (std::size_t p = 0; p < cfg.n; ++p) {
    last_probe = std::max(last_probe, s.sim().network().last_send_to(
                                          static_cast<int>(p), MsgLayer::kDetector));
  }
  EXPECT_LT(last_probe, 65'000) << "detector layer failed to go quiescent";
}

// --- φ-accrual detector --------------------------------------------------

/// Host actor owning an accrual module.
class AcHost : public ekbd::sim::Actor, public ModuleHost {
 public:
  AcHost(std::vector<ProcessId> neighbors, ekbd::fd::AccrualModule::Params params)
      : module_(std::move(neighbors), params) {}

  void on_start() override { module_.start(*this); }
  void on_message(const Message& m) override { module_.handle_message(*this, m); }
  void on_timer(TimerId id) override { module_.handle_timer(*this, id); }

  void module_send(ProcessId to, ekbd::sim::Payload payload, MsgLayer layer) override {
    send(to, payload, layer);
  }
  TimerId module_set_timer(Time delay) override { return set_timer(delay); }
  [[nodiscard]] Time module_now() const override { return now(); }
  [[nodiscard]] ProcessId module_id() const override { return id(); }

  ekbd::fd::AccrualModule module_;
};

struct AcWorld {
  explicit AcWorld(std::unique_ptr<ekbd::sim::DelayModel> delays,
                   ekbd::fd::AccrualModule::Params params = {}, int n = 3)
      : sim(44, std::move(delays)) {
    for (int i = 0; i < n; ++i) {
      std::vector<ProcessId> neighbors;
      for (int j = 0; j < n; ++j) {
        if (j != i) neighbors.push_back(j);
      }
      hosts.push_back(sim.make_actor<AcHost>(neighbors, params));
      detector.attach(hosts.back()->id(), &hosts.back()->module_);
    }
  }
  Simulator sim;
  ekbd::fd::AccrualDetector detector;
  std::vector<AcHost*> hosts;
};

TEST(Accrual, NoSuspicionsInSynchronousCalm) {
  AcWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.run_until(30'000);
  EXPECT_EQ(w.detector.total_false_suspicions(), 0u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j));
    }
  }
  // With regular arrivals, φ right after a heartbeat is tiny.
  EXPECT_LT(w.hosts[0]->module_.phi_of(1), 2.0);
}

TEST(Accrual, CompletenessPhiDivergesAfterCrash) {
  AcWorld w(ekbd::sim::make_fixed_delay(5));
  w.sim.start();
  w.sim.schedule_crash(2, 2'000);
  w.sim.run_until(60'000);
  EXPECT_TRUE(w.detector.suspects(0, 2));
  EXPECT_TRUE(w.detector.suspects(1, 2));
  EXPECT_FALSE(w.detector.suspects(0, 1));
  EXPECT_GE(w.hosts[0]->module_.phi_of(2), w.hosts[0]->module_.threshold_of(2));
}

TEST(Accrual, EventualAccuracyUnderPartialSynchrony) {
  ekbd::sim::PartialSynchronyDelay::Params dp;
  dp.gst = 20'000;
  dp.pre_lo = 1;
  dp.pre_hi = 200;
  dp.spike_prob = 0.2;
  dp.spike_factor = 30;
  dp.post_lo = 1;
  dp.post_hi = 8;
  ekbd::fd::AccrualModule::Params ap;
  ap.period = 20;
  ap.threshold = 2.0;  // deliberately jumpy: will misfire pre-GST
  AcWorld w(ekbd::sim::make_partial_synchrony(dp), ap);
  w.sim.start();
  w.sim.run_until(250'000);
  EXPECT_GT(w.detector.total_false_suspicions(), 0u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_FALSE(w.detector.suspects(i, j)) << i << "->" << j;
    }
  }
  EXPECT_LT(w.detector.last_retraction(), 250'000);
}

TEST(Accrual, WindowAdaptsToSlowerRhythm) {
  // A network that is consistently slow is not suspicious: after the
  // window fills with ~50-tick inter-arrivals, φ stays low even though a
  // naive 25-tick-period detector would scream.
  AcWorld w(ekbd::sim::make_fixed_delay(50), {}, 2);
  w.sim.start();
  w.sim.run_until(40'000);
  EXPECT_LT(w.hosts[0]->module_.phi_of(1), w.hosts[0]->module_.threshold_of(1));
}

TEST(Accrual, EndToEndDiningScenario) {
  ekbd::scenario::Config cfg;
  cfg.seed = 9;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kAccrual;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 8'000, .pre_lo = 1, .pre_hi = 80,
               .spike_prob = 0.08, .spike_factor = 15,
               .post_lo = 1, .post_hi = 6};
  cfg.accrual = {.period = 25, .window = 64, .threshold = 6.0};
  cfg.crashes = {{2, 30'000}};
  cfg.run_for = 100'000;
  ekbd::scenario::Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(25'000).wait_free());
  EXPECT_EQ(s.exclusion().violations_after(s.fd_convergence_estimate()), 0u);
}

TEST(PingPong, ThresholdGrowsOnMistakes) {
  ekbd::sim::PartialSynchronyDelay::Params dp;
  dp.gst = 10'000;
  dp.pre_lo = 50;
  dp.pre_hi = 500;
  dp.post_lo = 1;
  dp.post_hi = 5;
  ekbd::fd::PingPongModule::Params pp;
  pp.period = 20;
  pp.initial_rtt = 5;
  pp.initial_slack = 5;
  PpWorld w(ekbd::sim::make_partial_synchrony(dp), pp, 2);
  w.sim.start();
  w.sim.run_until(50'000);
  EXPECT_GT(w.hosts[0]->module_.threshold_of(1), 5 + 4 * 2 + 5);
}

}  // namespace
