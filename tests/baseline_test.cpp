// Baseline algorithm tests: each baseline's positive guarantees in its
// home setting, and the negative results the paper motivates Algorithm 1
// with (starvation under crashes; unbounded overtaking without a doorway).
#include <gtest/gtest.h>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::Time;

Config base_config(Algorithm a) {
  Config cfg;
  cfg.algorithm = a;
  cfg.detector = DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.run_for = 40'000;
  return cfg;
}

// ---------------------------------------------------------- Choy–Singh --

TEST(ChoySingh, CrashFreeSafeAndLive) {
  for (const char* topo : {"ring", "clique", "star"}) {
    Config cfg = base_config(Algorithm::kChoySingh);
    cfg.topology = topo;
    cfg.n = 7;
    Scenario s(cfg);
    s.run();
    EXPECT_TRUE(s.exclusion().violations.empty()) << topo;
    EXPECT_TRUE(s.wait_freedom(8'000).wait_free()) << topo;
    EXPECT_GT(s.trace().count(TraceEventKind::kStartEating), 20u) << topo;
  }
}

TEST(ChoySingh, SingleCrashStarvesNeighbors) {
  // The paper's negative result [8]: without an oracle, one crash blocks
  // every neighbor of the victim forever.
  Config cfg = base_config(Algorithm::kChoySingh);
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.crashes = {{2, 4'000}};
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  auto wf = s.wait_freedom(20'000);
  EXPECT_FALSE(wf.wait_free());
  // The victims are (at least) the crashed process's ring neighbors.
  bool n1 = false, n3 = false;
  for (auto p : wf.starving) {
    if (p == 1) n1 = true;
    if (p == 3) n3 = true;
  }
  EXPECT_TRUE(n1 || n3) << "at least one neighbor of the victim starves";
}

TEST(ChoySingh, StarvationSpreadsThroughDoorway) {
  // In a clique, everyone neighbors the victim: after the crash every
  // correct process eventually blocks.
  Config cfg = base_config(Algorithm::kChoySingh);
  cfg.topology = "clique";
  cfg.n = 5;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 40;
  cfg.crashes = {{0, 3'000}};
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  auto wf = s.wait_freedom(20'000);
  EXPECT_GE(wf.starving.size(), 4u);
}

TEST(ChoySingh, WithOracleRegainsWaitFreedom) {
  // Ablation: the original doorway + ◇P₁ is wait-free (phase guards use
  // suspicion) — the paper's fairness refinement is a separate concern.
  Config cfg = base_config(Algorithm::kChoySingh);
  cfg.detector = DetectorKind::kScripted;
  cfg.detection_delay = 150;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.crashes = {{2, 4'000}};
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
}

TEST(ChoySingh, SingleAckVariantMatchesAlgorithm1Fairness) {
  // DoorwayDiner with the paper's ack rule behaves like Algorithm 1:
  // post-convergence overtaking <= 2.
  Config cfg = base_config(Algorithm::kChoySinghSingleAck);
  cfg.detector = DetectorKind::kScripted;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.harness.think_lo = 5;
  cfg.harness.think_hi = 30;
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), 0), 2);
  EXPECT_TRUE(s.exclusion().violations.empty());
}

// --------------------------------------------------------- hierarchical --

TEST(Hierarchical, CrashFreeSafety) {
  Config cfg = base_config(Algorithm::kHierarchical);
  cfg.topology = "clique";
  cfg.n = 6;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.exclusion().violations.empty());
  EXPECT_GT(s.trace().count(TraceEventKind::kStartEating), 20u);
}

TEST(Hierarchical, UnfairUnderContention) {
  // Static priorities, no doorway: under continuous contention the
  // higher-colored neighbor overtakes far beyond 2.
  Config cfg = base_config(Algorithm::kHierarchical);
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 10;  // near-continuous hunger
  cfg.harness.eat_lo = 30;
  cfg.harness.eat_hi = 80;
  cfg.run_for = 120'000;
  Scenario s(cfg);
  s.run();
  EXPECT_GT(ekbd::dining::max_overtakes(s.census(), 0), 2)
      << "expected unbounded overtaking without a doorway";
}

TEST(Hierarchical, CrashStarvesNeighborsWithoutOracle) {
  Config cfg = base_config(Algorithm::kHierarchical);
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.crashes = {{2, 4'000}};
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  // Whoever needs the corpse's fork starves. (The process holding both
  // forks relative to the victim may survive, so require >= 1 victim.)
  EXPECT_FALSE(s.wait_freedom(20'000).wait_free());
}

TEST(Hierarchical, OracleRestoresProgressButNotFairness) {
  Config cfg = base_config(Algorithm::kHierarchical);
  cfg.detector = DetectorKind::kScripted;
  cfg.detection_delay = 150;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.crashes = {{3, 5'000}};
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 10;
  cfg.harness.eat_lo = 30;
  cfg.harness.eat_hi = 80;
  cfg.run_for = 120'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(25'000).wait_free());
  EXPECT_GT(ekbd::dining::max_overtakes(s.census(), s.fd_convergence_estimate()), 2);
}

// --------------------------------------------------------- Chandy–Misra --

TEST(ChandyMisra, CrashFreeSafeAndStarvationFree) {
  for (const char* topo : {"ring", "clique", "grid"}) {
    Config cfg = base_config(Algorithm::kChandyMisra);
    cfg.topology = topo;
    cfg.n = 8;
    cfg.harness.think_lo = 1;
    cfg.harness.think_hi = 20;  // heavy contention: the hard case
    Scenario s(cfg);
    s.run();
    EXPECT_TRUE(s.exclusion().violations.empty()) << topo;
    EXPECT_TRUE(s.wait_freedom(10'000).wait_free()) << topo;
    // Everyone eats (dynamic priorities prevent starvation).
    for (std::size_t p = 0; p < cfg.n; ++p) {
      EXPECT_GT(s.trace().count(TraceEventKind::kStartEating, static_cast<int>(p)), 0u)
          << topo << " p" << p;
    }
  }
}

TEST(ChandyMisra, FairerThanHierarchyUnderContention) {
  auto overtakes = [](Algorithm a) {
    Config cfg = base_config(a);
    cfg.topology = "ring";
    cfg.n = 8;
    cfg.harness.think_lo = 1;
    cfg.harness.think_hi = 10;
    cfg.harness.eat_lo = 30;
    cfg.harness.eat_hi = 80;
    cfg.run_for = 120'000;
    Scenario s(cfg);
    s.run();
    return ekbd::dining::max_overtakes(s.census(), 0);
  };
  EXPECT_LT(overtakes(Algorithm::kChandyMisra), overtakes(Algorithm::kHierarchical));
}

TEST(ChandyMisra, CrashStarvesWithoutOracle) {
  Config cfg = base_config(Algorithm::kChandyMisra);
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.crashes = {{2, 4'000}};
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  EXPECT_FALSE(s.wait_freedom(20'000).wait_free());
}

TEST(ChandyMisra, OracleRestoresProgress) {
  Config cfg = base_config(Algorithm::kChandyMisra);
  cfg.detector = DetectorKind::kScripted;
  cfg.detection_delay = 150;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.crashes = {{2, 4'000}};
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
}

// ----------------------------------------------------- head-to-head E2 --

TEST(HeadToHead, OnlyAlgorithm1IsWaitFreeUnderCrashes) {
  auto starves = [](Algorithm a, DetectorKind det) {
    Config cfg;
    cfg.algorithm = a;
    cfg.detector = det;
    cfg.partial_synchrony = false;
    cfg.topology = "ring";
    cfg.n = 8;
    cfg.detection_delay = 150;
    cfg.crashes = {{1, 4'000}, {5, 6'000}};
    cfg.harness.think_lo = 10;
    cfg.harness.think_hi = 60;
    cfg.run_for = 80'000;
    Scenario s(cfg);
    s.run();
    return !s.wait_freedom(20'000).wait_free();
  };
  EXPECT_FALSE(starves(Algorithm::kWaitFree, DetectorKind::kScripted));
  EXPECT_TRUE(starves(Algorithm::kChoySingh, DetectorKind::kNever));
  EXPECT_TRUE(starves(Algorithm::kChandyMisra, DetectorKind::kNever));
  EXPECT_TRUE(starves(Algorithm::kHierarchical, DetectorKind::kNever));
}

}  // namespace
