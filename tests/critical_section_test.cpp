// Work-queue facade tests: demand-driven critical sections on top of the
// wait-free dining layer.
#include <gtest/gtest.h>

#include <vector>

#include "daemon/critical_section.hpp"
#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::daemon::CriticalSectionScheduler;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::ProcessId;

Config base(const char* topo, std::size_t n) {
  Config cfg;
  cfg.seed = 21;
  cfg.topology = topo;
  cfg.n = n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.run_for = 60'000;
  return cfg;
}

TEST(CriticalSections, AllSubmittedWorkRunsExactlyOnceInOrder) {
  Config cfg = base("clique", 5);
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  std::vector<std::vector<int>> ran(cfg.n);
  for (int p = 0; p < static_cast<int>(cfg.n); ++p) {
    for (int i = 0; i < 20; ++i) {
      cs.submit(p, [&ran, i](ProcessId self) { ran[static_cast<std::size_t>(self)].push_back(i); });
    }
  }
  s.run();
  EXPECT_EQ(cs.executed(), 100u);
  EXPECT_TRUE(cs.drained());
  for (std::size_t p = 0; p < cfg.n; ++p) {
    ASSERT_EQ(ran[p].size(), 20u) << p;
    for (int i = 0; i < 20; ++i) EXPECT_EQ(ran[p][static_cast<std::size_t>(i)], i);
  }
  // One item per acquired section by default.
  EXPECT_EQ(cs.sections_acquired(), 100u);
}

TEST(CriticalSections, WorkRunsUnderExclusion) {
  // Neighbors' work never overlaps: the trace shows no co-eating (truthful
  // oracle, no crashes), and work only runs inside sections.
  Config cfg = base("ring", 6);
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  int inside = 0;
  for (int p = 0; p < 6; ++p) {
    for (int i = 0; i < 10; ++i) {
      cs.submit(p, [&, p](ProcessId self) {
        EXPECT_EQ(self, p);
        EXPECT_TRUE(s.diner(self)->eating()) << "work outside the critical section";
        ++inside;
      });
    }
  }
  s.run();
  EXPECT_EQ(inside, 60);
  EXPECT_TRUE(s.exclusion().violations.empty());
}

TEST(CriticalSections, DemandDrivenNoWorkNoMeals) {
  Config cfg = base("ring", 5);
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  (void)cs;
  s.run();
  EXPECT_EQ(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
  EXPECT_EQ(s.sim().network().total_sent(ekbd::sim::MsgLayer::kDining), 0u);
}

TEST(CriticalSections, BatchingRunsMultipleItemsPerSection) {
  Config cfg = base("path", 3);
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness(),
                              CriticalSectionScheduler::Options{.max_per_section = 8});
  for (int i = 0; i < 24; ++i) cs.submit(1, [](ProcessId) {});
  s.run();
  EXPECT_EQ(cs.executed(), 24u);
  EXPECT_EQ(cs.sections_acquired(), 3u);  // 24 items / 8 per section
}

TEST(CriticalSections, SubmitToCrashedProcessRejected) {
  Config cfg = base("ring", 5);
  cfg.crashes = {{2, 1'000}};
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  s.run_until(2'000);
  EXPECT_FALSE(cs.submit(2, [](ProcessId) {}));
  EXPECT_TRUE(cs.submit(0, [](ProcessId) {}));
}

TEST(CriticalSections, WaitFreeServiceNextToACorpse) {
  // p2 crashes holding nothing anyone can wait on forever: its neighbors'
  // work must still complete (the whole point of the wait-free daemon).
  Config cfg = base("ring", 6);
  cfg.crashes = {{2, 5'000}};
  cfg.run_for = 80'000;
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  int done = 0;
  // Keep feeding the victim's neighbors work before and after the crash.
  for (int round = 0; round < 10; ++round) {
    s.sim().schedule(round * 4'000 + 100, [&cs, &done] {
      for (ProcessId p : {1, 3}) {
        cs.submit(p, [&done](ProcessId) { ++done; });
      }
    });
  }
  s.run();
  EXPECT_EQ(done, 20);
  EXPECT_TRUE(cs.drained());
}

TEST(CriticalSections, DrainedIgnoresDeadQueues) {
  Config cfg = base("ring", 5);
  cfg.crashes = {{2, 10'000}};
  Scenario s(cfg);
  CriticalSectionScheduler cs(s.harness());
  // Stuff p2's queue right before it dies; the items can never run.
  s.sim().schedule(9'999, [&cs] {
    for (int i = 0; i < 5; ++i) cs.submit(2, [](ProcessId) {});
  });
  s.run();
  EXPECT_TRUE(cs.drained()) << "a corpse's queue must not count as pending";
  EXPECT_GT(cs.pending(2), 0u);
}

}  // namespace
