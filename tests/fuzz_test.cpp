// Configuration fuzzing: random topologies, sizes, loads, oracles and
// crash plans — 120 scenarios per run, every paper property checked on
// each. Complements the curated parameterized sweeps with unplanned
// combinations (and stays deterministic: the fuzz seed is fixed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::MsgLayer;
using ekbd::sim::Time;

TEST(Fuzz, RandomConfigurationsKeepEveryGuarantee) {
  const char* topologies[] = {"ring", "path", "clique", "star", "grid",
                              "tree", "random", "hypercube", "torus", "bipartite"};
  ekbd::sim::Rng fuzz(0xF022);
  int executed = 0;
  for (int iter = 0; iter < 120; ++iter) {
    Config cfg;
    cfg.seed = fuzz.u64();
    cfg.topology = topologies[fuzz.index(std::size(topologies))];
    cfg.n = static_cast<std::size_t>(fuzz.uniform_int(4, 28));
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.acks_per_session = static_cast<int>(fuzz.uniform_int(1, 3));
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.uniform_delay_lo = 1;
    cfg.uniform_delay_hi = fuzz.uniform_int(2, 30);
    cfg.detection_delay = fuzz.uniform_int(10, 300);
    cfg.fp_count = static_cast<std::size_t>(fuzz.uniform_int(0, 60));
    cfg.fp_until = 10'000;
    cfg.harness.think_lo = fuzz.uniform_int(1, 50);
    cfg.harness.think_hi = cfg.harness.think_lo + fuzz.uniform_int(1, 300);
    cfg.harness.eat_lo = fuzz.uniform_int(5, 40);
    cfg.harness.eat_hi = cfg.harness.eat_lo + fuzz.uniform_int(1, 80);
    cfg.run_for = 60'000;
    // Crash up to half the processes, all in the first half of the run.
    const auto crash_count = static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(cfg.n / 2)));
    std::vector<bool> picked(cfg.n, false);
    for (std::size_t i = 0; i < crash_count; ++i) {
      auto v = static_cast<ekbd::sim::ProcessId>(fuzz.index(cfg.n));
      if (picked[static_cast<std::size_t>(v)]) continue;
      picked[static_cast<std::size_t>(v)] = true;
      cfg.crashes.emplace_back(v, fuzz.uniform_int(5'000, 28'000));
    }

    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + cfg.topology + " n=" +
                 std::to_string(cfg.n) + " f=" + std::to_string(cfg.crashes.size()) +
                 " m=" + std::to_string(cfg.acks_per_session) + " seed=" +
                 std::to_string(cfg.seed));

    Scenario s(cfg);
    s.run();
    ++executed;

    const Time conv = s.fd_convergence_estimate();
    ASSERT_LT(conv, 40'000) << "fuzzed config never converged";
    // Wait-freedom (generous horizon: some fuzzed loads are glacial).
    EXPECT_TRUE(s.wait_freedom(25'000).wait_free());
    // Eventual weak exclusion.
    EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
    // Eventual (m+1)-bounded waiting.
    EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), cfg.acks_per_session + 1);
    // Channel bound.
    EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
    // Lemma 1.1 counter clean.
    for (std::size_t p = 0; p < cfg.n; ++p) {
      EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u);
    }
  }
  EXPECT_EQ(executed, 120);
}

}  // namespace
