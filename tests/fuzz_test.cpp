// Configuration fuzzing: random topologies, sizes, loads, oracles and
// crash plans — 120 scenarios per run, every paper property checked on
// each. Complements the curated parameterized sweeps with unplanned
// combinations (and stays deterministic: the fuzz seed is fixed).
//
// The `ParallelSweep*` tests drive the same property checks through
// scenario::parallel_sweep / run_scenarios: simulations execute on a
// work-stealing pool, assertions run serially in index order on the main
// thread. They double as the TSan workload for the sweep runner — every
// Simulator is pool-thread-confined, so a data-race report here means the
// sharding leaked state between jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "drinking/drinking_harness.hpp"
#include "obs/metrics.hpp"
#include "obs/monitors.hpp"
#include "fd/scripted.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"

namespace {

using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::MsgLayer;
using ekbd::sim::Time;

TEST(Fuzz, RandomConfigurationsKeepEveryGuarantee) {
  const char* topologies[] = {"ring", "path", "clique", "star", "grid",
                              "tree", "random", "hypercube", "torus", "bipartite"};
  ekbd::sim::Rng fuzz(0xF022);
  int executed = 0;
  for (int iter = 0; iter < 120; ++iter) {
    Config cfg;
    cfg.seed = fuzz.u64();
    cfg.topology = topologies[fuzz.index(std::size(topologies))];
    cfg.n = static_cast<std::size_t>(fuzz.uniform_int(4, 28));
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.acks_per_session = static_cast<int>(fuzz.uniform_int(1, 3));
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.uniform_delay_lo = 1;
    cfg.uniform_delay_hi = fuzz.uniform_int(2, 30);
    cfg.detection_delay = fuzz.uniform_int(10, 300);
    cfg.fp_count = static_cast<std::size_t>(fuzz.uniform_int(0, 60));
    cfg.fp_until = 10'000;
    cfg.harness.think_lo = fuzz.uniform_int(1, 50);
    cfg.harness.think_hi = cfg.harness.think_lo + fuzz.uniform_int(1, 300);
    cfg.harness.eat_lo = fuzz.uniform_int(5, 40);
    cfg.harness.eat_hi = cfg.harness.eat_lo + fuzz.uniform_int(1, 80);
    cfg.run_for = 60'000;
    cfg.observability = true;
    // Crash up to half the processes, all in the first half of the run.
    const auto crash_count = static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(cfg.n / 2)));
    std::vector<bool> picked(cfg.n, false);
    for (std::size_t i = 0; i < crash_count; ++i) {
      auto v = static_cast<ekbd::sim::ProcessId>(fuzz.index(cfg.n));
      if (picked[static_cast<std::size_t>(v)]) continue;
      picked[static_cast<std::size_t>(v)] = true;
      cfg.crashes.emplace_back(v, fuzz.uniform_int(5'000, 28'000));
    }

    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + cfg.topology + " n=" +
                 std::to_string(cfg.n) + " f=" + std::to_string(cfg.crashes.size()) +
                 " m=" + std::to_string(cfg.acks_per_session) + " seed=" +
                 std::to_string(cfg.seed));

    Scenario s(cfg);
    s.run();
    ++executed;

    const Time conv = s.fd_convergence_estimate();
    ASSERT_LT(conv, 40'000) << "fuzzed config never converged";
    // Wait-freedom (generous horizon: some fuzzed loads are glacial).
    EXPECT_TRUE(s.wait_freedom(25'000).wait_free());
    // Eventual weak exclusion.
    EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
    // Eventual (m+1)-bounded waiting.
    EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), cfg.acks_per_session + 1);
    // Channel bound.
    EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
    // Lemma 1.1 counter clean.
    for (std::size_t p = 0; p < cfg.n; ++p) {
      EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u);
    }
    // Online monitors agree with every post-hoc verdict above.
    EXPECT_EQ(s.monitors()->agreement_failures(s.trace(), s.graph(), s.sim().network()),
              "");
  }
  EXPECT_EQ(executed, 120);
}

TEST(Fuzz, LossyAndPartitionedModesKeepEveryGuarantee) {
  // The same property battery as above, but over the net/ stack: every
  // scenario runs in {lossy, lossy+partition} with fuzzed loss ≤ 0.3 and
  // duplication ≤ 0.2 rates, finite partitions only, all traffic through
  // the ReliableTransport ARQ. Executed through run_scenarios on a pool.
  const char* topologies[] = {"ring", "path", "clique", "star", "grid",
                              "tree", "random", "hypercube", "torus", "bipartite"};
  ekbd::sim::Rng fuzz(0x10557);
  std::vector<Config> configs;
  for (int iter = 0; iter < 24; ++iter) {
    Config cfg;
    cfg.seed = fuzz.u64();
    cfg.topology = topologies[fuzz.index(std::size(topologies))];
    cfg.n = static_cast<std::size_t>(fuzz.uniform_int(4, 12));
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.acks_per_session = static_cast<int>(fuzz.uniform_int(1, 3));
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.uniform_delay_lo = 1;
    cfg.uniform_delay_hi = fuzz.uniform_int(2, 15);
    cfg.detection_delay = fuzz.uniform_int(10, 200);
    cfg.fp_count = static_cast<std::size_t>(fuzz.uniform_int(0, 20));
    cfg.fp_until = 8'000;
    cfg.run_for = 70'000;
    cfg.observability = true;
    cfg.net_mode = ekbd::scenario::NetMode::kLossy;
    cfg.link_faults.drop_prob = fuzz.uniform_real(0.05, 0.3);
    cfg.link_faults.dup_prob = fuzz.uniform_real(0.0, 0.2);
    cfg.link_faults.reorder_prob = fuzz.uniform_real(0.0, 0.2);
    if (iter % 4 == 3) {
      // Every fourth config additionally suffers a finite partition that
      // isolates one random process mid-run; the ARQ bridges it (no
      // suspicion needed — the scripted oracle cannot see partitions).
      cfg.net_mode = ekbd::scenario::NetMode::kLossyPartition;
      ekbd::net::Partition p;
      p.side = {static_cast<ekbd::sim::ProcessId>(fuzz.index(cfg.n))};
      p.from = fuzz.uniform_int(8'000, 12'000);
      p.until = p.from + fuzz.uniform_int(2'000, 6'000);
      cfg.partitions.push_back(std::move(p));
    }
    if (fuzz.chance(0.4)) {
      cfg.crashes.emplace_back(static_cast<ekbd::sim::ProcessId>(fuzz.index(cfg.n)),
                               fuzz.uniform_int(20'000, 30'000));
    }
    configs.push_back(std::move(cfg));
  }

  std::size_t inspected = 0;
  ekbd::scenario::SweepOptions sweep;
  sweep.threads = 8;
  ekbd::scenario::run_scenarios(
      configs,
      [&configs, &inspected](std::size_t i, Scenario& s) {
        const Config& cfg = configs[i];
        SCOPED_TRACE("shard " + std::to_string(i) + ": " + cfg.topology + " n=" +
                     std::to_string(cfg.n) + " mode=" + to_string(cfg.net_mode) +
                     " drop=" + std::to_string(cfg.link_faults.drop_prob) + " seed=" +
                     std::to_string(cfg.seed));
        EXPECT_EQ(i, inspected) << "inspection left index order";
        ++inspected;

        Time conv = s.fd_convergence_estimate();
        // The scripted oracle cannot see partitions, so its estimate may
        // predate the heal; "eventually" starts once the cut is gone and
        // the ARQ has had a capped-timeout cycle to flush the backlog.
        for (const auto& part : cfg.partitions) conv = std::max(conv, part.until + 6'000);
        ASSERT_LT(conv, 45'000) << "fuzzed config never converged";
        // Wait-freedom — horizon sized for partition stalls + ARQ latency.
        EXPECT_TRUE(s.wait_freedom(32'000).wait_free());
        // Eventual weak exclusion.
        EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
        // Eventual (m+1)-bounded waiting.
        EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), cfg.acks_per_session + 1);
        // §7 channel bound over *logical* dining messages (ARQ mode).
        EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
        // Fork/token conservation.
        for (std::size_t p = 0; p < cfg.n; ++p) {
          EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u);
        }
        // Transport sanity: in-flight stays within the aggregate §7
        // logical bound at the cutoff, and nothing is abandoned toward a
        // live process (abandonment requires suspected AND crashed).
        EXPECT_LE(s.transport()->logical_in_flight(), 4u * s.graph().num_edges());
        if (cfg.crashes.empty()) {
          EXPECT_EQ(s.transport()->abandoned_to_dead(), 0u);
        }
        // Online monitors agree with the post-hoc checkers even under
        // loss, duplication, reordering and partitions (ARQ mode).
        EXPECT_EQ(s.monitors()->agreement_failures(s.trace(), s.graph(), s.sim().network()),
                  "");
      },
      sweep);
  EXPECT_EQ(inspected, configs.size());
}

// ---------------------- parallel sweep variants ---------------------------

TEST(Fuzz, ParallelSweepWaitFreeKeepsEveryGuarantee) {
  // Fuzzed Algorithm::kWaitFree configs executed through run_scenarios on
  // an 8-wide pool; every paper property is asserted per shard, serially,
  // in config order. Sizes are moderate so the TSan build stays brisk.
  const char* topologies[] = {"ring", "path", "clique", "star", "grid",
                              "tree", "random", "hypercube", "torus", "bipartite"};
  ekbd::sim::Rng fuzz(0xBEE5);
  std::vector<Config> configs;
  for (int iter = 0; iter < 32; ++iter) {
    Config cfg;
    cfg.seed = fuzz.u64();
    cfg.topology = topologies[fuzz.index(std::size(topologies))];
    cfg.n = static_cast<std::size_t>(fuzz.uniform_int(4, 14));
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.acks_per_session = static_cast<int>(fuzz.uniform_int(1, 3));
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.uniform_delay_lo = 1;
    cfg.uniform_delay_hi = fuzz.uniform_int(2, 20);
    cfg.detection_delay = fuzz.uniform_int(10, 200);
    cfg.fp_count = static_cast<std::size_t>(fuzz.uniform_int(0, 30));
    cfg.fp_until = 8'000;
    cfg.harness.think_lo = fuzz.uniform_int(1, 40);
    cfg.harness.think_hi = cfg.harness.think_lo + fuzz.uniform_int(1, 200);
    cfg.harness.eat_lo = fuzz.uniform_int(5, 30);
    cfg.harness.eat_hi = cfg.harness.eat_lo + fuzz.uniform_int(1, 60);
    cfg.run_for = 45'000;
    cfg.observability = true;
    const auto crash_count = static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(cfg.n / 3)));
    std::vector<bool> picked(cfg.n, false);
    for (std::size_t i = 0; i < crash_count; ++i) {
      auto v = static_cast<ekbd::sim::ProcessId>(fuzz.index(cfg.n));
      if (picked[static_cast<std::size_t>(v)]) continue;
      picked[static_cast<std::size_t>(v)] = true;
      cfg.crashes.emplace_back(v, fuzz.uniform_int(5'000, 20'000));
    }
    configs.push_back(std::move(cfg));
  }

  std::size_t inspected = 0;
  ekbd::scenario::SweepOptions sweep;
  sweep.threads = 8;
  ekbd::scenario::run_scenarios(
      configs,
      [&configs, &inspected](std::size_t i, Scenario& s) {
        const Config& cfg = configs[i];
        SCOPED_TRACE("shard " + std::to_string(i) + ": " + cfg.topology + " n=" +
                     std::to_string(cfg.n) + " f=" + std::to_string(cfg.crashes.size()) +
                     " m=" + std::to_string(cfg.acks_per_session) + " seed=" +
                     std::to_string(cfg.seed));
        EXPECT_EQ(i, inspected) << "inspection left index order";
        ++inspected;

        const Time conv = s.fd_convergence_estimate();
        ASSERT_LT(conv, 30'000) << "fuzzed config never converged";
        // Wait-freedom (Theorem 2).
        EXPECT_TRUE(s.wait_freedom(22'000).wait_free());
        // Eventual weak exclusion (Theorem 1).
        EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
        // Eventual (m+1)-bounded waiting (Theorem 3).
        EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), cfg.acks_per_session + 1);
        // Channel bound (Lemma 2).
        EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
        // Fork/token conservation (Lemma 1.1).
        for (std::size_t p = 0; p < cfg.n; ++p) {
          EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u);
        }
        // Online monitors agree with every post-hoc verdict above.
        EXPECT_EQ(s.monitors()->agreement_failures(s.trace(), s.graph(), s.sim().network()),
                  "");
      },
      sweep);
  EXPECT_EQ(inspected, configs.size());
}

/// Drinking-philosophers world for the parallel sweep (the drinking_test
/// World, reassembled here so the fuzz binary stays self-contained).
struct DrinkWorld {
  DrinkWorld(ekbd::graph::ConflictGraph g, std::uint64_t seed,
             ekbd::drinking::DrinkingOptions opt)
      : graph(std::move(g)),
        sim(seed, ekbd::sim::make_uniform_delay(1, 8)),
        det(sim, 120),
        harness(sim, graph, opt),
        hub(graph) {
    // Full observability rig: monitors over the dining substrate (the
    // drinking construction rides on it), metrics from the harness.
    sim.set_event_sink(&hub);
    sim.network().set_watch(&hub);
    harness.dining_trace().set_observer(&hub);
    harness.attach_metrics(metrics);
    const auto colors = ekbd::graph::welsh_powell_coloring(graph);
    for (std::size_t v = 0; v < graph.size(); ++v) {
      const auto p = static_cast<ekbd::sim::ProcessId>(v);
      std::vector<ekbd::sim::ProcessId> neighbors = graph.neighbors(p);
      std::vector<int> ncolors;
      for (auto j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
      drinkers.push_back(sim.make_actor<ekbd::drinking::DrinkingDiner>(
          std::move(neighbors), colors[v], std::move(ncolors), det));
      harness.manage(drinkers.back());
    }
  }
  ekbd::graph::ConflictGraph graph;
  ekbd::sim::Simulator sim;
  ekbd::fd::ScriptedDetector det;
  ekbd::drinking::DrinkingHarness harness;
  ekbd::obs::MonitorHub hub;
  ekbd::obs::MetricsRegistry metrics;
  std::vector<ekbd::drinking::DrinkingDiner*> drinkers;
};

TEST(Fuzz, ParallelSweepDrinkingLayerKeepsEveryGuarantee) {
  // The drinking construction (Section 5's resource-generalization layer)
  // through parallel_sweep<R> directly: build + simulate on workers,
  // assert serially. Fuzzes topology, need density and crash plans.
  struct Shard {
    const char* topology;
    std::size_t n;
    std::uint64_t seed;
    double need_prob;
    std::size_t crashes;
  };
  const std::vector<Shard> shards = {
      {"ring", 6, 21, 1.0, 0},  {"ring", 8, 22, 0.5, 1},  {"path", 7, 23, 0.7, 1},
      {"clique", 5, 24, 0.5, 1}, {"star", 8, 25, 0.6, 1}, {"grid", 9, 26, 0.4, 1},
      {"tree", 9, 27, 0.6, 2},  {"random", 10, 28, 0.5, 2}, {"torus", 9, 29, 0.4, 1},
      {"hypercube", 8, 30, 0.5, 1}, {"bipartite", 8, 31, 0.8, 0}, {"clique", 6, 32, 1.0, 2},
  };

  std::size_t inspected = 0;
  ekbd::scenario::parallel_sweep<std::unique_ptr<DrinkWorld>>(
      shards.size(), /*threads=*/8,
      [&shards](std::size_t i) {
        const Shard& sh = shards[i];
        ekbd::sim::Rng trng(sh.seed ^ 0xD21);
        ekbd::drinking::DrinkingOptions opt;
        opt.need_prob = sh.need_prob;
        opt.dry_lo = 5;
        opt.dry_hi = 60;
        auto w = std::make_unique<DrinkWorld>(ekbd::graph::by_name(sh.topology, sh.n, trng),
                                              sh.seed, opt);
        for (std::size_t c = 0; c < sh.crashes; ++c) {
          w->harness.schedule_crash(static_cast<ekbd::sim::ProcessId>((c * 3 + 1) % sh.n),
                                    10'000 + static_cast<Time>(c) * 8'000);
        }
        w->harness.run_until(60'000);
        return w;
      },
      [&shards, &inspected](std::size_t i, std::unique_ptr<DrinkWorld>& w) {
        const Shard& sh = shards[i];
        SCOPED_TRACE("shard " + std::to_string(i) + ": " + sh.topology + " n=" +
                     std::to_string(sh.n) + " need=" + std::to_string(sh.need_prob) +
                     " f=" + std::to_string(sh.crashes));
        EXPECT_EQ(i, inspected) << "inspection left index order";
        ++inspected;

        // Shared-bottle exclusion (truthful oracle: zero tolerance).
        EXPECT_EQ(w->harness.shared_bottle_violations(), 0u);
        // Bottle conservation (Lemma 1.1 analogue).
        for (auto* d : w->drinkers) EXPECT_EQ(d->bottle_conservation_violations(), 0u);
        // Wait-free progress for every correct process.
        auto wf = ekbd::dining::check_wait_freedom(w->harness.drink_trace(),
                                                   w->harness.crash_times(), 25'000);
        EXPECT_TRUE(wf.wait_free());
        EXPECT_GT(w->harness.drinks_completed(), sh.n * 5);
        // The dining substrate underneath stayed clean.
        EXPECT_TRUE(ekbd::dining::check_exclusion(w->harness.dining_trace(), w->graph)
                        .violations.empty());
        // Online monitors on the dining substrate agree with the post-hoc
        // verdicts — the drinking layer's fork traffic is still P1/P6/P7
        // clean underneath.
        EXPECT_EQ(w->hub.agreement_failures(w->harness.dining_trace(), w->graph,
                                            w->sim.network()),
                  "");
        // Drinking-harness telemetry mirrors the harness's own books.
        const auto* drinks = w->metrics.find_counter("drinking.drinks");
        ASSERT_NE(drinks, nullptr);
        EXPECT_EQ(drinks->get(), w->harness.drinks_completed());
        EXPECT_EQ(w->metrics.find_counter("drinking.violations")->get(),
                  w->harness.shared_bottle_violations());
        const auto* thirst = w->metrics.find_histogram("drinking.thirst_latency");
        ASSERT_NE(thirst, nullptr);
        EXPECT_GE(thirst->count(), drinks->get());
      });
  EXPECT_EQ(inspected, shards.size());
}

}  // namespace
