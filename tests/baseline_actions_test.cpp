// Action-level tests for the baseline algorithms: Chandy–Misra's
// dirty/clean fork discipline and the hierarchical diner's static-priority
// yield rules, on hand-driven two/three-process worlds.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/chandy_misra_diner.hpp"
#include "baseline/doorway_diner.hpp"
#include "baseline/hierarchical_diner.hpp"
#include "fd/detector.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::baseline::ChandyMisraDiner;
using ekbd::baseline::DoorwayDiner;
using ekbd::baseline::HierarchicalDiner;
using ekbd::fd::NeverSuspect;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;

// ------------------------------------------------------- Chandy–Misra --

struct CmEdge {
  CmEdge() : sim(1, ekbd::sim::make_fixed_delay(1)) {
    hi = sim.make_actor<ChandyMisraDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                          det);
    lo = sim.make_actor<ChandyMisraDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                          det);
    sim.start();
  }
  Simulator sim;
  NeverSuspect det;
  ChandyMisraDiner* hi;
  ChandyMisraDiner* lo;
};

TEST(ChandyMisraActions, InitialForksDirtyAtHigherColor) {
  CmEdge e;
  EXPECT_TRUE(e.hi->holds_fork(1));
  EXPECT_TRUE(e.hi->fork_dirty(1));
  EXPECT_FALSE(e.lo->holds_fork(0));
}

TEST(ChandyMisraActions, DirtyForkYieldedOnRequestEvenWhileHungry) {
  // CM rule: a dirty fork must be yielded on request unless the holder is
  // EATING — mere hunger does not let it keep the fork (the opposite of
  // the hierarchical rule, which is the point of dirty/clean).
  // Needs a holder that is hungry but not eating: mid on a path, holding
  // the lo-side fork (dirty, initial placement: color 1 > 0) but blocked
  // on c's fork (c eats forever).
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  NeverSuspect det;
  auto* lo = sim.make_actor<ChandyMisraDiner>(std::vector<ProcessId>{1}, 0,
                                              std::vector<int>{1}, det);
  auto* mid = sim.make_actor<ChandyMisraDiner>(std::vector<ProcessId>{0, 2}, 1,
                                               std::vector<int>{0, 2}, det);
  auto* c = sim.make_actor<ChandyMisraDiner>(std::vector<ProcessId>{1}, 2,
                                             std::vector<int>{1}, det);
  sim.start();
  c->become_hungry();  // c holds its only fork (dirty): eats forever
  ASSERT_TRUE(c->eating());
  mid->become_hungry();  // requests c's fork; c eating -> deferred
  sim.run_until(4);
  ASSERT_TRUE(mid->hungry());
  ASSERT_TRUE(mid->holds_fork(0));
  ASSERT_TRUE(mid->fork_dirty(0));

  lo->become_hungry();  // requests mid's dirty fork
  sim.run_until(sim.now() + 3);
  EXPECT_FALSE(mid->holds_fork(0)) << "hungry holder must yield a dirty fork";
  EXPECT_TRUE(lo->eating());
  EXPECT_TRUE(lo->fork_dirty(1));  // arrived clean, soiled by the meal
}

TEST(ChandyMisraActions, CleanForkKeptWhileHungry) {
  CmEdge e;
  // lo acquires the fork (arrives clean) but cannot eat yet... on an edge
  // lo eats immediately; so test the "clean keeps" rule via the request
  // arriving AFTER lo received the fork but before lo's pump... On a
  // 2-process world the clean interval is zero, so instead verify the
  // equivalent observable: alternation. After lo eats (fork dirty at lo),
  // hi's request pries it away; after hi eats, lo's request pries it
  // back — nobody can eat twice in a row under contention.
  std::vector<int> eats;  // 0 = hi, 1 = lo
  auto run_round = [&] {
    if (!e.hi->hungry() && !e.hi->eating()) e.hi->become_hungry();
    if (!e.lo->hungry() && !e.lo->eating()) e.lo->become_hungry();
    e.sim.run_until(e.sim.now() + 12);
    if (e.hi->eating()) {
      eats.push_back(0);
      e.hi->finish_eating();
    } else if (e.lo->eating()) {
      eats.push_back(1);
      e.lo->finish_eating();
    }
  };
  for (int i = 0; i < 8; ++i) run_round();
  ASSERT_GE(eats.size(), 6u);
  for (std::size_t i = 1; i < eats.size(); ++i) {
    EXPECT_NE(eats[i], eats[i - 1]) << "CM must alternate under contention (round " << i
                                    << ")";
  }
}

TEST(ChandyMisraActions, EatingDefersRequests) {
  CmEdge e;
  e.hi->become_hungry();
  ASSERT_TRUE(e.hi->eating());
  e.lo->become_hungry();  // request arrives while hi eats
  e.sim.run_until(3);
  EXPECT_TRUE(e.hi->holds_fork(1)) << "eating holder defers";
  EXPECT_FALSE(e.lo->eating());
  e.hi->finish_eating();  // deferred request honored on exit
  e.sim.run_until(e.sim.now() + 2);
  EXPECT_TRUE(e.lo->eating());
}

// ------------------------------------------------------- hierarchical --

struct HierEdge {
  HierEdge() : sim(1, ekbd::sim::make_fixed_delay(1)) {
    hi = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                           det);
    lo = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                           det);
    sim.start();
  }
  Simulator sim;
  NeverSuspect det;
  HierarchicalDiner* hi;
  HierarchicalDiner* lo;
};

TEST(HierarchicalActions, HungryHigherColorKeepsFork) {
  HierEdge e;
  e.hi->become_hungry();  // eats instantly (holds the fork)
  ASSERT_TRUE(e.hi->eating());
  e.hi->finish_eating();

  e.hi->become_hungry();
  e.lo->become_hungry();  // lo requests; hi hungry with higher color: keeps
  e.sim.run_until(4);
  EXPECT_TRUE(e.hi->eating());
  EXPECT_FALSE(e.lo->eating());
}

TEST(HierarchicalActions, HungryLowerColorYieldsImmediately) {
  // The yield-while-hungry branch needs a holder that is hungry but not
  // eating: mid (color 1) on a path a(2)-mid(1)-c(3). mid acquires
  // fork_a-mid, then blocks on c's fork (c eats forever); a's request
  // arrives and mid — hungry with the lower color — must give it up.
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  NeverSuspect det;
  auto* a = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{1}, 2,
                                              std::vector<int>{1}, det);
  auto* mid = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{0, 2}, 1,
                                                std::vector<int>{2, 3}, det);
  auto* c = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{1}, 3,
                                              std::vector<int>{1}, det);
  sim.start();
  // Phase 1: mid eats once, acquiring both forks (a and c thinking yield).
  mid->become_hungry();
  sim.run_until(6);
  ASSERT_TRUE(mid->eating());
  mid->finish_eating();
  // Phase 2: c takes its fork back and eats forever.
  c->become_hungry();
  sim.run_until(sim.now() + 6);
  ASSERT_TRUE(c->eating());
  ASSERT_TRUE(mid->holds_fork(0));
  // Phase 3: mid hungry (blocked on c); a requests fork_a-mid.
  mid->become_hungry();
  a->become_hungry();
  sim.run_until(sim.now() + 4);
  EXPECT_TRUE(a->eating()) << "higher color must win the contested fork";
  EXPECT_FALSE(mid->holds_fork(0));
  EXPECT_TRUE(mid->hungry());
}

TEST(HierarchicalActions, MiddleProcessStarvesUnderTwoSidedPressure) {
  // The distinctive hierarchical pathology (why E3 shows unbounded
  // overtaking): a low-color process needing TWO forks loses whichever
  // one it holds to a hungry higher-color neighbor before it can collect
  // the other. a(2)-mid(1)-c(3) with a and c cycling: mid starves.
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  NeverSuspect det;
  auto* a = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{1}, 2,
                                              std::vector<int>{1}, det);
  auto* mid = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{0, 2}, 1,
                                                std::vector<int>{2, 3}, det);
  auto* c = sim.make_actor<HierarchicalDiner>(std::vector<ProcessId>{1}, 3,
                                              std::vector<int>{1}, det);
  sim.start();
  mid->become_hungry();
  // Interleave the neighbors so one of them is always eating (and thus
  // holding its fork) whenever the other releases — mid can never hold
  // both forks at once and starves forever.
  c->become_hungry();
  sim.run_until(8);
  ASSERT_TRUE(c->eating());
  int neighbor_meals = 0;
  for (int round = 0; round < 10; ++round) {
    a->become_hungry();  // reclaims fork_a-mid (mid hungry, lower color)
    sim.run_until(sim.now() + 8);
    ASSERT_TRUE(a->eating()) << "round " << round;
    c->finish_eating();  // grants mid fork_mid-c, but a holds the other
    sim.run_until(sim.now() + 4);
    ASSERT_FALSE(mid->eating()) << "round " << round;
    c->become_hungry();  // reclaims fork_mid-c
    sim.run_until(sim.now() + 8);
    ASSERT_TRUE(c->eating()) << "round " << round;
    a->finish_eating();  // grants mid fork_a-mid, but c holds the other
    sim.run_until(sim.now() + 4);
    ASSERT_FALSE(mid->eating()) << "round " << round;
    neighbor_meals += 2;
  }
  EXPECT_GE(neighbor_meals, 20);
  EXPECT_TRUE(mid->hungry()) << "mid starved while both neighbors feasted";
}

// ---------------------------------------------------------- doorway ----

TEST(DoorwayActions, OriginalRuleGrantsEveryPingWhileOutside) {
  // Original Choy–Singh (single_ack_per_session = false): a hungry process
  // outside the doorway acks every ping, enabling >2 overtaking.
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  NeverSuspect det;
  // Path a(0)-b(1)-c(2): b pinned outside by c (eating forever).
  auto* a = sim.make_actor<DoorwayDiner>(std::vector<ProcessId>{1}, 0, std::vector<int>{2},
                                         det);
  auto* b = sim.make_actor<DoorwayDiner>(std::vector<ProcessId>{0, 2}, 2,
                                         std::vector<int>{0, 1}, det);
  auto* c = sim.make_actor<DoorwayDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{2},
                                         det);
  sim.start();
  c->become_hungry();
  sim.run_until(6);
  ASSERT_TRUE(c->eating());
  b->become_hungry();
  sim.run_until(12);
  ASSERT_FALSE(b->inside_doorway());

  int meals_of_a = 0;
  for (int i = 0; i < 7; ++i) {
    a->become_hungry();
    sim.run_until(sim.now() + 10);
    if (!a->eating()) break;
    ++meals_of_a;
    a->finish_eating();
    sim.run_until(sim.now() + 4);
  }
  // Unbounded overtaking: all 7 attempts succeed (vs exactly 1 for the
  // single-ack rule — see core_actions_test GeneralizedAckBudget...).
  EXPECT_EQ(meals_of_a, 7);
}

}  // namespace
