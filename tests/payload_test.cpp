// Payload tests: the closed wire-type universe (sim/payload.hpp).
//
// Every alternative of sim::Payload must survive a real send→deliver
// round trip, the (tag, bits) nesting used by net::DataSegment must be
// lossless for every packable type, and the event log must still report
// the unqualified type names the debugging tools key on.
#include <gtest/gtest.h>

#include <cstring>
#include <variant>

#include "sim/event_log.hpp"
#include "sim/payload.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::sim::Datum;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::Payload;
using ekbd::sim::Simulator;

namespace core = ekbd::core;
namespace fd = ekbd::fd;
namespace drinking = ekbd::drinking;
namespace net = ekbd::net;

// The size budget is part of the contract (§7: constant-size records, so
// the envelope stays one cache line); restated here so a violation fails
// the test suite and not just the library build.
static_assert(sizeof(Payload) <= 32, "Payload must stay a small flat union");
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must be trivially copyable (zero-allocation hot path)");

struct Capture : ekbd::sim::Actor {
  std::vector<Message> got;
  void on_message(const Message& m) override { got.push_back(m); }
  void on_timer(ekbd::sim::TimerId) override {}
  using Actor::send;
};

TEST(Payload, EveryWireTypeRoundTripsThroughSendAndDeliver) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  auto* a = sim.make_actor<Capture>();
  auto* b = sim.make_actor<Capture>();
  sim.start();
  // One send per variant alternative, in tag order. Fixed delay + FIFO
  // channels guarantee delivery order == send order.
  a->send(b->id(), Payload{}, MsgLayer::kOther);  // monostate
  a->send(b->id(), core::Ping{}, MsgLayer::kDining);
  a->send(b->id(), core::Ack{}, MsgLayer::kDining);
  a->send(b->id(), core::ForkRequest{7}, MsgLayer::kDining);
  a->send(b->id(), core::Fork{}, MsgLayer::kDining);
  a->send(b->id(), fd::Heartbeat{}, MsgLayer::kDetector);
  a->send(b->id(), fd::Probe{11}, MsgLayer::kDetector);
  a->send(b->id(), fd::ProbeEcho{11}, MsgLayer::kDetector);
  a->send(b->id(), drinking::BottleRequest{true}, MsgLayer::kDining);
  a->send(b->id(), drinking::Bottle{}, MsgLayer::kDining);
  a->send(b->id(), drinking::BottleEscalate{}, MsgLayer::kDining);
  a->send(b->id(),
          net::DataSegment{/*seq=*/5, MsgLayer::kDining, /*logical_seq=*/9,
                           /*sent_at=*/123, /*inner_tag=*/1, /*bits=*/0},
          MsgLayer::kTransport);
  a->send(b->id(), net::AckSegment{42}, MsgLayer::kTransport);
  a->send(b->id(), 1234, MsgLayer::kOther);
  a->send(b->id(), Datum{-5}, MsgLayer::kOther);
  a->send(b->id(), core::EdgeProposal{3}, MsgLayer::kDining);
  a->send(b->id(), core::EdgeAccept{9, 1}, MsgLayer::kDining);
  a->send(b->id(), core::EdgeDrop{}, MsgLayer::kDining);
  a->send(b->id(), core::RejoinRequest{2}, MsgLayer::kDining);
  a->send(b->id(), core::RejoinAck{2, 1, 0}, MsgLayer::kDining);
  sim.run_until(100);

  ASSERT_EQ(b->got.size(), std::variant_size_v<Payload>);
  for (std::size_t i = 0; i < b->got.size(); ++i) {
    EXPECT_EQ(b->got[i].payload.index(), i) << "delivery " << i;
  }
  EXPECT_TRUE(std::holds_alternative<std::monostate>(b->got[0].payload));
  EXPECT_NE(b->got[1].as<core::Ping>(), nullptr);
  EXPECT_NE(b->got[2].as<core::Ack>(), nullptr);
  ASSERT_NE(b->got[3].as<core::ForkRequest>(), nullptr);
  EXPECT_EQ(b->got[3].as<core::ForkRequest>()->color, 7);
  EXPECT_NE(b->got[4].as<core::Fork>(), nullptr);
  EXPECT_NE(b->got[5].as<fd::Heartbeat>(), nullptr);
  ASSERT_NE(b->got[6].as<fd::Probe>(), nullptr);
  EXPECT_EQ(b->got[6].as<fd::Probe>()->seq, 11u);
  ASSERT_NE(b->got[7].as<fd::ProbeEcho>(), nullptr);
  EXPECT_EQ(b->got[7].as<fd::ProbeEcho>()->seq, 11u);
  ASSERT_NE(b->got[8].as<drinking::BottleRequest>(), nullptr);
  EXPECT_TRUE(b->got[8].as<drinking::BottleRequest>()->requester_eating);
  EXPECT_NE(b->got[9].as<drinking::Bottle>(), nullptr);
  EXPECT_NE(b->got[10].as<drinking::BottleEscalate>(), nullptr);
  ASSERT_NE(b->got[11].as<net::DataSegment>(), nullptr);
  EXPECT_EQ(b->got[11].as<net::DataSegment>()->seq(), 5u);
  EXPECT_EQ(b->got[11].as<net::DataSegment>()->logical_seq(), 9u);
  ASSERT_NE(b->got[12].as<net::AckSegment>(), nullptr);
  EXPECT_EQ(b->got[12].as<net::AckSegment>()->cumulative, 42u);
  ASSERT_NE(b->got[13].as<int>(), nullptr);
  EXPECT_EQ(*b->got[13].as<int>(), 1234);
  ASSERT_NE(b->got[14].as<Datum>(), nullptr);
  EXPECT_EQ(b->got[14].as<Datum>()->value, -5);
  ASSERT_NE(b->got[15].as<core::EdgeProposal>(), nullptr);
  EXPECT_EQ(b->got[15].as<core::EdgeProposal>()->color, 3);
  ASSERT_NE(b->got[16].as<core::EdgeAccept>(), nullptr);
  EXPECT_EQ(b->got[16].as<core::EdgeAccept>()->color, 9);
  EXPECT_EQ(b->got[16].as<core::EdgeAccept>()->acceptor_has_fork, 1u);
  EXPECT_NE(b->got[17].as<core::EdgeDrop>(), nullptr);
  ASSERT_NE(b->got[18].as<core::RejoinRequest>(), nullptr);
  EXPECT_EQ(b->got[18].as<core::RejoinRequest>()->epoch, 2u);
  ASSERT_NE(b->got[19].as<core::RejoinAck>(), nullptr);
  EXPECT_EQ(b->got[19].as<core::RejoinAck>()->has_fork, 1);
  EXPECT_EQ(b->got[19].as<core::RejoinAck>()->has_token, 0);
  // as<T> on the wrong alternative says "not that type", never garbage.
  EXPECT_EQ(b->got[1].as<core::Ack>(), nullptr);
}

template <typename T>
void expect_packs_losslessly(T v) {
  const Payload p{v};
  std::uint8_t tag = 0;
  std::uint64_t bits = 0;
  ASSERT_TRUE(ekbd::sim::pack_payload(p, tag, bits));
  EXPECT_EQ(tag, p.index());
  const Payload q = ekbd::sim::unpack_payload(tag, bits);
  ASSERT_TRUE(std::holds_alternative<T>(q));
  if constexpr (!std::is_empty_v<T> && !std::is_same_v<T, std::monostate>) {
    // Empty types carry no state — their one placeholder byte is
    // indeterminate and not copied, so only stateful types byte-compare.
    EXPECT_EQ(std::memcmp(&std::get<T>(q), &v, sizeof(T)), 0);
  }
}

TEST(Payload, PackUnpackRoundTripsEveryPackableType) {
  expect_packs_losslessly(std::monostate{});
  expect_packs_losslessly(core::Ping{});
  expect_packs_losslessly(core::Ack{});
  expect_packs_losslessly(core::ForkRequest{-3});
  expect_packs_losslessly(core::Fork{});
  expect_packs_losslessly(fd::Heartbeat{});
  expect_packs_losslessly(fd::Probe{0xFFFFFFFFFFFFFFFFULL});
  expect_packs_losslessly(fd::ProbeEcho{17});
  expect_packs_losslessly(drinking::BottleRequest{true});
  expect_packs_losslessly(drinking::Bottle{});
  expect_packs_losslessly(drinking::BottleEscalate{});
  expect_packs_losslessly(net::AckSegment{0x123456789ABCDEFULL});
  expect_packs_losslessly(1234567);
  expect_packs_losslessly(Datum{-99});
  expect_packs_losslessly(core::EdgeProposal{-7});
  expect_packs_losslessly(core::EdgeAccept{-3, 1});
  expect_packs_losslessly(core::EdgeDrop{});
  expect_packs_losslessly(core::RejoinRequest{0xFFFFFFFFU});
  expect_packs_losslessly(core::RejoinAck{17, 1, 1});
  // DataSegment is the one oversize alternative; it never nests (the
  // transport does not cover MsgLayer::kTransport) and pack says so.
  std::uint8_t tag = 0;
  std::uint64_t bits = 0;
  EXPECT_FALSE(ekbd::sim::pack_payload(Payload{net::DataSegment{}}, tag, bits));
}

TEST(Payload, DataSegmentBitFieldsRoundTrip) {
  using net::DataSegment;
  const DataSegment ds(/*seq=*/12345, MsgLayer::kDining, /*logical_seq=*/678901,
                       /*sent_at=*/424242, /*inner_tag=*/13, /*bits=*/0xDEADBEEFULL);
  EXPECT_EQ(ds.seq(), 12345u);
  EXPECT_EQ(ds.logical_seq(), 678901u);
  EXPECT_EQ(ds.layer(), MsgLayer::kDining);
  EXPECT_EQ(ds.inner_tag(), 13);
  EXPECT_EQ(ds.inner_bits, 0xDEADBEEFULL);
  EXPECT_EQ(ds.logical_sent_at, 424242);
  // Extremes of every packed field simultaneously — no cross-field bleed.
  const DataSegment hi(DataSegment::kMaxSeq, MsgLayer::kTransport,
                       DataSegment::kMaxLogicalSeq, /*sent_at=*/1, /*inner_tag=*/63,
                       /*bits=*/~0ULL);
  EXPECT_EQ(hi.seq(), DataSegment::kMaxSeq);
  EXPECT_EQ(hi.logical_seq(), DataSegment::kMaxLogicalSeq);
  EXPECT_EQ(hi.layer(), MsgLayer::kTransport);
  EXPECT_EQ(hi.inner_tag(), 63);
  const DataSegment lo(0, MsgLayer::kDining, 0, 0, 0, 0);
  EXPECT_EQ(lo.seq(), 0u);
  EXPECT_EQ(lo.logical_seq(), 0u);
  EXPECT_EQ(lo.layer(), MsgLayer::kDining);
  EXPECT_EQ(lo.inner_tag(), 0);
}

TEST(Payload, EventLogStillReportsUnqualifiedTypeNames) {
  using ekbd::sim::LoggedEvent;
  const auto name_of = [](const Payload& p) {
    LoggedEvent e;
    e.payload = ekbd::sim::payload_tag(p);
    return e.payload_name();
  };
  EXPECT_EQ(name_of(Payload{core::Ping{}}), "Ping");
  EXPECT_EQ(name_of(Payload{core::ForkRequest{}}), "ForkRequest");
  EXPECT_EQ(name_of(Payload{core::Fork{}}), "Fork");
  EXPECT_EQ(name_of(Payload{fd::Heartbeat{}}), "Heartbeat");
  EXPECT_EQ(name_of(Payload{drinking::BottleRequest{}}), "BottleRequest");
  EXPECT_EQ(name_of(Payload{net::DataSegment{}}), "DataSegment");
  EXPECT_EQ(name_of(Payload{net::AckSegment{}}), "AckSegment");
  EXPECT_EQ(name_of(Payload{Datum{}}), "Datum");
  EXPECT_EQ(name_of(Payload{42}), "int");
  EXPECT_EQ(name_of(Payload{core::EdgeProposal{}}), "EdgeProposal");
  EXPECT_EQ(name_of(Payload{core::RejoinAck{}}), "RejoinAck");
  // monostate is the "no payload" tag, matching timers and crashes.
  EXPECT_EQ(ekbd::sim::payload_tag(Payload{}), ekbd::sim::kNoPayloadTag);
  EXPECT_EQ(name_of(Payload{}), "");
}

TEST(Payload, TagsAreTheVariantIndexAndResolveAtCompileTime) {
  using ekbd::sim::kPayloadTagOf;
  using ekbd::sim::payload_tag;
  using ekbd::sim::payload_tag_name;
  // The compile-time tag of each type equals the runtime tag of a Payload
  // holding it — the streaming-observer fast path matches the log.
  static_assert(kPayloadTagOf<std::monostate> == ekbd::sim::kNoPayloadTag);
  EXPECT_EQ(kPayloadTagOf<core::Fork>, payload_tag(Payload{core::Fork{}}));
  EXPECT_EQ(kPayloadTagOf<core::Ping>, payload_tag(Payload{core::Ping{}}));
  EXPECT_EQ(kPayloadTagOf<net::DataSegment>, payload_tag(Payload{net::DataSegment{}}));
  EXPECT_EQ(kPayloadTagOf<Datum>, payload_tag(Payload{Datum{}}));
  // Every alternative has a table name; out-of-range tags degrade safely.
  for (std::size_t i = 1; i < std::variant_size_v<Payload>; ++i) {
    EXPECT_STRNE(payload_tag_name(static_cast<ekbd::sim::PayloadTag>(i)), "")
        << "tag " << i;
  }
  EXPECT_STREQ(payload_tag_name(255), "?");
}

}  // namespace
