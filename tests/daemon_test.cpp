// The paper's application layer end-to-end: a wait-free daemon (Algorithm
// 1) scheduling self-stabilizing protocols under transient faults and
// crash faults — versus a non-wait-free daemon, which loses convergence.
#include <gtest/gtest.h>

#include "daemon/fault_injector.hpp"
#include "daemon/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "stab/bfs_tree.hpp"
#include "stab/coloring.hpp"
#include "stab/mis.hpp"
#include "stab/token_ring.hpp"

namespace {

using ekbd::daemon::DaemonScheduler;
using ekbd::daemon::FaultInjector;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::stab::StateTable;

Config daemon_config(Algorithm a, const char* topology, std::size_t n) {
  Config cfg;
  cfg.algorithm = a;
  cfg.detector = a == Algorithm::kWaitFree ? DetectorKind::kScripted : DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.topology = topology;
  cfg.n = n;
  cfg.detection_delay = 150;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.run_for = 120'000;
  return cfg;
}

TEST(Daemon, TokenRingStabilizesFromArbitraryState) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "ring", 6);
  Scenario s(cfg);
  ekbd::stab::DijkstraTokenRing proto(cfg.n);
  StateTable table(cfg.n, 1);
  ekbd::sim::Rng rng(99);
  table.randomize(rng, 0, proto.k() - 1);
  DaemonScheduler daemon(s.harness(), proto, table);
  s.run();
  EXPECT_TRUE(daemon.converged()) << "tokens = " << proto.tokens(table, s.graph());
  EXPECT_GT(daemon.steps_executed(), 50u);
  EXPECT_LT(daemon.last_illegitimate(), cfg.run_for);
}

TEST(Daemon, TokenRingRecoversFromTransientBursts) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "ring", 6);
  Scenario s(cfg);
  ekbd::stab::DijkstraTokenRing proto(cfg.n);
  StateTable table(cfg.n, 1);
  DaemonScheduler daemon(s.harness(), proto, table);
  FaultInjector inj(s.sim(), table, proto, s.graph(), cfg.seed ^ 0xFA17);
  inj.schedule_train(10'000, 15'000, 4, 3);  // last burst at 55'000
  s.run();
  EXPECT_GT(inj.corruptions_applied(), 0u);
  EXPECT_TRUE(daemon.converged());
  EXPECT_GE(inj.last_burst_time(), 55'000);
}

TEST(Daemon, ColoringStabilizesDespiteCrashes) {
  // The headline composition: crashes + transient faults + pre-convergence
  // scheduling mistakes, and the live processes still stabilize.
  Config cfg = daemon_config(Algorithm::kWaitFree, "random", 10);
  cfg.fp_count = 20;
  cfg.fp_until = 8'000;
  cfg.crashes = {{2, 15'000}, {7, 25'000}};
  Scenario s(cfg);
  ekbd::stab::StabilizingColoring proto;
  StateTable table(cfg.n, 1);
  ekbd::sim::Rng rng(5);
  table.randomize(rng, 0, proto.corruption_hi(s.graph()));
  DaemonScheduler daemon(s.harness(), proto, table);
  FaultInjector inj(s.sim(), table, proto, s.graph(), cfg.seed ^ 0xFA17);
  inj.schedule_train(30'000, 10'000, 3, 4);
  s.run();
  EXPECT_TRUE(daemon.converged());
  EXPECT_TRUE(s.wait_freedom(25'000).wait_free());
}

TEST(Daemon, MisStabilizesDespiteCrashes) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "grid", 9);
  cfg.crashes = {{4, 20'000}};  // center of the grid
  Scenario s(cfg);
  ekbd::stab::StabilizingMis proto;
  StateTable table(cfg.n, 1);
  ekbd::sim::Rng rng(6);
  table.randomize(rng, 0, 1);
  DaemonScheduler daemon(s.harness(), proto, table);
  s.run();
  EXPECT_TRUE(daemon.converged());
}

TEST(Daemon, BfsTreeStabilizes) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "tree", 7);
  Scenario s(cfg);
  ekbd::stab::StabilizingBfsTree proto;
  StateTable table(cfg.n, 1);
  ekbd::sim::Rng rng(7);
  table.randomize(rng, -3, 30);
  DaemonScheduler daemon(s.harness(), proto, table);
  s.run();
  EXPECT_TRUE(daemon.converged());
}

TEST(Daemon, NonWaitFreeDaemonLosesConvergenceAfterCrash) {
  // The negative control: the crash-oblivious Choy–Singh daemon starves
  // the victim's neighbors; a conflicting frozen state next to a starved
  // process can never be repaired.
  Config cfg = daemon_config(Algorithm::kChoySingh, "ring", 6);
  cfg.crashes = {{2, 1}};  // dead before anyone's first meal
  Scenario s(cfg);
  ekbd::stab::StabilizingColoring proto;
  StateTable table(cfg.n, 1);
  // Adversarial initial state: every process has color 0 — every edge
  // conflicts, so every process *must* move to converge. The starved
  // neighbors of the victim can't.
  DaemonScheduler daemon(s.harness(), proto, table);
  s.run();
  EXPECT_FALSE(daemon.converged())
      << "non-wait-free daemon unexpectedly stabilized after a crash";
  // While the wait-free daemon, same everything, converges:
  Config cfg2 = daemon_config(Algorithm::kWaitFree, "ring", 6);
  cfg2.crashes = {{2, 1}};
  Scenario s2(cfg2);
  StateTable table2(cfg2.n, 1);
  DaemonScheduler daemon2(s2.harness(), proto, table2);
  s2.run();
  EXPECT_TRUE(daemon2.converged());
}

TEST(Daemon, SchedulingMistakesAreTransientFaults) {
  // Force heavy pre-convergence mutual suspicion → overlapping critical
  // sections → corruptions; the protocol must still converge afterwards
  // (that is the paper's whole argument for tolerating ◇WX).
  Config cfg = daemon_config(Algorithm::kWaitFree, "ring", 8);
  cfg.fp_count = 80;
  cfg.fp_until = 20'000;
  cfg.fp_len_lo = 100;
  cfg.fp_len_hi = 500;
  cfg.harness.think_lo = 5;
  cfg.harness.think_hi = 25;
  cfg.run_for = 150'000;
  Scenario s(cfg);
  ekbd::stab::StabilizingColoring proto;
  StateTable table(cfg.n, 1);
  DaemonScheduler daemon(s.harness(), proto, table,
                         DaemonScheduler::Options{.violation_corruption_prob = 1.0});
  s.run();
  EXPECT_GT(daemon.sharing_violations(), 0u) << "scenario failed to cause mistakes";
  EXPECT_GT(daemon.violation_corruptions(), 0u);
  EXPECT_TRUE(daemon.converged());
  // All corruptions happened before detector convergence (+ a short tail
  // for meals that started just before it).
  EXPECT_LT(daemon.last_illegitimate(), cfg.run_for - 10'000);
}

TEST(Daemon, IdleSchedulesCountedWhenNothingEnabled) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "path", 4);
  Scenario s(cfg);
  ekbd::stab::StabilizingColoring proto;
  StateTable table(cfg.n, 1);  // all zeros on a path: 1 and 3 enabled... fix below
  // Start legitimate & silent: 0-1-0-1 alternation on a path.
  table.set(0, 0);
  table.set(1, 1);
  table.set(2, 0);
  table.set(3, 1);
  DaemonScheduler daemon(s.harness(), proto, table);
  s.run();
  EXPECT_EQ(daemon.steps_executed(), 0u);
  EXPECT_GT(daemon.idle_schedules(), 0u);
  EXPECT_TRUE(daemon.converged());
  EXPECT_EQ(daemon.last_illegitimate(), 0);
}

TEST(FaultInjectorTest, AppliesExactCount) {
  Config cfg = daemon_config(Algorithm::kWaitFree, "ring", 5);
  Scenario s(cfg);
  ekbd::stab::DijkstraTokenRing proto(cfg.n);
  StateTable table(cfg.n, 1);
  FaultInjector inj(s.sim(), table, proto, s.graph(), cfg.seed ^ 0xFA17);
  inj.schedule_burst(1'000, 7);
  s.run_until(2'000);
  EXPECT_EQ(inj.corruptions_applied(), 7u);
  EXPECT_EQ(inj.last_burst_time(), 1'000);
}

}  // namespace
