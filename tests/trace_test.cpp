// Trace and hungry-session extraction tests.
#include <gtest/gtest.h>

#include "dining/trace.hpp"

namespace {

using ekbd::dining::HungrySession;
using ekbd::dining::Trace;
using ekbd::dining::TraceEventKind;

TEST(Trace, RecordAndCount) {
  Trace t;
  t.record(1, 0, TraceEventKind::kBecameHungry);
  t.record(5, 0, TraceEventKind::kStartEating);
  t.record(9, 0, TraceEventKind::kStopEating);
  t.record(10, 1, TraceEventKind::kBecameHungry);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.count(TraceEventKind::kBecameHungry), 2u);
  EXPECT_EQ(t.count(TraceEventKind::kBecameHungry, 0), 1u);
  EXPECT_EQ(t.count(TraceEventKind::kStartEating, 1), 0u);
}

TEST(Trace, EndTimeDefaultsToLastEvent) {
  Trace t;
  EXPECT_EQ(t.end_time(), 0);
  t.record(7, 0, TraceEventKind::kBecameHungry);
  EXPECT_EQ(t.end_time(), 7);
  t.set_end_time(100);
  EXPECT_EQ(t.end_time(), 100);
}

TEST(Trace, ToStringTruncates) {
  Trace t;
  for (int i = 0; i < 10; ++i) t.record(i, 0, TraceEventKind::kBecameHungry);
  auto s = t.to_string(3);
  EXPECT_NE(s.find("7 more"), std::string::npos);
}

TEST(HungrySessions, CompleteSession) {
  Trace t;
  t.record(10, 0, TraceEventKind::kBecameHungry);
  t.record(15, 0, TraceEventKind::kEnteredDoorway);
  t.record(20, 0, TraceEventKind::kStartEating);
  t.record(30, 0, TraceEventKind::kStopEating);
  auto ss = hungry_sessions(t);
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_EQ(ss[0].process, 0);
  EXPECT_EQ(ss[0].became_hungry, 10);
  EXPECT_EQ(ss[0].entered_doorway, 15);
  EXPECT_EQ(ss[0].started_eating, 20);
  EXPECT_TRUE(ss[0].completed());
  EXPECT_EQ(ss[0].response_time(), 10);
  EXPECT_FALSE(ss[0].crashed_during);
}

TEST(HungrySessions, OpenSessionClippedAtHorizon) {
  Trace t;
  t.record(10, 0, TraceEventKind::kBecameHungry);
  t.set_end_time(500);
  auto ss = hungry_sessions(t);
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_FALSE(ss[0].completed());
  EXPECT_EQ(ss[0].ended, 500);
}

TEST(HungrySessions, CrashDuringHungerMarked) {
  Trace t;
  t.record(10, 0, TraceEventKind::kBecameHungry);
  t.record(40, 0, TraceEventKind::kCrashed);
  auto ss = hungry_sessions(t);
  ASSERT_EQ(ss.size(), 1u);
  EXPECT_TRUE(ss[0].crashed_during);
  EXPECT_EQ(ss[0].ended, 40);
  EXPECT_FALSE(ss[0].completed());
}

TEST(HungrySessions, MultipleSessionsPerProcess) {
  Trace t;
  t.record(10, 0, TraceEventKind::kBecameHungry);
  t.record(20, 0, TraceEventKind::kStartEating);
  t.record(25, 0, TraceEventKind::kStopEating);
  t.record(40, 0, TraceEventKind::kBecameHungry);
  t.record(90, 0, TraceEventKind::kStartEating);
  auto ss = hungry_sessions(t);
  ASSERT_EQ(ss.size(), 2u);
  EXPECT_EQ(ss[0].response_time(), 10);
  EXPECT_EQ(ss[1].response_time(), 50);
}

TEST(HungrySessions, InterleavedProcessesSortedByStart) {
  Trace t;
  t.record(10, 2, TraceEventKind::kBecameHungry);
  t.record(12, 1, TraceEventKind::kBecameHungry);
  t.record(20, 1, TraceEventKind::kStartEating);
  t.record(30, 2, TraceEventKind::kStartEating);
  auto ss = hungry_sessions(t);
  ASSERT_EQ(ss.size(), 2u);
  EXPECT_EQ(ss[0].process, 2);
  EXPECT_EQ(ss[1].process, 1);
}

TEST(EnumToString, CoversAll) {
  EXPECT_EQ(ekbd::dining::to_string(ekbd::dining::DinerState::kThinking), "thinking");
  EXPECT_EQ(ekbd::dining::to_string(ekbd::dining::DinerState::kHungry), "hungry");
  EXPECT_EQ(ekbd::dining::to_string(ekbd::dining::DinerState::kEating), "eating");
  EXPECT_EQ(ekbd::dining::to_string(TraceEventKind::kCrashed), "crash");
}

}  // namespace
