// Stress tests: larger systems, heavier contention, crash storms, longer
// horizons — the scale end of the validation spectrum (still only a few
// seconds total; the simulator pushes millions of events per second).
#include <gtest/gtest.h>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::MsgLayer;
using ekbd::sim::Time;

TEST(Stress, LargeRingFullPropertySet) {
  Config cfg;
  cfg.seed = 71;
  cfg.topology = "ring";
  cfg.n = 96;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.fp_count = 200;
  cfg.fp_until = 10'000;
  cfg.harness.think_lo = 5;
  cfg.harness.think_hi = 40;
  for (int i = 0; i < 12; ++i) {
    cfg.crashes.emplace_back(i * 8, 12'000 + static_cast<Time>(i) * 2'000);
  }
  cfg.run_for = 90'000;
  Scenario s(cfg);
  s.run();
  const Time conv = s.fd_convergence_estimate();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
  EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), 2);
  EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
  EXPECT_GT(s.trace().count(TraceEventKind::kStartEating), 10'000u);
}

TEST(Stress, CrashStormHalvesClique) {
  // 10 of 20 clique members die within 2k ticks of each other.
  Config cfg;
  cfg.seed = 72;
  cfg.topology = "clique";
  cfg.n = 20;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 150;
  for (int i = 0; i < 10; ++i) {
    cfg.crashes.emplace_back(i, 15'000 + static_cast<Time>(i) * 200);
  }
  cfg.run_for = 80'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
  // Survivors actually benefit: contention halves.
  std::size_t meals_late = 0;
  for (const auto& e : s.trace().events()) {
    if (e.kind == TraceEventKind::kStartEating && e.at > 30'000) ++meals_late;
  }
  EXPECT_GT(meals_late, 200u);
}

TEST(Stress, SaturatedRandomGraphLongHaul) {
  Config cfg;
  cfg.seed = 73;
  cfg.topology = "random";
  cfg.n = 40;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.fp_count = 120;
  cfg.fp_until = 15'000;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 10;
  cfg.harness.eat_lo = 30;
  cfg.harness.eat_hi = 80;
  cfg.crashes = {{5, 20'000}, {17, 40'000}, {33, 60'000}};
  cfg.run_for = 150'000;
  Scenario s(cfg);
  s.run();
  const Time conv = s.fd_convergence_estimate();
  EXPECT_TRUE(s.wait_freedom(30'000).wait_free());
  EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), conv), 2);
  for (const auto& [victim, at] : cfg.crashes) {
    EXPECT_LE(s.sim().network().sends_to_crashed(victim, MsgLayer::kDining),
              4u * s.graph().degree(victim));
  }
}

TEST(Stress, HeartbeatDetectorAtScale) {
  Config cfg;
  cfg.seed = 74;
  cfg.topology = "grid";
  cfg.n = 36;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kHeartbeat;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 15'000, .pre_lo = 1, .pre_hi = 100,
               .spike_prob = 0.08, .spike_factor = 20,
               .post_lo = 1, .post_hi = 6};
  cfg.heartbeat = {.period = 25, .initial_timeout = 40, .timeout_increment = 30};
  cfg.crashes = {{14, 50'000}, {21, 70'000}};
  cfg.run_for = 160'000;
  Scenario s(cfg);
  s.run();
  const Time conv = s.fd_convergence_estimate();
  EXPECT_TRUE(s.wait_freedom(35'000).wait_free());
  EXPECT_EQ(s.exclusion().violations_after(conv), 0u);
  EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);
}

TEST(Stress, AllCorrectProcessesHungryForeverNeverDeadlocks) {
  // Everyone permanently contending (think time ~0) on a clique — the
  // highest-pressure configuration for the doorway; throughput must stay
  // healthy for the entire run (no progressive slowdown / livelock).
  Config cfg;
  cfg.seed = 75;
  cfg.topology = "clique";
  cfg.n = 10;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 2;
  cfg.harness.eat_lo = 5;
  cfg.harness.eat_hi = 10;
  cfg.run_for = 200'000;
  Scenario s(cfg);
  s.run();
  // Meals in the last quarter of the run vs the second quarter: no decay.
  std::size_t q2 = 0, q4 = 0;
  for (const auto& e : s.trace().events()) {
    if (e.kind != TraceEventKind::kStartEating) continue;
    if (e.at >= 50'000 && e.at < 100'000) ++q2;
    if (e.at >= 150'000) ++q4;
  }
  EXPECT_GT(q2, 500u);
  EXPECT_GT(q4 * 10, q2 * 8) << "throughput decayed late in the run";
  EXPECT_TRUE(s.exclusion().violations.empty());
}

}  // namespace
