// Hot-path tests: the zero-allocation guarantee of the typed event queue
// plus the determinism properties the rewrite must not disturb.
//
//  * SimHotPath — a counting global allocator proves the steady-state
//    send→deliver cycle never touches the heap, and cancelled timers are
//    discarded without advancing time or the events_processed counter.
//  * SimDeterminism — per-actor RNG streams depend only on (master seed,
//    id), and a fixed-seed E1-style scenario still produces the exact
//    event log it produced before the queue rewrite (golden digest).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EKBD_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EKBD_SANITIZED 1
#endif
#endif

// -- counting global allocator ---------------------------------------------
//
// Counts every operator-new call in the process. Tests reset the counter,
// run the region under scrutiny, and read the delta — a plain count (not
// a ledger), so the overhead inside the region itself is zero beyond one
// relaxed atomic increment per (absent) allocation.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};
}  // namespace

// Sanitizer runtimes intercept the global allocator themselves (and the
// libstdc++ temporary-buffer machinery frees through those interceptors);
// overriding it here would cause alloc-dealloc mismatches, so sanitized
// builds keep the sanitizer's allocator and skip the counting test.
#ifndef EKBD_SANITIZED
void* operator new(std::size_t sz) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (sz == 0) sz = 1;
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // !EKBD_SANITIZED

namespace {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;
using ekbd::sim::TimerId;

/// Replies to every Ping with a Ping: a sustained one-message-in-flight
/// chain that exercises pop-heap → deliver → on_message → send →
/// push-heap forever.
struct PingPong : ekbd::sim::Actor {
  void on_message(const Message& m) override {
    send(m.from, ekbd::core::Ping{}, MsgLayer::kDining);
  }
  void on_timer(TimerId) override {}
  using Actor::send;
};

TEST(SimHotPath, SteadyStateSendDeliverDoesNotAllocate) {
#ifdef EKBD_SANITIZED
  GTEST_SKIP() << "sanitizer runtimes allocate behind the scenes";
#endif
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  auto* a = sim.make_actor<PingPong>();
  auto* b = sim.make_actor<PingPong>();
  sim.start();
  a->send(b->id(), ekbd::core::Ping{}, MsgLayer::kDining);
  // Warm-up: grows the heap vector to its steady capacity and creates the
  // Network's per-channel bookkeeping entries for both directions.
  sim.run_until(1'000);
  const auto events_before = sim.events_processed();
  g_new_calls.store(0, std::memory_order_relaxed);
  sim.run_until(5'000);
  const auto allocs = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs, 0u) << "send→deliver hot path touched the heap";
  // Sanity: the measured window really did carry sustained traffic.
  EXPECT_GE(sim.events_processed() - events_before, 2'000u);
}

struct TimerCounter : ekbd::sim::Actor {
  int fired = 0;
  void on_message(const Message&) override {}
  void on_timer(TimerId) override { ++fired; }
  using Actor::cancel_timer;
  using Actor::set_timer;
};

TEST(SimHotPath, CancelledTimerIsSkippedWithoutCounting) {
  Simulator sim(1);
  auto* a = sim.make_actor<TimerCounter>();
  sim.start();
  const TimerId dead = a->set_timer(10);
  a->set_timer(20);  // live
  a->cancel_timer(dead);
  sim.run_until(100);
  EXPECT_EQ(a->fired, 1);
  // The cancelled record is dead weight, not an event: only the live
  // timer may show up in the processed count.
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimHotPath, AllTimersCancelledMeansNothingHappens) {
  Simulator sim(1);
  auto* a = sim.make_actor<TimerCounter>();
  sim.start();
  std::array<TimerId, 8> ids{};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = a->set_timer(static_cast<ekbd::sim::Time>(10 * (i + 1)));
  }
  for (const TimerId id : ids) a->cancel_timer(id);
  sim.run_until(200);
  EXPECT_EQ(a->fired, 0);
  EXPECT_EQ(sim.events_processed(), 0u);
  EXPECT_TRUE(sim.idle());  // pruning really emptied the heap
  EXPECT_EQ(sim.now(), 200);
}

struct Idle : ekbd::sim::Actor {
  void on_message(const Message&) override {}
  void on_timer(TimerId) override {}
};

TEST(SimDeterminism, ActorRngIndependentOfFirstUseOrder) {
  constexpr std::uint64_t kSeed = 77;
  constexpr int kN = 4;
  Simulator fwd(kSeed), rev(kSeed);
  for (int i = 0; i < kN; ++i) {
    fwd.make_actor<Idle>();
    rev.make_actor<Idle>();
  }
  std::array<std::uint64_t, kN> a{};
  std::array<std::uint64_t, kN> b{};
  for (int p = 0; p < kN; ++p) {
    a[static_cast<std::size_t>(p)] = fwd.actor_rng(p).u64();
  }
  // Different first-use order AND interleaved master-stream draws: neither
  // may shift any actor's stream (the historical bug derived actor RNGs by
  // forking the master, so whoever asked first got a different stream).
  (void)rev.rng().u64();
  for (int p = kN - 1; p >= 0; --p) {
    (void)rev.rng().u64();
    b[static_cast<std::size_t>(p)] = rev.actor_rng(p).u64();
  }
  EXPECT_EQ(a, b);
  // And the derivation is exactly (master seed, id) — reproducible outside
  // any simulator.
  for (int p = 0; p < kN; ++p) {
    ekbd::sim::Rng expect =
        ekbd::sim::Rng(kSeed).fork(static_cast<std::uint64_t>(p) + 1);
    EXPECT_EQ(a[static_cast<std::size_t>(p)], expect.u64()) << "actor " << p;
  }
}

// Golden digest: fixed-seed E1-style run (wait-free diner, scripted ◇P₁,
// ring of 5, one crash, false positives until convergence). The expected
// values were computed on the std::any + std::function implementation the
// typed queue replaced; equality here proves the rewrite preserved the
// (time, seq) event order and every RNG draw bit-for-bit.
TEST(SimDeterminism, GoldenEventDigestUnchangedByQueueRewrite) {
  ekbd::scenario::Config cfg;
  cfg.seed = 42;
  cfg.topology = "ring";
  cfg.n = 5;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.fp_count = 10;
  cfg.fp_until = 6'000;
  cfg.run_for = 20'000;
  cfg.crashes = {{2, 9'000}};

  ekbd::scenario::Scenario s(cfg);
  ekbd::sim::EventLog log;
  s.sim().set_event_log(&log);
  s.run();

  const auto fnv = [](std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
    return h;
  };
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& e : log.events()) {
    h = fnv(h, static_cast<std::uint64_t>(e.at));
    h = fnv(h, static_cast<std::uint64_t>(e.kind));
    h = fnv(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.from)));
    h = fnv(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.to)));
    h = fnv(h, static_cast<std::uint64_t>(e.layer));
    h = fnv(h, e.seq);
  }
  EXPECT_EQ(log.size(), 5194u);
  EXPECT_EQ(h, 0xB75E7E73F9A450FBULL);
}

}  // namespace
