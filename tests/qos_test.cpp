// QoS monitor tests: verify the Chen–Toueg–Aguilera metrics against
// scripted detectors (where every quantity is known exactly) and sanity-
// check them on the real implementations.
#include <gtest/gtest.h>

#include "fd/heartbeat.hpp"
#include "fd/qos.hpp"
#include "fd/scripted.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::fd::QosMonitor;
using ekbd::fd::ScriptedDetector;
using ekbd::sim::Message;
using ekbd::sim::Simulator;

struct Dummy : ekbd::sim::Actor {
  void on_message(const Message&) override {}
};

TEST(Qos, PerfectRunHasPerfectMetrics) {
  Simulator sim(1);
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, 0);
  QosMonitor mon(sim, det, 0, 1, /*poll=*/5);
  sim.run_until(10'000);
  auto r = mon.report();
  EXPECT_EQ(r.mistakes, 0u);
  EXPECT_DOUBLE_EQ(r.query_accuracy, 1.0);
  EXPECT_EQ(r.detection_time, -1);  // no crash
  EXPECT_GT(mon.polls(), 1'000u);
}

TEST(Qos, MeasuresScriptedMistakesExactly) {
  Simulator sim(1);
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, 0);
  det.add_false_positive(0, 1, 1'000, 1'200);  // 200 ticks
  det.add_false_positive(0, 1, 3'000, 3'400);  // 400 ticks, 2000 apart
  QosMonitor mon(sim, det, 0, 1, /*poll=*/5);
  sim.run_until(10'000);
  auto r = mon.report();
  EXPECT_EQ(r.mistakes, 2u);
  ASSERT_EQ(r.mistake_duration.count, 2u);
  EXPECT_NEAR(r.mistake_duration.mean, 300.0, 10.0);
  ASSERT_EQ(r.mistake_recurrence.count, 1u);
  EXPECT_NEAR(r.mistake_recurrence.mean, 2'000.0, 10.0);
  // 600 of 10000 ticks suspected -> PA ~= 0.94.
  EXPECT_NEAR(r.query_accuracy, 0.94, 0.01);
  EXPECT_NEAR(static_cast<double>(r.last_retraction), 3'400.0, 10.0);
}

TEST(Qos, MeasuresDetectionTime) {
  Simulator sim(1);
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, /*detection_delay=*/250);
  QosMonitor mon(sim, det, 0, 1, /*poll=*/5);
  sim.schedule_crash(1, 4'000);
  sim.run_until(10'000);
  auto r = mon.report();
  EXPECT_GE(r.detection_time, 250);
  EXPECT_LE(r.detection_time, 260);  // + one poll period
}

TEST(Qos, SuspicionStandingAcrossCrashCountsAsDetection) {
  // The detector wrongly suspects p1 from t=900; p1 actually crashes at
  // t=1000 and the suspicion (per completeness) persists. Detection time
  // is ~0: the crash was "pre-detected".
  Simulator sim(1);
  sim.make_actor<Dummy>();
  sim.make_actor<Dummy>();
  ScriptedDetector det(sim, 0);
  det.add_false_positive(0, 1, 900, 1'500);  // overlaps the crash
  QosMonitor mon(sim, det, 0, 1, /*poll=*/5);
  sim.schedule_crash(1, 1'000);
  sim.run_until(5'000);
  auto r = mon.report();
  EXPECT_GE(r.detection_time, 0);
  EXPECT_LE(r.detection_time, 10);
  EXPECT_EQ(r.mistakes, 1u);  // the pre-crash portion was a mistake
}

TEST(Qos, RealDetectorsThroughScenario) {
  // End-to-end: monitor one edge of a running dining system with a real
  // heartbeat detector; after the crash the detection time must be within
  // a few periods + timeout.
  ekbd::scenario::Config cfg;
  cfg.seed = 5;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kHeartbeat;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 5'000, .pre_lo = 1, .pre_hi = 50,
               .spike_prob = 0.05, .spike_factor = 10,
               .post_lo = 1, .post_hi = 6};
  cfg.heartbeat = {.period = 25, .initial_timeout = 40, .timeout_increment = 25};
  cfg.crashes = {{3, 40'000}};
  cfg.run_for = 100'000;
  ekbd::scenario::Scenario s(cfg);
  QosMonitor mon(s.sim(), s.detector(), /*owner=*/2, /*target=*/3, /*poll=*/5);
  s.run();
  auto r = mon.report();
  ASSERT_GE(r.detection_time, 0) << "crash never detected";
  // Bound: heartbeat period + grown timeout + scheduling slack.
  EXPECT_LE(r.detection_time, 1'500);
  EXPECT_GT(r.query_accuracy, 0.90);
}

}  // namespace
