// Crash-recovery integration tests: a killed process comes back, runs the
// rejoin protocol, and re-acquires its fork/token state from the surviving
// neighbors without ever violating P1/P2. Exercised on both engines (the
// sim allows repeated crash/recover cycles; the rt runtime supports one
// cycle per process per run).

#include <gtest/gtest.h>

#include <cstdint>

#include "core/wait_free_diner.hpp"
#include "dining/checkers.hpp"
#include "dining/trace.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Engine;
using ekbd::scenario::RtScenario;
using ekbd::scenario::Scenario;
using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// Eats of `p` that started strictly after `t`.
std::size_t eats_after(const ekbd::dining::Trace& trace, ProcessId p, Time t) {
  std::size_t n = 0;
  for (const auto& ev : trace.events()) {
    if (ev.process == p && ev.kind == TraceEventKind::kStartEating && ev.at > t) ++n;
  }
  return n;
}

Config recovery_config() {
  Config cfg;
  cfg.seed = 11;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kPerfect;
  cfg.observability = true;
  cfg.run_for = 60'000;
  return cfg;
}

// ------------------------------------------------------------------- sim

TEST(Recovery, SimRejoinerReacquiresForksCleanly) {
  Config cfg = recovery_config();
  const ProcessId victim = 2;
  const Time crash_at = 10'000;
  const Time recover_at = 20'000;
  cfg.crashes = {{victim, crash_at}};
  Scenario sc(cfg);
  sc.sim().schedule_recovery(victim, recover_at);
  sc.run();

  // P1 holds through the whole run: a perfect detector means nobody ever
  // eats on a false suspicion, and the rejoin complement rule means the
  // recovered incarnation never fabricates a fork its neighbor also holds.
  EXPECT_TRUE(sc.exclusion().violations.empty())
      << "first violation at t=" << sc.exclusion().violations.front().at;

  // The victim actually died, came back, and dined again.
  const auto& trace = sc.trace();
  EXPECT_EQ(trace.count(TraceEventKind::kCrashed, victim), 1u);
  EXPECT_EQ(trace.count(TraceEventKind::kRecovered, victim), 1u);
  EXPECT_GE(eats_after(trace, victim, recover_at), 1u);

  // Nobody starves: the survivors were never blocked on the corpse (P3),
  // and the rejoiner resynchronized instead of deadlocking on stale state.
  const auto wf = sc.wait_freedom(10'000);
  EXPECT_TRUE(wf.wait_free()) << wf.starving.size() << " starving";
  EXPECT_GT(wf.sessions_completed, 0u);

  // Rejoin converged: every edge re-synced, incarnation count bumped.
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = sc.wait_free_diner(static_cast<ProcessId>(p));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->unsynced_edges(), 0u) << "p=" << p;
    EXPECT_EQ(d->lemma11_violations(), 0u) << "p=" << p;
    EXPECT_EQ(d->epoch(), p == static_cast<std::size_t>(victim) ? 1u : 0u);
  }

  // Online monitors and post-hoc checkers tell the same story.
  EXPECT_EQ(sc.monitors()->agreement_failures(sc.trace(), sc.graph(), sc.sim().network()),
            "");
}

TEST(Recovery, SimAdjacentDoubleCrashBothRejoin) {
  // Two ring-adjacent victims with overlapping outages: the shared edge is
  // resynchronized by the both-crashed tie-break (higher id is the
  // authority when both endpoints rejoin).
  Config cfg = recovery_config();
  cfg.seed = 23;
  cfg.crashes = {{2, 8'000}, {3, 9'000}};
  Scenario sc(cfg);
  sc.sim().schedule_recovery(2, 18'000);
  sc.sim().schedule_recovery(3, 21'000);
  sc.run();

  EXPECT_TRUE(sc.exclusion().violations.empty());
  for (ProcessId v : {ProcessId{2}, ProcessId{3}}) {
    EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, v), 1u);
    EXPECT_GE(eats_after(sc.trace(), v, 21'000), 1u) << "p=" << v;
  }
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = sc.wait_free_diner(static_cast<ProcessId>(p));
    EXPECT_EQ(d->unsynced_edges(), 0u) << "p=" << p;
    EXPECT_EQ(d->lemma11_violations(), 0u) << "p=" << p;
  }
  EXPECT_TRUE(sc.wait_freedom(12'000).wait_free());
}

TEST(Recovery, SimRepeatedCyclesBumpEpoch) {
  // The sim engine supports any number of cycles; two crash/recover
  // rounds on the same process must leave it at epoch 2 and still dining.
  Config cfg = recovery_config();
  cfg.seed = 31;
  const ProcessId victim = 5;
  cfg.crashes = {{victim, 8'000}, {victim, 28'000}};
  Scenario sc(cfg);
  sc.sim().schedule_recovery(victim, 16'000);
  sc.sim().schedule_recovery(victim, 36'000);
  sc.run();

  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.trace().count(TraceEventKind::kCrashed, victim), 2u);
  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, victim), 2u);
  EXPECT_EQ(sc.wait_free_diner(victim)->epoch(), 2u);
  EXPECT_GE(eats_after(sc.trace(), victim, 36'000), 1u);
  for (std::size_t p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(sc.wait_free_diner(static_cast<ProcessId>(p))->unsynced_edges(), 0u);
  }
}

TEST(Recovery, SimHeartbeatDetectorConvergesAfterRejoin) {
  // With a real heartbeat ◇P₁ the outage is detected late and the rejoin
  // is un-suspected late: exclusion may wobble around the transition (the
  // paper's guarantee is eventual) but must be clean once the restarted
  // heartbeats have propagated, and nobody may starve.
  Config cfg = recovery_config();
  cfg.seed = 7;
  cfg.detector = DetectorKind::kHeartbeat;
  const ProcessId victim = 4;
  const Time recover_at = 22'000;
  cfg.crashes = {{victim, 12'000}};
  Scenario sc(cfg);
  sc.sim().schedule_recovery(victim, recover_at);
  sc.run();

  EXPECT_EQ(sc.exclusion().violations_after(recover_at + 5'000), 0u);
  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, victim), 1u);
  EXPECT_GE(eats_after(sc.trace(), victim, recover_at), 1u);
  EXPECT_TRUE(sc.wait_freedom(12'000).wait_free());
  for (std::size_t p = 0; p < cfg.n; ++p) {
    EXPECT_EQ(sc.wait_free_diner(static_cast<ProcessId>(p))->unsynced_edges(), 0u);
  }
}

TEST(Recovery, SimCrashWithoutRecoveryStillFencesP3) {
  // Control: the same config minus the recovery keeps the old guarantee —
  // survivors dine past the corpse forever, the victim never reappears.
  Config cfg = recovery_config();
  cfg.seed = 13;
  cfg.crashes = {{2, 10'000}};
  Scenario sc(cfg);
  sc.run();

  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered), 0u);
  EXPECT_EQ(eats_after(sc.trace(), 2, 10'000), 0u);
  EXPECT_TRUE(sc.wait_freedom(10'000).wait_free());
}

TEST(Recovery, SimSeedSweepStaysClean) {
  // Determinism + robustness: several seeds, victim adjacent to the churn
  // of normal dining, always P1-clean and epoch-consistent.
  for (std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    Config cfg = recovery_config();
    cfg.seed = seed;
    cfg.run_for = 40'000;
    cfg.crashes = {{6, 9'000}};
    Scenario sc(cfg);
    sc.sim().schedule_recovery(6, 17'000);
    sc.run();
    EXPECT_TRUE(sc.exclusion().violations.empty()) << "seed=" << seed;
    EXPECT_TRUE(sc.wait_freedom(9'000).wait_free()) << "seed=" << seed;
    EXPECT_EQ(sc.wait_free_diner(6)->epoch(), 1u) << "seed=" << seed;
    for (std::size_t p = 0; p < cfg.n; ++p) {
      EXPECT_EQ(sc.wait_free_diner(static_cast<ProcessId>(p))->unsynced_edges(), 0u)
          << "seed=" << seed << " p=" << p;
    }
  }
}

// -------------------------------------------------------------------- rt

TEST(Recovery, RtRejoinerReacquiresForksCleanly) {
  Config cfg;
  cfg.seed = 17;
  cfg.engine = Engine::kRt;
  cfg.rt_tick_ns = 100'000;  // 0.4 s wall
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kPerfect;
  cfg.observability = true;
  cfg.run_for = 4'000;
  const ProcessId victim = 3;
  const Time recover_at = 1'500;
  cfg.crashes = {{victim, 800}};
  RtScenario sc(cfg);
  sc.runtime().schedule_recovery(victim, recover_at);
  sc.run();

  EXPECT_TRUE(sc.exclusion().violations.empty());
  EXPECT_EQ(sc.trace().count(TraceEventKind::kCrashed, victim), 1u);
  EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, victim), 1u);
  EXPECT_GE(eats_after(sc.trace(), victim, recover_at), 1u);
  EXPECT_TRUE(sc.wait_freedom(1'500).wait_free());
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = dynamic_cast<ekbd::core::WaitFreeDiner*>(sc.diner(static_cast<ProcessId>(p)));
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->unsynced_edges(), 0u) << "p=" << p;
    EXPECT_EQ(d->lemma11_violations(), 0u) << "p=" << p;
    EXPECT_EQ(d->epoch(), p == static_cast<std::size_t>(victim) ? 1u : 0u);
  }
  EXPECT_EQ(sc.monitor_agreement(), "");
}

TEST(Recovery, RtTwoVictimsRecoverIndependently) {
  Config cfg;
  cfg.seed = 29;
  cfg.engine = Engine::kRt;
  cfg.rt_tick_ns = 100'000;
  cfg.topology = "ring";
  cfg.n = 10;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kPerfect;
  cfg.observability = true;
  cfg.run_for = 4'000;
  cfg.crashes = {{2, 700}, {7, 900}};
  RtScenario sc(cfg);
  sc.runtime().schedule_recovery(2, 1'600);
  sc.runtime().schedule_recovery(7, 2'000);
  sc.run();

  EXPECT_TRUE(sc.exclusion().violations.empty());
  for (ProcessId v : {ProcessId{2}, ProcessId{7}}) {
    EXPECT_EQ(sc.trace().count(TraceEventKind::kRecovered, v), 1u) << "p=" << v;
    EXPECT_GE(eats_after(sc.trace(), v, 2'000), 1u) << "p=" << v;
  }
  for (std::size_t p = 0; p < cfg.n; ++p) {
    auto* d = dynamic_cast<ekbd::core::WaitFreeDiner*>(sc.diner(static_cast<ProcessId>(p)));
    EXPECT_EQ(d->unsynced_edges(), 0u) << "p=" << p;
  }
  EXPECT_EQ(sc.monitor_agreement(), "");
}

}  // namespace
