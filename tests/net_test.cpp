// Unit tests for the net/ subsystem: LinkFaultModel decision logic and
// seed determinism, partition/edge-cut semantics, and the ReliableTransport
// ARQ shim (exactly-once in-order delivery under loss/duplication/
// reordering, duplicate suppression, logical channel accounting, and
// identical event logs for identical seeds).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "net/link_fault_model.hpp"
#include "net/reliable_transport.hpp"
#include "scenario/scenario.hpp"
#include "sim/event_log.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::net::EdgeCut;
using ekbd::net::LinkFaultModel;
using ekbd::net::LinkFaultParams;
using ekbd::net::Partition;
using ekbd::net::ReliableTransport;
using ekbd::sim::EventLog;
using ekbd::sim::FaultDecision;
using ekbd::sim::LoggedEvent;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;
using ekbd::sim::Time;

/// Records int payloads it receives (logical deliveries).
class IntSink : public ekbd::sim::Actor {
 public:
  void on_message(const Message& m) override {
    if (const int* v = m.as<int>()) {
      got.push_back(*v);
      times.push_back(now());
    }
  }
  std::vector<int> got;
  std::vector<Time> times;
};

// ---------------------------------------------------------------- adversary

TEST(LinkFaultModel, EqualSeedsReplayIdenticalFaultSchedules) {
  const LinkFaultParams p{.drop_prob = 0.3, .dup_prob = 0.2, .reorder_prob = 0.15};
  LinkFaultModel a(42, p);
  LinkFaultModel b(42, p);
  for (int i = 0; i < 500; ++i) {
    const FaultDecision da = a.on_send(0, 1, MsgLayer::kOther, i);
    const FaultDecision db = b.on_send(0, 1, MsgLayer::kOther, i);
    ASSERT_EQ(da.drop, db.drop) << "send " << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << "send " << i;
    ASSERT_EQ(da.reorder, db.reorder) << "send " << i;
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_EQ(a.reorders(), b.reorders());
  EXPECT_GT(a.drops(), 0u);       // 500 sends at 30% — statistically certain
  EXPECT_GT(a.duplicates(), 0u);
  EXPECT_GT(a.reorders(), 0u);
}

TEST(LinkFaultModel, DifferentSeedsDiverge) {
  const LinkFaultParams p{.drop_prob = 0.3, .dup_prob = 0.2, .reorder_prob = 0.15};
  LinkFaultModel a(42, p);
  LinkFaultModel b(43, p);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    const FaultDecision da = a.on_send(0, 1, MsgLayer::kOther, i);
    const FaultDecision db = b.on_send(0, 1, MsgLayer::kOther, i);
    diverged = da.drop != db.drop || da.duplicate != db.duplicate;
  }
  EXPECT_TRUE(diverged);
}

TEST(LinkFaultModel, PerLinkOverridesBeatDefaults) {
  LinkFaultModel m(7, LinkFaultParams{});  // default: fault-free
  m.set_link_params(2, 5, LinkFaultParams{.drop_prob = 1.0});
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(m.on_send(2, 5, MsgLayer::kOther, i).drop);
    EXPECT_TRUE(m.on_send(5, 2, MsgLayer::kOther, i).drop);  // undirected
    EXPECT_FALSE(m.on_send(0, 1, MsgLayer::kOther, i).drop);
  }
}

TEST(LinkFaultModel, PartitionCutsOnlyCrossingLinksDuringInterval) {
  LinkFaultModel m(1);
  m.add_partition(Partition{.side = {0, 1}, .from = 100, .until = 200});
  // Crossing link, inside the window: cut (both directions).
  EXPECT_TRUE(m.cut(0, 2, 150));
  EXPECT_TRUE(m.cut(2, 0, 150));
  // Same side: never cut.
  EXPECT_FALSE(m.cut(0, 1, 150));
  EXPECT_FALSE(m.cut(2, 3, 150));
  // Outside [from, until): not cut (end exclusive — heal takes effect at 200).
  EXPECT_FALSE(m.cut(0, 2, 99));
  EXPECT_FALSE(m.cut(0, 2, 200));
}

TEST(LinkFaultModel, EdgeCutIsUndirectedAndWindowed) {
  LinkFaultModel m(1);
  m.add_edge_cut(EdgeCut{.a = 3, .b = 4, .from = 10, .until = 20});
  EXPECT_TRUE(m.cut(3, 4, 10));
  EXPECT_TRUE(m.cut(4, 3, 19));
  EXPECT_FALSE(m.cut(3, 4, 20));
  EXPECT_FALSE(m.cut(3, 5, 15));
}

TEST(LinkFaultModel, LastHealTimeReportsPermanentCuts) {
  LinkFaultModel m(1);
  EXPECT_EQ(m.last_heal_time(), 0);
  m.add_partition(Partition{.side = {0}, .from = 50, .until = 300});
  m.add_edge_cut(EdgeCut{.a = 1, .b = 2, .from = 10, .until = 400});
  EXPECT_EQ(m.last_heal_time(), 400);
  m.add_partition(Partition{.side = {5}, .from = 0, .until = -1});  // permanent
  EXPECT_EQ(m.last_heal_time(), -1);
}

TEST(LinkFaultModel, PartitionDropWinsOverCoinFlips) {
  // A cut link drops everything, deterministically, and books it as a
  // partition drop (not a probabilistic one).
  LinkFaultModel m(9, LinkFaultParams{.drop_prob = 0.0});
  m.add_partition(Partition{.side = {0}, .from = 0, .until = -1});
  for (int i = 0; i < 10; ++i) {
    const FaultDecision d = m.on_send(0, 1, MsgLayer::kDining, i);
    EXPECT_TRUE(d.drop);
    EXPECT_TRUE(d.partitioned);
  }
  EXPECT_EQ(m.partition_drops(), 10u);
  EXPECT_EQ(m.drops(), 0u);
}

// -------------------------------------------------------------------- ARQ

/// 0 → 1 over a hostile link; returns the receiving sink and the stats.
struct ArqRun {
  std::vector<int> got;
  std::vector<Time> times;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t physical_data_sends = 0;
  std::uint64_t logical_total = 0;
  int logical_in_transit_end = 0;
  std::uint64_t transport_total = 0;
};

ArqRun run_arq(std::uint64_t sim_seed, std::uint64_t fault_seed, LinkFaultParams faults,
               int messages, Time spacing, Time horizon) {
  Simulator sim(sim_seed);
  sim.make_actor<IntSink>();                  // process 0: sender only
  IntSink* sink = sim.make_actor<IntSink>();  // process 1: receiver
  LinkFaultModel adversary(fault_seed, faults);
  sim.set_adversary(&adversary);
  ReliableTransport rt(sim, ReliableTransport::Params{});
  sim.start();
  for (int i = 0; i < messages; ++i) {
    sim.schedule(1 + spacing * i, [&sim, i] { sim.send(0, 1, i, MsgLayer::kOther); });
  }
  sim.run_until(horizon);

  ArqRun out;
  out.got = sink->got;
  out.times = sink->times;
  out.retransmissions = rt.retransmissions();
  out.duplicates_suppressed = rt.duplicates_suppressed();
  out.physical_data_sends = rt.physical_data_sends();
  const auto logical = sim.network().channel(0, 1, MsgLayer::kOther);
  out.logical_total = logical.total;
  out.logical_in_transit_end = logical.in_transit;
  out.transport_total = sim.network().total_sent(MsgLayer::kTransport);
  return out;
}

TEST(ReliableTransport, ExactlyOnceInOrderUnderLossDupReorder) {
  const LinkFaultParams hostile{.drop_prob = 0.3, .dup_prob = 0.2, .reorder_prob = 0.2};
  const int kMessages = 80;
  const ArqRun r = run_arq(11, 12, hostile, kMessages, 25, 120'000);

  // Every logical message delivered exactly once, in send order — the
  // reliable FIFO channel the paper assumes, rebuilt over a hostile link.
  ASSERT_EQ(r.got.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(r.got[static_cast<std::size_t>(i)], i);

  // The hostility was real and the ARQ actually worked for it.
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.duplicates_suppressed, 0u);
  EXPECT_GT(r.physical_data_sends, static_cast<std::uint64_t>(kMessages));

  // Logical books: all accepted, all settled, none stranded.
  EXPECT_EQ(r.logical_total, static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(r.logical_in_transit_end, 0);
  // Physical segments live on their own layer.
  EXPECT_GT(r.transport_total, static_cast<std::uint64_t>(kMessages));
}

TEST(ReliableTransport, CleanLinkAddsNoRetransmissions) {
  const ArqRun r = run_arq(3, 4, LinkFaultParams{}, 40, 30, 20'000);
  ASSERT_EQ(r.got.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(r.got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.physical_data_sends, 40u);  // one segment per logical message
}

TEST(ReliableTransport, EqualSeedsProduceIdenticalDeliverySchedules) {
  const LinkFaultParams hostile{.drop_prob = 0.25, .dup_prob = 0.15, .reorder_prob = 0.1};
  const ArqRun a = run_arq(21, 22, hostile, 50, 20, 80'000);
  const ArqRun b = run_arq(21, 22, hostile, 50, 20, 80'000);
  EXPECT_EQ(a.got, b.got);
  EXPECT_EQ(a.times, b.times);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.physical_data_sends, b.physical_data_sends);
}

TEST(ReliableTransport, DetectorLayerStaysRaw) {
  Simulator sim(5);
  sim.make_actor<IntSink>();
  IntSink* sink = sim.make_actor<IntSink>();
  ReliableTransport rt(sim, ReliableTransport::Params{});
  sim.start();
  sim.schedule(1, [&sim] { sim.send(0, 1, 7, MsgLayer::kDetector); });
  sim.run_until(1'000);
  ASSERT_EQ(sink->got.size(), 1u);  // delivered — but not via the ARQ
  EXPECT_EQ(rt.logical_sends(), 0u);
  EXPECT_EQ(rt.physical_data_sends(), 0u);
  EXPECT_EQ(sim.network().total_sent(MsgLayer::kTransport), 0u);
}

// --------------------------------------------- end-to-end determinism audit

std::vector<std::string> scenario_event_log(const ekbd::scenario::Config& cfg) {
  ekbd::scenario::Scenario s(cfg);
  EventLog log;
  s.sim().set_event_log(&log);
  s.run();
  std::vector<std::string> lines;
  lines.reserve(log.size());
  for (const LoggedEvent& ev : log.events()) lines.push_back(ev.describe());
  return lines;
}

TEST(NetDeterminism, EqualSeedsProduceIdenticalEventLogs) {
  ekbd::scenario::Config cfg;
  cfg.seed = 97;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.partial_synchrony = false;
  cfg.detector = ekbd::scenario::DetectorKind::kScripted;
  cfg.net_mode = ekbd::scenario::NetMode::kLossyPartition;
  cfg.link_faults = LinkFaultParams{.drop_prob = 0.2, .dup_prob = 0.1, .reorder_prob = 0.1};
  cfg.partitions.push_back(Partition{.side = {0, 1}, .from = 5'000, .until = 9'000});
  cfg.crashes = {{3, 12'000}};
  cfg.run_for = 20'000;

  const std::vector<std::string> a = scenario_event_log(cfg);
  const std::vector<std::string> b = scenario_event_log(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "event " << i;
  EXPECT_GT(a.size(), 100u);  // the run actually did something

  ekbd::scenario::Config other = cfg;
  other.seed = 98;
  EXPECT_NE(a, scenario_event_log(other));
}

TEST(NetDeterminism, NetSeedAloneChangesOnlyTheFaultSchedule) {
  // Same master seed, different net seed: a different fault schedule must
  // emerge (the coins are NOT drawn from the simulator's master stream).
  ekbd::scenario::Config cfg;
  cfg.seed = 55;
  cfg.topology = "ring";
  cfg.n = 5;
  cfg.partial_synchrony = false;
  cfg.detector = ekbd::scenario::DetectorKind::kScripted;
  cfg.net_mode = ekbd::scenario::NetMode::kLossy;
  cfg.link_faults = LinkFaultParams{.drop_prob = 0.25, .dup_prob = 0.1, .reorder_prob = 0.0};
  cfg.run_for = 15'000;

  ekbd::scenario::Scenario s1(cfg);
  s1.run();
  ekbd::scenario::Config cfg2 = cfg;
  cfg2.net_seed = 777;
  ekbd::scenario::Scenario s2(cfg2);
  s2.run();
  ASSERT_NE(s1.fault_model(), nullptr);
  ASSERT_NE(s2.fault_model(), nullptr);
  EXPECT_NE(std::make_tuple(s1.fault_model()->drops(), s1.fault_model()->duplicates()),
            std::make_tuple(s2.fault_model()->drops(), s2.fault_model()->duplicates()));
}

// ------------------------------------------------------------- RTO jitter

/// One sender, two receivers, every datagram dropped: the ARQ backs off
/// forever on both edges, and `armed_delays` records the schedule.
std::pair<std::vector<Time>, std::vector<Time>> backoff_schedules(
    ReliableTransport::Params params, std::uint64_t sim_seed) {
  Simulator sim(sim_seed);
  sim.make_actor<IntSink>();
  sim.make_actor<IntSink>();
  sim.make_actor<IntSink>();
  LinkFaultModel blackhole(1, LinkFaultParams{.drop_prob = 1.0});
  sim.set_adversary(&blackhole);
  ReliableTransport arq(sim, params);
  sim.start();
  sim.schedule(1, [&sim] {
    sim.send(0, 1, 7, MsgLayer::kOther);
    sim.send(0, 2, 7, MsgLayer::kOther);
  });
  sim.run_until(40'000);
  return {arq.armed_delays(0, 1), arq.armed_delays(0, 2)};
}

TEST(RtoJitter, DisabledJitterArmsBothEdgesInLockstep) {
  ReliableTransport::Params params;
  params.rto_jitter = 0.0;
  const auto [e1, e2] = backoff_schedules(params, 42);
  ASSERT_GT(e1.size(), 4u);
  // Without jitter the two edges run the identical exponential schedule —
  // the synchronized post-heal retransmit storm this knob exists to break.
  EXPECT_EQ(e1, e2);
  // And it is the exact legacy backoff: rto_initial doubling up to rto_max.
  Time expect = params.rto_initial;
  for (const Time d : e1) {
    EXPECT_EQ(d, expect);
    expect = std::min(static_cast<Time>(static_cast<double>(expect) * params.rto_backoff),
                      params.rto_max);
  }
}

TEST(RtoJitter, JitterDesynchronizesEdgesButStaysSeedDeterministic) {
  ReliableTransport::Params params;
  params.rto_jitter = 0.35;
  params.jitter_seed = 9;
  const auto [e1, e2] = backoff_schedules(params, 42);
  ASSERT_GT(e1.size(), 4u);
  ASSERT_GT(e2.size(), 4u);

  // Desynchronization: the per-edge streams decorrelate the schedules.
  EXPECT_NE(e1, e2);

  // Every armed delay stays inside the stretch envelope [base, base*1.35].
  Time base = params.rto_initial;
  for (const Time d : e1) {
    EXPECT_GE(d, base);
    EXPECT_LE(d, static_cast<Time>(static_cast<double>(base) * (1.0 + params.rto_jitter)) + 1);
    base = std::min(static_cast<Time>(static_cast<double>(base) * params.rto_backoff),
                    params.rto_max);
  }

  // Bit determinism: the same (jitter_seed, edge) reproduces the same
  // schedule, run after run.
  const auto [f1, f2] = backoff_schedules(params, 42);
  EXPECT_EQ(e1, f1);
  EXPECT_EQ(e2, f2);

  // A different jitter seed reshuffles the stretches.
  params.jitter_seed = 10;
  const auto [g1, g2] = backoff_schedules(params, 42);
  EXPECT_NE(e1, g1);
}

}  // namespace
