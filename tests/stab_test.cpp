// Self-stabilizing protocol tests under an ideal serial scheduler
// (convergence + closure from arbitrary states), independent of the
// dining layer — these pin down the protocols before the daemon composes
// them with Algorithm 1.
#include <gtest/gtest.h>

#include <memory>

#include "graph/topology.hpp"
#include "sim/rng.hpp"
#include "stab/bfs_tree.hpp"
#include "stab/coloring.hpp"
#include "stab/matching.hpp"
#include "stab/mis.hpp"
#include "stab/protocol.hpp"
#include "stab/token_ring.hpp"

namespace {

using ekbd::graph::ConflictGraph;
using ekbd::graph::ProcessId;
using ekbd::sim::Rng;
using ekbd::stab::DijkstraTokenRing;
using ekbd::stab::Protocol;
using ekbd::stab::StabilizingBfsTree;
using ekbd::stab::StabilizingColoring;
using ekbd::stab::StabilizingMis;
using ekbd::stab::StateTable;

/// Serial daemon: repeatedly run a randomly chosen *enabled* process until
/// the legitimacy predicate holds or the step budget is exhausted.
/// Returns the number of steps taken, or -1 if it never converged.
int run_serial(const Protocol& proto, StateTable& s, const ConflictGraph& g, Rng& rng,
               int max_steps = 100'000) {
  for (int step = 0; step < max_steps; ++step) {
    if (proto.legitimate(s, g)) return step;
    std::vector<ProcessId> enabled;
    for (std::size_t p = 0; p < g.size(); ++p) {
      if (proto.enabled(static_cast<ProcessId>(p), s, g)) {
        enabled.push_back(static_cast<ProcessId>(p));
      }
    }
    if (enabled.empty()) return proto.legitimate(s, g) ? step : -1;
    proto.step(enabled[rng.index(enabled.size())], s, g);
  }
  return proto.legitimate(s, g) ? max_steps : -1;
}

TEST(TokenRing, ConvergesFromArbitraryStates) {
  const std::size_t n = 8;
  auto g = ekbd::graph::ring(n);
  DijkstraTokenRing proto(n);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    StateTable s(n, 1);
    s.randomize(rng, 0, proto.k() - 1);
    int steps = run_serial(proto, s, g, rng);
    EXPECT_GE(steps, 0) << "seed " << seed;
    EXPECT_EQ(proto.tokens(s, g), 1u);
  }
}

TEST(TokenRing, ClosureTokenCirculates) {
  const std::size_t n = 6;
  auto g = ekbd::graph::ring(n);
  DijkstraTokenRing proto(n);
  StateTable s(n, 1);  // all zeros: legitimate (only bottom enabled)
  ASSERT_TRUE(proto.legitimate(s, g));
  Rng rng(1);
  // Execute 200 legitimate steps: exactly one token at every point.
  for (int i = 0; i < 200; ++i) {
    for (std::size_t p = 0; p < n; ++p) {
      if (proto.enabled(static_cast<ProcessId>(p), s, g)) {
        proto.step(static_cast<ProcessId>(p), s, g);
        break;
      }
    }
    EXPECT_EQ(proto.tokens(s, g), 1u) << "step " << i;
  }
}

TEST(TokenRing, EveryProcessEventuallyHoldsToken) {
  const std::size_t n = 5;
  auto g = ekbd::graph::ring(n);
  DijkstraTokenRing proto(n);
  StateTable s(n, 1);
  std::vector<bool> held(n, false);
  for (int i = 0; i < 500; ++i) {
    for (std::size_t p = 0; p < n; ++p) {
      if (proto.enabled(static_cast<ProcessId>(p), s, g)) {
        held[p] = true;
        proto.step(static_cast<ProcessId>(p), s, g);
        break;
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) EXPECT_TRUE(held[p]) << p;
}

TEST(TokenRing, ToleratesOutOfDomainValues) {
  const std::size_t n = 4;
  auto g = ekbd::graph::ring(n);
  DijkstraTokenRing proto(n);
  StateTable s(n, 1);
  s.set(0, -999);
  s.set(1, 1'000'000);
  Rng rng(3);
  EXPECT_GE(run_serial(proto, s, g, rng), 0);
}

TEST(Coloring, ConvergesOnAllTopologies) {
  Rng trng(7);
  for (const char* name : {"ring", "path", "clique", "star", "grid", "tree", "random"}) {
    auto g = ekbd::graph::by_name(name, 12, trng);
    StabilizingColoring proto;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(seed);
      StateTable s(g.size(), 1);
      s.randomize(rng, 0, proto.corruption_hi(g));
      int steps = run_serial(proto, s, g, rng);
      ASSERT_GE(steps, 0) << name << " seed " << seed;
      EXPECT_TRUE(proto.legitimate(s, g));
      // Legitimacy (proper coloring) is reached first; keep stepping to
      // the silent Grundy fixpoint, which uses at most δ+1 colors.
      for (int extra = 0; extra < 10'000 && !proto.silent(s, g); ++extra) {
        for (std::size_t p = 0; p < g.size(); ++p) {
          if (proto.enabled(static_cast<ProcessId>(p), s, g)) {
            proto.step(static_cast<ProcessId>(p), s, g);
            break;
          }
        }
      }
      EXPECT_TRUE(proto.silent(s, g));
      for (std::size_t p = 0; p < g.size(); ++p) {
        EXPECT_LE(s.get(static_cast<ProcessId>(p)),
                  static_cast<std::int64_t>(g.max_degree()));
      }
    }
  }
}

TEST(Coloring, LegitimateRejectsCollision) {
  auto g = ekbd::graph::path(3);
  StabilizingColoring proto;
  StateTable s(3, 1);
  s.set(0, 1);
  s.set(1, 1);
  s.set(2, 0);
  EXPECT_FALSE(proto.legitimate(s, g));
}

TEST(Mis, ConvergesToMaximalIndependentSet) {
  Rng trng(9);
  for (const char* name : {"ring", "clique", "star", "grid", "random"}) {
    auto g = ekbd::graph::by_name(name, 14, trng);
    StabilizingMis proto;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(seed * 31 + 1);
      StateTable s(g.size(), 1);
      s.randomize(rng, 0, 1);
      int steps = run_serial(proto, s, g, rng);
      ASSERT_GE(steps, 0) << name << " seed " << seed;
      // Verify independence + domination directly.
      for (const auto& [a, b] : g.edges()) {
        EXPECT_FALSE(StabilizingMis::is_in(s, a) && StabilizingMis::is_in(s, b))
            << name << ": edge (" << a << "," << b << ") both in";
      }
      for (std::size_t p = 0; p < g.size(); ++p) {
        if (!StabilizingMis::is_in(s, static_cast<ProcessId>(p))) {
          bool dominated = false;
          for (ProcessId j : g.neighbors(static_cast<ProcessId>(p))) {
            dominated |= StabilizingMis::is_in(s, j);
          }
          EXPECT_TRUE(dominated) << name << ": p" << p << " not dominated";
        }
      }
    }
  }
}

TEST(Mis, SingletonJoins) {
  ConflictGraph g(1);
  StabilizingMis proto;
  StateTable s(1, 1);
  EXPECT_TRUE(proto.enabled(0, s, g));
  proto.step(0, s, g);
  EXPECT_TRUE(StabilizingMis::is_in(s, 0));
  EXPECT_TRUE(proto.legitimate(s, g));
}

TEST(BfsTree, ConvergesToTrueDistances) {
  Rng trng(11);
  for (const char* name : {"ring", "path", "star", "grid", "tree", "random"}) {
    auto g = ekbd::graph::by_name(name, 12, trng);
    StabilizingBfsTree proto;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(seed * 17 + 3);
      StateTable s(g.size(), 1);
      s.randomize(rng, -5, 40);
      int steps = run_serial(proto, s, g, rng);
      ASSERT_GE(steps, 0) << name << " seed " << seed;
      EXPECT_TRUE(proto.legitimate(s, g)) << name;
    }
  }
}

TEST(BfsTree, PathDistancesExact) {
  auto g = ekbd::graph::path(5);
  StabilizingBfsTree proto;
  StateTable s(5, 1);
  s.randomize(*std::make_unique<Rng>(2), 0, 30);
  Rng rng(2);
  ASSERT_GE(run_serial(proto, s, g, rng), 0);
  for (int p = 0; p < 5; ++p) EXPECT_EQ(s.get(p), p);
}

TEST(RestrictedLegitimacy, SilentProtocolsUseLiveGuards) {
  auto g = ekbd::graph::path(3);
  StabilizingColoring proto;
  StateTable s(3, 1);
  // 1 and 2 collide, but 2 is "crashed": only live guards matter.
  s.set(0, 0);
  s.set(1, 1);
  s.set(2, 1);
  std::vector<bool> live{true, true, false};
  EXPECT_FALSE(proto.legitimate_restricted(s, g, live));  // 1 is enabled (mex=2... )
  // Fix process 1 to its mex given neighbors {0:0, 2:1} => 2.
  proto.step(1, s, g);
  EXPECT_TRUE(proto.legitimate_restricted(s, g, live));
  EXPECT_FALSE(proto.legitimate(s, g) &&
               proto.silent(s, g));  // full-graph silence doesn't hold (2 enabled or not)
}

TEST(Matching, ConvergesToMaximalMatchingEverywhere) {
  Rng trng(13);
  for (const char* name : {"ring", "path", "clique", "star", "grid", "tree", "random"}) {
    auto g = ekbd::graph::by_name(name, 12, trng);
    ekbd::stab::StabilizingMatching proto;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(seed * 13 + 5);
      StateTable s(g.size(), 1);
      s.randomize(rng, -1, proto.corruption_hi(g));  // includes junk pointers
      int steps = run_serial(proto, s, g, rng);
      ASSERT_GE(steps, 0) << name << " seed " << seed;
      // Verify symmetry and maximality directly.
      for (std::size_t pi = 0; pi < g.size(); ++pi) {
        auto p = static_cast<ProcessId>(pi);
        auto v = s.get(p);
        if (v >= 0) {
          ASSERT_TRUE(g.adjacent(p, static_cast<ProcessId>(v))) << name;
          EXPECT_EQ(s.get(static_cast<ProcessId>(v)), p) << name << ": asymmetric";
        }
      }
      for (const auto& [x, y] : g.edges()) {
        EXPECT_FALSE(s.get(x) == -1 && s.get(y) == -1)
            << name << ": edge (" << x << "," << y << ") both unmatched";
      }
    }
  }
}

TEST(Matching, PerfectStateIsSilent) {
  auto g = ekbd::graph::path(4);  // 0-1-2-3
  ekbd::stab::StabilizingMatching proto;
  StateTable s(4, 1);
  s.set(0, 1);
  s.set(1, 0);
  s.set(2, 3);
  s.set(3, 2);
  EXPECT_TRUE(proto.legitimate(s, g));
  for (int p = 0; p < 4; ++p) EXPECT_FALSE(proto.enabled(p, s, g)) << p;
}

TEST(Matching, WithdrawClearsCorruptPointer) {
  auto g = ekbd::graph::path(3);
  ekbd::stab::StabilizingMatching proto;
  StateTable s(3, 1);
  s.set(0, 2);  // 2 is not a neighbor of 0
  s.set(1, -1);
  s.set(2, -1);
  EXPECT_TRUE(proto.enabled(0, s, g));
  proto.step(0, s, g);
  EXPECT_EQ(s.get(0), -1);
}

TEST(Matching, AcceptPrefersProposerOverProposal) {
  auto g = ekbd::graph::path(3);  // 0-1-2
  ekbd::stab::StabilizingMatching proto;
  StateTable s(3, 1);
  s.set(0, 1);   // 0 proposes to 1
  s.set(1, -1);  // 1 must ACCEPT 0, not propose to 2
  s.set(2, -1);
  proto.step(1, s, g);
  EXPECT_EQ(s.get(1), 0);
}

TEST(Matching, LegitimateRejectsAsymmetryAndNonMaximality) {
  auto g = ekbd::graph::path(3);
  ekbd::stab::StabilizingMatching proto;
  StateTable s(3, 1);
  s.set(0, 1);
  s.set(1, 2);  // 1 points at 2, not back at 0 -> asymmetric
  s.set(2, 1);
  EXPECT_FALSE(proto.legitimate(s, g));
  s.set(0, -1);
  s.set(1, -1);
  s.set(2, -1);  // empty matching on a path: not maximal
  EXPECT_FALSE(proto.legitimate(s, g));
}

TEST(StateTable, Basics) {
  StateTable s(3, 2);
  EXPECT_EQ(s.processes(), 3u);
  EXPECT_EQ(s.regs_per_process(), 2u);
  s.set(1, 42, 1);
  EXPECT_EQ(s.get(1, 1), 42);
  EXPECT_EQ(s.get(1, 0), 0);
  s.corrupt(2, 0, -7);
  EXPECT_EQ(s.get(2, 0), -7);
  Rng rng(5);
  s.randomize(rng, 3, 3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(s.get(p, 0), 3);
    EXPECT_EQ(s.get(p, 1), 3);
  }
}

}  // namespace
