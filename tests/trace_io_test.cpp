// Trace JSONL export/import tests: round trips, tooling compatibility,
// malformed-input rejection, and checker equivalence on imported traces.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "dining/checkers.hpp"
#include "dining/trace_io.hpp"
#include "graph/topology.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::from_jsonl;
using ekbd::dining::to_jsonl;
using ekbd::dining::Trace;
using ekbd::dining::TraceEventKind;

Trace sample_trace() {
  Trace t;
  t.record(10, 0, TraceEventKind::kBecameHungry);
  t.record(12, 0, TraceEventKind::kEnteredDoorway);
  t.record(15, 0, TraceEventKind::kStartEating);
  t.record(20, 0, TraceEventKind::kStopEating);
  t.record(25, 1, TraceEventKind::kBecameHungry);
  t.record(30, 1, TraceEventKind::kCrashed);
  t.set_end_time(100);
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  Trace original = sample_trace();
  Trace copy = from_jsonl(to_jsonl(original));
  ASSERT_EQ(copy.size(), original.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy.events()[i].at, original.events()[i].at);
    EXPECT_EQ(copy.events()[i].process, original.events()[i].process);
    EXPECT_EQ(copy.events()[i].kind, original.events()[i].kind);
  }
  EXPECT_EQ(copy.end_time(), 100);
}

TEST(TraceIo, FormatIsOneJsonObjectPerLine) {
  std::string jsonl = to_jsonl(sample_trace());
  EXPECT_NE(jsonl.find("{\"t\":10,\"p\":0,\"e\":\"hungry\"}"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"t\":30,\"p\":1,\"e\":\"crash\"}"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"end_time\":100}"), std::string::npos);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace empty;
  empty.set_end_time(7);
  Trace copy = from_jsonl(to_jsonl(empty));
  EXPECT_TRUE(copy.empty());
  EXPECT_EQ(copy.end_time(), 7);
}

TEST(TraceIo, RejectsMissingFields) {
  EXPECT_THROW((void)from_jsonl("{\"t\":1,\"p\":0}\n"), std::invalid_argument);
  EXPECT_THROW((void)from_jsonl("{\"t\":1,\"e\":\"eat\"}\n"), std::invalid_argument);
  EXPECT_THROW((void)from_jsonl("{\"p\":1,\"e\":\"eat\"}\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsUnknownKind) {
  EXPECT_THROW((void)from_jsonl("{\"t\":1,\"p\":0,\"e\":\"nap\"}\n"), std::invalid_argument);
}

TEST(TraceIo, RejectsOutOfOrderEvents) {
  EXPECT_THROW((void)from_jsonl("{\"t\":5,\"p\":0,\"e\":\"eat\"}\n"
                                "{\"t\":3,\"p\":1,\"e\":\"eat\"}\n"),
               std::invalid_argument);
}

TEST(TraceIo, BlankLinesIgnored) {
  Trace t = from_jsonl("\n{\"t\":1,\"p\":0,\"e\":\"eat\"}\n\n");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/ekbd_trace_io_test.jsonl";
  ASSERT_TRUE(ekbd::dining::write_jsonl_file(sample_trace(), path));
  Trace copy = ekbd::dining::read_jsonl_file(path);
  EXPECT_EQ(copy.size(), sample_trace().size());
  std::remove(path.c_str());
  EXPECT_THROW((void)ekbd::dining::read_jsonl_file(path), std::invalid_argument);
}

TEST(TraceIo, ImportedTraceCheckersMatchLiveOnes) {
  // Run a real scenario, export+import the trace, and verify the property
  // checkers produce identical reports.
  ekbd::scenario::Config cfg;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.fp_count = 20;
  cfg.fp_until = 8'000;
  cfg.partial_synchrony = false;
  cfg.run_for = 30'000;
  ekbd::scenario::Scenario s(cfg);
  s.run();

  Trace imported = from_jsonl(to_jsonl(s.trace()));

  auto live_ex = ekbd::dining::check_exclusion(s.trace(), s.graph());
  auto imp_ex = ekbd::dining::check_exclusion(imported, s.graph());
  EXPECT_EQ(live_ex.violations.size(), imp_ex.violations.size());
  EXPECT_EQ(live_ex.last_violation(), imp_ex.last_violation());

  auto live_census = ekbd::dining::overtake_census(s.trace(), s.graph());
  auto imp_census = ekbd::dining::overtake_census(imported, s.graph());
  EXPECT_EQ(ekbd::dining::max_overtakes(live_census, 0),
            ekbd::dining::max_overtakes(imp_census, 0));
  EXPECT_EQ(live_census.size(), imp_census.size());
}

TEST(TraceIo, NetworkFaultRecordsRoundTrip) {
  // The net/ layer's drop/duplicate/partition records travel through the
  // same JSONL format; checkers ignore them, tooling can read them.
  Trace t;
  t.record(5, 0, TraceEventKind::kBecameHungry);
  t.record(8, 2, TraceEventKind::kNetDrop);
  t.record(9, 2, TraceEventKind::kNetDup);
  t.record(12, ekbd::sim::kNoProcess, TraceEventKind::kPartitionCut);
  t.record(14, 0, TraceEventKind::kStartEating);
  t.record(20, ekbd::sim::kNoProcess, TraceEventKind::kPartitionHeal);
  t.set_end_time(50);

  const std::string jsonl = to_jsonl(t);
  EXPECT_NE(jsonl.find("\"e\":\"netdrop\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"e\":\"netdup\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"e\":\"cut\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"e\":\"heal\""), std::string::npos);

  Trace copy = from_jsonl(jsonl);
  ASSERT_EQ(copy.size(), t.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy.events()[i].at, t.events()[i].at);
    EXPECT_EQ(copy.events()[i].process, t.events()[i].process);
    EXPECT_EQ(copy.events()[i].kind, t.events()[i].kind);
  }
  EXPECT_EQ(copy.end_time(), 50);

  // Checkers are oblivious to the new kinds: the session census reads the
  // same with and without the fault records interleaved.
  Trace bare;
  bare.record(5, 0, TraceEventKind::kBecameHungry);
  bare.record(14, 0, TraceEventKind::kStartEating);
  bare.set_end_time(50);
  const auto with_faults = ekbd::dining::hungry_sessions(copy);
  const auto without = ekbd::dining::hungry_sessions(bare);
  ASSERT_EQ(with_faults.size(), without.size());
  EXPECT_EQ(with_faults[0].started_eating, without[0].started_eating);
}

}  // namespace
