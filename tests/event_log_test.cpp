// Event-log tests: transport tracing fidelity, capping, payload naming.
#include <gtest/gtest.h>

#include "sim/event_log.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::sim::EventLog;
using ekbd::sim::LoggedEvent;
using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::Simulator;

// Payload is a closed variant now; these tests send the generic Datum.
using Tag = ekbd::sim::Datum;

struct Echo : ekbd::sim::Actor {
  void on_message(const Message&) override {}
  void on_timer(ekbd::sim::TimerId) override {}
  using Actor::send;
  using Actor::set_timer;
};

TEST(EventLogTest, RecordsSendAndDeliverPairs) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(3));
  EventLog log;
  sim.set_event_log(&log);
  auto* a = sim.make_actor<Echo>();
  auto* b = sim.make_actor<Echo>();
  sim.start();
  a->send(b->id(), Tag{1}, MsgLayer::kDining);
  sim.run_until(100);
  ASSERT_EQ(log.count(LoggedEvent::Kind::kSend), 1u);
  ASSERT_EQ(log.count(LoggedEvent::Kind::kDeliver), 1u);
  const auto& send_ev = log.events()[0];
  const auto& deliver_ev = log.events()[1];
  EXPECT_EQ(send_ev.at, 0);
  EXPECT_EQ(deliver_ev.at, 3);
  EXPECT_EQ(send_ev.from, 0);
  EXPECT_EQ(send_ev.to, 1);
  EXPECT_EQ(send_ev.seq, deliver_ev.seq);
  EXPECT_EQ(send_ev.payload_name(), "Datum");
  EXPECT_EQ(send_ev.layer, MsgLayer::kDining);
}

TEST(EventLogTest, RecordsDropsToCrashed) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(5));
  EventLog log;
  sim.set_event_log(&log);
  auto* a = sim.make_actor<Echo>();
  auto* b = sim.make_actor<Echo>();
  sim.start();
  sim.schedule_crash(b->id(), 2);
  a->send(b->id(), Tag{}, MsgLayer::kOther);  // delivery at 5 > crash at 2
  sim.run_until(100);
  EXPECT_EQ(log.count(LoggedEvent::Kind::kCrash), 1u);
  EXPECT_EQ(log.count(LoggedEvent::Kind::kDrop), 1u);
  EXPECT_EQ(log.count(LoggedEvent::Kind::kDeliver), 0u);
}

TEST(EventLogTest, RecordsTimers) {
  Simulator sim(1);
  EventLog log;
  sim.set_event_log(&log);
  auto* a = sim.make_actor<Echo>();
  sim.start();
  a->set_timer(10);
  a->set_timer(20);
  sim.run_until(100);
  EXPECT_EQ(log.count(LoggedEvent::Kind::kTimer), 2u);
}

TEST(EventLogTest, CapTruncates) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  EventLog log(/*cap=*/5);
  sim.set_event_log(&log);
  auto* a = sim.make_actor<Echo>();
  auto* b = sim.make_actor<Echo>();
  sim.start();
  for (int i = 0; i < 10; ++i) a->send(b->id(), Tag{i}, MsgLayer::kOther);
  sim.run_until(100);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_TRUE(log.truncated());
  // 10 sends + 10 deliveries = 20 events offered, 5 kept, 15 refused.
  EXPECT_EQ(log.dropped(), 15u);
  // The shape summary owns up to the truncation.
  EXPECT_NE(log.describe().find("5 events"), std::string::npos);
  EXPECT_NE(log.describe().find("cap 5"), std::string::npos);
  EXPECT_NE(log.describe().find("15 dropped"), std::string::npos);
  log.clear();
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_FALSE(log.truncated());
}

TEST(EventLogTest, UnboundedLogNeverDrops) {
  EventLog log;
  for (int i = 0; i < 100; ++i) log.append(LoggedEvent{});
  EXPECT_EQ(log.size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_NE(log.describe().find("unbounded"), std::string::npos);
}

TEST(EventLogTest, DetachStopsRecording) {
  Simulator sim(1, ekbd::sim::make_fixed_delay(1));
  EventLog log;
  sim.set_event_log(&log);
  auto* a = sim.make_actor<Echo>();
  auto* b = sim.make_actor<Echo>();
  sim.start();
  a->send(b->id(), Tag{}, MsgLayer::kOther);
  sim.run_until(10);
  const auto before = log.size();
  sim.set_event_log(nullptr);
  a->send(b->id(), Tag{}, MsgLayer::kOther);
  sim.run_until(20);
  EXPECT_EQ(log.size(), before);
}

TEST(EventLogTest, DescribeIsHumanReadable) {
  LoggedEvent e;
  e.at = 42;
  e.kind = LoggedEvent::Kind::kCrash;
  e.from = 3;
  EXPECT_NE(e.describe().find("CRASH"), std::string::npos);
  EXPECT_NE(e.describe().find("p3"), std::string::npos);
}

}  // namespace
