// Parameterized property sweep: every paper property (P1–P8, DESIGN.md §1)
// checked on randomized executions of Algorithm 1 across topology, system
// size, seed, crash count and detector implementation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::dining::TraceEventKind;
using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;
using ekbd::sim::MsgLayer;
using ekbd::sim::Time;

struct Sweep {
  const char* topology;
  std::size_t n;
  std::uint64_t seed;
  std::size_t crashes;
  DetectorKind detector;

  friend std::ostream& operator<<(std::ostream& os, const Sweep& s) {
    return os << s.topology << "_n" << s.n << "_s" << s.seed << "_f" << s.crashes;
  }
};

std::string detector_tag(DetectorKind d) {
  switch (d) {
    case DetectorKind::kScripted: return "scripted";
    case DetectorKind::kHeartbeat: return "heartbeat";
    case DetectorKind::kPingPong: return "pingpong";
    case DetectorKind::kAccrual: return "accrual";
    default: return "other";
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  const Sweep& s = info.param;
  return std::string(s.topology) + "_n" + std::to_string(s.n) + "_s" +
         std::to_string(s.seed) + "_f" + std::to_string(s.crashes) + "_" +
         detector_tag(s.detector);
}

class WaitFreeSweep : public ::testing::TestWithParam<Sweep> {};

TEST_P(WaitFreeSweep, AllPaperPropertiesHold) {
  const Sweep& sw = GetParam();

  Config cfg;
  cfg.seed = sw.seed;
  cfg.topology = sw.topology;
  cfg.n = sw.n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = sw.detector;
  cfg.run_for = 90'000;

  if (sw.detector == DetectorKind::kScripted) {
    cfg.partial_synchrony = false;
    cfg.detection_delay = 120;
    cfg.fp_count = 4 * sw.n;
    cfg.fp_until = 12'000;
  } else {
    cfg.partial_synchrony = true;
    cfg.delay = {.gst = 12'000, .pre_lo = 1, .pre_hi = 100,
                 .spike_prob = 0.08, .spike_factor = 20,
                 .post_lo = 1, .post_hi = 6};
    cfg.heartbeat = {.period = 25, .initial_timeout = 40, .timeout_increment = 30};
    cfg.pingpong = {.period = 25, .initial_rtt = 20, .initial_slack = 20};
    cfg.accrual = {.period = 25, .window = 64, .threshold = 6.0};
  }

  // Spread the crash plan across distinct victims and the first half of
  // the run (detector must still have time to converge on the last one).
  ekbd::sim::Rng crash_rng(sw.seed ^ 0xC4A5);
  std::vector<ekbd::sim::ProcessId> victims;
  while (victims.size() < sw.crashes) {
    auto v = static_cast<ekbd::sim::ProcessId>(crash_rng.index(sw.n));
    bool dup = false;
    for (auto u : victims) dup |= (u == v);
    if (!dup) victims.push_back(v);
  }
  for (std::size_t i = 0; i < victims.size(); ++i) {
    cfg.crashes.emplace_back(victims[i],
                             8'000 + static_cast<Time>(i) * 6'000);
  }

  Scenario s(cfg);
  s.run();

  const Time converged = s.fd_convergence_estimate();
  ASSERT_LT(converged, cfg.run_for / 2) << "detector never settled; sweep misconfigured";

  // P3 — wait-freedom: no correct process starves, however many crashed.
  auto wf = s.wait_freedom(/*starvation_horizon=*/18'000);
  EXPECT_TRUE(wf.wait_free()) << "starving processes found";
  EXPECT_GT(wf.sessions_completed, 0u);

  // P2 — eventual weak exclusion: zero violations after convergence.
  auto ex = s.exclusion();
  EXPECT_EQ(ex.violations_after(converged), 0u);

  // P4 — eventual 2-bounded waiting after convergence.
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), converged), 2);

  // P6 — channel capacity: at most 4 dining messages per pair, ever.
  EXPECT_LE(s.sim().network().max_in_transit_any(MsgLayer::kDining), 4);

  // P1 — fork uniqueness; and Lemma 1.1 never fired at any process.
  for (std::size_t p = 0; p < sw.n; ++p) {
    EXPECT_EQ(s.wait_free_diner(static_cast<int>(p))->lemma11_violations(), 0u) << p;
  }
  for (const auto& [a, b] : s.graph().edges()) {
    EXPECT_FALSE(s.wait_free_diner(a)->holds_fork(b) && s.wait_free_diner(b)->holds_fork(a));
    EXPECT_FALSE(s.wait_free_diner(a)->holds_token(b) && s.wait_free_diner(b)->holds_token(a));
  }

  // P7 — quiescence: bounded dining traffic towards every corpse
  // (at most one unanswered ping and one unanswered fork request per
  // neighbor can be outstanding when it dies, plus messages already
  // decided before the suspicion became permanent).
  for (const auto& [victim, at] : cfg.crashes) {
    const auto degree = s.graph().degree(victim);
    EXPECT_LE(s.sim().network().sends_to_crashed(victim, MsgLayer::kDining), 4u * degree)
        << "p" << victim;
    // And the traffic stops: nothing in the last third of the run.
    EXPECT_LT(s.sim().network().last_send_to(victim, MsgLayer::kDining),
              cfg.run_for - cfg.run_for / 3)
        << "p" << victim;
  }

  // P5 — bounded space: log2(colors) + 6δ + O(1) bits per process.
  for (std::size_t p = 0; p < sw.n; ++p) {
    const auto delta = s.graph().degree(static_cast<int>(p));
    EXPECT_LE(s.diner(static_cast<int>(p))->state_bits(), 6 * delta + 16) << p;
  }

  // P8 — at most one pending ping per ordered pair is implied by the
  // channel bound plus the pinged flag; spot-check the flag's sanity: a
  // thinking, doorway-outside process at the end has no pending pings to
  // live neighbors once traffic drained (checked via in-transit == 0 for
  // live pairs at the horizon in quiescent runs — see wait_free tests).
}

constexpr DetectorKind kS = DetectorKind::kScripted;
constexpr DetectorKind kH = DetectorKind::kHeartbeat;
constexpr DetectorKind kP = DetectorKind::kPingPong;
constexpr DetectorKind kA = DetectorKind::kAccrual;

INSTANTIATE_TEST_SUITE_P(
    Scripted, WaitFreeSweep,
    ::testing::Values(
        Sweep{"ring", 5, 1, 0, kS}, Sweep{"ring", 8, 2, 1, kS},
        Sweep{"ring", 12, 3, 3, kS}, Sweep{"ring", 24, 4, 5, kS},
        Sweep{"path", 7, 5, 1, kS}, Sweep{"path", 15, 6, 2, kS},
        Sweep{"clique", 4, 7, 0, kS}, Sweep{"clique", 6, 8, 2, kS},
        Sweep{"clique", 9, 9, 4, kS}, Sweep{"clique", 12, 10, 6, kS},
        Sweep{"star", 6, 11, 1, kS}, Sweep{"star", 12, 12, 2, kS},
        Sweep{"star", 16, 13, 1, kS},
        Sweep{"grid", 9, 14, 1, kS}, Sweep{"grid", 16, 15, 3, kS},
        Sweep{"grid", 25, 16, 4, kS},
        Sweep{"tree", 7, 17, 1, kS}, Sweep{"tree", 15, 18, 3, kS},
        Sweep{"random", 10, 19, 2, kS}, Sweep{"random", 14, 20, 3, kS},
        Sweep{"random", 20, 21, 5, kS}, Sweep{"random", 26, 22, 6, kS},
        Sweep{"hypercube", 8, 23, 1, kS}, Sweep{"hypercube", 16, 24, 3, kS},
        Sweep{"torus", 9, 25, 1, kS}, Sweep{"torus", 16, 26, 3, kS},
        Sweep{"bipartite", 8, 27, 2, kS}, Sweep{"bipartite", 14, 28, 3, kS}),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    Heartbeat, WaitFreeSweep,
    ::testing::Values(
        Sweep{"ring", 6, 31, 0, kH}, Sweep{"ring", 8, 32, 1, kH},
        Sweep{"ring", 12, 33, 2, kH},
        Sweep{"clique", 5, 34, 1, kH}, Sweep{"clique", 8, 35, 2, kH},
        Sweep{"star", 8, 36, 1, kH},
        Sweep{"grid", 9, 37, 1, kH}, Sweep{"grid", 16, 38, 2, kH},
        Sweep{"tree", 9, 39, 1, kH},
        Sweep{"random", 12, 40, 2, kH}),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    PingPong, WaitFreeSweep,
    ::testing::Values(
        Sweep{"ring", 6, 61, 0, kP}, Sweep{"ring", 10, 62, 1, kP},
        Sweep{"clique", 6, 63, 1, kP}, Sweep{"star", 8, 64, 1, kP},
        Sweep{"grid", 9, 65, 1, kP}, Sweep{"random", 12, 66, 2, kP}),
    sweep_name);

INSTANTIATE_TEST_SUITE_P(
    Accrual, WaitFreeSweep,
    ::testing::Values(
        Sweep{"ring", 6, 81, 0, kA}, Sweep{"ring", 10, 82, 1, kA},
        Sweep{"clique", 6, 83, 1, kA}, Sweep{"grid", 9, 84, 1, kA},
        Sweep{"random", 12, 85, 2, kA}),
    sweep_name);

// --- fairness stress: adversarial hunger against Theorem 3 --------------

struct FairSweep {
  const char* topology;
  std::size_t n;
  std::uint64_t seed;
};

class FairnessSweep : public ::testing::TestWithParam<FairSweep> {};

TEST_P(FairnessSweep, TwoBoundedWaitingUnderSaturation) {
  const auto& [topology, n, seed] = GetParam();
  Config cfg;
  cfg.seed = seed;
  cfg.topology = topology;
  cfg.n = n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.fp_count = 3 * n;
  cfg.fp_until = 10'000;
  // Saturation: everyone becomes hungry again almost instantly; long
  // meals maximize the overtaking opportunity.
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 5;
  cfg.harness.eat_lo = 40;
  cfg.harness.eat_hi = 100;
  cfg.run_for = 120'000;
  Scenario s(cfg);
  s.run();
  const Time converged = s.fd_convergence_estimate();
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), converged), 2);
  // The saturation adversary really did create contention:
  EXPECT_GT(s.trace().count(TraceEventKind::kStartEating), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Saturation, FairnessSweep,
    ::testing::Values(FairSweep{"ring", 8, 51}, FairSweep{"ring", 16, 52},
                      FairSweep{"path", 9, 53}, FairSweep{"clique", 6, 54},
                      FairSweep{"star", 10, 55}, FairSweep{"grid", 9, 56},
                      FairSweep{"tree", 11, 57}, FairSweep{"random", 12, 58}),
    [](const ::testing::TestParamInfo<FairSweep>& info) {
      return std::string(info.param.topology) + "_n" + std::to_string(info.param.n) +
             "_s" + std::to_string(info.param.seed);
    });

}  // namespace
