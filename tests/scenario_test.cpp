// Scenario-builder tests: the declarative Config → execution wiring used
// by every bench and example.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace {

using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;

TEST(Scenario, BuildsRequestedTopologyAndSize) {
  Config cfg;
  cfg.topology = "clique";
  cfg.n = 7;
  Scenario s(cfg);
  EXPECT_EQ(s.graph().size(), 7u);
  EXPECT_EQ(s.graph().num_edges(), 21u);
  EXPECT_EQ(s.sim().num_processes(), 7u);
}

TEST(Scenario, ColoringIsProper) {
  Config cfg;
  cfg.topology = "random";
  cfg.n = 15;
  Scenario s(cfg);
  EXPECT_TRUE(ekbd::graph::is_proper(s.graph(), s.colors()));
}

TEST(Scenario, EveryAlgorithmRunsEverywhere) {
  for (auto algo : {Algorithm::kWaitFree, Algorithm::kChoySingh,
                    Algorithm::kChoySinghSingleAck, Algorithm::kHierarchical,
                    Algorithm::kChandyMisra}) {
    Config cfg;
    cfg.algorithm = algo;
    cfg.detector = DetectorKind::kNever;
    cfg.partial_synchrony = false;
    cfg.topology = "ring";
    cfg.n = 5;
    cfg.run_for = 15'000;
    Scenario s(cfg);
    s.run();
    EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u)
        << ekbd::scenario::to_string(algo);
  }
}

TEST(Scenario, WaitFreeDinerAccessorTypechecks) {
  Config cfg;
  cfg.algorithm = Algorithm::kWaitFree;
  Scenario s(cfg);
  EXPECT_NE(s.wait_free_diner(0), nullptr);

  Config cfg2;
  cfg2.algorithm = Algorithm::kChandyMisra;
  Scenario s2(cfg2);
  EXPECT_EQ(s2.wait_free_diner(0), nullptr);  // not a WaitFreeDiner
}

TEST(Scenario, ScriptedDetectorExposedWhenSelected) {
  Config cfg;
  cfg.detector = DetectorKind::kScripted;
  Scenario s(cfg);
  EXPECT_NE(s.scripted_detector(), nullptr);
  EXPECT_EQ(s.heartbeat_detector(), nullptr);
}

TEST(Scenario, HeartbeatDetectorExposedWhenSelected) {
  Config cfg;
  cfg.detector = DetectorKind::kHeartbeat;
  Scenario s(cfg);
  EXPECT_NE(s.heartbeat_detector(), nullptr);
  EXPECT_EQ(s.scripted_detector(), nullptr);
}

TEST(Scenario, CrashPlanExecutes) {
  Config cfg;
  cfg.topology = "ring";
  cfg.n = 5;
  cfg.crashes = {{2, 1'000}, {4, 2'000}};
  cfg.run_for = 5'000;
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.sim().crashed(2));
  EXPECT_TRUE(s.sim().crashed(4));
  EXPECT_FALSE(s.sim().crashed(0));
  EXPECT_EQ(s.sim().crash_time(2), 1'000);
  auto ct = s.harness().crash_times();
  EXPECT_EQ(ct[2], 1'000);
  EXPECT_EQ(ct[0], -1);
}

TEST(Scenario, FdConvergenceEstimateForTrivialDetectors) {
  Config cfg;
  cfg.detector = DetectorKind::kPerfect;
  Scenario s(cfg);
  EXPECT_EQ(s.fd_convergence_estimate(), 0);
}

TEST(Scenario, FalsePositiveGenerationRespectsWindow) {
  Config cfg;
  cfg.detector = DetectorKind::kScripted;
  cfg.fp_count = 25;
  cfg.fp_until = 3'000;
  cfg.fp_len_lo = 10;
  cfg.fp_len_hi = 100;
  Scenario s(cfg);
  EXPECT_LE(s.scripted_detector()->last_false_positive_end(), 3'000 + 100);
  EXPECT_GT(s.scripted_detector()->last_false_positive_end(), 0);
}

TEST(Scenario, IncrementalDriving) {
  Config cfg;
  cfg.topology = "ring";
  cfg.n = 5;
  Scenario s(cfg);
  s.run_until(1'000);
  auto count1 = s.trace().size();
  s.run_until(10'000);
  EXPECT_GT(s.trace().size(), count1);
}

TEST(Scenario, AlgorithmNamesRoundTrip) {
  EXPECT_EQ(ekbd::scenario::to_string(Algorithm::kWaitFree), "waitfree(Alg.1)");
  EXPECT_EQ(ekbd::scenario::to_string(Algorithm::kChandyMisra), "chandy-misra");
  EXPECT_EQ(ekbd::scenario::to_string(DetectorKind::kHeartbeat), "heartbeat-<>P1");
}

}  // namespace
