// Parallel exploration + sleep-set reduction tests.
//
// The engine's contract (docs/MODELCHECK.md): for a fixed factory and
// options, `Result` is bit-identical for ANY thread count — the search
// tree's shape is a pure function of the options, counters are node-local
// sums over it, and the lexicographically-least counterexample wins the
// merge. Sleep sets shrink the tree without losing violations. These
// tests pin all of that down, plus the counterexample replay round-trip
// the stateless prefix-replay machinery depends on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "fd/scripted.hpp"
#include "mc/explorer.hpp"
#include "mc/sleep_sets.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::core::WaitFreeDiner;
using ekbd::fd::ScriptedDetector;
using ekbd::mc::Options;
using ekbd::mc::ReplayOutcome;
using ekbd::mc::Result;
using ekbd::mc::World;
using ekbd::sim::ExecMode;
using ekbd::sim::PendingEvent;
using ekbd::sim::ProcessId;
using ekbd::sim::Simulator;

/// Two wait-free diners on one edge, both hungry from the start, meal
/// endings as adversarial choice events (a trimmed copy of mc_test's
/// EdgeWorld — crash-free, truthful oracle).
class DinerEdgeWorld : public World {
 public:
  DinerEdgeWorld()
      : sim_(1, ekbd::sim::make_fixed_delay(1), ExecMode::kControlled), det_(sim_, 0) {
    hi_ = sim_.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1, std::vector<int>{0},
                                         det_);
    lo_ = sim_.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0}, 0, std::vector<int>{1},
                                         det_);
    for (WaitFreeDiner* d : {hi_, lo_}) {
      d->set_event_callback([this](ekbd::dining::Diner& diner,
                                   ekbd::dining::TraceEventKind kind) {
        if (kind == ekbd::dining::TraceEventKind::kStartEating) {
          auto* wd = static_cast<WaitFreeDiner*>(&diner);
          ++meals_[wd == hi_ ? 0 : 1];
          sim_.schedule(sim_.now(), [wd] {
            if (wd->eating()) wd->finish_eating();
          });
        }
      });
    }
    sim_.start();
    hi_->become_hungry();
    lo_->become_hungry();
  }

  Simulator& simulator() override { return sim_; }

  std::string check() override {
    if (hi_->holds_fork(1) && lo_->holds_fork(0)) return "fork duplicated";
    if (hi_->holds_token(1) && lo_->holds_token(0)) return "token duplicated";
    if (hi_->eating() && lo_->eating()) return "neighbors eating simultaneously";
    return "";
  }

  bool done() override {
    return meals_[0] >= 1 && meals_[1] >= 1 && hi_->thinking() && lo_->thinking();
  }

 private:
  Simulator sim_;
  ScriptedDetector det_;
  WaitFreeDiner* hi_ = nullptr;
  WaitFreeDiner* lo_ = nullptr;
  int meals_[2] = {0, 0};
};

/// One sender, two receivers, two messages per channel. The two channels
/// are fully independent (distinct recipients), so sleep sets collapse
/// most of the C(4,2)=6 interleavings. `boom_at` > 0 plants a violation
/// at any state with that many delivered events — order-insensitive, so
/// the seeded bug survives commutation and MUST be found by the reduced
/// search too.
class TwoChannelWorld : public World {
 public:
  explicit TwoChannelWorld(int boom_at = 0) : sim_(1, nullptr, ExecMode::kControlled),
                                              boom_at_(boom_at) {
    struct Echo : ekbd::sim::Actor {
      void on_message(const ekbd::sim::Message&) override {}
      using Actor::send;
    };
    auto* s = sim_.make_actor<Echo>();
    sim_.make_actor<Echo>();
    sim_.make_actor<Echo>();
    sim_.start();
    for (int i = 0; i < 2; ++i) s->send(1, i, ekbd::sim::MsgLayer::kOther);
    for (int i = 0; i < 2; ++i) s->send(2, i, ekbd::sim::MsgLayer::kOther);
  }

  Simulator& simulator() override { return sim_; }
  std::string check() override {
    if (boom_at_ > 0 && sim_.events_processed() >= static_cast<std::uint64_t>(boom_at_)) {
      return "boom";
    }
    return "";
  }
  bool done() override { return true; }

 private:
  Simulator sim_;
  int boom_at_;
};

void expect_identical(const Result& a, const Result& b, const std::string& label) {
  EXPECT_EQ(a.nodes_executed, b.nodes_executed) << label;
  EXPECT_EQ(a.replayed_events, b.replayed_events) << label;
  EXPECT_EQ(a.paths_completed, b.paths_completed) << label;
  EXPECT_EQ(a.paths_truncated, b.paths_truncated) << label;
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned) << label;
  EXPECT_EQ(a.max_depth_seen, b.max_depth_seen) << label;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << label;
  EXPECT_EQ(a.violation_found, b.violation_found) << label;
  EXPECT_EQ(a.violation, b.violation) << label;
  EXPECT_EQ(a.counterexample, b.counterexample) << label;
}

TEST(ParallelMC, DfsResultIdenticalFor1And2And8Threads) {
  Options opt;
  opt.include_timers = false;
  opt.max_depth = 60;
  opt.max_nodes = 20'000'000;
  auto factory = [] { return std::make_unique<DinerEdgeWorld>(); };

  opt.threads = 1;
  const Result r1 = ekbd::mc::explore(factory, opt);
  EXPECT_TRUE(r1.ok()) << r1.violation;
  EXPECT_GT(r1.paths_completed, 0u);
  EXPECT_FALSE(r1.budget_exhausted);

  opt.threads = 2;
  const Result r2 = ekbd::mc::explore(factory, opt);
  opt.threads = 8;
  const Result r8 = ekbd::mc::explore(factory, opt);
  expect_identical(r1, r2, "1 vs 2 threads");
  expect_identical(r1, r8, "1 vs 8 threads");
}

TEST(ParallelMC, SleepSetResultIdenticalAcrossThreadCountsAndSmaller) {
  Options opt;
  opt.include_timers = false;
  opt.max_depth = 60;
  opt.max_nodes = 20'000'000;
  auto factory = [] { return std::make_unique<DinerEdgeWorld>(); };

  const Result full = ekbd::mc::explore(factory, opt);

  opt.sleep_sets = true;
  opt.threads = 1;
  const Result s1 = ekbd::mc::explore(factory, opt);
  opt.threads = 2;
  const Result s2 = ekbd::mc::explore(factory, opt);
  opt.threads = 8;
  const Result s8 = ekbd::mc::explore(factory, opt);

  expect_identical(s1, s2, "sleep sets, 1 vs 2 threads");
  expect_identical(s1, s8, "sleep sets, 1 vs 8 threads");

  // The reduction must preserve the verdict while visiting strictly less.
  EXPECT_TRUE(s1.ok()) << s1.violation;
  EXPECT_GT(s1.sleep_pruned, 0u);
  EXPECT_LT(s1.nodes_executed, full.nodes_executed);
  EXPECT_GT(s1.paths_completed, 0u);
}

/// One sender feeding two acking receivers: every delivery at a receiver
/// sends a reply to process 0, so the choice set keeps three channels
/// live and the tree reaches ~78k distinct steps — enough work that 8
/// workers genuinely contend for subtrees, unlike the edge world.
class AckStormWorld : public World {
 public:
  AckStormWorld() : sim_(1, nullptr, ExecMode::kControlled) {
    struct Echo : ekbd::sim::Actor {
      void on_message(const ekbd::sim::Message&) override {
        if (id() != 0) send(0, int{1}, ekbd::sim::MsgLayer::kOther);
      }
      using Actor::send;
    };
    auto* s = sim_.make_actor<Echo>();
    sim_.make_actor<Echo>();
    sim_.make_actor<Echo>();
    sim_.start();
    for (int i = 0; i < 3; ++i) {
      s->send(1, i, ekbd::sim::MsgLayer::kOther);
      s->send(2, i, ekbd::sim::MsgLayer::kOther);
    }
  }
  Simulator& simulator() override { return sim_; }
  std::string check() override { return ""; }
  bool done() override { return true; }

 private:
  Simulator sim_;
};

TEST(ParallelMC, ContendedDfsParityAcrossThreadCounts) {
  Options opt;
  opt.max_depth = 16;
  opt.max_nodes = 5'000'000;
  auto factory = [] { return std::make_unique<AckStormWorld>(); };

  opt.threads = 1;
  const Result r1 = ekbd::mc::explore(factory, opt);
  EXPECT_TRUE(r1.ok()) << r1.violation;
  EXPECT_GT(r1.nodes_executed, 50'000u);  // big enough to shard for real
  EXPECT_FALSE(r1.budget_exhausted);

  opt.threads = 8;
  const Result r8 = ekbd::mc::explore(factory, opt);
  expect_identical(r1, r8, "ack storm, 1 vs 8 threads");

  opt.sleep_sets = true;
  opt.threads = 1;
  const Result s1 = ekbd::mc::explore(factory, opt);
  opt.threads = 8;
  const Result s8 = ekbd::mc::explore(factory, opt);
  expect_identical(s1, s8, "ack storm + sleep sets, 1 vs 8 threads");
  EXPECT_TRUE(s1.ok()) << s1.violation;
  EXPECT_LT(s1.nodes_executed, r1.nodes_executed / 10);
}

TEST(ParallelMC, RandomWalkShardsIdenticalAcrossThreadCounts) {
  Options opt;
  opt.include_timers = false;
  opt.max_depth = 60;
  opt.random_walks = 500;
  opt.seed = 42;
  auto factory = [] { return std::make_unique<DinerEdgeWorld>(); };

  opt.threads = 1;
  const Result r1 = ekbd::mc::explore(factory, opt);
  opt.threads = 8;
  const Result r8 = ekbd::mc::explore(factory, opt);
  EXPECT_TRUE(r1.ok()) << r1.violation;
  EXPECT_GT(r1.paths_completed, 0u);
  expect_identical(r1, r8, "walks, 1 vs 8 threads");
}

TEST(ParallelMC, SleepSetFindsSeededViolationWithFewerNodes) {
  // Violation at "all four delivered" — present on every complete
  // schedule, so commuting deliveries cannot hide it.
  auto factory = [] { return std::make_unique<TwoChannelWorld>(4); };
  Options opt;
  opt.max_depth = 10;

  const Result full = ekbd::mc::explore(factory, opt);
  opt.sleep_sets = true;
  const Result reduced = ekbd::mc::explore(factory, opt);

  ASSERT_TRUE(full.violation_found);
  ASSERT_TRUE(reduced.violation_found);
  EXPECT_EQ(full.violation, "boom");
  EXPECT_EQ(reduced.violation, full.violation);
  // The canonical (leftmost, id-ordered) schedule carries an empty sleep
  // set, so the lexicographically-least counterexample survives reduction.
  EXPECT_EQ(reduced.counterexample, full.counterexample);
  EXPECT_EQ(full.counterexample.size(), 4u);
  EXPECT_LT(reduced.nodes_executed, full.nodes_executed);
  EXPECT_GT(reduced.sleep_pruned, 0u);
}

TEST(ParallelMC, SleepSetCleanWorldVisitsEveryFinalState) {
  // Sanity for the "all reachable states still visited" claim: with no
  // violation planted, both searches complete schedules and agree there
  // is nothing to find, while the reduced tree is strictly smaller.
  auto factory = [] { return std::make_unique<TwoChannelWorld>(); };
  Options opt;
  opt.max_depth = 10;
  const Result full = ekbd::mc::explore(factory, opt);
  opt.sleep_sets = true;
  const Result reduced = ekbd::mc::explore(factory, opt);
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(reduced.ok());
  EXPECT_GT(full.paths_completed, reduced.paths_completed);
  EXPECT_GT(reduced.paths_completed, 0u);
  EXPECT_LT(reduced.nodes_executed, full.nodes_executed);
}

TEST(ParallelMC, CounterexampleReplayRoundTripInvariantViolation) {
  auto factory = [] { return std::make_unique<TwoChannelWorld>(3); };
  Options opt;
  opt.max_depth = 10;
  const Result r = ekbd::mc::explore(factory, opt);
  ASSERT_TRUE(r.violation_found);
  ASSERT_EQ(r.counterexample.size(), 3u);

  const ReplayOutcome replay = ekbd::mc::replay_counterexample(factory, r.counterexample, opt);
  EXPECT_TRUE(replay.valid);
  EXPECT_TRUE(replay.reproduced(r.violation, r.counterexample.size()))
      << "replayed violation: '" << replay.violation << "' after " << replay.fired
      << " events, expected '" << r.violation << "'";
}

TEST(ParallelMC, CounterexampleReplayRoundTripDeadlock) {
  class StuckWorld : public World {
   public:
    StuckWorld() : sim_(1, nullptr, ExecMode::kControlled) { sim_.start(); }
    Simulator& simulator() override { return sim_; }
    std::string check() override { return ""; }
    bool done() override { return false; }

   private:
    Simulator sim_;
  };
  auto factory = [] { return std::make_unique<StuckWorld>(); };
  const Result r = ekbd::mc::explore(factory, Options{});
  ASSERT_TRUE(r.violation_found);
  const ReplayOutcome replay = ekbd::mc::replay_counterexample(factory, r.counterexample);
  EXPECT_TRUE(replay.reproduced(r.violation, r.counterexample.size()));
}

TEST(ParallelMC, ReplayRejectsIllegalPath) {
  auto factory = [] { return std::make_unique<TwoChannelWorld>(); };
  // Event 1 is behind event 0 on the same FIFO channel: illegal first.
  const ReplayOutcome replay = ekbd::mc::replay_counterexample(factory, {1, 0});
  EXPECT_FALSE(replay.valid);
  EXPECT_EQ(replay.fired, 0u);
}

TEST(ParallelMC, IndependenceOracle) {
  auto msg = [](std::uint64_t id, ProcessId from, ProcessId to) {
    PendingEvent ev;
    ev.id = id;
    ev.kind = PendingEvent::Kind::kMessage;
    ev.from = from;
    ev.to = to;
    return ev;
  };
  // Distinct recipients commute — including crossing messages on an edge.
  EXPECT_TRUE(ekbd::mc::independent(msg(1, 0, 1), msg(2, 0, 2)));
  EXPECT_TRUE(ekbd::mc::independent(msg(1, 0, 1), msg(2, 1, 0)));
  // Same recipient: dependent (delivery order reaches one handler).
  EXPECT_FALSE(ekbd::mc::independent(msg(1, 0, 2), msg(2, 1, 2)));
  // Same channel FIFO pair: dependent.
  EXPECT_FALSE(ekbd::mc::independent(msg(1, 0, 1), msg(2, 0, 1)));
  // Timers and scheduled callbacks never commute with anything.
  PendingEvent timer;
  timer.id = 3;
  timer.kind = PendingEvent::Kind::kTimer;
  timer.owner = 5;
  EXPECT_FALSE(ekbd::mc::independent(timer, msg(1, 0, 1)));
  PendingEvent sched;
  sched.id = 4;
  sched.kind = PendingEvent::Kind::kScheduled;
  EXPECT_FALSE(ekbd::mc::independent(sched, msg(1, 0, 1)));
  EXPECT_FALSE(ekbd::mc::independent(sched, timer));
}

TEST(ParallelMC, ChannelKeysExposedOnPendingEvents) {
  TwoChannelWorld world;
  const auto eligible = world.simulator().eligible_events();
  ASSERT_EQ(eligible.size(), 2u);  // one FIFO head per channel
  EXPECT_NE(eligible[0].channel(), eligible[1].channel());
  EXPECT_EQ(eligible[0].channel(), PendingEvent::channel_key(0, 1));
  EXPECT_EQ(eligible[1].channel(), PendingEvent::channel_key(0, 2));
  EXPECT_EQ(eligible[0].channel_rank, 0u);
  EXPECT_EQ(eligible[1].channel_rank, 0u);
}

}  // namespace
