// Necessity probes: demonstrate that each half of ◇P₁'s contract is
// load-bearing (the companion result [21] proves ◇P is the weakest
// detector for wait-free eventually-fair daemons; here we show Algorithm 1
// degrades in exactly the predicted way when either half is removed).
#include <gtest/gtest.h>

#include "dining/checkers.hpp"
#include "fd/lossy.hpp"
#include "scenario/scenario.hpp"

namespace {

using ekbd::scenario::Algorithm;
using ekbd::scenario::Config;
using ekbd::scenario::DetectorKind;
using ekbd::scenario::Scenario;

Config base() {
  Config cfg;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 50;
  cfg.run_for = 80'000;
  return cfg;
}

TEST(LossyWrappers, BlindAndPoisonOverrideInner) {
  ekbd::fd::NeverSuspect never;
  ekbd::fd::InaccurateDetector poisoned(never);
  poisoned.poison(0, 1);
  EXPECT_TRUE(poisoned.suspects(0, 1));
  EXPECT_FALSE(poisoned.suspects(1, 0));

  ekbd::fd::IncompleteDetector blinded(poisoned);
  blinded.blind(0, 1);
  EXPECT_FALSE(blinded.suspects(0, 1));  // the hole wins
}

TEST(Necessity, CompletenessHoleCascadesStarvation) {
  // p2 crashes; p1 alone is blind to it. p1 waits for p2's ack forever —
  // and, because a continuously hungry process grants each neighbor only
  // one ack per session, p1's endless session eventually stops feeding
  // p0, whose endless session stops feeding p5, and so on: ONE blind
  // edge starves the whole ring through the doorway. (This is why Local
  // Strong Completeness is stated for *all* correct neighbors.)
  Config cfg = base();
  cfg.run_for = 160'000;
  cfg.crashes = {{2, 8'000}};
  cfg.blind_pairs = {{1, 2}};
  Scenario s(cfg);
  s.run();
  auto wf = s.wait_freedom(40'000);
  EXPECT_FALSE(wf.wait_free());
  bool p1_starves = false;
  for (auto p : wf.starving) p1_starves |= (p == 1);
  EXPECT_TRUE(p1_starves) << "the blinded process itself must starve";
  // The cascade: at least one process that can see p2 perfectly well
  // starves anyway.
  EXPECT_GE(wf.starving.size(), 2u);
}

TEST(Necessity, ControlWithoutHoleIsWaitFree) {
  Config cfg = base();
  cfg.crashes = {{2, 8'000}};
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
}

TEST(Necessity, PermanentMutualFalsePositiveBreaksEventualExclusion) {
  // p0 and p1 (neighbors) suspect each other forever: both bypass acks
  // and forks for that edge, so they keep eating simultaneously — ◇WX
  // never stabilizes (violations arbitrarily late in the run).
  Config cfg = base();
  cfg.poison_pairs = {{0, 1}, {1, 0}};
  Scenario s(cfg);
  s.run();
  auto ex = s.exclusion();
  EXPECT_GT(ex.violations.size(), 10u);
  // Violations persist into the last 20% of the run.
  EXPECT_GT(ex.last_violation(), cfg.run_for * 8 / 10);
  // And they are all on the poisoned edge.
  for (const auto& v : ex.violations) {
    EXPECT_TRUE((v.a == 0 && v.b == 1) || (v.a == 1 && v.b == 0));
  }
}

TEST(Necessity, OneSidedPermanentFalsePositiveIsSurvivable) {
  // Only p0 permanently suspects p1 (not vice versa). p0 can barge past
  // p1's ack/fork, so safety mistakes on edge (0,1) can persist; but
  // nobody starves: progress is preserved.
  Config cfg = base();
  cfg.poison_pairs = {{0, 1}};
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.wait_freedom(20'000).wait_free());
}

TEST(Necessity, OneSidedPoisonIsContainedByOtherDoorways) {
  // Remarkably, ONE permanently poisoned edge does not blow the fairness
  // bound: p0 skips p1's ack, but still needs its other neighbor's ack
  // per doorway entry, and that neighbor's budget throttles p0 like
  // everyone else. The doorway is robust to a single lying edge.
  Config cfg = base();
  cfg.poison_pairs = {{0, 1}};
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 8;
  cfg.harness.eat_lo = 40;
  cfg.harness.eat_hi = 100;
  cfg.run_for = 200'000;
  Scenario s(cfg);
  s.run();
  EXPECT_LE(ekbd::dining::max_overtakes(s.census(), cfg.run_for / 2), 3);
}

TEST(Necessity, FullyPoisonedProcessPermanentlyViolatesTwoBound) {
  // If accuracy fails on EVERY edge of p0 (it permanently suspects both
  // ring neighbors), p0 needs no acks and no forks: it eats ~3x as often
  // as anyone else and keeps overtaking its hungry neighbors 3-5 times
  // per session FOREVER — "eventual" 2-bounded waiting never establishes.
  Config cfg = base();
  cfg.poison_pairs = {{0, 1}, {0, 5}};
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 8;
  cfg.harness.eat_lo = 40;
  cfg.harness.eat_hi = 100;
  cfg.run_for = 200'000;
  Scenario s(cfg);
  s.run();
  auto census = s.census();
  // Still violated in the second half of the run...
  EXPECT_GT(ekbd::dining::max_overtakes(census, cfg.run_for / 2), 2);
  // ...and in fact violations never stop: the measured establishment
  // point of the 2-bound sits in the final stretch of the run.
  EXPECT_GT(ekbd::dining::k_bound_establishment(census, 2), cfg.run_for * 9 / 10);
  // The glutton out-eats its victims by a wide margin.
  const auto meals0 = s.trace().count(ekbd::dining::TraceEventKind::kStartEating, 0);
  const auto meals1 = s.trace().count(ekbd::dining::TraceEventKind::kStartEating, 1);
  EXPECT_GT(meals0, 2 * meals1);
}

}  // namespace
