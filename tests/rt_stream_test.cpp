// Tests for the segmented streaming recorder (src/rt/recorder.hpp,
// rt/segment.hpp, rt/log_io merge_segments): mode/shard-count equivalence,
// merged-book structural invariants, stream stats accounting, shedding,
// and the live telemetry snapshot loop.
//
// "Equivalence" here is the strongest thing a wall-clock-concurrent run
// can promise: two runs of the same seed schedule differently, so the
// comparison is not byte equality of books across runs — it is that EVERY
// run, direct or streaming, any shard count, produces books that (a) the
// online monitors and post-hoc checkers agree on, (b) replay reproduces
// exactly, and (c) satisfy the structural invariants a single-mutex
// linearization guarantees (time-ordered log, unique send seqs, no
// delivery before its send).
//
// All tests carry the ctest label `rtstream`; CI runs them under TSan and
// ASan+UBSan (the collector/producer handoff is the point).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/monitors.hpp"
#include "rt/recorder.hpp"
#include "rt/replay.hpp"
#include "rt/runtime.hpp"
#include "scenario/rt_scenario.hpp"
#include "sim/event_log.hpp"

namespace {

using ekbd::sim::LoggedEvent;
using ekbd::sim::Time;

ekbd::scenario::Config stream_config(std::uint64_t seed) {
  ekbd::scenario::Config cfg;
  cfg.engine = ekbd::scenario::Engine::kRt;
  cfg.seed = seed;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
  cfg.detector = ekbd::scenario::DetectorKind::kHeartbeat;
  cfg.observability = true;
  cfg.rt_tick_ns = 100'000;
  cfg.run_for = 1'500;  // 0.15 s wall
  return cfg;
}

/// The full within-run verdict battery: monitors agree with the post-hoc
/// checkers and the network books, and replaying the recorded log + trace
/// into a fresh hub reproduces the live verdicts exactly.
void expect_books_coherent(ekbd::scenario::RtScenario& s, const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_NE(s.event_log(), nullptr);
  EXPECT_EQ(s.monitor_agreement(), "");
  EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);

  ekbd::obs::MonitorHub replayed(s.graph());
  ekbd::rt::replay(*s.event_log(), s.trace(), replayed);
  EXPECT_EQ(replayed.to_json(), s.monitors()->to_json())
      << "replay disagrees with the live monitors";
  EXPECT_EQ(replayed.agreement_failures(s.trace(), s.graph(), s.recorder().network()),
            "");
}

/// Structural invariants of a valid linearization, checked on the merged
/// streaming books: nondecreasing timestamps, globally unique kSend seqs,
/// and no delivery/drop of a seq before its send.
void expect_log_well_formed(const ekbd::sim::EventLog& log) {
  Time prev = -1;
  std::set<std::uint64_t> sends;
  std::uint64_t n_sends = 0;
  for (const LoggedEvent& ev : log.events()) {
    EXPECT_GE(ev.at, prev) << "merged log went back in time";
    prev = ev.at;
    switch (ev.kind) {
      case LoggedEvent::Kind::kSend:
      case LoggedEvent::Kind::kDuplicate:
        // A duplicate is stamped as its own in-flight message with a
        // fresh seq — an origin event, exactly like a send.
        ++n_sends;
        sends.insert(ev.seq);
        break;
      case LoggedEvent::Kind::kDeliver:
      case LoggedEvent::Kind::kDrop:
        // Every effect of a message merges after its send: the recorder's
        // (key, merge_class) order makes a same-instant deliver-before-
        // send impossible.
        EXPECT_EQ(sends.count(ev.seq), 1u)
            << "seq " << ev.seq << " delivered/dropped before its send";
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(sends.size(), n_sends)
      << "duplicate origin (kSend/kDuplicate) seqs in the merged log";
}

void expect_trace_well_formed(const ekbd::dining::Trace& trace) {
  Time prev = -1;
  for (const ekbd::dining::TraceEvent& ev : trace.events()) {
    EXPECT_GE(ev.at, prev) << "merged trace went back in time";
    prev = ev.at;
  }
}

// ----------------------------------------------------------- equivalence

// Same config across the recorder's modes and shard layouts: direct
// (single-mutex), streaming with 1 shard, 2 shards, one-per-core, and
// thread-per-actor. Every run must pass the full verdict battery and the
// structural invariants.
TEST(RtStreamEquivalence, ModesAndShardCountsAllAgree) {
  struct Layout {
    const char* name;
    bool segmented;
    std::size_t shards;
  };
  const Layout layouts[] = {
      {"direct", false, 0},         {"stream/1", true, 1}, {"stream/2", true, 2},
      {"stream/cores", true, 0},    {"stream/n", true, 8},
  };
  for (const Layout& l : layouts) {
    ekbd::scenario::Config cfg = stream_config(7001);
    cfg.rt_segmented_recorder = l.segmented;
    cfg.rt_shards = l.shards;
    cfg.net_mode = ekbd::scenario::NetMode::kLossy;
    cfg.crashes = {{3, 700}};
    ekbd::scenario::RtScenario s(cfg);
    s.run();
    expect_books_coherent(s, l.name);
    expect_log_well_formed(*s.event_log());
    expect_trace_well_formed(s.trace());
  }
}

// The direct path must be bit-for-bit the old recorder: no collector, no
// stream stats, same verdict battery.
TEST(RtStreamEquivalence, DirectModeHasNoStream) {
  ekbd::scenario::Config cfg = stream_config(7002);
  cfg.rt_segmented_recorder = false;
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  EXPECT_FALSE(s.recorder().streaming());
  const ekbd::rt::StreamStats ss = s.recorder().stream_stats();
  EXPECT_EQ(ss.collect_passes, 0u);
  EXPECT_EQ(ss.merged_events, 0u);
  EXPECT_EQ(ss.dropped_records, 0u);
  expect_books_coherent(s, "direct");
}

// --------------------------------------------------------------- accounting

// Uncapped streaming run: the collector's merged-event count must equal
// what actually landed in the books — nothing lost, nothing invented.
TEST(RtStreamStats, MergedCountsMatchBooks) {
  ekbd::scenario::Config cfg = stream_config(7003);
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  EXPECT_FALSE(s.recorder().streaming()) << "end_stream must have run at join";
  const ekbd::rt::StreamStats ss = s.recorder().stream_stats();
  EXPECT_GT(ss.collect_passes, 0u);
  EXPECT_EQ(ss.dropped_records, 0u);
  EXPECT_EQ(ss.dropped_windows, 0u);
  EXPECT_EQ(ss.merged_events, s.event_log()->size());
  EXPECT_EQ(ss.merged_trace_events, s.trace().events().size());
  expect_books_coherent(s, "uncapped stream");
}

// A pending cap must shed (drop-newest, like EventLog capacity) and
// account for every refused record. Deterministic setup: bind this thread
// to worker segment 0 and leave worker segment 1 forever silent — its
// watermark pins the merge horizon at zero, so every append stays pending,
// the backlog crosses the cap, and the next collector pass arms shedding.
// Shedding forfeits exact agreement by design, so only the accounting is
// asserted: every append is either merged (by the final drain) or counted
// as dropped, never silently lost.
TEST(RtStreamStats, PendingCapShedsAndCounts) {
  ekbd::rt::Recorder rec;
  ekbd::rt::Recorder::StreamOptions opts;
  opts.segments = 2;
  opts.window_ns = 1'000'000;  // 1 ms passes: frequent chances to arm
  opts.pending_cap = 4;
  rec.begin_stream(opts);
  rec.bind_segment(0);

  std::uint64_t appended = 0;
  Time tick = 0;
  const auto hungry = ekbd::dining::TraceEventKind::kBecameHungry;
  for (int i = 0; i < 8; ++i) {  // cross the cap before any pass
    rec.on_trace(0, ++tick, hungry);
    ++appended;
  }
  bool shed = false;
  for (int i = 0; i < 2000 && !shed; ++i) {  // bounded: arms within ~2 passes
    rec.on_trace(0, ++tick, hungry);
    ++appended;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    shed = rec.stream_stats().dropped_records > 0;
  }
  EXPECT_TRUE(shed) << "backlog past the cap never armed shedding";

  rec.end_stream();
  const ekbd::rt::StreamStats ss = rec.stream_stats();
  EXPECT_GT(ss.collect_passes, 0u);
  EXPECT_GT(ss.dropped_records, 0u);
  EXPECT_GT(ss.dropped_windows, 0u)
      << "records shed without a shedding window being counted";
  EXPECT_EQ(ss.merged_trace_events + ss.dropped_records, appended)
      << "an append was neither merged nor counted as dropped";
}

// Capped EventLog under streaming: resident log memory is bounded, drops
// are counted, and the books that stay exact (trace, network) still pass
// the checkers. (Replay needs the full log, so it is out of scope here.)
TEST(RtStreamStats, CappedEventLogStaysBounded) {
  ekbd::scenario::Config cfg = stream_config(7007);
  cfg.rt_event_log_cap = 200;
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  EXPECT_LE(s.event_log()->size(), 200u);
  EXPECT_TRUE(s.event_log()->truncated());
  EXPECT_GT(s.event_log()->dropped(), 0u);
  EXPECT_GT(s.trace().count(ekbd::dining::TraceEventKind::kStartEating), 0u);
  // Monitors consumed the full stream (they ride the sink, not the log),
  // so they must still agree with the post-hoc checkers, which read the
  // uncapped trace + network books. (Zero violations is NOT asserted:
  // pre-convergence exclusion violations are legitimate under a slow
  // heartbeat detector — e.g. under TSan — and ◇WX only promises they
  // stop.)
  EXPECT_EQ(s.monitor_agreement(), "");
}

// ------------------------------------------------------------- telemetry

// The live snapshot loop: periodic JSONL lines land in the file while the
// run is still going, counter samples accumulate, and the final line
// carries the exact post-join totals.
TEST(RtStreamTelemetry, LiveSnapshotsAndCounterSamples) {
  const std::string path = ::testing::TempDir() + "/rtstream_telemetry.jsonl";
  ekbd::scenario::Config cfg = stream_config(7008);
  cfg.run_for = 2'000;
  cfg.rt_telemetry_interval = 500;
  cfg.rt_telemetry_path = path;
  ekbd::scenario::RtScenario s(cfg);
  s.run();

  // At least interval boundaries 500/1000/1500 plus the final snapshot.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::size_t lines = 0;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++lines;
    EXPECT_EQ(buf[0], '{');
    EXPECT_NE(std::string(buf).find("\"shards\""), std::string::npos);
    EXPECT_NE(std::string(buf).find("\"latency\""), std::string::npos);
    EXPECT_NE(std::string(buf).find("\"stream\""), std::string::npos);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_GE(lines, 4u);

  EXPECT_FALSE(s.counter_samples().empty());
  bool saw_latency = false, saw_shard = false;
  for (const auto& c : s.counter_samples()) {
    if (c.track == "latency/p99") saw_latency = true;
    if (c.track == "shard0/dispatches") saw_shard = true;
  }
  EXPECT_TRUE(saw_latency);
  EXPECT_TRUE(saw_shard);

  // And the scenario's one-line telemetry carries the new sections.
  const std::string tj = s.telemetry_json();
  EXPECT_NE(tj.find("\"latency\""), std::string::npos);
  EXPECT_NE(tj.find("\"p999\""), std::string::npos);
  EXPECT_NE(tj.find("\"stream\""), std::string::npos);
}

// hungry→eat latency histogram: every completed hungry session of the run
// is one sample, quantiles are monotone, and the striped collection
// merges into a single coherent snapshot.
TEST(RtStreamTelemetry, LatencyHistogramMatchesTrace) {
  ekbd::scenario::Config cfg = stream_config(7009);
  ekbd::scenario::RtScenario s(cfg);
  s.run();
  ASSERT_TRUE(s.driver().latency_enabled());
  const ekbd::obs::Histogram lat = s.driver().latency_histogram();
  // One sample per kStartEating with an open hungry session; every start
  // here follows a kBecameHungry, so the counts match exactly.
  EXPECT_EQ(lat.count(), s.trace().count(ekbd::dining::TraceEventKind::kStartEating));
  EXPECT_GT(lat.count(), 0u);
  EXPECT_LE(lat.quantile(0.50), lat.quantile(0.99));
  EXPECT_LE(lat.quantile(0.99), lat.quantile(0.999));
}

}  // namespace
