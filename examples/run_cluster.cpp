// run_cluster — command-line front end to the multi-process socket engine.
//
// Spawns one OS process per philosopher (UDP loopback, src/netproc/),
// SIGKILLs the scheduled crash victims for real, injects/heals partitions
// at runtime over the control channel, then ships + merges the per-node
// Recorder logs and prints the property reports computed from the merged
// linearization — including the live-vs-replay monitor cross-check.
//
// Examples:
//   ./run_cluster --n 8 --drop 0.1 --crash 2@20000 --crash 5@30000
//   ./run_cluster --topology grid --n 9 --cut 0-1@10000:25000
//   ./run_cluster --n 6 --split 0x7@15000:30000 --json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/proc_scenario.hpp"

using namespace ekbd;
using scenario::Config;
using scenario::ProcScenario;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --topology NAME   ring|path|clique|star|grid|tree|random (default ring)\n"
      "  --n N             number of node processes (default 8)\n"
      "  --algorithm A     waitfree|choy-singh|choy-singh-1ack|hierarchical|\n"
      "                    chandy-misra (default waitfree)\n"
      "  --detector D      perfect|heartbeat|none (default perfect — the\n"
      "                    orchestrator's CrashNotice ground truth)\n"
      "  --seed S          RNG seed (default 1)\n"
      "  --run-for T       horizon in config ticks (default 50000)\n"
      "  --tick-ns NS      wall nanoseconds per config tick (default 100000)\n"
      "  --drop P          socket-boundary drop probability (default 0)\n"
      "  --dup P           socket-boundary duplicate probability (default 0)\n"
      "  --crash P@T       SIGKILL process P at tick T (repeatable)\n"
      "  --cut A-B@F:U     cut edge (A,B) from tick F until U (repeatable)\n"
      "  --split MASK@F:U  partition nodes in bitmask MASK from the rest\n"
      "                    (repeatable; MASK accepts 0x.. hex)\n"
      "  --acks M          ack budget per session (default 1; k = M+1)\n"
      "  --json            print the telemetry JSON line instead of a report\n",
      argv0);
  std::exit(2);
}

double parse_double(const char* s, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') usage(argv0);
  return v;
}

long long parse_ll(const char* s, const char* argv0) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 0);
  if (end == s || *end != '\0') usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.engine = scenario::Engine::kProc;
  cfg.detector = scenario::DetectorKind::kPerfect;
  cfg.net_mode = scenario::NetMode::kIdeal;
  cfg.link_faults = {};  // only the flags below inject faults
  bool json = false;

  auto need = [&](int i) {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--topology") == 0) {
      cfg.topology = need(i);
      ++i;
    } else if (std::strcmp(a, "--n") == 0) {
      cfg.n = static_cast<std::size_t>(parse_ll(need(i), argv[0]));
      ++i;
    } else if (std::strcmp(a, "--algorithm") == 0) {
      const std::string v = need(i);
      ++i;
      if (v == "waitfree") cfg.algorithm = scenario::Algorithm::kWaitFree;
      else if (v == "choy-singh") cfg.algorithm = scenario::Algorithm::kChoySingh;
      else if (v == "choy-singh-1ack") cfg.algorithm = scenario::Algorithm::kChoySinghSingleAck;
      else if (v == "hierarchical") cfg.algorithm = scenario::Algorithm::kHierarchical;
      else if (v == "chandy-misra") cfg.algorithm = scenario::Algorithm::kChandyMisra;
      else usage(argv[0]);
    } else if (std::strcmp(a, "--detector") == 0) {
      const std::string v = need(i);
      ++i;
      if (v == "perfect") cfg.detector = scenario::DetectorKind::kPerfect;
      else if (v == "heartbeat") cfg.detector = scenario::DetectorKind::kHeartbeat;
      else if (v == "none") cfg.detector = scenario::DetectorKind::kNever;
      else usage(argv[0]);
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(parse_ll(need(i), argv[0]));
      ++i;
    } else if (std::strcmp(a, "--run-for") == 0) {
      cfg.run_for = parse_ll(need(i), argv[0]);
      ++i;
    } else if (std::strcmp(a, "--tick-ns") == 0) {
      cfg.rt_tick_ns = static_cast<std::uint64_t>(parse_ll(need(i), argv[0]));
      ++i;
    } else if (std::strcmp(a, "--drop") == 0) {
      cfg.link_faults.drop_prob = parse_double(need(i), argv[0]);
      ++i;
    } else if (std::strcmp(a, "--dup") == 0) {
      cfg.link_faults.dup_prob = parse_double(need(i), argv[0]);
      ++i;
    } else if (std::strcmp(a, "--crash") == 0) {
      int p = 0;
      long long t = 0;
      if (std::sscanf(need(i), "%d@%lld", &p, &t) != 2) usage(argv[0]);
      ++i;
      cfg.crashes.emplace_back(p, t);
    } else if (std::strcmp(a, "--cut") == 0) {
      int pa = 0;
      int pb = 0;
      long long f = 0;
      long long u = 0;
      if (std::sscanf(need(i), "%d-%d@%lld:%lld", &pa, &pb, &f, &u) != 4) usage(argv[0]);
      ++i;
      cfg.edge_cuts.push_back(net::EdgeCut{pa, pb, f, u});
    } else if (std::strcmp(a, "--split") == 0) {
      unsigned long long mask = 0;
      long long f = 0;
      long long u = 0;
      if (std::sscanf(need(i), "%lli@%lld:%lld", &mask, &f, &u) != 3) usage(argv[0]);
      ++i;
      net::Partition part;
      part.from = f;
      part.until = u;
      for (int b = 0; b < 64; ++b) {
        if ((mask >> b) & 1ULL) part.side.push_back(b);
      }
      cfg.partitions.push_back(std::move(part));
    } else if (std::strcmp(a, "--acks") == 0) {
      cfg.acks_per_session = static_cast<int>(parse_ll(need(i), argv[0]));
      ++i;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else {
      usage(argv[0]);
    }
  }

  // Flags decide the net mode: any coin or window upgrades from kIdeal.
  const bool lossy =
      cfg.link_faults.drop_prob > 0.0 || cfg.link_faults.dup_prob > 0.0;
  const bool windows = !cfg.partitions.empty() || !cfg.edge_cuts.empty();
  if (windows) cfg.net_mode = scenario::NetMode::kLossyPartition;
  else if (lossy) cfg.net_mode = scenario::NetMode::kLossy;

  ProcScenario sc(cfg);
  sc.run();

  if (json) {
    std::printf("%s\n", sc.telemetry_json().c_str());
  } else {
    const auto& res = sc.result();
    std::printf("cluster: %s%s%s\n", res.ok ? "ok" : "FAILED",
                res.error.empty() ? "" : " — ", res.error.c_str());
    for (std::size_t p = 0; p < res.nodes.size(); ++p) {
      const auto& node = res.nodes[p];
      std::printf("  node %zu: pid %ld exit %d%s%s%s\n", p, node.pid, node.exit_code,
                  node.killed_by_plan ? " [SIGKILL by plan]" : "",
                  node.signaled && !node.killed_by_plan ? " [signaled]" : "",
                  node.timed_out ? " [timed out — killed by supervisor]" : "");
    }
    const auto excl = sc.exclusion();
    const auto wf = sc.wait_freedom(cfg.run_for / 4);
    std::printf("exclusion: %s (%zu violations)\n",
                excl.violations.empty() ? "ok" : "VIOLATED", excl.violations.size());
    std::printf("wait-freedom: %s (%zu/%zu sessions completed, %zu starving)\n",
                wf.wait_free() ? "ok" : "STARVATION", wf.sessions_completed,
                wf.sessions_total, wf.starving.size());
    const std::string agree = sc.monitor_agreement();
    std::printf("monitor agreement: %s\n", agree.empty() ? "ok" : agree.c_str());
    const std::string replay = sc.replay_agreement();
    std::printf("replay agreement: %s\n", replay.empty() ? "ok" : replay.c_str());
    if (!res.ok || !excl.violations.empty() || !wf.wait_free() || !agree.empty() ||
        !replay.empty()) {
      return 1;
    }
  }
  return 0;
}
