// run_scenario — command-line front end to the whole library.
//
// Builds any experiment from flags, runs it, prints the property reports
// for the paper's theorems, and (optionally) an ASCII Gantt chart of the
// schedule: one row per philosopher, time left to right,
//   '#' eating, '-' hungry, ' ' thinking, 'X' crashed.
//
// Examples:
//   ./run_scenario --topology clique --n 6 --crash 2@10000
//   ./run_scenario --algorithm chandy-misra --detector none --gantt
//   ./run_scenario --topology star --n 9 --detector heartbeat --gantt
//   ./run_scenario --algorithm hierarchical --think 1:8 --eat 40:100 --gantt
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "dining/trace_io.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --topology NAME      ring|path|clique|star|grid|tree|random (default ring)\n"
      "  --n N                number of processes (default 8)\n"
      "  --algorithm A        waitfree|choy-singh|choy-singh-1ack|hierarchical|\n"
      "                       chandy-misra (default waitfree)\n"
      "  --detector D         scripted|heartbeat|pingpong|pingpong-ondemand|\n"
      "                       accrual|perfect|none (default scripted)\n"
      "  --seed S             RNG seed (default 1)\n"
      "  --run-for T          virtual-time horizon (default 60000)\n"
      "  --crash P@T          crash process P at time T (repeatable)\n"
      "  --think LO:HI        think-time range (default 50:300)\n"
      "  --eat LO:HI          eat-duration range (default 20:60)\n"
      "  --fp COUNT:UNTIL     scripted false positives (default 0:0)\n"
      "  --acks M             ack budget per session (default 1; k = M+1)\n"
      "  --gantt              print the schedule as an ASCII Gantt chart\n"
      "  --gantt-width W      chart width in columns (default 100)\n"
      "  --dump FILE          write the execution trace as JSON lines\n",
      argv0);
  std::exit(2);
}

bool parse_pair(const char* s, long long& a, long long& b, char sep) {
  char* end = nullptr;
  a = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != sep) return false;
  b = std::strtoll(end + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

Algorithm parse_algorithm(const std::string& s) {
  if (s == "waitfree") return Algorithm::kWaitFree;
  if (s == "choy-singh") return Algorithm::kChoySingh;
  if (s == "choy-singh-1ack") return Algorithm::kChoySinghSingleAck;
  if (s == "hierarchical") return Algorithm::kHierarchical;
  if (s == "chandy-misra") return Algorithm::kChandyMisra;
  std::fprintf(stderr, "unknown algorithm: %s\n", s.c_str());
  std::exit(2);
}

DetectorKind parse_detector(const std::string& s) {
  if (s == "scripted") return DetectorKind::kScripted;
  if (s == "heartbeat") return DetectorKind::kHeartbeat;
  if (s == "pingpong") return DetectorKind::kPingPong;
  if (s == "pingpong-ondemand") return DetectorKind::kPingPong;  // + on_demand below
  if (s == "accrual") return DetectorKind::kAccrual;
  if (s == "perfect") return DetectorKind::kPerfect;
  if (s == "none") return DetectorKind::kNever;
  std::fprintf(stderr, "unknown detector: %s\n", s.c_str());
  std::exit(2);
}

void print_gantt(Scenario& s, int width) {
  const auto n = s.config().n;
  const sim::Time horizon = s.config().run_for;
  const auto w = static_cast<std::size_t>(width);
  const double bucket = static_cast<double>(horizon) / static_cast<double>(width);

  // Time spent per (process, bucket, state): 0 think, 1 hungry, 2 eat, 3 dead.
  std::vector<std::array<std::vector<double>, 4>> spent(n);
  for (auto& a : spent) {
    for (auto& v : a) v.assign(w, 0.0);
  }
  std::vector<int> state(n, 0);
  std::vector<sim::Time> since(n, 0);

  auto credit = [&](std::size_t p, sim::Time from, sim::Time to, int st) {
    if (to <= from) return;
    auto b0 = static_cast<std::size_t>(static_cast<double>(from) / bucket);
    auto b1 = static_cast<std::size_t>(static_cast<double>(to - 1) / bucket);
    b0 = std::min(b0, w - 1);
    b1 = std::min(b1, w - 1);
    for (std::size_t b = b0; b <= b1; ++b) {
      const double lo = std::max(static_cast<double>(from), static_cast<double>(b) * bucket);
      const double hi =
          std::min(static_cast<double>(to), static_cast<double>(b + 1) * bucket);
      if (hi > lo) spent[p][static_cast<std::size_t>(st)][b] += hi - lo;
    }
  };

  for (const auto& e : s.trace().events()) {
    const auto p = static_cast<std::size_t>(e.process);
    int next = state[p];
    switch (e.kind) {
      case dining::TraceEventKind::kBecameHungry: next = 1; break;
      case dining::TraceEventKind::kStartEating: next = 2; break;
      case dining::TraceEventKind::kStopEating: next = 0; break;
      case dining::TraceEventKind::kCrashed: next = 3; break;
      default: continue;
    }
    credit(p, since[p], e.at, state[p]);
    state[p] = next;
    since[p] = e.at;
  }
  for (std::size_t p = 0; p < n; ++p) credit(p, since[p], horizon, state[p]);

  // Glyph: dominant state in the bucket; eating shown proportionally
  // ('#' majority, '+' some eating) so short meals stay visible.
  static const char kGlyph[4] = {' ', '-', '#', 'X'};
  std::printf(
      "\nschedule (one column = %.0f ticks; '#' mostly eating, '+' some eating,\n"
      "'-' hungry, ' ' thinking, 'X' crashed):\n",
      bucket);
  for (std::size_t p = 0; p < n; ++p) {
    std::string row(w, ' ');
    for (std::size_t b = 0; b < w; ++b) {
      int best = 0;
      for (int st = 1; st < 4; ++st) {
        if (spent[p][static_cast<std::size_t>(st)][b] >
            spent[p][static_cast<std::size_t>(best)][b]) {
          best = st;
        }
      }
      char g = kGlyph[best];
      if (best != 2 && best != 3 && spent[p][2][b] > 0.0) g = '+';
      row[b] = g;
    }
    std::printf("p%-3zu |%s|\n", p, row.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.run_for = 60'000;
  bool gantt = false;
  int gantt_width = 100;
  std::string dump_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--topology") {
      cfg.topology = next();
    } else if (arg == "--n") {
      cfg.n = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--algorithm") {
      cfg.algorithm = parse_algorithm(next());
    } else if (arg == "--detector") {
      const std::string d = next();
      cfg.detector = parse_detector(d);
      if (d == "pingpong-ondemand") cfg.pingpong.on_demand = true;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-for") {
      cfg.run_for = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--crash") {
      long long p = 0, t = 0;
      if (!parse_pair(next(), p, t, '@')) usage(argv[0]);
      cfg.crashes.emplace_back(static_cast<sim::ProcessId>(p), t);
    } else if (arg == "--think") {
      long long lo = 0, hi = 0;
      if (!parse_pair(next(), lo, hi, ':')) usage(argv[0]);
      cfg.harness.think_lo = lo;
      cfg.harness.think_hi = hi;
    } else if (arg == "--eat") {
      long long lo = 0, hi = 0;
      if (!parse_pair(next(), lo, hi, ':')) usage(argv[0]);
      cfg.harness.eat_lo = lo;
      cfg.harness.eat_hi = hi;
    } else if (arg == "--fp") {
      long long count = 0, until = 0;
      if (!parse_pair(next(), count, until, ':')) usage(argv[0]);
      cfg.fp_count = static_cast<std::size_t>(count);
      cfg.fp_until = until;
    } else if (arg == "--acks") {
      cfg.acks_per_session = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--gantt-width") {
      gantt_width = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--dump") {
      dump_path = next();
    } else {
      usage(argv[0]);
    }
  }

  if (cfg.detector == DetectorKind::kHeartbeat || cfg.detector == DetectorKind::kPingPong) {
    cfg.partial_synchrony = true;
  } else {
    cfg.partial_synchrony = false;
  }

  std::printf("scenario: %s(%zu), algorithm=%s, detector=%s, seed=%llu, horizon=%lld\n",
              cfg.topology.c_str(), cfg.n, scenario::to_string(cfg.algorithm).c_str(),
              scenario::to_string(cfg.detector).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              static_cast<long long>(cfg.run_for));

  Scenario s(cfg);
  s.run();

  auto wf = s.wait_freedom(cfg.run_for / 4);
  auto ex = s.exclusion();
  auto census = s.census();
  auto conv = s.fd_convergence_estimate();
  auto cp = dining::concurrency_profile(s.trace(), s.graph());

  util::Table t({"metric", "value"});
  t.row().cell("meals").cell(static_cast<std::uint64_t>(
      s.trace().count(dining::TraceEventKind::kStartEating)));
  t.row().cell("hungry sessions (total/completed)").cell(
      std::to_string(wf.sessions_total) + "/" + std::to_string(wf.sessions_completed));
  t.row().cell("starving processes").cell(static_cast<std::uint64_t>(wf.starving.size()));
  t.row().cell("response time mean/p95").cell(
      std::to_string(static_cast<long long>(wf.response.mean)) + "/" +
      std::to_string(static_cast<long long>(wf.response.p95)));
  t.row().cell("exclusion violations (total)").cell(
      static_cast<std::uint64_t>(ex.violations.size()));
  t.row().cell("violations after FD convergence").cell(
      static_cast<std::uint64_t>(ex.violations_after(conv)));
  t.row().cell("max overtakes (after convergence)").cell(
      dining::max_overtakes(census, conv));
  t.row().cell("max dining msgs in transit per edge").cell(
      s.sim().network().max_in_transit_any(sim::MsgLayer::kDining));
  t.row().cell("mean concurrent eaters").cell(cp.mean_concurrent_eaters, 2);
  t.row().cell("dining / detector messages").cell(
      std::to_string(s.sim().network().total_sent(sim::MsgLayer::kDining)) + " / " +
      std::to_string(s.sim().network().total_sent(sim::MsgLayer::kDetector)));
  t.print();

  if (gantt) print_gantt(s, gantt_width);
  if (!dump_path.empty()) {
    if (ekbd::dining::write_jsonl_file(s.trace(), dump_path)) {
      std::printf("trace written to %s (%zu events)\n", dump_path.c_str(),
                  s.trace().size());
    } else {
      std::fprintf(stderr, "failed to write %s\n", dump_path.c_str());
      return 1;
    }
  }
  return 0;
}
