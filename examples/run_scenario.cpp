// run_scenario — command-line front end to the whole library.
//
// Builds any experiment from flags, runs it, prints the property reports
// for the paper's theorems, and (optionally) an ASCII Gantt chart of the
// schedule: one row per philosopher, time left to right,
//   '#' eating, '-' hungry, ' ' thinking, 'X' crashed.
//
// Examples:
//   ./run_scenario --topology clique --n 6 --crash 2@10000
//   ./run_scenario --algorithm chandy-misra --detector none --gantt
//   ./run_scenario --topology star --n 9 --detector heartbeat --gantt
//   ./run_scenario --algorithm hierarchical --think 1:8 --eat 40:100 --gantt
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "dining/trace_io.hpp"
#include "scenario/load_scenario.hpp"
#include "scenario/proc_scenario.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --topology NAME      ring|path|clique|star|grid|tree|random|sparse|\n"
      "                       hypercube|torus|bipartite (default ring)\n"
      "  --n N                number of processes (default 8)\n"
      "  --algorithm A        waitfree|choy-singh|choy-singh-1ack|hierarchical|\n"
      "                       chandy-misra (default waitfree)\n"
      "  --detector D         scripted|heartbeat|pingpong|pingpong-ondemand|\n"
      "                       accrual|perfect|none (default scripted; rt and proc\n"
      "                       engines remap scripted to heartbeat)\n"
      "  --engine E           sim|rt|proc (default sim; rt = shard-per-core\n"
      "                       executor over OS threads, wall-clock timers, live\n"
      "                       invariant monitors; proc = one OS process per node\n"
      "                       over UDP loopback, SIGKILL crashes, post-hoc\n"
      "                       monitors over merged shipped logs)\n"
      "  --net M              ideal|lossy (default ideal; rt lossy = detector-layer\n"
      "                       drop/dup coins, sim/proc lossy = link faults + ARQ)\n"
      "  --tick-ns NS         rt/proc engines: wall nanoseconds per tick\n"
      "                       (default 100000)\n"
      "  --shards C           rt engine: worker shards (default 0 = one per\n"
      "                       hardware core; n = thread-per-actor)\n"
      "  --no-stream          rt engine: single-mutex direct recorder instead of\n"
      "                       the segmented streaming pipeline\n"
      "  --stream-window T    rt engine: collector merge period in ticks\n"
      "                       (default 50)\n"
      "  --log-cap N          rt engine: cap the recorded EventLog at N events\n"
      "                       (default 0 = unbounded; drops are counted)\n"
      "  --telemetry-every T  rt engine: live JSONL snapshot every T ticks\n"
      "  --telemetry-out F    rt engine: write the live snapshots to F\n"
      "  --seed S             RNG seed (default 1)\n"
      "  --run-for T          time horizon in ticks (default 60000; rt runs\n"
      "                       run-for x tick-ns wall nanoseconds)\n"
      "  --crash P@T          crash process P at time T (repeatable)\n"
      "  --think LO:HI        think-time range (default 50:300)\n"
      "  --eat LO:HI          eat-duration range (default 20:60)\n"
      "  --fp COUNT:UNTIL     scripted false positives (default 0:0)\n"
      "  --acks M             ack budget per session (default 1; k = M+1)\n"
      "  --rate R             open-loop load: R arrivals per 1000 ticks per actor\n"
      "                       (workload harness; sim/rt engines, waitfree only)\n"
      "  --arrivals K         poisson|uniform|bursty arrival model (default\n"
      "                       poisson; only meaningful with --rate)\n"
      "  --churn N            N conflict-graph edge mutations spread over the\n"
      "                       run, recolored incrementally (waitfree only)\n"
      "  --recover P@T1:T2    crash process P at T1 and bring it back at T2\n"
      "                       (repeatable; --crash alone = crash forever)\n"
      "  --gantt              print the schedule as an ASCII Gantt chart\n"
      "  --gantt-width W      chart width in columns (default 100)\n"
      "  --dump FILE          write the execution trace as JSON lines\n"
      "\n"
      "Flags are validated against the selected engine: an engine-specific\n"
      "flag combined with a different --engine is an error (this usage), not\n"
      "a silent fallback.\n",
      argv0);
  std::exit(2);
}

bool parse_pair(const char* s, long long& a, long long& b, char sep) {
  char* end = nullptr;
  a = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != sep) return false;
  b = std::strtoll(end + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

// "P@T1:T2" — a crash-recovery cycle for --recover.
bool parse_triple(const char* s, long long& a, long long& b, long long& c) {
  char* end = nullptr;
  a = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != '@') return false;
  b = std::strtoll(end + 1, &end, 10);
  if (end == nullptr || *end != ':') return false;
  c = std::strtoll(end + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

Algorithm parse_algorithm(const std::string& s) {
  if (s == "waitfree") return Algorithm::kWaitFree;
  if (s == "choy-singh") return Algorithm::kChoySingh;
  if (s == "choy-singh-1ack") return Algorithm::kChoySinghSingleAck;
  if (s == "hierarchical") return Algorithm::kHierarchical;
  if (s == "chandy-misra") return Algorithm::kChandyMisra;
  std::fprintf(stderr, "unknown algorithm: %s\n", s.c_str());
  std::exit(2);
}

DetectorKind parse_detector(const std::string& s) {
  if (s == "scripted") return DetectorKind::kScripted;
  if (s == "heartbeat") return DetectorKind::kHeartbeat;
  if (s == "pingpong") return DetectorKind::kPingPong;
  if (s == "pingpong-ondemand") return DetectorKind::kPingPong;  // + on_demand below
  if (s == "accrual") return DetectorKind::kAccrual;
  if (s == "perfect") return DetectorKind::kPerfect;
  if (s == "none") return DetectorKind::kNever;
  std::fprintf(stderr, "unknown detector: %s\n", s.c_str());
  std::exit(2);
}

void print_gantt(const dining::Trace& trace, const Config& cfg, int width) {
  const auto n = cfg.n;
  const sim::Time horizon = cfg.run_for;
  const auto w = static_cast<std::size_t>(width);
  const double bucket = static_cast<double>(horizon) / static_cast<double>(width);

  // Time spent per (process, bucket, state): 0 think, 1 hungry, 2 eat, 3 dead.
  std::vector<std::array<std::vector<double>, 4>> spent(n);
  for (auto& a : spent) {
    for (auto& v : a) v.assign(w, 0.0);
  }
  std::vector<int> state(n, 0);
  std::vector<sim::Time> since(n, 0);

  auto credit = [&](std::size_t p, sim::Time from, sim::Time to, int st) {
    if (to <= from) return;
    auto b0 = static_cast<std::size_t>(static_cast<double>(from) / bucket);
    auto b1 = static_cast<std::size_t>(static_cast<double>(to - 1) / bucket);
    b0 = std::min(b0, w - 1);
    b1 = std::min(b1, w - 1);
    for (std::size_t b = b0; b <= b1; ++b) {
      const double lo = std::max(static_cast<double>(from), static_cast<double>(b) * bucket);
      const double hi =
          std::min(static_cast<double>(to), static_cast<double>(b + 1) * bucket);
      if (hi > lo) spent[p][static_cast<std::size_t>(st)][b] += hi - lo;
    }
  };

  for (const auto& e : trace.events()) {
    const auto p = static_cast<std::size_t>(e.process);
    int next = state[p];
    switch (e.kind) {
      case dining::TraceEventKind::kBecameHungry: next = 1; break;
      case dining::TraceEventKind::kStartEating: next = 2; break;
      case dining::TraceEventKind::kStopEating: next = 0; break;
      case dining::TraceEventKind::kCrashed: next = 3; break;
      case dining::TraceEventKind::kRecovered: next = 0; break;
      default: continue;
    }
    credit(p, since[p], e.at, state[p]);
    state[p] = next;
    since[p] = e.at;
  }
  for (std::size_t p = 0; p < n; ++p) credit(p, since[p], horizon, state[p]);

  // Glyph: dominant state in the bucket; eating shown proportionally
  // ('#' majority, '+' some eating) so short meals stay visible.
  static const char kGlyph[4] = {' ', '-', '#', 'X'};
  std::printf(
      "\nschedule (one column = %.0f ticks; '#' mostly eating, '+' some eating,\n"
      "'-' hungry, ' ' thinking, 'X' crashed):\n",
      bucket);
  for (std::size_t p = 0; p < n; ++p) {
    std::string row(w, ' ');
    for (std::size_t b = 0; b < w; ++b) {
      int best = 0;
      for (int st = 1; st < 4; ++st) {
        if (spent[p][static_cast<std::size_t>(st)][b] >
            spent[p][static_cast<std::size_t>(best)][b]) {
          best = st;
        }
      }
      char g = kGlyph[best];
      if (best != 2 && best != 3 && spent[p][2][b] > 0.0) g = '+';
      row[b] = g;
    }
    std::printf("p%-3zu |%s|\n", p, row.c_str());
  }
}

// Property reports both engines can answer: works on Scenario and
// RtScenario (same trace/checker surface; the network books differ only
// in where they live).
template <typename S>
void print_reports(S& s, const Config& cfg, const sim::Network& net, sim::Time conv) {
  auto wf = s.wait_freedom(cfg.run_for / 4);
  auto ex = s.exclusion();
  auto census = s.census();
  auto cp = dining::concurrency_profile(s.trace(), s.graph());

  util::Table t({"metric", "value"});
  t.row().cell("meals").cell(static_cast<std::uint64_t>(
      s.trace().count(dining::TraceEventKind::kStartEating)));
  t.row().cell("hungry sessions (total/completed)").cell(
      std::to_string(wf.sessions_total) + "/" + std::to_string(wf.sessions_completed));
  t.row().cell("starving processes").cell(static_cast<std::uint64_t>(wf.starving.size()));
  t.row().cell("response time mean/p95").cell(
      std::to_string(static_cast<long long>(wf.response.mean)) + "/" +
      std::to_string(static_cast<long long>(wf.response.p95)));
  t.row().cell("exclusion violations (total)").cell(
      static_cast<std::uint64_t>(ex.violations.size()));
  t.row().cell("violations after FD convergence").cell(
      static_cast<std::uint64_t>(ex.violations_after(conv)));
  t.row().cell("max overtakes (after convergence)").cell(
      dining::max_overtakes(census, conv));
  t.row().cell("max dining msgs in transit per edge").cell(
      net.max_in_transit_any(sim::MsgLayer::kDining));
  t.row().cell("mean concurrent eaters").cell(cp.mean_concurrent_eaters, 2);
  t.row().cell("dining / detector messages").cell(
      std::to_string(net.total_sent(sim::MsgLayer::kDining)) + " / " +
      std::to_string(net.total_sent(sim::MsgLayer::kDetector)));
  t.print();
}

int dump_trace(const dining::Trace& trace, const std::string& dump_path) {
  if (dump_path.empty()) return 0;
  if (ekbd::dining::write_jsonl_file(trace, dump_path)) {
    std::printf("trace written to %s (%zu events)\n", dump_path.c_str(), trace.size());
    return 0;
  }
  std::fprintf(stderr, "failed to write %s\n", dump_path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  cfg.run_for = 60'000;
  bool gantt = false;
  int gantt_width = 100;
  std::string dump_path;

  // Workload-harness flags (any of them routes the run through
  // scenario::LoadScenario — open-loop arrivals instead of the closed
  // think/eat loop).
  double load_rate = 0.0;
  bool load_rate_set = false;
  std::string arrivals_kind;
  std::size_t churn = 0;
  std::vector<scenario::RecoverySpec> recoveries;

  // Engine-specific flags remembered by name so a mismatched --engine is
  // an explicit error after the loop (flags may precede --engine).
  std::vector<std::string> rt_only_flags;
  bool tick_ns_set = false;  // rt + proc
  bool fp_set = false;       // sim + scripted detector only

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--topology") {
      cfg.topology = next();
    } else if (arg == "--n") {
      cfg.n = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--algorithm") {
      cfg.algorithm = parse_algorithm(next());
    } else if (arg == "--detector") {
      const std::string d = next();
      cfg.detector = parse_detector(d);
      if (d == "pingpong-ondemand") cfg.pingpong.on_demand = true;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-for") {
      cfg.run_for = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--crash") {
      long long p = 0, t = 0;
      if (!parse_pair(next(), p, t, '@')) usage(argv[0]);
      cfg.crashes.emplace_back(static_cast<sim::ProcessId>(p), t);
    } else if (arg == "--think") {
      long long lo = 0, hi = 0;
      if (!parse_pair(next(), lo, hi, ':')) usage(argv[0]);
      cfg.harness.think_lo = lo;
      cfg.harness.think_hi = hi;
    } else if (arg == "--eat") {
      long long lo = 0, hi = 0;
      if (!parse_pair(next(), lo, hi, ':')) usage(argv[0]);
      cfg.harness.eat_lo = lo;
      cfg.harness.eat_hi = hi;
    } else if (arg == "--fp") {
      long long count = 0, until = 0;
      if (!parse_pair(next(), count, until, ':')) usage(argv[0]);
      cfg.fp_count = static_cast<std::size_t>(count);
      cfg.fp_until = until;
      fp_set = true;
    } else if (arg == "--rate") {
      load_rate = std::strtod(next(), nullptr);
      if (!(load_rate > 0.0)) {
        std::fprintf(stderr, "--rate must be > 0\n");
        return 2;
      }
      load_rate_set = true;
    } else if (arg == "--arrivals") {
      arrivals_kind = next();
      if (arrivals_kind != "poisson" && arrivals_kind != "uniform" &&
          arrivals_kind != "bursty") {
        std::fprintf(stderr, "unknown arrival model: %s\n", arrivals_kind.c_str());
        return 2;
      }
    } else if (arg == "--churn") {
      churn = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--recover") {
      long long p = 0, t1 = 0, t2 = 0;
      if (!parse_triple(next(), p, t1, t2) || t2 <= t1) usage(argv[0]);
      recoveries.push_back({static_cast<sim::ProcessId>(p), t1, t2});
    } else if (arg == "--acks") {
      cfg.acks_per_session = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--engine") {
      const std::string e = next();
      if (e == "sim") {
        cfg.engine = scenario::Engine::kSim;
      } else if (e == "rt") {
        cfg.engine = scenario::Engine::kRt;
      } else if (e == "proc") {
        cfg.engine = scenario::Engine::kProc;
      } else {
        std::fprintf(stderr, "unknown engine: %s (expected sim|rt|proc)\n", e.c_str());
        return 2;
      }
    } else if (arg == "--net") {
      const std::string m = next();
      if (m == "ideal") {
        cfg.net_mode = scenario::NetMode::kIdeal;
      } else if (m == "lossy") {
        cfg.net_mode = scenario::NetMode::kLossy;
      } else {
        std::fprintf(stderr, "unknown net mode: %s\n", m.c_str());
        return 2;
      }
    } else if (arg == "--tick-ns") {
      cfg.rt_tick_ns = std::strtoull(next(), nullptr, 10);
      tick_ns_set = true;
    } else if (arg == "--shards") {
      cfg.rt_shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      rt_only_flags.push_back(arg);
    } else if (arg == "--no-stream") {
      cfg.rt_segmented_recorder = false;
      rt_only_flags.push_back(arg);
    } else if (arg == "--stream-window") {
      cfg.rt_stream_window = std::strtoull(next(), nullptr, 10);
      rt_only_flags.push_back(arg);
    } else if (arg == "--log-cap") {
      cfg.rt_event_log_cap = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
      rt_only_flags.push_back(arg);
    } else if (arg == "--telemetry-every") {
      cfg.rt_telemetry_interval = std::strtoll(next(), nullptr, 10);
      rt_only_flags.push_back(arg);
    } else if (arg == "--telemetry-out") {
      cfg.rt_telemetry_path = next();
      rt_only_flags.push_back(arg);
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--gantt-width") {
      gantt_width = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--dump") {
      dump_path = next();
    } else {
      usage(argv[0]);
    }
  }

  // Reject engine-mismatched flag combinations up front: a flag the
  // selected engine would silently ignore is a config mistake, and the
  // run it produces is not the run the user asked for.
  if (cfg.engine != scenario::Engine::kRt && !rt_only_flags.empty()) {
    std::fprintf(stderr, "%s is rt-engine only (got --engine %s)\n",
                 rt_only_flags.front().c_str(), scenario::to_string(cfg.engine).c_str());
    usage(argv[0]);
  }
  if (tick_ns_set && cfg.engine == scenario::Engine::kSim) {
    std::fprintf(stderr,
                 "--tick-ns needs a wall-clock engine (--engine rt or proc); "
                 "sim time is virtual\n");
    usage(argv[0]);
  }
  if (fp_set &&
      (cfg.engine != scenario::Engine::kSim || cfg.detector != DetectorKind::kScripted)) {
    std::fprintf(stderr,
                 "--fp drives the scripted detector, which only the sim engine has "
                 "(got --engine %s, --detector %s)\n",
                 scenario::to_string(cfg.engine).c_str(),
                 scenario::to_string(cfg.detector).c_str());
    usage(argv[0]);
  }

  const bool load_mode =
      load_rate_set || !arrivals_kind.empty() || churn > 0 || !recoveries.empty();
  if (load_mode) {
    if (cfg.engine == scenario::Engine::kProc) {
      std::fprintf(stderr,
                   "--rate/--arrivals/--churn/--recover need --engine sim or rt "
                   "(proc churn transport is pending, see ROADMAP)\n");
      usage(argv[0]);
    }
    if (cfg.algorithm != Algorithm::kWaitFree) {
      std::fprintf(stderr,
                   "the workload harness drives the waitfree algorithm only "
                   "(churn/rejoin are Algorithm-1 extensions)\n");
      usage(argv[0]);
    }
    if (!arrivals_kind.empty() && !load_rate_set) {
      std::fprintf(stderr, "--arrivals needs --rate\n");
      usage(argv[0]);
    }
    if (cfg.detector == DetectorKind::kScripted) {
      // The scripted oracle neither follows recoveries nor sees churned
      // edges; the perfect detector is the harness default.
      std::printf("note: workload harness uses the perfect detector instead of scripted\n");
      cfg.detector = DetectorKind::kPerfect;
    }
  }

  if (cfg.detector == DetectorKind::kHeartbeat || cfg.detector == DetectorKind::kPingPong) {
    cfg.partial_synchrony = true;
  } else {
    cfg.partial_synchrony = false;
  }

  if (cfg.engine != scenario::Engine::kSim && cfg.detector == DetectorKind::kScripted) {
    // The scripted oracle is written against virtual time; on real
    // threads/processes the natural ◇P₁ stand-in is the heartbeat module.
    std::printf("note: %s engine has no scripted detector; using heartbeat\n",
                scenario::to_string(cfg.engine).c_str());
    cfg.detector = DetectorKind::kHeartbeat;
  }
  if (cfg.engine == scenario::Engine::kProc &&
      (cfg.detector == DetectorKind::kPingPong || cfg.detector == DetectorKind::kAccrual)) {
    std::fprintf(stderr,
                 "proc engine supports detectors heartbeat|perfect|none only\n");
    return 2;
  }

  std::printf("scenario: %s(%zu), engine=%s, algorithm=%s, detector=%s, seed=%llu, "
              "horizon=%lld\n",
              cfg.topology.c_str(), cfg.n, scenario::to_string(cfg.engine).c_str(),
              scenario::to_string(cfg.algorithm).c_str(),
              scenario::to_string(cfg.detector).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              static_cast<long long>(cfg.run_for));

  if (load_mode) {
    scenario::LoadConfig lc;
    // --crash under the harness = a crash that never recovers; fold it
    // into the recovery list so the churn planner sees the window.
    for (const auto& [p, t] : cfg.crashes) recoveries.push_back({p, t, -1});
    cfg.crashes.clear();
    lc.base = cfg;
    if (load_rate_set) lc.arrivals.rate_per_kilotick = load_rate;
    if (arrivals_kind == "uniform") lc.arrivals.kind = load::ArrivalKind::kUniform;
    if (arrivals_kind == "bursty") lc.arrivals.kind = load::ArrivalKind::kBursty;
    lc.churn.mutations = churn;
    lc.recoveries = recoveries;

    std::printf("workload: %s arrivals at %.2f/kilotick per actor, %zu churn ops, "
                "%zu crash cycles\n",
                load::to_string(lc.arrivals.kind).c_str(), lc.arrivals.rate_per_kilotick,
                lc.churn.mutations, lc.recoveries.size());

    scenario::LoadScenario s(lc);
    s.run();

    if (Scenario* sim = s.sim_scenario()) {
      print_reports(*sim, cfg, sim->sim().network(), sim->fd_convergence_estimate());
    } else {
      print_reports(*s.rt_scenario(), cfg, s.rt_scenario()->recorder().network(), 0);
    }

    const obs::Histogram lat = s.latency();
    util::Table lt({"load metric", "value"});
    lt.row().cell("offered / completed / dropped").cell(
        std::to_string(s.book().offered()) + " / " + std::to_string(s.book().completed()) +
        " / " + std::to_string(s.book().dropped()));
    lt.row().cell("backlog high-water").cell(s.overload().backlog_high_water());
    lt.row().cell("overloaded at horizon").cell(
        std::string(s.overload().overloaded() ? "yes" : "no") + " (" +
        std::to_string(s.overload().overloaded_samples()) + "/" +
        std::to_string(s.overload().samples()) + " samples)");
    lt.row().cell("churn planned / issued / skipped").cell(
        std::to_string(s.churn_plan().ops.size()) + " / " + std::to_string(s.churn_issued()) +
        " / " + std::to_string(s.churn_skipped()));
    lt.row().cell("hungry->eat p50/p99/p999").cell(
        std::to_string(static_cast<long long>(lat.quantile(0.50))) + "/" +
        std::to_string(static_cast<long long>(lat.quantile(0.99))) + "/" +
        std::to_string(static_cast<long long>(lat.quantile(0.999))) + " (" +
        std::to_string(lat.count()) + " sessions)");
    lt.print();

    const std::string agreement = s.monitor_agreement();
    if (agreement.empty()) {
      std::printf("online monitors agree with post-hoc checkers\n");
    } else {
      std::printf("MONITOR DISAGREEMENT:\n%s\n", agreement.c_str());
    }
    if (gantt) print_gantt(s.trace(), cfg, gantt_width);
    const int rc = dump_trace(s.trace(), dump_path);
    return rc != 0 ? rc : (agreement.empty() ? 0 : 1);
  }

  if (cfg.engine == scenario::Engine::kProc) {
    // Must fork before any threads exist — keep this branch first-thing.
    scenario::ProcScenario s(cfg);
    s.run();
    print_reports(s, cfg, s.network(), /*conv=*/0);
    const std::string agreement = s.monitor_agreement();
    const std::string replay = s.replay_agreement();
    if (agreement.empty() && replay.empty()) {
      std::printf("online monitors and replay agree with post-hoc checkers\n");
    } else {
      if (!agreement.empty()) std::printf("MONITOR DISAGREEMENT:\n%s\n", agreement.c_str());
      if (!replay.empty()) std::printf("REPLAY DISAGREEMENT:\n%s\n", replay.c_str());
    }
    if (gantt) print_gantt(s.trace(), cfg, gantt_width);
    const int rc = dump_trace(s.trace(), dump_path);
    return rc != 0 ? rc : ((agreement.empty() && replay.empty()) ? 0 : 1);
  }

  if (cfg.engine == scenario::Engine::kRt) {
    cfg.observability = true;  // live monitors are the point of an rt run
    scenario::RtScenario s(cfg);
    s.run();
    print_reports(s, cfg, s.recorder().network(), /*conv=*/0);
    const std::string agreement = s.monitor_agreement();
    if (agreement.empty()) {
      std::printf("online monitors agree with post-hoc checkers\n");
    } else {
      std::printf("MONITOR DISAGREEMENT:\n%s\n", agreement.c_str());
    }
    if (gantt) print_gantt(s.trace(), cfg, gantt_width);
    const int rc = dump_trace(s.trace(), dump_path);
    return rc != 0 ? rc : (agreement.empty() ? 0 : 1);
  }

  Scenario s(cfg);
  s.run();
  print_reports(s, cfg, s.sim().network(), s.fd_convergence_estimate());
  if (gantt) print_gantt(s.trace(), cfg, gantt_width);
  return dump_trace(s.trace(), dump_path);
}
