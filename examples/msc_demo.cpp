// msc_demo — the Algorithm 1 handshake as a message sequence chart.
//
// Runs two philosophers on one edge with fixed unit delays, records every
// transport event with sim::EventLog, and renders an ASCII sequence chart
// of the full protocol round: ping/ack (doorway), fork request (token)
// and fork transfer, then the deferred grants at exit. Exactly the figure
// the paper never had room for.
//
//   ./examples/msc_demo
#include <cstdio>
#include <string>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "fd/scripted.hpp"
#include "sim/event_log.hpp"
#include "sim/simulator.hpp"

using namespace ekbd;
using core::WaitFreeDiner;
using sim::EventLog;
using sim::LoggedEvent;
using sim::ProcessId;

namespace {

void render(const EventLog& log, const std::vector<std::string>& annotations_at) {
  //        p0                      p1
  //  t=0   |----- Ping ----------->|
  std::printf("        %-24s%s\n", "p0 (color 1, fork)", "p1 (color 0, token)");
  for (const LoggedEvent& e : log.events()) {
    if (e.kind == LoggedEvent::Kind::kDeliver) {
      const std::string label = " " + e.payload_name() + " ";
      const int width = 22;
      const int pad = width - static_cast<int>(label.size());
      std::string line(static_cast<std::size_t>(pad > 0 ? pad : 0), '-');
      std::string arrow;
      if (e.from == 0) {
        arrow = "|" + line.substr(0, line.size() / 2) + label +
                line.substr(line.size() / 2) + ">|";
      } else {
        arrow = "|<" + line.substr(0, line.size() / 2) + label +
                line.substr(line.size() / 2) + "|";
      }
      std::printf("  t=%-4lld %s\n", static_cast<long long>(e.at), arrow.c_str());
    }
  }
  for (const auto& note : annotations_at) std::printf("%s\n", note.c_str());
}

}  // namespace

int main() {
  sim::Simulator simulator(1, sim::make_fixed_delay(1));
  fd::ScriptedDetector detector(simulator, 0);
  auto* hi = simulator.make_actor<WaitFreeDiner>(std::vector<ProcessId>{1}, 1,
                                                 std::vector<int>{0}, detector);
  auto* lo = simulator.make_actor<WaitFreeDiner>(std::vector<ProcessId>{0}, 0,
                                                 std::vector<int>{1}, detector);
  EventLog log;
  simulator.set_event_log(&log);
  simulator.start();

  std::vector<std::string> notes;

  std::printf("=== both become hungry at t=0; contention resolved by color ===\n\n");
  hi->become_hungry();
  lo->become_hungry();
  simulator.run_until(10);
  notes.push_back("  -> t=2: both entered the doorway (mutual acks); p0 eats (holds the fork)");
  notes.push_back("  -> t=3: p1's fork request arrives; p0 hungry-inside & higher color: DEFERS");
  render(log, notes);

  std::printf("\n=== p0 finishes eating: Action 10 grants the deferred fork ===\n\n");
  log.clear();
  notes.clear();
  hi->finish_eating();
  simulator.run_until(20);
  notes.push_back("  -> the deferred fork travels; p1 eats");
  render(log, notes);

  std::printf("\n=== p1 finishes; the edge is quiet — no messages until new hunger ===\n\n");
  log.clear();
  lo->finish_eating();
  simulator.run_until(40);
  const std::size_t messages = log.count(LoggedEvent::Kind::kSend) +
                               log.count(LoggedEvent::Kind::kDeliver) +
                               log.count(LoggedEvent::Kind::kDrop);
  std::printf("  messages after both meals: %zu (expected 0; %zu leftover pump timers)\n",
              messages, log.count(LoggedEvent::Kind::kTimer));
  return 0;
}
