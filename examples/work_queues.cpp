// work_queues — the library as a downstream user would consume it.
//
// A replicated counter service: every process applies increments to its
// own replica inside a critical section, then "gossips" the value into
// its neighbors' queues — all through CriticalSectionScheduler::submit,
// with the wait-free dining layer guaranteeing that adjacent replicas
// never apply concurrently, even while one replica host crashes mid-run.
//
//   ./examples/work_queues [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "daemon/critical_section.hpp"
#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using daemon::CriticalSectionScheduler;
using sim::ProcessId;

int main(int argc, char** argv) {
  scenario::Config cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 33;
  cfg.topology = "grid";
  cfg.n = 9;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.crashes = {{4, 25'000}};  // the center replica dies
  cfg.run_for = 80'000;

  scenario::Scenario s(cfg);
  CriticalSectionScheduler sched(s.harness());

  std::vector<long> replica(cfg.n, 0);

  // Gossip step: bump own replica, then enqueue a merge at each neighbor.
  std::function<void(ProcessId, int)> gossip = [&](ProcessId self, int hops) {
    replica[static_cast<std::size_t>(self)] += 1;
    if (hops == 0) return;
    for (ProcessId j : s.graph().neighbors(self)) {
      sched.submit(j, [&gossip, hops](ProcessId me) { gossip(me, hops - 1); });
    }
  };

  // Clients inject work at random processes throughout the run.
  sim::Rng clients(cfg.seed ^ 0xC11E47);
  for (int i = 0; i < 60; ++i) {
    const auto at = clients.uniform_int(100, 60'000);
    const auto origin = static_cast<ProcessId>(clients.index(cfg.n));
    s.sim().schedule(at, [&, origin] {
      sched.submit(origin, [&gossip](ProcessId me) { gossip(me, 2); });
    });
  }

  s.run();

  std::printf("work_queues — replicated counters over grid(9), p4 crashes at t=25000\n\n");
  util::Table t({"replica", "value", "queued left", "state"});
  for (std::size_t p = 0; p < cfg.n; ++p) {
    t.row()
        .cell(std::string("p") + std::to_string(p) + (p == 4 ? " (crashed)" : ""))
        .cell(static_cast<std::int64_t>(replica[p]))
        .cell(static_cast<std::uint64_t>(sched.pending(static_cast<ProcessId>(p))))
        .cell(s.sim().crashed(static_cast<ProcessId>(p))
                  ? "dead"
                  : dining::to_string(s.diner(static_cast<ProcessId>(p))->state()));
  }
  t.print();

  auto ex = s.exclusion();
  std::printf("critical sections executed: %llu   work items run: %llu\n",
              static_cast<unsigned long long>(sched.sections_acquired()),
              static_cast<unsigned long long>(sched.executed()));
  std::printf("exclusion violations: %zu   survivors' queues drained: %s\n",
              ex.violations.size(), sched.drained() ? "yes" : "NO");
  std::printf(
      "\nReading: work submitted to live replicas always ran (wait-freedom);\n"
      "work stranded at the corpse stayed queued; no two adjacent replicas ever\n"
      "applied concurrently. The caller never touched forks, acks, or suspicion.\n");
  return 0;
}
