// analyze_trace — offline property checking of archived executions.
//
// Loads a JSONL trace (as written by `run_scenario --dump`), rebuilds the
// conflict graph from flags, and runs the full checker suite: the checkers
// are pure functions of (trace, graph), so a trace dumped yesterday — or
// produced by some other implementation of the algorithm — is analyzable
// without re-running anything.
//
// The observability subsystem rides along twice: the archived trace is
// replayed through the *online* exclusion monitor (obs/monitors.hpp) and
// its verdict cross-checked against the post-hoc checker, and `--perfetto
// FILE` exports the hungry/eat sessions as Chrome trace-event JSON —
// open the file at https://ui.perfetto.dev to scrub through the run.
//
//   ./run_scenario --topology ring --n 8 --crash 2@20000 --dump run.jsonl
//   ./analyze_trace --trace run.jsonl --topology ring --n 8 --perfetto run.perfetto.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "dining/checkers.hpp"
#include "dining/trace_io.hpp"
#include "graph/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/monitors.hpp"
#include "obs/perfetto.hpp"
#include "util/table.hpp"

using namespace ekbd;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --trace FILE --topology NAME --n N [options]\n"
      "  --k K          fairness bound to check (default 2)\n"
      "  --after T      evaluate 'eventual' properties from time T (default 0)\n"
      "  --seed S       seed for the 'random' topology (must match the run)\n"
      "  --horizon-frac F  starvation horizon as a fraction of the trace\n"
      "                    length, in percent (default 25)\n"
      "  --perfetto FILE  export the sessions as Chrome trace-event JSON\n"
      "                   (open at https://ui.perfetto.dev)\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string topology = "ring";
  std::size_t n = 0;
  int k = 2;
  sim::Time after = 0;
  std::uint64_t seed = 1;
  long horizon_frac = 25;
  std::string perfetto_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--topology") topology = next();
    else if (arg == "--n") n = std::strtoull(next(), nullptr, 10);
    else if (arg == "--k") k = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--after") after = std::strtoll(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--horizon-frac") horizon_frac = std::strtol(next(), nullptr, 10);
    else if (arg == "--perfetto") perfetto_path = next();
    else usage(argv[0]);
  }
  if (trace_path.empty() || n == 0) usage(argv[0]);

  dining::Trace trace;
  try {
    trace = dining::read_jsonl_file(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  sim::Rng rng(seed ^ 0x70110ULL);  // matches scenario::build_graph derivation
  auto graph = graph::by_name(topology, n, rng);

  // Crash times come from the trace itself.
  std::vector<sim::Time> crash_times(n, -1);
  for (const auto& e : trace.events()) {
    if (e.kind == dining::TraceEventKind::kCrashed &&
        static_cast<std::size_t>(e.process) < n) {
      crash_times[static_cast<std::size_t>(e.process)] = e.at;
    }
  }

  // Replay the archive through the online monitor — the streaming verdict
  // must match the post-hoc checker event for event (the same agreement
  // the fuzz suite enforces on live runs).
  obs::ExclusionMonitor online(graph);
  for (const auto& e : trace.events()) online.on_trace_event(e);

  const sim::Time horizon = trace.end_time() * horizon_frac / 100;
  auto ex = dining::check_exclusion(trace, graph);
  auto wf = dining::check_wait_freedom(trace, crash_times, horizon);
  auto census = dining::overtake_census(trace, graph);
  auto cp = dining::concurrency_profile(trace, graph);

  std::printf("trace: %s — %zu events over %lld ticks, %s(%zu)\n\n", trace_path.c_str(),
              trace.size(), static_cast<long long>(trace.end_time()), topology.c_str(), n);

  util::Table t({"property", "measured", "verdict"});
  t.row()
      .cell("weak exclusion after t=" + std::to_string(after))
      .cell(std::to_string(ex.violations.size()) + " violations total, " +
            std::to_string(ex.violations_after(after)) + " after")
      .cell(ex.violations_after(after) == 0 ? "HOLDS" : "VIOLATED");
  t.row()
      .cell("wait-freedom (horizon " + std::to_string(horizon) + ")")
      .cell(std::to_string(wf.starving.size()) + " starving of " +
            std::to_string(wf.sessions_total) + " sessions")
      .cell(wf.wait_free() ? "HOLDS" : "VIOLATED");
  const int max_ot = dining::max_overtakes(census, after);
  t.row()
      .cell(std::to_string(k) + "-bounded waiting after t=" + std::to_string(after))
      .cell("max overtakes = " + std::to_string(max_ot) + ", bound established at t=" +
            std::to_string(dining::k_bound_establishment(census, k)))
      .cell(max_ot <= k ? "HOLDS" : "VIOLATED");
  t.row()
      .cell("concurrency")
      .cell("max " + std::to_string(cp.max_concurrent_eaters) + " simultaneous eaters, " +
            std::to_string(cp.nonneighbor_overlaps) + " harmless overlaps")
      .cell("-");
  const bool agree = online.violations().size() == ex.violations.size();
  t.row()
      .cell("online monitor agreement")
      .cell("streaming saw " + std::to_string(online.violations().size()) +
            " violations, post-hoc " + std::to_string(ex.violations.size()))
      .cell(agree ? "AGREE" : "DISAGREE");
  t.print();

  std::printf("response times: %s\n", wf.response.to_string().c_str());

  // Hungry-latency distribution as a telemetry histogram (the same
  // instrument the live harness feeds when Config::observability is set).
  obs::Histogram latency(0.0, 5000.0, 50);
  for (const auto& s : dining::hungry_sessions(trace)) {
    if (s.completed()) latency.add(static_cast<double>(s.response_time()));
  }
  std::printf("hungry latency: n=%llu mean=%.1f ticks\n",
              static_cast<unsigned long long>(latency.count()), latency.mean());

  if (!perfetto_path.empty()) {
    std::ofstream out(perfetto_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", perfetto_path.c_str());
      return 1;
    }
    // No event log survives into the archive, so this exports the session
    // spans (hungry/eat per process, crashes as instants).
    out << obs::chrome_trace_json(nullptr, &trace);
    std::printf("perfetto trace written to %s (open at https://ui.perfetto.dev)\n",
                perfetto_path.c_str());
  }
  return agree ? 0 : 1;
}
