// analyze_trace — offline property checking of archived executions.
//
// Loads a JSONL trace (as written by `run_scenario --dump`), rebuilds the
// conflict graph from flags, and runs the full checker suite: the checkers
// are pure functions of (trace, graph), so a trace dumped yesterday — or
// produced by some other implementation of the algorithm — is analyzable
// without re-running anything.
//
//   ./run_scenario --topology ring --n 8 --crash 2@20000 --dump run.jsonl
//   ./analyze_trace --trace run.jsonl --topology ring --n 8 --k 2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dining/checkers.hpp"
#include "dining/trace_io.hpp"
#include "graph/topology.hpp"
#include "util/table.hpp"

using namespace ekbd;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s --trace FILE --topology NAME --n N [options]\n"
      "  --k K          fairness bound to check (default 2)\n"
      "  --after T      evaluate 'eventual' properties from time T (default 0)\n"
      "  --seed S       seed for the 'random' topology (must match the run)\n"
      "  --horizon-frac F  starvation horizon as a fraction of the trace\n"
      "                    length, in percent (default 25)\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string topology = "ring";
  std::size_t n = 0;
  int k = 2;
  sim::Time after = 0;
  std::uint64_t seed = 1;
  long horizon_frac = 25;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--topology") topology = next();
    else if (arg == "--n") n = std::strtoull(next(), nullptr, 10);
    else if (arg == "--k") k = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--after") after = std::strtoll(next(), nullptr, 10);
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--horizon-frac") horizon_frac = std::strtol(next(), nullptr, 10);
    else usage(argv[0]);
  }
  if (trace_path.empty() || n == 0) usage(argv[0]);

  dining::Trace trace;
  try {
    trace = dining::read_jsonl_file(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  sim::Rng rng(seed ^ 0x70110ULL);  // matches scenario::build_graph derivation
  auto graph = graph::by_name(topology, n, rng);

  // Crash times come from the trace itself.
  std::vector<sim::Time> crash_times(n, -1);
  for (const auto& e : trace.events()) {
    if (e.kind == dining::TraceEventKind::kCrashed &&
        static_cast<std::size_t>(e.process) < n) {
      crash_times[static_cast<std::size_t>(e.process)] = e.at;
    }
  }

  const sim::Time horizon = trace.end_time() * horizon_frac / 100;
  auto ex = dining::check_exclusion(trace, graph);
  auto wf = dining::check_wait_freedom(trace, crash_times, horizon);
  auto census = dining::overtake_census(trace, graph);
  auto cp = dining::concurrency_profile(trace, graph);

  std::printf("trace: %s — %zu events over %lld ticks, %s(%zu)\n\n", trace_path.c_str(),
              trace.size(), static_cast<long long>(trace.end_time()), topology.c_str(), n);

  util::Table t({"property", "measured", "verdict"});
  t.row()
      .cell("weak exclusion after t=" + std::to_string(after))
      .cell(std::to_string(ex.violations.size()) + " violations total, " +
            std::to_string(ex.violations_after(after)) + " after")
      .cell(ex.violations_after(after) == 0 ? "HOLDS" : "VIOLATED");
  t.row()
      .cell("wait-freedom (horizon " + std::to_string(horizon) + ")")
      .cell(std::to_string(wf.starving.size()) + " starving of " +
            std::to_string(wf.sessions_total) + " sessions")
      .cell(wf.wait_free() ? "HOLDS" : "VIOLATED");
  const int max_ot = dining::max_overtakes(census, after);
  t.row()
      .cell(std::to_string(k) + "-bounded waiting after t=" + std::to_string(after))
      .cell("max overtakes = " + std::to_string(max_ot) + ", bound established at t=" +
            std::to_string(dining::k_bound_establishment(census, k)))
      .cell(max_ot <= k ? "HOLDS" : "VIOLATED");
  t.row()
      .cell("concurrency")
      .cell("max " + std::to_string(cp.max_concurrent_eaters) + " simultaneous eaters, " +
            std::to_string(cp.nonneighbor_overlaps) + " harmless overlaps")
      .cell("-");
  t.print();

  std::printf("response times: %s\n", wf.response.to_string().c_str());
  return 0;
}
