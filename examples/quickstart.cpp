// Quickstart: five philosophers on a ring, one crash, wait-free dining.
//
// Builds the paper's Algorithm 1 over a simulated asynchronous network
// with a scripted ◇P₁, crashes one process mid-run, and shows that
// everyone else keeps eating — then prints the property reports that
// correspond to the paper's three theorems.
//
//   ./examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;

int main(int argc, char** argv) {
  scenario::Config cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  cfg.topology = "ring";
  cfg.n = 5;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;      // crash -> permanent suspicion latency
  cfg.fp_count = 10;              // a few pre-convergence oracle mistakes
  cfg.fp_until = 5'000;
  cfg.crashes = {{2, 10'000}};    // philosopher 2 dies at t=10000
  cfg.run_for = 50'000;

  std::printf("ekbd quickstart — wait-free dining on ring(5), crash of p2 at t=10000\n");
  std::printf("(paper: Song & Pike, DSN 2007, Algorithm 1 with scripted <>P1)\n\n");

  scenario::Scenario s(cfg);
  s.run();

  // Per-philosopher meal counts, before/after the crash.
  util::Table meals({"philosopher", "color", "meals total", "meals after crash", "state at end"});
  for (int p = 0; p < static_cast<int>(cfg.n); ++p) {
    std::size_t total = 0, after = 0;
    for (const auto& e : s.trace().events()) {
      if (e.kind == dining::TraceEventKind::kStartEating && e.process == p) {
        ++total;
        if (e.at > 10'000) ++after;
      }
    }
    meals.row()
        .cell(std::string("p") + std::to_string(p) + (p == 2 ? " (crashed)" : ""))
        .cell(s.colors()[static_cast<std::size_t>(p)])
        .cell(static_cast<std::uint64_t>(total))
        .cell(static_cast<std::uint64_t>(after))
        .cell(s.sim().crashed(p) ? "dead" : dining::to_string(s.diner(p)->state()));
  }
  meals.print();

  auto ex = s.exclusion();
  auto wf = s.wait_freedom(10'000);
  auto census = s.census();
  const auto converged = s.fd_convergence_estimate();

  util::Table props({"property (paper)", "measured", "verdict"});
  props.row()
      .cell("Thm 1: eventual weak exclusion")
      .cell(std::to_string(ex.violations.size()) + " violations, last at t=" +
            std::to_string(ex.last_violation()) + ", 0 after t=" + std::to_string(converged))
      .cell(ex.violations_after(converged) == 0 ? "HOLDS" : "VIOLATED");
  props.row()
      .cell("Thm 2: wait-freedom")
      .cell(std::to_string(wf.sessions_completed) + "/" + std::to_string(wf.sessions_total) +
            " sessions fed, " + std::to_string(wf.starving.size()) + " starving")
      .cell(wf.wait_free() ? "HOLDS" : "VIOLATED");
  props.row()
      .cell("Thm 3: eventual 2-bounded waiting")
      .cell("max overtakes after convergence = " +
            std::to_string(dining::max_overtakes(census, converged)))
      .cell(dining::max_overtakes(census, converged) <= 2 ? "HOLDS" : "VIOLATED");
  props.row()
      .cell("S7: channel capacity <= 4")
      .cell("max in transit = " +
            std::to_string(s.sim().network().max_in_transit_any(sim::MsgLayer::kDining)))
      .cell(s.sim().network().max_in_transit_any(sim::MsgLayer::kDining) <= 4 ? "HOLDS"
                                                                              : "VIOLATED");
  props.row()
      .cell("S7: quiescence towards p2")
      .cell("last dining msg to p2 at t=" +
            std::to_string(s.sim().network().last_send_to(2, sim::MsgLayer::kDining)))
      .cell(s.sim().network().last_send_to(2, sim::MsgLayer::kDining) < 20'000 ? "HOLDS"
                                                                               : "VIOLATED");
  props.print();

  std::printf("mean hungry->eat latency: %.0f ticks (p95 %.0f)\n", wf.response.mean,
              wf.response.p95);
  std::printf("dining messages: %llu, detector messages: %llu\n",
              static_cast<unsigned long long>(s.sim().network().total_sent(sim::MsgLayer::kDining)),
              static_cast<unsigned long long>(
                  s.sim().network().total_sent(sim::MsgLayer::kDetector)));
  return 0;
}
