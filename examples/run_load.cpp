// run_load — workload-harness front end: drive the wait-free daemon as an
// open-loop scheduling service and measure what the closed loop can't.
//
// Single run: pick an arrival model, optional graph churn and
// crash-recovery cycles, get the offered/completed book, the overload
// verdict and the hungry→eat latency percentiles.
//
// Rate sweep (--sweep): run the same scenario once per offered rate and
// print the latency/throughput curve — the hockey stick where p99 leaves
// p50 is the service's capacity knee.
//
// Examples:
//   ./run_load --rate 4 --churn 30 --recover 2@15000:30000
//   ./run_load --arrivals bursty --rate 3 --burst 2000:8000
//   ./run_load --sweep 1,2,4,8,16,32 --n 12 --topology sparse
//   ./run_load --engine rt --rate 3 --run-for 4000 --n 6
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/load_scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::LoadConfig;
using scenario::LoadScenario;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --topology NAME      conflict graph (default ring)\n"
      "  --n N                number of processes (default 8)\n"
      "  --engine E           sim|rt (default sim; the harness needs an\n"
      "                       engine with recovery + churn hooks, so no proc)\n"
      "  --detector D         perfect|heartbeat|none (default perfect — the\n"
      "                       timeout detectors track the initial neighbor\n"
      "                       set, see docs/LOADGEN.md)\n"
      "  --seed S             RNG seed (default 1)\n"
      "  --run-for T          horizon in ticks (default 60000)\n"
      "  --rate R             offered arrivals per 1000 ticks (default 5)\n"
      "  --arrivals K         poisson|uniform|bursty (default poisson)\n"
      "  --global             one global stream dealt across actors instead\n"
      "                       of an independent stream per actor\n"
      "  --gap LO:HI          uniform model: inter-arrival gap bounds\n"
      "  --burst B:I          bursty model: burst/idle phase lengths in ticks\n"
      "  --burst-factor F     bursty model: burst rate multiplier (default 8)\n"
      "  --churn N            N edge mutations, incrementally recolored\n"
      "  --churn-window A:B   confine churn to [A, B] (default middle 80%%)\n"
      "  --recover P@T1:T2    crash P at T1, rejoin at T2 (repeatable;\n"
      "                       T2 < 0 = crash forever)\n"
      "  --sweep R1,R2,...    run once per rate, print the latency curve\n",
      argv0);
  std::exit(2);
}

bool parse_pair(const char* s, long long& a, long long& b, char sep) {
  char* end = nullptr;
  a = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != sep) return false;
  b = std::strtoll(end + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_triple(const char* s, long long& a, long long& b, long long& c) {
  char* end = nullptr;
  a = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != '@') return false;
  b = std::strtoll(end + 1, &end, 10);
  if (end == nullptr || *end != ':') return false;
  c = std::strtoll(end + 1, &end, 10);
  return end != nullptr && *end == '\0';
}

std::vector<double> parse_rates(const char* s) {
  std::vector<double> rates;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const double r = std::strtod(p, &end);
    if (end == p || r <= 0.0) return {};
    rates.push_back(r);
    p = (*end == ',') ? end + 1 : end;
    if (end == p - 1 && *p == '\0') return {};  // trailing comma
  }
  return rates;
}

struct RunResult {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backlog_hw = 0;
  bool overloaded = false;
  double p50 = 0, p99 = 0, p999 = 0;
  std::size_t churn_issued = 0;
  std::string agreement;
};

RunResult run_one(const LoadConfig& cfg) {
  LoadScenario s(cfg);
  s.run();
  const obs::Histogram lat = s.latency();
  RunResult r;
  r.offered = s.book().offered();
  r.completed = s.book().completed();
  r.dropped = s.book().dropped();
  r.backlog_hw = s.overload().backlog_high_water();
  r.overloaded = s.overload().overloaded();
  r.p50 = lat.quantile(0.50);
  r.p99 = lat.quantile(0.99);
  r.p999 = lat.quantile(0.999);
  r.churn_issued = s.churn_issued();
  r.agreement = s.monitor_agreement();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig cfg;
  cfg.base.run_for = 60'000;
  cfg.base.detector = scenario::DetectorKind::kPerfect;
  std::vector<double> sweep;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--topology") {
      cfg.base.topology = next();
    } else if (arg == "--n") {
      cfg.base.n = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--engine") {
      const std::string e = next();
      if (e == "sim") {
        cfg.base.engine = scenario::Engine::kSim;
      } else if (e == "rt") {
        cfg.base.engine = scenario::Engine::kRt;
      } else {
        std::fprintf(stderr, "unknown engine: %s (the harness runs sim|rt)\n", e.c_str());
        return 2;
      }
    } else if (arg == "--detector") {
      const std::string d = next();
      if (d == "perfect") {
        cfg.base.detector = scenario::DetectorKind::kPerfect;
      } else if (d == "heartbeat") {
        cfg.base.detector = scenario::DetectorKind::kHeartbeat;
        cfg.base.partial_synchrony = true;
      } else if (d == "none") {
        cfg.base.detector = scenario::DetectorKind::kNever;
      } else {
        std::fprintf(stderr, "unknown detector: %s (expected perfect|heartbeat|none)\n",
                     d.c_str());
        return 2;
      }
    } else if (arg == "--seed") {
      cfg.base.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-for") {
      cfg.base.run_for = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--rate") {
      cfg.arrivals.rate_per_kilotick = std::strtod(next(), nullptr);
      if (!(cfg.arrivals.rate_per_kilotick > 0.0)) usage(argv[0]);
    } else if (arg == "--arrivals") {
      const std::string k = next();
      if (k == "poisson") {
        cfg.arrivals.kind = load::ArrivalKind::kPoisson;
      } else if (k == "uniform") {
        cfg.arrivals.kind = load::ArrivalKind::kUniform;
      } else if (k == "bursty") {
        cfg.arrivals.kind = load::ArrivalKind::kBursty;
      } else {
        std::fprintf(stderr, "unknown arrival model: %s\n", k.c_str());
        return 2;
      }
    } else if (arg == "--global") {
      cfg.arrivals.per_actor = false;
    } else if (arg == "--gap") {
      long long lo = 0, hi = 0;
      if (!parse_pair(next(), lo, hi, ':')) usage(argv[0]);
      cfg.arrivals.gap_lo = lo;
      cfg.arrivals.gap_hi = hi;
    } else if (arg == "--burst") {
      long long b = 0, idle = 0;
      if (!parse_pair(next(), b, idle, ':')) usage(argv[0]);
      cfg.arrivals.burst_len = b;
      cfg.arrivals.idle_len = idle;
    } else if (arg == "--burst-factor") {
      cfg.arrivals.burst_factor = std::strtod(next(), nullptr);
    } else if (arg == "--churn") {
      cfg.churn.mutations = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--churn-window") {
      long long a = 0, b = 0;
      if (!parse_pair(next(), a, b, ':')) usage(argv[0]);
      cfg.churn.start = a;
      cfg.churn.end = b;
    } else if (arg == "--recover") {
      long long p = 0, t1 = 0, t2 = 0;
      if (!parse_triple(next(), p, t1, t2)) usage(argv[0]);
      cfg.recoveries.push_back({static_cast<sim::ProcessId>(p), t1, t2});
    } else if (arg == "--sweep") {
      sweep = parse_rates(next());
      if (sweep.empty()) usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }

  std::printf("load: %s(%zu), engine=%s, detector=%s, %s arrivals (%s), seed=%llu, "
              "horizon=%lld\n",
              cfg.base.topology.c_str(), cfg.base.n,
              scenario::to_string(cfg.base.engine).c_str(),
              scenario::to_string(cfg.base.detector).c_str(),
              load::to_string(cfg.arrivals.kind).c_str(),
              cfg.arrivals.per_actor ? "per-actor" : "global",
              static_cast<unsigned long long>(cfg.base.seed),
              static_cast<long long>(cfg.base.run_for));

  if (!sweep.empty()) {
    // Latency/throughput curve: same scenario, one run per offered rate.
    util::Table t({"rate/kt", "offered", "completed", "dropped", "backlog", "p50", "p99",
                   "p999", "overloaded"});
    bool all_agree = true;
    for (const double rate : sweep) {
      LoadConfig point = cfg;
      point.arrivals.rate_per_kilotick = rate;
      const RunResult r = run_one(point);
      t.row()
          .cell(rate, 2)
          .cell(r.offered)
          .cell(r.completed)
          .cell(r.dropped)
          .cell(r.backlog_hw)
          .cell(static_cast<std::uint64_t>(r.p50))
          .cell(static_cast<std::uint64_t>(r.p99))
          .cell(static_cast<std::uint64_t>(r.p999))
          .cell(r.overloaded ? "yes" : "no");
      if (!r.agreement.empty()) {
        all_agree = false;
        std::printf("MONITOR DISAGREEMENT at rate %.2f:\n%s\n", rate, r.agreement.c_str());
      }
    }
    t.print();
    std::printf(all_agree ? "online monitors agree with post-hoc checkers at every rate\n"
                          : "monitor disagreement — see above\n");
    return all_agree ? 0 : 1;
  }

  const RunResult r = run_one(cfg);
  util::Table t({"load metric", "value"});
  t.row().cell("offered / completed / dropped").cell(
      std::to_string(r.offered) + " / " + std::to_string(r.completed) + " / " +
      std::to_string(r.dropped));
  t.row().cell("backlog high-water").cell(r.backlog_hw);
  t.row().cell("overloaded at horizon").cell(r.overloaded ? "yes" : "no");
  t.row().cell("churn issued").cell(static_cast<std::uint64_t>(r.churn_issued));
  t.row().cell("hungry->eat p50/p99/p999").cell(
      std::to_string(static_cast<long long>(r.p50)) + "/" +
      std::to_string(static_cast<long long>(r.p99)) + "/" +
      std::to_string(static_cast<long long>(r.p999)));
  t.print();
  if (!r.agreement.empty()) {
    std::printf("MONITOR DISAGREEMENT:\n%s\n", r.agreement.c_str());
    return 1;
  }
  std::printf("online monitors agree with post-hoc checkers\n");
  return 0;
}
