// Fairness duel: the doorway's value, measured.
//
// Saturates a ring (everyone re-hungers almost instantly, long meals) and
// compares the worst-case overtaking of four dining algorithms as the run
// grows. Algorithm 1 settles at <= 2 (Theorem 3); static hierarchical
// priorities grow without bound; Chandy–Misra sits in between.
//
//   ./examples/fairness_duel [seed]
#include <cstdio>
#include <cstdlib>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;

namespace {

int worst_overtaking(scenario::Algorithm algo, std::uint64_t seed, sim::Time horizon) {
  scenario::Config cfg;
  cfg.seed = seed;
  cfg.algorithm = algo;
  cfg.detector = algo == scenario::Algorithm::kWaitFree ? scenario::DetectorKind::kScripted
                                                        : scenario::DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 8;
  cfg.harness.eat_lo = 40;
  cfg.harness.eat_hi = 100;
  cfg.run_for = horizon;
  scenario::Scenario s(cfg);
  s.run();
  return dining::max_overtakes(s.census(), 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  std::printf("=== fairness duel: max consecutive overtakes vs run length ===\n");
  std::printf("ring(8), saturated hunger (think 1-8, eat 40-100 ticks)\n\n");

  util::Table t({"run length", "Alg.1 (doorway+1ack)", "Choy-Singh doorway",
                 "Chandy-Misra", "hierarchical"});
  for (sim::Time horizon : {30'000, 60'000, 120'000, 240'000}) {
    t.row()
        .cell(static_cast<std::int64_t>(horizon))
        .cell(worst_overtaking(scenario::Algorithm::kWaitFree, seed, horizon))
        .cell(worst_overtaking(scenario::Algorithm::kChoySingh, seed, horizon))
        .cell(worst_overtaking(scenario::Algorithm::kChandyMisra, seed, horizon))
        .cell(worst_overtaking(scenario::Algorithm::kHierarchical, seed, horizon));
  }
  t.print();

  std::printf(
      "Reading: each cell is the maximum number of times any process started eating\n"
      "while one of its neighbors stayed continuously hungry. Algorithm 1's modified\n"
      "doorway (one ack per neighbor per hungry session) pins this at 2 regardless of\n"
      "run length; the hierarchical baseline's worst case keeps growing with the\n"
      "horizon because a high-priority neighbor can keep winning the shared fork.\n");
  return 0;
}
