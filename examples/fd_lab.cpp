// Failure-detector laboratory: watch a real heartbeat ◇P₁ converge.
//
// Runs the heartbeat detector under partial synchrony (GST at t=20000,
// nasty delay spikes before), crashes one process, and prints the
// suspicion timeline: every (owner, target) suspicion raised/retracted,
// sampled at fine granularity, plus the adaptive timeouts at the end.
//
//   ./examples/fd_lab [seed]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>

#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;

int main(int argc, char** argv) {
  scenario::Config cfg;
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  cfg.topology = "ring";
  cfg.n = 6;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kHeartbeat;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 20'000, .pre_lo = 1, .pre_hi = 150,
               .spike_prob = 0.15, .spike_factor = 25,
               .post_lo = 1, .post_hi = 6};
  cfg.heartbeat = {.period = 25, .initial_timeout = 35, .timeout_increment = 30};
  cfg.crashes = {{4, 45'000}};
  cfg.run_for = 90'000;

  std::printf("=== heartbeat <>P1 under partial synchrony, ring(6) ===\n");
  std::printf("GST at t=20000 (delay spikes before), p4 crashes at t=45000\n\n");

  scenario::Scenario s(cfg);

  // Poll the suspicion matrix and log transitions.
  std::map<std::pair<int, int>, bool> suspected;
  std::printf("suspicion timeline (sampled every 10 ticks):\n");
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&s, &suspected, poll] {
    for (int o = 0; o < static_cast<int>(s.config().n); ++o) {
      if (s.sim().crashed(o)) continue;
      for (auto tgt : s.graph().neighbors(o)) {
        const bool now_suspected = s.detector().suspects(o, tgt);
        bool& prev = suspected[{o, tgt}];
        if (now_suspected != prev) {
          const bool actually_dead = s.sim().crashed(tgt);
          std::printf("  t=%-7lld p%d %s p%d%s\n",
                      static_cast<long long>(s.sim().now()), o,
                      now_suspected ? "suspects " : "trusts   ", tgt,
                      now_suspected ? (actually_dead ? "  [true positive]" : "  [FALSE positive]")
                                    : "");
          prev = now_suspected;
        }
      }
    }
    s.sim().schedule_in(10, *poll);
  };
  s.sim().schedule_in(10, *poll);

  s.run();

  std::printf("\nfinal adaptive timeouts (grew with every pre-GST mistake):\n");
  util::Table t({"owner", "neighbor", "timeout (ticks)", "suspected at end"});
  for (int o = 0; o < static_cast<int>(cfg.n); ++o) {
    if (s.sim().crashed(o)) continue;
    auto* diner = s.diner(o);
    const auto* module = diner->heartbeat_module();
    for (auto tgt : s.graph().neighbors(o)) {
      t.row()
          .cell(std::string("p") + std::to_string(o))
          .cell(std::string("p") + std::to_string(tgt))
          .cell(static_cast<std::int64_t>(module->timeout_of(tgt)))
          .cell(module->suspects(tgt));
    }
  }
  t.print();

  std::printf("false suspicions total: %llu, last retraction at t=%lld\n",
              static_cast<unsigned long long>(s.heartbeat_detector()->total_false_suspicions()),
              static_cast<long long>(s.heartbeat_detector()->last_retraction()));
  std::printf("dining layer was wait-free throughout: %s\n",
              s.wait_freedom(20'000).wait_free() ? "yes" : "NO");
  return 0;
}
