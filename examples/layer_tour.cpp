// layer_tour — building an experiment by hand, one layer at a time.
//
// The other examples go through scenario::Scenario; this one assembles the
// same stack from raw parts so each layer's public API is visible:
//
//   1. a conflict graph and a proper coloring        (graph)
//   2. a simulator with a partial-synchrony network  (sim)
//   3. a heartbeat ◇P₁ module inside every process   (fd)
//   4. one WaitFreeDiner per vertex                  (core)
//   5. a harness driving hunger/meals/crashes        (dining)
//   6. a stabilizing protocol scheduled by the dining layer (daemon+stab)
//   7. checkers over the recorded trace              (dining::checkers)
//
//   ./examples/layer_tour [seed]
#include <cstdio>
#include <cstdlib>

#include "core/wait_free_diner.hpp"
#include "daemon/scheduler.hpp"
#include "dining/checkers.hpp"
#include "dining/harness.hpp"
#include "fd/heartbeat.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "sim/simulator.hpp"
#include "stab/coloring.hpp"

using namespace ekbd;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // 1. Topology + static priorities. Any proper coloring works; fewer
  //    colors means shorter priority chains (faster phase 2).
  auto graph = graph::torus(3, 3);
  auto colors = graph::welsh_powell_coloring(graph);
  std::printf("torus(3,3): %zu processes, %zu conflict edges, %zu colors\n", graph.size(),
              graph.num_edges(), graph::num_colors(colors));

  // 2. Simulator: partially synchronous network (GST at t=8000) — the
  //    weakest environment where ◇P₁ is implementable.
  sim::PartialSynchronyDelay::Params delays;
  delays.gst = 8'000;
  delays.pre_lo = 1;
  delays.pre_hi = 80;
  delays.spike_prob = 0.08;
  delays.spike_factor = 15;
  delays.post_lo = 1;
  delays.post_hi = 6;
  sim::Simulator sim(seed, sim::make_partial_synchrony(delays));

  // 3+4. One diner per vertex, each hosting its own heartbeat module.
  fd::HeartbeatDetector detector;
  dining::HarnessOptions opts;
  opts.think_lo = 10;
  opts.think_hi = 60;
  dining::Harness harness(sim, graph, opts);
  for (std::size_t v = 0; v < graph.size(); ++v) {
    const auto p = static_cast<sim::ProcessId>(v);
    std::vector<sim::ProcessId> neighbors = graph.neighbors(p);
    std::vector<int> ncolors;
    for (auto j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
    auto* diner = sim.make_actor<core::WaitFreeDiner>(std::move(neighbors), colors[v],
                                                      std::move(ncolors), detector);
    harness.manage(diner);
  }
  harness.install_heartbeats(detector,
                             {.period = 25, .initial_timeout = 40, .timeout_increment = 25});

  // 5. Environment: one crash mid-run.
  harness.schedule_crash(4, 25'000);  // the torus has no "center", pick one

  // 6. Application: stabilizing graph coloring scheduled by the daemon.
  stab::StabilizingColoring protocol;
  stab::StateTable registers(graph.size(), 1);  // all-zero: every edge conflicts
  daemon::DaemonScheduler daemon(harness, protocol, registers);

  // Run.
  const sim::Time horizon = 120'000;
  harness.run_until(horizon);

  // 7. Reports.
  auto exclusion = dining::check_exclusion(harness.trace(), graph);
  auto wait_freedom = dining::check_wait_freedom(harness.trace(), harness.crash_times(),
                                                 /*starvation_horizon=*/25'000);
  auto census = dining::overtake_census(harness.trace(), graph);

  std::printf("meals: %zu   mean hungry->eat: %.0f ticks\n",
              harness.trace().count(dining::TraceEventKind::kStartEating),
              wait_freedom.response.mean);
  std::printf("wait-free: %s   (%zu starving)\n", wait_freedom.wait_free() ? "yes" : "NO",
              wait_freedom.starving.size());
  std::printf("exclusion violations: %zu (last at t=%lld, FD retractions until t=%lld)\n",
              exclusion.violations.size(), static_cast<long long>(exclusion.last_violation()),
              static_cast<long long>(detector.last_retraction()));
  std::printf("max overtaking after FD settled: %d\n",
              dining::max_overtakes(census, detector.last_retraction()));
  std::printf("daemon: %llu protocol steps, %llu scheduling mistakes, converged: %s\n",
              static_cast<unsigned long long>(daemon.steps_executed()),
              static_cast<unsigned long long>(daemon.sharing_violations()),
              daemon.converged() ? "yes" : "NO");
  return 0;
}
