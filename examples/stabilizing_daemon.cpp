// The paper's motivating application: a wait-free distributed daemon
// scheduling a self-stabilizing protocol through crash faults, transient
// faults, and pre-convergence scheduling mistakes.
//
// Runs Dijkstra's K-state token ring (crash-free, with transient bursts)
// and the stabilizing graph coloring (with two crashes) under Algorithm 1,
// then re-runs the coloring under the crash-oblivious Choy–Singh daemon to
// show convergence is lost.
//
//   ./examples/stabilizing_daemon [seed]
#include <cstdio>
#include <cstdlib>

#include "daemon/fault_injector.hpp"
#include "daemon/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "stab/coloring.hpp"
#include "stab/token_ring.hpp"
#include "util/table.hpp"

using namespace ekbd;

namespace {

scenario::Config daemon_cfg(scenario::Algorithm algo, std::uint64_t seed) {
  scenario::Config cfg;
  cfg.seed = seed;
  cfg.algorithm = algo;
  cfg.detector = algo == scenario::Algorithm::kWaitFree ? scenario::DetectorKind::kScripted
                                                        : scenario::DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.detection_delay = 150;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 50;
  cfg.run_for = 150'000;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::printf("=== wait-free distributed daemon scheduling stabilizing protocols ===\n\n");

  util::Table table({"protocol", "daemon", "faults injected", "crashes", "steps",
                     "sched. mistakes", "converged", "last illegitimate t"});

  // --- 1. Dijkstra token ring + transient bursts, wait-free daemon ------
  {
    auto cfg = daemon_cfg(scenario::Algorithm::kWaitFree, seed);
    scenario::Scenario s(cfg);
    stab::DijkstraTokenRing proto(cfg.n);
    stab::StateTable regs(cfg.n, 1);
    sim::Rng rng(seed);
    regs.randomize(rng, 0, proto.k() - 1);  // arbitrary initial configuration
    daemon::DaemonScheduler d(s.harness(), proto, regs);
    daemon::FaultInjector inj(s.sim(), regs, proto, s.graph(), seed ^ 0xFA17);
    inj.schedule_train(30'000, 20'000, 4, 3);
    s.run();
    table.row()
        .cell(proto.name())
        .cell("Alg.1 (wait-free)")
        .cell(inj.corruptions_applied())
        .cell("0")
        .cell(d.steps_executed())
        .cell(d.sharing_violations())
        .cell(d.converged())
        .cell(d.last_illegitimate());
  }

  // --- 2. Stabilizing coloring + two crashes, wait-free daemon ----------
  {
    auto cfg = daemon_cfg(scenario::Algorithm::kWaitFree, seed);
    cfg.fp_count = 25;  // some pre-convergence oracle mistakes too
    cfg.fp_until = 10'000;
    cfg.crashes = {{2, 20'000}, {6, 40'000}};
    scenario::Scenario s(cfg);
    stab::StabilizingColoring proto;
    stab::StateTable regs(cfg.n, 1);  // all zeros: maximally conflicting
    daemon::DaemonScheduler d(s.harness(), proto, regs);
    s.run();
    table.row()
        .cell(proto.name())
        .cell("Alg.1 (wait-free)")
        .cell("0")
        .cell("2")
        .cell(d.steps_executed())
        .cell(d.sharing_violations())
        .cell(d.converged())
        .cell(d.last_illegitimate());
  }

  // --- 3. Same coloring + crash, crash-oblivious Choy–Singh daemon ------
  {
    auto cfg = daemon_cfg(scenario::Algorithm::kChoySingh, seed);
    cfg.crashes = {{2, 1}};
    scenario::Scenario s(cfg);
    stab::StabilizingColoring proto;
    stab::StateTable regs(cfg.n, 1);
    daemon::DaemonScheduler d(s.harness(), proto, regs);
    s.run();
    table.row()
        .cell(proto.name())
        .cell("Choy-Singh (no oracle)")
        .cell("0")
        .cell("1")
        .cell(d.steps_executed())
        .cell(d.sharing_violations())
        .cell(d.converged())
        .cell(d.last_illegitimate());
  }

  table.print();
  std::printf(
      "Reading: the wait-free daemon keeps every correct process executing, so the\n"
      "stabilizing layer converges after the last fault — even with crashes and with\n"
      "scheduling mistakes before <>P1 settles (each mistake is just one more transient\n"
      "fault). The crash-oblivious daemon starves the victim's neighbors; a conflict\n"
      "parked next to a starved process is never repaired, so convergence is lost.\n");
  return 0;
}
