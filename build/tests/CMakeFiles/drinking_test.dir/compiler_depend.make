# Empty compiler generated dependencies file for drinking_test.
# This may be replaced when dependencies are built.
