file(REMOVE_RECURSE
  "CMakeFiles/drinking_test.dir/drinking_test.cpp.o"
  "CMakeFiles/drinking_test.dir/drinking_test.cpp.o.d"
  "drinking_test"
  "drinking_test.pdb"
  "drinking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drinking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
