# Empty dependencies file for stab_test.
# This may be replaced when dependencies are built.
