file(REMOVE_RECURSE
  "CMakeFiles/stab_test.dir/stab_test.cpp.o"
  "CMakeFiles/stab_test.dir/stab_test.cpp.o.d"
  "stab_test"
  "stab_test.pdb"
  "stab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
