file(REMOVE_RECURSE
  "CMakeFiles/baseline_actions_test.dir/baseline_actions_test.cpp.o"
  "CMakeFiles/baseline_actions_test.dir/baseline_actions_test.cpp.o.d"
  "baseline_actions_test"
  "baseline_actions_test.pdb"
  "baseline_actions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_actions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
