# Empty compiler generated dependencies file for baseline_actions_test.
# This may be replaced when dependencies are built.
