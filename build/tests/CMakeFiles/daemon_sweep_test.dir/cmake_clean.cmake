file(REMOVE_RECURSE
  "CMakeFiles/daemon_sweep_test.dir/daemon_sweep_test.cpp.o"
  "CMakeFiles/daemon_sweep_test.dir/daemon_sweep_test.cpp.o.d"
  "daemon_sweep_test"
  "daemon_sweep_test.pdb"
  "daemon_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
