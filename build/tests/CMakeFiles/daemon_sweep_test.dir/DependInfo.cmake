
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/daemon_sweep_test.cpp" "tests/CMakeFiles/daemon_sweep_test.dir/daemon_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/daemon_sweep_test.dir/daemon_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ekbd_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_stab.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_drinking.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_dining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
