# Empty dependencies file for necessity_test.
# This may be replaced when dependencies are built.
