file(REMOVE_RECURSE
  "CMakeFiles/necessity_test.dir/necessity_test.cpp.o"
  "CMakeFiles/necessity_test.dir/necessity_test.cpp.o.d"
  "necessity_test"
  "necessity_test.pdb"
  "necessity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necessity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
