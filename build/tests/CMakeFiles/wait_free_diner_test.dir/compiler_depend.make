# Empty compiler generated dependencies file for wait_free_diner_test.
# This may be replaced when dependencies are built.
