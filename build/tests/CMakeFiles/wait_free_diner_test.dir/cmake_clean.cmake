file(REMOVE_RECURSE
  "CMakeFiles/wait_free_diner_test.dir/wait_free_diner_test.cpp.o"
  "CMakeFiles/wait_free_diner_test.dir/wait_free_diner_test.cpp.o.d"
  "wait_free_diner_test"
  "wait_free_diner_test.pdb"
  "wait_free_diner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_free_diner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
