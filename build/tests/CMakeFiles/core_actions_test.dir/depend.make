# Empty dependencies file for core_actions_test.
# This may be replaced when dependencies are built.
