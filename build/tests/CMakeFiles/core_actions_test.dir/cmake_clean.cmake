file(REMOVE_RECURSE
  "CMakeFiles/core_actions_test.dir/core_actions_test.cpp.o"
  "CMakeFiles/core_actions_test.dir/core_actions_test.cpp.o.d"
  "core_actions_test"
  "core_actions_test.pdb"
  "core_actions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_actions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
