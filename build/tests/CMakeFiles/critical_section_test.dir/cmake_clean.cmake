file(REMOVE_RECURSE
  "CMakeFiles/critical_section_test.dir/critical_section_test.cpp.o"
  "CMakeFiles/critical_section_test.dir/critical_section_test.cpp.o.d"
  "critical_section_test"
  "critical_section_test.pdb"
  "critical_section_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_section_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
