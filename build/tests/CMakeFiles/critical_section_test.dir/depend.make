# Empty dependencies file for critical_section_test.
# This may be replaced when dependencies are built.
