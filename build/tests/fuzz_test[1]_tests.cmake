add_test([=[Fuzz.RandomConfigurationsKeepEveryGuarantee]=]  /root/repo/build/tests/fuzz_test [==[--gtest_filter=Fuzz.RandomConfigurationsKeepEveryGuarantee]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Fuzz.RandomConfigurationsKeepEveryGuarantee]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  fuzz_test_TESTS Fuzz.RandomConfigurationsKeepEveryGuarantee)
