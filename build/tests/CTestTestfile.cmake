# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/fd_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/checkers_test[1]_include.cmake")
include("/root/repo/build/tests/wait_free_diner_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/stab_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/core_actions_test[1]_include.cmake")
include("/root/repo/build/tests/necessity_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_actions_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/qos_test[1]_include.cmake")
include("/root/repo/build/tests/critical_section_test[1]_include.cmake")
include("/root/repo/build/tests/event_log_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/drinking_test[1]_include.cmake")
