file(REMOVE_RECURSE
  "libekbd_drinking.a"
)
