file(REMOVE_RECURSE
  "CMakeFiles/ekbd_drinking.dir/drinking/drinking_diner.cpp.o"
  "CMakeFiles/ekbd_drinking.dir/drinking/drinking_diner.cpp.o.d"
  "CMakeFiles/ekbd_drinking.dir/drinking/drinking_harness.cpp.o"
  "CMakeFiles/ekbd_drinking.dir/drinking/drinking_harness.cpp.o.d"
  "libekbd_drinking.a"
  "libekbd_drinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_drinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
