# Empty dependencies file for ekbd_drinking.
# This may be replaced when dependencies are built.
