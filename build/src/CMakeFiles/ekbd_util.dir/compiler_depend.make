# Empty compiler generated dependencies file for ekbd_util.
# This may be replaced when dependencies are built.
