file(REMOVE_RECURSE
  "libekbd_util.a"
)
