file(REMOVE_RECURSE
  "CMakeFiles/ekbd_util.dir/util/stats.cpp.o"
  "CMakeFiles/ekbd_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/ekbd_util.dir/util/table.cpp.o"
  "CMakeFiles/ekbd_util.dir/util/table.cpp.o.d"
  "libekbd_util.a"
  "libekbd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
