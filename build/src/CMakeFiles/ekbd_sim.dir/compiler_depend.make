# Empty compiler generated dependencies file for ekbd_sim.
# This may be replaced when dependencies are built.
