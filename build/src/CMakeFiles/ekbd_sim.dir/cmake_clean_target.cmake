file(REMOVE_RECURSE
  "libekbd_sim.a"
)
