file(REMOVE_RECURSE
  "CMakeFiles/ekbd_sim.dir/sim/delay_model.cpp.o"
  "CMakeFiles/ekbd_sim.dir/sim/delay_model.cpp.o.d"
  "CMakeFiles/ekbd_sim.dir/sim/event_log.cpp.o"
  "CMakeFiles/ekbd_sim.dir/sim/event_log.cpp.o.d"
  "CMakeFiles/ekbd_sim.dir/sim/network.cpp.o"
  "CMakeFiles/ekbd_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/ekbd_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ekbd_sim.dir/sim/simulator.cpp.o.d"
  "libekbd_sim.a"
  "libekbd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
