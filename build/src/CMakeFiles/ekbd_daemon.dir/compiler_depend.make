# Empty compiler generated dependencies file for ekbd_daemon.
# This may be replaced when dependencies are built.
