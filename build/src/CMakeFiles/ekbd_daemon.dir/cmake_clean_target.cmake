file(REMOVE_RECURSE
  "libekbd_daemon.a"
)
