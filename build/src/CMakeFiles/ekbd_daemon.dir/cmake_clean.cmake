file(REMOVE_RECURSE
  "CMakeFiles/ekbd_daemon.dir/daemon/critical_section.cpp.o"
  "CMakeFiles/ekbd_daemon.dir/daemon/critical_section.cpp.o.d"
  "CMakeFiles/ekbd_daemon.dir/daemon/fault_injector.cpp.o"
  "CMakeFiles/ekbd_daemon.dir/daemon/fault_injector.cpp.o.d"
  "CMakeFiles/ekbd_daemon.dir/daemon/scheduler.cpp.o"
  "CMakeFiles/ekbd_daemon.dir/daemon/scheduler.cpp.o.d"
  "libekbd_daemon.a"
  "libekbd_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
