file(REMOVE_RECURSE
  "libekbd_core.a"
)
