file(REMOVE_RECURSE
  "CMakeFiles/ekbd_core.dir/core/wait_free_diner.cpp.o"
  "CMakeFiles/ekbd_core.dir/core/wait_free_diner.cpp.o.d"
  "libekbd_core.a"
  "libekbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
