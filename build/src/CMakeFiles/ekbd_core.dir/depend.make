# Empty dependencies file for ekbd_core.
# This may be replaced when dependencies are built.
