
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stab/bfs_tree.cpp" "src/CMakeFiles/ekbd_stab.dir/stab/bfs_tree.cpp.o" "gcc" "src/CMakeFiles/ekbd_stab.dir/stab/bfs_tree.cpp.o.d"
  "/root/repo/src/stab/coloring.cpp" "src/CMakeFiles/ekbd_stab.dir/stab/coloring.cpp.o" "gcc" "src/CMakeFiles/ekbd_stab.dir/stab/coloring.cpp.o.d"
  "/root/repo/src/stab/matching.cpp" "src/CMakeFiles/ekbd_stab.dir/stab/matching.cpp.o" "gcc" "src/CMakeFiles/ekbd_stab.dir/stab/matching.cpp.o.d"
  "/root/repo/src/stab/mis.cpp" "src/CMakeFiles/ekbd_stab.dir/stab/mis.cpp.o" "gcc" "src/CMakeFiles/ekbd_stab.dir/stab/mis.cpp.o.d"
  "/root/repo/src/stab/token_ring.cpp" "src/CMakeFiles/ekbd_stab.dir/stab/token_ring.cpp.o" "gcc" "src/CMakeFiles/ekbd_stab.dir/stab/token_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ekbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
