# Empty compiler generated dependencies file for ekbd_stab.
# This may be replaced when dependencies are built.
