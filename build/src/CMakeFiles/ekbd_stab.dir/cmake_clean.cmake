file(REMOVE_RECURSE
  "CMakeFiles/ekbd_stab.dir/stab/bfs_tree.cpp.o"
  "CMakeFiles/ekbd_stab.dir/stab/bfs_tree.cpp.o.d"
  "CMakeFiles/ekbd_stab.dir/stab/coloring.cpp.o"
  "CMakeFiles/ekbd_stab.dir/stab/coloring.cpp.o.d"
  "CMakeFiles/ekbd_stab.dir/stab/matching.cpp.o"
  "CMakeFiles/ekbd_stab.dir/stab/matching.cpp.o.d"
  "CMakeFiles/ekbd_stab.dir/stab/mis.cpp.o"
  "CMakeFiles/ekbd_stab.dir/stab/mis.cpp.o.d"
  "CMakeFiles/ekbd_stab.dir/stab/token_ring.cpp.o"
  "CMakeFiles/ekbd_stab.dir/stab/token_ring.cpp.o.d"
  "libekbd_stab.a"
  "libekbd_stab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_stab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
