file(REMOVE_RECURSE
  "libekbd_stab.a"
)
