
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/accrual.cpp" "src/CMakeFiles/ekbd_fd.dir/fd/accrual.cpp.o" "gcc" "src/CMakeFiles/ekbd_fd.dir/fd/accrual.cpp.o.d"
  "/root/repo/src/fd/heartbeat.cpp" "src/CMakeFiles/ekbd_fd.dir/fd/heartbeat.cpp.o" "gcc" "src/CMakeFiles/ekbd_fd.dir/fd/heartbeat.cpp.o.d"
  "/root/repo/src/fd/pingpong.cpp" "src/CMakeFiles/ekbd_fd.dir/fd/pingpong.cpp.o" "gcc" "src/CMakeFiles/ekbd_fd.dir/fd/pingpong.cpp.o.d"
  "/root/repo/src/fd/qos.cpp" "src/CMakeFiles/ekbd_fd.dir/fd/qos.cpp.o" "gcc" "src/CMakeFiles/ekbd_fd.dir/fd/qos.cpp.o.d"
  "/root/repo/src/fd/scripted.cpp" "src/CMakeFiles/ekbd_fd.dir/fd/scripted.cpp.o" "gcc" "src/CMakeFiles/ekbd_fd.dir/fd/scripted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ekbd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
