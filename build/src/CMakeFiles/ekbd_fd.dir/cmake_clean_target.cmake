file(REMOVE_RECURSE
  "libekbd_fd.a"
)
