file(REMOVE_RECURSE
  "CMakeFiles/ekbd_fd.dir/fd/accrual.cpp.o"
  "CMakeFiles/ekbd_fd.dir/fd/accrual.cpp.o.d"
  "CMakeFiles/ekbd_fd.dir/fd/heartbeat.cpp.o"
  "CMakeFiles/ekbd_fd.dir/fd/heartbeat.cpp.o.d"
  "CMakeFiles/ekbd_fd.dir/fd/pingpong.cpp.o"
  "CMakeFiles/ekbd_fd.dir/fd/pingpong.cpp.o.d"
  "CMakeFiles/ekbd_fd.dir/fd/qos.cpp.o"
  "CMakeFiles/ekbd_fd.dir/fd/qos.cpp.o.d"
  "CMakeFiles/ekbd_fd.dir/fd/scripted.cpp.o"
  "CMakeFiles/ekbd_fd.dir/fd/scripted.cpp.o.d"
  "libekbd_fd.a"
  "libekbd_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
