# Empty compiler generated dependencies file for ekbd_fd.
# This may be replaced when dependencies are built.
