file(REMOVE_RECURSE
  "libekbd_graph.a"
)
