# Empty compiler generated dependencies file for ekbd_graph.
# This may be replaced when dependencies are built.
