file(REMOVE_RECURSE
  "CMakeFiles/ekbd_graph.dir/graph/coloring.cpp.o"
  "CMakeFiles/ekbd_graph.dir/graph/coloring.cpp.o.d"
  "CMakeFiles/ekbd_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/ekbd_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/ekbd_graph.dir/graph/topology.cpp.o"
  "CMakeFiles/ekbd_graph.dir/graph/topology.cpp.o.d"
  "libekbd_graph.a"
  "libekbd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
