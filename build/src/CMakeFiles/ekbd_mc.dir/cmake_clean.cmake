file(REMOVE_RECURSE
  "CMakeFiles/ekbd_mc.dir/mc/explorer.cpp.o"
  "CMakeFiles/ekbd_mc.dir/mc/explorer.cpp.o.d"
  "libekbd_mc.a"
  "libekbd_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
