file(REMOVE_RECURSE
  "libekbd_mc.a"
)
