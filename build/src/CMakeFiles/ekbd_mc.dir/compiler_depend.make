# Empty compiler generated dependencies file for ekbd_mc.
# This may be replaced when dependencies are built.
