file(REMOVE_RECURSE
  "CMakeFiles/ekbd_scenario.dir/scenario/scenario.cpp.o"
  "CMakeFiles/ekbd_scenario.dir/scenario/scenario.cpp.o.d"
  "libekbd_scenario.a"
  "libekbd_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
