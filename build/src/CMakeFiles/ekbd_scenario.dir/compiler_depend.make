# Empty compiler generated dependencies file for ekbd_scenario.
# This may be replaced when dependencies are built.
