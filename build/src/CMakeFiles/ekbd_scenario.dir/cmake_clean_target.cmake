file(REMOVE_RECURSE
  "libekbd_scenario.a"
)
