file(REMOVE_RECURSE
  "CMakeFiles/ekbd_dining.dir/dining/checkers.cpp.o"
  "CMakeFiles/ekbd_dining.dir/dining/checkers.cpp.o.d"
  "CMakeFiles/ekbd_dining.dir/dining/harness.cpp.o"
  "CMakeFiles/ekbd_dining.dir/dining/harness.cpp.o.d"
  "CMakeFiles/ekbd_dining.dir/dining/trace.cpp.o"
  "CMakeFiles/ekbd_dining.dir/dining/trace.cpp.o.d"
  "CMakeFiles/ekbd_dining.dir/dining/trace_io.cpp.o"
  "CMakeFiles/ekbd_dining.dir/dining/trace_io.cpp.o.d"
  "libekbd_dining.a"
  "libekbd_dining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_dining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
