# Empty dependencies file for ekbd_dining.
# This may be replaced when dependencies are built.
