
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dining/checkers.cpp" "src/CMakeFiles/ekbd_dining.dir/dining/checkers.cpp.o" "gcc" "src/CMakeFiles/ekbd_dining.dir/dining/checkers.cpp.o.d"
  "/root/repo/src/dining/harness.cpp" "src/CMakeFiles/ekbd_dining.dir/dining/harness.cpp.o" "gcc" "src/CMakeFiles/ekbd_dining.dir/dining/harness.cpp.o.d"
  "/root/repo/src/dining/trace.cpp" "src/CMakeFiles/ekbd_dining.dir/dining/trace.cpp.o" "gcc" "src/CMakeFiles/ekbd_dining.dir/dining/trace.cpp.o.d"
  "/root/repo/src/dining/trace_io.cpp" "src/CMakeFiles/ekbd_dining.dir/dining/trace_io.cpp.o" "gcc" "src/CMakeFiles/ekbd_dining.dir/dining/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ekbd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ekbd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
