file(REMOVE_RECURSE
  "libekbd_dining.a"
)
