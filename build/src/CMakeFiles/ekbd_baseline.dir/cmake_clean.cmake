file(REMOVE_RECURSE
  "CMakeFiles/ekbd_baseline.dir/baseline/chandy_misra_diner.cpp.o"
  "CMakeFiles/ekbd_baseline.dir/baseline/chandy_misra_diner.cpp.o.d"
  "CMakeFiles/ekbd_baseline.dir/baseline/doorway_diner.cpp.o"
  "CMakeFiles/ekbd_baseline.dir/baseline/doorway_diner.cpp.o.d"
  "CMakeFiles/ekbd_baseline.dir/baseline/hierarchical_diner.cpp.o"
  "CMakeFiles/ekbd_baseline.dir/baseline/hierarchical_diner.cpp.o.d"
  "libekbd_baseline.a"
  "libekbd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ekbd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
