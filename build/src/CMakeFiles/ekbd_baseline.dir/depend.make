# Empty dependencies file for ekbd_baseline.
# This may be replaced when dependencies are built.
