file(REMOVE_RECURSE
  "libekbd_baseline.a"
)
