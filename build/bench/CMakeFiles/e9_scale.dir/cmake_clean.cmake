file(REMOVE_RECURSE
  "CMakeFiles/e9_scale.dir/e9_scale.cpp.o"
  "CMakeFiles/e9_scale.dir/e9_scale.cpp.o.d"
  "e9_scale"
  "e9_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
