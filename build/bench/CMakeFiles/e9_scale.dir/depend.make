# Empty dependencies file for e9_scale.
# This may be replaced when dependencies are built.
