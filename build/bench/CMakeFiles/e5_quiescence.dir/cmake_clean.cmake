file(REMOVE_RECURSE
  "CMakeFiles/e5_quiescence.dir/e5_quiescence.cpp.o"
  "CMakeFiles/e5_quiescence.dir/e5_quiescence.cpp.o.d"
  "e5_quiescence"
  "e5_quiescence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_quiescence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
