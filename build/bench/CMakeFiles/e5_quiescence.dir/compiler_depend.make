# Empty compiler generated dependencies file for e5_quiescence.
# This may be replaced when dependencies are built.
