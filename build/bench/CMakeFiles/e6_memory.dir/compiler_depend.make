# Empty compiler generated dependencies file for e6_memory.
# This may be replaced when dependencies are built.
