file(REMOVE_RECURSE
  "CMakeFiles/e6_memory.dir/e6_memory.cpp.o"
  "CMakeFiles/e6_memory.dir/e6_memory.cpp.o.d"
  "e6_memory"
  "e6_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
