file(REMOVE_RECURSE
  "CMakeFiles/e8_detector.dir/e8_detector.cpp.o"
  "CMakeFiles/e8_detector.dir/e8_detector.cpp.o.d"
  "e8_detector"
  "e8_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
