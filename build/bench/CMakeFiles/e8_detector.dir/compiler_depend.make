# Empty compiler generated dependencies file for e8_detector.
# This may be replaced when dependencies are built.
