file(REMOVE_RECURSE
  "CMakeFiles/e19_drinking.dir/e19_drinking.cpp.o"
  "CMakeFiles/e19_drinking.dir/e19_drinking.cpp.o.d"
  "e19_drinking"
  "e19_drinking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e19_drinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
