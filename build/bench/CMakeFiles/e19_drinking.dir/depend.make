# Empty dependencies file for e19_drinking.
# This may be replaced when dependencies are built.
