file(REMOVE_RECURSE
  "CMakeFiles/e16_fairness_convergence.dir/e16_fairness_convergence.cpp.o"
  "CMakeFiles/e16_fairness_convergence.dir/e16_fairness_convergence.cpp.o.d"
  "e16_fairness_convergence"
  "e16_fairness_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e16_fairness_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
