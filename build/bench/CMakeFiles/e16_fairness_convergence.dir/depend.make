# Empty dependencies file for e16_fairness_convergence.
# This may be replaced when dependencies are built.
