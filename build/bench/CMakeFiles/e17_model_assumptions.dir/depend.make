# Empty dependencies file for e17_model_assumptions.
# This may be replaced when dependencies are built.
