file(REMOVE_RECURSE
  "CMakeFiles/e17_model_assumptions.dir/e17_model_assumptions.cpp.o"
  "CMakeFiles/e17_model_assumptions.dir/e17_model_assumptions.cpp.o.d"
  "e17_model_assumptions"
  "e17_model_assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e17_model_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
