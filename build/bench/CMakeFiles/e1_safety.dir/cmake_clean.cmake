file(REMOVE_RECURSE
  "CMakeFiles/e1_safety.dir/e1_safety.cpp.o"
  "CMakeFiles/e1_safety.dir/e1_safety.cpp.o.d"
  "e1_safety"
  "e1_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
