# Empty dependencies file for e1_safety.
# This may be replaced when dependencies are built.
