file(REMOVE_RECURSE
  "CMakeFiles/e2_waitfree.dir/e2_waitfree.cpp.o"
  "CMakeFiles/e2_waitfree.dir/e2_waitfree.cpp.o.d"
  "e2_waitfree"
  "e2_waitfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_waitfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
