# Empty dependencies file for e2_waitfree.
# This may be replaced when dependencies are built.
