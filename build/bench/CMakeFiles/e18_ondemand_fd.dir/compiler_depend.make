# Empty compiler generated dependencies file for e18_ondemand_fd.
# This may be replaced when dependencies are built.
