file(REMOVE_RECURSE
  "CMakeFiles/e18_ondemand_fd.dir/e18_ondemand_fd.cpp.o"
  "CMakeFiles/e18_ondemand_fd.dir/e18_ondemand_fd.cpp.o.d"
  "e18_ondemand_fd"
  "e18_ondemand_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e18_ondemand_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
