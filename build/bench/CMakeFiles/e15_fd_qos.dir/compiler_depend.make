# Empty compiler generated dependencies file for e15_fd_qos.
# This may be replaced when dependencies are built.
