file(REMOVE_RECURSE
  "CMakeFiles/e15_fd_qos.dir/e15_fd_qos.cpp.o"
  "CMakeFiles/e15_fd_qos.dir/e15_fd_qos.cpp.o.d"
  "e15_fd_qos"
  "e15_fd_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_fd_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
