# Empty dependencies file for e3_fairness.
# This may be replaced when dependencies are built.
