file(REMOVE_RECURSE
  "CMakeFiles/e3_fairness.dir/e3_fairness.cpp.o"
  "CMakeFiles/e3_fairness.dir/e3_fairness.cpp.o.d"
  "e3_fairness"
  "e3_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
