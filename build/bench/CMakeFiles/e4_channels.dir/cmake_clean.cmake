file(REMOVE_RECURSE
  "CMakeFiles/e4_channels.dir/e4_channels.cpp.o"
  "CMakeFiles/e4_channels.dir/e4_channels.cpp.o.d"
  "e4_channels"
  "e4_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
