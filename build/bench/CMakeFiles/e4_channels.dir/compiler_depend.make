# Empty compiler generated dependencies file for e4_channels.
# This may be replaced when dependencies are built.
