file(REMOVE_RECURSE
  "CMakeFiles/e11_kbound.dir/e11_kbound.cpp.o"
  "CMakeFiles/e11_kbound.dir/e11_kbound.cpp.o.d"
  "e11_kbound"
  "e11_kbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_kbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
