# Empty dependencies file for e11_kbound.
# This may be replaced when dependencies are built.
