# Empty dependencies file for e10_micro.
# This may be replaced when dependencies are built.
