file(REMOVE_RECURSE
  "CMakeFiles/e10_micro.dir/e10_micro.cpp.o"
  "CMakeFiles/e10_micro.dir/e10_micro.cpp.o.d"
  "e10_micro"
  "e10_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
