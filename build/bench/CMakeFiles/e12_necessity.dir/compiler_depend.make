# Empty compiler generated dependencies file for e12_necessity.
# This may be replaced when dependencies are built.
