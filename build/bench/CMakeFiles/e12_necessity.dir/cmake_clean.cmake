file(REMOVE_RECURSE
  "CMakeFiles/e12_necessity.dir/e12_necessity.cpp.o"
  "CMakeFiles/e12_necessity.dir/e12_necessity.cpp.o.d"
  "e12_necessity"
  "e12_necessity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_necessity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
