# Empty dependencies file for e7_stabilization.
# This may be replaced when dependencies are built.
