file(REMOVE_RECURSE
  "CMakeFiles/e7_stabilization.dir/e7_stabilization.cpp.o"
  "CMakeFiles/e7_stabilization.dir/e7_stabilization.cpp.o.d"
  "e7_stabilization"
  "e7_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
