file(REMOVE_RECURSE
  "CMakeFiles/e13_modelcheck.dir/e13_modelcheck.cpp.o"
  "CMakeFiles/e13_modelcheck.dir/e13_modelcheck.cpp.o.d"
  "e13_modelcheck"
  "e13_modelcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_modelcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
