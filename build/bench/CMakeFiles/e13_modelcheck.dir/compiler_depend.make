# Empty compiler generated dependencies file for e13_modelcheck.
# This may be replaced when dependencies are built.
