file(REMOVE_RECURSE
  "CMakeFiles/e14_distributions.dir/e14_distributions.cpp.o"
  "CMakeFiles/e14_distributions.dir/e14_distributions.cpp.o.d"
  "e14_distributions"
  "e14_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
