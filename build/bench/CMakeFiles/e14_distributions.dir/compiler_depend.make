# Empty compiler generated dependencies file for e14_distributions.
# This may be replaced when dependencies are built.
