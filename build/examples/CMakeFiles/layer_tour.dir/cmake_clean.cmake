file(REMOVE_RECURSE
  "CMakeFiles/layer_tour.dir/layer_tour.cpp.o"
  "CMakeFiles/layer_tour.dir/layer_tour.cpp.o.d"
  "layer_tour"
  "layer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
