# Empty compiler generated dependencies file for layer_tour.
# This may be replaced when dependencies are built.
