# Empty compiler generated dependencies file for msc_demo.
# This may be replaced when dependencies are built.
