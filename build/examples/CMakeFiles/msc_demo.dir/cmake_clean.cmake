file(REMOVE_RECURSE
  "CMakeFiles/msc_demo.dir/msc_demo.cpp.o"
  "CMakeFiles/msc_demo.dir/msc_demo.cpp.o.d"
  "msc_demo"
  "msc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
