# Empty dependencies file for work_queues.
# This may be replaced when dependencies are built.
