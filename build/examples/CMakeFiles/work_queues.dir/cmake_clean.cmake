file(REMOVE_RECURSE
  "CMakeFiles/work_queues.dir/work_queues.cpp.o"
  "CMakeFiles/work_queues.dir/work_queues.cpp.o.d"
  "work_queues"
  "work_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
