file(REMOVE_RECURSE
  "CMakeFiles/fd_lab.dir/fd_lab.cpp.o"
  "CMakeFiles/fd_lab.dir/fd_lab.cpp.o.d"
  "fd_lab"
  "fd_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
