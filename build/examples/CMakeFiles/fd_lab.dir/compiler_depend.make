# Empty compiler generated dependencies file for fd_lab.
# This may be replaced when dependencies are built.
