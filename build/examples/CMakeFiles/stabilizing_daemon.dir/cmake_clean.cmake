file(REMOVE_RECURSE
  "CMakeFiles/stabilizing_daemon.dir/stabilizing_daemon.cpp.o"
  "CMakeFiles/stabilizing_daemon.dir/stabilizing_daemon.cpp.o.d"
  "stabilizing_daemon"
  "stabilizing_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabilizing_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
