# Empty dependencies file for stabilizing_daemon.
# This may be replaced when dependencies are built.
