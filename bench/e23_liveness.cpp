// E23 — bounded-liveness certification: fair-lasso model checking of P3
// (wait-freedom) and P4 (eventual 2-bounded waiting), plus an rt-engine
// k-bound convergence study.
//
// Three row groups, all driven through mc::check_liveness over the
// closed universes of scenario/liveness.hpp (docs/MODELCHECK.md
// "Liveness checking"):
//
//  * certify — configurations whose semantic state graph must CLOSE
//    (paths_truncated == 0, budget not exhausted) with zero fair
//    starving cycles: P3 on K3 (full closure, crash-free and with an
//    adversarially timed crash), on C5 and the 2x3 grid (restricted
//    closures: three adjacent perpetually re-hungry diners among
//    responsive peers — the all-hungry C5 graph exceeds any feasible
//    budget and is documented as such, not silently skipped), thirst
//    liveness on the drinking edge, and P4 with the overtake counters
//    in the state key (K2 and, in full mode, K3).
//
//  * mutant — the honesty suite: every seeded LivenessMutation must be
//    re-detected (dropped fork handover and stuck detector as fair
//    lassos, ack-budget abuse as a bounded-waiting safety violation),
//    and each counterexample replays through the post-hoc checkers
//    (dining/checkers.hpp) to the same verdict. A mutant the checker
//    misses exits non-zero.
//
//  * rt — E3-style overtaking census on the real-threads engine: run
//    the rt dining scenario with crashes, collect the overtake census
//    and the empirical ◇2-BW establishment point. Wall-clock dependent,
//    therefore informational (never gated).
//
// Flags (same conventions as e21):
//   --smoke               CI-sized subset (the bench-only heavy rows drop out)
//   --json PATH           machine-readable results (BENCH_e23.json in CI)
//   --check-against PATH  compare against a recorded JSON: every matching
//                         gated key must reproduce states/sccs/fair/violation
//                         EXACTLY (the checker is deterministic — any drift
//                         is a semantic change, not noise). wall_s is never
//                         compared.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "mc/liveness.hpp"
#include "scenario/liveness.hpp"
#include "scenario/rt_scenario.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using mc::Fairness;
using mc::Options;
using scenario::LivenessConfig;
using scenario::LivenessMutation;

namespace {

struct Row {
  std::string key;    // group/name, e.g. "certify/p3-k3"
  bool gated = true;  // deterministic rows enter the baseline gate
  std::uint64_t states = 0;
  std::uint64_t sccs = 0;
  std::uint64_t fair = 0;
  bool violation = false;
  bool pass = false;  // this row's own expectation held
  double wall_s = 0.0;
  std::string note;
};

Options live_options(std::size_t max_depth, std::uint64_t max_nodes, bool include_timers,
                     bool fail_fast = false) {
  Options opt;
  opt.max_depth = max_depth;
  opt.max_nodes = max_nodes;
  opt.include_timers = include_timers;
  opt.threads = 2;
  opt.fairness = Fairness::kWeakEvent;
  opt.fail_fast = fail_fast;
  return opt;
}

bool certified(const mc::Result& r) {
  return r.ok() && r.paths_truncated == 0 && !r.budget_exhausted && r.fair_cycles == 0 &&
         r.unique_states > 0;
}

Row run_one(const std::string& key, const LivenessConfig& cfg, const Options& opt,
            bool expect_violation, const char* expect_substr = nullptr) {
  const mc::Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  Row row;
  row.key = key;
  row.states = r.unique_states;
  row.sccs = r.scc_count;
  row.fair = r.fair_cycles;
  row.violation = r.violation_found;
  row.wall_s = r.wall_seconds;
  if (expect_violation) {
    row.pass = r.violation_found &&
               (expect_substr == nullptr || r.violation.find(expect_substr) != std::string::npos);
    row.note = r.violation.substr(0, 56);
  } else {
    row.pass = certified(r);
    row.note = row.pass ? "certified" : (r.violation + r.config_error).substr(0, 56);
  }
  return row;
}

// ---------------------------------------------------------------- mutants

/// Starvation mutants: detect, unroll three laps, then demand the
/// post-hoc wait-freedom checker reach the same verdict on the unrolled
/// trace (checker-vs-checker agreement).
Row run_starvation_mutant(const std::string& key, const LivenessConfig& cfg,
                          const Options& opt) {
  const mc::Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  Row row;
  row.key = key;
  row.states = r.unique_states;
  row.sccs = r.scc_count;
  row.fair = r.fair_cycles;
  row.violation = r.violation_found;
  row.wall_s = r.wall_seconds;
  if (!r.violation_found || r.cycle_length == 0) {
    row.note = "MISSED (no lasso)";
    return row;
  }
  const auto replay = unroll_lasso(make_dinner_liveness_factory(cfg), r, /*laps=*/3, opt);
  auto* world = dynamic_cast<scenario::DinnerLivenessWorld*>(replay.world.get());
  if (!replay.valid || replay.laps_closed != 3 || world == nullptr) {
    row.note = "lasso does not unroll";
    return row;
  }
  const auto report = dining::check_wait_freedom(world->trace(), world->crash_times(),
                                                 /*starvation_horizon=*/1);
  row.pass = !report.wait_free();
  row.note = row.pass ? "caught + cross-checked" : "DISAGREEMENT vs post-hoc checker";
  return row;
}

/// The budget mutant: caught as a bounded-waiting safety violation whose
/// schedule replays into a trace the post-hoc overtake census counts the
/// same way.
Row run_budget_mutant(const std::string& key, const LivenessConfig& cfg, const Options& opt) {
  const mc::Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
  Row row;
  row.key = key;
  row.states = r.unique_states;
  row.sccs = r.scc_count;
  row.fair = r.fair_cycles;
  row.violation = r.violation_found;
  row.wall_s = r.wall_seconds;
  if (!r.violation_found || r.cycle_length != 0) {
    row.note = "MISSED (no safety violation)";
    return row;
  }
  scenario::DinnerLivenessWorld world(cfg);
  world.simulator().start();
  for (std::uint64_t id : r.counterexample) {
    if (!world.simulator().execute_event(id)) {
      row.note = "counterexample does not replay";
      return row;
    }
  }
  const auto census = dining::overtake_census(world.trace(), world.graph());
  row.pass = dining::max_overtakes(census) > cfg.overtake_bound;
  row.note = row.pass ? "caught + census agrees" : "DISAGREEMENT vs overtake census";
  return row;
}

// ------------------------------------------------------- thread parity

Row run_parity(const LivenessConfig& cfg, Options opt) {
  Row row;
  row.key = "parity/threads-1-2-8";
  opt.threads = 1;
  const auto t0 = std::chrono::steady_clock::now();
  const mc::Result base = check_liveness(make_dinner_liveness_factory(cfg), opt);
  bool same = true;
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    opt.threads = threads;
    const mc::Result r = check_liveness(make_dinner_liveness_factory(cfg), opt);
    same = same && r.unique_states == base.unique_states && r.scc_count == base.scc_count &&
           r.fair_cycles == base.fair_cycles && r.violation == base.violation &&
           r.counterexample == base.counterexample &&
           r.nodes_executed == base.nodes_executed &&
           r.replayed_events == base.replayed_events;
  }
  row.states = base.unique_states;
  row.sccs = base.scc_count;
  row.fair = base.fair_cycles;
  row.violation = base.violation_found;
  row.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  row.pass = same;
  row.note = same ? "bit-identical" : "THREAD-COUNT DIVERGENCE";
  return row;
}

// -------------------------------------------------- rt k-bound study

/// E3-style overtaking census on the real-threads engine: how long until
/// the rt execution settles into the paper's 2-bounded-waiting regime.
Row run_rt_study(bool smoke) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kRt;
  cfg.seed = 2026;
  cfg.topology = "ring";
  cfg.n = smoke ? 6 : 8;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kHeartbeat;
  cfg.net_mode = scenario::NetMode::kLossy;
  cfg.run_for = smoke ? 3000 : 10000;
  cfg.crashes = {{2, cfg.run_for / 3}};

  Row row;
  row.key = "rt/kbound-convergence";
  row.gated = false;  // real threads: wall-clock dependent, informational
  const auto t0 = std::chrono::steady_clock::now();
  scenario::RtScenario s(cfg);
  s.run();
  const auto census = dining::overtake_census(s.trace(), s.graph());
  const int worst = dining::max_overtakes(census);
  const int post = dining::max_overtakes(census, dining::k_bound_establishment(census, 2));
  row.states = census.size();  // observations, not graph states
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  row.pass = post <= 2;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "max overtakes %d, post-establishment %d, t*=%lld", worst,
                post, static_cast<long long>(dining::k_bound_establishment(census, 2)));
  row.note = buf;
  return row;
}

// ----------------------------------------------------------- reporting

void write_json(const std::string& path, const std::vector<Row>& rows, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e23_liveness\",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"key\": \"" << r.key << "\", \"gated\": " << (r.gated ? "true" : "false")
        << ", \"states\": " << r.states << ", \"sccs\": " << r.sccs << ", \"fair\": " << r.fair
        << ", \"violation\": " << (r.violation ? 1 : 0) << ", \"pass\": " << (r.pass ? 1 : 0)
        << ", \"wall_s\": " << r.wall_s << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

struct BaselineRow {
  std::string key;
  bool gated = false;
  std::uint64_t states = 0, sccs = 0, fair = 0;
  int violation = 0;
};

/// Minimal scrape of a prior e23 JSON (one row object per line).
bool load_baseline(const std::string& path, std::vector<BaselineRow>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  auto field = [&line](const char* name, long long dflt) -> long long {
    const std::string pat = std::string("\"") + name + "\": ";
    const auto pos = line.find(pat);
    if (pos == std::string::npos) return dflt;
    return std::strtoll(line.c_str() + pos + pat.size(), nullptr, 10);
  };
  while (std::getline(in, line)) {
    const auto kpos = line.find("\"key\": \"");
    if (kpos == std::string::npos) continue;
    const auto kstart = kpos + 8;
    const auto kend = line.find('"', kstart);
    if (kend == std::string::npos) continue;
    BaselineRow b;
    b.key = line.substr(kstart, kend - kstart);
    b.gated = line.find("\"gated\": true") != std::string::npos;
    b.states = static_cast<std::uint64_t>(field("states", 0));
    b.sccs = static_cast<std::uint64_t>(field("sccs", 0));
    b.fair = static_cast<std::uint64_t>(field("fair", 0));
    b.violation = static_cast<int>(field("violation", 0));
    out.push_back(std::move(b));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH] [--check-against PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("E23 — bounded-liveness certification%s\n\n", smoke ? " (smoke)" : "");

  std::vector<Row> rows;
  auto cfg = [](const char* topo, std::size_t n) {
    LivenessConfig c;
    c.topology = topo;
    c.n = n;
    return c;
  };

  // -- P3 certification ----------------------------------------------------
  rows.push_back(run_one("certify/p3-k3", cfg("clique", 3),
                         live_options(120, 80'000'000, false), false));
  {
    LivenessConfig c = cfg("ring", 5);  // restricted closure: three adjacent
    c.initial_hungry = 0b00111;         // re-hungry diners among responsive peers
    rows.push_back(run_one("certify/p3-c5-h3", c, live_options(160, 400'000'000, false), false));
  }
  {
    LivenessConfig c = cfg("grid", 6);  // 2x3; {0,1,2} is a corner L
    c.initial_hungry = 0b00111;
    rows.push_back(
        run_one("certify/p3-grid2x3-h3", c, live_options(160, 400'000'000, false), false));
  }
  {
    LivenessConfig c = cfg("clique", 3);  // restricted: timers blow the
    c.crash_victim = 0;                   // all-hungry crash graph past
    c.initial_hungry = 0b011;             // any feasible budget
    rows.push_back(run_one("certify/p3-k3-crash-h2", c,
                           live_options(160, 80'000'000, /*include_timers=*/true), false));
  }
  {
    const mc::Result r =
        check_liveness(scenario::make_drinking_edge_liveness_factory(),
                       live_options(120, 80'000'000, false));
    Row row;
    row.key = "certify/thirst-edge";
    row.states = r.unique_states;
    row.sccs = r.scc_count;
    row.fair = r.fair_cycles;
    row.violation = r.violation_found;
    row.wall_s = r.wall_seconds;
    row.pass = certified(r);
    row.note = row.pass ? "certified" : (r.violation + r.config_error).substr(0, 56);
    rows.push_back(row);
  }

  // -- P4 certification + tightness ---------------------------------------
  {
    LivenessConfig c = cfg("clique", 2);
    c.check_overtakes = true;
    c.overtake_bound = 2;
    rows.push_back(run_one("certify/p4-k2-bound2", c, live_options(120, 80'000'000, false),
                           false));
    c.overtake_bound = 1;
    rows.push_back(run_one("violate/p4-k2-bound1", c, live_options(120, 80'000'000, false),
                           true, "bounded waiting violated"));
  }
  if (!smoke) {
    LivenessConfig c = cfg("clique", 3);  // bench-only: ~460k states
    c.check_overtakes = true;
    c.overtake_bound = 2;
    rows.push_back(run_one("certify/p4-k3-bound2", c, live_options(160, 400'000'000, false),
                           false));
  }
  {
    LivenessConfig c = cfg("clique", 3);  // budget 3 admits triple overtaking
    c.check_overtakes = true;
    c.overtake_bound = 2;
    c.acks_per_session = 3;
    rows.push_back(run_one("violate/p4-k3-acks3", c,
                           live_options(160, 400'000'000, false, /*fail_fast=*/true), true,
                           "bounded waiting violated"));
  }

  // -- honesty: seeded mutants --------------------------------------------
  {
    LivenessConfig c = cfg("clique", 2);
    c.mutation = LivenessMutation::kDropForkHandover;
    c.initial_hungry = 0b01;
    rows.push_back(
        run_starvation_mutant("mutant/drop-fork", c, live_options(80, 20'000'000, true)));
    Options kb = live_options(80, 20'000'000, true);
    kb.fairness = Fairness::kKBounded;
    kb.fairness_k = 2;
    rows.push_back(run_starvation_mutant("mutant/drop-fork-kbounded", c, kb));
  }
  {
    LivenessConfig c = cfg("clique", 2);
    c.mutation = LivenessMutation::kStuckDetector;
    c.crash_victim = 1;
    c.initial_hungry = 0b01;
    rows.push_back(
        run_starvation_mutant("mutant/stuck-detector", c, live_options(80, 20'000'000, true)));
  }
  {
    LivenessConfig c = cfg("clique", 3);
    c.check_overtakes = true;
    c.overtake_bound = 2;
    c.mutation = LivenessMutation::kGrantBeyondBudget;
    rows.push_back(run_budget_mutant(
        "mutant/grant-beyond-budget", c,
        live_options(160, 400'000'000, false, /*fail_fast=*/true)));
  }

  // -- determinism parity --------------------------------------------------
  rows.push_back(run_parity(cfg("clique", 3), live_options(120, 80'000'000, false)));

  // -- rt engine k-bound convergence (informational) -----------------------
  rows.push_back(run_rt_study(smoke));

  util::Table table({"key", "states", "sccs", "fair", "viol", "pass", "wall s", "note"});
  for (const Row& r : rows) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.2f", r.wall_s);
    table.row()
        .cell(r.key)
        .cell(r.states)
        .cell(r.sccs)
        .cell(r.fair)
        .cell(r.violation ? "yes" : "no")
        .cell(r.pass ? "ok" : "FAIL")
        .cell(wall)
        .cell(r.note);
  }
  table.print();

  if (!json_path.empty()) {
    write_json(json_path, rows, smoke);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  int failures = 0;
  for (const Row& r : rows) {
    if (!r.pass && r.gated) {
      std::fprintf(stderr, "e23 FAIL: %s — %s\n", r.key.c_str(), r.note.c_str());
      ++failures;
    }
  }

  if (!baseline_path.empty()) {
    std::vector<BaselineRow> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "e23: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    for (const BaselineRow& b : baseline) {
      if (!b.gated) continue;
      for (const Row& r : rows) {
        if (r.key != b.key) continue;
        if (r.states != b.states || r.sccs != b.sccs || r.fair != b.fair ||
            (r.violation ? 1 : 0) != b.violation) {
          std::fprintf(stderr,
                       "e23 BASELINE DRIFT: %s states %llu vs %llu, sccs %llu vs %llu, "
                       "fair %llu vs %llu, violation %d vs %d\n",
                       b.key.c_str(), (unsigned long long)r.states,
                       (unsigned long long)b.states, (unsigned long long)r.sccs,
                       (unsigned long long)b.sccs, (unsigned long long)r.fair,
                       (unsigned long long)b.fair, r.violation ? 1 : 0, b.violation);
          ++failures;
        }
      }
    }
    if (failures == 0) {
      std::printf("baseline gate: every gated key reproduced exactly vs %s\n",
                  baseline_path.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}
