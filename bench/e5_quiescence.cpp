// E5 — §7 quiescence: correct processes eventually stop sending dining
// messages to crashed neighbors.
//
// Crashes a hub (star) and a ring member, then histograms the dining
// traffic addressed to each victim in 10k-tick windows after its crash.
// Expectation: a small burst right after the crash (each neighbor may
// have one last unanswered ping and one unanswered fork request), then
// silence — while the victim's neighbors keep eating (wait-freedom) and
// the *heartbeat* layer, by design, never goes quiet (shown for contrast).
#include <cstdio>
#include <string>

#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

void run_case(const char* topo, std::size_t n, sim::ProcessId victim, DetectorKind det) {
  Config cfg;
  cfg.seed = 77;
  cfg.topology = topo;
  cfg.n = n;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = det;
  if (det == DetectorKind::kScripted) {
    cfg.partial_synchrony = false;
    cfg.detection_delay = 120;
  } else {
    cfg.partial_synchrony = true;
    cfg.delay = {.gst = 5'000, .pre_lo = 1, .pre_hi = 60,
                 .spike_prob = 0.05, .spike_factor = 15,
                 .post_lo = 1, .post_hi = 6};
    cfg.heartbeat = {.period = 25, .initial_timeout = 40, .timeout_increment = 30};
  }
  cfg.harness.think_lo = 5;
  cfg.harness.think_hi = 40;
  const sim::Time crash_at = 20'000;
  cfg.crashes = {{victim, crash_at}};
  cfg.run_for = 100'000;

  // Window the sends to the victim by sampling cumulative counters.
  Scenario s(cfg);
  std::vector<std::uint64_t> dining_cum, detector_cum;
  for (sim::Time w = crash_at; w <= cfg.run_for; w += 10'000) {
    s.run_until(w);
    dining_cum.push_back(s.sim().network().sends_to_crashed(victim, sim::MsgLayer::kDining));
    detector_cum.push_back(
        s.sim().network().sends_to_crashed(victim, sim::MsgLayer::kDetector));
  }
  s.run_until(cfg.run_for);

  std::printf("--- %s(%zu), victim p%d (degree %zu), oracle=%s, crash at t=%lld ---\n", topo, n,
              victim, s.graph().degree(victim), scenario::to_string(det).c_str(),
              static_cast<long long>(crash_at));
  util::Table t({"window after crash", "dining msgs to victim", "detector msgs to victim"});
  for (std::size_t i = 1; i < dining_cum.size(); ++i) {
    t.row()
        .cell("[" + std::to_string((i - 1) * 10) + "k, " + std::to_string(i * 10) + "k)")
        .cell(dining_cum[i] - dining_cum[i - 1])
        .cell(detector_cum[i] - detector_cum[i - 1]);
  }
  t.print();
  std::printf("total dining msgs to corpse: %llu (<= 2 per neighbor expected), last at t=%lld\n",
              static_cast<unsigned long long>(
                  s.sim().network().sends_to_crashed(victim, sim::MsgLayer::kDining)),
              static_cast<long long>(
                  s.sim().network().last_send_to(victim, sim::MsgLayer::kDining)));
  auto wf = s.wait_freedom(20'000);
  std::printf("survivors wait-free: %s\n\n", wf.wait_free() ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf(
      "E5 — quiescence towards crashed processes (paper §7)\n"
      "Expectation: dining traffic to the victim drops to 0 after a short burst;\n"
      "heartbeat traffic continues forever (<>P must keep monitoring — the paper's\n"
      "quiescence claim is about the dining layer only).\n\n");
  run_case("star", 8, /*victim=*/0, DetectorKind::kScripted);
  run_case("ring", 8, /*victim=*/3, DetectorKind::kScripted);
  run_case("ring", 8, /*victim=*/3, DetectorKind::kHeartbeat);
  return 0;
}
