// E26 — streaming observability overhead and scale.
//
// The PR-6 recorder funneled every trace/log/network event through one
// global mutex and materialized an O(events) EventLog — fine at n = 10²,
// the scalability cap at n = 10⁵ (ROADMAP item 2). The segmented
// streaming recorder (rt/recorder.hpp) gives each worker shard its own
// append-only segment, merges them on a collector thread in hybrid-
// timestamp order, and feeds the monitors a bounded merge-as-you-go
// stream. This bench records what full observability costs now and gates
// it:
//
//  * perf pair — the SAME dining scenario (sparse random conflict graph,
//    perfect detector) run twice at n = 10⁴: once fully attached (live
//    monitors, EventLog, hungry→eat latency histograms, periodic
//    telemetry snapshots) and once fully detached (observability off).
//    Gate: attached must sustain ≥ 0.7× the detached actors/sec at full
//    size (smoke pairs are too small for a stable ratio and get a 0.5×
//    sanity floor). This is the tentpole's claim: observability is a
//    bounded tax, not a second workload.
//
//  * scale run — 10⁵ actors, crash-faulted, fully attached, EventLog
//    capped so resident log memory stays bounded (the cap sheds oldest-
//    free: the log counts drops; trace and network books stay exact).
//    Gate: zero online/post-hoc monitor disagreement, real progress
//    (meals > 0), the crash plan executed, the cap respected, and zero
//    stream-shed records (the collector kept up).
//
// Wall-clock numbers are machine-dependent; --check-against uses the
// loose 0.5× floor per row (as E25) while the attached/detached ratio is
// enforced unconditionally — a slow runner slows both sides.
//
// Flags:
//   --smoke               CI-sized run (n = 2000 pair, n = 20000 scale)
//   --json PATH           machine-readable results (BENCH_e26.json in CI)
//   --check-against PATH  compare actors_per_sec per key against a
//                         recorded baseline; exit non-zero on a > 2x
//                         regression or a broken hard gate
//   --telemetry PATH      live JSONL snapshots of the scale run (artifact)
//   --perfetto PATH       Chrome trace JSON of the attached perf run,
//                         counter tracks included (artifact)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/perfetto.hpp"
#include "scenario/rt_scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::Time;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string mode;    // "perf" | "scale"
  std::string layout;  // "attached" | "detached"
  std::size_t n = 0;
  std::size_t shards = 0;
  std::uint64_t events = 0;
  std::uint64_t meals = 0;
  std::uint64_t merged = 0;          // collector-merged events (stream)
  std::uint64_t dropped_windows = 0;
  std::size_t max_pending = 0;
  std::uint64_t log_dropped = 0;     // EventLog cap shedding
  double wall_s = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;  // hungry→eat ticks (attached only)
  [[nodiscard]] double actors_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(n) / wall_s;
  }
  [[nodiscard]] std::string key() const {
    return mode + "/" + layout + "/" + std::to_string(n);
  }
};

scenario::Config base_config(std::size_t n, Time horizon) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kRt;
  cfg.seed = 2026;
  cfg.topology = "sparse";  // O(n·d) build; avg degree 4
  cfg.n = n;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kPerfect;  // no detector traffic
  cfg.run_for = horizon;
  cfg.rt_tick_ns = 100'000;
  cfg.rt_mailbox_capacity = 16;  // see E25: 1024 slots × 10⁵ actors ≈ 7 GB
  // Dense herd: everyone gets hungry in the first half, one session each.
  cfg.harness.first_hunger_hi = horizon / 2;
  cfg.harness.think_lo = horizon;
  cfg.harness.think_hi = 2 * horizon;
  cfg.harness.eat_lo = 5;
  cfg.harness.eat_hi = 20;
  return cfg;
}

/// One rt dining run; `gate_obs` enforces the observability gates (zero
/// monitor disagreement; progress + crash plan + log cap when capped).
Result run_one(const std::string& mode, const std::string& layout, scenario::Config cfg,
               bool gate_obs, bool& ok, std::vector<obs::CounterSample>* counters) {
  scenario::RtScenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  Result r;
  r.mode = mode;
  r.layout = layout;
  r.n = cfg.n;
  r.wall_s = seconds_since(t0);
  r.shards = s.runtime().shard_count();
  r.meals = s.trace().count(dining::TraceEventKind::kStartEating);
  if (cfg.observability) {
    r.events = s.event_log()->size() + s.trace().size();
    r.log_dropped = s.event_log()->dropped();
    const rt::StreamStats ss = s.recorder().stream_stats();
    r.merged = ss.merged_events + ss.merged_trace_events;
    r.dropped_windows = ss.dropped_windows;
    r.max_pending = ss.max_pending;
    const obs::Histogram lat = s.driver().latency_histogram();
    r.p50 = lat.quantile(0.50);
    r.p99 = lat.quantile(0.99);
    r.p999 = lat.quantile(0.999);
    if (counters != nullptr) *counters = s.counter_samples();
    if (gate_obs) {
      const std::string agreement = s.monitor_agreement();
      if (!agreement.empty()) {
        std::fprintf(stderr, "E26 %s: MONITOR DISAGREEMENT\n%s\n", r.key().c_str(),
                     agreement.c_str());
        ok = false;
      }
      if (ss.dropped_records > 0) {
        std::fprintf(stderr, "E26 %s: collector shed %llu records (pending cap)\n",
                     r.key().c_str(),
                     static_cast<unsigned long long>(ss.dropped_records));
        ok = false;
      }
      if (cfg.rt_event_log_cap != 0 && s.event_log()->size() > cfg.rt_event_log_cap) {
        std::fprintf(stderr, "E26 %s: EventLog cap not respected (%zu > %zu)\n",
                     r.key().c_str(), s.event_log()->size(), cfg.rt_event_log_cap);
        ok = false;
      }
      if (r.meals == 0) {
        std::fprintf(stderr, "E26 %s: no dining progress (0 meals)\n", r.key().c_str());
        ok = false;
      }
      for (const auto& [p, at] : cfg.crashes) {
        if (!s.runtime().crashed(p)) {
          std::fprintf(stderr, "E26 %s: scheduled crash of p%d never executed\n",
                       r.key().c_str(), static_cast<int>(p));
          ok = false;
        }
      }
    }
  }
  return r;
}

/// Chrome trace export of the attached perf run: sessions + message flows
/// + the live counter tracks. Runs as a second short scenario so the
/// measured perf pair never pays for the export.
void write_perfetto(const std::string& path, scenario::Config cfg) {
  cfg.run_for = std::min<Time>(cfg.run_for, 500);
  cfg.n = std::min<std::size_t>(cfg.n, 64);
  cfg.harness.first_hunger_hi = cfg.run_for / 2;
  scenario::RtScenario s(cfg);
  s.run();
  std::ofstream out(path);
  out << obs::chrome_trace_json(s.event_log(), &s.trace(), s.counter_samples());
  std::printf("perfetto trace written to %s\n", path.c_str());
}

void write_json(const std::string& path, const std::vector<Result>& results,
                double ratio, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e26_observability\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"attached_over_detached\": " << ratio
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"key\": \"" << r.key() << "\", \"mode\": \"" << r.mode
        << "\", \"layout\": \"" << r.layout << "\", \"n\": " << r.n
        << ", \"shards\": " << r.shards << ", \"events\": " << r.events
        << ", \"meals\": " << r.meals << ", \"merged\": " << r.merged
        << ", \"dropped_windows\": " << r.dropped_windows
        << ", \"max_pending\": " << r.max_pending
        << ", \"log_dropped\": " << r.log_dropped << ", \"wall_s\": " << r.wall_s
        << ", \"actors_per_sec\": " << static_cast<std::uint64_t>(r.actors_per_sec())
        << ", \"latency_p50\": " << r.p50 << ", \"latency_p99\": " << r.p99
        << ", \"latency_p999\": " << r.p999 << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Minimal scrape of a prior e26 JSON: per-row key + actors_per_sec.
bool load_baseline(const std::string& path,
                   std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto kpos = line.find("\"key\": \"");
    const auto vpos = line.find("\"actors_per_sec\": ");
    if (kpos == std::string::npos || vpos == std::string::npos) continue;
    const auto kstart = kpos + 8;
    const auto kend = line.find('"', kstart);
    if (kend == std::string::npos) continue;
    out.emplace_back(line.substr(kstart, kend - kstart),
                     std::strtod(line.c_str() + vpos + 18, nullptr));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  std::string telemetry_path;
  std::string perfetto_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--check-against PATH] "
                   "[--telemetry PATH] [--perfetto PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t perf_n = smoke ? 2'000 : 10'000;
  const std::size_t scale_n = smoke ? 20'000 : 100'000;
  const Time perf_horizon = smoke ? 300 : 2'000;      // ticks of 100 µs
  const Time scale_horizon = smoke ? 6'000 : 30'000;  // as E25's scale run

  std::printf("E26: streaming observability attached vs detached%s\n",
              smoke ? " (smoke)" : "");

  bool ok = true;
  std::vector<Result> results;

  // -- perf pair ----------------------------------------------------------
  {
    scenario::Config cfg = base_config(perf_n, perf_horizon);
    cfg.observability = true;
    cfg.rt_telemetry_interval = perf_horizon / 8;  // live snapshot loop on
    results.push_back(run_one("perf", "attached", cfg, /*gate_obs=*/true, ok, nullptr));
  }
  {
    scenario::Config cfg = base_config(perf_n, perf_horizon);
    cfg.observability = false;
    results.push_back(run_one("perf", "detached", cfg, /*gate_obs=*/false, ok, nullptr));
  }
  const double ratio = results[1].actors_per_sec() <= 0.0
                           ? 0.0
                           : results[0].actors_per_sec() / results[1].actors_per_sec();

  // -- scale run ----------------------------------------------------------
  {
    scenario::Config cfg = base_config(scale_n, scale_horizon);
    cfg.observability = true;
    // Sparse herd + early crashes, exactly as E25's scale shaping.
    cfg.harness.first_hunger_hi = 4 * scale_horizon;
    cfg.harness.think_lo = 2 * scale_horizon;
    cfg.harness.think_hi = 3 * scale_horizon;
    cfg.crashes = {{static_cast<sim::ProcessId>(scale_n / 3), scale_horizon / 6},
                   {static_cast<sim::ProcessId>(scale_n / 2), scale_horizon / 4}};
    // Bounded resident log memory at 10⁵ actors; drops are counted.
    cfg.rt_event_log_cap = smoke ? 100'000 : 500'000;
    cfg.rt_telemetry_interval = scale_horizon / 10;
    cfg.rt_telemetry_path = telemetry_path;  // "" = in-memory samples only
    results.push_back(run_one("scale", "attached", cfg, /*gate_obs=*/true, ok, nullptr));
    if (!telemetry_path.empty()) {
      std::printf("live telemetry written to %s\n", telemetry_path.c_str());
    }
  }

  util::Table t({"mode", "layout", "n", "shards", "wall_s", "actors/s", "meals",
                 "merged", "max_pend", "log_drop", "p99 wait"});
  for (const Result& r : results) {
    t.row()
        .cell(r.mode)
        .cell(r.layout)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(static_cast<std::uint64_t>(r.shards))
        .cell(r.wall_s, 3)
        .cell(static_cast<std::uint64_t>(r.actors_per_sec()))
        .cell(r.meals)
        .cell(r.merged)
        .cell(static_cast<std::uint64_t>(r.max_pending))
        .cell(r.log_dropped)
        .cell(r.p99, 0);
  }
  t.print();
  std::printf("attached over detached: %.2fx actors/sec\n", ratio);

  if (!perfetto_path.empty()) {
    scenario::Config cfg = base_config(perf_n, perf_horizon);
    cfg.observability = true;
    cfg.rt_telemetry_interval = 50;
    write_perfetto(perfetto_path, cfg);
  }

  if (!json_path.empty()) {
    write_json(json_path, results, ratio, smoke);
    std::printf("results written to %s\n", json_path.c_str());
  }

  // Hard gate: full observability is a bounded tax. Full size enforces the
  // acceptance ≥ 0.7×; smoke pairs are noise-dominated (start/join is a
  // bigger share of a 30 ms run) and get a 0.5× sanity floor.
  const double need = smoke ? 0.5 : 0.7;
  if (ratio < need) {
    std::fprintf(stderr,
                 "E26 GATE FAILED: attached only %.2fx of detached actors/sec "
                 "(need >= %.2fx)\n",
                 ratio, need);
    ok = false;
  }

  if (!baseline_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "e26: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    for (const auto& [key, base] : baseline) {
      for (const Result& r : results) {
        if (r.key() != key || base <= 0.0) continue;
        const double rel = r.actors_per_sec() / base;
        if (rel < 0.5) {
          std::fprintf(stderr,
                       "e26 REGRESSION: %s at %.0f actors/s vs baseline %.0f (%.2fx)\n",
                       key.c_str(), r.actors_per_sec(), base, rel);
          ok = false;
        }
      }
    }
    if (ok) {
      std::printf("perf gate: no metric regressed more than 2x vs %s\n",
                  baseline_path.c_str());
    }
  }

  return ok ? 0 : 1;
}
