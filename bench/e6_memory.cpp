// E6 — §7 bounded space: log2(#colors) + 6δ + c bits per process.
//
// Measures the persistent dining state of every process across topologies
// whose maximum degree ranges from 2 (ring) to n-1 (clique, star hub) and
// compares against the paper's closed form. Also shows the baselines'
// footprints (hierarchical/CM need no doorway bookkeeping: ~2-3 bits per
// neighbor instead of 6).
#include <algorithm>
#include <cstdio>

#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::Scenario;

int main() {
  std::printf(
      "E6 — bounded space (paper §7): per-process persistent state in bits.\n"
      "Formula: log2(colors) + 6*delta + c (state 2 bits + doorway flag 1 bit).\n"
      "Expectation: measured == within-constant of the formula on every row;\n"
      "worst case O(n) bits on the clique, O(delta) elsewhere.\n\n");

  util::Table t({"topology", "n", "delta(max)", "colors", "Alg.1 bits (min-max)",
                 "formula @ max delta", "hierarchical bits", "chandy-misra bits"});
  std::uint64_t seed = 600;
  for (const char* topo : {"ring", "path", "star", "grid", "tree", "clique", "random"}) {
    for (std::size_t n : {8, 16, 32, 64}) {
      auto bits_range = [&](Algorithm a) {
        Config cfg;
        cfg.seed = seed;
        cfg.topology = topo;
        cfg.n = n;
        cfg.algorithm = a;
        cfg.detector = scenario::DetectorKind::kNever;
        Scenario s(cfg);
        std::size_t lo = SIZE_MAX, hi = 0;
        for (std::size_t p = 0; p < n; ++p) {
          auto b = s.diner(static_cast<int>(p))->state_bits();
          lo = std::min(lo, b);
          hi = std::max(hi, b);
        }
        return std::pair<std::size_t, std::size_t>{lo, hi};
      };
      ++seed;

      Config probe;
      probe.seed = seed;
      probe.topology = topo;
      probe.n = n;
      Scenario sp(probe);
      const std::size_t delta = sp.graph().max_degree();
      const std::size_t colors = graph::num_colors(sp.colors());
      std::size_t color_bits = 1;
      while ((1u << color_bits) < colors + 1) ++color_bits;

      auto [alo, ahi] = bits_range(Algorithm::kWaitFree);
      auto [hlo, hhi] = bits_range(Algorithm::kHierarchical);
      auto [clo, chi] = bits_range(Algorithm::kChandyMisra);
      t.row()
          .cell(topo)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(delta))
          .cell(static_cast<std::uint64_t>(colors))
          .cell(std::to_string(alo) + "-" + std::to_string(ahi))
          .cell(static_cast<std::uint64_t>(color_bits + 6 * delta + 3))
          .cell(std::to_string(hlo) + "-" + std::to_string(hhi))
          .cell(std::to_string(clo) + "-" + std::to_string(chi));
    }
  }
  t.print();
  return 0;
}
