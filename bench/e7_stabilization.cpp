// E7 — the motivating application (paper §1): wait-free daemons preserve
// self-stabilization under crash faults; non-wait-free daemons do not.
//
// Grid of (protocol × fault scenario × daemon). Every protocol starts from
// an adversarial or randomized configuration; scenarios add transient
// bursts and crash faults. Expectation: the Algorithm-1 daemon converges
// on every row; the Choy–Singh daemon fails exactly on the rows with
// crashes.
#include <cstdio>
#include <memory>

#include "daemon/fault_injector.hpp"
#include "daemon/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "stab/bfs_tree.hpp"
#include "stab/coloring.hpp"
#include "stab/matching.hpp"
#include "stab/mis.hpp"
#include "stab/token_ring.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

struct Result {
  bool converged = false;
  std::uint64_t steps = 0;
  std::uint64_t mistakes = 0;
  std::uint64_t corruptions = 0;
  sim::Time last_illegitimate = 0;
};

Result run_case(Algorithm algo, const stab::Protocol& proto, const char* topo, std::size_t n,
                bool with_crashes, bool with_transients, std::uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  cfg.algorithm = algo;
  cfg.detector = algo == Algorithm::kWaitFree ? DetectorKind::kScripted : DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 150;
  cfg.topology = topo;
  cfg.n = n;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 50;
  cfg.run_for = 200'000;
  if (algo == Algorithm::kWaitFree) {
    cfg.fp_count = 2 * n;  // pre-convergence oracle chaos
    cfg.fp_until = 8'000;
  }
  if (with_crashes) {
    cfg.crashes = {{static_cast<sim::ProcessId>(n / 2), 1},
                   {static_cast<sim::ProcessId>(n - 2), 40'000}};
  }
  Scenario s(cfg);
  stab::StateTable regs(n, proto.regs_per_process());
  sim::Rng rng(seed ^ 0xBEEF);
  regs.randomize(rng, 0, proto.corruption_hi(s.graph()));
  daemon::DaemonScheduler d(s.harness(), proto, regs);
  std::unique_ptr<daemon::FaultInjector> inj;
  if (with_transients) {
    inj = std::make_unique<daemon::FaultInjector>(s.sim(), regs, proto, s.graph(), seed ^ 0xFA17);
    inj->schedule_train(60'000, 25'000, 3, 3);  // last burst at t=110000
  }
  s.run();
  Result r;
  r.converged = d.converged();
  r.steps = d.steps_executed();
  r.mistakes = d.sharing_violations();
  r.corruptions = d.violation_corruptions() + (inj ? inj->corruptions_applied() : 0);
  r.last_illegitimate = d.last_illegitimate();
  return r;
}

}  // namespace

int main() {
  std::printf(
      "E7 — wait-free daemons for self-stabilization (paper §1)\n"
      "Every row: protocol started from a random configuration; 'transients' adds\n"
      "3 corruption bursts (last at t=110000); 'crashes' kills 2 of n processes.\n"
      "Daemon 'Alg.1' = wait-free with scripted <>P1 (incl. pre-convergence lies);\n"
      "daemon 'Choy-Singh' = crash-oblivious doorway. Convergence = live-restricted\n"
      "legitimacy at t=200000.\n\n");

  const std::size_t n = 8;
  stab::DijkstraTokenRing token_ring(n);
  stab::StabilizingColoring coloring;
  stab::StabilizingMis mis;
  stab::StabilizingBfsTree bfs;
  stab::StabilizingMatching matching;

  struct Case {
    const stab::Protocol* proto;
    const char* topo;
    bool crashes;
    bool transients;
  };
  // Dijkstra's ring protocol semantically requires all ring members live,
  // so its crash rows are omitted (the daemon guarantee is about
  // scheduling correct processes, not about protocols whose spec needs
  // the dead one).
  const Case cases[] = {
      {&token_ring, "ring", false, false}, {&token_ring, "ring", false, true},
      {&coloring, "ring", false, true},    {&coloring, "random", true, false},
      {&coloring, "random", true, true},   {&mis, "grid", false, true},
      {&mis, "grid", true, true},          {&bfs, "tree", false, true},
      {&bfs, "tree", false, false},        {&coloring, "clique", true, true},
      {&matching, "grid", false, true},    {&matching, "random", true, true},
  };

  util::Table t({"protocol", "topology", "transients", "crashes", "daemon", "steps",
                 "sched. mistakes", "corruptions", "last illegit. t", "converged"});
  std::uint64_t seed = 700;
  for (const Case& c : cases) {
    for (Algorithm algo : {Algorithm::kWaitFree, Algorithm::kChoySingh}) {
      Result r = run_case(algo, *c.proto, c.topo, n, c.crashes, c.transients, ++seed);
      t.row()
          .cell(c.proto->name())
          .cell(c.topo)
          .cell(c.transients)
          .cell(c.crashes)
          .cell(algo == Algorithm::kWaitFree ? "Alg.1" : "Choy-Singh")
          .cell(r.steps)
          .cell(r.mistakes)
          .cell(r.corruptions)
          .cell(static_cast<std::int64_t>(r.last_illegitimate))
          .cell(r.converged);
    }
  }
  t.print();
  std::printf(
      "Expectation: Alg.1 converges on every row; Choy-Singh converges on the\n"
      "crash-free rows (it is a fine daemon without faults) and fails on every\n"
      "row with crashes.\n");
  return 0;
}
