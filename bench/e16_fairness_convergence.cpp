// E16 — cross-layer ablation: daemon fairness vs stabilization speed.
//
// The paper motivates eventual k-bounded waiting as the right fairness
// level for scheduling stabilizing protocols. This experiment quantifies
// that coupling: the same protocol (Dijkstra's token ring / stabilizing
// coloring), same faults, scheduled by daemons of different fairness —
// Algorithm 1 with ack budgets m ∈ {1, 4, 16}, Chandy–Misra (very fair),
// and the hierarchical daemon (unfair). Reported: protocol steps needed
// and virtual time until legitimacy.
//
// Expected shape: convergence TIME tracks the daemon's fairness (an
// unfair daemon starves exactly the processes whose moves are needed),
// while step COUNTS stay similar — fairness buys latency, not work.
#include <cstdio>
#include <memory>

#include "daemon/scheduler.hpp"
#include "scenario/scenario.hpp"
#include "stab/coloring.hpp"
#include "stab/token_ring.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

struct DaemonSpec {
  const char* label;
  Algorithm algorithm;
  int acks = 1;
};

struct Outcome {
  double mean_time = 0;   // virtual time to final legitimacy
  double mean_steps = 0;  // protocol steps executed by then
  int converged = 0;      // out of kRuns
};

constexpr int kRuns = 15;

Outcome measure(const DaemonSpec& spec, const stab::Protocol& proto, const char* topo,
                std::size_t n) {
  Outcome out;
  std::vector<double> times, steps;
  for (int run = 0; run < kRuns; ++run) {
    Config cfg;
    cfg.seed = 1'700 + static_cast<std::uint64_t>(run);
    cfg.topology = topo;
    cfg.n = n;
    cfg.algorithm = spec.algorithm;
    cfg.acks_per_session = spec.acks;
    cfg.detector = DetectorKind::kNever;  // crash-free: isolate fairness
    cfg.partial_synchrony = false;
    cfg.harness.think_lo = 1;  // saturation: fairness differences bite
    cfg.harness.think_hi = 10;
    cfg.harness.eat_lo = 10;
    cfg.harness.eat_hi = 25;
    cfg.run_for = 250'000;
    Scenario s(cfg);
    stab::StateTable regs(n, proto.regs_per_process());
    sim::Rng rng(cfg.seed ^ 0xE16);
    regs.randomize(rng, 0, proto.corruption_hi(s.graph()));
    daemon::DaemonScheduler d(s.harness(), proto, regs);
    s.run();
    if (d.converged()) {
      ++out.converged;
      times.push_back(static_cast<double>(d.last_illegitimate()));
      steps.push_back(static_cast<double>(d.steps_executed()));
    }
  }
  out.mean_time = util::mean(times);
  out.mean_steps = util::mean(steps);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "E16 — daemon fairness vs stabilization latency (crash-free saturation,\n"
      "%d runs per cell, horizon 250000; 'time' = last illegitimate instant).\n\n",
      kRuns);

  const DaemonSpec daemons[] = {
      {"Alg.1 m=1 (k=2)", Algorithm::kWaitFree, 1},
      {"Alg.1 m=4 (k=5)", Algorithm::kWaitFree, 4},
      {"Alg.1 m=16 (k=17)", Algorithm::kWaitFree, 16},
      {"Chandy-Misra", Algorithm::kChandyMisra, 1},
      {"hierarchical (unfair)", Algorithm::kHierarchical, 1},
  };

  {
    std::printf("Dijkstra token ring on ring(8):\n");
    stab::DijkstraTokenRing proto(8);
    util::Table t({"daemon", "converged", "mean time to legit", "mean steps"});
    for (const auto& spec : daemons) {
      Outcome o = measure(spec, proto, "ring", 8);
      t.row()
          .cell(spec.label)
          .cell(std::to_string(o.converged) + "/" + std::to_string(kRuns))
          .cell(o.mean_time, 0)
          .cell(o.mean_steps, 0);
    }
    t.print();
  }
  {
    std::printf("stabilizing coloring on random(10):\n");
    stab::StabilizingColoring proto;
    util::Table t({"daemon", "converged", "mean time to legit", "mean steps"});
    for (const auto& spec : daemons) {
      Outcome o = measure(spec, proto, "random", 10);
      t.row()
          .cell(spec.label)
          .cell(std::to_string(o.converged) + "/" + std::to_string(kRuns))
          .cell(o.mean_time, 0)
          .cell(o.mean_steps, 0);
    }
    t.print();
  }
  std::printf(
      "Reading: every fair daemon stabilizes everything, at similar step counts.\n"
      "The unfair hierarchical daemon fails most coloring runs outright: a\n"
      "conflicted process it starves can never recolor. (It *appears* to pass the\n"
      "token ring because the single-token predicate is a safety condition — the\n"
      "token can legally sit parked at a starved process. The ring's liveness,\n"
      "every process holding the token infinitely often, is exactly what the\n"
      "starved process loses; tests/stab_test's circulation checks cover that.)\n");
  return 0;
}
