// E20 — link faults, and the ARQ shim that absorbs them (extension).
//
// E17 showed that handing the diners a faulty channel *directly* destroys
// the safety lemmas: reliable FIFO is a load-bearing assumption. This
// experiment closes the loop — the same faults (probabilistic loss,
// duplication, reordering, scheduled partitions) are injected *below* the
// net/ ReliableTransport, and the full property battery is re-checked on
// top. The claim under test is the classic fair-lossy → reliable-FIFO
// reduction (docs/MODEL.md "Network fault model"): every paper property
// survives unchanged, and the price appears only as physical retransmit
// overhead and hungry→eat latency inflation.
//
// Grid: loss rate × duplication × partition length, each row pooled over
// several seeds on a saturated ring(8). Per row:
//  * properties      — P1 (fork uniqueness), P2 (◇WX), P3 (wait-freedom),
//                      P4 (◇(m+1)-bounded waiting) and the §7 *logical*
//                      channel bound, all-seeds verdict;
//  * overhead        — physical data segments per logical message (1.00 =
//                      no retransmissions);
//  * latency ×       — mean hungry→eat response time relative to the
//                      reliable baseline row;
//  * the raw retransmission / duplicate-suppression counters.
//
// The last row cuts the ring in half *permanently*. That violates
// fair-lossiness, so it sits outside the paper's envelope — the row
// reports the degraded contract instead: both fragments keep eating
// (per-side progress) while cross-cut traffic quiesces under permanent
// ◇P₁ suspicion.
//
// Flags: --smoke (CI-sized grid) and --json PATH (machine-readable rows,
// written as BENCH_e20.json by the CI smoke step).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::NetMode;
using scenario::Scenario;
using sim::Time;

namespace {

struct Row {
  const char* label;
  double drop;
  double dup;
  double reorder;
  Time partition_len;  // 0 = none, -1 = permanent
};

struct RowResult {
  const Row* row = nullptr;
  int seeds = 0;
  int property_passes = 0;  // seeds with the full battery clean
  bool in_envelope = true;
  double overhead_sum = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t response_sum = 0;  // pooled hungry->eat waits
  std::uint64_t response_count = 0;
  int per_side_progress = 0;  // permanent row: seeds where every process ate

  [[nodiscard]] double mean_response() const {
    return response_count == 0
               ? 0.0
               : static_cast<double>(response_sum) / static_cast<double>(response_count);
  }
};

/// True iff the run satisfies P1–P4 and the §7 logical bound.
bool battery_clean(Scenario& s, Time conv_floor, Time starvation_horizon) {
  const Time conv = std::max(s.fd_convergence_estimate(), conv_floor);
  if (conv >= s.config().run_for) return false;
  if (!s.wait_freedom(starvation_horizon).wait_free()) return false;
  if (s.exclusion().violations_after(conv) != 0) return false;
  if (dining::max_overtakes(s.census(), conv) > s.config().acks_per_session + 1) {
    return false;
  }
  if (s.sim().network().max_in_transit_any(sim::MsgLayer::kDining) > 4) return false;
  for (std::size_t p = 0; p < s.config().n; ++p) {
    if (s.wait_free_diner(static_cast<int>(p))->lemma11_violations() != 0) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int seeds = smoke ? 2 : 8;
  const Time run_for = smoke ? 45'000 : 120'000;
  const Time partition_from = 10'000;

  const Row rows[] = {
      {"reliable (baseline)", 0.0, 0.0, 0.0, 0},
      {"10% loss", 0.10, 0.0, 0.0, 0},
      {"30% loss", 0.30, 0.0, 0.0, 0},
      {"20% duplication", 0.0, 0.20, 0.0, 0},
      {"20% loss + 10% dup + 10% reorder", 0.20, 0.10, 0.10, 0},
      {"10% loss + 5k partition", 0.10, 0.0, 0.0, 5'000},
      {"10% loss + 15k partition", 0.10, 0.0, 0.0, 15'000},
      {"10% loss + PERMANENT partition", 0.10, 0.0, 0.0, -1},
  };

  std::printf(
      "E20 — paper properties over faulty links through the ARQ shim\n"
      "(saturated ring(8), %d seeds/row, run %lld; partitions cut {0,1,2}\n"
      "from t=10000; the permanent row splits the ring in half forever).\n\n",
      seeds, static_cast<long long>(run_for));

  std::vector<RowResult> results;
  for (const Row& row : rows) {
    RowResult res;
    res.row = &row;
    res.seeds = seeds;
    res.in_envelope = row.partition_len >= 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Config cfg;
      cfg.seed = 2'000 + static_cast<std::uint64_t>(seed);
      cfg.topology = "ring";
      cfg.n = 8;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.partial_synchrony = false;
      cfg.uniform_delay_lo = 1;
      cfg.uniform_delay_hi = 10;
      cfg.harness.think_lo = 1;  // saturation: resources in constant motion
      cfg.harness.think_hi = 8;
      cfg.harness.eat_lo = 40;
      cfg.harness.eat_hi = 100;
      cfg.run_for = run_for;

      const bool faulty = row.drop > 0 || row.dup > 0 || row.reorder > 0 ||
                          row.partition_len != 0;
      Time conv_floor = 0;
      if (!faulty) {
        cfg.net_mode = NetMode::kIdeal;
        cfg.detector = DetectorKind::kScripted;
      } else {
        cfg.link_faults = net::LinkFaultParams{
            .drop_prob = row.drop, .dup_prob = row.dup, .reorder_prob = row.reorder};
        if (row.partition_len == 0) {
          cfg.net_mode = NetMode::kLossy;
          cfg.detector = DetectorKind::kScripted;
        } else if (row.partition_len > 0) {
          // Finite cut: the scripted oracle cannot see it, so the ARQ
          // alone bridges the outage; "eventually" starts after the heal
          // plus one capped-timeout flush cycle.
          cfg.net_mode = NetMode::kLossyPartition;
          cfg.detector = DetectorKind::kScripted;
          cfg.partitions.push_back(net::Partition{
              .side = {0, 1, 2},
              .from = partition_from,
              .until = partition_from + row.partition_len});
          conv_floor = partition_from + row.partition_len + 6'000;
        } else {
          // Permanent cut: ◇P₁ must *suspect* across it for either side
          // to make progress, so the detector has to be message-driven.
          cfg.net_mode = NetMode::kLossyPartition;
          cfg.detector = DetectorKind::kHeartbeat;
          cfg.partitions.push_back(net::Partition{
              .side = {0, 1, 2, 3}, .from = partition_from, .until = -1});
        }
      }

      Scenario s(cfg);
      s.run();

      if (res.in_envelope) {
        const Time horizon = row.partition_len > 0 ? row.partition_len + 15'000 : 25'000;
        if (battery_clean(s, conv_floor, horizon)) ++res.property_passes;
      } else {
        // Outside the envelope: record the degraded contract instead.
        bool all_ate = true;
        for (std::size_t p = 0; p < cfg.n; ++p) {
          if (s.trace().count(dining::TraceEventKind::kStartEating,
                              static_cast<int>(p)) == 0) {
            all_ate = false;
          }
        }
        if (all_ate) ++res.per_side_progress;
      }
      if (s.transport() != nullptr) {
        res.overhead_sum += s.transport()->overhead();
        res.retransmissions += s.transport()->retransmissions();
        res.dup_suppressed += s.transport()->duplicates_suppressed();
      } else {
        res.overhead_sum += 1.0;  // ideal mode: no shim, no overhead
      }
      for (const auto& sess : dining::hungry_sessions(s.trace())) {
        if (!sess.completed()) continue;
        res.response_sum += static_cast<std::uint64_t>(sess.response_time());
        ++res.response_count;
      }
    }
    results.push_back(res);
  }

  const double base_latency = results.front().mean_response();
  util::Table t({"channel", "properties", "overhead", "latency x", "retransmits",
                 "dups dropped"});
  for (const RowResult& res : results) {
    const double inflation =
        base_latency <= 0.0 ? 1.0 : res.mean_response() / base_latency;
    t.row()
        .cell(res.row->label)
        .cell(res.in_envelope
                  ? std::to_string(res.property_passes) + "/" + std::to_string(res.seeds)
                  : "outside envelope (" + std::to_string(res.per_side_progress) + "/" +
                        std::to_string(res.seeds) + " per-side progress)")
        .cell(res.overhead_sum / res.seeds, 2)
        .cell(inflation, 2)
        .cell(res.retransmissions)
        .cell(res.dup_suppressed);
  }
  t.print();
  std::printf(
      "Reading: every in-envelope row keeps all of P1–P4 and the logical §7\n"
      "bound — exactly the reduction the transport promises — while loss shows\n"
      "up strictly below, as retransmit overhead and latency inflation. The\n"
      "permanent cut is the contrast row: the reduction's fair-lossy premise is\n"
      "void, global guarantees are not claimed, yet both fragments keep eating\n"
      "and cross-cut retransmission quiesces instead of flooding a dead link.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\"experiment\":\"e20_link_faults\",\"smoke\":" << (smoke ? "true" : "false")
        << ",\"seeds_per_row\":" << seeds << ",\"run_for\":" << run_for << ",\"rows\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RowResult& res = results[i];
      const double inflation =
          base_latency <= 0.0 ? 1.0 : res.mean_response() / base_latency;
      if (i != 0) out << ",";
      out << "{\"label\":\"" << res.row->label << "\""
          << ",\"drop\":" << res.row->drop << ",\"dup\":" << res.row->dup
          << ",\"reorder\":" << res.row->reorder
          << ",\"partition_len\":" << res.row->partition_len
          << ",\"in_envelope\":" << (res.in_envelope ? "true" : "false")
          << ",\"property_passes\":" << res.property_passes
          << ",\"per_side_progress\":" << res.per_side_progress
          << ",\"overhead\":" << res.overhead_sum / res.seeds
          << ",\"latency_inflation\":" << inflation
          << ",\"retransmissions\":" << res.retransmissions
          << ",\"duplicates_suppressed\":" << res.dup_suppressed << "}";
    }
    out << "]}\n";
  }

  // CI treats a non-zero exit as a property regression.
  for (const RowResult& res : results) {
    if (res.in_envelope && res.property_passes != res.seeds) return 1;
  }
  return 0;
}
