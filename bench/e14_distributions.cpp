// E14 — statistical robustness: the headline properties across many seeds.
//
// E1–E13 use representative runs; this experiment sweeps 40 seeds per
// configuration and reports the *distributions*: how many pre-convergence
// violations occur, when the last one falls relative to the oracle's
// convergence, the worst post-convergence overtaking (must be <= 2 in
// every single run), and hungry→eat latency histograms per topology.
#include <cstdio>
#include <vector>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

int main() {
  constexpr int kSeeds = 40;

  std::printf(
      "E14 — property robustness across %d seeds per configuration\n"
      "(Algorithm 1, scripted oracle lying until t=12000, two crashes, run 80000)\n\n",
      kSeeds);

  util::Table t({"topology", "violations mean/max", "last violation p95",
                 "conv. estimate", "post-conv. violations (all runs)",
                 "post-conv. overtakes max (all runs)", "runs wait-free"});
  for (const char* topo : {"ring", "clique", "star", "grid", "random"}) {
    std::vector<double> violations, last_violation;
    double conv_estimate = 0;
    std::uint64_t post_conv_violations = 0;
    int post_conv_overtakes = 0;
    int wait_free_runs = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Config cfg;
      cfg.seed = 14'000 + static_cast<std::uint64_t>(seed);
      cfg.topology = topo;
      cfg.n = 10;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;
      cfg.partial_synchrony = false;
      cfg.detection_delay = 120;
      cfg.fp_count = 40;
      cfg.fp_until = 12'000;
      cfg.harness.think_lo = 10;
      cfg.harness.think_hi = 60;
      cfg.crashes = {{3, 20'000}, {7, 40'000}};
      cfg.run_for = 80'000;
      Scenario s(cfg);
      s.run();
      auto ex = s.exclusion();
      const auto conv = s.fd_convergence_estimate();
      violations.push_back(static_cast<double>(ex.violations.size()));
      if (ex.last_violation() >= 0) {
        last_violation.push_back(static_cast<double>(ex.last_violation()));
      }
      conv_estimate = static_cast<double>(conv);
      post_conv_violations += ex.violations_after(conv);
      post_conv_overtakes =
          std::max(post_conv_overtakes, dining::max_overtakes(s.census(), conv));
      if (s.wait_freedom(18'000).wait_free()) ++wait_free_runs;
    }
    auto vsum = util::summarize(violations);
    t.row()
        .cell(topo)
        .cell(std::to_string(static_cast<int>(vsum.mean)) + "/" +
              std::to_string(static_cast<int>(vsum.max)))
        .cell(util::percentile(last_violation, 0.95), 0)
        .cell(conv_estimate, 0)
        .cell(post_conv_violations)
        .cell(post_conv_overtakes)
        .cell(std::to_string(wait_free_runs) + "/" + std::to_string(kSeeds));
  }
  t.print();
  std::printf(
      "Expectation: post-convergence violations identically 0 and post-convergence\n"
      "overtaking <= 2 over ALL %d x 5 runs; every run wait-free.\n\n",
      kSeeds);

  std::printf("hungry->eat latency distributions (crash-free, same environment):\n");
  util::Table h({"topology", "n", "mean", "p95", "p99", "histogram 0..1000 ticks"});
  for (const char* topo : {"ring", "star", "grid", "clique"}) {
    util::Histogram hist(0, 1'000, 40);
    std::vector<double> all;
    for (int seed = 0; seed < 10; ++seed) {
      Config cfg;
      cfg.seed = 14'500 + static_cast<std::uint64_t>(seed);
      cfg.topology = topo;
      cfg.n = 12;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;
      cfg.partial_synchrony = false;
      cfg.run_for = 40'000;
      Scenario s(cfg);
      s.run();
      for (const auto& sess : hungry_sessions(s.trace())) {
        if (sess.completed()) {
          hist.add(static_cast<double>(sess.response_time()));
          all.push_back(static_cast<double>(sess.response_time()));
        }
      }
    }
    auto sum = util::summarize(all);
    h.row()
        .cell(topo)
        .cell(12)
        .cell(sum.mean, 0)
        .cell(sum.p95, 0)
        .cell(sum.p99, 0)
        .cell(hist.sparkline());
  }
  h.print();
  std::printf(
      "Reading: latency concentrates near the message round-trip cost on sparse\n"
      "topologies and spreads with contention (clique): the locality claim of E9,\n"
      "seen as a distribution.\n");
  return 0;
}
