// E24 — multi-process socket cluster under loss × crash × partition.
//
// The socket engine (src/netproc/) runs one OS process per philosopher
// over UDP loopback: real datagrams, real SIGKILLs, partitions injected
// at runtime through the orchestrator's control channel. This bench
// drives an 8-node grid through escalating hostility and reports, per
// condition, what the merged shipped logs say the cluster did:
//
//  * msgs/s        — physical datagrams recorded per wall second
//  * retx ratio    — physical ARQ segments (data + cumulative acks) per
//                    logical message carried: ~2 on a lossless link, and
//                    loss pushes it up through retransmission (0 when no
//                    ARQ is installed, i.e. the clean condition)
//  * hungry→eat    — response-latency percentiles (config ticks) of the
//                    completed sessions of never-crashed processes
//  * meals         — completed eating sessions across the cluster
//
// Correctness gates (any failure exits non-zero, like E22): the cluster
// must supervise cleanly (planned SIGKILLs only — a wedged or crashed
// survivor fails the run), the rebuilt monitors must agree with the
// post-hoc checkers, and a full replay of the merged logs must reproduce
// the live verdicts bit-for-bit.
//
// Wall-clock numbers are machine-dependent; the JSON is an artifact for
// cross-runner trends (see EXPERIMENTS.md §E24), not a perf gate.
//
// Flags:
//   --smoke       CI-sized run (shorter horizons)
//   --json PATH   machine-readable results (BENCH_e24.json in CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/proc_scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::MsgLayer;
using sim::Time;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string condition;
  std::uint64_t datagrams = 0;   ///< physical sends in the merged books
  double wall_s = 0.0;
  double retx_ratio = 0.0;       ///< transport segments / logical messages
  std::uint64_t meals = 0;
  util::Summary latency;         ///< hungry→eat, config ticks
  std::uint64_t crashes = 0;
  [[nodiscard]] std::uint64_t per_sec() const {
    return wall_s <= 0.0 ? 0
                         : static_cast<std::uint64_t>(static_cast<double>(datagrams) / wall_s);
  }
};

/// One orchestrated cluster run; flips `ok` false on any gate failure.
Result run_condition(const std::string& condition, bool loss, bool crash, bool partition,
                     Time horizon, bool& ok) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kProc;
  cfg.seed = 2026;
  cfg.topology = "grid";
  cfg.n = 8;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kPerfect;
  cfg.run_for = horizon;
  cfg.link_faults = {};
  if (loss) {
    cfg.net_mode = scenario::NetMode::kLossy;
    cfg.link_faults.drop_prob = 0.1;
    cfg.link_faults.dup_prob = 0.05;
  }
  if (partition) {
    cfg.net_mode = scenario::NetMode::kLossyPartition;
    // Split half the grid off for the middle third of the run, then heal.
    cfg.partitions.push_back(net::Partition{{0, 1, 2, 3}, horizon / 3, 2 * horizon / 3});
  }
  if (crash) {
    cfg.crashes = {{2, horizon / 3}, {5, horizon / 2}};
  }

  scenario::ProcScenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();

  Result r;
  r.condition = condition;
  r.wall_s = seconds_since(t0);
  r.crashes = s.result().crashes.size();

  // Physical datagrams: every layer's sends in the rebuilt books (the
  // detector layer rides raw, dining/other ride the ARQ as kTransport
  // segments when a transport is installed).
  const sim::Network& net = s.network();
  for (int layer = 0; layer < sim::kNumMsgLayers; ++layer) {
    r.datagrams += net.total_sent(static_cast<MsgLayer>(layer));
  }
  const std::uint64_t logical =
      net.total_sent(MsgLayer::kDining) + net.total_sent(MsgLayer::kOther);
  const std::uint64_t transport = net.total_sent(MsgLayer::kTransport);
  r.retx_ratio = logical == 0 ? 0.0
                              : static_cast<double>(transport) / static_cast<double>(logical);
  r.meals = s.trace().count(dining::TraceEventKind::kStartEating);

  const auto wf = s.wait_freedom(horizon / 4);
  r.latency = wf.response;

  // -- gates --------------------------------------------------------------
  if (!s.result().ok) {
    std::fprintf(stderr, "E24 %s: cluster failed: %s\n", condition.c_str(),
                 s.result().error.c_str());
    ok = false;
  }
  if (!s.exclusion().violations.empty()) {
    std::fprintf(stderr, "E24 %s: exclusion violated\n", condition.c_str());
    ok = false;
  }
  if (!wf.wait_free()) {
    std::fprintf(stderr, "E24 %s: starvation among correct processes\n", condition.c_str());
    ok = false;
  }
  const std::string agreement = s.monitor_agreement();
  if (!agreement.empty()) {
    std::fprintf(stderr, "E24 %s: MONITOR DISAGREEMENT\n%s\n", condition.c_str(),
                 agreement.c_str());
    ok = false;
  }
  const std::string replay = s.replay_agreement();
  if (!replay.empty()) {
    std::fprintf(stderr, "E24 %s: REPLAY DISAGREEMENT\n%s\n", condition.c_str(),
                 replay.c_str());
    ok = false;
  }
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e24_cluster\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"condition\": \"" << r.condition << "\", \"datagrams\": " << r.datagrams
        << ", \"wall_s\": " << r.wall_s << ", \"msgs_per_sec\": " << r.per_sec()
        << ", \"retx_ratio\": " << r.retx_ratio << ", \"meals\": " << r.meals
        << ", \"crashes\": " << r.crashes << ", \"latency_ticks\": {\"p50\": "
        << r.latency.p50 << ", \"p95\": " << r.latency.p95 << ", \"p99\": " << r.latency.p99
        << ", \"count\": " << r.latency.count << "}}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const Time horizon = smoke ? 9'000 : 45'000;  // ticks of 100 µs

  std::printf("E24: 8-node socket cluster under loss x crash x partition%s\n",
              smoke ? " (smoke)" : "");

  bool ok = true;
  std::vector<Result> results;
  results.push_back(run_condition("clean", false, false, false, horizon, ok));
  results.push_back(run_condition("loss", true, false, false, horizon, ok));
  results.push_back(run_condition("loss+crash", true, true, false, horizon, ok));
  results.push_back(run_condition("loss+crash+partition", true, true, true, horizon, ok));

  util::Table t({"condition", "datagrams", "msgs/s", "retx", "meals", "lat p50", "lat p99",
                 "crashes"});
  for (const Result& r : results) {
    t.row()
        .cell(r.condition)
        .cell(r.datagrams)
        .cell(r.per_sec())
        .cell(r.retx_ratio, 3)
        .cell(r.meals)
        .cell(r.latency.p50, 0)
        .cell(r.latency.p99, 0)
        .cell(r.crashes);
  }
  t.print();

  if (!json_path.empty()) {
    write_json(json_path, results, smoke);
    std::printf("results written to %s\n", json_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "E24: correctness gate failed (see above)\n");
    return 1;
  }
  return 0;
}
