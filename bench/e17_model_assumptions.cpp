// E17 — the model assumptions are load-bearing too (extension).
//
// The safety proofs (Lemmas 1.1/1.2) argue from reliable FIFO channels:
// a fork request travels behind any fork sent earlier on the same channel,
// so a request always finds the fork at the receiver, so forks are never
// duplicated. This experiment injects the two channel faults the model
// forbids — duplication and reordering — under hunger saturation, with a
// *mistake-free* oracle, so every observed safety violation is purely
// channel-induced.
//
// Signals, per row (10 seeds pooled):
//  * Lemma 1.1 hits — fork requests arriving at a non-holder (impossible
//    under the model; each hit is a direct counterexample to the lemma);
//  * double-holding — both endpoints of an edge holding "the" fork at
//    once (Lemma 1.2 broken), sampled every 25 ticks;
//  * exclusion violations — neighbors eating together despite a truthful
//    oracle (Theorem 1's conclusion failing);
//  * wait-freedom — which, interestingly, survives: the ping/ack and
//    token/fork state machines are boolean, so duplicates are absorbed
//    idempotently on the liveness side even as uniqueness dies.
//
// The complement of E12: there the *oracle's* contract was deleted, here
// the *network's*.
#include <cstdio>
#include <functional>
#include <memory>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

int main() {
  std::printf(
      "E17 — breaking the channel assumptions (saturated ring(8), mistake-free\n"
      "scripted oracle, no crashes, run 150000; 10 seeds pooled per row).\n\n");

  util::Table t({"channels", "Lemma 1.1 hits", "double-holding runs",
                 "exclusion violations", "starving runs", "clean runs"});

  struct Row {
    const char* label;
    double dup;
    double reorder;
  };
  const Row rows[] = {
      {"reliable FIFO (the model)", 0.0, 0.0},
      {"5% duplication", 0.05, 0.0},
      {"20% duplication", 0.20, 0.0},
      {"5% reordering", 0.0, 0.05},
      {"20% reordering", 0.0, 0.20},
      {"20% duplication + 20% reordering", 0.20, 0.20},
  };

  for (const Row& row : rows) {
    std::uint64_t lemma_hits = 0;
    std::uint64_t violations = 0;
    int double_hold_runs = 0;
    int starving_runs = 0;
    int clean_runs = 0;
    for (int seed = 0; seed < 10; ++seed) {
      Config cfg;
      cfg.seed = 1'900 + static_cast<std::uint64_t>(seed);
      cfg.topology = "ring";
      cfg.n = 8;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;  // zero false positives
      cfg.partial_synchrony = false;
      cfg.channel_dup_prob = row.dup;
      cfg.channel_reorder_prob = row.reorder;
      cfg.harness.think_lo = 1;  // saturation: resources in constant motion
      cfg.harness.think_hi = 8;
      cfg.harness.eat_lo = 40;
      cfg.harness.eat_hi = 100;
      cfg.run_for = 150'000;
      Scenario s(cfg);

      // Sample fork uniqueness (Lemma 1.2) throughout the run.
      bool double_hold = false;
      auto check = std::make_shared<std::function<void()>>();
      *check = [&s, &double_hold, check] {
        for (const auto& [a, b] : s.graph().edges()) {
          if (s.wait_free_diner(a)->holds_fork(b) && s.wait_free_diner(b)->holds_fork(a)) {
            double_hold = true;
          }
        }
        s.sim().schedule_in(25, *check);
      };
      s.sim().schedule_in(25, *check);

      s.run();
      std::uint64_t hits = 0;
      for (std::size_t p = 0; p < cfg.n; ++p) {
        hits += s.wait_free_diner(static_cast<int>(p))->lemma11_violations();
      }
      auto ex = s.exclusion();
      lemma_hits += hits;
      violations += ex.violations.size();
      if (double_hold) ++double_hold_runs;
      if (!s.wait_freedom(30'000).wait_free()) ++starving_runs;
      if (hits == 0 && ex.violations.empty() && !double_hold) ++clean_runs;
    }
    t.row()
        .cell(row.label)
        .cell(lemma_hits)
        .cell(std::to_string(double_hold_runs) + "/10")
        .cell(violations)
        .cell(std::to_string(starving_runs) + "/10")
        .cell(std::to_string(clean_runs) + "/10");
  }
  t.print();
  std::printf(
      "Reading: the model row is spotless. Duplication breaks Lemma 1.1 by the\n"
      "thousands and, through double-yields, materializes duplicate forks\n"
      "(Lemma 1.2) and real co-eating with a truthful oracle — the exact causal\n"
      "chain the paper's safety proof rules out. Reordering alone fires Lemma 1.1\n"
      "more rarely (a token must overtake its fork). Progress happens to survive\n"
      "(boolean state absorbs duplicates idempotently), which sharpens the\n"
      "conclusion: reliable FIFO channels are specifically a SAFETY assumption.\n");
  return 0;
}
