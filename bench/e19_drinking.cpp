// E19 — wait-free drinking philosophers on Algorithm 1 (extension).
//
// Drinking philosophers (Chandy–Misra 1984) is the standard "next problem
// up" from dining: sessions need dynamic SUBSETS of the incident
// resources, so neighbors with disjoint needs may proceed concurrently.
// The classic modular construction uses a dining layer as a priority
// catalyst — and composing it with this repository's Algorithm 1 + ◇P₁
// yields, to our knowledge of the paper's scope, the natural corollary:
// *wait-free, eventually-exclusive drinking*.
//
// Table 1 sweeps the need density: at need_prob = 1 drinking degenerates
// to dining (adjacent drinks never overlap); as needs thin out, adjacent
// concurrency rises while shared-bottle exclusion stays intact.
//
// Table 2 is the fault story: crashes + a lying oracle; shared-bottle
// violations happen only before convergence, and the victims' neighbors
// keep drinking (wait-freedom carries through the composition).
#include <cstdio>
#include <vector>

#include "dining/checkers.hpp"
#include "drinking/drinking_harness.hpp"
#include "fd/scripted.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "util/table.hpp"

using namespace ekbd;
using drinking::DrinkingDiner;
using drinking::DrinkingHarness;
using drinking::DrinkingOptions;
using sim::ProcessId;
using sim::Time;

namespace {

struct World {
  World(std::uint64_t seed, DrinkingOptions opt, Time fp_until,
        std::vector<std::pair<ProcessId, Time>> crashes)
      : graph(graph::ring(8)),
        sim(seed, sim::make_uniform_delay(1, 8)),
        det(sim, 120),
        harness(sim, graph, opt) {
    if (fp_until > 0) {
      for (const auto& [a, b] : graph.edges()) {
        det.add_mutual_false_positive(a, b, 500, fp_until);
      }
    }
    auto colors = graph::welsh_powell_coloring(graph);
    for (std::size_t v = 0; v < graph.size(); ++v) {
      const auto p = static_cast<ProcessId>(v);
      std::vector<ProcessId> neighbors = graph.neighbors(p);
      std::vector<int> ncolors;
      for (ProcessId j : neighbors) ncolors.push_back(colors[static_cast<std::size_t>(j)]);
      drinkers.push_back(sim.make_actor<DrinkingDiner>(std::move(neighbors), colors[v],
                                                       std::move(ncolors), det));
      harness.manage(drinkers.back());
    }
    for (const auto& [p, at] : crashes) harness.schedule_crash(p, at);
  }
  graph::ConflictGraph graph;
  sim::Simulator sim;
  fd::ScriptedDetector det;
  DrinkingHarness harness;
  std::vector<DrinkingDiner*> drinkers;
};

}  // namespace

int main() {
  std::printf(
      "E19 — wait-free drinking philosophers via Algorithm 1 (ring(8), run 80000)\n\n"
      "Table 1: need density vs concurrency (no crashes, truthful oracle).\n"
      "'adjacent overlaps' = simultaneous drinks by neighbors (dining forbids\n"
      "these outright); 'shared-bottle violations' = overlaps where both needed\n"
      "the same bottle (must be 0).\n");
  util::Table t1({"need prob", "drinks", "mean concurrent drinkers", "adjacent overlaps",
                  "shared-bottle violations", "conservation hits"});
  for (double need : {1.0, 0.6, 0.3, 0.1}) {
    DrinkingOptions opt;
    opt.need_prob = need;
    opt.dry_lo = 5;
    opt.dry_hi = 40;
    opt.drink_lo = 50;
    opt.drink_hi = 100;
    World w(1'919 + static_cast<std::uint64_t>(need * 10), opt, 0, {});
    w.harness.run_until(80'000);
    auto overlaps = dining::check_exclusion(w.harness.drink_trace(), w.graph);
    std::uint64_t conservation = 0;
    for (auto* d : w.drinkers) conservation += d->bottle_conservation_violations();
    t1.row()
        .cell(need, 1)
        .cell(w.harness.drinks_completed())
        .cell(w.harness.mean_concurrent_drinkers(), 2)
        .cell(static_cast<std::uint64_t>(overlaps.violations.size()))
        .cell(w.harness.shared_bottle_violations())
        .cell(conservation);
  }
  t1.print();

  std::printf(
      "Table 2: faults — mutual oracle lies until t=4000, p2 crashes at t=20000,\n"
      "p6 at t=40000 (full needs: every crash matters to both neighbors).\n");
  util::Table t2({"seed", "drinks", "shared-bottle violations", "last violation",
                  "survivor drinks after t=45000", "starving survivors"});
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    DrinkingOptions opt;
    opt.need_prob = 1.0;
    opt.dry_lo = 5;
    opt.dry_hi = 40;
    World w(seed, opt, 4'000, {{2, 20'000}, {6, 40'000}});
    w.harness.run_until(80'000);
    std::size_t late = 0;
    for (const auto& e : w.harness.drink_trace().events()) {
      if (e.kind == dining::TraceEventKind::kStartEating && e.at > 45'000) ++late;
    }
    auto wf = dining::check_wait_freedom(w.harness.drink_trace(), w.harness.crash_times(),
                                         20'000);
    t2.row()
        .cell(seed)
        .cell(w.harness.drinks_completed())
        .cell(w.harness.shared_bottle_violations())
        .cell(static_cast<std::int64_t>(w.harness.last_violation()))
        .cell(static_cast<std::uint64_t>(late))
        .cell(static_cast<std::uint64_t>(wf.starving.size()));
  }
  t2.print();
  std::printf(
      "Expectation: Table 1 — overlaps grow as needs thin while shared-bottle\n"
      "violations and conservation hits stay 0; need=1.0 recovers dining (0\n"
      "overlaps). Table 2 — violations only during the lie window (< 8000), all\n"
      "survivors keep drinking after both crashes, nobody starves.\n");
  return 0;
}
