// E25 — sharded rt executor: a hundred thousand philosophers on real
// threads.
//
// The PR-5 rt engine ran one OS thread per actor, which collapses past a
// few hundred philosophers; the shard-per-core executor (rt/runtime.hpp)
// multiplexes N actors onto C worker shards with run queues, work
// stealing, batched mailbox drains and Ben-David–Blelloch-style helping.
// This bench records what that buys and gates it:
//
//  * perf mode — the SAME dining scenario (sparse random conflict graph,
//    perfect detector, live monitors) run twice at n = 10⁴: once on the
//    sharded executor (shards = auto) and once at shards = n, which is
//    exactly the old thread-per-actor layout (one worker, one run queue,
//    one timer registry per actor). Reported as actors/sec (actors hosted
//    per wall second of the full run including start/join — the metric
//    the tentpole quantifies: how many philosophers the engine can field),
//    recorded events/sec, and the hungry→eat p99 in ticks. The bench
//    itself enforces the acceptance ratio: at full size sharded actors/sec
//    must be ≥ 10× the thread-per-actor baseline (measured ~90-180× on a
//    1-core container: the thread layout overshoots a 0.1 s horizon by
//    ~18 s of scheduler thrash). The smoke pair is too small for the full
//    gap — thread thrash grows superlinearly in n — so smoke enforces a
//    3× sanity floor instead.
//
//  * scale mode — a 10⁵-actor sparse random conflict graph on the sharded
//    executor, crash-faulted, live monitors attached, run to completion.
//    Gate: zero online/post-hoc monitor disagreement, the crash plan
//    executed, and real dining progress (meals > 0). This is the paper's
//    "arbitrary conflict graphs" claim on real threads at a scale the old
//    engine could not even start (10⁵ OS threads).
//
//    Load shaping matters here: on a saturated box a full FIFO sweep of
//    the run queue takes ~n · 10 µs, so a crash scheduled late in the
//    horizon can sit behind a sweep's worth of backlog and never execute
//    before the deadline. The scale run therefore spreads first hunger
//    over 4× the horizon (only ~¼ of actors start a session in-window)
//    and schedules crashes early — right behind the on_start storm — so
//    they reliably fire with ≥ 2 sweeps of horizon to spare.
//
// Wall-clock throughput numbers are machine-dependent; the --check-against
// gate therefore uses a loose 0.5× floor per metric (vs E21's 0.85) while
// the sharded-over-threads ratio is enforced unconditionally — a slow
// runner slows both sides of the ratio.
//
// Flags:
//   --smoke               CI-sized run (n = 2000 perf pair, n = 20000 scale)
//   --json PATH           machine-readable results (BENCH_e25.json in CI)
//   --check-against PATH  compare actors_per_sec/events_per_sec per key
//                         against a recorded baseline; exit non-zero on a
//                         > 2x regression or a broken hard gate
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/rt_scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::Time;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string mode;   // "perf" | "scale"
  std::string layout; // "sharded" | "threads"
  std::size_t n = 0;
  std::size_t shards = 0;
  std::uint64_t events = 0;
  std::uint64_t meals = 0;
  std::uint64_t steals = 0;
  std::uint64_t helps = 0;
  double wall_s = 0.0;
  double p99_hungry_to_eat = 0.0;  // ticks
  [[nodiscard]] double actors_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(n) / wall_s;
  }
  [[nodiscard]] double events_per_sec() const {
    return wall_s <= 0.0 ? 0.0 : static_cast<double>(events) / wall_s;
  }
  [[nodiscard]] std::string key() const {
    return mode + "/" + layout + "/" + std::to_string(n);
  }
};

scenario::Config base_config(std::size_t n, Time horizon) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kRt;
  cfg.seed = 2026;
  cfg.topology = "sparse";  // O(n·d) build; avg degree 4
  cfg.n = n;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kPerfect;  // no detector traffic
  cfg.observability = true;                         // live monitors attached
  cfg.run_for = horizon;
  cfg.rt_tick_ns = 100'000;
  // Small rings: at 10⁵ actors the default 1024-slot mailboxes alone would
  // be ~7 GB. Backpressure (push_blocking + helping) handles the bursts.
  cfg.rt_mailbox_capacity = 16;
  // Dense herd: everyone gets hungry in the first half, one session each.
  cfg.harness.first_hunger_hi = horizon / 2;
  cfg.harness.think_lo = horizon;
  cfg.harness.think_hi = 2 * horizon;
  cfg.harness.eat_lo = 5;
  cfg.harness.eat_hi = 20;
  return cfg;
}

scenario::Config scale_config(std::size_t n, Time horizon) {
  scenario::Config cfg = base_config(n, horizon);
  // Sparse herd: first hunger uniform in [0, 4·horizon], so only ~¼ of the
  // actors start a session inside the window. A dense herd at 10⁵ actors
  // offers ~15 dispatches per session — more than 10× what one core clears
  // in the horizon — and the backlog would swallow the crash plan (see the
  // header comment).
  cfg.harness.first_hunger_hi = 4 * horizon;
  cfg.harness.think_lo = 2 * horizon;
  cfg.harness.think_hi = 3 * horizon;
  // Crash early: the dispatch that retires a crashed actor queues behind
  // whatever the on_start storm left, so an early schedule still executes
  // mid-run while a late one can miss the horizon entirely.
  cfg.crashes = {{static_cast<sim::ProcessId>(n / 3), horizon / 6},
                 {static_cast<sim::ProcessId>(n / 2), horizon / 4}};
  return cfg;
}

/// One full rt dining run; fails the bench on monitor disagreement.
/// `gate_progress` additionally enforces meals > 0 and crash-plan
/// execution — on for the scale run, off for the perf pair, whose short
/// horizon is a throughput probe (a Debug or sanitizer build may not
/// complete a session inside it, and that is not what the pair gates).
Result run_one(const std::string& mode, const std::string& layout, scenario::Config cfg,
               bool gate_progress, bool& ok) {
  scenario::RtScenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  Result r;
  r.mode = mode;
  r.layout = layout;
  r.n = cfg.n;
  r.wall_s = seconds_since(t0);
  r.shards = s.runtime().shard_count();
  r.events = s.event_log()->size() + s.trace().size();
  r.meals = s.trace().count(dining::TraceEventKind::kStartEating);
  const rt::ExecutorStats st = s.runtime().stats();
  r.steals = st.steals;
  r.helps = st.helps + st.timer_helps;

  std::vector<double> waits;
  for (const auto& sess : dining::hungry_sessions(s.trace())) {
    if (sess.completed()) waits.push_back(static_cast<double>(sess.response_time()));
  }
  r.p99_hungry_to_eat = util::percentile(std::move(waits), 0.99);

  const std::string agreement = s.monitor_agreement();
  if (!agreement.empty()) {
    std::fprintf(stderr, "E25 %s: MONITOR DISAGREEMENT\n%s\n", r.key().c_str(),
                 agreement.c_str());
    ok = false;
  }
  if (gate_progress) {
    if (r.meals == 0) {
      std::fprintf(stderr, "E25 %s: no dining progress (0 meals)\n", r.key().c_str());
      ok = false;
    }
    for (const auto& [p, at] : cfg.crashes) {
      if (!s.runtime().crashed(p)) {
        std::fprintf(stderr, "E25 %s: scheduled crash of p%d never executed\n",
                     r.key().c_str(), static_cast<int>(p));
        ok = false;
      }
    }
  }
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results,
                double ratio, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e25_shardedrt\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"sharded_over_threads\": " << ratio
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"key\": \"" << r.key() << "\", \"mode\": \"" << r.mode
        << "\", \"layout\": \"" << r.layout << "\", \"n\": " << r.n
        << ", \"shards\": " << r.shards << ", \"events\": " << r.events
        << ", \"meals\": " << r.meals << ", \"steals\": " << r.steals
        << ", \"helps\": " << r.helps << ", \"wall_s\": " << r.wall_s
        << ", \"actors_per_sec\": " << static_cast<std::uint64_t>(r.actors_per_sec())
        << ", \"events_per_sec\": " << static_cast<std::uint64_t>(r.events_per_sec())
        << ", \"p99_hungry_to_eat\": " << r.p99_hungry_to_eat << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Minimal scrape of a prior e25 JSON: per-row key + actors_per_sec.
bool load_baseline(const std::string& path,
                   std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto kpos = line.find("\"key\": \"");
    const auto vpos = line.find("\"actors_per_sec\": ");
    if (kpos == std::string::npos || vpos == std::string::npos) continue;
    const auto kstart = kpos + 8;
    const auto kend = line.find('"', kstart);
    if (kend == std::string::npos) continue;
    out.emplace_back(line.substr(kstart, kend - kstart),
                     std::strtod(line.c_str() + vpos + 18, nullptr));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH] [--check-against PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t perf_n = smoke ? 2'000 : 10'000;
  const std::size_t scale_n = smoke ? 20'000 : 100'000;
  const Time perf_horizon = smoke ? 300 : 2'000;     // ticks of 100 µs
  const Time scale_horizon = smoke ? 6'000 : 30'000; // sized for ≥ 2 sweeps past the crashes

  std::printf("E25: sharded rt executor vs thread-per-actor%s\n", smoke ? " (smoke)" : "");

  bool ok = true;
  std::vector<Result> results;

  // -- perf pair ----------------------------------------------------------
  {
    scenario::Config cfg = base_config(perf_n, perf_horizon);
    cfg.rt_shards = 0;  // auto: one shard per hardware core
    results.push_back(run_one("perf", "sharded", cfg, /*gate_progress=*/false, ok));
  }
  {
    scenario::Config cfg = base_config(perf_n, perf_horizon);
    cfg.rt_shards = perf_n;  // the old layout: one worker per actor
    results.push_back(run_one("perf", "threads", cfg, /*gate_progress=*/false, ok));
  }
  const double ratio = results[1].actors_per_sec() <= 0.0
                           ? 0.0
                           : results[0].actors_per_sec() / results[1].actors_per_sec();

  // -- scale run ----------------------------------------------------------
  {
    scenario::Config cfg = scale_config(scale_n, scale_horizon);
    cfg.rt_shards = 0;
    results.push_back(run_one("scale", "sharded", cfg, /*gate_progress=*/true, ok));
  }

  util::Table t({"mode", "layout", "n", "shards", "wall_s", "actors/s", "events/s",
                 "meals", "steals", "p99 wait"});
  for (const Result& r : results) {
    t.row()
        .cell(r.mode)
        .cell(r.layout)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(static_cast<std::uint64_t>(r.shards))
        .cell(r.wall_s, 3)
        .cell(static_cast<std::uint64_t>(r.actors_per_sec()))
        .cell(static_cast<std::uint64_t>(r.events_per_sec()))
        .cell(r.meals)
        .cell(r.steals)
        .cell(r.p99_hungry_to_eat, 0);
  }
  t.print();
  std::printf("sharded over thread-per-actor: %.1fx actors/sec\n", ratio);

  if (!json_path.empty()) {
    write_json(json_path, results, ratio, smoke);
    std::printf("results written to %s\n", json_path.c_str());
  }

  // Hard gates: the acceptance ratio and the scenario-level checks above.
  // Full size enforces the tentpole's ≥ 10×; the smoke pair is too small
  // for the full gap (thread thrash grows superlinearly in n) so it only
  // gets a 3× sanity floor.
  const double need = smoke ? 3.0 : 10.0;
  if (ratio < need) {
    std::fprintf(stderr,
                 "E25 GATE FAILED: sharded executor only %.1fx over thread-per-actor "
                 "(need >= %.0fx)\n",
                 ratio, need);
    ok = false;
  }

  if (!baseline_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "e25: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    for (const auto& [key, base] : baseline) {
      // The thread-per-actor rows exist only as the ratio's denominator;
      // their wall clock swings ~3x run-to-run (scheduler thrash on 10⁴
      // threads), so only the sharded rows are floor-gated.
      if (key.find("/threads/") != std::string::npos) continue;
      for (const Result& r : results) {
        if (r.key() != key || base <= 0.0) continue;
        const double rel = r.actors_per_sec() / base;
        if (rel < 0.5) {
          std::fprintf(stderr,
                       "e25 REGRESSION: %s at %.0f actors/s vs baseline %.0f (%.2fx)\n",
                       key.c_str(), r.actors_per_sec(), base, rel);
          ok = false;
        }
      }
    }
    if (ok) {
      std::printf("perf gate: no metric regressed more than 2x vs %s\n",
                  baseline_path.c_str());
    }
  }

  return ok ? 0 : 1;
}
