// E15 — failure-detector quality of service (extension).
//
// The paper treats ◇P₁ axiomatically; any implementation is "correct" as
// soon as mistakes are finite. The Chen–Toueg–Aguilera QoS metrics are
// what distinguish implementations in practice: how fast crashes are
// detected (T_D), how often the oracle lies (mistakes, T_MR), how long a
// lie lasts (T_M), and how trustworthy a random query is (P_A).
//
// Sweeps the two real ◇P₁ modules over their tuning knobs on the same
// partially synchronous network (GST = 15000, spiky before) with a crash
// at t=40000, monitoring one fixed edge.
#include <cstdio>

#include "fd/qos.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

Config base(DetectorKind kind, std::uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = kind;
  cfg.partial_synchrony = true;
  cfg.delay = {.gst = 15'000, .pre_lo = 1, .pre_hi = 120,
               .spike_prob = 0.12, .spike_factor = 25,
               .post_lo = 1, .post_hi = 6};
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.crashes = {{3, 40'000}};  // monitored edge: 2 -> 3
  cfg.run_for = 120'000;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "E15 — ◇P₁ quality of service (Chen–Toueg–Aguilera metrics), edge p2->p3,\n"
      "GST=15000 with delay spikes before, p3 crashes at t=40000, run 120000.\n"
      "T_D detection time; T_M mistake duration; T_MR mistake recurrence;\n"
      "P_A query accuracy (pre-crash polls answered 'trusted').\n\n");

  util::Table t({"detector", "knob", "T_D", "mistakes", "T_M mean", "T_MR mean", "P_A",
                 "detector msgs"});

  for (sim::Time timeout : {25, 50, 100, 200}) {
    Config cfg = base(DetectorKind::kHeartbeat, 1500 + static_cast<std::uint64_t>(timeout));
    cfg.heartbeat = {.period = 20, .initial_timeout = timeout, .timeout_increment = 25};
    Scenario s(cfg);
    fd::QosMonitor mon(s.sim(), s.detector(), 2, 3, 5);
    s.run();
    auto r = mon.report();
    t.row()
        .cell("heartbeat")
        .cell("timeout=" + std::to_string(timeout))
        .cell(static_cast<std::int64_t>(r.detection_time))
        .cell(r.mistakes)
        .cell(r.mistake_duration.mean, 0)
        .cell(r.mistake_recurrence.mean, 0)
        .cell(r.query_accuracy, 4)
        .cell(s.sim().network().total_sent(sim::MsgLayer::kDetector));
  }

  for (double threshold : {2.0, 4.0, 8.0, 16.0}) {
    Config cfg = base(DetectorKind::kAccrual, 1650 + static_cast<std::uint64_t>(threshold));
    cfg.accrual = {.period = 20, .window = 64, .threshold = threshold};
    Scenario s(cfg);
    fd::QosMonitor mon(s.sim(), s.detector(), 2, 3, 5);
    s.run();
    auto r = mon.report();
    t.row()
        .cell("phi-accrual")
        .cell("phi>=" + std::to_string(static_cast<int>(threshold)))
        .cell(static_cast<std::int64_t>(r.detection_time))
        .cell(r.mistakes)
        .cell(r.mistake_duration.mean, 0)
        .cell(r.mistake_recurrence.mean, 0)
        .cell(r.query_accuracy, 4)
        .cell(s.sim().network().total_sent(sim::MsgLayer::kDetector));
  }

  for (sim::Time slack : {10, 25, 50, 100}) {
    Config cfg = base(DetectorKind::kPingPong, 1600 + static_cast<std::uint64_t>(slack));
    cfg.pingpong = {.period = 20, .initial_rtt = 15, .initial_slack = slack};
    Scenario s(cfg);
    fd::QosMonitor mon(s.sim(), s.detector(), 2, 3, 5);
    s.run();
    auto r = mon.report();
    t.row()
        .cell("ping-pong")
        .cell("slack=" + std::to_string(slack))
        .cell(static_cast<std::int64_t>(r.detection_time))
        .cell(r.mistakes)
        .cell(r.mistake_duration.mean, 0)
        .cell(r.mistake_recurrence.mean, 0)
        .cell(r.query_accuracy, 4)
        .cell(s.sim().network().total_sent(sim::MsgLayer::kDetector));
  }
  t.print();
  std::printf(
      "Reading: the classic QoS trade-offs. Within each detector, a more\n"
      "conservative knob trades detection speed (T_D up) for fewer/shorter lies\n"
      "(mistakes down, P_A up). Across detectors: the RTT-tracking ping-pong\n"
      "module is the most accurate (P_A ~0.93-0.96 vs heartbeat's ~0.73-0.80\n"
      "under these pre-GST spikes) at ~1.5x the traffic; the phi-accrual module\n"
      "detects the crash fastest (a steady post-GST rhythm makes silence scream\n"
      "within ~2 periods) with intermediate accuracy, at heartbeat-equal traffic.\n"
      "Every cell's mistakes are FINITE — the only thing ◇P₁ (and Algorithm 1)\n"
      "actually needs.\n");
  return 0;
}
