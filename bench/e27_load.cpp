// E27 — workload harness: open-loop load × graph churn × crash-recovery.
//
// PR-10's subsystem turns the daemon from a closed-loop experiment into a
// scheduling service: open-loop arrival streams offer sessions on their
// own clock, a churn planner mutates the conflict graph mid-run with
// incremental local recoloring, and crashed processes rejoin through the
// fork re-acquisition protocol. This bench runs the full grid on BOTH
// engines (virtual-time sim and the shard-per-core rt executor) and gates
// the claims that make the harness trustworthy:
//
//  * zero monitor disagreement on every cell — the online monitors and
//    post-hoc checkers see the same P1/P2/P3 story under load, churn and
//    rejoin alike;
//  * zero exclusion violations (perfect detector — any violation is an
//    algorithm bug, not detector noise);
//  * every recovery cell actually recovers: kRecovered observed, and the
//    rejoined process eats again after its rejoin;
//  * every churn cell issues its plan (issued + skipped == planned,
//    issued > 0) with only local repairs — no global recolor exists in
//    the code path;
//  * the overload cell is *detected* as overloaded (sim full runs; smoke
//    horizons are too short for a stable verdict and skip this gate);
//  * --check-against enforces the p99 regression floor: a cell's
//    hungry→eat p99 may not exceed max(2x, +100 ticks) of the recorded
//    baseline.
//
// Flags:
//   --smoke               CI-sized grid (shorter horizons, fewer rates)
//   --json PATH           machine-readable results (BENCH_e27.json in CI)
//   --check-against PATH  p99 floor against a recorded baseline
//   --telemetry PATH      write each cell's telemetry JSON line (artifact)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/load_scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::Time;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Cell {
  std::string engine;  // "sim" | "rt"
  double rate = 0.0;
  std::size_t churn = 0;
  std::size_t recoveries = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t backlog_hw = 0;
  bool overloaded = false;
  std::size_t churn_planned = 0;
  std::size_t churn_issued = 0;
  std::size_t churn_skipped = 0;
  std::uint64_t recovered = 0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  double wall_s = 0.0;
  [[nodiscard]] std::string key() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s/r%g/c%zu/x%zu", engine.c_str(), rate, churn,
                  recoveries);
    return buf;
  }
};

struct Shape {
  Time horizon;       // ticks
  std::size_t n;      // actors
  Time recover_span;  // crash at span, rejoin at 2*span
};

/// One grid cell: build the LoadConfig, run it, collect + gate.
Cell run_cell(scenario::Engine engine, const Shape& shape, double rate, std::size_t churn,
              bool with_recovery, bool gate_overload, bool& ok, std::ofstream* telemetry) {
  scenario::LoadConfig cfg;
  cfg.base.engine = engine;
  cfg.base.topology = "ring";
  cfg.base.n = shape.n;
  cfg.base.algorithm = scenario::Algorithm::kWaitFree;
  cfg.base.detector = scenario::DetectorKind::kPerfect;
  cfg.base.seed = 2027;
  cfg.base.run_for = shape.horizon;
  cfg.base.rt_tick_ns = 100'000;
  cfg.arrivals.rate_per_kilotick = rate;
  cfg.churn.mutations = churn;
  if (with_recovery) {
    cfg.recoveries.push_back({static_cast<sim::ProcessId>(shape.n / 2), shape.recover_span,
                              2 * shape.recover_span});
  }

  scenario::LoadScenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();

  Cell c;
  c.engine = engine == scenario::Engine::kSim ? "sim" : "rt";
  c.rate = rate;
  c.churn = churn;
  c.recoveries = cfg.recoveries.size();
  c.wall_s = seconds_since(t0);
  c.offered = s.book().offered();
  c.completed = s.book().completed();
  c.dropped = s.book().dropped();
  c.backlog_hw = s.overload().backlog_high_water();
  c.overloaded = s.overload().overloaded();
  c.churn_planned = s.churn_plan().ops.size();
  c.churn_issued = s.churn_issued();
  c.churn_skipped = s.churn_skipped();
  c.recovered = s.trace().count(dining::TraceEventKind::kRecovered);
  const obs::Histogram lat = s.latency();
  c.p50 = lat.quantile(0.50);
  c.p99 = lat.quantile(0.99);
  c.p999 = lat.quantile(0.999);

  if (telemetry != nullptr && telemetry->is_open()) {
    *telemetry << s.telemetry_json() << '\n';
  }

  // -- hard gates ----------------------------------------------------------
  const std::string agreement = s.monitor_agreement();
  if (!agreement.empty()) {
    std::fprintf(stderr, "E27 %s: MONITOR DISAGREEMENT\n%s\n", c.key().c_str(),
                 agreement.c_str());
    ok = false;
  }
  const auto ex = s.exclusion();
  if (!ex.violations.empty()) {
    std::fprintf(stderr, "E27 %s: %zu exclusion violations\n", c.key().c_str(),
                 ex.violations.size());
    ok = false;
  }
  if (c.completed == 0) {
    std::fprintf(stderr, "E27 %s: no completed sessions\n", c.key().c_str());
    ok = false;
  }
  if (with_recovery) {
    const auto victim = static_cast<sim::ProcessId>(shape.n / 2);
    if (c.recovered != cfg.recoveries.size()) {
      std::fprintf(stderr, "E27 %s: expected %zu recoveries, trace has %llu\n",
                   c.key().c_str(), cfg.recoveries.size(),
                   static_cast<unsigned long long>(c.recovered));
      ok = false;
    }
    bool ate_after_rejoin = false;
    for (const auto& e : s.trace().events()) {
      if (e.kind == dining::TraceEventKind::kStartEating && e.process == victim &&
          e.at > 2 * shape.recover_span) {
        ate_after_rejoin = true;
        break;
      }
    }
    if (!ate_after_rejoin) {
      std::fprintf(stderr, "E27 %s: rejoined p%d never ate again\n", c.key().c_str(),
                   static_cast<int>(victim));
      ok = false;
    }
  }
  if (churn > 0) {
    if (c.churn_issued + c.churn_skipped != c.churn_planned || c.churn_issued == 0) {
      std::fprintf(stderr, "E27 %s: churn plan %zu != issued %zu + skipped %zu\n",
                   c.key().c_str(), c.churn_planned, c.churn_issued, c.churn_skipped);
      ok = false;
    }
  }
  if (gate_overload && !c.overloaded) {
    std::fprintf(stderr, "E27 %s: offered %g/kt not detected as overload\n",
                 c.key().c_str(), rate);
    ok = false;
  }
  return c;
}

void write_json(const std::string& path, const std::vector<Cell>& cells, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e27_load\",\n  \"smoke\": " << (smoke ? "true" : "false")
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"key\": \"" << c.key() << "\", \"engine\": \"" << c.engine
        << "\", \"rate\": " << c.rate << ", \"churn\": " << c.churn
        << ", \"recoveries\": " << c.recoveries << ", \"offered\": " << c.offered
        << ", \"completed\": " << c.completed << ", \"dropped\": " << c.dropped
        << ", \"backlog_hw\": " << c.backlog_hw
        << ", \"overloaded\": " << (c.overloaded ? "true" : "false")
        << ", \"churn_issued\": " << c.churn_issued << ", \"recovered\": " << c.recovered
        << ", \"latency_p50\": " << c.p50 << ", \"latency_p99\": " << c.p99
        << ", \"latency_p999\": " << c.p999 << ", \"wall_s\": " << c.wall_s << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Scrape key + latency_p99 pairs from a prior e27 JSON.
bool load_baseline(const std::string& path,
                   std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto kpos = line.find("\"key\": \"");
    const auto vpos = line.find("\"latency_p99\": ");
    if (kpos == std::string::npos || vpos == std::string::npos) continue;
    const auto kstart = kpos + 8;
    const auto kend = line.find('"', kstart);
    if (kend == std::string::npos) continue;
    out.emplace_back(line.substr(kstart, kend - kstart),
                     std::strtod(line.c_str() + vpos + 15, nullptr));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--check-against PATH] "
                   "[--telemetry PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Engine-scaled shapes: sim ticks are free, rt ticks are 100 µs of wall
  // clock each (rt full = 4000 ticks = 0.4 s per cell).
  const Shape sim_shape{smoke ? 20'000 : 60'000, 10, smoke ? Time{4'000} : Time{12'000}};
  const Shape rt_shape{smoke ? Time{2'500} : Time{4'000}, 8,
                       smoke ? Time{600} : Time{1'000}};
  const std::vector<double> rates = smoke ? std::vector<double>{2.0, 32.0}
                                          : std::vector<double>{2.0, 8.0, 32.0};
  const std::size_t churn_full = smoke ? 24 : 60;
  const std::size_t churn_rt = smoke ? 12 : 20;

  std::printf("E27: open-loop load x churn x crash-recovery grid%s\n",
              smoke ? " (smoke)" : "");

  std::ofstream telemetry;
  if (!telemetry_path.empty()) telemetry.open(telemetry_path, std::ios::trunc);

  bool ok = true;
  std::vector<Cell> cells;
  for (const bool rt : {false, true}) {
    const scenario::Engine engine = rt ? scenario::Engine::kRt : scenario::Engine::kSim;
    const Shape& shape = rt ? rt_shape : sim_shape;
    const std::size_t churn_n = rt ? churn_rt : churn_full;
    for (const double rate : rates) {
      for (const std::size_t churn : {std::size_t{0}, churn_n}) {
        for (const bool recover : {false, true}) {
          // Overload verdict needs a long window: gate it on the full-size
          // sim cells at the top rate only.
          const bool gate_overload = !smoke && !rt && rate >= 32.0;
          cells.push_back(run_cell(engine, shape, rate, churn, recover, gate_overload, ok,
                                   &telemetry));
        }
      }
    }
  }

  util::Table t({"engine", "rate/kt", "churn", "rec", "offered", "done", "drop", "backlog",
                 "over", "p50", "p99", "p999", "wall_s"});
  for (const Cell& c : cells) {
    t.row()
        .cell(c.engine)
        .cell(c.rate, 1)
        .cell(static_cast<std::uint64_t>(c.churn_issued))
        .cell(c.recovered)
        .cell(c.offered)
        .cell(c.completed)
        .cell(c.dropped)
        .cell(c.backlog_hw)
        .cell(c.overloaded ? "yes" : "no")
        .cell(c.p50, 0)
        .cell(c.p99, 0)
        .cell(c.p999, 0)
        .cell(c.wall_s, 3);
  }
  t.print();

  if (!telemetry_path.empty()) {
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }
  if (!json_path.empty()) {
    write_json(json_path, cells, smoke);
    std::printf("results written to %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "e27: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    // p99 regression floor: a cell may not blow past max(2x, +100 ticks)
    // of its recorded baseline (the absolute slack absorbs noise on the
    // keep-up cells whose p99 sits near one eat duration).
    for (const auto& [key, base] : baseline) {
      for (const Cell& c : cells) {
        if (c.key() != key || base <= 0.0) continue;
        const double floor = std::max(2.0 * base, base + 100.0);
        if (c.p99 > floor) {
          std::fprintf(stderr, "e27 REGRESSION: %s p99 %.0f vs baseline %.0f (floor %.0f)\n",
                       key.c_str(), c.p99, base, floor);
          ok = false;
        }
      }
    }
    if (ok) {
      std::printf("p99 floor: no cell regressed vs %s\n", baseline_path.c_str());
    }
  }

  return ok ? 0 : 1;
}
