// E22 — real-threads runtime wall-clock characteristics.
//
// The rt engine (src/rt/) runs the same protocol code as the simulator on
// one OS thread per process. This bench records what that costs on real
// hardware:
//
//  * mailbox mode — raw MPSC mailbox throughput, lock-free ring vs the
//    mutex+condvar baseline: P producer threads blast messages at one
//    consumer thread. Reported as msgs/sec. This is the per-hop floor of
//    everything the rt engine does.
//
//  * e2e mode — a full crash-faulted lossy dining scenario on the rt
//    engine (ring of waitfree diners, heartbeat ◇P₁, live monitors),
//    for both mailbox kinds. Reported as recorded events/sec (transport
//    events + trace events per wall second) plus meals completed. The
//    online monitors double as a correctness canary: any disagreement
//    with the post-hoc checkers fails the bench.
//
// Wall-clock numbers are machine- and load-dependent, so unlike E21 this
// bench is NOT perf-gated in CI — the JSON is recorded as an artifact to
// make trends visible across runners (see EXPERIMENTS.md §E22).
//
// Flags:
//   --smoke       CI-sized run (smaller budgets, shorter horizons)
//   --json PATH   machine-readable results (BENCH_e22.json in CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/mailbox.hpp"
#include "scenario/rt_scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::ProcessId;
using sim::Time;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string mode;  // "mailbox" | "e2e"
  std::string kind;  // mailbox kind
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::uint64_t meals = 0;  // e2e only
  [[nodiscard]] std::uint64_t per_sec() const {
    return wall_s <= 0.0 ? 0 : static_cast<std::uint64_t>(static_cast<double>(events) / wall_s);
  }
  [[nodiscard]] std::string key() const { return mode + "/" + kind; }
};

Result run_mailbox(rt::MailboxKind kind, int producers, std::uint64_t per_producer) {
  auto mb = rt::make_mailbox(kind, 1024);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&mb, p, per_producer] {
      sim::Message m;
      m.from = static_cast<ProcessId>(p);
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        m.seq = i;
        while (!mb->try_push(m)) std::this_thread::yield();
      }
    });
  }
  const std::uint64_t total = static_cast<std::uint64_t>(producers) * per_producer;
  std::uint64_t popped = 0;
  sim::Message out;
  while (popped < total) {
    if (mb->try_pop(out)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) t.join();
  Result r;
  r.mode = "mailbox";
  r.kind = rt::to_string(kind);
  r.events = total;
  r.wall_s = seconds_since(t0);
  return r;
}

/// Full rt dining scenario; returns the result plus whether the online
/// monitors agreed with the post-hoc checkers (the canary).
Result run_e2e(rt::MailboxKind kind, Time horizon, bool& agreement_ok) {
  scenario::Config cfg;
  cfg.engine = scenario::Engine::kRt;
  cfg.seed = 2026;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.algorithm = scenario::Algorithm::kWaitFree;
  cfg.detector = scenario::DetectorKind::kHeartbeat;
  cfg.net_mode = scenario::NetMode::kLossy;
  cfg.observability = true;
  cfg.rt_mutex_mailbox = kind == rt::MailboxKind::kMutex;
  cfg.crashes = {{2, horizon / 3}, {5, horizon / 2}};
  cfg.run_for = horizon;

  scenario::RtScenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  Result r;
  r.mode = "e2e";
  r.kind = rt::to_string(kind);
  r.wall_s = seconds_since(t0);
  r.events = s.event_log()->size() + s.trace().size();
  r.meals = s.trace().count(dining::TraceEventKind::kStartEating);
  const std::string agreement = s.monitor_agreement();
  if (!agreement.empty()) {
    std::fprintf(stderr, "E22 e2e/%s: MONITOR DISAGREEMENT\n%s\n", r.kind.c_str(),
                 agreement.c_str());
    agreement_ok = false;
  }
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e22_rtruntime\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"key\": \"" << r.key() << "\", \"mode\": \"" << r.mode
        << "\", \"kind\": \"" << r.kind << "\", \"events\": " << r.events
        << ", \"wall_s\": " << r.wall_s << ", \"per_sec\": " << r.per_sec()
        << ", \"meals\": " << r.meals << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int producers = 4;
  const std::uint64_t per_producer = smoke ? 100'000 : 500'000;
  const Time horizon = smoke ? 2'000 : 20'000;  // ticks of 100 µs

  std::printf("E22: rt runtime wall-clock characteristics%s\n",
              smoke ? " (smoke)" : "");

  std::vector<Result> results;
  bool agreement_ok = true;
  for (const auto kind : {rt::MailboxKind::kLockFree, rt::MailboxKind::kMutex}) {
    results.push_back(run_mailbox(kind, producers, per_producer));
  }
  for (const auto kind : {rt::MailboxKind::kLockFree, rt::MailboxKind::kMutex}) {
    results.push_back(run_e2e(kind, horizon, agreement_ok));
  }

  util::Table t({"mode", "mailbox", "events", "wall_s", "per_sec", "meals"});
  for (const Result& r : results) {
    t.row()
        .cell(r.mode)
        .cell(r.kind)
        .cell(r.events)
        .cell(r.wall_s, 3)
        .cell(r.per_sec())
        .cell(r.meals);
  }
  t.print();

  if (!json_path.empty()) {
    write_json(json_path, results, smoke);
    std::printf("results written to %s\n", json_path.c_str());
  }
  if (!agreement_ok) {
    std::fprintf(stderr, "E22: online/post-hoc monitor disagreement (see above)\n");
    return 1;
  }
  return 0;
}
