// E8 — oracle-quality sensitivity.
//
// The paper's guarantees are "eventual": everything settles once ◇P₁
// stops lying. This experiment quantifies the coupling:
//
// Table 1 (heartbeat): sweep GST and the initial timeout; report detector
// mistakes, observed convergence, and the downstream effect on the dining
// layer (exclusion violations, when the last one happened).
//
// Table 2 (scripted): sweep the number of scripted false positives;
// violations scale with oracle mistakes, but always stop at convergence.
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

int main() {
  std::printf("E8 — sensitivity to oracle quality\n\n");

  std::printf("Table 1: heartbeat <>P1 on ring(8), one crash at t=40000; run 120000\n");
  util::Table t1({"GST", "initial timeout", "false suspicions", "last retraction",
                  "violations", "last violation", "violations after conv."});
  for (sim::Time gst : {2'000, 10'000, 30'000}) {
    for (sim::Time timeout : {25, 60, 150}) {
      Config cfg;
      cfg.seed = 800 + static_cast<std::uint64_t>(gst / 1000 + timeout);
      cfg.topology = "ring";
      cfg.n = 8;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kHeartbeat;
      cfg.partial_synchrony = true;
      cfg.delay = {.gst = gst, .pre_lo = 1, .pre_hi = 120,
                   .spike_prob = 0.12, .spike_factor = 25,
                   .post_lo = 1, .post_hi = 6};
      cfg.heartbeat = {.period = 20, .initial_timeout = timeout, .timeout_increment = 25};
      cfg.harness.think_lo = 5;
      cfg.harness.think_hi = 40;
      cfg.crashes = {{4, 40'000}};
      cfg.run_for = 120'000;
      Scenario s(cfg);
      s.run();
      auto ex = s.exclusion();
      const auto conv = s.fd_convergence_estimate();
      t1.row()
          .cell(static_cast<std::int64_t>(gst))
          .cell(static_cast<std::int64_t>(timeout))
          .cell(s.heartbeat_detector()->total_false_suspicions())
          .cell(static_cast<std::int64_t>(s.heartbeat_detector()->last_retraction()))
          .cell(static_cast<std::uint64_t>(ex.violations.size()))
          .cell(static_cast<std::int64_t>(ex.last_violation()))
          .cell(static_cast<std::uint64_t>(ex.violations_after(conv)));
    }
  }
  t1.print();
  std::printf(
      "Reading: mistakes grow with how long asynchrony lasts (GST) and shrink with\n"
      "a more conservative initial timeout — but in every cell the violations stop\n"
      "once the detector settles.\n\n");

  std::printf(
      "Table 1b: heartbeat (push, additive adaptation) vs ping-pong (pull,\n"
      "Jacobson RTT estimation + doubling slack) — same network, same GST sweep.\n");
  util::Table t1b({"GST", "detector", "false suspicions", "last retraction",
                   "violations", "violations after conv."});
  for (sim::Time gst : {2'000, 10'000, 30'000}) {
    for (DetectorKind kind : {DetectorKind::kHeartbeat, DetectorKind::kPingPong}) {
      Config cfg;
      cfg.seed = 850 + static_cast<std::uint64_t>(gst / 1000);
      cfg.topology = "ring";
      cfg.n = 8;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = kind;
      cfg.partial_synchrony = true;
      cfg.delay = {.gst = gst, .pre_lo = 1, .pre_hi = 120,
                   .spike_prob = 0.12, .spike_factor = 25,
                   .post_lo = 1, .post_hi = 6};
      cfg.heartbeat = {.period = 20, .initial_timeout = 30, .timeout_increment = 25};
      cfg.pingpong = {.period = 20, .initial_rtt = 15, .initial_slack = 15};
      cfg.harness.think_lo = 5;
      cfg.harness.think_hi = 40;
      cfg.crashes = {{4, 40'000}};
      cfg.run_for = 120'000;
      Scenario s(cfg);
      s.run();
      auto ex = s.exclusion();
      const auto conv = s.fd_convergence_estimate();
      const std::uint64_t mistakes = kind == DetectorKind::kHeartbeat
                                         ? s.heartbeat_detector()->total_false_suspicions()
                                         : s.pingpong_detector()->total_false_suspicions();
      const sim::Time retraction = kind == DetectorKind::kHeartbeat
                                       ? s.heartbeat_detector()->last_retraction()
                                       : s.pingpong_detector()->last_retraction();
      t1b.row()
          .cell(static_cast<std::int64_t>(gst))
          .cell(scenario::to_string(kind))
          .cell(mistakes)
          .cell(static_cast<std::int64_t>(retraction))
          .cell(static_cast<std::uint64_t>(ex.violations.size()))
          .cell(static_cast<std::uint64_t>(ex.violations_after(conv)));
    }
  }
  t1b.print();
  std::printf(
      "Reading: the RTT-tracking pull detector typically makes fewer mistakes on\n"
      "jittery links than the fixed-increment push detector, at the cost of 2x the\n"
      "monitoring traffic; both satisfy <>P1 (final column 0).\n\n");

  std::printf("Table 2: scripted oracle on ring(8), mistakes until t=15000; run 100000\n");
  util::Table t2({"scripted FPs", "violations", "last violation", "FD conv.",
                  "violations after conv.", "2-bound after conv."});
  for (std::size_t fps : {0u, 10u, 40u, 120u, 300u}) {
    Config cfg;
    cfg.seed = 900 + fps;
    cfg.topology = "ring";
    cfg.n = 8;
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.fp_count = fps;
    cfg.fp_until = 15'000;
    cfg.fp_len_lo = 100;
    cfg.fp_len_hi = 400;
    cfg.harness.think_lo = 5;
    cfg.harness.think_hi = 40;
    cfg.run_for = 100'000;
    Scenario s(cfg);
    s.run();
    auto ex = s.exclusion();
    const auto conv = s.fd_convergence_estimate();
    t2.row()
        .cell(static_cast<std::uint64_t>(fps))
        .cell(static_cast<std::uint64_t>(ex.violations.size()))
        .cell(static_cast<std::int64_t>(ex.last_violation()))
        .cell(static_cast<std::int64_t>(conv))
        .cell(static_cast<std::uint64_t>(ex.violations_after(conv)))
        .cell(dining::max_overtakes(s.census(), conv));
  }
  t2.print();
  std::printf(
      "Reading: scheduling mistakes scale with oracle mistakes (rows), but the\n"
      "post-convergence columns are flat: 0 violations, overtaking <= 2 — the\n"
      "paper's 'finitely many mistakes, then clean forever'.\n");
  return 0;
}
