// E18 — demand-driven monitoring (extension of the paper's quiescence
// discussion, §7).
//
// The paper proves the *dining layer* quiescent toward crashed processes,
// and notes ◇P itself must monitor forever — an always-on detector keeps
// the composite system chatty even when nobody is hungry. But suspicion is
// only ever consulted while hungry (Actions 5 and 9), so monitoring can be
// demand-driven: probe neighbors only during one's own hungry sessions.
//
// This experiment measures the composite system's traffic under varying
// hunger duty cycles, always-on vs on-demand ping-pong ◇P₁, and shows
// the end state the paper couldn't have: after hunger stops, the WHOLE
// stack — dining and detector — goes silent. The cost: detection latency
// moves into the hungry path (a crash is discovered during a session, not
// before it), slightly raising post-crash response times.
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

struct Load {
  const char* label;
  sim::Time think_lo;
  sim::Time think_hi;
};

}  // namespace

int main() {
  std::printf(
      "E18 — always-on vs on-demand <>P1 (ping-pong), ring(8), one crash at\n"
      "t=30000, run 100000, hunger stops at t=80000 (tail idle: 20000 ticks).\n\n");

  util::Table t({"hunger load", "mode", "detector msgs", "dining msgs", "wait-free",
                 "violations after conv.", "mean rt", "last detector msg"});
  const Load loads[] = {
      {"saturated (think 1-10)", 1, 10},
      {"moderate (think 50-300)", 50, 300},
      {"sparse (think 500-2000)", 500, 2'000},
  };
  for (const Load& load : loads) {
    for (bool on_demand : {false, true}) {
      Config cfg;
      cfg.seed = 1'800 + static_cast<std::uint64_t>(load.think_lo);
      cfg.topology = "ring";
      cfg.n = 8;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kPingPong;
      cfg.pingpong = {.period = 20, .initial_rtt = 15, .initial_slack = 20,
                      .on_demand = on_demand};
      cfg.partial_synchrony = false;  // isolate the duty-cycle effect
      cfg.harness.think_lo = load.think_lo;
      cfg.harness.think_hi = load.think_hi;
      cfg.crashes = {{3, 30'000}};
      cfg.run_for = 100'000;
      Scenario s(cfg);
      s.harness().stop_hunger_after(80'000);
      s.run();

      sim::Time last_fd_msg = -1;
      for (std::size_t p = 0; p < cfg.n; ++p) {
        last_fd_msg = std::max(last_fd_msg, s.sim().network().last_send_to(
                                                static_cast<int>(p),
                                                sim::MsgLayer::kDetector));
      }
      auto wf = s.wait_freedom(20'000);
      auto ex = s.exclusion();
      const auto conv = s.fd_convergence_estimate();
      t.row()
          .cell(load.label)
          .cell(on_demand ? "on-demand" : "always-on")
          .cell(s.sim().network().total_sent(sim::MsgLayer::kDetector))
          .cell(s.sim().network().total_sent(sim::MsgLayer::kDining))
          .cell(wf.wait_free())
          .cell(static_cast<std::uint64_t>(ex.violations_after(conv)))
          .cell(wf.response.mean, 0)
          .cell(static_cast<std::int64_t>(last_fd_msg));
    }
  }
  t.print();
  std::printf(
      "Reading: on-demand monitoring preserves every guarantee (wait-free, clean\n"
      "after convergence) while its traffic scales with the hunger duty cycle —\n"
      "near parity when saturated, a fraction when sparse — and the 'last\n"
      "detector msg' column shows the composite stack going fully quiescent\n"
      "after hunger stops (~80000), which an always-on <>P1 never does.\n");
  return 0;
}
