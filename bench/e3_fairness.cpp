// E3 — Theorem 3 (eventual 2-bounded waiting) and the fairness ablation.
//
// Table 1: worst-case consecutive overtaking vs run length under hunger
// saturation, for Algorithm 1 and every baseline. Expectation: Algorithm 1
// pinned at <= 2; the original doorway finite but > 2; hierarchical grows.
//
// Table 2: the "eventual" part — with an adversarial oracle lying until
// t=12000, the 2-bound is violated early but established after the oracle
// converges; reports the measured establishment time of the k-bound.
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

Config saturated(Algorithm algo, std::uint64_t seed, sim::Time horizon) {
  Config cfg;
  cfg.seed = seed;
  cfg.algorithm = algo;
  cfg.detector = algo == Algorithm::kWaitFree || algo == Algorithm::kChoySinghSingleAck
                     ? DetectorKind::kScripted
                     : DetectorKind::kNever;
  cfg.partial_synchrony = false;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 8;
  cfg.harness.eat_lo = 40;
  cfg.harness.eat_hi = 100;
  cfg.run_for = horizon;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "E3 — eventual 2-bounded waiting (Theorem 3)\n"
      "Saturated ring(8): everyone re-hungers within 1-8 ticks; meals 40-100 ticks.\n\n");

  std::printf("Table 1: max consecutive overtakes (whole run) vs run length\n");
  util::Table t1({"run length", "Alg.1", "CS+1ack (ablation)", "Choy-Singh", "Chandy-Misra",
                  "hierarchical"});
  for (sim::Time horizon : {30'000, 60'000, 120'000, 240'000, 480'000}) {
    auto overtakes = [&](Algorithm a) {
      Scenario s(saturated(a, 42, horizon));
      s.run();
      return dining::max_overtakes(s.census(), 0);
    };
    t1.row()
        .cell(static_cast<std::int64_t>(horizon))
        .cell(overtakes(Algorithm::kWaitFree))
        .cell(overtakes(Algorithm::kChoySinghSingleAck))
        .cell(overtakes(Algorithm::kChoySingh))
        .cell(overtakes(Algorithm::kChandyMisra))
        .cell(overtakes(Algorithm::kHierarchical));
  }
  t1.print();

  std::printf(
      "Table 2: the 'eventually' in <>2-BW — adversarial oracle until t=12000\n"
      "(mutual false suspicions let neighbors jump the doorway early on).\n");
  util::Table t2({"seed", "max overtakes (whole run)", "max overtakes after FD conv.",
                  "2-bound established at t", "FD converged t"});
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    Config cfg = saturated(Algorithm::kWaitFree, seed, 150'000);
    cfg.fp_count = 50;
    cfg.fp_until = 12'000;
    cfg.fp_len_lo = 100;
    cfg.fp_len_hi = 500;
    Scenario s(cfg);
    s.run();
    auto census = s.census();
    t2.row()
        .cell(seed)
        .cell(dining::max_overtakes(census, 0))
        .cell(dining::max_overtakes(census, s.fd_convergence_estimate()))
        .cell(static_cast<std::int64_t>(dining::k_bound_establishment(census, 2)))
        .cell(static_cast<std::int64_t>(s.fd_convergence_estimate()));
  }
  t2.print();
  std::printf(
      "Expectation: column 3 is always <= 2, and the measured establishment time\n"
      "(col 4) never exceeds the detector convergence time (col 5) by much.\n");
  return 0;
}
