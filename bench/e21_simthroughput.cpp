// E21 — simulator hot-path throughput (perf trajectory baseline).
//
// Every experiment, fuzz sweep and model-checking run in this repository
// executes through sim::Simulator; this bench pins down the substrate's
// raw speed so later PRs can prove (or disprove) that they made it faster:
//
//  * timed mode — a self-sustaining ping/ack echo storm on the dining
//    layer over ring/grid/clique topologies at several sizes. Every
//    delivery triggers exactly one reply, so the in-flight population is
//    constant and the measured quantity is pure per-event cost
//    (envelope construction, FIFO stamping, queue push/pop, dispatch).
//    Reported as events/sec.
//
//  * controlled mode — the model-checking driver loop: enumerate
//    `eligible_events()`, pick one, `execute_event()`. This is exactly
//    the inner loop mc::Explorer multiplies across millions of states;
//    its cost is dominated by per-channel FIFO eligibility. Reported as
//    states/sec (one executed event = one state transition).
//
// Flags:
//   --smoke               CI-sized run (smaller n, shorter horizons)
//   --json PATH           machine-readable results (BENCH_e21.json in CI)
//   --check-against PATH  compare against a previously recorded JSON and
//                         exit non-zero if any matching metric regressed
//                         by more than 15% (perf gate; activates once a
//                         baseline is checked in — see docs/PERF.md)
//   --telemetry PATH      run one extra SMALL instrumented echo storm and
//                         write its metrics-registry snapshot as JSONL
//   --perfetto PATH       same extra run, exported as Chrome trace-event
//                         JSON (open at https://ui.perfetto.dev)
//
// The telemetry/perfetto run is separate from — and never counted in —
// the timed results above, so the perf gate always measures the
// uninstrumented hot path (registry pointers null, zero-cost discipline).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/messages.hpp"
#include "graph/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/telemetry.hpp"
#include "sim/delay_model.hpp"
#include "sim/event_log.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace ekbd;
using sim::MsgLayer;
using sim::ProcessId;
using sim::Time;

namespace {

/// Replies to every Ping with an Ack and every Ack with a Ping: one send
/// per delivery, forever — constant channel population, pure hot path.
class Echo final : public sim::Actor {
 public:
  explicit Echo(std::vector<ProcessId> neighbors) : neighbors_(std::move(neighbors)) {}

  void on_start() override {
    for (ProcessId n : neighbors_) send(n, core::Ping{}, MsgLayer::kDining);
  }

  void on_message(const sim::Message& m) override {
    if (m.as<core::Ping>() != nullptr) {
      send(m.from, core::Ack{}, MsgLayer::kDining);
    } else if (m.as<core::Ack>() != nullptr) {
      send(m.from, core::Ping{}, MsgLayer::kDining);
    }
  }

 private:
  std::vector<ProcessId> neighbors_;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Result {
  std::string mode;      // "timed" | "controlled"
  std::string topology;
  std::size_t n = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  [[nodiscard]] std::uint64_t per_sec() const {
    return wall_s <= 0.0 ? 0 : static_cast<std::uint64_t>(static_cast<double>(events) / wall_s);
  }
  [[nodiscard]] std::string key() const {
    return mode + "/" + topology + "/" + std::to_string(n);
  }
};

// Runs until ~`budget` events have been processed (advancing simulated
// time in chunks), so every topology/size pays for the same amount of
// work regardless of how event-dense it is per simulated tick.
Result run_timed(const std::string& topo_name, const graph::ConflictGraph& g,
                 std::uint64_t budget) {
  sim::Simulator sim(/*seed=*/2026, sim::make_uniform_delay(1, 10));
  for (std::size_t p = 0; p < g.size(); ++p) {
    sim.make_actor<Echo>(g.neighbors(static_cast<ProcessId>(p)));
  }
  sim.start();
  const auto t0 = std::chrono::steady_clock::now();
  while (sim.events_processed() < budget) sim.run_until(sim.now() + 50);
  Result r;
  r.mode = "timed";
  r.topology = topo_name;
  r.n = g.size();
  r.events = sim.events_processed();
  r.wall_s = seconds_since(t0);
  return r;
}

Result run_controlled(const std::string& topo_name, const graph::ConflictGraph& g,
                      std::uint64_t steps) {
  sim::Simulator sim(/*seed=*/7, nullptr, sim::ExecMode::kControlled);
  for (std::size_t p = 0; p < g.size(); ++p) {
    sim.make_actor<Echo>(g.neighbors(static_cast<ProcessId>(p)));
  }
  sim.start();
  sim::Rng pick(99);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  for (; done < steps; ++done) {
    const auto evs = sim.eligible_events();
    if (evs.empty()) break;
    sim.execute_event(evs[pick.index(evs.size())].id);
  }
  Result r;
  r.mode = "controlled";
  r.topology = topo_name;
  r.n = g.size();
  r.events = done;
  r.wall_s = seconds_since(t0);
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results, bool smoke) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e21_simthroughput\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out << "    {\"key\": \"" << r.key() << "\", \"mode\": \"" << r.mode
        << "\", \"topology\": \"" << r.topology << "\", \"n\": " << r.n
        << ", \"events\": " << r.events << ", \"wall_s\": " << r.wall_s
        << ", \"per_sec\": " << r.per_sec() << "}" << (i + 1 < results.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
}

/// Minimal scrape of a prior e21 JSON: "key": "...", ... "per_sec": N.
bool load_baseline(const std::string& path, std::vector<std::pair<std::string, double>>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto kpos = line.find("\"key\": \"");
    const auto vpos = line.find("\"per_sec\": ");
    if (kpos == std::string::npos || vpos == std::string::npos) continue;
    const auto kstart = kpos + 8;
    const auto kend = line.find('"', kstart);
    if (kend == std::string::npos) continue;
    out.emplace_back(line.substr(kstart, kend - kstart),
                     std::strtod(line.c_str() + vpos + 11, nullptr));
  }
  return true;
}

// One deliberately small fully-instrumented run: the same echo storm with
// the metrics registry attached and an EventLog recording every envelope.
// Feeds --telemetry (registry snapshot as one JSONL line) and --perfetto
// (the log rendered as Chrome trace-event JSON). Kept out of `results` so
// instrumentation cost can never leak into the perf gate.
int run_instrumented(const std::string& telemetry_path, const std::string& perfetto_path) {
  const auto g = graph::ring(8);
  sim::Simulator sim(/*seed=*/2026, sim::make_uniform_delay(1, 10));
  sim::EventLog log(/*cap=*/20'000);
  sim.set_event_log(&log);
  obs::MetricsRegistry reg;
  obs::attach_simulator_metrics(sim, reg);
  for (std::size_t p = 0; p < g.size(); ++p) {
    sim.make_actor<Echo>(g.neighbors(static_cast<ProcessId>(p)));
  }
  sim.start();
  while (sim.events_processed() < 5'000) sim.run_until(sim.now() + 50);
  obs::collect_network_metrics(sim.network(), reg);
  obs::collect_event_log_metrics(log, reg);

  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "e21: cannot write %s\n", telemetry_path.c_str());
      return 2;
    }
    out << "{\"experiment\":\"e21_simthroughput\",\"mode\":\"instrumented\",\"metrics\":"
        << reg.to_json() << "}\n";
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }
  if (!perfetto_path.empty()) {
    std::ofstream out(perfetto_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "e21: cannot write %s\n", perfetto_path.c_str());
      return 2;
    }
    out << obs::chrome_trace_json(&log, nullptr);
    std::printf("perfetto trace written to %s (open at https://ui.perfetto.dev)\n",
                perfetto_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string baseline_path;
  std::string telemetry_path;
  std::string perfetto_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
      telemetry_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--check-against PATH]\n"
                   "          [--telemetry PATH] [--perfetto PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("E21 — simulator hot-path throughput%s\n\n", smoke ? " (smoke)" : "");

  std::vector<Result> results;

  // -- timed mode: events/sec over topology x size ------------------------
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16, 64} : std::vector<std::size_t>{16, 64, 256};
  const std::uint64_t budget = smoke ? 300'000 : 2'000'000;
  for (std::size_t n : sizes) {
    results.push_back(run_timed("ring", graph::ring(n), budget));
    std::size_t side = 4;
    while (side * side < n) ++side;
    results.push_back(run_timed("grid", graph::grid(side, side), budget));
    results.push_back(run_timed("clique", graph::clique(n), budget));
  }

  // -- controlled mode: states/sec in the mc driver loop ------------------
  // Sized so the pending-event population (one message per directed edge)
  // matches what Explorer actually sweeps: eligibility cost dominates.
  const std::uint64_t steps = smoke ? 8'000 : 30'000;
  results.push_back(run_controlled("ring", graph::ring(32), steps));
  results.push_back(run_controlled("clique", graph::clique(16), steps));

  util::Table table({"mode", "topology", "n", "events", "wall s", "per sec"});
  for (const Result& r : results) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", r.wall_s);
    table.row()
        .cell(r.mode)
        .cell(r.topology)
        .cell(static_cast<std::uint64_t>(r.n))
        .cell(r.events)
        .cell(wall)
        .cell(r.per_sec());
  }
  table.print();

  if (!json_path.empty()) {
    write_json(json_path, results, smoke);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::vector<std::pair<std::string, double>> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "e21: cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    int regressions = 0;
    for (const auto& [key, base] : baseline) {
      for (const Result& r : results) {
        if (r.key() != key || base <= 0.0) continue;
        const double ratio = static_cast<double>(r.per_sec()) / base;
        if (ratio < 0.85) {
          std::fprintf(stderr, "e21 REGRESSION: %s at %.0f/s vs baseline %.0f/s (%.2fx)\n",
                       key.c_str(), static_cast<double>(r.per_sec()), base, ratio);
          ++regressions;
        }
      }
    }
    if (regressions > 0) return 1;
    std::printf("perf gate: no metric regressed more than 15%% vs %s\n",
                baseline_path.c_str());
  }

  if (!telemetry_path.empty() || !perfetto_path.empty()) {
    std::printf("\n");
    const int rc = run_instrumented(telemetry_path, perfetto_path);
    if (rc != 0) return rc;
  }
  return 0;
}
