// E9 — scalability of the reproduction: message and latency cost of
// Algorithm 1 as the system grows, per topology.
//
// The paper claims practicality ("can scale to larger networks" since ◇P₁
// is local): per-meal message cost should be Θ(δ), independent of n for
// bounded-degree graphs, and response times should track local contention
// (δ), not system size.
#include <chrono>
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

int main() {
  std::printf(
      "E9 — scalability: cost per meal vs n (Algorithm 1, scripted <>P1)\n"
      "Expectation: msgs/meal ~= c*delta (flat in n for ring/grid; linear in n\n"
      "for clique); mean response time tracks delta, not n.\n\n");

  util::Table t({"topology", "n", "delta", "meals", "msgs/meal", "mean rt", "p95 rt",
                 "sim events", "wall ms"});
  std::uint64_t seed = 900;
  for (const char* topo : {"ring", "grid", "clique", "random"}) {
    for (std::size_t n : {8, 16, 32, 64, 128}) {
      if (std::string(topo) == "clique" && n > 64) continue;  // quadratic edges
      Config cfg;
      cfg.seed = ++seed;
      cfg.topology = topo;
      cfg.n = n;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;
      cfg.partial_synchrony = false;
      cfg.harness.think_lo = 10;
      cfg.harness.think_hi = 60;
      cfg.run_for = 40'000;

      const auto wall0 = std::chrono::steady_clock::now();
      Scenario s(cfg);
      s.run();
      const auto wall1 = std::chrono::steady_clock::now();

      const auto meals = s.trace().count(dining::TraceEventKind::kStartEating);
      const auto msgs = s.sim().network().total_sent(sim::MsgLayer::kDining);
      auto wf = s.wait_freedom(10'000);
      t.row()
          .cell(topo)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(s.graph().max_degree()))
          .cell(static_cast<std::uint64_t>(meals))
          .cell(meals ? static_cast<double>(msgs) / static_cast<double>(meals) : 0.0, 1)
          .cell(wf.response.mean, 0)
          .cell(wf.response.p95, 0)
          .cell(s.sim().events_processed())
          .cell(static_cast<std::int64_t>(
              std::chrono::duration_cast<std::chrono::milliseconds>(wall1 - wall0).count()));
    }
  }
  t.print();

  std::printf(
      "Concurrency: a daemon is only 'distributed' if non-conflicting processes\n"
      "eat simultaneously. Expectation: mean concurrent eaters grows ~linearly\n"
      "with n on the ring (independent neighborhoods), stays ~1 on the clique\n"
      "(everything conflicts), with zero live-neighbor overlaps throughout.\n\n");
  util::Table c({"topology", "n", "max concurrent eaters", "mean concurrent eaters",
                 "non-neighbor overlaps", "neighbor violations"});
  for (const char* topo : {"ring", "clique", "star"}) {
    for (std::size_t n : {8, 32, 128}) {
      if (std::string(topo) == "clique" && n > 64) continue;
      Config cfg;
      cfg.seed = ++seed;
      cfg.topology = topo;
      cfg.n = n;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;
      cfg.partial_synchrony = false;
      cfg.harness.think_lo = 5;
      cfg.harness.think_hi = 30;
      cfg.run_for = 40'000;
      Scenario s(cfg);
      s.run();
      auto cp = dining::concurrency_profile(s.trace(), s.graph());
      auto ex = s.exclusion();
      c.row()
          .cell(topo)
          .cell(static_cast<std::uint64_t>(n))
          .cell(cp.max_concurrent_eaters)
          .cell(cp.mean_concurrent_eaters, 2)
          .cell(cp.nonneighbor_overlaps)
          .cell(static_cast<std::uint64_t>(ex.violations.size()));
    }
  }
  c.print();
  return 0;
}
