// E4 — §7 channel capacity: at most four dining messages in transit
// between any pair of neighbors, ever.
//
// Measures the all-run high-water mark of per-pair in-transit dining
// messages under chaos (oracle mistakes, crashes, saturation), across
// topologies and sizes, plus overall message volumes. The fork and token
// are unique per edge (<= 1 each in flight) and ping/ack alternate
// (<= 1 outstanding per direction): the bound is 4.
#include <cstdio>

#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

int main() {
  std::printf(
      "E4 — bounded channel capacity (paper §7)\n"
      "Expectation: 'max in transit' <= 4 on every row, regardless of topology,\n"
      "contention, oracle mistakes or crashes. Messages carry O(log n) bits\n"
      "(a color in fork requests; ids are in the envelope).\n\n");

  util::Table t({"topology", "n", "meals", "dining msgs", "msgs/meal",
                 "max in transit (pair)", "bound holds"});
  std::uint64_t seed = 400;
  for (const char* topo : {"ring", "path", "clique", "star", "grid", "tree", "random",
                           "hypercube", "torus", "bipartite"}) {
    for (std::size_t n : {8, 16, 32}) {
      Config cfg;
      cfg.seed = ++seed;
      cfg.topology = topo;
      cfg.n = n;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = DetectorKind::kScripted;
      cfg.partial_synchrony = false;
      cfg.detection_delay = 120;
      cfg.fp_count = 4 * n;
      cfg.fp_until = 12'000;
      cfg.harness.think_lo = 1;
      cfg.harness.think_hi = 20;  // saturation stresses the channels most
      cfg.crashes = {{static_cast<sim::ProcessId>(n / 3), 20'000}};
      cfg.run_for = 60'000;
      Scenario s(cfg);
      s.run();
      const auto meals = s.trace().count(dining::TraceEventKind::kStartEating);
      const auto msgs = s.sim().network().total_sent(sim::MsgLayer::kDining);
      const int peak = s.sim().network().max_in_transit_any(sim::MsgLayer::kDining);
      t.row()
          .cell(topo)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(meals))
          .cell(msgs)
          .cell(meals ? static_cast<double>(msgs) / static_cast<double>(meals) : 0.0, 1)
          .cell(peak)
          .cell(peak <= 4);
    }
  }
  t.print();
  return 0;
}
