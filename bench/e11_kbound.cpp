// E11 — the "k" in the paper's title, made real (extension/ablation).
//
// The paper's Algorithm 1 grants one ack per neighbor per hungry session
// and proves eventual 2-bounded waiting (Theorem 3: one granted entry plus
// at most one stale in-flight ack). Generalizing the budget to m acks per
// session predicts eventual (m+1)-bounded waiting, the cost being a wider
// `replied` counter (log2(m+1) bits per neighbor instead of 1).
//
// This bench sweeps m under hunger saturation and reports the measured
// worst-case overtaking (whole run and post-oracle-convergence) and the
// measured per-process state bits — k = m+1 should appear as the
// post-convergence column, and latency should drop slightly with larger m
// (fewer doorway stalls).
#include <cstdio>

#include "dining/checkers.hpp"
#include "fd/scripted.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

/// Worst-case construction (the proof scenario of Theorem 3): path
/// a(0)-b(1)-c(2); c eats forever, pinning b outside the doorway with a
/// deferred ping; a cycles as fast as it can. Each meal of a consumes one
/// fresh ack from the continuously hungry b, so a's meal count during b's
/// single unbounded session is exactly the ack budget m.
int adversarial_overtakes(int budget) {
  sim::Simulator simulator(1, sim::make_fixed_delay(1));
  fd::ScriptedDetector det(simulator, 0);
  core::WaitFreeDiner::Options opt{.acks_per_session = budget};
  auto* a = simulator.make_actor<core::WaitFreeDiner>(
      std::vector<sim::ProcessId>{1}, 0, std::vector<int>{2}, det, opt);
  auto* b = simulator.make_actor<core::WaitFreeDiner>(
      std::vector<sim::ProcessId>{0, 2}, 2, std::vector<int>{0, 1}, det, opt);
  auto* c = simulator.make_actor<core::WaitFreeDiner>(
      std::vector<sim::ProcessId>{1}, 1, std::vector<int>{2}, det, opt);
  simulator.start();
  c->become_hungry();
  simulator.run_until(6);  // c eats (and never finishes)
  b->become_hungry();
  simulator.run_until(12);  // b pinned outside: c defers its ping
  int meals_of_a = 0;
  for (int i = 0; i < budget + 4; ++i) {
    a->become_hungry();
    simulator.run_until(simulator.now() + 10);
    if (!a->eating()) break;
    ++meals_of_a;
    a->finish_eating();
    simulator.run_until(simulator.now() + 4);
  }
  return meals_of_a;
}

}  // namespace

int main() {
  std::printf(
      "E11 — generalized ack budget: eventual (m+1)-bounded waiting\n\n"
      "Table 1: worst-case construction (c eats forever, b pinned hungry,\n"
      "a cycles): a's meals during b's one unbounded hungry session == m.\n");
  util::Table adv({"ack budget m", "meals past the pinned waiter", "then blocked"});
  for (int m : {1, 2, 3, 5, 8}) {
    const int meals = adversarial_overtakes(m);
    adv.row().cell(m).cell(meals).cell(meals == m);
  }
  adv.print();

  std::printf(
      "Table 2: saturated ring(8), adversarial oracle until t=10000, run 150000.\n"
      "Here natural session lengths cap the observable overtaking at ~3, so the\n"
      "expectation is 'max overtakes after conv.' <= m+1, == 2 exactly for m=1.\n");

  util::Table t({"ack budget m", "predicted k=m+1", "max overtakes (run)",
                 "max overtakes after conv.", "2-bound holds", "state bits/process",
                 "mean rt", "meals"});
  for (int m : {1, 2, 3, 5, 8}) {
    Config cfg;
    cfg.seed = 1100 + static_cast<std::uint64_t>(m);
    cfg.topology = "ring";
    cfg.n = 8;
    cfg.algorithm = Algorithm::kWaitFree;
    cfg.acks_per_session = m;
    cfg.detector = DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.fp_count = 30;
    cfg.fp_until = 10'000;
    cfg.harness.think_lo = 1;
    cfg.harness.think_hi = 8;
    cfg.harness.eat_lo = 40;
    cfg.harness.eat_hi = 100;
    cfg.run_for = 150'000;
    Scenario s(cfg);
    s.run();
    auto census = s.census();
    const auto conv = s.fd_convergence_estimate();
    const int post = dining::max_overtakes(census, conv);
    auto wf = s.wait_freedom(20'000);
    t.row()
        .cell(m)
        .cell(m + 1)
        .cell(dining::max_overtakes(census, 0))
        .cell(post)
        .cell(post <= 2)
        .cell(static_cast<std::uint64_t>(s.diner(0)->state_bits()))
        .cell(wf.response.mean, 0)
        .cell(static_cast<std::uint64_t>(
            s.trace().count(dining::TraceEventKind::kStartEating)));
  }
  t.print();
  std::printf(
      "Reading: the doorway's fairness knob works as predicted — k tracks m+1 —\n"
      "and buying back latency with a larger budget costs exactly fairness.\n");
  return 0;
}
