// E13 — model checking Algorithm 1 (extension).
//
// Exhaustive schedule enumeration over small worlds in controlled mode:
// every legal message/timer/crash interleaving (per-channel FIFO is the
// only ordering law in the asynchronous model) is executed and the safety
// invariants checked at every step. This is evidence of a different kind
// than E1–E12's sampled runs: for these configurations the properties
// hold on EVERY schedule, not just the sampled ones.
//
// The second table exercises the parallel engine (docs/MODELCHECK.md): the
// same 3-diner world explored at 1/2/4/8 threads with and without
// sleep-set reduction, reporting nodes/sec and checking that every cell of
// a reduction setting reproduces the threads=1 state counts and verdict
// bit-for-bit ("parity"). Speedup tracks physical cores; state counts must
// never depend on the thread count.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/wait_free_diner.hpp"
#include "fd/scripted.hpp"
#include "mc/explorer.hpp"
#include "util/table.hpp"

using namespace ekbd;
using ekbd::core::WaitFreeDiner;
using ekbd::sim::ExecMode;
using ekbd::sim::ProcessId;

namespace {

/// Path of n diners (n = 2 or 3), all hungry from the start; meal endings
/// and the optional crash are adversarial choice events.
class PathWorld : public mc::World {
 public:
  PathWorld(int n, bool crash_first, long mutual_fp_ticks)
      : sim_(1, sim::make_fixed_delay(1), ExecMode::kControlled), det_(sim_, 0) {
    if (mutual_fp_ticks > 0) {
      det_.add_mutual_false_positive(0, 1, 0, mutual_fp_ticks);
      allow_violation_ = true;
    }
    for (int i = 0; i < n; ++i) {
      std::vector<ProcessId> neighbors;
      std::vector<int> ncolors;
      if (i > 0) {
        neighbors.push_back(i - 1);
        ncolors.push_back(color(i - 1));
      }
      if (i + 1 < n) {
        neighbors.push_back(i + 1);
        ncolors.push_back(color(i + 1));
      }
      diners_.push_back(
          sim_.make_actor<WaitFreeDiner>(std::move(neighbors), color(i), std::move(ncolors),
                                         det_));
      meals_.push_back(0);
    }
    for (std::size_t i = 0; i < diners_.size(); ++i) {
      WaitFreeDiner* d = diners_[i];
      d->set_event_callback(
          [this, i, d](dining::Diner&, dining::TraceEventKind kind) {
            if (kind == dining::TraceEventKind::kStartEating) {
              ++meals_[i];
              sim_.schedule(sim_.now(), [d] {
                if (d->eating()) d->finish_eating();
              });
            }
          });
    }
    sim_.start();
    if (crash_first) {
      sim_.schedule(0, [this] { sim_.crash(0); });
      crash_first_ = true;
    }
    for (auto* d : diners_) d->become_hungry();
  }

  sim::Simulator& simulator() override { return sim_; }

  std::string check() override {
    for (std::size_t i = 0; i + 1 < diners_.size(); ++i) {
      auto a = static_cast<ProcessId>(i);
      auto b = static_cast<ProcessId>(i + 1);
      if (diners_[i]->holds_fork(b) && diners_[i + 1]->holds_fork(a)) return "fork duplicated";
      if (diners_[i]->holds_token(b) && diners_[i + 1]->holds_token(a)) {
        return "token duplicated";
      }
      if (!allow_violation_ && diners_[i]->eating() && diners_[i + 1]->eating() &&
          !sim_.crashed(a) && !sim_.crashed(b)) {
        return "live neighbors eating simultaneously";
      }
    }
    for (auto* d : diners_) {
      if (d->lemma11_violations() > 0) return "Lemma 1.1 violated";
    }
    return "";
  }

  bool done() override {
    for (std::size_t i = 0; i < diners_.size(); ++i) {
      if (crash_first_ && i == 0) continue;
      if (meals_[i] < 1 || !diners_[i]->thinking()) return false;
    }
    return true;
  }

 private:
  static int color(int i) { return i % 2 == 0 ? 0 : 1; }  // proper 2-coloring of a path

  sim::Simulator sim_;
  fd::ScriptedDetector det_;
  std::vector<WaitFreeDiner*> diners_;
  std::vector<int> meals_;
  bool allow_violation_ = false;
  bool crash_first_ = false;
};

}  // namespace

int main() {
  std::printf(
      "E13 — exhaustive schedule exploration of Algorithm 1 (controlled mode)\n"
      "Invariants checked after every event of every schedule: fork/token\n"
      "uniqueness (Lemmas 1.1/1.2), no live-neighbor co-eating with a truthful\n"
      "oracle, and no deadlock (every maximal schedule feeds every correct\n"
      "process). 'random walks' rows sample schedules instead of enumerating.\n\n");

  util::Table t({"world", "mode", "events executed", "schedules done", "truncated",
                 "max depth", "violation"});

  struct Row {
    const char* label;
    int n;
    bool crash;
    long fp;
    mc::Options opt;
  };
  mc::Options exhaustive;
  exhaustive.include_timers = false;
  exhaustive.max_depth = 70;
  exhaustive.max_nodes = 30'000'000;

  mc::Options crash_opt;
  crash_opt.include_timers = true;
  crash_opt.max_depth = 24;
  crash_opt.max_nodes = 5'000'000;  // bounded slice of an infinite space
                                    // (the pump timer re-arms forever)

  mc::Options walks;
  walks.include_timers = true;
  walks.max_depth = 120;
  walks.random_walks = 20'000;

  Row rows[] = {
      {"edge (2 diners)", 2, false, 0, exhaustive},
      {"path (3 diners)", 3, false, 0, exhaustive},
      {"edge + adversarial crash of fork holder", 2, true, 0, crash_opt},
      {"edge + mutual false positive (6 ticks)", 2, false, 6, walks},
      {"path (3) random walks", 3, false, 0, walks},
  };

  for (const Row& row : rows) {
    auto result = mc::explore(
        [&row] { return std::make_unique<PathWorld>(row.n, row.crash, row.fp); }, row.opt);
    t.row()
        .cell(row.label)
        .cell(row.opt.random_walks > 0 ? "random walks" : "exhaustive DFS")
        .cell(result.nodes_executed)
        .cell(result.paths_completed)
        .cell(result.paths_truncated)
        .cell(static_cast<std::uint64_t>(result.max_depth_seen))
        .cell(result.ok() ? std::string("none") : result.violation);
  }
  t.print();
  std::printf("Expectation: 'violation' is none on every row.\n\n");

  // ---- parallel engine grid: threads × sleep-set reduction --------------
  std::printf(
      "Parallel exploration grid — path (3 diners), exhaustive, crash-free\n"
      "(truthful oracle: handlers are tick-insensitive, so sleep sets are\n"
      "sound here; see docs/MODELCHECK.md). 'parity' compares nodes,\n"
      "schedules and verdict against the threads=1 run of the same\n"
      "reduction setting — it must be 'ok' in every cell.\n\n");

  util::Table grid({"threads", "sleep sets", "nodes", "replayed", "nodes/sec",
                    "schedules done", "pruned", "violation", "parity"});
  bool all_parity_ok = true;
  for (const bool reduce : {false, true}) {
    mc::Result baseline;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      mc::Options opt = exhaustive;
      opt.threads = threads;
      opt.sleep_sets = reduce;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = mc::explore(
          [] { return std::make_unique<PathWorld>(3, false, 0); }, opt);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (threads == 1) baseline = r;
      const bool parity = r.nodes_executed == baseline.nodes_executed &&
                          r.replayed_events == baseline.replayed_events &&
                          r.paths_completed == baseline.paths_completed &&
                          r.sleep_pruned == baseline.sleep_pruned &&
                          r.violation == baseline.violation;
      all_parity_ok = all_parity_ok && parity;
      grid.row()
          .cell(static_cast<std::uint64_t>(threads))
          .cell(reduce ? "on" : "off")
          .cell(r.nodes_executed)
          .cell(r.replayed_events)
          .cell(static_cast<std::uint64_t>(
              secs > 0 ? static_cast<double>(r.nodes_executed) / secs : 0))
          .cell(r.paths_completed)
          .cell(r.sleep_pruned)
          .cell(r.ok() ? std::string("none") : r.violation)
          .cell(parity ? "ok" : "MISMATCH");
    }
  }
  grid.print();
  std::printf("Expectation: parity 'ok' everywhere; sleep sets shrink nodes with the\n"
              "same verdict; nodes/sec scales with physical cores.\n");
  return all_parity_ok ? 0 : 1;
}
