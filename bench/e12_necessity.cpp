// E12 — necessity probes: what breaks when half of ◇P₁ is removed.
//
// The paper's companion result [21] proves ◇P is the *weakest* failure
// detector for wait-free eventually-fair daemons. This experiment shows
// each property is load-bearing in Algorithm 1 by surgically deleting it:
//
//  * remove Local Strong Completeness on one edge (an owner never suspects
//    a crashed neighbor) → the blinded process starves, and because a
//    continuously hungry process grants only one ack per session, the
//    starvation cascades around the conflict graph;
//
//  * remove Local Eventual Strong Accuracy on one edge (permanent mutual
//    false positive) → the pair keeps eating simultaneously forever: ◇WX
//    never stabilizes;
//
//  * remove accuracy on ALL edges of one process → it needs no acks or
//    forks: eats ~3x as often and permanently violates the 2-bound.
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

Config base(std::uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  cfg.algorithm = Algorithm::kWaitFree;
  cfg.detector = DetectorKind::kScripted;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.topology = "ring";
  cfg.n = 8;
  cfg.harness.think_lo = 5;
  cfg.harness.think_hi = 40;
  cfg.run_for = 160'000;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "E12 — necessity probes: delete one ◇P₁ property, watch the matching\n"
      "guarantee die (ring(8), p2 crashes at t=8000 where applicable).\n\n");

  util::Table t({"detector sabotage", "starving", "violations", "last violation",
                 "overtakes (2nd half)", "wait-free", "3WX settles", "3 2-BW settles"});

  struct Case {
    const char* label;
    std::vector<std::pair<sim::ProcessId, sim::Time>> crashes;
    std::vector<std::pair<sim::ProcessId, sim::ProcessId>> blind;
    std::vector<std::pair<sim::ProcessId, sim::ProcessId>> poison;
  };
  const Case cases[] = {
      {"none (control)", {{2, 8'000}}, {}, {}},
      {"p1 blind to crashed p2 (completeness hole)", {{2, 8'000}}, {{1, 2}}, {}},
      {"p0<->p1 permanent mutual FP (accuracy hole)", {}, {}, {{0, 1}, {1, 0}}},
      {"p0 permanently suspects ALL neighbors", {}, {}, {{0, 1}, {0, 7}}},
  };

  for (const Case& c : cases) {
    Config cfg = base(1200);
    cfg.crashes = c.crashes;
    cfg.blind_pairs = c.blind;
    cfg.poison_pairs = c.poison;
    if (!c.poison.empty()) {  // saturate to expose the fairness break
      cfg.harness.think_lo = 1;
      cfg.harness.think_hi = 8;
      cfg.harness.eat_lo = 40;
      cfg.harness.eat_hi = 100;
    }
    Scenario s(cfg);
    s.run();
    auto wf = s.wait_freedom(40'000);
    auto ex = s.exclusion();
    auto census = s.census();
    const int late_overtakes = dining::max_overtakes(census, cfg.run_for / 2);
    const bool wx_settles = ex.violations_after(cfg.run_for * 9 / 10) == 0;
    const bool bw_settles =
        dining::k_bound_establishment(census, 2) <= cfg.run_for * 9 / 10;
    t.row()
        .cell(c.label)
        .cell(static_cast<std::uint64_t>(wf.starving.size()))
        .cell(static_cast<std::uint64_t>(ex.violations.size()))
        .cell(static_cast<std::int64_t>(ex.last_violation()))
        .cell(late_overtakes)
        .cell(wf.wait_free())
        .cell(wx_settles)
        .cell(bw_settles);
  }
  t.print();
  std::printf(
      "Reading: the control keeps all three guarantees. Each deleted property\n"
      "kills exactly the guarantee it supports — completeness -> wait-freedom\n"
      "(with cascading starvation), accuracy -> eventual weak exclusion, and\n"
      "accuracy on a full neighborhood -> eventual 2-bounded waiting. This is\n"
      "the empirical face of [21]'s weakest-failure-detector theorem.\n");
  return 0;
}
