// E1 — Theorem 1 (eventual weak exclusion).
//
// For each topology/size, run Algorithm 1 under an adversarial oracle
// (scripted mistakes for 12k ticks / real heartbeats with GST at 12k) with
// crash faults, and report how many exclusion violations occurred, when
// the last one happened, and how many occurred after the detector
// converged. The paper's claim: the last column is always zero.
#include <cstdio>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

void run_block(DetectorKind det, const char* title) {
  std::printf("--- %s ---\n", title);
  util::Table t({"topology", "n", "crashes", "violations", "last violation t",
                 "FD converged t", "violations after conv."});
  std::uint64_t seed = 100;
  for (const char* topo : {"ring", "clique", "star", "grid", "random"}) {
    for (std::size_t n : {8, 16, 32}) {
      Config cfg;
      cfg.seed = ++seed;
      cfg.topology = topo;
      cfg.n = n;
      cfg.algorithm = Algorithm::kWaitFree;
      cfg.detector = det;
      cfg.run_for = 80'000;
      cfg.harness.think_lo = 10;
      cfg.harness.think_hi = 60;
      cfg.crashes = {{static_cast<sim::ProcessId>(n / 2), 20'000},
                     {static_cast<sim::ProcessId>(n - 1), 35'000}};
      if (det == DetectorKind::kScripted) {
        cfg.partial_synchrony = false;
        cfg.detection_delay = 120;
        cfg.fp_count = 5 * n;
        cfg.fp_until = 12'000;
        cfg.fp_len_lo = 50;
        cfg.fp_len_hi = 300;
      } else {
        cfg.partial_synchrony = true;
        cfg.delay = {.gst = 12'000, .pre_lo = 1, .pre_hi = 100,
                     .spike_prob = 0.10, .spike_factor = 20,
                     .post_lo = 1, .post_hi = 6};
        cfg.heartbeat = {.period = 25, .initial_timeout = 35, .timeout_increment = 30};
      }
      Scenario s(cfg);
      s.run();
      auto ex = s.exclusion();
      auto conv = s.fd_convergence_estimate();
      t.row()
          .cell(topo)
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(cfg.crashes.size()))
          .cell(static_cast<std::uint64_t>(ex.violations.size()))
          .cell(static_cast<std::int64_t>(ex.last_violation()))
          .cell(static_cast<std::int64_t>(conv))
          .cell(static_cast<std::uint64_t>(ex.violations_after(conv)));
    }
  }
  t.print();
}

}  // namespace

int main() {
  std::printf(
      "E1 — eventual weak exclusion (Theorem 1)\n"
      "Adversarial pre-convergence oracles; expectation: violations happen only\n"
      "before the detector converges (last column all 0).\n\n");
  run_block(DetectorKind::kScripted, "scripted <>P1 (worst-case mistakes until t=12000)");
  run_block(DetectorKind::kHeartbeat, "heartbeat <>P1 (partial synchrony, GST=12000)");
  return 0;
}
