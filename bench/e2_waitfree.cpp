// E2 — Theorem 2 (wait-freedom), head-to-head against the baselines.
//
// Sweep the number of crash faults f from 0 to n-1 on a ring and a clique.
// Algorithm 1 (with ◇P₁) must keep every correct process fed at every f;
// the crash-oblivious baselines starve as soon as f >= 1. Also reports the
// latency cost: hungry→eat response times of correct processes.
#include <cstdio>
#include <string>

#include "dining/checkers.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

using namespace ekbd;
using scenario::Algorithm;
using scenario::Config;
using scenario::DetectorKind;
using scenario::Scenario;

namespace {

struct Row {
  std::size_t starving = 0;
  std::size_t correct = 0;
  double mean_rt = 0;
  double p95_rt = 0;
  std::uint64_t meals = 0;
};

Row run_one(Algorithm algo, DetectorKind det, const char* topo, std::size_t n,
            std::size_t f, std::uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  cfg.algorithm = algo;
  cfg.detector = det;
  cfg.partial_synchrony = false;
  cfg.detection_delay = 120;
  cfg.topology = topo;
  cfg.n = n;
  cfg.harness.think_lo = 10;
  cfg.harness.think_hi = 60;
  cfg.run_for = 80'000;
  for (std::size_t i = 0; i < f; ++i) {
    cfg.crashes.emplace_back(static_cast<sim::ProcessId>(i),
                             8'000 + static_cast<sim::Time>(i) * 4'000);
  }
  Scenario s(cfg);
  s.run();
  auto wf = s.wait_freedom(/*starvation_horizon=*/18'000);
  Row r;
  r.starving = wf.starving.size();
  r.correct = n - f;
  r.mean_rt = wf.response.mean;
  r.p95_rt = wf.response.p95;
  r.meals = s.trace().count(dining::TraceEventKind::kStartEating);
  return r;
}

void sweep(const char* topo, std::size_t n) {
  std::printf("--- %s(%zu), crashes staggered from t=8000 ---\n", topo, n);
  util::Table t({"f", "algorithm", "oracle", "starving/correct", "meals",
                 "mean rt", "p95 rt", "wait-free"});
  struct Algo {
    Algorithm a;
    DetectorKind d;
  };
  const Algo algos[] = {{Algorithm::kWaitFree, DetectorKind::kScripted},
                        {Algorithm::kChoySingh, DetectorKind::kNever},
                        {Algorithm::kChandyMisra, DetectorKind::kNever},
                        {Algorithm::kHierarchical, DetectorKind::kNever}};
  for (std::size_t f : {std::size_t{0}, std::size_t{1}, std::size_t{2}, n / 2, n - 1}) {
    for (const Algo& algo : algos) {
      Row r = run_one(algo.a, algo.d, topo, n, f, 1000 + f);
      t.row()
          .cell(static_cast<std::uint64_t>(f))
          .cell(scenario::to_string(algo.a))
          .cell(scenario::to_string(algo.d))
          .cell(std::to_string(r.starving) + "/" + std::to_string(r.correct))
          .cell(r.meals)
          .cell(r.mean_rt, 0)
          .cell(r.p95_rt, 0)
          .cell(r.starving == 0);
    }
  }
  t.print();
}

}  // namespace

int main() {
  std::printf(
      "E2 — wait-freedom (Theorem 2) vs crash count f\n"
      "Expectation: Algorithm 1 has 0 starving at every f (wait-free for\n"
      "arbitrarily many crashes); every crash-oblivious baseline starves for f >= 1.\n"
      "A process is 'starving' if still hungry after 18000 ticks at the horizon.\n\n");
  sweep("ring", 8);
  sweep("clique", 8);
  return 0;
}
