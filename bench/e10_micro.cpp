// E10 — substrate microbenchmarks (google-benchmark).
//
// Not a paper artifact: these measure the reproduction's own machinery so
// regressions in the simulator don't silently distort E1–E9 (whose wall
// times appear in E9). Covers the event queue, RNG, network stamping,
// checker throughput, and a full end-to-end scenario per iteration.
#include <benchmark/benchmark.h>

#include "dining/checkers.hpp"
#include "graph/coloring.hpp"
#include "graph/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

using ekbd::sim::MsgLayer;
using ekbd::sim::Simulator;

void BM_RngU64(benchmark::State& state) {
  ekbd::sim::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.u64());
}
BENCHMARK(BM_RngU64);

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1);
    ekbd::sim::Rng order(7);
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule(order.uniform_int(0, 1'000'000), [] {});
    }
    sim.run_until(1'000'001);
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

struct Echo : ekbd::sim::Actor {
  void on_message(const ekbd::sim::Message& m) override {
    if (count-- > 0) send(m.from, int{0}, MsgLayer::kOther);
  }
  using Actor::send;
  int count = 0;
};

void BM_MessageRoundTrips(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1, ekbd::sim::make_fixed_delay(1));
    auto* a = sim.make_actor<Echo>();
    auto* b = sim.make_actor<Echo>();
    a->count = rounds;
    b->count = rounds;
    sim.start();
    a->send(b->id(), int{0}, MsgLayer::kOther);
    sim.run_until(4 * rounds + 10);
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * rounds);
}
BENCHMARK(BM_MessageRoundTrips)->Arg(1'000)->Arg(10'000);

void BM_GraphColoring(benchmark::State& state) {
  ekbd::sim::Rng rng(3);
  auto g = ekbd::graph::random_connected(static_cast<std::size_t>(state.range(0)), 0.1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ekbd::graph::welsh_powell_coloring(g));
  }
}
BENCHMARK(BM_GraphColoring)->Arg(64)->Arg(512);

void BM_EndToEndDiningRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ekbd::scenario::Config cfg;
    cfg.seed = ++seed;
    cfg.topology = "ring";
    cfg.n = n;
    cfg.algorithm = ekbd::scenario::Algorithm::kWaitFree;
    cfg.detector = ekbd::scenario::DetectorKind::kScripted;
    cfg.partial_synchrony = false;
    cfg.run_for = 10'000;
    ekbd::scenario::Scenario s(cfg);
    s.run();
    benchmark::DoNotOptimize(s.trace().size());
  }
}
BENCHMARK(BM_EndToEndDiningRun)->Arg(8)->Arg(32)->Arg(128);

void BM_ExclusionChecker(benchmark::State& state) {
  // One fixed big trace, checked repeatedly.
  ekbd::scenario::Config cfg;
  cfg.topology = "clique";
  cfg.n = 16;
  cfg.run_for = 40'000;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 10;
  ekbd::scenario::Scenario s(cfg);
  s.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ekbd::dining::check_exclusion(s.trace(), s.graph()));
  }
  state.counters["trace_events"] = static_cast<double>(s.trace().size());
}
BENCHMARK(BM_ExclusionChecker);

void BM_OvertakeCensus(benchmark::State& state) {
  ekbd::scenario::Config cfg;
  cfg.topology = "clique";
  cfg.n = 16;
  cfg.run_for = 40'000;
  cfg.harness.think_lo = 1;
  cfg.harness.think_hi = 10;
  ekbd::scenario::Scenario s(cfg);
  s.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ekbd::dining::overtake_census(s.trace(), s.graph()));
  }
}
BENCHMARK(BM_OvertakeCensus);

}  // namespace

BENCHMARK_MAIN();
