/// \file module.hpp
/// Embedded failure-detector modules.
///
/// A real ◇P₁ is *part of the process it serves*: it shares the process's
/// identity, network channels and fate (it crashes with it). `FdModule` is
/// the contract between a detector implementation and its host actor: the
/// host starts the module and forwards it messages/timers; the module asks
/// the host to send and to arm timers via `ModuleHost` (so modules are
/// testable with any host, not just diners).
///
/// Implementations: HeartbeatModule (push, heartbeat.hpp) and
/// PingPongModule (pull/RTT-adaptive, pingpong.hpp).
#pragma once

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::fd {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// Services a host actor lends to an embedded protocol module.
class ModuleHost {
 public:
  virtual ~ModuleHost() = default;
  virtual void module_send(ProcessId to, ekbd::sim::Payload payload,
                           ekbd::sim::MsgLayer layer) = 0;
  virtual ekbd::sim::TimerId module_set_timer(Time delay) = 0;
  [[nodiscard]] virtual Time module_now() const = 0;
  [[nodiscard]] virtual ProcessId module_id() const = 0;
};

/// An in-process failure-detector module.
class FdModule {
 public:
  virtual ~FdModule() = default;

  /// Call from the host's on_start (arms timers, sends the first round).
  virtual void start(ModuleHost& host) = 0;

  /// Offer a delivered message; true if the module consumed it.
  virtual bool handle_message(ModuleHost& host, const ekbd::sim::Message& m) = 0;

  /// Offer an expired timer; true if the module owns it.
  virtual bool handle_timer(ModuleHost& host, ekbd::sim::TimerId id) = 0;

  /// Current local suspicion of `target`.
  [[nodiscard]] virtual bool suspects(ProcessId target) const = 0;

  /// Demand hint from the host: `true` while the host actually consults
  /// suspicion (for a diner: while hungry — Actions 5 and 9 are the only
  /// readers). On-demand modules may pause monitoring while unwatched;
  /// always-on modules ignore this. Default: ignore.
  virtual void set_watching(ModuleHost& host, bool watching) {
    (void)host;
    (void)watching;
  }
};

}  // namespace ekbd::fd
