/// \file accrual.hpp
/// A third real ◇P₁: the φ-accrual failure detector (Hayashibara, Défago,
/// Yared & Katayama, SRDS 2004 — the design behind Cassandra's and Akka's
/// detectors).
///
/// Instead of a binary timeout, the module keeps a sliding window of
/// heartbeat inter-arrival times and outputs a *suspicion level*
///
///     φ(t) = −log₁₀ P(another heartbeat arrives after elapsed time t)
///
/// under a normal model of inter-arrivals; the boolean ◇P₁ answer is
/// φ ≥ threshold. Doubling the threshold squares the allowed false-
/// positive probability, so accuracy is tuned in orders of magnitude
/// rather than ticks — and the window adapts to whatever the network is
/// doing without an explicit "increase timeout" rule:
///
///  * Local Strong Completeness: a crashed neighbor stops heartbeating,
///    elapsed time grows without bound, φ → ∞ past any threshold, forever.
///  * Local Eventual Strong Accuracy: after GST inter-arrivals are bounded,
///    the window converges to them; with mean/σ of the post-GST regime, φ
///    at the next expected heartbeat stays far below the threshold.
///    Mistakes can still occur right after GST while pre-GST samples
///    dominate the window — finitely many, as ◇P₁ permits. As an extra
///    safety net (and to guarantee finiteness against adversarial pre-GST
///    sample patterns), a mistaken suspicion also bumps the threshold.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "fd/detector.hpp"
#include "fd/heartbeat.hpp"  // Heartbeat payload (same wire format)
#include "fd/module.hpp"

namespace ekbd::fd {

class AccrualModule final : public FdModule {
 public:
  struct Params {
    Time period = 25;            ///< heartbeat send interval
    std::size_t window = 64;     ///< inter-arrival samples kept per neighbor
    double threshold = 8.0;      ///< suspect when φ ≥ this
    double threshold_bump = 2.0; ///< added to the threshold on each mistake
    Time min_stddev = 4;         ///< variance floor (avoids φ spikes on
                                 ///< perfectly regular networks)
  };

  AccrualModule(std::vector<ProcessId> neighbors, Params params);

  void start(ModuleHost& host) override;
  bool handle_message(ModuleHost& host, const ekbd::sim::Message& m) override;
  bool handle_timer(ModuleHost& host, ekbd::sim::TimerId id) override;
  [[nodiscard]] bool suspects(ProcessId target) const override;

  /// Current suspicion level for a neighbor at this module's local time
  /// (recomputed on ticks; between ticks returns the last computed value).
  [[nodiscard]] double phi_of(ProcessId target) const;
  [[nodiscard]] double threshold_of(ProcessId target) const;

  [[nodiscard]] std::uint64_t false_suspicions() const { return false_suspicions_; }
  [[nodiscard]] Time last_retraction() const { return last_retraction_; }

 private:
  struct NeighborState {
    std::deque<Time> intervals;  ///< recent inter-arrival samples
    Time last_heard = 0;
    double phi = 0.0;
    double threshold = 0.0;
    bool suspected = false;
  };

  void tick(ModuleHost& host);
  void recompute_phi(NeighborState& st, Time now) const;

  std::vector<ProcessId> neighbors_;
  Params params_;
  std::unordered_map<ProcessId, NeighborState> state_;
  ekbd::sim::TimerId tick_timer_ = 0;
  std::uint64_t false_suspicions_ = 0;
  Time last_retraction_ = 0;
};

/// FailureDetector facade over per-process accrual modules.
class AccrualDetector final : public FailureDetector {
 public:
  void attach(ProcessId owner, const AccrualModule* module) { modules_[owner] = module; }

  bool suspects(ProcessId owner, ProcessId target) const override {
    auto it = modules_.find(owner);
    return it != modules_.end() && it->second->suspects(target);
  }

  [[nodiscard]] std::uint64_t total_false_suspicions() const {
    std::uint64_t total = 0;
    for (const auto& [id, m] : modules_) total += m->false_suspicions();
    return total;
  }

  [[nodiscard]] Time last_retraction() const {
    Time latest = 0;
    for (const auto& [id, m] : modules_) {
      latest = latest > m->last_retraction() ? latest : m->last_retraction();
    }
    return latest;
  }

 private:
  std::unordered_map<ProcessId, const AccrualModule*> modules_;
};

}  // namespace ekbd::fd
