/// \file detector.hpp
/// Failure-detector interface and trivial detectors.
///
/// The paper's oracle is ◇P₁ — the *locally scope-restricted* eventually
/// perfect detector [Beauquier–Kekkonen, Hutle–Widder]:
///
///  * Local Strong Completeness: every crashed process is eventually and
///    permanently suspected by all correct neighbors;
///  * Local Eventual Strong Accuracy: for every run there is a time after
///    which no correct process is suspected by any correct neighbor.
///
/// A detector here is a queryable object: `suspects(owner, target)` is the
/// membership test "target ∈ ◇P₁ at owner's module right now", exactly the
/// guard used by Actions 5 and 9 of Algorithm 1. Diners re-evaluate guards
/// periodically while hungry (weak fairness), so detectors need not push
/// notifications.
#pragma once

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ekbd::fd {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// Does `owner`'s local module currently suspect `target`?
  /// Only queried for graph neighbors (◇P₁'s scope restriction).
  [[nodiscard]] virtual bool suspects(ProcessId owner, ProcessId target) const = 0;
};

/// Suspects nobody, ever. Plugging this into Algorithm 1 recovers the
/// crash-oblivious asynchronous-doorway algorithm: safe and fair, but any
/// crash starves the victims' neighbors (used as a negative control).
class NeverSuspect final : public FailureDetector {
 public:
  bool suspects(ProcessId, ProcessId) const override { return false; }
};

/// Magic perfect oracle: suspects exactly the crashed processes, with zero
/// detection latency and zero mistakes. Strictly stronger than anything
/// implementable; used for ablation (with it, Algorithm 1 never makes a
/// single scheduling mistake — perpetual weak exclusion).
class PerfectDetector final : public FailureDetector {
 public:
  explicit PerfectDetector(const ekbd::sim::Simulator& sim) : sim_(sim) {}
  bool suspects(ProcessId, ProcessId target) const override { return sim_.crashed(target); }

 private:
  const ekbd::sim::Simulator& sim_;
};

}  // namespace ekbd::fd
