#include "fd/scripted.hpp"

#include <algorithm>

namespace ekbd::fd {

ScriptedDetector::ScriptedDetector(const ekbd::sim::Simulator& sim, Time detection_delay)
    : sim_(sim), detection_delay_(detection_delay) {}

void ScriptedDetector::add_false_positive(ProcessId owner, ProcessId target, Time from, Time to) {
  intervals_.push_back(Interval{owner, target, from, to});
  last_fp_end_ = std::max(last_fp_end_, to);
}

void ScriptedDetector::add_mutual_false_positive(ProcessId a, ProcessId b, Time from, Time to) {
  add_false_positive(a, b, from, to);
  add_false_positive(b, a, from, to);
}

bool ScriptedDetector::suspects(ProcessId owner, ProcessId target) const {
  const Time now = sim_.now();
  if (sim_.crashed(target) && now >= sim_.crash_time(target) + detection_delay_) {
    return true;
  }
  for (const Interval& iv : intervals_) {
    if (iv.owner == owner && iv.target == target && now >= iv.from && now < iv.to) {
      return true;
    }
  }
  return false;
}

}  // namespace ekbd::fd
