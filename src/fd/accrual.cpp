#include "fd/accrual.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ekbd::fd {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::TimerId;

AccrualModule::AccrualModule(std::vector<ProcessId> neighbors, Params params)
    : neighbors_(std::move(neighbors)), params_(params) {
  for (ProcessId n : neighbors_) {
    NeighborState st;
    st.threshold = params_.threshold;
    state_.emplace(n, st);
  }
}

void AccrualModule::start(ModuleHost& host) {
  assert(tick_timer_ == 0 && "started twice");
  const Time now = host.module_now();
  for (auto& [n, st] : state_) st.last_heard = now;
  tick(host);
}

void AccrualModule::recompute_phi(NeighborState& st, Time now) const {
  if (st.intervals.empty()) {
    // No samples yet: fall back to a timeout-like rule around the period.
    const auto elapsed = static_cast<double>(now - st.last_heard);
    st.phi = elapsed / static_cast<double>(params_.period);
    return;
  }
  double mean = 0.0;
  for (Time x : st.intervals) mean += static_cast<double>(x);
  mean /= static_cast<double>(st.intervals.size());
  double var = 0.0;
  for (Time x : st.intervals) {
    const double d = static_cast<double>(x) - mean;
    var += d * d;
  }
  var /= static_cast<double>(st.intervals.size());
  const double stddev = std::max(std::sqrt(var), static_cast<double>(params_.min_stddev));

  // P(heartbeat still coming) under a normal model of inter-arrivals,
  // via the standard logistic approximation of the normal CDF tail
  // (as in the reference implementation used by Akka):
  //   P ≈ 1 / (1 + e^{y(1.5976 + 0.070566 y²)}),  y = (t − mean)/stddev.
  const double t = static_cast<double>(now - st.last_heard);
  const double y = (t - mean) / stddev;
  const double e = std::exp(-y * (1.5976 + 0.070566 * y * y));
  const double p_later = e / (1.0 + e);
  st.phi = p_later <= 0.0 ? 40.0 : -std::log10(p_later);
  if (st.phi > 40.0) st.phi = 40.0;  // clamp: past ~1e-40 everything is "dead"
}

void AccrualModule::tick(ModuleHost& host) {
  const Time now = host.module_now();
  for (ProcessId n : neighbors_) {
    host.module_send(n, Heartbeat{}, MsgLayer::kDetector);
    NeighborState& st = state_[n];
    recompute_phi(st, now);
    if (!st.suspected && st.phi >= st.threshold) st.suspected = true;
  }
  tick_timer_ = host.module_set_timer(params_.period);
}

bool AccrualModule::handle_message(ModuleHost& host, const Message& m) {
  if (m.as<Heartbeat>() == nullptr) return false;
  auto it = state_.find(m.from);
  if (it == state_.end()) return true;  // not a monitored neighbor
  NeighborState& st = it->second;
  const Time now = host.module_now();
  st.intervals.push_back(now - st.last_heard);
  if (st.intervals.size() > params_.window) st.intervals.pop_front();
  st.last_heard = now;
  recompute_phi(st, now);
  if (st.suspected) {
    st.suspected = false;
    st.threshold += params_.threshold_bump;  // finiteness backstop
    ++false_suspicions_;
    last_retraction_ = now;
  }
  return true;
}

bool AccrualModule::handle_timer(ModuleHost& host, TimerId id) {
  if (id != tick_timer_) return false;
  tick(host);
  return true;
}

bool AccrualModule::suspects(ProcessId target) const {
  auto it = state_.find(target);
  return it != state_.end() && it->second.suspected;
}

double AccrualModule::phi_of(ProcessId target) const {
  auto it = state_.find(target);
  return it == state_.end() ? 0.0 : it->second.phi;
}

double AccrualModule::threshold_of(ProcessId target) const {
  auto it = state_.find(target);
  return it == state_.end() ? 0.0 : it->second.threshold;
}

}  // namespace ekbd::fd
