#include "fd/pingpong.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace ekbd::fd {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::TimerId;

PingPongModule::PingPongModule(std::vector<ProcessId> neighbors, Params params)
    : neighbors_(std::move(neighbors)), params_(params) {
  for (ProcessId n : neighbors_) {
    NeighborState st;
    st.srtt8 = params_.initial_rtt * 8;
    st.rttvar4 = params_.initial_rtt * 2;  // (initial_rtt / 2) * 4
    st.slack = params_.initial_slack;
    state_.emplace(n, st);
  }
}

void PingPongModule::start(ModuleHost& host) {
  assert(tick_timer_ == 0 && "started twice");
  tick(host);
}

void PingPongModule::tick(ModuleHost& host) {
  const Time now = host.module_now();
  if (watching()) {
    for (ProcessId n : neighbors_) {
      NeighborState& st = state_[n];
      if (st.pending_seq != 0) {
        // Probe outstanding: check its age against the adaptive threshold.
        if (!st.suspected && now - st.pending_since > threshold(st)) {
          st.suspected = true;
        }
      } else {
        st.pending_seq = st.next_seq++;
        st.pending_since = now;
        host.module_send(n, Probe{st.pending_seq}, MsgLayer::kDetector);
      }
    }
  }
  tick_timer_ = host.module_set_timer(params_.period);
}

void PingPongModule::set_watching(ModuleHost& host, bool watching) {
  (void)host;
  if (!params_.on_demand) return;
  active_ = watching;
  if (watching) {
    // Restart probe aging: a probe from a previous watch phase (or the
    // idle gap itself) must not instantly convict the neighbor.
    for (auto& [n, st] : state_) st.pending_seq = 0;
  }
}

bool PingPongModule::handle_message(ModuleHost& host, const Message& m) {
  if (const auto* probe = m.as<Probe>()) {
    // Answer probes unconditionally — even from non-neighbors (scope
    // restriction applies to whom we monitor, not whom we help).
    host.module_send(m.from, ProbeEcho{probe->seq}, MsgLayer::kDetector);
    return true;
  }
  const auto* echo = m.as<ProbeEcho>();
  if (echo == nullptr) return false;
  auto it = state_.find(m.from);
  if (it == state_.end()) return true;  // echo from a non-monitored process
  NeighborState& st = it->second;
  if (echo->seq != st.pending_seq) return true;  // stale echo: ignore

  const Time rtt = host.module_now() - st.pending_since;
  st.pending_seq = 0;
  // Jacobson/Karels estimators in RFC 6298 fixed-point form.
  const Time err = rtt - (st.srtt8 >> 3);
  st.rttvar4 += std::llabs(err) - (st.rttvar4 >> 2);
  st.srtt8 += err;  // == srtt8 - srtt8/8 + rtt
  if (st.srtt8 < 8) st.srtt8 = 8;
  if (st.rttvar4 < 0) st.rttvar4 = 0;

  if (st.suspected) {
    // Mistake: the neighbor answered after all. Retract and back off.
    st.suspected = false;
    st.slack = std::min<Time>(params_.max_slack, st.slack * 2);
    ++false_suspicions_;
    last_retraction_ = host.module_now();
  }
  return true;
}

bool PingPongModule::handle_timer(ModuleHost& host, TimerId id) {
  if (id != tick_timer_) return false;
  tick(host);
  return true;
}

bool PingPongModule::suspects(ProcessId target) const {
  auto it = state_.find(target);
  return it != state_.end() && it->second.suspected;
}

Time PingPongModule::srtt_of(ProcessId target) const {
  auto it = state_.find(target);
  return it == state_.end() ? 0 : it->second.srtt8 >> 3;
}

Time PingPongModule::threshold_of(ProcessId target) const {
  auto it = state_.find(target);
  return it == state_.end() ? 0 : threshold(it->second);
}

}  // namespace ekbd::fd
