#include "fd/heartbeat.hpp"

#include <algorithm>
#include <cassert>

namespace ekbd::fd {

using ekbd::sim::Message;
using ekbd::sim::MsgLayer;
using ekbd::sim::TimerId;

HeartbeatModule::HeartbeatModule(std::vector<ProcessId> neighbors, Params params)
    : neighbors_(std::move(neighbors)), params_(params) {
  for (ProcessId n : neighbors_) {
    NeighborState st;
    st.timeout = params_.initial_timeout;
    state_.emplace(n, st);
  }
}

void HeartbeatModule::start(ModuleHost& host) {
  // The first call arms the module; a later call is a post-recovery
  // restart — the old tick timer died with the crashed incarnation, so
  // re-arm it and forget pre-crash silence and suspicions (the rejoiner
  // rebuilds its view from fresh heartbeats; clearing a suspicion here is
  // not a retraction, so it does not count as a detector mistake).
  started_ = true;
  const Time now = host.module_now();
  for (auto& [n, st] : state_) {
    st.last_heard = now;
    st.suspected = false;
  }
  tick(host);
}

void HeartbeatModule::tick(ModuleHost& host) {
  const Time now = host.module_now();
  for (ProcessId n : neighbors_) {
    host.module_send(n, Heartbeat{}, MsgLayer::kDetector);
    NeighborState& st = state_[n];
    if (!st.suspected && now - st.last_heard > st.timeout) {
      st.suspected = true;
    }
  }
  tick_timer_ = host.module_set_timer(params_.period);
}

bool HeartbeatModule::handle_message(ModuleHost& host, const Message& m) {
  if (m.as<Heartbeat>() == nullptr) return false;
  auto it = state_.find(m.from);
  if (it == state_.end()) return true;  // heartbeat from a non-neighbor: ignore
  NeighborState& st = it->second;
  st.last_heard = host.module_now();
  if (st.suspected) {
    // The suspicion was a mistake (the "dead" neighbor spoke): retract and
    // become more conservative about this neighbor.
    st.suspected = false;
    st.timeout += params_.timeout_increment;
    ++false_suspicions_;
    last_retraction_ = host.module_now();
  }
  return true;
}

bool HeartbeatModule::handle_timer(ModuleHost& host, TimerId id) {
  if (id != tick_timer_) return false;
  tick(host);
  return true;
}

bool HeartbeatModule::suspects(ProcessId target) const {
  auto it = state_.find(target);
  return it != state_.end() && it->second.suspected;
}

Time HeartbeatModule::timeout_of(ProcessId target) const {
  auto it = state_.find(target);
  return it == state_.end() ? 0 : it->second.timeout;
}

void HeartbeatDetector::attach(ProcessId owner, const HeartbeatModule* module) {
  modules_[owner] = module;
}

bool HeartbeatDetector::suspects(ProcessId owner, ProcessId target) const {
  auto it = modules_.find(owner);
  return it != modules_.end() && it->second->suspects(target);
}

std::uint64_t HeartbeatDetector::total_false_suspicions() const {
  std::uint64_t total = 0;
  for (const auto& [id, m] : modules_) total += m->false_suspicions();
  return total;
}

Time HeartbeatDetector::last_retraction() const {
  Time latest = 0;
  for (const auto& [id, m] : modules_) latest = std::max(latest, m->last_retraction());
  return latest;
}

}  // namespace ekbd::fd
