/// \file pingpong.hpp
/// A second real ◇P₁: query/response probing with RTT-adaptive timeouts.
///
/// Where the heartbeat module (heartbeat.hpp) *pushes* liveness and
/// tolerates silence up to an additively-grown timeout, this module
/// *pulls*: it sends a probe, measures the round-trip time, and keeps a
/// Jacobson-style smoothed RTT estimate (EWMA of mean and deviation, as in
/// TCP); a neighbor is suspected when a probe ages past
/// `srtt + 4·rttvar + slack`. On a mistaken suspicion the estimator learns
/// the new sample *and* the slack doubles — so under partial synchrony the
/// module converges like the heartbeat one, but typically with far fewer
/// pre-GST mistakes on jittery links (E8 measures the difference).
///
///  * Local Strong Completeness: a crashed neighbor never answers, the
///    pending probe ages past any finite bound, suspicion is permanent.
///  * Local Eventual Strong Accuracy: post GST every RTT ≤ period + 2Δ;
///    finitely many doublings push the threshold above that forever.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fd/detector.hpp"
#include "fd/module.hpp"
#include "sim/message.hpp"

namespace ekbd::fd {

// The Probe / ProbeEcho wire structs are defined in sim/payload.hpp
// (every wire type is an alternative of the closed sim::Payload variant).

class PingPongModule final : public FdModule {
 public:
  struct Params {
    Time period = 25;          ///< probe interval
    Time initial_rtt = 20;     ///< seed for the RTT estimate
    Time initial_slack = 20;   ///< additive safety margin; doubles on mistakes
    Time max_slack = 1 << 20;  ///< cap (keeps arithmetic safe)
    /// Demand-driven monitoring: probe only while the host is watching
    /// (for a diner: while hungry). RTT estimators and suspicion state
    /// persist across idle phases; pending-probe aging restarts on each
    /// watch so idle time is never misread as silence. With every process
    /// idle, the detector layer goes fully quiescent (E18).
    bool on_demand = false;
  };

  PingPongModule(std::vector<ProcessId> neighbors, Params params);

  void start(ModuleHost& host) override;
  bool handle_message(ModuleHost& host, const ekbd::sim::Message& m) override;
  bool handle_timer(ModuleHost& host, ekbd::sim::TimerId id) override;
  void set_watching(ModuleHost& host, bool watching) override;

  [[nodiscard]] bool suspects(ProcessId target) const override;

  [[nodiscard]] bool watching() const { return !params_.on_demand || active_; }

  // instrumentation
  [[nodiscard]] std::uint64_t false_suspicions() const { return false_suspicions_; }
  [[nodiscard]] Time last_retraction() const { return last_retraction_; }
  [[nodiscard]] Time srtt_of(ProcessId target) const;
  [[nodiscard]] Time threshold_of(ProcessId target) const;

 private:
  /// Estimators kept in TCP's fixed-point form (RFC 6298): srtt scaled by
  /// 8 and rttvar by 4, so the 1/8 and 1/4 gains stay exact in integer
  /// arithmetic (a plain `err / 8` truncates small corrections to zero and
  /// the estimate never converges downward).
  struct NeighborState {
    std::uint64_t next_seq = 1;
    std::uint64_t pending_seq = 0;  ///< 0 = no probe outstanding
    Time pending_since = 0;
    Time srtt8 = 0;    ///< smoothed RTT * 8
    Time rttvar4 = 0;  ///< RTT deviation * 4
    Time slack = 0;
    bool suspected = false;
  };

  void tick(ModuleHost& host);
  [[nodiscard]] static Time threshold(const NeighborState& st) {
    // srtt + 4*rttvar + slack, in unscaled ticks.
    return (st.srtt8 >> 3) + st.rttvar4 + st.slack;
  }

  std::vector<ProcessId> neighbors_;
  Params params_;
  std::unordered_map<ProcessId, NeighborState> state_;
  ekbd::sim::TimerId tick_timer_ = 0;
  std::uint64_t false_suspicions_ = 0;
  Time last_retraction_ = 0;
  bool active_ = false;  ///< on-demand mode: host currently watching
};

/// FailureDetector facade over per-process ping-pong modules (mirror of
/// HeartbeatDetector).
class PingPongDetector final : public FailureDetector {
 public:
  void attach(ProcessId owner, const PingPongModule* module) { modules_[owner] = module; }

  bool suspects(ProcessId owner, ProcessId target) const override {
    auto it = modules_.find(owner);
    return it != modules_.end() && it->second->suspects(target);
  }

  [[nodiscard]] std::uint64_t total_false_suspicions() const {
    std::uint64_t total = 0;
    for (const auto& [id, m] : modules_) total += m->false_suspicions();
    return total;
  }

  [[nodiscard]] Time last_retraction() const {
    Time latest = 0;
    for (const auto& [id, m] : modules_) {
      latest = latest > m->last_retraction() ? latest : m->last_retraction();
    }
    return latest;
  }

 private:
  std::unordered_map<ProcessId, const PingPongModule*> modules_;
};

}  // namespace ekbd::fd
