/// \file scripted.hpp
/// Adversarially scripted ◇P₁.
///
/// Tests and experiments need precise control over the oracle's behaviour:
/// exactly which false positives occur, and exactly when the detector
/// converges. `ScriptedDetector` provides that:
///
///  * completeness: a crashed target is suspected by every owner starting
///    `detection_delay` ticks after the crash, permanently;
///  * scripted mistakes: arbitrary (owner, target, [from, to)) false-
///    positive suspicion intervals, including *mutual* suspicion — the
///    scenario the paper highlights where two neighbors enter the doorway
///    together before convergence.
///
/// As long as every scripted interval ends, this object is a legitimate
/// ◇P₁ instance; `last_false_positive_end()` exposes the earliest provable
/// convergence time for checking "eventual" properties.
#pragma once

#include <vector>

#include "fd/detector.hpp"

namespace ekbd::fd {

class ScriptedDetector final : public FailureDetector {
 public:
  /// \param sim             consulted for actual crash times (completeness)
  /// \param detection_delay latency between a crash and its permanent
  ///                        suspicion by every neighbor
  explicit ScriptedDetector(const ekbd::sim::Simulator& sim, Time detection_delay = 0);

  /// `owner` wrongfully suspects `target` during [from, to).
  void add_false_positive(ProcessId owner, ProcessId target, Time from, Time to);

  /// Symmetric mistake: both wrongfully suspect each other during [from, to).
  void add_mutual_false_positive(ProcessId a, ProcessId b, Time from, Time to);

  bool suspects(ProcessId owner, ProcessId target) const override;

  /// Latest end of any scripted false-positive interval (0 if none): after
  /// this time the detector output is accurate for live processes.
  [[nodiscard]] Time last_false_positive_end() const { return last_fp_end_; }

  [[nodiscard]] Time detection_delay() const { return detection_delay_; }

 private:
  struct Interval {
    ProcessId owner;
    ProcessId target;
    Time from;
    Time to;
  };

  const ekbd::sim::Simulator& sim_;
  Time detection_delay_;
  Time last_fp_end_ = 0;
  std::vector<Interval> intervals_;
};

}  // namespace ekbd::fd
