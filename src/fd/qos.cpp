#include "fd/qos.hpp"

namespace ekbd::fd {

QosMonitor::QosMonitor(ekbd::sim::Simulator& sim, const FailureDetector& detector,
                       ProcessId owner, ProcessId target, Time poll_period)
    : sim_(sim), detector_(detector), owner_(owner), target_(target), period_(poll_period) {
  sim_.schedule_in(period_, [this] { poll(); });
}

void QosMonitor::poll() {
  const Time now = sim_.now();
  const bool crashed = sim_.crashed(target_);
  const bool suspected = detector_.suspects(owner_, target_);
  ++polls_;
  if (!crashed) {
    ++polls_pre_crash_;
    if (!suspected) ++trusted_polls_pre_crash_;
  }

  // First poll that sees the crashed target suspected — whether the
  // suspicion was just raised or was already standing from before the
  // crash — marks the detection point.
  if (crashed && suspected && post_crash_suspicion_ < 0) post_crash_suspicion_ = now;

  if (suspected && !prev_suspected_) {
    // Suspicion raised.
    if (!crashed) {
      mistake_starts_.push_back(now);
      current_suspicion_start_ = now;
    }
  } else if (!suspected && prev_suspected_) {
    // Retraction: by definition only possible for a live target (a dead
    // one never speaks again), so this closes a mistake.
    if (current_suspicion_start_ >= 0) {
      mistake_durations_.push_back(static_cast<double>(now - current_suspicion_start_));
      current_suspicion_start_ = -1;
    }
    last_retraction_ = now;
    post_crash_suspicion_ = -1;  // it wasn't the final (crash) suspicion
  }
  prev_suspected_ = suspected;

  sim_.schedule_in(period_, [this] { poll(); });
}

QosMonitor::Report QosMonitor::report() const {
  Report r;
  r.mistakes = mistake_starts_.size();
  r.mistake_duration = ekbd::util::summarize(mistake_durations_);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < mistake_starts_.size(); ++i) {
    gaps.push_back(static_cast<double>(mistake_starts_[i] - mistake_starts_[i - 1]));
  }
  r.mistake_recurrence = ekbd::util::summarize(gaps);
  r.query_accuracy = polls_pre_crash_ == 0
                         ? 1.0
                         : static_cast<double>(trusted_polls_pre_crash_) /
                               static_cast<double>(polls_pre_crash_);
  if (sim_.crashed(target_) && post_crash_suspicion_ >= 0) {
    r.detection_time = post_crash_suspicion_ - sim_.crash_time(target_);
  }
  r.last_retraction = last_retraction_;
  return r;
}

}  // namespace ekbd::fd
