/// \file lossy.hpp
/// Deliberately broken detectors — probes for the *necessity* of ◇P₁'s
/// two properties.
///
/// The companion result the paper cites ([21]: Song, Pike & Sastry) proves
/// ◇P is the weakest detector for wait-free, eventually fair daemons.
/// Necessity can't be demonstrated by running one algorithm, but the
/// load-bearing role of each property can:
///
///  * `IncompleteDetector` breaks Local Strong Completeness for selected
///    (owner, target) pairs — the owner never suspects that target even
///    after it crashes. Expectation (bench/e12_necessity): the blinded
///    neighbors of a crashed process starve — exactly the failure mode
///    suspicion exists to prevent.
///
///  * `InaccurateDetector` breaks Local Eventual Strong Accuracy for
///    selected pairs — the owner suspects the (live) target *forever*.
///    Expectation: safety never stabilizes — exclusion violations between
///    the pair recur forever, so ◇WX fails; with mutual permanent
///    suspicion, the 2-bound can also be violated arbitrarily late.
///
/// Both wrap an underlying detector and perturb only the listed pairs.
#pragma once

#include <utility>
#include <vector>

#include "fd/detector.hpp"

namespace ekbd::fd {

/// Never suspects `target` at `owner` for the registered pairs — a
/// permanent false *negative* (completeness hole).
class IncompleteDetector final : public FailureDetector {
 public:
  explicit IncompleteDetector(const FailureDetector& inner) : inner_(inner) {}

  /// `owner` is blind to `target` forever.
  void blind(ProcessId owner, ProcessId target) { holes_.emplace_back(owner, target); }

  bool suspects(ProcessId owner, ProcessId target) const override {
    for (const auto& [o, t] : holes_) {
      if (o == owner && t == target) return false;
    }
    return inner_.suspects(owner, target);
  }

 private:
  const FailureDetector& inner_;
  std::vector<std::pair<ProcessId, ProcessId>> holes_;
};

/// Suspects `target` at `owner` forever for the registered pairs — a
/// permanent false *positive* (accuracy hole).
class InaccurateDetector final : public FailureDetector {
 public:
  explicit InaccurateDetector(const FailureDetector& inner) : inner_(inner) {}

  /// `owner` permanently (wrongfully) suspects `target`.
  void poison(ProcessId owner, ProcessId target) { lies_.emplace_back(owner, target); }

  /// Both directions.
  void poison_mutual(ProcessId a, ProcessId b) {
    poison(a, b);
    poison(b, a);
  }

  bool suspects(ProcessId owner, ProcessId target) const override {
    for (const auto& [o, t] : lies_) {
      if (o == owner && t == target) return true;
    }
    return inner_.suspects(owner, target);
  }

 private:
  const FailureDetector& inner_;
  std::vector<std::pair<ProcessId, ProcessId>> lies_;
};

}  // namespace ekbd::fd
