/// \file heartbeat.hpp
/// A real ◇P₁ implementation: heartbeats with adaptive timeouts.
///
/// The classic Chandra–Toueg construction for partially synchronous
/// systems: every process periodically heartbeats its conflict-graph
/// neighbors; a neighbor silent past its current timeout is suspected;
/// whenever a suspicion is revealed to be a mistake (a heartbeat arrives
/// from a suspected neighbor) the timeout for that neighbor is increased.
///
///  * Local Strong Completeness: a crashed neighbor stops heartbeating, so
///    its deadline passes and the suspicion is never retracted.
///  * Local Eventual Strong Accuracy: after GST every heartbeat arrives
///    within period + Δ; each false suspicion bumps the timeout, so after
///    finitely many mistakes the timeout exceeds period + Δ forever.
///
/// The module lives *inside* the host process (same ProcessId, crashes with
/// it) — the host actor forwards messages/timers the module owns. Any
/// `dining::Diner` can host one (see dining/diner.hpp), keeping the dining
/// algorithm code oracle-agnostic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fd/detector.hpp"
#include "fd/module.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace ekbd::fd {

// The Heartbeat wire struct is defined in sim/payload.hpp (every wire
// type is an alternative of the closed sim::Payload variant).

/// Per-process heartbeat/timeout state machine.
class HeartbeatModule final : public FdModule {
 public:
  struct Params {
    Time period = 20;            ///< heartbeat send interval
    Time initial_timeout = 40;   ///< starting silence tolerance
    Time timeout_increment = 20; ///< additive bump on each false suspicion
  };

  HeartbeatModule(std::vector<ProcessId> neighbors, Params params);

  /// Arms the periodic timer and sends the first round of heartbeats.
  void start(ModuleHost& host) override;

  /// Consumes Heartbeat payloads.
  bool handle_message(ModuleHost& host, const ekbd::sim::Message& m) override;

  bool handle_timer(ModuleHost& host, ekbd::sim::TimerId id) override;

  [[nodiscard]] bool suspects(ProcessId target) const override;

  // -- instrumentation -------------------------------------------------

  /// Suspicions raised against processes that were alive at the time.
  [[nodiscard]] std::uint64_t false_suspicions() const { return false_suspicions_; }

  /// Time the last false suspicion was *retracted* (0 if none): a lower
  /// bound estimate of this module's convergence time.
  [[nodiscard]] Time last_retraction() const { return last_retraction_; }

  /// Current timeout for a neighbor (instrumentation for E8).
  [[nodiscard]] Time timeout_of(ProcessId target) const;

 private:
  struct NeighborState {
    Time last_heard = 0;
    Time timeout = 0;
    bool suspected = false;
  };

  void tick(ModuleHost& host);

  std::vector<ProcessId> neighbors_;
  Params params_;
  std::unordered_map<ProcessId, NeighborState> state_;
  ekbd::sim::TimerId tick_timer_ = 0;
  std::uint64_t false_suspicions_ = 0;
  Time last_retraction_ = 0;
  bool started_ = false;
};

/// FailureDetector facade over a set of per-process modules. The dining
/// harness attaches each diner's embedded module here so property checkers
/// and guards can query "owner suspects target" uniformly.
class HeartbeatDetector final : public FailureDetector {
 public:
  void attach(ProcessId owner, const HeartbeatModule* module);

  bool suspects(ProcessId owner, ProcessId target) const override;

  /// Aggregate mistake count across all modules.
  [[nodiscard]] std::uint64_t total_false_suspicions() const;

  /// Latest retraction across all modules — an observed convergence bound.
  [[nodiscard]] Time last_retraction() const;

 private:
  std::unordered_map<ProcessId, const HeartbeatModule*> modules_;
};

}  // namespace ekbd::fd
