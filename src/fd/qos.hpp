/// \file qos.hpp
/// Failure-detector quality-of-service metrics.
///
/// Chen, Toueg & Aguilera ("On the Quality of Service of Failure
/// Detectors", IEEE ToC 2002) standardized how to measure an unreliable
/// detector. The monitor samples one (owner → target) suspicion output at
/// a fixed poll period and derives:
///
///  * **detection time** T_D — crash to the (final) suspicion;
///  * **mistake count** — false suspicions of the live target;
///  * **mistake duration** T_M — how long a false suspicion lasts;
///  * **mistake recurrence** T_MR — time between consecutive mistakes;
///  * **query accuracy probability** P_A — share of pre-crash polls that
///    answered "trusted".
///
/// ◇P₁ puts no *bound* on any of these — it only promises finitely many
/// mistakes — so QoS is exactly the lens that separates one valid ◇P₁
/// implementation from another (bench/e15_fd_qos compares the heartbeat
/// and ping-pong modules and the effect of their tuning knobs).
#pragma once

#include <cstdint>
#include <vector>

#include "fd/detector.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace ekbd::fd {

class QosMonitor {
 public:
  /// Start polling `detector.suspects(owner, target)` every `poll_period`
  /// ticks, beginning one period from now. The monitor must outlive the
  /// simulation (it schedules callbacks into `sim`).
  QosMonitor(ekbd::sim::Simulator& sim, const FailureDetector& detector, ProcessId owner,
             ProcessId target, Time poll_period = 5);

  QosMonitor(const QosMonitor&) = delete;
  QosMonitor& operator=(const QosMonitor&) = delete;

  struct Report {
    /// Crash → first suspicion afterwards; -1 if the target never crashed
    /// or was never suspected post-crash (completeness failure!).
    Time detection_time = -1;
    /// Suspicions raised while the target was alive.
    std::uint64_t mistakes = 0;
    /// Durations of *completed* false suspicions (suspicion → retraction).
    ekbd::util::Summary mistake_duration;
    /// Gaps between consecutive mistake starts.
    ekbd::util::Summary mistake_recurrence;
    /// Pre-crash polls answering "trusted" / all pre-crash polls.
    double query_accuracy = 1.0;
    /// Time of the last retraction of a false suspicion (0 if none) —
    /// the observed convergence point of this edge.
    Time last_retraction = 0;
  };

  /// Compute the report from everything observed so far.
  [[nodiscard]] Report report() const;

  [[nodiscard]] std::uint64_t polls() const { return polls_; }

 private:
  void poll();

  ekbd::sim::Simulator& sim_;
  const FailureDetector& detector_;
  const ProcessId owner_;
  const ProcessId target_;
  const Time period_;

  bool prev_suspected_ = false;
  std::uint64_t polls_ = 0;
  std::uint64_t trusted_polls_pre_crash_ = 0;
  std::uint64_t polls_pre_crash_ = 0;
  Time current_suspicion_start_ = -1;
  std::vector<Time> mistake_starts_;
  std::vector<double> mistake_durations_;
  Time post_crash_suspicion_ = -1;
  Time last_retraction_ = 0;
};

}  // namespace ekbd::fd
