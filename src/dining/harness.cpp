#include "dining/harness.hpp"

#include <cassert>

namespace ekbd::dining {

using sim::ProcessId;
using sim::Time;

Harness::Harness(sim::Simulator& sim, const graph::ConflictGraph& graph, HarnessOptions opt)
    : sim_(sim), graph_(graph), opt_(opt), rng_(sim.rng().fork(0x4a52)) {}

void Harness::manage(Diner* d) {
  assert(d != nullptr);
  assert(static_cast<std::size_t>(d->id()) < graph_.size());
  d->set_recheck_period(opt_.recheck_period);
  d->set_event_callback([this](Diner& diner, TraceEventKind kind) {
    on_diner_event(diner, kind);
  });
  d->set_edge_event_callback([this](Diner& diner, TraceEventKind kind, ProcessId peer) {
    // kEdgeAdded / kEdgeRemoved, recorded by the initiating endpoint with
    // the peer attached — the checkers' DynamicAdjacency overlay replays
    // exactly these records.
    trace_.record(sim_.now(), diner.id(), kind, peer);
  });
  diners_.push_back(d);
  if (by_id_.size() <= static_cast<std::size_t>(d->id())) {
    by_id_.resize(static_cast<std::size_t>(d->id()) + 1, nullptr);
  }
  by_id_[static_cast<std::size_t>(d->id())] = d;
  schedule_next_hunger(d, rng_.uniform_int(0, opt_.first_hunger_hi));
}

void Harness::set_think_forever(ProcessId p, bool v) {
  if (v) {
    think_forever_.insert(p);
  } else {
    think_forever_.erase(p);
  }
}

void Harness::schedule_next_hunger(Diner* d, Time delay) {
  const Time at = sim_.now() + delay;
  if (hunger_deadline_ >= 0 && at >= hunger_deadline_) return;
  sim_.schedule(at, [this, d] {
    if (sim_.crashed(d->id())) return;
    if (!d->thinking()) return;
    if (think_forever_.count(d->id()) != 0) return;
    if (hunger_deadline_ >= 0 && sim_.now() >= hunger_deadline_) return;
    d->become_hungry();
  });
}

void Harness::attach_metrics(obs::MetricsRegistry& reg) {
  hungry_latency_ = &reg.histogram("dining.hungry_latency", "", 0.0, 5000.0, 50);
  meals_ = &reg.counter("dining.meals");
  neighbor_hungry_eats_ = &reg.counter("dining.neighbor_hungry_eats");
  hungry_since_.assign(graph_.size(), -1);
}

void Harness::on_diner_event(Diner& d, TraceEventKind kind) {
  trace_.record(sim_.now(), d.id(), kind);
  if (meals_ != nullptr) {
    // Telemetry attached: keep the hungry-since clocks and feed the
    // latency/overtake instruments. All of this is skipped (one branch)
    // when detached.
    const auto idx = static_cast<std::size_t>(d.id());
    switch (kind) {
      case TraceEventKind::kBecameHungry:
        hungry_since_[idx] = sim_.now();
        break;
      case TraceEventKind::kStartEating:
        meals_->inc();
        if (hungry_since_[idx] >= 0) {
          hungry_latency_->add(static_cast<double>(sim_.now() - hungry_since_[idx]));
          hungry_since_[idx] = -1;
        }
        for (const ProcessId q : graph_.neighbors(d.id())) {
          if (hungry_since_[static_cast<std::size_t>(q)] >= 0) neighbor_hungry_eats_->inc();
        }
        break;
      case TraceEventKind::kCrashed:
      case TraceEventKind::kRecovered:
        hungry_since_[idx] = -1;
        break;
      default:
        break;
    }
  }
  switch (kind) {
    case TraceEventKind::kStartEating: {
      if (eat_hook_) eat_hook_(d.id());
      // Correct processes eat for a finite (but not necessarily bounded)
      // period (§2); the harness ends the session.
      const Time duration = rng_.uniform_int(opt_.eat_lo, opt_.eat_hi);
      Diner* dp = &d;
      sim_.schedule(sim_.now() + duration, [this, dp] {
        if (sim_.crashed(dp->id())) return;
        if (dp->eating()) dp->finish_eating();
      });
      break;
    }
    case TraceEventKind::kStopEating:
      if (exit_hook_) exit_hook_(d.id());
      schedule_next_hunger(&d, rng_.uniform_int(opt_.think_lo, opt_.think_hi));
      break;
    case TraceEventKind::kRecovered:
      // A rejoined process re-enters the hunger cycle: its pre-crash
      // hunger chain died with the old incarnation.
      schedule_next_hunger(&d, rng_.uniform_int(opt_.think_lo, opt_.think_hi));
      break;
    default:
      break;
  }
}

void Harness::run_until(Time t) {
  sim_.run_until(t);
  trace_.set_end_time(t);
}

std::vector<Time> Harness::crash_times() const {
  std::vector<Time> out(sim_.num_processes(), -1);
  for (std::size_t p = 0; p < out.size(); ++p) {
    out[p] = sim_.crash_time(static_cast<ProcessId>(p));
  }
  return out;
}

void Harness::install_heartbeats(fd::HeartbeatDetector& detector,
                                 fd::HeartbeatModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::HeartbeatModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

void Harness::install_pingpongs(fd::PingPongDetector& detector,
                                fd::PingPongModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::PingPongModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

void Harness::install_accruals(fd::AccrualDetector& detector,
                               fd::AccrualModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::AccrualModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

}  // namespace ekbd::dining
