/// \file harness.hpp
/// Drives dining executions and records the Trace.
///
/// The harness plays the paper's "environment": it decides when thinking
/// processes become hungry (processes may think forever, but eat only for
/// finite durations — §2), terminates eating sessions after a finite random
/// duration, injects crash faults from a crash plan, and logs every
/// scheduling event. It is algorithm-agnostic: anything implementing
/// `dining::Diner` can be managed.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "dining/diner.hpp"
#include "dining/trace.hpp"
#include "fd/accrual.hpp"
#include "fd/heartbeat.hpp"
#include "fd/pingpong.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace ekbd::dining {

struct HarnessOptions {
  sim::Time think_lo = 50;         ///< post-eating think duration, uniform
  sim::Time think_hi = 300;
  sim::Time eat_lo = 20;           ///< eating duration, uniform (finite! §2)
  sim::Time eat_hi = 60;
  sim::Time first_hunger_hi = 100; ///< initial hunger offsets in [0, this]
  sim::Time recheck_period = 25;   ///< diner guard re-evaluation period
};

class Harness {
 public:
  Harness(sim::Simulator& sim, const graph::ConflictGraph& graph, HarnessOptions opt = {});

  /// Take over hunger/eat-duration driving and trace recording for `d`.
  /// `d` must already be registered with the simulator and correspond to a
  /// vertex of the conflict graph.
  void manage(Diner* d);

  /// Mark a process as never becoming hungry (paper: "processes may think
  /// forever"). Takes effect for hunger decisions after the current one.
  void set_think_forever(sim::ProcessId p, bool v);

  /// Stop generating *new* hungry sessions at/after time `t` (drain mode —
  /// used by tests that want a quiescent tail).
  void stop_hunger_after(sim::Time t) { hunger_deadline_ = t; }

  /// Crash `p` at absolute time `at` (forwarded to the simulator).
  void schedule_crash(sim::ProcessId p, sim::Time at) { sim_.schedule_crash(p, at); }

  /// Hook invoked whenever a diner starts eating — the daemon layer uses
  /// this to execute one step of the scheduled protocol inside the
  /// critical section.
  void set_eat_hook(std::function<void(sim::ProcessId)> hook) { eat_hook_ = std::move(hook); }

  /// Hook invoked whenever a diner stops eating (exits the critical
  /// section) — used by the work-queue facade to decide whether to go
  /// hungry again.
  void set_exit_hook(std::function<void(sim::ProcessId)> hook) { exit_hook_ = std::move(hook); }

  /// Run the simulation to absolute time `t` and clip the trace there.
  void run_until(sim::Time t);

  /// The managed diner for process `p` (nullptr if unmanaged).
  [[nodiscard]] Diner* diner(sim::ProcessId p) const {
    auto i = static_cast<std::size_t>(p);
    return i < by_id_.size() ? by_id_[i] : nullptr;
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const graph::ConflictGraph& graph() const { return graph_; }

  /// Per-process crash times from the simulator (-1 = correct), indexed by
  /// ProcessId; suitable for `check_wait_freedom`.
  [[nodiscard]] std::vector<sim::Time> crash_times() const;

  /// Convenience: create and host one heartbeat module per managed diner
  /// (neighbors from the conflict graph) and attach them to `detector`.
  /// Call after all diners are managed, before the simulation starts.
  void install_heartbeats(fd::HeartbeatDetector& detector,
                          fd::HeartbeatModule::Params params);

  /// Same for the RTT-adaptive ping-pong modules.
  void install_pingpongs(fd::PingPongDetector& detector,
                         fd::PingPongModule::Params params);

  /// Same for the φ-accrual modules.
  void install_accruals(fd::AccrualDetector& detector, fd::AccrualModule::Params params);

  /// Wire scheduling telemetry into `reg` (detached by default; zero cost
  /// until called): "dining.hungry_latency" — hungry→eat waits as a
  /// histogram; "dining.meals" — eat sessions started; and
  /// "dining.neighbor_hungry_eats" — eats granted while ≥1 neighbor was
  /// already hungry, one count per such neighbor (each is one overtake
  /// opportunity, the quantity ◇k-BW / P4 bounds per session). The
  /// registry must outlive the harness's use of it.
  void attach_metrics(obs::MetricsRegistry& reg);

 private:
  void on_diner_event(Diner& d, TraceEventKind kind);
  void schedule_next_hunger(Diner* d, sim::Time delay);

  sim::Simulator& sim_;
  const graph::ConflictGraph& graph_;
  HarnessOptions opt_;
  sim::Rng rng_;
  Trace trace_;
  std::vector<Diner*> diners_;  // in managed order
  std::vector<Diner*> by_id_;   // indexed by ProcessId
  std::function<void(sim::ProcessId)> eat_hook_;
  std::function<void(sim::ProcessId)> exit_hook_;
  std::unordered_set<sim::ProcessId> think_forever_;
  sim::Time hunger_deadline_ = -1;  ///< -1 = unlimited
  // Telemetry handles (null until attach_metrics) + the hungry-since
  // clock backing the latency histogram and the P4 overtake counter.
  obs::Histogram* hungry_latency_ = nullptr;
  obs::Counter* meals_ = nullptr;
  obs::Counter* neighbor_hungry_eats_ = nullptr;
  std::vector<sim::Time> hungry_since_;
};

}  // namespace ekbd::dining
