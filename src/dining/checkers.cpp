#include "dining/checkers.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ekbd::dining {

using ekbd::graph::ConflictGraph;

void DynamicAdjacency::apply(const TraceEvent& e) {
  if (e.kind != TraceEventKind::kEdgeAdded && e.kind != TraceEventKind::kEdgeRemoved) {
    return;
  }
  const ProcessId a = e.process;
  const ProcessId b = e.peer;
  if (a == b || a == ekbd::sim::kNoProcess || b == ekbd::sim::kNoProcess) return;
  const bool is_static = graph_->adjacent(a, b);
  if (e.kind == TraceEventKind::kEdgeAdded) {
    if (is_static) {
      removed_.erase(key(a, b));
    } else {
      extra_[a].insert(b);
      extra_[b].insert(a);
    }
  } else {
    if (is_static) {
      removed_.insert(key(a, b));
    } else {
      extra_[a].erase(b);
      extra_[b].erase(a);
    }
  }
}

bool DynamicAdjacency::adjacent(ProcessId a, ProcessId b) const {
  if (graph_->adjacent(a, b)) return removed_.count(key(a, b)) == 0;
  const auto it = extra_.find(a);
  return it != extra_.end() && it->second.count(b) != 0;
}

std::size_t ExclusionReport::violations_after(Time t) const {
  std::size_t n = 0;
  for (const auto& v : violations) {
    if (v.at > t) ++n;
  }
  return n;
}

ExclusionReport check_exclusion(const Trace& trace, const ConflictGraph& g) {
  ExclusionReport report;
  DynamicAdjacency adj(g);
  std::unordered_set<ProcessId> eating;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEventKind::kStartEating:
        adj.for_each_neighbor(e.process, [&](ProcessId q) {
          if (eating.count(q) != 0) {
            report.violations.push_back(ExclusionViolation{e.at, e.process, q});
          }
        });
        eating.insert(e.process);
        break;
      case TraceEventKind::kStopEating:
      case TraceEventKind::kCrashed:
        eating.erase(e.process);
        break;
      default:
        adj.apply(e);  // only the edge-churn kinds change anything
        break;
    }
  }
  return report;
}

WaitFreedomReport check_wait_freedom(const Trace& trace,
                                     const std::vector<Time>& crash_times,
                                     Time starvation_horizon) {
  WaitFreedomReport report;
  std::vector<double> responses;
  std::unordered_set<ProcessId> starving_set;

  for (const HungrySession& s : hungry_sessions(trace)) {
    ++report.sessions_total;
    const bool correct =
        static_cast<std::size_t>(s.process) >= crash_times.size() ||
        crash_times[static_cast<std::size_t>(s.process)] < 0;
    if (s.completed()) {
      ++report.sessions_completed;
      if (correct) responses.push_back(static_cast<double>(s.response_time()));
    } else if (s.crashed_during) {
      ++report.sessions_crashed;
    } else if (correct && s.ended - s.became_hungry >= starvation_horizon) {
      starving_set.insert(s.process);
    }
  }
  report.starving.assign(starving_set.begin(), starving_set.end());
  std::sort(report.starving.begin(), report.starving.end());
  report.response = ekbd::util::summarize(responses);
  return report;
}

std::vector<OvertakeObservation> overtake_census(const Trace& trace, const ConflictGraph& g) {
  struct OpenSession {
    Time start = 0;
    std::unordered_map<ProcessId, int> eats;  // neighbor -> count
  };
  std::unordered_map<ProcessId, OpenSession> open;
  std::vector<OvertakeObservation> census;

  auto close = [&](ProcessId p) {
    auto it = open.find(p);
    if (it == open.end()) return;
    for (ProcessId j : g.neighbors(p)) {
      OvertakeObservation obs;
      obs.waiter = p;
      obs.eater = j;
      obs.session_start = it->second.start;
      auto cit = it->second.eats.find(j);
      obs.count = cit == it->second.eats.end() ? 0 : cit->second;
      census.push_back(obs);
    }
    open.erase(it);
  };

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEventKind::kBecameHungry:
        open[e.process] = OpenSession{e.at, {}};
        break;
      case TraceEventKind::kStartEating:
        // The eater's own wait is over; then it counts as one more
        // overtake for every neighbor still waiting.
        close(e.process);
        for (ProcessId q : g.neighbors(e.process)) {
          auto it = open.find(q);
          if (it != open.end()) ++it->second.eats[e.process];
        }
        break;
      case TraceEventKind::kCrashed:
        close(e.process);
        break;
      default:
        break;
    }
  }
  // Sessions still hungry at the horizon produced valid observations too.
  std::vector<ProcessId> leftovers;
  leftovers.reserve(open.size());
  for (const auto& [p, s] : open) leftovers.push_back(p);
  std::sort(leftovers.begin(), leftovers.end());
  for (ProcessId p : leftovers) close(p);

  std::stable_sort(census.begin(), census.end(),
                   [](const OvertakeObservation& a, const OvertakeObservation& b) {
                     return a.session_start < b.session_start;
                   });
  return census;
}

int max_overtakes(const std::vector<OvertakeObservation>& census, Time after) {
  int best = 0;
  for (const auto& obs : census) {
    if (obs.session_start >= after) best = std::max(best, obs.count);
  }
  return best;
}

Time k_bound_establishment(const std::vector<OvertakeObservation>& census, int k) {
  Time last_violation_start = -1;
  for (const auto& obs : census) {
    if (obs.count > k) last_violation_start = std::max(last_violation_start, obs.session_start);
  }
  return last_violation_start < 0 ? 0 : last_violation_start + 1;
}

ConcurrencyReport concurrency_profile(const Trace& trace, const ConflictGraph& g) {
  ConcurrencyReport report;
  std::unordered_set<ProcessId> eating;
  Time prev = 0;
  double weighted = 0.0;
  const Time horizon = trace.end_time();
  for (const TraceEvent& e : trace.events()) {
    weighted += static_cast<double>(eating.size()) * static_cast<double>(e.at - prev);
    prev = e.at;
    switch (e.kind) {
      case TraceEventKind::kStartEating:
        for (ProcessId q : eating) {
          if (!g.adjacent(e.process, q)) ++report.nonneighbor_overlaps;
        }
        eating.insert(e.process);
        report.max_concurrent_eaters =
            std::max(report.max_concurrent_eaters, static_cast<int>(eating.size()));
        break;
      case TraceEventKind::kStopEating:
      case TraceEventKind::kCrashed:
        eating.erase(e.process);
        break;
      default:
        break;
    }
  }
  if (horizon > prev) {
    weighted += static_cast<double>(eating.size()) * static_cast<double>(horizon - prev);
  }
  if (horizon > 0) report.mean_concurrent_eaters = weighted / static_cast<double>(horizon);
  return report;
}

std::uint64_t hungry_at_end_mask(const Trace& trace) {
  std::uint64_t mask = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.process < 0 || e.process >= 64) continue;
    const std::uint64_t bit = 1ULL << e.process;
    switch (e.kind) {
      case TraceEventKind::kBecameHungry:
        mask |= bit;
        break;
      case TraceEventKind::kStartEating:
      case TraceEventKind::kCrashed:
        mask &= ~bit;
        break;
      default:
        break;
    }
  }
  return mask;
}

}  // namespace ekbd::dining
