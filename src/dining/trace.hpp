/// \file trace.hpp
/// Execution trace: the totally ordered log of scheduling events.
///
/// The simulator executes one event at a time, so appending during the run
/// yields a log already sorted by (time, execution order) — the exact
/// linearization the paper's proofs quantify over. All property checkers
/// (checkers.hpp) consume a Trace, a ConflictGraph and crash information,
/// which makes them unit-testable on hand-written traces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dining/types.hpp"

namespace ekbd::dining {

struct TraceEvent {
  Time at = 0;
  ProcessId process = ekbd::sim::kNoProcess;
  TraceEventKind kind = TraceEventKind::kBecameHungry;
  /// Second endpoint for the edge-churn kinds (kEdgeAdded/kEdgeRemoved);
  /// kNoProcess for every scheduling event.
  ProcessId peer = ekbd::sim::kNoProcess;
};

/// Streaming consumer of trace events: sees each event as it is
/// recorded, in trace order (the online exclusion monitor rides on
/// this). Observers observe — they must not record into the trace.
class TraceObserver {
 public:
  virtual ~TraceObserver() = default;
  virtual void on_trace_event(const TraceEvent& ev) = 0;
};

/// One completed (or still-open) hungry→eating episode of one process,
/// extracted from a Trace by `hungry_sessions`.
struct HungrySession {
  ProcessId process = ekbd::sim::kNoProcess;
  Time became_hungry = 0;
  Time entered_doorway = -1;  ///< -1 if never entered
  Time started_eating = -1;   ///< -1 if never scheduled (open or starved)
  Time ended = -1;            ///< eat start, crash time, or trace horizon
  bool crashed_during = false;

  [[nodiscard]] bool completed() const { return started_eating >= 0; }
  /// Waiting time (hunger to eat) for completed sessions.
  [[nodiscard]] Time response_time() const { return started_eating - became_hungry; }
};

class Trace {
 public:
  void record(Time at, ProcessId p, TraceEventKind kind,
              ProcessId peer = ekbd::sim::kNoProcess);

  /// Pre-size the event vector (large runs; see rt::Recorder::reserve_trace).
  void reserve(std::size_t events) { events_.reserve(events); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Horizon of the run this trace was recorded over (set by the harness;
  /// defaults to the last event time). Open hungry sessions are clipped
  /// here.
  void set_end_time(Time t) { end_time_ = t; }
  [[nodiscard]] Time end_time() const;

  /// Count of events of one kind for one process (or all, p = kNoProcess).
  [[nodiscard]] std::size_t count(TraceEventKind kind,
                                  ProcessId p = ekbd::sim::kNoProcess) const;

  /// Human-readable dump (debugging aid for failed property checks).
  [[nodiscard]] std::string to_string(std::size_t max_events = 200) const;

  /// Attach (or detach with nullptr) a streaming observer. Not owned.
  void set_observer(TraceObserver* obs) { observer_ = obs; }

 private:
  std::vector<TraceEvent> events_;
  Time end_time_ = -1;
  TraceObserver* observer_ = nullptr;
};

/// Extract every hungry session in the trace, in session-start order.
/// Sessions still hungry at the horizon are returned with
/// started_eating = -1 and ended = end_time (or crash time).
std::vector<HungrySession> hungry_sessions(const Trace& trace);

}  // namespace ekbd::dining
