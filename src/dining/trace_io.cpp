#include "dining/trace_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ekbd::dining {

namespace {

const char* kind_token(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kBecameHungry: return "hungry";
    case TraceEventKind::kEnteredDoorway: return "doorway";
    case TraceEventKind::kStartEating: return "eat";
    case TraceEventKind::kStopEating: return "exit";
    case TraceEventKind::kCrashed: return "crash";
    case TraceEventKind::kNetDrop: return "netdrop";
    case TraceEventKind::kNetDup: return "netdup";
    case TraceEventKind::kPartitionCut: return "cut";
    case TraceEventKind::kPartitionHeal: return "heal";
    case TraceEventKind::kRecovered: return "recover";
    case TraceEventKind::kEdgeAdded: return "edge+";
    case TraceEventKind::kEdgeRemoved: return "edge-";
  }
  return "?";
}

bool parse_kind(const std::string& s, TraceEventKind& out) {
  if (s == "hungry") out = TraceEventKind::kBecameHungry;
  else if (s == "doorway") out = TraceEventKind::kEnteredDoorway;
  else if (s == "eat") out = TraceEventKind::kStartEating;
  else if (s == "exit") out = TraceEventKind::kStopEating;
  else if (s == "crash") out = TraceEventKind::kCrashed;
  else if (s == "netdrop") out = TraceEventKind::kNetDrop;
  else if (s == "netdup") out = TraceEventKind::kNetDup;
  else if (s == "cut") out = TraceEventKind::kPartitionCut;
  else if (s == "heal") out = TraceEventKind::kPartitionHeal;
  else if (s == "recover") out = TraceEventKind::kRecovered;
  else if (s == "edge+") out = TraceEventKind::kEdgeAdded;
  else if (s == "edge-") out = TraceEventKind::kEdgeRemoved;
  else return false;
  return true;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::invalid_argument("trace_io: line " + std::to_string(line_no) + ": " + why);
}

/// Extract `"key":<integer>` from a JSON-ish line; false if absent.
bool find_int(const std::string& line, const std::string& key, long long& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtoll(start, &end, 10);
  return end != start;
}

/// Extract `"key":"<token>"`; false if absent.
bool find_string(const std::string& line, const std::string& key, std::string& out) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  out = line.substr(start, stop - start);
  return true;
}

}  // namespace

std::string to_jsonl(const Trace& trace) {
  std::string out;
  out.reserve(trace.size() * 32 + 32);
  char buf[96];
  for (const TraceEvent& e : trace.events()) {
    if (e.peer == ekbd::sim::kNoProcess) {
      std::snprintf(buf, sizeof(buf), "{\"t\":%lld,\"p\":%d,\"e\":\"%s\"}\n",
                    static_cast<long long>(e.at), e.process, kind_token(e.kind));
    } else {
      std::snprintf(buf, sizeof(buf), "{\"t\":%lld,\"p\":%d,\"e\":\"%s\",\"q\":%d}\n",
                    static_cast<long long>(e.at), e.process, kind_token(e.kind), e.peer);
    }
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "{\"end_time\":%lld}\n",
                static_cast<long long>(trace.end_time()));
  out += buf;
  return out;
}

Trace from_jsonl(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    long long end_time = 0;
    if (find_int(line, "end_time", end_time)) {
      trace.set_end_time(end_time);
      saw_end = true;
      continue;
    }
    long long t = 0;
    long long p = 0;
    std::string kind_str;
    if (!find_int(line, "t", t)) fail(line_no, "missing \"t\"");
    if (!find_int(line, "p", p)) fail(line_no, "missing \"p\"");
    if (!find_string(line, "e", kind_str)) fail(line_no, "missing \"e\"");
    TraceEventKind kind;
    if (!parse_kind(kind_str, kind)) fail(line_no, "unknown event kind '" + kind_str + "'");
    if (!trace.empty() && t < trace.events().back().at) {
      fail(line_no, "events out of chronological order");
    }
    long long peer = ekbd::sim::kNoProcess;
    find_int(line, "q", peer);  // optional: only edge-churn events carry it
    trace.record(t, static_cast<ProcessId>(p), kind, static_cast<ProcessId>(peer));
  }
  (void)saw_end;  // optional: traces without a horizon line clip at the last event
  return trace;
}

bool write_jsonl_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_jsonl(trace);
  return static_cast<bool>(out);
}

Trace read_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("trace_io: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_jsonl(buf.str());
}

}  // namespace ekbd::dining
