/// \file checkers.hpp
/// Property checkers for the paper's theorems.
///
/// Each checker is a pure function of (Trace, ConflictGraph [, crash
/// info]) and returns a report struct; the test suite asserts on reports
/// from real executions, and also feeds hand-crafted good *and bad* traces
/// to prove the checkers themselves can detect violations.
///
///  * `check_exclusion`       — Theorem 1 (◇WX): overlapping-eating pairs
///    of live neighbors, and when the last one happened.
///  * `check_wait_freedom`    — Theorem 2: every correct hungry process
///    eventually eats; reports starving processes and response times.
///  * `overtake_census` etc.  — Theorem 3 (◇2-BW): for every hungry
///    session of i and every neighbor j, how many times j started eating
///    while i stayed continuously hungry.
///
/// Quiescence (§7) and the channel bound (§7) are checked directly against
/// `sim::Network` statistics (see harness/bench code) since they are
/// properties of message traffic, not of the scheduling trace.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "dining/trace.hpp"
#include "graph/graph.hpp"
#include "util/stats.hpp"

namespace ekbd::dining {

// ------------------------------------------------------ dynamic adjacency

/// The conflict graph as of a point *inside* a trace: the initial graph
/// overlaid with every kEdgeAdded / kEdgeRemoved event applied so far.
///
/// Churn scenarios never mutate the ConflictGraph object the checkers and
/// monitors hold — the initial graph plus the trace IS the authoritative
/// edge history. Both `check_exclusion` (post-hoc) and the online
/// ExclusionMonitor interpret it through this one helper, so their
/// verdicts stay elementwise identical by construction.
class DynamicAdjacency {
 public:
  explicit DynamicAdjacency(const ekbd::graph::ConflictGraph& g) : graph_(&g) {}

  /// Apply one trace event (only the edge kinds change anything).
  void apply(const TraceEvent& e);

  /// True iff {a, b} is an edge of the current overlaid graph.
  [[nodiscard]] bool adjacent(ProcessId a, ProcessId b) const;

  /// Visit the current neighbors of `p` in deterministic (sorted static
  /// neighbors first, then sorted churned-in extras) order.
  template <typename Fn>
  void for_each_neighbor(ProcessId p, Fn&& fn) const {
    for (ProcessId q : graph_->neighbors(p)) {
      if (removed_.count(key(p, q)) == 0) fn(q);
    }
    const auto it = extra_.find(p);
    if (it != extra_.end()) {
      for (ProcessId q : it->second) fn(q);
    }
  }

  [[nodiscard]] const ekbd::graph::ConflictGraph& initial() const { return *graph_; }

 private:
  static std::uint64_t key(ProcessId a, ProcessId b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (lo << 32) | hi;
  }

  const ekbd::graph::ConflictGraph* graph_;
  std::set<std::uint64_t> removed_;          ///< static edges currently cut
  std::map<ProcessId, std::set<ProcessId>> extra_;  ///< churned-in edges
};

// ------------------------------------------------------------- exclusion

/// One scheduling mistake: `a` started eating at `at` while its live
/// neighbor `b` was already eating.
struct ExclusionViolation {
  Time at = 0;
  ProcessId a = ekbd::sim::kNoProcess;
  ProcessId b = ekbd::sim::kNoProcess;
};

struct ExclusionReport {
  std::vector<ExclusionViolation> violations;
  /// Time of the last violation, or -1 if the run is violation-free.
  [[nodiscard]] Time last_violation() const {
    return violations.empty() ? -1 : violations.back().at;
  }
  /// Number of violations occurring strictly after `t`.
  [[nodiscard]] std::size_t violations_after(Time t) const;
};

/// Scan the trace for pairs of adjacent processes eating simultaneously.
/// Each violation is counted once, at the moment the overlap begins.
ExclusionReport check_exclusion(const Trace& trace, const ekbd::graph::ConflictGraph& g);

// ---------------------------------------------------------- wait-freedom

struct WaitFreedomReport {
  std::size_t sessions_total = 0;      ///< hungry sessions observed
  std::size_t sessions_completed = 0;  ///< ended in eating
  std::size_t sessions_crashed = 0;    ///< owner crashed while hungry
  /// Correct processes still hungry at the horizon whose wait exceeded
  /// `starvation_horizon` — the empirical starvation signal.
  std::vector<ProcessId> starving;
  /// Response times (hungry → eat) of completed sessions of processes that
  /// never crashed.
  ekbd::util::Summary response;

  [[nodiscard]] bool wait_free() const { return starving.empty(); }
};

/// \param crash_times      per-process crash time, -1 if correct
/// \param starvation_horizon a process still hungry at the end, waiting
///        longer than this, is declared starving. Pick ≫ the typical
///        response time (benches use ~20% of the run length).
WaitFreedomReport check_wait_freedom(const Trace& trace,
                                     const std::vector<Time>& crash_times,
                                     Time starvation_horizon);

// ------------------------------------------------------ bounded waiting

/// One fairness observation: during the hungry session of `waiter` that
/// began at `session_start`, neighbor `eater` started eating `count`
/// times before the waiter did (or before the session was cut short).
struct OvertakeObservation {
  ProcessId waiter = ekbd::sim::kNoProcess;
  ProcessId eater = ekbd::sim::kNoProcess;
  Time session_start = 0;
  int count = 0;
};

/// All (session, neighbor) overtake counts in the trace.
std::vector<OvertakeObservation> overtake_census(const Trace& trace,
                                                 const ekbd::graph::ConflictGraph& g);

/// Largest overtake count among observations whose session starts at or
/// after `after` (0 = whole run).
int max_overtakes(const std::vector<OvertakeObservation>& census, Time after = 0);

/// Earliest time T such that every observation with session_start >= T has
/// count <= k: the empirically observed establishment point of ◇k-BW
/// (last violating session start + 1). Returns 0 if the whole run is
/// k-bounded.
Time k_bound_establishment(const std::vector<OvertakeObservation>& census, int k);

// ------------------------------------------------------------ concurrency

/// How *distributed* the daemon actually is: a correct but useless daemon
/// could schedule one process at a time globally. A dining-based daemon
/// must let non-conflicting (non-adjacent) processes eat concurrently.
struct ConcurrencyReport {
  int max_concurrent_eaters = 0;
  /// Time-weighted average number of simultaneous eaters over the run.
  double mean_concurrent_eaters = 0.0;
  /// Overlap-begin events between NON-adjacent processes (harmless
  /// concurrency the daemon granted).
  std::uint64_t nonneighbor_overlaps = 0;
};

ConcurrencyReport concurrency_profile(const Trace& trace, const ekbd::graph::ConflictGraph& g);

// ----------------------------------------------------------- starvation

/// Bit p set iff process p is hungry (became hungry, has neither eaten
/// nor crashed since) at the end of the trace — the post-hoc face of the
/// liveness checker's hungry-forever predicate. A fair-lasso
/// counterexample unrolled for any number of laps must keep its starving
/// process in this mask; the cross-check tests assert exactly that.
std::uint64_t hungry_at_end_mask(const Trace& trace);

}  // namespace ekbd::dining
