/// \file trace_io.hpp
/// Trace persistence: JSON-lines export/import.
///
/// One event per line — `{"t":1234,"p":3,"e":"eat"}` — so traces stream
/// through standard tooling (jq, grep, awk) and runs can be archived and
/// re-checked later: every property checker is a pure function of a Trace,
/// so an imported trace supports exactly the same analysis as a live one.
/// `run_scenario --dump FILE` writes this format.
#pragma once

#include <string>

#include "dining/trace.hpp"

namespace ekbd::dining {

/// Serialize to JSON lines (final line carries the trace horizon:
/// `{"end_time":N}`).
[[nodiscard]] std::string to_jsonl(const Trace& trace);

/// Parse traces produced by `to_jsonl`. Throws std::invalid_argument on
/// malformed input (with the offending line number).
[[nodiscard]] Trace from_jsonl(const std::string& text);

/// Write to a file; returns false on I/O failure.
bool write_jsonl_file(const Trace& trace, const std::string& path);

/// Read from a file; throws std::invalid_argument on parse or I/O errors.
[[nodiscard]] Trace read_jsonl_file(const std::string& path);

}  // namespace ekbd::dining
