/// \file diner.hpp
/// Common surface of every dining algorithm in the repository.
///
/// `Diner` extends `sim::Actor` with:
///  * the thinking/hungry/eating state machine and doorway flag, with an
///    event callback the harness uses to record the Trace and to drive
///    eat durations / next hunger;
///  * weak-fairness pumping: while hungry, a periodic timer re-evaluates
///    the algorithm's internal guards (`pump()`), so guards that become
///    true without a message arriving — e.g. a ◇P₁ suspicion of a crashed
///    neighbor — are eventually acted on, as the paper's model requires;
///  * optional hosting of an embedded heartbeat ◇P₁ module (fd/heartbeat):
///    the module shares this process's identity and crashes with it.
///
/// Concrete algorithms (core::WaitFreeDiner and the baselines) implement
/// `become_hungry`, `finish_eating`, `pump` and `diner_message`.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dining/types.hpp"
#include "fd/heartbeat.hpp"
#include "sim/actor.hpp"

namespace ekbd::dining {

class Diner : public ekbd::sim::Actor, public ekbd::fd::ModuleHost {
 public:
  /// Invoked on every observable transition of this diner.
  using EventCallback = std::function<void(Diner&, TraceEventKind)>;

  /// Invoked on conflict-edge churn (kEdgeAdded / kEdgeRemoved) with the
  /// other endpoint. Separate from EventCallback so the nine existing
  /// harnesses that only care about scheduling events stay untouched.
  using EdgeEventCallback = std::function<void(Diner&, TraceEventKind, ProcessId)>;

  [[nodiscard]] DinerState state() const { return state_; }
  [[nodiscard]] bool thinking() const { return state_ == DinerState::kThinking; }
  [[nodiscard]] bool hungry() const { return state_ == DinerState::kHungry; }
  [[nodiscard]] bool eating() const { return state_ == DinerState::kEating; }

  /// Is the process inside the asynchronous doorway? Algorithms without a
  /// doorway report false.
  [[nodiscard]] virtual bool inside_doorway() const { return false; }

  [[nodiscard]] const std::vector<ProcessId>& diner_neighbors() const { return neighbors_; }

  /// Transition thinking → hungry (Action 1). Called by the harness; the
  /// implementation starts resource acquisition.
  virtual void become_hungry() = 0;

  /// Transition eating → thinking (Action 10). Called by the harness when
  /// the eat duration elapses; the implementation releases deferred
  /// resources.
  virtual void finish_eating() = 0;

  /// Persistent local dining state in bits — the quantity bounded by the
  /// paper's §7 space analysis. Excludes transient message buffers and the
  /// failure-detector module.
  [[nodiscard]] virtual std::size_t state_bits() const { return 0; }

  void set_event_callback(EventCallback cb) { callback_ = std::move(cb); }
  void set_edge_event_callback(EdgeEventCallback cb) { edge_callback_ = std::move(cb); }

  /// How often internal guards are re-evaluated while hungry (weak
  /// fairness granularity).
  void set_recheck_period(Time p) { recheck_period_ = p; }
  [[nodiscard]] Time recheck_period() const { return recheck_period_; }

  // -- embedded failure-detector module hosting --------------------------

  /// Embed a failure-detector module (heartbeat, ping-pong, ...) in this
  /// process. It shares the process identity and crashes with it. Must be
  /// called before the simulation starts.
  void host_fd_module(std::unique_ptr<ekbd::fd::FdModule> module) {
    fd_module_ = std::move(module);
  }
  [[nodiscard]] ekbd::fd::FdModule* fd_module() { return fd_module_.get(); }
  [[nodiscard]] const ekbd::fd::FdModule* fd_module() const { return fd_module_.get(); }

  /// Typed view of the hosted module when it is a heartbeat module
  /// (nullptr otherwise) — instrumentation convenience.
  [[nodiscard]] const ekbd::fd::HeartbeatModule* heartbeat_module() const {
    return dynamic_cast<const ekbd::fd::HeartbeatModule*>(fd_module_.get());
  }

  // -- fd::ModuleHost ----------------------------------------------------

  void module_send(ProcessId to, ekbd::sim::Payload payload,
                   ekbd::sim::MsgLayer layer) override {
    send(to, payload, layer);
  }
  ekbd::sim::TimerId module_set_timer(Time delay) override { return set_timer(delay); }
  [[nodiscard]] Time module_now() const override { return now(); }
  [[nodiscard]] ProcessId module_id() const override { return id(); }

 protected:
  explicit Diner(std::vector<ProcessId> neighbors) : neighbors_(std::move(neighbors)) {}

  /// Re-evaluate internal guards (Actions 5, 9 and their analogues). The
  /// base class calls this periodically while the diner is hungry.
  virtual void pump() = 0;

  /// Algorithm-specific message handling (after heartbeat filtering).
  virtual void diner_message(const ekbd::sim::Message& m) = 0;

  /// Algorithm-specific timers (after pump/heartbeat filtering).
  virtual void diner_timer(ekbd::sim::TimerId id) { (void)id; }

  /// Algorithm-specific startup (fork placement etc.).
  virtual void diner_start() {}

  /// Algorithm-specific rejoin (edge-state resynchronization). Runs after
  /// the base class has reset the scheduling state to thinking and
  /// restarted the hosted detector module.
  virtual void diner_recover() {}

  /// State transitions; fire the harness callback and keep the embedded
  /// detector's demand hint in sync (suspicion is only consulted while
  /// hungry — Actions 5 and 9).
  void set_state(DinerState next) {
    if (state_ == next) return;
    const DinerState prev = state_;
    state_ = next;
    if (fd_module_) {
      if (next == DinerState::kHungry) {
        fd_module_->set_watching(*this, true);
      } else if (prev == DinerState::kHungry) {
        fd_module_->set_watching(*this, false);
      }
    }
    if (next == DinerState::kHungry) {
      emit(TraceEventKind::kBecameHungry);
      arm_pump();
    } else if (next == DinerState::kEating) {
      emit(TraceEventKind::kStartEating);
      on_enter_eating();
    } else if (prev == DinerState::kEating) {
      emit(TraceEventKind::kStopEating);
      on_exit_eating();
    }
  }

  /// Subclass hooks around the critical section (e.g. the drinking layer
  /// releases its dining session the moment it can drink). Called after
  /// the transition is visible and the harness callback has fired.
  virtual void on_enter_eating() {}
  virtual void on_exit_eating() {}

  /// Record passage through the doorway (Action 5).
  void note_enter_doorway() { emit(TraceEventKind::kEnteredDoorway); }

  /// Record a completed edge change (dynamic-graph algorithms only).
  void note_edge_event(TraceEventKind kind, ProcessId peer) {
    if (edge_callback_) edge_callback_(*this, kind, peer);
  }

  /// Mutable neighbor list for dynamic-graph algorithms. The base class
  /// never iterates it outside a handler, so a subclass may grow/shrink it
  /// between its own handlers.
  [[nodiscard]] std::vector<ProcessId>& mutable_neighbors() { return neighbors_; }

  // -- sim::Actor -------------------------------------------------------

  void on_start() final {
    if (fd_module_) fd_module_->start(*this);
    diner_start();
  }

  void on_message(const ekbd::sim::Message& m) final {
    if (fd_module_ && fd_module_->handle_message(*this, m)) return;
    diner_message(m);
  }

  void on_timer(ekbd::sim::TimerId id) final {
    if (id == pump_timer_) {
      pump_timer_ = 0;
      if (hungry()) {
        pump();
        arm_pump();
      }
      return;
    }
    if (fd_module_ && fd_module_->handle_timer(*this, id)) return;
    diner_timer(id);
  }

  void on_crash() final { emit(TraceEventKind::kCrashed); }

  void on_recover() final {
    // Back to thinking *directly* — no set_state: the crash already closed
    // any open session in the trace, and a spurious kStopEating here would
    // desynchronize the checkers. The pump timer died with the old
    // incarnation; hungry will re-arm it.
    state_ = DinerState::kThinking;
    pump_timer_ = 0;
    if (fd_module_) fd_module_->start(*this);
    emit(TraceEventKind::kRecovered);
    diner_recover();
  }

 private:
  void emit(TraceEventKind kind) {
    if (callback_) callback_(*this, kind);
  }

  void arm_pump() {
    if (pump_timer_ == 0 && hungry()) pump_timer_ = set_timer(recheck_period_);
  }

  std::vector<ProcessId> neighbors_;
  EventCallback callback_;
  EdgeEventCallback edge_callback_;
  std::unique_ptr<ekbd::fd::FdModule> fd_module_;
  DinerState state_ = DinerState::kThinking;
  ekbd::sim::TimerId pump_timer_ = 0;
  Time recheck_period_ = 25;
};

}  // namespace ekbd::dining
