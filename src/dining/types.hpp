/// \file types.hpp
/// Shared vocabulary of the dining-philosophers layer.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace ekbd::dining {

using ekbd::sim::ProcessId;
using ekbd::sim::Time;

/// The three abstract phases of a diner (paper §2): executing
/// independently, requesting the shared resources, and inside the critical
/// section.
enum class DinerState : std::uint8_t {
  kThinking,
  kHungry,
  kEating,
};

[[nodiscard]] std::string to_string(DinerState s);

/// Kinds of observable scheduling events; the property checkers for
/// Theorems 1–3 are pure functions of streams of these.
enum class TraceEventKind : std::uint8_t {
  kBecameHungry,
  kEnteredDoorway,
  kStartEating,
  kStopEating,
  kCrashed,
  // Network-fault records (net::LinkFaultModel): not scheduling events —
  // every checker ignores them — but kept in the trace so a verdict can be
  // read next to the fault schedule that produced it.
  kNetDrop,        ///< adversary lost a physical message (process = sender)
  kNetDup,         ///< adversary duplicated a physical message (process = sender)
  kPartitionCut,   ///< a scheduled partition/edge cut activates (process = kNoProcess)
  kPartitionHeal,  ///< a scheduled partition/edge cut heals (process = kNoProcess)
  // Dynamic-graph records (load harness). kRecovered marks a crashed
  // process rejoining; the edge records mark conflict-graph churn taking
  // effect (process = the endpoint that completed the change, peer = the
  // other endpoint). Checkers replay them to track the live graph.
  kRecovered,    ///< a crashed process completed its rejoin (process = who)
  kEdgeAdded,    ///< conflict edge {process, peer} is now live on both ends
  kEdgeRemoved,  ///< conflict edge {process, peer} dropped (initiator side)
};

[[nodiscard]] std::string to_string(TraceEventKind k);

}  // namespace ekbd::dining
