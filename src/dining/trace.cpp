#include "dining/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_map>

namespace ekbd::dining {

std::string to_string(DinerState s) {
  switch (s) {
    case DinerState::kThinking: return "thinking";
    case DinerState::kHungry: return "hungry";
    case DinerState::kEating: return "eating";
  }
  return "?";
}

std::string to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kBecameHungry: return "hungry";
    case TraceEventKind::kEnteredDoorway: return "doorway";
    case TraceEventKind::kStartEating: return "eat";
    case TraceEventKind::kStopEating: return "exit";
    case TraceEventKind::kCrashed: return "crash";
    case TraceEventKind::kNetDrop: return "netdrop";
    case TraceEventKind::kNetDup: return "netdup";
    case TraceEventKind::kPartitionCut: return "cut";
    case TraceEventKind::kPartitionHeal: return "heal";
    case TraceEventKind::kRecovered: return "recover";
    case TraceEventKind::kEdgeAdded: return "edge+";
    case TraceEventKind::kEdgeRemoved: return "edge-";
  }
  return "?";
}

void Trace::record(Time at, ProcessId p, TraceEventKind kind, ProcessId peer) {
  assert(events_.empty() || at >= events_.back().at);
  events_.push_back(TraceEvent{at, p, kind, peer});
  if (observer_ != nullptr) observer_->on_trace_event(events_.back());
}

Time Trace::end_time() const {
  if (end_time_ >= 0) return end_time_;
  return events_.empty() ? 0 : events_.back().at;
}

std::size_t Trace::count(TraceEventKind kind, ProcessId p) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind && (p == ekbd::sim::kNoProcess || e.process == p)) ++n;
  }
  return n;
}

std::string Trace::to_string(std::size_t max_events) const {
  std::string out;
  std::size_t shown = 0;
  for (const TraceEvent& e : events_) {
    if (shown++ >= max_events) {
      out += "... (" + std::to_string(events_.size() - max_events) + " more)\n";
      break;
    }
    char buf[80];
    std::snprintf(buf, sizeof(buf), "t=%-8lld p%-3d %s\n",
                  static_cast<long long>(e.at), e.process,
                  dining::to_string(e.kind).c_str());
    out += buf;
  }
  return out;
}

std::vector<HungrySession> hungry_sessions(const Trace& trace) {
  std::vector<HungrySession> out;
  // Open session index per process (index into `out`), -1 if none.
  std::unordered_map<ProcessId, std::size_t> open;

  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceEventKind::kBecameHungry: {
        HungrySession s;
        s.process = e.process;
        s.became_hungry = e.at;
        open[e.process] = out.size();
        out.push_back(s);
        break;
      }
      case TraceEventKind::kEnteredDoorway: {
        auto it = open.find(e.process);
        if (it != open.end()) out[it->second].entered_doorway = e.at;
        break;
      }
      case TraceEventKind::kStartEating: {
        auto it = open.find(e.process);
        if (it != open.end()) {
          out[it->second].started_eating = e.at;
          out[it->second].ended = e.at;
          open.erase(it);
        }
        break;
      }
      case TraceEventKind::kCrashed: {
        auto it = open.find(e.process);
        if (it != open.end()) {
          out[it->second].ended = e.at;
          out[it->second].crashed_during = true;
          open.erase(it);
        }
        break;
      }
      case TraceEventKind::kStopEating:
      case TraceEventKind::kNetDrop:
      case TraceEventKind::kNetDup:
      case TraceEventKind::kPartitionCut:
      case TraceEventKind::kPartitionHeal:
      // A recovered process restarts thinking: its next hungry session is
      // a fresh one, so rejoin (like churn) needs no session bookkeeping.
      case TraceEventKind::kRecovered:
      case TraceEventKind::kEdgeAdded:
      case TraceEventKind::kEdgeRemoved:
        break;
    }
  }
  // Clip sessions still hungry at the horizon.
  const Time horizon = trace.end_time();
  for (auto& [p, idx] : open) out[idx].ended = horizon;

  std::stable_sort(out.begin(), out.end(), [](const HungrySession& a, const HungrySession& b) {
    return a.became_hungry < b.became_hungry;
  });
  return out;
}

}  // namespace ekbd::dining
