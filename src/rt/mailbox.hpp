/// \file mailbox.hpp
/// Bounded MPSC mailboxes for the real-threads runtime.
///
/// Every actor owns one mailbox; any thread may push (its conflict-graph
/// neighbors, the driver, fault injectors), and exactly one thread at a
/// time pops: the holder of the actor's `kRunning` dispatch claim in the
/// sharded executor (rt/runtime.hpp). The claim handoff is a seq_cst
/// store/CAS pair on the actor's state word, so the consumer role may
/// migrate between shard workers — each new consumer sees every prior
/// consumer's cursor and slot recycling. Two implementations behind one
/// interface:
///
///  * `MutexMailbox` — the obviously-correct baseline: a deque under a
///    mutex. Used as the reference in the stress tests and selectable via
///    `MailboxKind::kMutex` to bisect suspected queue bugs.
///  * `MpscRingMailbox` — the fast path: a bounded ring of
///    per-cell-sequenced slots (Vyukov's bounded queue, used MPSC).
///    Producers claim a slot with one CAS on the head ticket and publish
///    the payload with one release store; the consumer pops with plain
///    loads plus one acquire per cell. No locks, no allocation after
///    construction — `sim::Message` is trivially copyable, so a push is a
///    ticket claim plus a memcpy.
///
/// FIFO guarantee: a producer's pushes claim head tickets in program
/// order, and the consumer pops in ticket order — so *per-producer* order
/// is preserved, which is exactly the reliable-FIFO-per-directed-channel
/// assumption of the paper's model (each directed channel has a single
/// producer: the sender's thread).
///
/// Blocking (producer backpressure, consumer parking) deliberately lives
/// in the runtime's worker loop, not here: the queue itself stays
/// wait-free on the fast path and the park/wake handshake needs runtime
/// state (stop flags, timer deadlines) anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "sim/message.hpp"

namespace ekbd::rt {

enum class MailboxKind {
  kLockFree,  ///< MpscRingMailbox (default)
  kMutex,     ///< MutexMailbox baseline
};

[[nodiscard]] inline const char* to_string(MailboxKind k) {
  return k == MailboxKind::kLockFree ? "lockfree" : "mutex";
}

class Mailbox {
 public:
  virtual ~Mailbox() = default;

  /// Enqueue a copy of `m`; false if the mailbox is full (caller retries —
  /// the runtime's push loop yields between attempts).
  virtual bool try_push(const sim::Message& m) = 0;

  /// Dequeue into `out`; false if empty. Single consumer at a time (the
  /// dispatch-claim holder).
  virtual bool try_pop(sim::Message& out) = 0;

  /// Bulk drain: pop up to `max` messages into `out`, returning how many
  /// were popped (0 when empty). Same consumer contract as try_pop. The
  /// ring implementation writes its cursor once per batch instead of once
  /// per message — this is what amortizes the executor's park/wake and
  /// state-machine costs across a burst.
  virtual std::size_t pop_n(sim::Message* out, std::size_t max) = 0;

  /// Conservative "work may be pending" probe for the park/wake handshake:
  /// may report true for an item whose payload is still being published
  /// (the consumer just polls again), but after a producer's push is
  /// complete, a probe that is sequenced after the consumer's
  /// `sleeping = true` store (both seq_cst) is guaranteed to see it —
  /// that pairing is what rules out lost wakeups (see Runtime's loop).
  [[nodiscard]] virtual bool maybe_nonempty() const = 0;

  [[nodiscard]] virtual std::size_t capacity() const = 0;
};

/// Baseline: std::deque under a mutex, capacity-bounded.
class MutexMailbox final : public Mailbox {
 public:
  explicit MutexMailbox(std::size_t capacity) : capacity_(capacity) {}

  bool try_push(const sim::Message& m) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(m);
    return true;
  }

  bool try_pop(sim::Message& out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = items_.front();
    items_.pop_front();
    return true;
  }

  std::size_t pop_n(sim::Message* out, std::size_t max) override {
    // One lock for the whole batch — the baseline's version of the
    // amortization the ring gets from its single cursor store.
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    while (n < max && !items_.empty()) {
      out[n++] = items_.front();
      items_.pop_front();
    }
    return n;
  }

  [[nodiscard]] bool maybe_nonempty() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return !items_.empty();
  }

  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<sim::Message> items_;
};

/// Fast path: bounded MPSC ring with per-cell sequence numbers.
class MpscRingMailbox final : public Mailbox {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpscRingMailbox(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool try_push(const sim::Message& m) override {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Slot free for ticket `pos`: claim it. seq_cst CAS — the claim
        // must be globally ordered before the producer's subsequent
        // `sleeping` probe (lost-wakeup handshake).
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
          cell.msg = m;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh ticket.
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed message: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool try_pop(sim::Message& out) override {
    const std::size_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif < 0) return false;  // not yet published (empty, or mid-publish)
    out = cell.msg;
    // Release the slot for the producer one lap ahead.
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  std::size_t pop_n(sim::Message* out, std::size_t max) override {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t n = 0;
    while (n < max) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) < 0) {
        break;  // next slot not yet published: drained everything visible
      }
      out[n++] = cell.msg;
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
    }
    if (n != 0) tail_.store(pos, std::memory_order_relaxed);
    return n;
  }

  [[nodiscard]] bool maybe_nonempty() const override {
    // seq_cst on the head ticket: pairs with the claim CAS in try_push for
    // the Dekker-style store/load handshake in the worker's park path.
    return head_.load(std::memory_order_seq_cst) !=
           tail_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const override { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    sim::Message msg;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producers' ticket
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer's cursor
};

[[nodiscard]] inline std::unique_ptr<Mailbox> make_mailbox(MailboxKind kind,
                                                           std::size_t capacity) {
  if (kind == MailboxKind::kMutex) return std::make_unique<MutexMailbox>(capacity);
  return std::make_unique<MpscRingMailbox>(capacity);
}

}  // namespace ekbd::rt
