/// \file clock.hpp
/// Wall-clock ↔ tick mapping for the real-threads runtime.
///
/// Protocol code (timers, heartbeat periods, harness think/eat durations)
/// is written in abstract ticks — under the simulator one tick is one
/// unit of virtual time. The rt engine maps one tick to a fixed number of
/// wall-clock nanoseconds (`tick_ns`, default 100 µs), so the *same*
/// parameterization drives both engines: a heartbeat period of 20 ticks is
/// "20 units of virtual time" in sim and 2 ms of real time under rt.
///
/// The clock is rebased at `Runtime::start()` so setup cost never eats
/// into the run horizon; `now_ticks()` is monotonic by construction
/// (steady_clock) and safe to call from any thread.
#pragma once

#include <chrono>
#include <cstdint>

#include "sim/time.hpp"

namespace ekbd::rt {

class TickClock {
 public:
  using WallClock = std::chrono::steady_clock;

  explicit TickClock(std::uint64_t tick_ns = 100'000)
      : tick_ns_(tick_ns == 0 ? 1 : tick_ns), t0_(WallClock::now()) {}

  /// Re-zero the tick origin (called once, just before threads launch).
  void rebase() { t0_ = WallClock::now(); }

  /// Set the tick origin to an *absolute* steady-clock reading (nanoseconds
  /// since the steady epoch, as produced by `epoch_now_ns`). steady_clock is
  /// CLOCK_MONOTONIC — one epoch per host — so node processes of the socket
  /// engine all rebase to the orchestrator's chosen instant and their tick
  /// streams are directly comparable when the shipped logs are merged.
  void rebase_to_epoch(std::int64_t epoch_ns) {
    t0_ = WallClock::time_point(std::chrono::nanoseconds(epoch_ns));
  }

  /// Current steady-clock reading in nanoseconds since its epoch (the
  /// coordinate `rebase_to_epoch` consumes).
  [[nodiscard]] static std::int64_t epoch_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               WallClock::now().time_since_epoch())
        .count();
  }

  /// Elapsed ticks since the origin (>= 0, monotonic).
  [[nodiscard]] sim::Time now_ticks() const {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() - t0_).count();
    return ns <= 0 ? 0 : static_cast<sim::Time>(static_cast<std::uint64_t>(ns) / tick_ns_);
  }

  /// Wall-clock instant at which tick `t` is reached.
  [[nodiscard]] WallClock::time_point deadline(sim::Time t) const {
    return t0_ + std::chrono::nanoseconds(static_cast<std::int64_t>(t) *
                                          static_cast<std::int64_t>(tick_ns_));
  }

  [[nodiscard]] std::uint64_t tick_ns() const { return tick_ns_; }

 private:
  std::uint64_t tick_ns_;
  WallClock::time_point t0_;
};

}  // namespace ekbd::rt
