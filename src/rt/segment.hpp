/// \file segment.hpp
/// Per-shard recorder segments: the building block of the rt engine's
/// streaming observability pipeline (see recorder.hpp for the protocol).
///
/// In segmented mode every worker thread appends its observable
/// transitions to its OWN segment — an uncontended mutex + vector, never
/// the one global recorder mutex — and a collector thread periodically
/// swaps the buffers out and k-way merges them into the single totally
/// ordered stream the monitors, checkers and exporters consume.
///
/// ## Order keys (hybrid timestamps)
///
/// Tick stamps (100 µs by default) are far too coarse to order a merge:
/// a send and its delivery routinely land on the same tick, and a merge
/// that put the delivery first would corrupt the network books. Each
/// record therefore carries a nanosecond `key` — a raw steady_clock
/// reading taken at append time, clamped monotonic within the segment —
/// used ONLY for merging; the event itself keeps its tick stamp. Because
/// steady_clock is one monotonic coordinate for the whole process, a
/// causally ordered pair (the send happens-before the delivery through
/// the mailbox) always satisfies key_send <= key_deliver; exact ties are
/// broken by kind class (sends before effects), so the merged stream is
/// always well-formed. Residual sub-tick skew between the caller's tick
/// reading and the recorder's key reading is absorbed by a final
/// monotonic clamp on the merged tick stamps — the same clamp the
/// single-mutex recorder applied, moved to the merge point.
///
/// ## Watermarks
///
/// A worker segment is single-producer: only its own thread appends, so
/// after it publishes watermark W (its latest clamped key), every future
/// append to that segment carries a key >= W. The collector may merge the
/// prefix key <= min-over-worker-watermarks and know no straggler will
/// ever slot in below it. Idle workers advance their watermark with
/// `heartbeat()` once per scheduler loop so one quiet shard cannot stall
/// the stream. The one multi-producer segment (the "external" catch-all
/// for non-worker threads) does not vote in the min; its appends are
/// instead clamped up to the collector's published floor so they can
/// never undercut already-merged history.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dining/trace.hpp"
#include "sim/event_log.hpp"
#include "sim/time.hpp"

namespace ekbd::rt {

/// One record in a segment: a transport event or a scheduling trace
/// event, tagged, plus the nanosecond merge key.
struct SegmentRecord {
  enum class Type : std::uint8_t { kEvent, kTrace };

  std::int64_t key = 0;  ///< steady_clock ns, per-segment monotonic
  Type type = Type::kEvent;
  sim::LoggedEvent event{};
  dining::TraceEvent trace{};

  /// Merge class at equal keys: sends (and injected duplicates) order
  /// before every other record so a same-key delivery can never overtake
  /// the send that caused it.
  [[nodiscard]] int merge_class() const {
    return type == Type::kEvent && (event.kind == sim::LoggedEvent::Kind::kSend ||
                                    event.kind == sim::LoggedEvent::Kind::kDuplicate)
               ? 0
               : 1;
  }
};

/// One segment's shared state. The producing thread(s) and the collector
/// synchronize on `mu`; `watermark` is additionally published atomically
/// so the collector can compute the merge horizon without touching any
/// segment lock. The Recorder owns the append/drain protocol — this is
/// deliberately a plain data holder, not an abstraction boundary.
struct RecorderSegment {
  std::mutex mu;
  std::vector<SegmentRecord> buf;  ///< appended since the last drain (guarded by mu)
  std::int64_t last_key = 0;       ///< monotonic clamp for this segment's keys
  std::uint64_t next_seq = 0;      ///< per-segment message sequence counter
  std::uint64_t dropped = 0;       ///< appends refused while the stream was shedding
  std::atomic<std::int64_t> watermark{0};
};

/// Collector-side accounting, surfaced like `sim::EventLog` drop counts:
/// a bounded stream that had to shed says so, loudly, instead of silently
/// eating memory or silently losing history.
struct StreamStats {
  std::uint64_t collect_passes = 0;       ///< collector merge passes (windows)
  std::uint64_t merged_events = 0;        ///< LoggedEvents applied to the books
  std::uint64_t merged_trace_events = 0;  ///< trace records applied
  std::size_t max_pending = 0;            ///< high-water of records buffered ahead of the horizon
  std::uint64_t dropped_records = 0;      ///< appends refused while shedding (pending cap hit)
  std::uint64_t dropped_windows = 0;      ///< collector passes spent in the shedding state
};

}  // namespace ekbd::rt
