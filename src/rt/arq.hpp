/// \file arq.hpp
/// The Stenning ARQ over real threads: `net::ReliableTransport` welded to
/// `rt::Runtime` through the `net::ArqEnv` seam.
///
/// This closes the standing `FaultParams::include_dining` gap: with an
/// RtArq installed (`Runtime::set_transport`), dining traffic rides the
/// ARQ while the drop/dup coins attack the *physical* kTransport
/// segments — the rt engine finally exercises retransmission, duplicate
/// suppression and reordering recovery under real concurrency, not just
/// detector-layer coin flips.
///
/// Concurrency model: the protocol state (per-edge sequence numbers,
/// retransmission queues, reorder buffers) is shared by every worker
/// thread, so one recursive mutex serializes all ARQ entry points.
/// Recursive because delivery re-enters: deliver_logical dispatches the
/// receiving actor's handler *inside* the lock (we are on the receiver's
/// own worker thread, inside its dispatch slot), and that handler may
/// send — which dives right back into logical_send on the same thread.
///
/// Deadlock freedom: the lock holder never blocks. Physical sends go
/// through Runtime::raw_send, which — with a transport installed — uses a
/// non-blocking mailbox push and records a full mailbox as a congestion
/// loss (the ARQ's own retransmission absorbs it). Lock order is strictly
/// RtArq → Recorder; nothing acquires them the other way.
///
/// Timer discipline: every schedule_on call site in the ARQ runs on the
/// owning edge's sender thread (logical_send on the sender's worker,
/// ack handling and timer re-arms on the worker that owns the edge), so
/// Runtime::call_after's owner-thread contract holds.
#pragma once

#include <memory>
#include <mutex>

#include "fd/detector.hpp"
#include "net/arq_env.hpp"
#include "net/reliable_transport.hpp"
#include "rt/runtime.hpp"
#include "sim/net_hooks.hpp"

namespace ekbd::rt {

class RtArq final : public sim::Transport, public net::ArqEnv {
 public:
  /// Installs itself on `rt` (set_transport). Construct after the actors,
  /// before start(); `detector` (may be null) gates retransmission
  /// quiescence exactly as under the simulator.
  RtArq(Runtime& rt, net::ReliableTransport::Params params,
        const ekbd::fd::FailureDetector* detector = nullptr);
  ~RtArq() override;

  RtArq(const RtArq&) = delete;
  RtArq& operator=(const RtArq&) = delete;

  // -- sim::Transport (called by Runtime, any worker thread) --------------

  [[nodiscard]] bool covers(sim::MsgLayer layer) const override;
  void logical_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                    sim::MsgLayer layer) override;
  bool on_physical_deliver(const sim::Message& m) override;

  // -- net::ArqEnv (called by the inner shim, under mu_) ------------------

  [[nodiscard]] sim::Time now() const override { return rt_.now(); }
  [[nodiscard]] bool crashed(sim::ProcessId p) const override { return rt_.crashed(p); }
  std::uint64_t book_logical_send(sim::ProcessId from, sim::ProcessId to,
                                  const sim::Payload& payload,
                                  sim::MsgLayer layer) override;
  void book_logical_drop(sim::ProcessId from, sim::ProcessId to,
                         const sim::Payload& payload, sim::MsgLayer layer,
                         std::uint64_t logical_seq) override;
  void physical_send(sim::ProcessId from, sim::ProcessId to,
                     const sim::Payload& payload) override;
  void deliver_logical(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                       sim::MsgLayer layer, std::uint64_t logical_seq,
                       sim::Time sent_at) override;
  void schedule_on(sim::ProcessId owner, sim::Time delay,
                   std::function<void()> fn) override;

  /// Post-run instrumentation (quiescent after stop_and_join).
  [[nodiscard]] const net::ReliableTransport& inner() const { return *inner_; }

 private:
  Runtime& rt_;
  mutable std::recursive_mutex mu_;
  std::unique_ptr<net::ReliableTransport> inner_;
};

}  // namespace ekbd::rt
