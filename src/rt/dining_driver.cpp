#include "rt/dining_driver.hpp"

#include <cassert>

namespace ekbd::rt {

using dining::Diner;
using dining::TraceEventKind;
using sim::ProcessId;
using sim::Time;

namespace {
/// Salt separating the environment (think/eat) streams from the actor and
/// fault streams, all forked per process id from the master seed.
constexpr std::uint64_t kEnvSalt = 0x4a52ULL;
}  // namespace

DiningDriver::DiningDriver(Runtime& rt, const graph::ConflictGraph& graph,
                           dining::HarnessOptions opt)
    : rt_(rt), graph_(graph), opt_(opt) {
  // Pre-size for the full vertex set: manage() is called once per vertex
  // and E25-scale graphs (10⁵ diners) would otherwise pay repeated
  // geometric regrowth of three vectors during setup.
  diners_.reserve(graph_.size());
  by_id_.resize(graph_.size(), nullptr);
  env_rngs_.resize(graph_.size());
}

void DiningDriver::manage(Diner* d) {
  assert(d != nullptr);
  assert(static_cast<std::size_t>(d->id()) < graph_.size());
  d->set_recheck_period(opt_.recheck_period);
  d->set_event_callback([this](Diner& diner, TraceEventKind kind) {
    on_diner_event(diner, kind);
  });
  d->set_edge_event_callback([this](Diner& diner, TraceEventKind kind, ProcessId peer) {
    // Fires inside the initiator's dispatch claim; the recorder threads
    // the peer through to the merged trace for the adjacency overlay.
    rt_.recorder().on_trace(diner.id(), rt_.now(), kind, peer);
  });
  diners_.push_back(d);
  const auto idx = static_cast<std::size_t>(d->id());
  if (by_id_.size() <= idx) by_id_.resize(idx + 1, nullptr);
  by_id_[idx] = d;
  if (env_rngs_.size() <= idx) env_rngs_.resize(idx + 1);
  env_rngs_[idx] = std::make_unique<sim::Rng>(
      sim::Rng(rt_.options().seed ^ kEnvSalt).fork(static_cast<std::uint64_t>(d->id()) + 1));
  schedule_next_hunger(d, env_rng(d->id()).uniform_int(0, opt_.first_hunger_hi));
}

void DiningDriver::schedule_next_hunger(Diner* d, Time delay) {
  const Time at = rt_.now() + delay;
  if (hunger_deadline_ >= 0 && at >= hunger_deadline_) return;
  rt_.call_after(d->id(), delay, [this, d] {
    // Runs inside d's dispatch claim, between d's handlers; never after a
    // crash (the actor's scheduled calls die with it).
    if (!d->thinking()) return;
    if (hunger_deadline_ >= 0 && rt_.now() >= hunger_deadline_) return;
    d->become_hungry();
  });
}

void DiningDriver::enable_latency_histogram(double lo, double hi, std::size_t bins) {
  latency_stripes_.clear();
  latency_stripes_.reserve(kLatencyStripes);
  for (std::size_t i = 0; i < kLatencyStripes; ++i) {
    latency_stripes_.push_back(std::make_unique<LatencyStripe>(lo, hi, bins));
  }
  last_hungry_at_.assign(graph_.size(), -1);
}

obs::Histogram DiningDriver::latency_histogram() const {
  if (latency_stripes_.empty()) return obs::Histogram(0.0, 1.0, 1);
  obs::Histogram merged(0.0, 1.0, 1);
  {
    std::lock_guard<std::mutex> lock(latency_stripes_[0]->mu);
    merged = latency_stripes_[0]->hist;
  }
  for (std::size_t i = 1; i < latency_stripes_.size(); ++i) {
    std::lock_guard<std::mutex> lock(latency_stripes_[i]->mu);
    merged.merge(latency_stripes_[i]->hist);
  }
  return merged;
}

void DiningDriver::on_diner_event(Diner& d, TraceEventKind kind) {
  // Fires inside d's dispatch claim (state transitions happen inside d's
  // handlers; kCrashed inside the executor's crash step).
  const Time now = rt_.now();
  rt_.recorder().on_trace(d.id(), now, kind);
  if (latency_enabled()) {
    const auto idx = static_cast<std::size_t>(d.id());
    if (kind == TraceEventKind::kBecameHungry) {
      last_hungry_at_[idx] = now;
    } else if (kind == TraceEventKind::kStartEating && last_hungry_at_[idx] >= 0) {
      LatencyStripe& s = *latency_stripes_[idx % kLatencyStripes];
      std::lock_guard<std::mutex> lock(s.mu);
      s.hist.add(static_cast<double>(now - last_hungry_at_[idx]));
      last_hungry_at_[idx] = -1;
    } else if (kind == TraceEventKind::kCrashed || kind == TraceEventKind::kRecovered) {
      // The crash closed the open hungry session; a latency spanning the
      // outage would belong to no incarnation.
      last_hungry_at_[idx] = -1;
    }
  }
  switch (kind) {
    case TraceEventKind::kStartEating: {
      // Correct processes eat for a finite (but not necessarily bounded)
      // period (§2); the environment ends the session.
      const Time duration = env_rng(d.id()).uniform_int(opt_.eat_lo, opt_.eat_hi);
      Diner* dp = &d;
      rt_.call_after(d.id(), duration, [dp] {
        if (dp->eating()) dp->finish_eating();
      });
      break;
    }
    case TraceEventKind::kStopEating:
      if (exit_hook_) exit_hook_(d.id());
      schedule_next_hunger(&d, env_rng(d.id()).uniform_int(opt_.think_lo, opt_.think_hi));
      break;
    case TraceEventKind::kRecovered:
      // Rejoined process re-enters the hunger cycle (its pre-crash call
      // chain died with the old incarnation's timer heap).
      if (recover_hook_) recover_hook_(d.id());
      schedule_next_hunger(&d, env_rng(d.id()).uniform_int(opt_.think_lo, opt_.think_hi));
      break;
    default:
      break;
  }
}

void DiningDriver::install_heartbeats(fd::HeartbeatDetector& detector,
                                      fd::HeartbeatModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::HeartbeatModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

void DiningDriver::install_pingpongs(fd::PingPongDetector& detector,
                                     fd::PingPongModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::PingPongModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

void DiningDriver::install_accruals(fd::AccrualDetector& detector,
                                    fd::AccrualModule::Params params) {
  for (Diner* d : diners_) {
    auto module = std::make_unique<fd::AccrualModule>(graph_.neighbors(d->id()), params);
    detector.attach(d->id(), module.get());
    d->host_fd_module(std::move(module));
  }
}

}  // namespace ekbd::rt
