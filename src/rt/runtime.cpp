#include "rt/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace ekbd::rt {

namespace {
/// Salt separating the fault-coin streams from the actor rng streams
/// (both are forked per process id from the master seed).
constexpr std::uint64_t kFaultSalt = 0x9e3779b97f4a7c15ULL;

/// Shard index of the calling worker thread (-1 off the shard pool):
/// routes helper/stealer counters to the thread's OWN shard so the
/// Counters stay single-writer.
thread_local int tls_shard = -1;
/// Nested help-dispatch depth (push_blocking inside a helped dispatch).
thread_local int tls_help_depth = 0;
}  // namespace

Runtime::Runtime(Options opt, Recorder& recorder)
    : opt_(opt), rec_(recorder), clock_(opt.tick_ns) {}

Runtime::~Runtime() { stop_and_join(); }

sim::ProcessId Runtime::add_actor(std::unique_ptr<sim::Actor> actor) {
  assert(!started_.load(std::memory_order_relaxed) &&
         "register all actors before start()");
  const auto id = static_cast<sim::ProcessId>(actors_.size());
  bind(*actor, this, id);
  actors_.push_back(std::move(actor));

  auto cell = std::make_unique<ActorCell>();
  cell->mailbox = make_mailbox(opt_.mailbox, opt_.mailbox_capacity);
  // Same derivation as Simulator::actor_rng — the cross-engine
  // reproducibility contract of TransportIface. Identical for any shard
  // count: the stream is a pure function of (seed, id) and is drawn only
  // under the actor's dispatch claim.
  cell->rng = std::make_unique<sim::Rng>(
      sim::Rng(opt_.seed).fork(static_cast<std::uint64_t>(id) + 1));
  cell->fault_rng = std::make_unique<sim::Rng>(
      sim::Rng(opt_.seed ^ kFaultSalt).fork(static_cast<std::uint64_t>(id) + 1));
  cells_.push_back(std::move(cell));
  return id;
}

void Runtime::schedule_crash(sim::ProcessId p, sim::Time at) {
  assert(!started_.load(std::memory_order_relaxed) && "plan crashes before start()");
  cells_[static_cast<std::size_t>(p)]->crash_at = at < 0 ? 0 : at;
}

void Runtime::schedule_recovery(sim::ProcessId p, sim::Time at) {
  assert(!started_.load(std::memory_order_relaxed) && "plan recoveries before start()");
  ActorCell& cell = *cells_[static_cast<std::size_t>(p)];
  assert(cell.crash_at >= 0 && "recovery without a scheduled crash");
  cell.recover_at = at < cell.crash_at ? cell.crash_at : at;
}

void Runtime::call_after(sim::ProcessId p, sim::Time delay, std::function<void()> fn) {
  ActorCell& cell = *cells_[static_cast<std::size_t>(p)];
  const sim::TimerId id = cell.next_timer_id++;
  cell.calls.emplace(id, std::move(fn));
  cell.timers.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
}

void Runtime::start() {
  assert(!started_.load(std::memory_order_relaxed) && "start() called twice");
  const std::size_t n = actors_.size();

  std::size_t shard_count = opt_.shards;
  if (shard_count == 0) {
    shard_count = std::thread::hardware_concurrency();
    if (shard_count == 0) shard_count = 4;
  }
  shard_count = std::max<std::size_t>(1, std::min(shard_count, std::max<std::size_t>(n, 1)));

  std::vector<std::size_t> homed(shard_count, 0);
  for (std::size_t i = 0; i < n; ++i) ++homed[i % shard_count];

  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    // Stale hints can briefly outnumber actors (a helper's claim leaves
    // the popped-later entry behind), so size generously; the overflow
    // list catches the rest — a schedule is never dropped.
    shards_.push_back(std::make_unique<Shard>(2 * homed[s] + 64));
  }

  // Announce every actor for its first dispatch (on_start, or the tick-0
  // crash) before any worker exists — single-threaded, relaxed is fine.
  for (std::size_t i = 0; i < n; ++i) {
    ActorCell& cell = *cells_[i];
    cell.home = static_cast<std::uint32_t>(i % shard_count);
    cell.state.store(kQueued, std::memory_order_relaxed);
    const bool pushed = shards_[cell.home]->runq.try_push(static_cast<std::uint32_t>(i));
    assert(pushed && "initial run queue sized below one entry per actor");
    (void)pushed;
  }

  // Streaming observability: one recorder segment per shard, merged by
  // the recorder's collector thread. Started before the workers so their
  // very first records already go through their own segments.
  if (opt_.segmented_recorder) {
    Recorder::StreamOptions sopts;
    sopts.segments = shard_count;
    sopts.window_ns = opt_.stream_window_ticks * opt_.tick_ns;
    sopts.pending_cap = opt_.stream_pending_cap;
    rec_.begin_stream(sopts);
  }

  clock_.rebase();
  started_.store(true, std::memory_order_release);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s]->thread = std::thread([this, s] { worker_loop(s); });
  }
}

void Runtime::stop_and_join() {
  if (joined_) return;
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& s : shards_) {
    // Lock-then-notify: a worker between its stop check and its wait holds
    // the park mutex, so this lock serializes us after it enters the wait.
    std::lock_guard<std::mutex> lock(s->park_mu);
    s->park_cv.notify_all();
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  // Workers are quiesced: close the stream (final drain merges every
  // buffered record; the monitors and books are complete after this).
  if (opt_.segmented_recorder && started_.load(std::memory_order_relaxed)) {
    rec_.end_stream();
  }
  joined_ = true;
}

void Runtime::run_for(sim::Time horizon) {
  start();
  std::this_thread::sleep_until(clock_.deadline(horizon));
  stop_and_join();
  // After the join the clock is at or past every recorded timestamp, so
  // this end time never clips a recorded event.
  rec_.set_end_time(now());
}

void Runtime::request_crash(sim::ProcessId p) {
  ActorCell& cell = *cells_[static_cast<std::size_t>(p)];
  cell.crash_req.store(true, std::memory_order_seq_cst);
  // Dekker pair 4: the store above is ordered before schedule()'s state
  // load; a dispatcher releasing the claim re-probes crash_req after its
  // kIdle store — one side always sees the other.
  schedule(static_cast<std::uint32_t>(p));
}

std::vector<sim::Time> Runtime::crash_times() const {
  std::vector<sim::Time> out(cells_.size(), -1);
  for (std::size_t p = 0; p < cells_.size(); ++p) {
    out[p] = cells_[p]->crash_tick.load(std::memory_order_acquire);
  }
  return out;
}

ExecutorStats Runtime::stats() const {
  ExecutorStats out;
  for (const auto& s : shards_) {
    out.dispatches += s->counters.dispatches.get();
    out.runs += s->counters.runs.get();
    out.steals += s->counters.steals.get();
    out.helps += s->counters.helps.get();
    out.timer_helps += s->counters.timer_helps.get();
    out.parks += s->counters.parks.get();
  }
  return out;
}

std::vector<ExecutorStats> Runtime::stats_per_shard() const {
  std::vector<ExecutorStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    ExecutorStats e;
    e.dispatches = s->counters.dispatches.get();
    e.runs = s->counters.runs.get();
    e.steals = s->counters.steals.get();
    e.helps = s->counters.helps.get();
    e.timer_helps = s->counters.timer_helps.get();
    e.parks = s->counters.parks.get();
    out.push_back(e);
  }
  return out;
}

void Runtime::send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                   sim::MsgLayer layer) {
  if (to < 0 || static_cast<std::size_t>(to) >= cells_.size()) return;
  if (from >= 0 && crashed(from)) return;  // a dead process sends nothing
  if (transport_ != nullptr && transport_->covers(layer)) {
    // Runs in the sender's dispatch context (handlers are the only senders
    // once started) — the same context raw_send assumes.
    transport_->logical_send(from, to, payload, layer);
    return;
  }
  raw_send(from, to, payload, layer);
}

void Runtime::raw_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                       sim::MsgLayer layer) {
  if (to < 0 || static_cast<std::size_t>(to) >= cells_.size()) return;
  if (from >= 0 && crashed(from)) return;

  const auto ti = static_cast<std::uint32_t>(to);
  const bool to_crashed = cells_[ti]->crashed.load(std::memory_order_acquire);

  bool drop = false;
  bool dup = false;
  if (from >= 0 && opt_.faults.any() && opt_.faults.covers(layer) &&
      started_.load(std::memory_order_relaxed)) {
    // Coins come from the *sender's* stream: send() runs in the sender's
    // dispatch context (handlers are the only senders once started), so
    // the stream is claim-confined and the coin sequence depends only on
    // the sender's own send order.
    sim::Rng& coins = *cells_[static_cast<std::size_t>(from)]->fault_rng;
    drop = coins.chance(opt_.faults.drop_prob);
    if (!drop) dup = coins.chance(opt_.faults.dup_prob);
  }

  sim::Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.payload = payload;
  rec_.on_send(m, now(), to_crashed, drop);
  if (drop) return;

  if (!enqueue(ti, m)) return;

  if (dup) {
    sim::Message d;
    d.from = from;
    d.to = to;
    d.layer = layer;
    d.payload = payload;
    rec_.on_duplicate(d, now(), to_crashed);
    enqueue(ti, d);
  }
}

bool Runtime::enqueue(std::uint32_t idx, const sim::Message& m) {
  ActorCell& cell = *cells_[idx];
  if (transport_ == nullptr) {
    push_blocking(idx, m);
    return true;
  }
  // An ARQ shim calls raw_send while holding its own lock; blocking (or
  // help-dispatching, which runs handlers that may re-enter the shim)
  // could deadlock. A full mailbox becomes a wire loss instead — exactly
  // what the ARQ exists to absorb.
  if (cell.mailbox->try_push(m)) {
    schedule(idx);
    return true;
  }
  rec_.on_congestion_loss(m, now());
  return false;
}

sim::TimerId Runtime::set_timer(sim::ProcessId owner, sim::Time delay) {
  // Dispatch-claim-confined by the TransportIface contract: no lock needed.
  ActorCell& cell = *cells_[static_cast<std::size_t>(owner)];
  const sim::TimerId id = cell.next_timer_id++;
  cell.timers.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
  cell.active.insert(id);
  return id;
}

void Runtime::cancel_timer(sim::ProcessId owner, sim::TimerId id) {
  // Lazy deletion: drop the armed flag, let the heap entry fizzle.
  cells_[static_cast<std::size_t>(owner)]->active.erase(id);
}

void Runtime::push_blocking(std::uint32_t idx, const sim::Message& m) {
  ActorCell& cell = *cells_[idx];
  int spins = 0;
  while (!cell.mailbox->try_push(m)) {
    if (stop_.load(std::memory_order_relaxed)) return;
    // Full mailbox: the target is behind. Help it along — claim its
    // dispatch and drain its mailbox on THIS thread. With one shard (or a
    // stalled home shard) this self-help is the only way the mailbox ever
    // drains; with many it just shortens the wait. If the target is
    // already kRunning elsewhere (or we are nested too deep), fall back to
    // yield/sleep like the old engine.
    if (help_dispatch(idx)) continue;
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  schedule(idx);
}

bool Runtime::help_dispatch(std::uint32_t idx) {
  if (tls_help_depth >= kMaxHelpDepth) return false;
  if (shards_.empty()) return false;
  ActorCell& cell = *cells_[idx];
  std::uint32_t st = cell.state.load(std::memory_order_seq_cst);
  if (st == kRunning) return false;
  // Claim from kQueued (its queue hint goes stale and is discarded by the
  // next popper) or straight from kIdle (no hint exists to go stale).
  if (!cell.state.compare_exchange_strong(st, kRunning, std::memory_order_seq_cst)) {
    return false;
  }
  Counters* c = tls_shard >= 0 ? &shards_[static_cast<std::size_t>(tls_shard)]->counters
                               : nullptr;
  if (c != nullptr) ++c->helps;
  ++tls_help_depth;
  dispatch_run(idx, c);
  --tls_help_depth;
  return true;
}

void Runtime::schedule(std::uint32_t idx) {
  if (shards_.empty()) return;  // pre-start: the initial announce in start() covers it
  ActorCell& cell = *cells_[idx];
  std::uint32_t expect = kIdle;
  if (!cell.state.compare_exchange_strong(expect, kQueued, std::memory_order_seq_cst)) {
    return;  // already announced or running; finish_run's recheck covers the rest
  }
  Shard& h = *shards_[cell.home];
  if (!h.runq.try_push(idx)) {
    // Hints must never be lost (state == kQueued promises an entry
    // exists somewhere); a full ring spills to the overflow list.
    std::lock_guard<std::mutex> lock(h.overflow_mu);
    h.overflow.push_back(idx);
    h.overflow_count.fetch_add(1, std::memory_order_seq_cst);
  }
  wake(h);
}

void Runtime::wake(Shard& s) {
  if (s.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(s.park_mu);
    s.park_cv.notify_one();
  }
}

void Runtime::do_crash(ActorCell& cell, sim::Actor& a, sim::ProcessId p) {
  const sim::Time t = clock_.now_ticks();
  cell.crashed.store(true, std::memory_order_seq_cst);
  cell.crash_tick.store(t, std::memory_order_release);
  rec_.on_crash(p, t);
  a.on_crash();  // instrumentation only (e.g. the diner's kCrashed trace event)
  // The process is dead: its pending timers and scheduled calls die with
  // it. A registry entry already pointing at it just fizzles (the corpse's
  // dispatch finds nothing due and re-idles).
  cell.timers = {};
  cell.active.clear();
  cell.calls.clear();
  cell.registered_at.store(-1, std::memory_order_relaxed);
}

void Runtime::do_recover(ActorCell& cell, sim::Actor& a, sim::ProcessId p) {
  const sim::Time t = clock_.now_ticks();
  // Recovery fences the inbound channels: everything mailboxed before this
  // instant was addressed to the dead incarnation — drain it as drops
  // (same records a corpse's drain produces) before the actor wakes.
  sim::Message buf[kMaxDrainBurst];
  for (;;) {
    const std::size_t n = cell.mailbox->pop_n(buf, kMaxDrainBurst);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) rec_.on_deliver(buf[i], t, /*target_crashed=*/true);
  }
  cell.recover_at = -1;
  cell.crash_at = -1;
  cell.crash_req.store(false, std::memory_order_seq_cst);
  cell.crash_tick.store(-1, std::memory_order_release);
  cell.crashed.store(false, std::memory_order_seq_cst);
  rec_.on_recover(p, t);
  a.on_recover();
}

bool Runtime::fire_one_timer(ActorCell& cell, sim::Actor& a, sim::ProcessId p) {
  if (cell.timers.empty()) return false;
  const TimerEntry e = cell.timers.top();
  if (e.at > clock_.now_ticks()) return false;
  cell.timers.pop();
  const auto cit = cell.calls.find(e.id);
  if (cit != cell.calls.end()) {
    std::function<void()> fn = std::move(cit->second);
    cell.calls.erase(cit);
    fn();
    return true;
  }
  if (cell.active.erase(e.id) != 0) {
    rec_.on_timer(p, clock_.now_ticks());
    a.on_timer(e.id);
    return true;
  }
  return false;  // cancelled entry fizzled; not a dispatch
}

sim::Time Runtime::earliest_deadline(const ActorCell& cell) {
  if (cell.crashed.load(std::memory_order_relaxed)) {
    // A corpse has exactly one possible wakeup: its scheduled recovery.
    return cell.recover_at;
  }
  sim::Time want = cell.timers.empty() ? -1 : cell.timers.top().at;
  if (cell.crash_at >= 0 && (want < 0 || cell.crash_at < want)) want = cell.crash_at;
  return want;
}

void Runtime::register_deadline(ActorCell& cell, std::uint32_t idx) {
  const sim::Time want = earliest_deadline(cell);
  if (want < 0) {
    cell.registered_at.store(-1, std::memory_order_relaxed);
    return;
  }
  // O(1) when nothing changed since the last run — the common case for a
  // pump timer that re-arms with the same cadence.
  if (cell.registered_at.load(std::memory_order_relaxed) == want) return;
  cell.registered_at.store(want, std::memory_order_seq_cst);
  Shard& h = *shards_[cell.home];
  bool improved = false;
  {
    std::lock_guard<std::mutex> lock(h.timer_mu);
    h.timer_heap.push(TimerReg{want, idx});
    const sim::Time nd = h.next_deadline.load(std::memory_order_relaxed);
    if (nd < 0 || want < nd) {
      h.next_deadline.store(want, std::memory_order_seq_cst);
      improved = true;
    }
  }
  // A cross-thread registration (helper ran the dispatch) that shortens
  // the home shard's horizon must interrupt its park, or the timer fires
  // up to park_cap_ns late.
  if (improved && tls_shard != static_cast<int>(cell.home)) wake(h);
}

bool Runtime::drain_due_timers(Shard& s, bool try_only) {
  const sim::Time now_t = clock_.now_ticks();
  const sim::Time nd = s.next_deadline.load(std::memory_order_seq_cst);
  if (nd < 0 || nd > now_t) return false;
  std::unique_lock<std::mutex> lock(s.timer_mu, std::defer_lock);
  if (try_only) {
    if (!lock.try_lock()) return false;
  } else {
    lock.lock();
  }
  bool any = false;
  while (!s.timer_heap.empty() && s.timer_heap.top().at <= now_t) {
    const TimerReg r = s.timer_heap.top();
    s.timer_heap.pop();
    // Dekker pair 3: reset the registration hint BEFORE scheduling. If the
    // actor is mid-dispatch (claim CAS fails inside schedule), its
    // finish_run re-probes registered_at after storing kIdle, sees -1 with
    // timers still armed, and re-announces itself.
    ActorCell& cell = *cells_[r.idx];
    sim::Time expect = r.at;
    cell.registered_at.compare_exchange_strong(expect, -1, std::memory_order_seq_cst);
    schedule(r.idx);
    any = true;
  }
  s.next_deadline.store(s.timer_heap.empty() ? -1 : s.timer_heap.top().at,
                        std::memory_order_seq_cst);
  return any;
}

bool Runtime::pop_overflow(Shard& s, std::uint32_t& v) {
  if (s.overflow_count.load(std::memory_order_seq_cst) == 0) return false;
  std::lock_guard<std::mutex> lock(s.overflow_mu);
  if (s.overflow.empty()) return false;
  v = s.overflow.back();
  s.overflow.pop_back();
  s.overflow_count.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

bool Runtime::try_run_from(Shard& s, Counters* c, bool stolen) {
  std::uint32_t idx = 0;
  while (s.runq.try_pop(idx) || pop_overflow(s, idx)) {
    ActorCell& cell = *cells_[idx];
    std::uint32_t expect = kQueued;
    if (cell.state.compare_exchange_strong(expect, kRunning, std::memory_order_seq_cst)) {
      if (stolen && c != nullptr) ++c->steals;
      dispatch_run(idx, c);
      return true;
    }
    // Stale hint: a helper (or an earlier duplicate entry's winner) got
    // here first. The state machine owns correctness; just discard it.
  }
  return false;
}

void Runtime::dispatch_run(std::uint32_t idx, Counters* c) {
  ActorCell& cell = *cells_[idx];
  sim::Actor& a = *actors_[idx];
  const auto p = static_cast<sim::ProcessId>(idx);
  if (c != nullptr) ++c->runs;

  bool dead = cell.crashed.load(std::memory_order_relaxed);
  const auto crash_due = [&]() -> bool {
    if (dead) return false;
    return cell.crash_req.load(std::memory_order_acquire) ||
           (cell.crash_at >= 0 && clock_.now_ticks() >= cell.crash_at);
  };
  // Scheduled rejoin: the corpse wakes at recover_at (its registry entry
  // keeps it reachable) and the new incarnation resumes from here.
  if (dead && cell.recover_at >= 0 && clock_.now_ticks() >= cell.recover_at) {
    do_recover(cell, a, p);
    dead = false;
  }

  int budget = std::max(1, opt_.dispatch_batch);

  if (!cell.started) {
    cell.started = true;
    // A crash at tick 0 fells the process before on_start (the simulator's
    // pre-marked-crash semantics).
    if (crash_due()) {
      do_crash(cell, a, p);
      dead = true;
    } else {
      a.on_start();
      if (c != nullptr) ++c->dispatches;
      --budget;
    }
  }

  sim::Message buf[kMaxDrainBurst];
  const std::size_t burst =
      std::max<std::size_t>(1, std::min(opt_.drain_burst, kMaxDrainBurst));

  while (budget > 0 && !stop_.load(std::memory_order_relaxed)) {
    if (crash_due()) {
      do_crash(cell, a, p);
      dead = true;
    }

    // Timers first (pump/heartbeat cadence survives message floods), one
    // at a time so crash checks run between dispatches.
    bool fired = false;
    while (!dead && budget > 0 && fire_one_timer(cell, a, p)) {
      fired = true;
      --budget;
      if (c != nullptr) ++c->dispatches;
      if (crash_due()) {
        do_crash(cell, a, p);
        dead = true;
      }
    }

    const auto want = std::min(burst, static_cast<std::size_t>(std::max(budget, 1)));
    const std::size_t n = cell.mailbox->pop_n(buf, want);
    for (std::size_t i = 0; i < n; ++i) {
      rec_.on_deliver(buf[i], clock_.now_ticks(), dead);
      if (!dead) {
        // ARQ segments go to the shim (which reassembles and re-enters the
        // actor via dispatch_logical, still inside this dispatch slot);
        // everything else — and anything the shim does not recognize —
        // goes to the actor.
        if (transport_ != nullptr && buf[i].layer == sim::MsgLayer::kTransport &&
            transport_->on_physical_deliver(buf[i])) {
          // handled by the shim
        } else {
          a.on_message(buf[i]);
        }
        // A crash landing mid-batch: the rest of the drained burst is
        // recorded as drops, same as a corpse draining its mailbox.
        if (crash_due()) {
          do_crash(cell, a, p);
          dead = true;
        }
      }
      if (c != nullptr) ++c->dispatches;
    }
    budget -= static_cast<int>(n);
    if (n == 0 && !fired) break;  // nothing due, nothing queued: go idle
  }

  finish_run(cell, idx);
}

void Runtime::finish_run(ActorCell& cell, std::uint32_t idx) {
  register_deadline(cell, idx);
  // Snapshot the deadline while the claim still protects the (non-atomic)
  // timer heap: the instant kIdle publishes, another worker may claim this
  // actor and mutate the heap, so the recheck below must not touch it. If
  // that happens the snapshot is stale, which is harmless — the new
  // claimant's own finish_run re-registers whatever it leaves armed.
  const sim::Time want = earliest_deadline(cell);
  cell.state.store(kIdle, std::memory_order_seq_cst);
  // Post-release recheck: each clause is the second half of a Dekker pair
  // (file comment in runtime.hpp) — producers, the crash requester and the
  // registry popper all publish their work BEFORE probing the state word,
  // so if their schedule() lost the race against our kRunning, we see
  // their work here and re-announce ourselves.
  bool requeue = cell.mailbox->maybe_nonempty() ||
                 cell.crash_req.load(std::memory_order_seq_cst);
  if (!requeue && want >= 0 &&
      (cell.registered_at.load(std::memory_order_seq_cst) < 0 ||
       want <= clock_.now_ticks())) {
    // Deadline armed but no live registration (the popper consumed it
    // concurrently), or already due (budget ran out mid-flood): the
    // registry won't ring again — re-announce directly.
    requeue = true;
  }
  if (requeue) schedule(idx);
}

void Runtime::park(Shard& s, Counters* c) {
  // A due registry deadline must end the idle path immediately: on an
  // oversubscribed box a single yield can cost a full scheduling quantum,
  // so an unconditional spin would hold the shard's timers hostage for
  // tens of milliseconds while nothing else can make progress.
  const auto deadline_due = [&]() {
    const sim::Time nd = s.next_deadline.load(std::memory_order_relaxed);
    return nd >= 0 && nd <= clock_.now_ticks();
  };

  // Brief spin first: most wakeups arrive within microseconds.
  for (int i = 0; i < opt_.spin_polls; ++i) {
    if (s.runq.maybe_nonempty() ||
        s.overflow_count.load(std::memory_order_relaxed) != 0 ||
        stop_.load(std::memory_order_relaxed) || deadline_due()) {
      return;
    }
    std::this_thread::yield();
  }

  // The cap doubles as the helping latency bound: within one cap every
  // worker re-scans the OTHER shards' queues and registries, so a stalled
  // shard's announced work waits at most park_cap_ns for a helper.
  auto deadline = TickClock::WallClock::now() + std::chrono::nanoseconds(opt_.park_cap_ns);
  const sim::Time nd = s.next_deadline.load(std::memory_order_seq_cst);
  if (nd >= 0) {
    if (nd <= clock_.now_ticks()) return;  // went due during the spin
    const auto t = clock_.deadline(nd);
    if (t < deadline) deadline = t;
  }

  std::unique_lock<std::mutex> lock(s.park_mu);
  s.sleeping.store(true, std::memory_order_seq_cst);
  // Re-probe after publishing the sleeping flag (Dekker pair 2 with
  // schedule()'s push-then-probe).
  if (s.runq.maybe_nonempty() ||
      s.overflow_count.load(std::memory_order_seq_cst) != 0 ||
      stop_.load(std::memory_order_seq_cst) || deadline_due()) {
    s.sleeping.store(false, std::memory_order_relaxed);
    return;
  }
  if (c != nullptr) ++c->parks;
  s.park_cv.wait_until(lock, deadline);
  s.sleeping.store(false, std::memory_order_relaxed);
}

void Runtime::worker_loop(std::size_t shard_index) {
  tls_shard = static_cast<int>(shard_index);
  Shard& s = *shards_[shard_index];
  Counters* c = &s.counters;
  const std::size_t shard_count = shards_.size();
  // Streaming observability: this thread's records go to its own
  // segment; the per-iteration heartbeat below keeps the merge horizon
  // advancing even when the shard is idle (a parked worker re-loops at
  // least once per park cap).
  const bool streaming = rec_.streaming();
  if (streaming) rec_.bind_segment(shard_index);

  // Victim-scan window: probing EVERY other shard per idle round would be
  // O(shards²) across the fleet — ruinous at shards == n (the
  // thread-per-actor configuration). A bounded window starting at a
  // per-worker rotating offset keeps each round cheap while still visiting
  // every victim across successive rounds, so the helping guarantee (a
  // stalled shard's announced work is eventually claimed by a neighbor)
  // is preserved — only its discovery latency grows with shard count.
  const std::size_t scan_window = std::min<std::size_t>(
      shard_count > 0 ? shard_count - 1 : 0, 8);
  std::size_t scan_offset = 0;

  while (!stop_.load(std::memory_order_acquire)) {
    if (streaming) rec_.heartbeat();
    drain_due_timers(s, /*try_only=*/false);
    if (try_run_from(s, c, /*stolen=*/false)) continue;

    // Idle: scan a window of other shards before parking — their due
    // timers (try_lock; the owner may hold it) and their announced
    // dispatches.
    bool progressed = false;
    for (std::size_t k = 0; k < scan_window; ++k) {
      Shard& t = *shards_[(shard_index + 1 + (scan_offset + k) % (shard_count - 1)) %
                          shard_count];
      if (drain_due_timers(t, /*try_only=*/true)) {
        ++c->timer_helps;
        progressed = true;
        break;
      }
      if (try_run_from(t, c, /*stolen=*/true)) {
        progressed = true;
        break;
      }
    }
    if (scan_window != 0) scan_offset = (scan_offset + scan_window) % (shard_count - 1);
    if (progressed) continue;
    park(s, c);
  }
  tls_shard = -1;
}

}  // namespace ekbd::rt
