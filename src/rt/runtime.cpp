#include "rt/runtime.hpp"

#include <cassert>
#include <chrono>

namespace ekbd::rt {

namespace {
/// Salt separating the fault-coin streams from the actor rng streams
/// (both are forked per process id from the master seed).
constexpr std::uint64_t kFaultSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

Runtime::Runtime(Options opt, Recorder& recorder)
    : opt_(opt), rec_(recorder), clock_(opt.tick_ns) {}

Runtime::~Runtime() { stop_and_join(); }

sim::ProcessId Runtime::add_actor(std::unique_ptr<sim::Actor> actor) {
  assert(!started_.load(std::memory_order_relaxed) &&
         "register all actors before start()");
  const auto id = static_cast<sim::ProcessId>(actors_.size());
  bind(*actor, this, id);
  actors_.push_back(std::move(actor));

  auto w = std::make_unique<Worker>();
  w->mailbox = make_mailbox(opt_.mailbox, opt_.mailbox_capacity);
  // Same derivation as Simulator::actor_rng — the cross-engine
  // reproducibility contract of TransportIface.
  w->rng = std::make_unique<sim::Rng>(
      sim::Rng(opt_.seed).fork(static_cast<std::uint64_t>(id) + 1));
  w->fault_rng = std::make_unique<sim::Rng>(
      sim::Rng(opt_.seed ^ kFaultSalt).fork(static_cast<std::uint64_t>(id) + 1));
  workers_.push_back(std::move(w));
  return id;
}

void Runtime::schedule_crash(sim::ProcessId p, sim::Time at) {
  assert(!started_.load(std::memory_order_relaxed) && "plan crashes before start()");
  workers_[static_cast<std::size_t>(p)]->crash_at = at < 0 ? 0 : at;
}

void Runtime::call_after(sim::ProcessId p, sim::Time delay, std::function<void()> fn) {
  Worker& w = *workers_[static_cast<std::size_t>(p)];
  const sim::TimerId id = w.next_timer_id++;
  w.calls.emplace(id, std::move(fn));
  w.timers.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
}

void Runtime::start() {
  assert(!started_.load(std::memory_order_relaxed) && "start() called twice");
  clock_.rebase();
  started_.store(true, std::memory_order_release);
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    workers_[p]->thread =
        std::thread([this, p] { worker_loop(static_cast<sim::ProcessId>(p)); });
  }
}

void Runtime::stop_and_join() {
  if (joined_) return;
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_) {
    // Lock-then-notify: a worker between its stop check and its wait holds
    // the park mutex, so this lock serializes us after it enters the wait.
    std::lock_guard<std::mutex> lock(w->park);
    w->park_cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  joined_ = true;
}

void Runtime::run_for(sim::Time horizon) {
  start();
  std::this_thread::sleep_until(clock_.deadline(horizon));
  stop_and_join();
  // After the join the clock is at or past every recorded timestamp, so
  // this end time never clips a recorded event.
  rec_.set_end_time(now());
}

void Runtime::request_crash(sim::ProcessId p) {
  Worker& w = *workers_[static_cast<std::size_t>(p)];
  w.crash_req.store(true, std::memory_order_seq_cst);
  wake(w);
}

std::vector<sim::Time> Runtime::crash_times() const {
  std::vector<sim::Time> out(workers_.size(), -1);
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    out[p] = workers_[p]->crash_tick.load(std::memory_order_acquire);
  }
  return out;
}

void Runtime::send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                   sim::MsgLayer layer) {
  if (to < 0 || static_cast<std::size_t>(to) >= workers_.size()) return;
  if (from >= 0 && crashed(from)) return;  // a dead process sends nothing
  if (transport_ != nullptr && transport_->covers(layer)) {
    // Runs on the sender's worker thread (handlers are the only senders
    // once started) — the same context raw_send assumes.
    transport_->logical_send(from, to, payload, layer);
    return;
  }
  raw_send(from, to, payload, layer);
}

void Runtime::raw_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                       sim::MsgLayer layer) {
  if (to < 0 || static_cast<std::size_t>(to) >= workers_.size()) return;
  if (from >= 0 && crashed(from)) return;

  Worker& wt = *workers_[static_cast<std::size_t>(to)];
  const bool to_crashed = wt.crashed.load(std::memory_order_acquire);

  bool drop = false;
  bool dup = false;
  if (from >= 0 && opt_.faults.any() && opt_.faults.covers(layer) &&
      started_.load(std::memory_order_relaxed)) {
    // Coins come from the *sender's* stream: send() runs on the sender's
    // worker thread (handlers are the only senders once started), so the
    // stream is thread-confined and the coin sequence depends only on the
    // sender's own send order.
    sim::Rng& coins = *workers_[static_cast<std::size_t>(from)]->fault_rng;
    drop = coins.chance(opt_.faults.drop_prob);
    if (!drop) dup = coins.chance(opt_.faults.dup_prob);
  }

  sim::Message m;
  m.from = from;
  m.to = to;
  m.layer = layer;
  m.payload = payload;
  rec_.on_send(m, now(), to_crashed, drop);
  if (drop) return;

  if (!enqueue(wt, m)) return;
  wake(wt);

  if (dup) {
    sim::Message d;
    d.from = from;
    d.to = to;
    d.layer = layer;
    d.payload = payload;
    rec_.on_duplicate(d, now(), to_crashed);
    if (!enqueue(wt, d)) return;
    wake(wt);
  }
}

bool Runtime::enqueue(Worker& w, const sim::Message& m) {
  if (transport_ == nullptr) {
    push_blocking(w, m);
    return true;
  }
  // An ARQ shim calls raw_send while holding its own lock; blocking here
  // until the consumer drains could deadlock (the consumer may itself be
  // waiting on that lock in on_physical_deliver). A full mailbox becomes
  // a wire loss instead — exactly what the ARQ exists to absorb.
  if (w.mailbox->try_push(m)) return true;
  rec_.on_congestion_loss(m, now());
  return false;
}

sim::TimerId Runtime::set_timer(sim::ProcessId owner, sim::Time delay) {
  // Owner-thread-only by the TransportIface contract: no lock needed.
  Worker& w = *workers_[static_cast<std::size_t>(owner)];
  const sim::TimerId id = w.next_timer_id++;
  w.timers.push(TimerEntry{now() + (delay < 0 ? 0 : delay), id});
  w.active.insert(id);
  return id;
}

void Runtime::cancel_timer(sim::ProcessId owner, sim::TimerId id) {
  // Lazy deletion: drop the armed flag, let the heap entry fizzle.
  workers_[static_cast<std::size_t>(owner)]->active.erase(id);
}

void Runtime::push_blocking(Worker& w, const sim::Message& m) {
  int spins = 0;
  while (!w.mailbox->try_push(m)) {
    if (stop_.load(std::memory_order_relaxed)) return;
    // Full mailbox: the consumer (live or corpse — corpses keep draining)
    // is behind. Yield, then back off to a real sleep so a descheduled
    // consumer gets cycles even on an oversubscribed box.
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void Runtime::wake(Worker& w) {
  if (w.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(w.park);
    w.park_cv.notify_one();
  }
}

void Runtime::do_crash(Worker& w, sim::Actor& a, sim::ProcessId p) {
  const sim::Time t = clock_.now_ticks();
  w.crashed.store(true, std::memory_order_seq_cst);
  w.crash_tick.store(t, std::memory_order_release);
  rec_.on_crash(p, t);
  a.on_crash();  // instrumentation only (e.g. the diner's kCrashed trace event)
  // The process is dead: its pending timers and scheduled calls die with it.
  w.timers = {};
  w.active.clear();
  w.calls.clear();
}

bool Runtime::fire_one_timer(Worker& w, sim::Actor& a, sim::ProcessId p) {
  if (w.timers.empty()) return false;
  const TimerEntry e = w.timers.top();
  if (e.at > clock_.now_ticks()) return false;
  w.timers.pop();
  const auto cit = w.calls.find(e.id);
  if (cit != w.calls.end()) {
    std::function<void()> fn = std::move(cit->second);
    w.calls.erase(cit);
    fn();
    return true;
  }
  if (w.active.erase(e.id) != 0) {
    rec_.on_timer(p, clock_.now_ticks());
    a.on_timer(e.id);
    return true;
  }
  return false;  // cancelled entry fizzled; not a dispatch
}

void Runtime::park(Worker& w) {
  // Brief spin first: most wakeups arrive within microseconds.
  for (int i = 0; i < opt_.spin_polls; ++i) {
    if (w.mailbox->maybe_nonempty() || stop_.load(std::memory_order_relaxed) ||
        w.crash_req.load(std::memory_order_relaxed)) {
      return;
    }
    std::this_thread::yield();
  }

  auto deadline = TickClock::WallClock::now() + std::chrono::nanoseconds(opt_.park_cap_ns);
  if (!w.crashed.load(std::memory_order_relaxed)) {
    if (!w.timers.empty()) {
      const auto t = clock_.deadline(w.timers.top().at);
      if (t < deadline) deadline = t;
    }
    if (w.crash_at >= 0) {
      const auto t = clock_.deadline(w.crash_at);
      if (t < deadline) deadline = t;
    }
  }

  std::unique_lock<std::mutex> lock(w.park);
  w.sleeping.store(true, std::memory_order_seq_cst);
  // Re-probe after publishing the sleeping flag (the Dekker handshake with
  // try_push's claim / wake's probe — see the file comment in runtime.hpp).
  if (w.mailbox->maybe_nonempty() || stop_.load(std::memory_order_seq_cst) ||
      w.crash_req.load(std::memory_order_seq_cst)) {
    w.sleeping.store(false, std::memory_order_relaxed);
    return;
  }
  w.park_cv.wait_until(lock, deadline);
  w.sleeping.store(false, std::memory_order_relaxed);
}

void Runtime::worker_loop(sim::ProcessId p) {
  Worker& w = *workers_[static_cast<std::size_t>(p)];
  sim::Actor& a = *actors_[static_cast<std::size_t>(p)];

  const auto crash_due = [&]() -> bool {
    if (w.crashed.load(std::memory_order_relaxed)) return false;
    return w.crash_req.load(std::memory_order_acquire) ||
           (w.crash_at >= 0 && clock_.now_ticks() >= w.crash_at);
  };

  // A crash at tick 0 fells the process before on_start (the simulator's
  // pre-marked-crash semantics).
  if (crash_due()) {
    do_crash(w, a, p);
  } else {
    a.on_start();
  }

  sim::Message m;
  while (!stop_.load(std::memory_order_acquire)) {
    if (crash_due()) do_crash(w, a, p);
    const bool dead = w.crashed.load(std::memory_order_relaxed);

    // One dispatch per iteration, timers first (so pump/heartbeat cadence
    // survives message floods); crash checks run between dispatches.
    if (!dead && fire_one_timer(w, a, p)) continue;
    if (w.mailbox->try_pop(m)) {
      rec_.on_deliver(m, clock_.now_ticks(), dead);
      if (!dead) {
        // ARQ segments go to the shim (which reassembles and re-enters the
        // actor via dispatch_logical, still inside this dispatch slot);
        // everything else — and anything the shim does not recognize —
        // goes to the actor.
        if (transport_ != nullptr && m.layer == sim::MsgLayer::kTransport &&
            transport_->on_physical_deliver(m)) {
          continue;
        }
        a.on_message(m);
      }
      continue;
    }
    park(w);
  }
}

}  // namespace ekbd::rt
