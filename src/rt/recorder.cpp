#include "rt/recorder.hpp"

#include <cassert>
#include <chrono>
#include <limits>

#include "rt/log_io.hpp"

namespace ekbd::rt {

namespace {

/// Nanosecond merge key: a raw steady_clock reading. One monotonic
/// coordinate for the whole process, so a causally ordered pair (a send
/// and the delivery it enables) reads nondecreasing keys on any pair of
/// threads; exact ties are broken by SegmentRecord::merge_class.
std::int64_t now_key() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread segment binding, validated against (recorder, stream
/// generation) so a binding never leaks across recorders or across
/// sequential streams of the same recorder.
struct TlsBinding {
  const void* owner = nullptr;
  std::uint64_t gen = 0;
  std::size_t index = 0;
};
thread_local TlsBinding tls_binding;

/// Segment-id bits in a streaming seq. Per-segment counters stay unique
/// across segments; with segments bounded by core counts the combined
/// value also stays well under 2^53 (exact in the JSON exports).
constexpr unsigned kSeqSegmentShift = 40;

}  // namespace

Recorder::Recorder() = default;

Recorder::~Recorder() { end_stream(); }

// -- stream lifecycle -------------------------------------------------------

void Recorder::begin_stream(const StreamOptions& opts) {
  assert(!streaming_.load(std::memory_order_relaxed) && "stream already running");
  sopt_ = opts;
  ++stream_gen_;
  const std::size_t nseg = std::max<std::size_t>(1, opts.segments) + 1;  // + external
  segments_.clear();
  segments_.reserve(nseg);
  for (std::size_t i = 0; i < nseg; ++i) {
    segments_.push_back(std::make_unique<RecorderSegment>());
  }
  pools_.assign(nseg, SegmentPool{});
  crashed_seen_.clear();
  // Continue the direct-mode clamp: anything recorded before the stream
  // started keeps its place ahead of the merged tail.
  merged_tick_ = last_;
  floor_.store(0, std::memory_order_relaxed);
  shedding_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = StreamStats{};
  }
  collector_stop_ = false;
  streaming_.store(true, std::memory_order_release);
  collector_ = std::thread([this] { collector_loop(); });
}

void Recorder::end_stream() {
  if (!streaming_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(collector_mu_);
    collector_stop_ = true;
  }
  collector_cv_.notify_all();
  if (collector_.joinable()) collector_.join();
  // Final drain, no watermark horizon: every producer has quiesced (the
  // runtime joins its workers first), so everything buffered is merged.
  collect_pass(/*final_drain=*/true);
  // Hand the monotonic clamp back to direct mode.
  if (merged_tick_ > last_) last_ = merged_tick_;
  streaming_.store(false, std::memory_order_release);
}

void Recorder::bind_segment(std::size_t index) {
  assert(index + 1 < segments_.size() && "bind_segment: not a worker segment");
  tls_binding = TlsBinding{this, stream_gen_, index};
}

void Recorder::heartbeat() {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  if (raw > seg.last_key) seg.last_key = raw;
  seg.watermark.store(seg.last_key, std::memory_order_release);
}

StreamStats Recorder::stream_stats() const {
  StreamStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  for (const auto& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg->mu);
    out.dropped_records += seg->dropped;
  }
  return out;
}

// -- streaming producers ----------------------------------------------------

RecorderSegment& Recorder::segment_for_thread() {
  if (tls_binding.owner == this && tls_binding.gen == stream_gen_) {
    return *segments_[tls_binding.index];
  }
  return *segments_.back();  // the external catch-all
}

std::int64_t Recorder::clamp_key_locked(RecorderSegment& seg, std::int64_t raw) {
  std::int64_t key = raw;
  const std::int64_t floor = floor_.load(std::memory_order_acquire);
  if (key < seg.last_key) key = seg.last_key;
  if (key < floor) key = floor;
  seg.last_key = key;
  return key;
}

void Recorder::push_locked(RecorderSegment& seg, SegmentRecord& rec, std::int64_t key) {
  rec.key = key;
  if (shedding_.load(std::memory_order_relaxed)) {
    ++seg.dropped;
    return;
  }
  seg.buf.push_back(rec);
}

void Recorder::stream_send(sim::Message& m, sim::Time now, bool lost, bool partitioned) {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  const std::int64_t key = clamp_key_locked(seg, raw);
  // The stamp the direct mode's net_.stamp would have written; the actual
  // arrival tick is rewritten by on_deliver, books are rebuilt at merge.
  m.sent_at = now;
  m.deliver_at = now + 1;
  const std::uint64_t segment_id = tls_binding.owner == this ? tls_binding.index + 1
                                                             : segments_.size();
  m.seq = (segment_id << kSeqSegmentShift) | seg.next_seq++;
  SegmentRecord r;
  r.type = SegmentRecord::Type::kEvent;
  r.event = {now, sim::LoggedEvent::Kind::kSend, m.from, m.to, m.layer, m.seq,
             payload_tag(m.payload)};
  push_locked(seg, r, key);
  if (lost) {
    r.event.kind = partitioned ? sim::LoggedEvent::Kind::kPartitionLoss
                               : sim::LoggedEvent::Kind::kLoss;
    push_locked(seg, r, key);
  }
  seg.watermark.store(key, std::memory_order_release);
}

void Recorder::stream_duplicate(sim::Message& m, sim::Time now) {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  const std::int64_t key = clamp_key_locked(seg, raw);
  m.sent_at = now;
  m.deliver_at = now + 1;
  const std::uint64_t segment_id = tls_binding.owner == this ? tls_binding.index + 1
                                                             : segments_.size();
  m.seq = (segment_id << kSeqSegmentShift) | seg.next_seq++;
  SegmentRecord r;
  r.type = SegmentRecord::Type::kEvent;
  r.event = {now, sim::LoggedEvent::Kind::kDuplicate, m.from, m.to, m.layer, m.seq,
             payload_tag(m.payload)};
  push_locked(seg, r, key);
  seg.watermark.store(key, std::memory_order_release);
}

std::uint64_t Recorder::stream_logical_send(sim::ProcessId from, sim::ProcessId to,
                                            sim::PayloadTag tag, sim::MsgLayer layer,
                                            sim::Time now) {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  const std::int64_t key = clamp_key_locked(seg, raw);
  const std::uint64_t segment_id = tls_binding.owner == this ? tls_binding.index + 1
                                                             : segments_.size();
  const std::uint64_t seq = (segment_id << kSeqSegmentShift) | seg.next_seq++;
  SegmentRecord r;
  r.type = SegmentRecord::Type::kEvent;
  r.event = {now, sim::LoggedEvent::Kind::kSend, from, to, layer, seq, tag};
  push_locked(seg, r, key);
  seg.watermark.store(key, std::memory_order_release);
  return seq;
}

void Recorder::stream_event(const sim::LoggedEvent& ev) {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  const std::int64_t key = clamp_key_locked(seg, raw);
  SegmentRecord r;
  r.type = SegmentRecord::Type::kEvent;
  r.event = ev;
  push_locked(seg, r, key);
  seg.watermark.store(key, std::memory_order_release);
}

void Recorder::stream_trace(sim::ProcessId p, sim::Time now, dining::TraceEventKind kind,
                            sim::ProcessId peer) {
  RecorderSegment& seg = segment_for_thread();
  const std::int64_t raw = now_key();
  std::lock_guard<std::mutex> lock(seg.mu);
  const std::int64_t key = clamp_key_locked(seg, raw);
  SegmentRecord r;
  r.type = SegmentRecord::Type::kTrace;
  r.trace = dining::TraceEvent{now, p, kind, peer};
  push_locked(seg, r, key);
  seg.watermark.store(key, std::memory_order_release);
}

// -- collector --------------------------------------------------------------

void Recorder::collector_loop() {
  const auto window = std::chrono::nanoseconds(
      sopt_.window_ns == 0 ? 1'000'000 : sopt_.window_ns);
  std::unique_lock<std::mutex> lock(collector_mu_);
  while (!collector_stop_) {
    collector_cv_.wait_for(lock, window);
    if (collector_stop_) break;  // end_stream runs the final drain itself
    lock.unlock();
    collect_pass(/*final_drain=*/false);
    lock.lock();
  }
}

void Recorder::collect_pass(bool final_drain) {
  const std::size_t nseg = segments_.size();
  const std::size_t workers = nseg - 1;  // the external segment does not vote

  // Horizon: nothing with a smaller key can ever be appended again — each
  // worker segment is single-producer and clamps its keys monotonic, and
  // external appends are clamped up to the published floor.
  std::int64_t horizon = std::numeric_limits<std::int64_t>::max();
  if (!final_drain) {
    for (std::size_t i = 0; i < workers; ++i) {
      horizon = std::min(horizon, segments_[i]->watermark.load(std::memory_order_acquire));
    }
    if (horizon > floor_.load(std::memory_order_relaxed)) {
      // Publish BEFORE draining: an external append that misses this
      // pass's drain observes the new floor through the segment mutex and
      // clamps its key to >= horizon — it can never slot in below history
      // this pass is about to merge.
      floor_.store(horizon, std::memory_order_release);
    }
  }

  // Swap out every segment's buffer. The common case (the pool drained
  // dry last pass) is a pointer swap; a backlogged pool appends and
  // compacts its consumed prefix when it dominates.
  std::size_t pending = 0;
  for (std::size_t i = 0; i < nseg; ++i) {
    RecorderSegment& seg = *segments_[i];
    SegmentPool& pool = pools_[i];
    std::lock_guard<std::mutex> lock(seg.mu);
    if (pool.head >= pool.recs.size()) {
      pool.recs.clear();
      pool.head = 0;
      std::swap(pool.recs, seg.buf);
    } else {
      if (pool.head > 1024 && pool.head * 2 > pool.recs.size()) {
        pool.recs.erase(pool.recs.begin(),
                        pool.recs.begin() + static_cast<std::ptrdiff_t>(pool.head));
        pool.head = 0;
      }
      pool.recs.insert(pool.recs.end(), seg.buf.begin(), seg.buf.end());
      seg.buf.clear();
    }
    pending += pool.recs.size() - pool.head;
  }

  std::uint64_t events = 0;
  std::uint64_t traces = 0;
  const std::size_t merged = merge_segments(
      pools_, horizon,
      [this, &events, &traces](const SegmentRecord& r) { apply_record(r, events, traces); });

  // Shedding hysteresis: arm past the cap, disarm at half. Producers see
  // the flag on their next append; the windows in between are counted.
  const std::size_t left = pending - merged;
  bool shed = shedding_.load(std::memory_order_relaxed);
  if (sopt_.pending_cap != 0) {
    if (!shed && left > sopt_.pending_cap) {
      shed = true;
      shedding_.store(true, std::memory_order_seq_cst);
    } else if (shed && left <= sopt_.pending_cap / 2) {
      shed = false;
      shedding_.store(false, std::memory_order_seq_cst);
    }
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.collect_passes;
  stats_.merged_events += events;
  stats_.merged_trace_events += traces;
  stats_.max_pending = std::max(stats_.max_pending, pending);
  if (shed) ++stats_.dropped_windows;
}

void Recorder::apply_record(const SegmentRecord& r, std::uint64_t& events,
                            std::uint64_t& traces) {
  if (r.type == SegmentRecord::Type::kEvent) {
    sim::LoggedEvent ev = r.event;
    // Hybrid stamp, final clamp: merge order is by nanosecond key; the
    // sub-tick skew between a producer's tick reading and its key reading
    // can leave tick stamps locally out of order, so the merged stream
    // re-applies the same monotonic clamp direct mode used.
    if (ev.at < merged_tick_) {
      ev.at = merged_tick_;
    } else {
      merged_tick_ = ev.at;
    }
    emit(ev);
    apply_event(ev, net_, crashed_seen_);
    ++events;
  } else {
    sim::Time at = r.trace.at;
    if (at < merged_tick_) {
      at = merged_tick_;
    } else {
      merged_tick_ = at;
    }
    trace_.record(at, r.trace.process, r.trace.kind, r.trace.peer);
    ++traces;
  }
}

}  // namespace ekbd::rt
