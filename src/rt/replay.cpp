#include "rt/replay.hpp"

#include <map>
#include <set>
#include <utility>

namespace ekbd::rt {

namespace {

using PairKey = std::pair<int, std::uint64_t>;  // (layer, undirected pair)

PairKey key_of(const sim::LoggedEvent& ev) {
  const auto lo = static_cast<std::uint64_t>(ev.from < ev.to ? ev.from : ev.to);
  const auto hi = static_cast<std::uint64_t>(ev.from < ev.to ? ev.to : ev.from);
  return {static_cast<int>(ev.layer), (lo << 32) | hi};
}

}  // namespace

void replay(const sim::EventLog& log, const dining::Trace& trace, obs::MonitorHub& hub) {
  std::set<sim::ProcessId> crashed;
  struct Occupancy {
    int in_transit = 0;
    int max_in_transit = 0;
  };
  std::map<PairKey, Occupancy> books;

  for (const sim::LoggedEvent& ev : log.events()) {
    // The fork-uniqueness monitor consumes the event stream verbatim.
    hub.on_event(ev);

    switch (ev.kind) {
      case sim::LoggedEvent::Kind::kCrash:
        crashed.insert(ev.from);
        break;
      case sim::LoggedEvent::Kind::kRecover:
        crashed.erase(ev.from);
        break;
      case sim::LoggedEvent::Kind::kSend:
      case sim::LoggedEvent::Kind::kDuplicate: {
        // Synthesize the NetworkWatch callbacks the live hub received from
        // the Recorder's stamp(): one on_send per accounted send, one
        // on_high_water whenever the pair's occupancy sets a new maximum.
        hub.on_send(ev.layer, ev.from, ev.to, ev.at, crashed.count(ev.to) != 0);
        Occupancy& o = books[key_of(ev)];
        ++o.in_transit;
        if (o.in_transit > o.max_in_transit) {
          o.max_in_transit = o.in_transit;
          hub.on_high_water(ev.layer, ev.from, ev.to, o.in_transit, ev.at);
        }
        break;
      }
      case sim::LoggedEvent::Kind::kDeliver:
      case sim::LoggedEvent::Kind::kDrop:
      case sim::LoggedEvent::Kind::kLoss:
      case sim::LoggedEvent::Kind::kPartitionLoss:
        --books[key_of(ev)].in_transit;
        break;
      case sim::LoggedEvent::Kind::kTimer:
        break;
    }
  }

  for (const dining::TraceEvent& ev : trace.events()) {
    hub.on_trace_event(ev);
  }
}

}  // namespace ekbd::rt
