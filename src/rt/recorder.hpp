/// \file recorder.hpp
/// Serialization point of the real-threads runtime.
///
/// The simulator gets its observability for free: it executes one event at
/// a time, so the trace, the event log and the network books are totally
/// ordered by construction. The rt engine has no such luxury — handlers
/// run concurrently on many threads — so every observable transition
/// (send, delivery, timer, crash, scheduling event) funnels through this
/// Recorder under one mutex. That buys three things at once:
///
///  1. a totally ordered `dining::Trace` + `sim::EventLog` stream — the
///     *linearization* of the concurrent execution that the paper's
///     properties quantify over;
///  2. the unmodified `sim::Network` books (stamp/delivered), so the
///     post-hoc checkers and `MonitorHub::agreement_failures` consume rt
///     runs byte-for-byte like sim runs;
///  3. a safe place to host the PR-4 online monitors: the hub's three
///     observer hats (EventSink, NetworkWatch, TraceObserver) are all
///     invoked with the recorder mutex held, so the monitors need no
///     locking of their own.
///
/// Timestamps come from the wall clock and are clamped monotonic under
/// the mutex (`clamp`): two threads can read the clock in one order and
/// reach the mutex in the other, and both the trace and the log promise
/// nondecreasing times.
///
/// Cost: one mutex acquisition per observable event. That is the honest
/// price of a sound total order; the contended path is short (a stamp and
/// two vector pushes) and the mailbox fast path stays lock-free.
#pragma once

#include <mutex>

#include "dining/trace.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"

namespace ekbd::rt {

class Recorder {
 public:
  // -- wiring (single-threaded, before Runtime::start) -------------------

  /// Attach an event log (not owned; nullptr detaches).
  void set_event_log(sim::EventLog* log) { log_ = log; }
  /// Attach a streaming event sink (the MonitorHub's EventSink hat).
  void set_event_sink(sim::EventSink* sink) { sink_ = sink; }
  /// Attach a network watch (the MonitorHub's NetworkWatch hat).
  void set_watch(sim::NetworkWatch* watch) { net_.set_watch(watch); }
  /// Attach a trace observer (the MonitorHub's TraceObserver hat).
  void set_trace_observer(dining::TraceObserver* obs) { trace_.set_observer(obs); }

  /// Pre-size the trace for an expected event count. E25-scale runs (10⁵
  /// actors, millions of trace events) would otherwise take repeated
  /// geometric regrowth stalls *inside the recorder mutex* — the one lock
  /// every worker contends on.
  void reserve_trace(std::size_t events) { trace_.reserve(events); }

  // -- post-run reads (quiescent: after Runtime::stop_and_join) ----------

  [[nodiscard]] const dining::Trace& trace() const { return trace_; }
  [[nodiscard]] const sim::Network& network() const { return net_; }
  void set_end_time(sim::Time t) { trace_.set_end_time(t); }

  // -- runtime hooks (any thread) ----------------------------------------

  /// A handler (or the driver) handed a message to the transport: stamp it
  /// (seq, books, FIFO horizon — latency 1 is nominal; the *actual*
  /// arrival tick is written by on_deliver) and emit kSend. With `lost`
  /// the fault layer dropped it at the wire: the books are settled
  /// immediately and a kLoss (or, when the loss came from a partition /
  /// edge cut, kPartitionLoss) event follows the kSend, mirroring the
  /// simulator's loss accounting (stamped, never handled).
  void on_send(sim::Message& m, sim::Time now, bool target_crashed, bool lost,
               bool partitioned = false) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.stamp(m, t, 1, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kSend, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
    if (lost) {
      net_.delivered(m);
      emit({t,
            partitioned ? sim::LoggedEvent::Kind::kPartitionLoss
                        : sim::LoggedEvent::Kind::kLoss,
            m.from, m.to, m.layer, m.seq, payload_tag(m.payload)});
    }
  }

  /// A stamped message could not be enqueued (full mailbox under an ARQ
  /// engine's lock, where blocking would deadlock): written off as a wire
  /// loss. The ARQ retransmits it; detector traffic is loss-tolerant by
  /// design — either way a dropped-at-the-door message is semantically a
  /// lost datagram.
  void on_congestion_loss(const sim::Message& m, sim::Time now) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.delivered(m);
    emit({t, sim::LoggedEvent::Kind::kLoss, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
  }

  /// The fault layer injected a duplicate copy: stamp it as its own
  /// in-flight message and emit kDuplicate (the fork-uniqueness monitor
  /// counts duplicates as sends, exactly as under the simulator).
  void on_duplicate(sim::Message& m, sim::Time now, bool target_crashed) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.stamp(m, t, 1, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kDuplicate, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
  }

  /// The holder of the target's dispatch claim popped `m` from its
  /// mailbox. Settles the books and
  /// rewrites `m.deliver_at` to the actual arrival tick (the stamp-time
  /// value was a placeholder) so handlers reading it see the truth. With
  /// `target_crashed` the message lands on a corpse: kDrop, never handled.
  void on_deliver(sim::Message& m, sim::Time now, bool target_crashed) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    m.deliver_at = t;
    net_.delivered(m);
    emit({t,
          target_crashed ? sim::LoggedEvent::Kind::kDrop : sim::LoggedEvent::Kind::kDeliver,
          m.from, m.to, m.layer, m.seq, payload_tag(m.payload)});
  }

  // -- logical-layer hooks (ARQ engines: rt::RtArq, netproc) --------------
  //
  // When an ARQ shim carries a layer, its *logical* messages are booked
  // through Network::logical_* — the same split the simulator's transport
  // mode uses — while the physical kTransport segments go through
  // on_send/on_deliver above. The §7 channel-bound and quiescence
  // monitors read the logical books; retransmit overhead shows up as the
  // gap between the kTransport and logical streams.

  /// The ARQ accepted one logical message. Books it (pair books, watch,
  /// high-water) and emits kSend on its own layer; returns the logical
  /// sequence number the books assigned.
  std::uint64_t on_logical_send(sim::ProcessId from, sim::ProcessId to,
                                sim::PayloadTag tag, sim::MsgLayer layer, sim::Time now,
                                bool target_crashed) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    const std::uint64_t seq = net_.logical_sent(from, to, layer, t, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kSend, from, to, layer, seq, tag});
    return seq;
  }

  /// The ARQ released one logical message, in order, to the receiving
  /// actor. Returns the (clamped) delivery tick for the dispatched
  /// message's `deliver_at`.
  sim::Time on_logical_deliver(sim::ProcessId from, sim::ProcessId to,
                               sim::PayloadTag tag, sim::MsgLayer layer,
                               std::uint64_t logical_seq, sim::Time now) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.logical_delivered(from, to, layer);
    emit({t, sim::LoggedEvent::Kind::kDeliver, from, to, layer, logical_seq, tag});
    return t;
  }

  /// The ARQ wrote off one logical message to a dead/unreachable peer.
  void on_logical_drop(sim::ProcessId from, sim::ProcessId to, sim::PayloadTag tag,
                       sim::MsgLayer layer, std::uint64_t logical_seq, sim::Time now) {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.logical_dropped(from, to, layer);
    emit({t, sim::LoggedEvent::Kind::kDrop, from, to, layer, logical_seq, tag});
  }

  /// A live actor's timer fired.
  void on_timer(sim::ProcessId owner, sim::Time now) {
    std::lock_guard<std::mutex> lock(mu_);
    emit({clamp(now), sim::LoggedEvent::Kind::kTimer, owner, sim::kNoProcess,
          sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
  }

  /// Process `p` crashed (its worker is about to stop dispatching).
  void on_crash(sim::ProcessId p, sim::Time now) {
    std::lock_guard<std::mutex> lock(mu_);
    emit({clamp(now), sim::LoggedEvent::Kind::kCrash, p, sim::kNoProcess,
          sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
  }

  /// A scheduling event (hungry / eating / forks / crash) from a diner or
  /// the driver. Appends to the trace, which fans out to the observer.
  void on_trace(sim::ProcessId p, sim::Time now, dining::TraceEventKind kind) {
    std::lock_guard<std::mutex> lock(mu_);
    trace_.record(clamp(now), p, kind);
  }

 private:
  /// Monotonic clamp: the recorder's time never goes backwards even when
  /// threads reach the mutex out of clock order.
  sim::Time clamp(sim::Time now) {
    if (now > last_) last_ = now;
    return last_;
  }

  void emit(const sim::LoggedEvent& ev) {
    if (log_ != nullptr) log_->append(ev);
    if (sink_ != nullptr) sink_->on_event(ev);
  }

  std::mutex mu_;
  sim::Time last_ = 0;
  sim::Network net_;
  dining::Trace trace_;
  sim::EventLog* log_ = nullptr;
  sim::EventSink* sink_ = nullptr;
};

}  // namespace ekbd::rt
