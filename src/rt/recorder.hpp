/// \file recorder.hpp
/// Serialization point of the real-threads runtime.
///
/// The simulator gets its observability for free: it executes one event at
/// a time, so the trace, the event log and the network books are totally
/// ordered by construction. The rt engine has no such luxury — handlers
/// run concurrently on many threads — so every observable transition
/// (send, delivery, timer, crash, scheduling event) must be funneled into
/// one total order. The Recorder does that in one of two modes:
///
/// ## Direct mode (default)
///
/// Every hook takes one global mutex, clamps its timestamp monotonic, and
/// applies the transition to the books on the spot. That buys three
/// things at once:
///
///  1. a totally ordered `dining::Trace` + `sim::EventLog` stream — the
///     *linearization* of the concurrent execution that the paper's
///     properties quantify over;
///  2. the unmodified `sim::Network` books (stamp/delivered), so the
///     post-hoc checkers and `MonitorHub::agreement_failures` consume rt
///     runs byte-for-byte like sim runs;
///  3. a safe place to host the PR-4 online monitors: the hub's three
///     observer hats (EventSink, NetworkWatch, TraceObserver) are all
///     invoked with the recorder mutex held, so the monitors need no
///     locking of their own.
///
/// Direct mode is what the netproc node engine and the `LogWriter` need
/// (one synchronous disk frame per record) and what bare Recorder users
/// get without any wiring.
///
/// ## Segmented streaming mode (`begin_stream` / `end_stream`)
///
/// One global mutex per observable event caps the sharded executor: at
/// 10⁵–10⁶ actors every worker serializes on it (ROADMAP item 2). In
/// streaming mode each worker thread appends to its OWN
/// `RecorderSegment` — an uncontended lock, no global serialization on
/// the hot path — and a collector thread periodically merges the
/// segments' key-ordered prefixes (bounded by the min worker watermark;
/// see segment.hpp for the hybrid-timestamp and watermark protocol) into
/// the very same books: EventLog append, EventSink, `log_io::apply_event`
/// network bookkeeping, trace record. The merged stream is a
/// linearization — identical in shape to direct mode's, which the
/// rt_stream tests assert by verdict equality across recorder modes and
/// shard counts — and the monitors still run single-threaded (only the
/// collector touches them), so they still need no locking.
///
/// The merge runs *windowed*: every `window_ns` the collector drains and
/// merges, so monitors see events with bounded lag and bounded buffering.
/// With `pending_cap` set, a backlog past the cap sheds new appends
/// (counted per segment, surfaced in `StreamStats` like `EventLog`
/// drops) instead of growing without bound — shedding forfeits exact
/// replay/agreement for that window, which is why the default cap is 0
/// (unbounded buffering, typically a few windows' worth).
///
/// Mid-run hooks in streaming mode must come from threads bound via
/// `bind_segment` (the runtime binds each worker); unbound threads fall
/// into a shared "external" segment that is safe but contended.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "dining/trace.hpp"
#include "rt/segment.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"

namespace ekbd::rt {

struct SegmentPool;  // log_io.hpp

class Recorder {
 public:
  Recorder();
  ~Recorder();  // ends the stream (joins the collector) if still streaming

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // -- wiring (single-threaded, before Runtime::start) -------------------

  /// Attach an event log (not owned; nullptr detaches).
  void set_event_log(sim::EventLog* log) { log_ = log; }
  /// Attach a streaming event sink (the MonitorHub's EventSink hat).
  void set_event_sink(sim::EventSink* sink) { sink_ = sink; }
  /// Attach a network watch (the MonitorHub's NetworkWatch hat).
  void set_watch(sim::NetworkWatch* watch) { net_.set_watch(watch); }
  /// Attach a trace observer (the MonitorHub's TraceObserver hat).
  void set_trace_observer(dining::TraceObserver* obs) { trace_.set_observer(obs); }

  /// Pre-size the trace for an expected event count. E25-scale runs (10⁵
  /// actors, millions of trace events) would otherwise take repeated
  /// geometric regrowth stalls *inside the recorder mutex* — the one lock
  /// every worker contends on in direct mode.
  void reserve_trace(std::size_t events) { trace_.reserve(events); }

  // -- streaming mode ----------------------------------------------------

  struct StreamOptions {
    /// Worker segments (one per shard); a shared external segment for
    /// unbound threads is always added on top.
    std::size_t segments = 1;
    /// Collector pass period (window). Smaller = fresher monitors and less
    /// buffering; larger = fewer merge passes.
    std::uint64_t window_ns = 5'000'000;
    /// Max records buffered ahead of the merge horizon before the stream
    /// sheds new appends (0 = unbounded). Shedding is counted in
    /// StreamStats and forfeits exact replay/monitor agreement.
    std::size_t pending_cap = 0;
  };

  /// Switch to segmented streaming: allocate segments, launch the
  /// collector. Call before the producing threads start (the runtime
  /// calls it just before launching workers); events recorded in direct
  /// mode beforehand stay ahead of the merged stream.
  void begin_stream(const StreamOptions& opts);
  /// Join the collector and drain every segment (no watermark horizon:
  /// all producers must have quiesced — the runtime calls this after
  /// joining its workers). Falls back to direct mode. Idempotent.
  void end_stream();
  /// Bind the calling thread to segment `index` for the current stream.
  void bind_segment(std::size_t index);
  /// Advance the calling thread's segment watermark to "now" without
  /// appending: an idle worker's promise that nothing earlier is coming,
  /// so one quiet shard cannot stall the merge horizon.
  void heartbeat();

  [[nodiscard]] bool streaming() const {
    return streaming_.load(std::memory_order_acquire);
  }
  /// Collector accounting; callable live (approximate) or after
  /// `end_stream` (exact).
  [[nodiscard]] StreamStats stream_stats() const;

  // -- post-run reads (quiescent: after Runtime::stop_and_join) ----------

  [[nodiscard]] const dining::Trace& trace() const { return trace_; }
  [[nodiscard]] const sim::Network& network() const { return net_; }
  void set_end_time(sim::Time t) { trace_.set_end_time(t); }

  // -- runtime hooks (any thread) ----------------------------------------

  /// A handler (or the driver) handed a message to the transport: stamp it
  /// (seq, books, FIFO horizon — latency 1 is nominal; the *actual*
  /// arrival tick is written by on_deliver) and emit kSend. With `lost`
  /// the fault layer dropped it at the wire: the books are settled
  /// immediately and a kLoss (or, when the loss came from a partition /
  /// edge cut, kPartitionLoss) event follows the kSend, mirroring the
  /// simulator's loss accounting (stamped, never handled). In streaming
  /// mode the books are deferred to the merge; the seq comes from the
  /// segment (globally unique via the segment id in the high bits) and
  /// the target-crashed flag is re-derived from merged kCrash order.
  void on_send(sim::Message& m, sim::Time now, bool target_crashed, bool lost,
               bool partitioned = false) {
    if (streaming()) {
      stream_send(m, now, lost, partitioned);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.stamp(m, t, 1, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kSend, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
    if (lost) {
      net_.delivered(m);
      emit({t,
            partitioned ? sim::LoggedEvent::Kind::kPartitionLoss
                        : sim::LoggedEvent::Kind::kLoss,
            m.from, m.to, m.layer, m.seq, payload_tag(m.payload)});
    }
  }

  /// A stamped message could not be enqueued (full mailbox under an ARQ
  /// engine's lock, where blocking would deadlock): written off as a wire
  /// loss. The ARQ retransmits it; detector traffic is loss-tolerant by
  /// design — either way a dropped-at-the-door message is semantically a
  /// lost datagram.
  void on_congestion_loss(const sim::Message& m, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kLoss, m.from, m.to, m.layer, m.seq,
                    payload_tag(m.payload)});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.delivered(m);
    emit({t, sim::LoggedEvent::Kind::kLoss, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
  }

  /// The fault layer injected a duplicate copy: stamp it as its own
  /// in-flight message and emit kDuplicate (the fork-uniqueness monitor
  /// counts duplicates as sends, exactly as under the simulator).
  void on_duplicate(sim::Message& m, sim::Time now, bool target_crashed) {
    if (streaming()) {
      stream_duplicate(m, now);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.stamp(m, t, 1, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kDuplicate, m.from, m.to, m.layer, m.seq,
          payload_tag(m.payload)});
  }

  /// The holder of the target's dispatch claim popped `m` from its
  /// mailbox. Settles the books and
  /// rewrites `m.deliver_at` to the actual arrival tick (the stamp-time
  /// value was a placeholder) so handlers reading it see the truth. With
  /// `target_crashed` the message lands on a corpse: kDrop, never handled.
  void on_deliver(sim::Message& m, sim::Time now, bool target_crashed) {
    if (streaming()) {
      m.deliver_at = now;
      stream_event({now,
                    target_crashed ? sim::LoggedEvent::Kind::kDrop
                                   : sim::LoggedEvent::Kind::kDeliver,
                    m.from, m.to, m.layer, m.seq, payload_tag(m.payload)});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    m.deliver_at = t;
    net_.delivered(m);
    emit({t,
          target_crashed ? sim::LoggedEvent::Kind::kDrop : sim::LoggedEvent::Kind::kDeliver,
          m.from, m.to, m.layer, m.seq, payload_tag(m.payload)});
  }

  // -- logical-layer hooks (ARQ engines: rt::RtArq, netproc) --------------
  //
  // When an ARQ shim carries a layer, its *logical* messages are booked
  // through Network::logical_* — the same split the simulator's transport
  // mode uses — while the physical kTransport segments go through
  // on_send/on_deliver above. The §7 channel-bound and quiescence
  // monitors read the logical books; retransmit overhead shows up as the
  // gap between the kTransport and logical streams.

  /// The ARQ accepted one logical message. Books it (pair books, watch,
  /// high-water) and emits kSend on its own layer; returns the logical
  /// sequence number the books assigned (in streaming mode: the
  /// segment-assigned globally unique seq).
  std::uint64_t on_logical_send(sim::ProcessId from, sim::ProcessId to,
                                sim::PayloadTag tag, sim::MsgLayer layer, sim::Time now,
                                bool target_crashed) {
    if (streaming()) return stream_logical_send(from, to, tag, layer, now);
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    const std::uint64_t seq = net_.logical_sent(from, to, layer, t, target_crashed);
    emit({t, sim::LoggedEvent::Kind::kSend, from, to, layer, seq, tag});
    return seq;
  }

  /// The ARQ released one logical message, in order, to the receiving
  /// actor. Returns the delivery tick for the dispatched message's
  /// `deliver_at`.
  sim::Time on_logical_deliver(sim::ProcessId from, sim::ProcessId to,
                               sim::PayloadTag tag, sim::MsgLayer layer,
                               std::uint64_t logical_seq, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kDeliver, from, to, layer, logical_seq, tag});
      return now;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.logical_delivered(from, to, layer);
    emit({t, sim::LoggedEvent::Kind::kDeliver, from, to, layer, logical_seq, tag});
    return t;
  }

  /// The ARQ wrote off one logical message to a dead/unreachable peer.
  void on_logical_drop(sim::ProcessId from, sim::ProcessId to, sim::PayloadTag tag,
                       sim::MsgLayer layer, std::uint64_t logical_seq, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kDrop, from, to, layer, logical_seq, tag});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const sim::Time t = clamp(now);
    net_.logical_dropped(from, to, layer);
    emit({t, sim::LoggedEvent::Kind::kDrop, from, to, layer, logical_seq, tag});
  }

  /// A live actor's timer fired.
  void on_timer(sim::ProcessId owner, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kTimer, owner, sim::kNoProcess,
                    sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    emit({clamp(now), sim::LoggedEvent::Kind::kTimer, owner, sim::kNoProcess,
          sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
  }

  /// Process `p` crashed (its worker is about to stop dispatching).
  void on_crash(sim::ProcessId p, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kCrash, p, sim::kNoProcess,
                    sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    emit({clamp(now), sim::LoggedEvent::Kind::kCrash, p, sim::kNoProcess,
          sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
  }

  /// Process `p` rejoined after a crash (dispatching resumes).
  void on_recover(sim::ProcessId p, sim::Time now) {
    if (streaming()) {
      stream_event({now, sim::LoggedEvent::Kind::kRecover, p, sim::kNoProcess,
                    sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    emit({clamp(now), sim::LoggedEvent::Kind::kRecover, p, sim::kNoProcess,
          sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
  }

  /// A scheduling event (hungry / eating / forks / crash / churn) from a
  /// diner or the driver. Appends to the trace, which fans out to the
  /// observer. `peer` is the other endpoint for edge-churn events.
  void on_trace(sim::ProcessId p, sim::Time now, dining::TraceEventKind kind,
                sim::ProcessId peer = sim::kNoProcess) {
    if (streaming()) {
      stream_trace(p, now, kind, peer);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    trace_.record(clamp(now), p, kind, peer);
  }

 private:
  /// Monotonic clamp: the recorder's time never goes backwards even when
  /// threads reach the mutex out of clock order (direct mode).
  sim::Time clamp(sim::Time now) {
    if (now > last_) last_ = now;
    return last_;
  }

  void emit(const sim::LoggedEvent& ev) {
    if (log_ != nullptr) log_->append(ev);
    if (sink_ != nullptr) sink_->on_event(ev);
  }

  // Streaming producers (recorder.cpp).
  RecorderSegment& segment_for_thread();
  void stream_send(sim::Message& m, sim::Time now, bool lost, bool partitioned);
  void stream_duplicate(sim::Message& m, sim::Time now);
  std::uint64_t stream_logical_send(sim::ProcessId from, sim::ProcessId to,
                                    sim::PayloadTag tag, sim::MsgLayer layer,
                                    sim::Time now);
  void stream_event(const sim::LoggedEvent& ev);
  void stream_trace(sim::ProcessId p, sim::Time now, dining::TraceEventKind kind,
                    sim::ProcessId peer);
  /// Clamp a raw steady_clock key monotonic within `seg` (and up to the
  /// collector's floor) under `seg.mu`; advances `seg.last_key`.
  std::int64_t clamp_key_locked(RecorderSegment& seg, std::int64_t raw);
  /// Push under `seg.mu`: stamps the key, respects shedding, counts drops.
  void push_locked(RecorderSegment& seg, SegmentRecord& rec, std::int64_t key);

  // Collector (recorder.cpp).
  void collector_loop();
  void collect_pass(bool final_drain);
  void apply_record(const SegmentRecord& r, std::uint64_t& events, std::uint64_t& traces);

  // -- direct mode -------------------------------------------------------
  std::mutex mu_;
  sim::Time last_ = 0;
  sim::Network net_;
  dining::Trace trace_;
  sim::EventLog* log_ = nullptr;
  sim::EventSink* sink_ = nullptr;

  // -- streaming mode ----------------------------------------------------
  std::atomic<bool> streaming_{false};
  StreamOptions sopt_{};
  std::uint64_t stream_gen_ = 0;  ///< invalidates stale thread bindings
  std::vector<std::unique_ptr<RecorderSegment>> segments_;  ///< workers + external (last)
  /// Merge horizon already consumed: external-segment appends clamp their
  /// keys up to this so they can never undercut merged history.
  std::atomic<std::int64_t> floor_{0};
  std::atomic<bool> shedding_{false};
  std::thread collector_;
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  bool collector_stop_ = false;

  // Collector-owned (only the collector thread — or end_stream's final
  // drain, after the join — touches these).
  std::vector<SegmentPool> pools_;
  std::set<sim::ProcessId> crashed_seen_;
  sim::Time merged_tick_ = 0;  ///< monotonic clamp on merged tick stamps

  mutable std::mutex stats_mu_;
  StreamStats stats_;
};

}  // namespace ekbd::rt
