#include "rt/arq.hpp"

#include <utility>

namespace ekbd::rt {

RtArq::RtArq(Runtime& rt, net::ReliableTransport::Params params,
             const ekbd::fd::FailureDetector* detector)
    : rt_(rt),
      inner_(std::make_unique<net::ReliableTransport>(
          static_cast<net::ArqEnv&>(*this), params, detector)) {
  rt_.set_transport(this);
}

RtArq::~RtArq() {
  if (rt_.transport() == this) rt_.set_transport(nullptr);
}

bool RtArq::covers(sim::MsgLayer layer) const { return inner_->covers(layer); }

void RtArq::logical_send(sim::ProcessId from, sim::ProcessId to,
                         const sim::Payload& payload, sim::MsgLayer layer) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  inner_->logical_send(from, to, payload, layer);
}

bool RtArq::on_physical_deliver(const sim::Message& m) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return inner_->on_physical_deliver(m);
}

std::uint64_t RtArq::book_logical_send(sim::ProcessId from, sim::ProcessId to,
                                       const sim::Payload& payload, sim::MsgLayer layer) {
  return rt_.recorder().on_logical_send(from, to, sim::payload_tag(payload), layer,
                                        rt_.now(), rt_.crashed(to));
}

void RtArq::book_logical_drop(sim::ProcessId from, sim::ProcessId to,
                              const sim::Payload& payload, sim::MsgLayer layer,
                              std::uint64_t logical_seq) {
  rt_.recorder().on_logical_drop(from, to, sim::payload_tag(payload), layer, logical_seq,
                                 rt_.now());
}

void RtArq::physical_send(sim::ProcessId from, sim::ProcessId to,
                          const sim::Payload& payload) {
  // Non-blocking under the hood (transport installed ⇒ try_push): the
  // lock holder never waits on a mailbox.
  rt_.raw_send(from, to, payload, sim::MsgLayer::kTransport);
}

void RtArq::deliver_logical(sim::ProcessId from, sim::ProcessId to,
                            const sim::Payload& payload, sim::MsgLayer layer,
                            std::uint64_t logical_seq, sim::Time sent_at) {
  const sim::Time t = rt_.recorder().on_logical_deliver(
      from, to, sim::payload_tag(payload), layer, logical_seq, rt_.now());
  // We are on `to`'s worker thread, inside the dispatch slot that popped
  // the physical segment: calling the actor directly preserves handler
  // atomicity, and `to`'s crash flag cannot flip mid-dispatch (crashes
  // land at dispatch boundaries on this same thread).
  sim::Message m;
  m.from = from;
  m.to = to;
  m.sent_at = sent_at;
  m.deliver_at = t;
  m.layer = layer;
  m.seq = logical_seq;
  m.payload = payload;
  rt_.dispatch_logical(m);
}

void RtArq::schedule_on(sim::ProcessId owner, sim::Time delay, std::function<void()> fn) {
  // All ARQ schedule_on call sites run on `owner`'s worker thread (see the
  // file comment), satisfying call_after's owner-thread contract. The
  // timer closure fires later on that same thread, outside any ARQ entry
  // point, so it takes the lock itself.
  rt_.call_after(owner, delay, [this, fn = std::move(fn)] {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    fn();
  });
}

}  // namespace ekbd::rt
