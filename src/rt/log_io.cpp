#include "rt/log_io.hpp"

#include <algorithm>
#include <set>

namespace ekbd::rt {

namespace codec = sim::codec;

// -- LogWriter -------------------------------------------------------------

LogWriter::LogWriter(const std::string& path) : file_(std::fopen(path.c_str(), "wb")) {}

LogWriter::~LogWriter() { close(); }

void LogWriter::close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) failed_ = true;
    file_ = nullptr;
  }
}

void LogWriter::write_frame(std::size_t frame_len) {
  if (file_ == nullptr || frame_len == 0) {
    failed_ = true;
    return;
  }
  if (std::fwrite(buf_, 1, frame_len, file_) != frame_len) {
    failed_ = true;
    return;
  }
  // Flush per record: a SIGKILL between dispatches must find everything
  // earlier already in the page cache (fflush hands the bytes to the
  // kernel; the process dying does not lose them — only a host crash
  // would, which is out of scope for the loopback engine).
  if (std::fflush(file_) != 0) failed_ = true;
}

void LogWriter::on_event(const sim::LoggedEvent& ev) {
  write_frame(codec::encode_event(ev, buf_, sizeof(buf_)));
}

void LogWriter::on_trace_event(const dining::TraceEvent& ev) {
  if (file_ == nullptr) {
    failed_ = true;
    return;
  }
  codec::Writer w(buf_ + codec::kHeaderSize, sizeof(buf_) - codec::kHeaderSize);
  w.i64(ev.at);
  w.i32(ev.process);
  w.u8(static_cast<std::uint8_t>(ev.kind));
  w.i32(ev.peer);
  write_frame(w.ok() ? codec::seal_frame(buf_, sizeof(buf_),
                                         static_cast<std::uint8_t>(codec::FrameKind::kTrace),
                                         w.size())
                     : 0);
}

void LogWriter::append_end_time(sim::Time t) {
  if (file_ == nullptr) {
    failed_ = true;
    return;
  }
  codec::Writer w(buf_ + codec::kHeaderSize, sizeof(buf_) - codec::kHeaderSize);
  w.i64(t);
  write_frame(w.ok() ? codec::seal_frame(buf_, sizeof(buf_),
                                         static_cast<std::uint8_t>(codec::FrameKind::kEndTime),
                                         w.size())
                     : 0);
}

// -- loading ---------------------------------------------------------------

Recording load_recording(const std::string& path) {
  Recording rec;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    rec.truncated = true;
    return rec;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + got);
  }
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < data.size()) {
    std::uint8_t kind = 0;
    const std::uint8_t* body = nullptr;
    std::size_t body_len = 0;
    const codec::DecodeStatus st =
        codec::open_frame(data.data() + pos, data.size() - pos, kind, body, body_len);
    if (st != codec::DecodeStatus::kOk) {
      // A torn tail (the writer was killed mid-record) or corruption:
      // everything before this offset is intact and checksummed; stop.
      rec.truncated = true;
      break;
    }
    switch (static_cast<codec::FrameKind>(kind)) {
      case codec::FrameKind::kEvent: {
        sim::LoggedEvent ev;
        if (codec::decode_event(body, body_len, ev) != codec::DecodeStatus::kOk) {
          rec.truncated = true;
          return rec;
        }
        rec.events.push_back(ev);
        break;
      }
      case codec::FrameKind::kTrace: {
        codec::Reader r(body, body_len);
        dining::TraceEvent ev;
        ev.at = r.i64();
        ev.process = r.i32();
        const std::uint8_t k = r.u8();
        ev.peer = r.i32();
        if (!r.exhausted() ||
            k > static_cast<std::uint8_t>(dining::TraceEventKind::kEdgeRemoved)) {
          rec.truncated = true;
          return rec;
        }
        ev.kind = static_cast<dining::TraceEventKind>(k);
        rec.trace.push_back(ev);
        break;
      }
      case codec::FrameKind::kEndTime: {
        codec::Reader r(body, body_len);
        const sim::Time t = r.i64();
        if (!r.exhausted()) {
          rec.truncated = true;
          return rec;
        }
        rec.end_time = t;
        break;
      }
      default:
        // A frame kind this loader does not understand (e.g. a future
        // record type): framing-valid, so skip it rather than tear.
        break;
    }
    pos += codec::kHeaderSize + body_len;
  }
  return rec;
}

// -- merging ---------------------------------------------------------------

Recording merge_recordings(
    const std::vector<Recording>& parts,
    const std::vector<std::pair<sim::ProcessId, sim::Time>>& crashes) {
  Recording merged;
  for (const auto& p : parts) {
    merged.events.insert(merged.events.end(), p.events.begin(), p.events.end());
    merged.trace.insert(merged.trace.end(), p.trace.begin(), p.trace.end());
    merged.end_time = std::max(merged.end_time, p.end_time);
    merged.truncated = merged.truncated || p.truncated;
  }
  for (const auto& [p, at] : crashes) {
    merged.events.push_back({at, sim::LoggedEvent::Kind::kCrash, p, sim::kNoProcess,
                             sim::MsgLayer::kOther, 0, sim::kNoPayloadTag});
    merged.trace.push_back({at, p, dining::TraceEventKind::kCrashed});
  }
  // Stable: within equal timestamps each node's local order (already a
  // valid history) is preserved; cross-node causally ordered events carry
  // strictly increasing stamps under nanosecond ticks, so sorting by time
  // yields a linearization.
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const sim::LoggedEvent& a, const sim::LoggedEvent& b) {
                     return a.at < b.at;
                   });
  std::stable_sort(merged.trace.begin(), merged.trace.end(),
                   [](const dining::TraceEvent& a, const dining::TraceEvent& b) {
                     return a.at < b.at;
                   });
  for (const auto& ev : merged.events) merged.end_time = std::max(merged.end_time, ev.at);
  for (const auto& ev : merged.trace) merged.end_time = std::max(merged.end_time, ev.at);
  return merged;
}

// -- rebuild ---------------------------------------------------------------

void apply_event(const sim::LoggedEvent& ev, sim::Network& net,
                 std::set<sim::ProcessId>& crashed) {
  switch (ev.kind) {
    case sim::LoggedEvent::Kind::kSend:
    case sim::LoggedEvent::Kind::kDuplicate:
      // Books the send on the pair/target ledgers and fires the attached
      // NetworkWatch (on_send + high-water) — identical to how the live
      // single-mutex recorder booked it.
      net.logical_sent(ev.from, ev.to, ev.layer, ev.at, crashed.count(ev.to) != 0);
      break;
    case sim::LoggedEvent::Kind::kDeliver:
    case sim::LoggedEvent::Kind::kDrop:
    case sim::LoggedEvent::Kind::kLoss:
    case sim::LoggedEvent::Kind::kPartitionLoss:
      net.logical_delivered(ev.from, ev.to, ev.layer);
      break;
    case sim::LoggedEvent::Kind::kCrash:
      crashed.insert(ev.from);
      break;
    case sim::LoggedEvent::Kind::kRecover:
      crashed.erase(ev.from);
      break;
    case sim::LoggedEvent::Kind::kTimer:
      break;
  }
}

void rebuild(const Recording& rec, obs::MonitorHub& hub, sim::Network& net,
             dining::Trace& trace, sim::EventLog* log) {
  net.set_watch(&hub);
  std::set<sim::ProcessId> crashed;
  for (const auto& ev : rec.events) {
    if (log != nullptr) log->append(ev);
    hub.on_event(ev);
    apply_event(ev, net, crashed);
  }
  trace.set_observer(&hub);
  for (const auto& ev : rec.trace) trace.record(ev.at, ev.process, ev.kind, ev.peer);
  trace.set_observer(nullptr);
  if (rec.end_time >= 0) trace.set_end_time(rec.end_time);
  net.set_watch(nullptr);
}

// -- segment merging -------------------------------------------------------

std::size_t merge_segments(std::vector<SegmentPool>& pools, std::int64_t horizon,
                           const std::function<void(const SegmentRecord&)>& apply) {
  std::size_t merged = 0;
  for (;;) {
    std::size_t best = pools.size();
    for (std::size_t i = 0; i < pools.size(); ++i) {
      const SegmentPool& pool = pools[i];
      if (pool.head >= pool.recs.size()) continue;
      const SegmentRecord& r = pool.recs[pool.head];
      if (r.key > horizon) continue;  // pools are key-sorted: the rest waits too
      if (best == pools.size()) {
        best = i;
        continue;
      }
      const SegmentRecord& b = pools[best].recs[pools[best].head];
      if (r.key < b.key || (r.key == b.key && r.merge_class() < b.merge_class())) best = i;
    }
    if (best == pools.size()) break;
    SegmentPool& win = pools[best];
    apply(win.recs[win.head]);
    ++win.head;
    ++merged;
  }
  return merged;
}

}  // namespace ekbd::rt
