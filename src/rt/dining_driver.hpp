/// \file dining_driver.hpp
/// Drives dining executions on the real-threads runtime.
///
/// The rt analogue of `dining::Harness`: plays the paper's environment —
/// thinking processes become hungry after random think times, eating
/// sessions end after finite random durations — and records every
/// scheduling event through the `Recorder`. It is algorithm-agnostic:
/// anything implementing `dining::Diner` can be managed, byte-for-byte
/// the same diner objects the simulator runs.
///
/// Two deliberate differences from the sim harness:
///
///  * all environment decisions for process p run inside p's dispatch
///    claim (`Runtime::call_after`), because a diner's state may only be
///    touched between its handlers — the executor's dispatch-confinement
///    analogue of the simulator's one-event-at-a-time guarantee (which
///    shard worker holds the claim is irrelevant);
///  * think/eat durations come from a *per-diner* rng stream (forked from
///    the master seed and the id) instead of the harness's single shared
///    stream: concurrent callbacks have no global draw order to share a
///    stream through. Sim↔rt runs therefore agree on the model and the
///    seed discipline, not on the literal duration sequence.
///
/// Crash handling needs no driver code: the runtime retires the actor at
/// a dispatch boundary, the diner's `on_crash` fires the callback, and the
/// pending eat/hunger calls die with the actor's timer heap.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "dining/diner.hpp"
#include "dining/harness.hpp"  // HarnessOptions (shared across engines)
#include "fd/accrual.hpp"
#include "fd/detector.hpp"
#include "fd/heartbeat.hpp"
#include "fd/pingpong.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "rt/runtime.hpp"
#include "sim/rng.hpp"

namespace ekbd::rt {

/// Perfect oracle over the runtime's crash flags: suspects exactly the
/// crashed processes (one atomic load), with zero latency and zero
/// mistakes. The rt counterpart of `fd::PerfectDetector` (which is
/// coupled to the simulator); used for ablation and for tests that must
/// not see a single false suspicion.
class RtPerfectDetector final : public fd::FailureDetector {
 public:
  explicit RtPerfectDetector(const Runtime& rt) : rt_(rt) {}
  [[nodiscard]] bool suspects(sim::ProcessId, sim::ProcessId target) const override {
    return rt_.crashed(target);
  }

 private:
  const Runtime& rt_;
};

class DiningDriver {
 public:
  /// `rt` and `graph` must outlive the driver; trace events go to the
  /// runtime's recorder.
  DiningDriver(Runtime& rt, const graph::ConflictGraph& graph,
               dining::HarnessOptions opt = {});

  /// Take over hunger/eat-duration driving and trace recording for `d`.
  /// Must be called before `Runtime::start()`.
  void manage(dining::Diner* d);

  /// Stop generating *new* hungry sessions at/after tick `t` (drain mode).
  /// Call before start.
  void stop_hunger_after(sim::Time t) { hunger_deadline_ = t; }

  /// Crash `p` at tick `at` (forwarded to the runtime's crash plan).
  void schedule_crash(sim::ProcessId p, sim::Time at) { rt_.schedule_crash(p, at); }

  /// Hook invoked inside `p`'s dispatch claim whenever `p` stops eating —
  /// the load harness uses this to drain backlogged arrivals. Call before
  /// start.
  void set_exit_hook(std::function<void(sim::ProcessId)> hook) {
    exit_hook_ = std::move(hook);
  }

  /// Hook invoked inside `p`'s dispatch claim when `p` recovers from a
  /// crash — the load harness re-seeds `p`'s arrival chain and pending
  /// churn ops (everything in the old incarnation's timer heap died with
  /// it). Call before start.
  void set_recover_hook(std::function<void(sim::ProcessId)> hook) {
    recover_hook_ = std::move(hook);
  }

  /// The managed diner for process `p` (nullptr if unmanaged).
  [[nodiscard]] dining::Diner* diner(sim::ProcessId p) const {
    const auto i = static_cast<std::size_t>(p);
    return i < by_id_.size() ? by_id_[i] : nullptr;
  }

  [[nodiscard]] const graph::ConflictGraph& graph() const { return graph_; }
  [[nodiscard]] std::vector<sim::Time> crash_times() const { return rt_.crash_times(); }

  /// Create and host one heartbeat module per managed diner (neighbors
  /// from the conflict graph) and attach them to `detector`. Call after
  /// all diners are managed, before start. The facade's attach map is
  /// read-only once the run starts and each module is confined to its
  /// host's dispatch claim, so the hosted-module pattern is data-race-free
  /// as is.
  void install_heartbeats(fd::HeartbeatDetector& detector,
                          fd::HeartbeatModule::Params params);
  void install_pingpongs(fd::PingPongDetector& detector,
                         fd::PingPongModule::Params params);
  void install_accruals(fd::AccrualDetector& detector, fd::AccrualModule::Params params);

  /// Record hungry→eat waits into an `obs::Histogram` over [lo, hi) ticks.
  /// Call before start. The histogram is striped by diner id across a few
  /// mutexes so recording never funnels 10⁵ concurrent diners through one
  /// lock; `latency_histogram()` merges the stripes into one snapshot and
  /// is safe to call live (each stripe is copied under its own mutex).
  void enable_latency_histogram(double lo, double hi, std::size_t bins);
  [[nodiscard]] bool latency_enabled() const { return !latency_stripes_.empty(); }
  [[nodiscard]] obs::Histogram latency_histogram() const;

 private:
  /// 16 stripes: enough that two shards rarely contend, few enough that a
  /// merged snapshot is a handful of lock/copy rounds.
  static constexpr std::size_t kLatencyStripes = 16;
  struct LatencyStripe {
    mutable std::mutex mu;
    obs::Histogram hist;
    explicit LatencyStripe(double lo, double hi, std::size_t bins) : hist(lo, hi, bins) {}
  };

  void on_diner_event(dining::Diner& d, dining::TraceEventKind kind);
  void schedule_next_hunger(dining::Diner* d, sim::Time delay);
  sim::Rng& env_rng(sim::ProcessId p) { return *env_rngs_[static_cast<std::size_t>(p)]; }

  Runtime& rt_;
  const graph::ConflictGraph& graph_;
  dining::HarnessOptions opt_;
  std::vector<dining::Diner*> diners_;  // in managed order
  std::vector<dining::Diner*> by_id_;   // indexed by ProcessId
  /// Per-diner environment stream (think/eat draws), dispatch-confined
  /// after start; indexed by ProcessId.
  std::vector<std::unique_ptr<sim::Rng>> env_rngs_;
  std::function<void(sim::ProcessId)> exit_hook_;
  std::function<void(sim::ProcessId)> recover_hook_;
  sim::Time hunger_deadline_ = -1;  ///< -1 = unlimited; set before start
  /// Hungry timestamps, indexed by ProcessId; element p is only touched
  /// inside p's dispatch claim (distinct elements, no lock needed). -1 =
  /// no open hungry session.
  std::vector<sim::Time> last_hungry_at_;
  /// Empty when latency recording is off (the default: zero cost beyond
  /// the latency_enabled() branch per trace event).
  std::vector<std::unique_ptr<LatencyStripe>> latency_stripes_;
};

}  // namespace ekbd::rt
