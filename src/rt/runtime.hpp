/// \file runtime.hpp
/// The real-concurrency engine: a shard-per-core executor.
///
/// `rt::Runtime` is the second implementation of `sim::TransportIface`
/// (the first is the discrete-event `sim::Simulator`), so unmodified
/// protocol code — `core::WaitFreeDiner`, the baselines, the fd modules —
/// runs on real threads with real races. N actors are multiplexed onto C
/// worker shards (C = cores by default, `Options::shards`); the
/// thread-per-actor design this replaces died past a few hundred actors,
/// this one runs 10⁵-node random graphs (E25).
///
/// ## The actor state machine
///
/// Each actor lives in an `ActorCell` with a three-state dispatch word:
///
///   kIdle ──schedule()──▶ kQueued ──claim CAS──▶ kRunning ──finish──▶ kIdle
///
///  * `schedule()` CASes kIdle→kQueued and pushes the actor's index onto
///    its HOME shard's run queue. The CAS makes enqueueing idempotent: a
///    queued or running actor is never double-queued.
///  * Run-queue entries are *hints*, not owners. Whoever pops one tries
///    the kQueued→kRunning claim CAS; a loser (the actor was already
///    claimed by a helper) just discards the stale hint. Correctness
///    lives entirely in the state word — the queue only provides reach.
///  * The kRunning claim is exclusive, so everything dispatch-confined —
///    the actor's protocol state, timer heap, rng streams, mailbox
///    consumer cursor — needs no locks: the seq_cst claim/release pair on
///    the state word carries the happens-before edge when the claim
///    migrates between threads. "Owner thread" in the TransportIface
///    contract becomes "owner's dispatch claim"; every owner-context API
///    (set_timer, call_after, dispatch_logical) keeps its contract.
///  * A dispatch run fires due timers first (pump cadence survives
///    message floods), then bulk-drains the mailbox (`Mailbox::pop_n`,
///    `Options::drain_burst` at a time) up to `Options::dispatch_batch`
///    handler invocations, re-checking the crash plan between handlers —
///    crash injection stays exactly at dispatch boundaries.
///  * finish: register the earliest timer/crash deadline with the home
///    shard's timer registry, store kIdle (seq_cst), then RE-CHECK
///    mailbox / crash request / deadline registration and re-schedule if
///    anything is pending. The recheck closes every lost-wakeup window
///    (see "Dekker pairs" below).
///
/// ## Shards: run queues, stealing, helping
///
/// A shard owns a bounded MPMC run queue of actor indices (Vyukov ring +
/// a mutexed overflow list so a push can never be lost), a timer registry
/// (min-heap of (deadline, actor) under a mutex, with a per-actor
/// `registered_at` hint so re-registration is O(1) when nothing changed),
/// and a parking lot. A worker loops: drain its own due timers, run its
/// own queue; when empty, scan a bounded rotating window (≤ 8) of OTHER
/// shards — drain their due timers (try_lock) and steal from their queues
/// — and only park (capped at `park_cap_ns`) when its window looks quiet.
/// The rotation visits every victim across successive idle rounds, so the
/// scan stays O(1) per round even at shards == n while keeping discovery
/// of a stalled shard's work bounded by a few park caps.
///
/// The run queue doubles as a help/announce structure in the
/// Ben-David–Blelloch sense: a pending dispatch is *announced* by its
/// queue entry + kQueued state, any thread can *complete* it, and the
/// claim CAS guarantees exactly-once completion. If a shard's worker
/// stalls (descheduled, paged out, wedged in a slow handler), its
/// announced dispatches and due timers are picked up by neighbors within
/// one park cap — hungry→eat progress does not depend on any single
/// worker thread staying scheduled. Producers blocked on a full mailbox
/// help too: `push_blocking` claims the *target* actor (from kQueued or
/// kIdle) and dispatches it in place, so backpressure drains the very
/// mailbox it is waiting on instead of spinning — an acyclic chain of
/// full mailboxes always makes progress even with one shard (with
/// shards == 1 self-help is the only drain). Cycles of simultaneously
/// full mailboxes would deadlock the old engine identically; sizing
/// mailboxes ≥ degree × in-flight is the operator's job either way.
///
/// ## Dekker pairs (lost-wakeup freedom)
///
/// All four races resolve by seq_cst store-then-load on both sides:
///  1. producer: mailbox push (seq_cst ticket CAS) then state load in
///     schedule(); dispatcher: kIdle store then mailbox re-probe.
///  2. scheduler: run-queue push (seq_cst) then `sleeping` probe in
///     wake(); parker: `sleeping = true` then queue re-probe.
///  3. timer-registry popper: `registered_at` reset then schedule()'s
///     state load; dispatcher: kIdle store then `registered_at` re-probe
///     (the "timers armed but nothing registered → re-enqueue" clause).
///  4. crash requester: `crash_req` store then schedule(); dispatcher:
///     kIdle store then `crash_req` re-probe.
///
/// ## Everything the old engine guaranteed still holds
///
///  * per-actor handler atomicity (the kRunning claim) and per-directed-
///    channel FIFO (single producer per channel + per-producer ring
///    order, unchanged);
///  * crash injection at dispatch boundaries; a corpse's mailbox keeps
///    draining (as recorded drops) whenever it is scheduled, so senders
///    never block forever on a dead peer;
///  * seed-deterministic per-actor rng streams derived exactly as the
///    simulator derives them (`Rng(seed).fork(p + 1)`) and drawn only
///    under the actor's dispatch claim — identical streams for ANY shard
///    count, which the shard-invariance tests assert across {1,2,C,2C};
///  * the seed-deterministic link-fault layer (per-sender coin streams),
///    the Recorder linearization feeding the online monitors, and
///    rt::replay agreement.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rt/clock.hpp"
#include "rt/mailbox.hpp"
#include "rt/recorder.hpp"
#include "sim/actor.hpp"
#include "sim/net_hooks.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/transport_iface.hpp"

namespace ekbd::rt {

/// Seed-deterministic link faults for the rt engine (per-sender coin
/// streams). `include_dining` extends the faults to the dining layer —
/// only meaningful for model-violation experiments, since the paper
/// assumes reliable dining channels (see docs/RUNTIME.md).
struct FaultParams {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  bool include_dining = false;

  [[nodiscard]] bool any() const { return drop_prob > 0.0 || dup_prob > 0.0; }
  [[nodiscard]] bool covers(sim::MsgLayer layer) const {
    if (layer == sim::MsgLayer::kDetector) return true;
    return include_dining &&
           (layer == sim::MsgLayer::kDining || layer == sim::MsgLayer::kTransport);
  }
};

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t tick_ns = 100'000;        ///< wall nanoseconds per tick (100 µs)
  std::size_t mailbox_capacity = 1024;    ///< per-actor, rounded up to a power of 2
  MailboxKind mailbox = MailboxKind::kLockFree;
  FaultParams faults{};

  /// Worker shards. 0 = hardware_concurrency; always clamped to
  /// [1, num actors]. `shards == num actors` reproduces the old
  /// thread-per-actor engine (one actor per shard) — the E25 baseline.
  std::size_t shards = 0;
  /// Max handler dispatches per actor run before the claim is released
  /// (fairness knob: how long one actor can hog a shard).
  int dispatch_batch = 64;
  /// Max messages per bulk mailbox drain (clamped to kMaxDrainBurst).
  std::size_t drain_burst = 16;

  int spin_polls = 64;                    ///< idle probes before parking
  std::uint64_t park_cap_ns = 2'000'000;  ///< max condvar wait; also the helping latency bound

  /// Record through per-shard segments merged by a collector thread
  /// instead of the single recorder mutex (recorder.hpp "segmented
  /// streaming mode"). Default on — observability scales with the
  /// executor; turn off for the old direct mode (the rt_stream
  /// equivalence tests run both and assert identical verdicts).
  bool segmented_recorder = true;
  /// Collector merge window in ticks (converted via tick_ns): how often
  /// the segment buffers are merged into the monitors' stream.
  std::uint64_t stream_window_ticks = 50;
  /// Bound on records buffered ahead of the merge horizon before the
  /// stream sheds (counted, like EventLog drops); 0 = unbounded.
  std::size_t stream_pending_cap = 0;
};

/// Aggregated executor counters. Exact after stop_and_join; readable live
/// (per-counter-atomic, so a snapshot may be mid-update but never torn) —
/// the telemetry loop samples them for periodic JSONL / Perfetto counter
/// tracks.
struct ExecutorStats {
  std::uint64_t dispatches = 0;   ///< handler invocations (on_start/messages/timers)
  std::uint64_t runs = 0;         ///< dispatch claims (batches)
  std::uint64_t steals = 0;       ///< runs claimed from another shard's queue
  std::uint64_t helps = 0;        ///< dispatches run by a blocked producer
  std::uint64_t timer_helps = 0;  ///< another shard's due timers drained
  std::uint64_t parks = 0;        ///< condvar waits
};

class Runtime final : public sim::TransportIface {
 public:
  /// The recorder must outlive the runtime; it is shared with the scenario
  /// layer (monitors, post-run checkers).
  Runtime(Options opt, Recorder& recorder);
  ~Runtime() override;  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // -- topology (single-threaded, before start) --------------------------

  /// Register an actor; returns its ProcessId (0, 1, 2, ... in order).
  sim::ProcessId add_actor(std::unique_ptr<sim::Actor> actor);

  template <typename T, typename... Args>
  T* make_actor(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    add_actor(std::move(owned));
    return raw;
  }

  [[nodiscard]] std::size_t num_processes() const { return actors_.size(); }
  [[nodiscard]] sim::Actor* actor(sim::ProcessId p) {
    return actors_[static_cast<std::size_t>(p)].get();
  }

  /// Interpose an ARQ shim (rt::RtArq), mirroring Simulator::set_transport:
  /// sends on layers the transport covers divert to its logical_send, and
  /// popped MsgLayer::kTransport messages are offered to its
  /// on_physical_deliver before the actor sees them. Install before
  /// start(); not owned; nullptr detaches. While a transport is installed,
  /// raw_send never blocks on a full mailbox (the shim calls it while
  /// holding its own lock): the message is recorded as a congestion loss
  /// instead, and the ARQ's retransmission makes it good.
  void set_transport(sim::Transport* t) {
    assert(!started_.load(std::memory_order_relaxed) &&
           "install the transport before start()");
    transport_ = t;
  }
  [[nodiscard]] sim::Transport* transport() const { return transport_; }

  /// Physical send, bypassing the transport diversion: the path every
  /// message took before set_transport existed, and the path the ARQ's own
  /// segments take. Draws the sender's fault coins, records, enqueues.
  void raw_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                sim::MsgLayer layer);

  /// Hand a reassembled *logical* message straight to `to`'s actor. ARQ
  /// engines call this from inside `to`'s own dispatch slot (their
  /// on_physical_deliver runs under `to`'s dispatch claim), so handler
  /// atomicity per actor is preserved; the caller has already booked the
  /// delivery through the Recorder's logical hooks.
  void dispatch_logical(const sim::Message& m) {
    actors_[static_cast<std::size_t>(m.to)]->on_message(m);
  }

  // -- fault plan (single-threaded, before start) ------------------------

  /// Crash `p` at tick `at` (takes effect at `p`'s first dispatch boundary
  /// at or after `at`; `at` = 0 crashes before on_start, like the sim).
  void schedule_crash(sim::ProcessId p, sim::Time at);

  /// Recover `p` at tick `at` (>= its scheduled crash; one crash/recovery
  /// cycle per process per run). The corpse wakes at its first dispatch
  /// boundary at or after `at`: its mailbox backlog is drained as drops
  /// (recovery fences the inbound channels), the crash flags clear, and
  /// `Actor::on_recover` runs the protocol-level rejoin.
  void schedule_recovery(sim::ProcessId p, sim::Time at);

  /// Run `fn` in `p`'s dispatch context `delay` ticks from now. Callable
  /// before start or from `p`'s own handlers (the driver's scheduling
  /// loop); never runs once `p` has crashed.
  void call_after(sim::ProcessId p, sim::Time delay, std::function<void()> fn);

  // -- execution ---------------------------------------------------------

  /// Resolve the shard count, assign actors to home shards, enqueue every
  /// actor for its first dispatch (which runs on_start — or the crash, for
  /// a tick-0 crash plan) and launch the shard workers. The tick clock is
  /// rebased here: tick 0 is "now", setup cost never eats into the horizon.
  void start();

  /// Ask every shard to stop at its next dispatch boundary and join the
  /// threads. Messages still in flight stay in flight (the books keep
  /// them in transit, like undelivered events at the sim's horizon).
  void stop_and_join();

  /// start() + sleep until tick `horizon` + stop_and_join(), then stamp
  /// the trace end time. The whole-run convenience the scenario uses.
  void run_for(sim::Time horizon);

  // -- live queries (any thread) -----------------------------------------

  /// Crash `p` at its next dispatch boundary (live fault injection from
  /// tests or a chaos driver).
  void request_crash(sim::ProcessId p);

  [[nodiscard]] bool crashed(sim::ProcessId p) const {
    return cells_[static_cast<std::size_t>(p)]->crashed.load(std::memory_order_acquire);
  }
  /// Tick at which `p` crashed (-1 if alive).
  [[nodiscard]] sim::Time crash_time(sim::ProcessId p) const {
    return cells_[static_cast<std::size_t>(p)]->crash_tick.load(std::memory_order_acquire);
  }
  /// Crash times for all processes, indexed by id (-1 = alive) — the shape
  /// the property checkers take.
  [[nodiscard]] std::vector<sim::Time> crash_times() const;

  /// Resolved shard count (0 before start()).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Home shard of `p` (valid after start()).
  [[nodiscard]] std::size_t shard_of(sim::ProcessId p) const {
    return cells_[static_cast<std::size_t>(p)]->home;
  }
  /// Aggregated executor counters; exact after stop_and_join, a live
  /// (slightly stale) snapshot while running.
  [[nodiscard]] ExecutorStats stats() const;
  /// Per-shard executor counters, indexed by shard — the live telemetry
  /// loop's per-shard counter tracks. Same freshness as stats().
  [[nodiscard]] std::vector<ExecutorStats> stats_per_shard() const;

  [[nodiscard]] const TickClock& clock() const { return clock_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] Recorder& recorder() { return rec_; }

  // -- sim::TransportIface -----------------------------------------------

  void send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
            sim::MsgLayer layer) override;
  sim::TimerId set_timer(sim::ProcessId owner, sim::Time delay) override;
  void cancel_timer(sim::ProcessId owner, sim::TimerId id) override;
  [[nodiscard]] sim::Time now() const override {
    return started_.load(std::memory_order_acquire) ? clock_.now_ticks() : 0;
  }
  sim::Rng& actor_rng(sim::ProcessId p) override {
    return *cells_[static_cast<std::size_t>(p)]->rng;
  }

 private:
  // Dispatch-state words (ActorCell::state).
  static constexpr std::uint32_t kIdle = 0;
  static constexpr std::uint32_t kQueued = 1;
  static constexpr std::uint32_t kRunning = 2;

  static constexpr std::size_t kMaxDrainBurst = 64;
  static constexpr int kMaxHelpDepth = 4;  ///< nested help-dispatch cap

  struct TimerEntry {
    sim::Time at = 0;
    sim::TimerId id = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at || (a.at == b.at && a.id > b.id);
    }
  };

  /// Bounded MPMC ring of actor indices (Vyukov, both ends multi). Entries
  /// are scheduling hints — losing a claim CAS after popping one is fine —
  /// but entries themselves must not be lost, so a full ring overflows to
  /// the shard's mutexed list instead of dropping (see schedule()).
  class RunQueue {
   public:
    explicit RunQueue(std::size_t capacity) {
      std::size_t cap = 2;
      while (cap < capacity) cap <<= 1;
      cells_ = std::make_unique<Cell[]>(cap);
      mask_ = cap - 1;
      for (std::size_t i = 0; i < cap; ++i) {
        cells_[i].seq.store(i, std::memory_order_relaxed);
      }
    }

    bool try_push(std::uint32_t v) {
      std::size_t pos = enq_.load(std::memory_order_relaxed);
      for (;;) {
        Cell& cell = cells_[pos & mask_];
        const std::size_t seq = cell.seq.load(std::memory_order_acquire);
        const auto dif =
            static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
        if (dif == 0) {
          // seq_cst claim: globally ordered before the pusher's subsequent
          // `sleeping` probe (lost-wakeup handshake with park()).
          if (enq_.compare_exchange_weak(pos, pos + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
            cell.v = v;
            cell.seq.store(pos + 1, std::memory_order_release);
            return true;
          }
        } else if (dif < 0) {
          return false;  // full
        } else {
          pos = enq_.load(std::memory_order_relaxed);
        }
      }
    }

    bool try_pop(std::uint32_t& v) {
      std::size_t pos = deq_.load(std::memory_order_relaxed);
      for (;;) {
        Cell& cell = cells_[pos & mask_];
        const std::size_t seq = cell.seq.load(std::memory_order_acquire);
        const auto dif =
            static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
        if (dif == 0) {
          if (deq_.compare_exchange_weak(pos, pos + 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
            v = cell.v;  // published before seq (release), visible via acquire
            cell.seq.store(pos + mask_ + 1, std::memory_order_release);
            return true;
          }
        } else if (dif < 0) {
          return false;  // empty
        } else {
          pos = deq_.load(std::memory_order_relaxed);
        }
      }
    }

    [[nodiscard]] bool maybe_nonempty() const {
      return enq_.load(std::memory_order_seq_cst) !=
             deq_.load(std::memory_order_seq_cst);
    }

   private:
    struct Cell {
      std::atomic<std::size_t> seq{0};
      std::uint32_t v = 0;
    };
    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> enq_{0};
    alignas(64) std::atomic<std::size_t> deq_{0};
  };

  struct ActorCell {
    std::unique_ptr<Mailbox> mailbox;
    std::uint32_t home = 0;  ///< home shard index (set in start())

    /// The dispatch claim — see the state machine in the file comment.
    std::atomic<std::uint32_t> state{kIdle};

    /// Earliest (timer or crash) deadline currently registered in the home
    /// shard's timer registry; -1 = none. Written under the dispatch claim
    /// or by the registry popper's reset CAS.
    std::atomic<sim::Time> registered_at{-1};

    std::atomic<bool> crashed{false};
    std::atomic<sim::Time> crash_tick{-1};
    std::atomic<bool> crash_req{false};

    // Dispatch-confined state (guarded by the kRunning claim; pre-start,
    // single-threaded):
    bool started = false;  ///< on_start has run (or the tick-0 crash beat it)
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers;
    std::unordered_set<sim::TimerId> active;  ///< armed actor timers
    std::unordered_map<sim::TimerId, std::function<void()>> calls;
    sim::TimerId next_timer_id = 1;
    std::unique_ptr<sim::Rng> rng;        ///< Rng(seed).fork(p + 1)
    std::unique_ptr<sim::Rng> fault_rng;  ///< per-sender drop/dup coins
    sim::Time crash_at = -1;              ///< scheduled crash tick (-1 = none)
    sim::Time recover_at = -1;            ///< scheduled rejoin tick (-1 = none)
  };

  /// (deadline, actor) entry in a shard's timer registry heap.
  struct TimerReg {
    sim::Time at = 0;
    std::uint32_t idx = 0;
  };
  struct TimerRegLater {
    bool operator()(const TimerReg& a, const TimerReg& b) const {
      return a.at > b.at || (a.at == b.at && a.idx > b.idx);
    }
  };

  /// Single-writer counter: the shard's own worker thread (helpers book
  /// into their OWN shard via tls_shard) is the only incrementer, so a
  /// relaxed load+store pair is a data-race-free increment — no RMW on
  /// the hot path — while any thread may read a live snapshot.
  struct RelaxedCounter {
    std::atomic<std::uint64_t> v{0};
    RelaxedCounter& operator++() {
      v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
      return *this;
    }
    [[nodiscard]] std::uint64_t get() const { return v.load(std::memory_order_relaxed); }
  };

  /// Per-worker counters: written only by the shard's own worker thread
  /// (helpers book into their OWN shard), readable live by the telemetry
  /// sampler, exact after join.
  struct Counters {
    RelaxedCounter dispatches;
    RelaxedCounter runs;
    RelaxedCounter steals;
    RelaxedCounter helps;
    RelaxedCounter timer_helps;
    RelaxedCounter parks;
  };

  struct Shard {
    explicit Shard(std::size_t runq_capacity) : runq(runq_capacity) {}

    RunQueue runq;
    std::thread thread;

    // Overflow backstop for a full run queue (entries must never be lost).
    std::mutex overflow_mu;
    std::vector<std::uint32_t> overflow;
    std::atomic<std::size_t> overflow_count{0};

    // Timer registry: pending (deadline, actor) wakeups for actors homed
    // here. `next_deadline` caches the heap top for lock-free scans.
    std::mutex timer_mu;
    std::priority_queue<TimerReg, std::vector<TimerReg>, TimerRegLater> timer_heap;
    std::atomic<sim::Time> next_deadline{-1};

    // Parking lot (same Dekker discipline as the old per-actor one).
    std::atomic<bool> sleeping{false};
    std::mutex park_mu;
    std::condition_variable park_cv;

    Counters counters;
  };

  void worker_loop(std::size_t shard_index);
  /// Run one claimed actor: timers, batched mailbox drain, crash checks
  /// between handlers; then release the claim via finish_run.
  void dispatch_run(std::uint32_t idx, Counters* c);
  void finish_run(ActorCell& cell, std::uint32_t idx);
  /// CAS kIdle→kQueued and announce on the home shard's run queue.
  void schedule(std::uint32_t idx);
  /// Register the cell's earliest timer/crash deadline with its home
  /// shard's registry (dispatch-claim context).
  void register_deadline(ActorCell& cell, std::uint32_t idx);
  [[nodiscard]] static sim::Time earliest_deadline(const ActorCell& cell);
  /// Pop due registry entries and schedule their actors. `try_only` uses
  /// try_lock (the helping path). Returns whether anything was scheduled.
  bool drain_due_timers(Shard& s, bool try_only);
  /// Pop hints from `s`'s queue until a claim succeeds; run it. Returns
  /// whether a dispatch ran.
  bool try_run_from(Shard& s, Counters* c, bool stolen);
  bool pop_overflow(Shard& s, std::uint32_t& v);
  /// Claim `idx` from kQueued or kIdle and dispatch it in place (the
  /// blocked-producer helping path). Depth-capped; false if unclaimable.
  bool help_dispatch(std::uint32_t idx);
  void park(Shard& s, Counters* c);
  void wake(Shard& s);

  void do_crash(ActorCell& cell, sim::Actor& a, sim::ProcessId p);
  void do_recover(ActorCell& cell, sim::Actor& a, sim::ProcessId p);
  /// True if a timer was due and dispatched (one per call: crash checks
  /// run between dispatches).
  bool fire_one_timer(ActorCell& cell, sim::Actor& a, sim::ProcessId p);
  /// Push with backpressure: helps dispatch the target while its mailbox
  /// is full; gives up only at shutdown (the message then stays "in
  /// flight" forever, like an undelivered event at the horizon).
  void push_blocking(std::uint32_t idx, const sim::Message& m);
  /// push_blocking without a transport; with one, a non-blocking push
  /// whose failure is recorded as a congestion loss. Returns whether the
  /// message was enqueued (and scheduled).
  bool enqueue(std::uint32_t idx, const sim::Message& m);

  Options opt_;
  Recorder& rec_;
  TickClock clock_;
  sim::Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<sim::Actor>> actors_;
  std::vector<std::unique_ptr<ActorCell>> cells_;
  std::vector<std::unique_ptr<Shard>> shards_;  ///< built in start()
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  bool joined_ = false;
};

}  // namespace ekbd::rt
