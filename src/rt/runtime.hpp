/// \file runtime.hpp
/// The real-concurrency engine: one OS thread per actor.
///
/// `rt::Runtime` is the second implementation of `sim::TransportIface`
/// (the first is the discrete-event `sim::Simulator`), so unmodified
/// protocol code — `core::WaitFreeDiner`, the baselines, the fd modules —
/// runs on real threads with real races. Per actor the engine provides:
///
///  * a bounded MPSC mailbox (rt/mailbox.hpp): neighbors push from their
///    threads, the owner's worker thread pops and dispatches one handler
///    at a time — handler atomicity per actor, per-channel FIFO by the
///    single-producer-per-channel argument;
///  * an owner-thread-only timer heap driven by the wall clock
///    (rt/clock.hpp): `set_timer`/`cancel_timer` are only ever called
///    from the owner's own handlers (the TransportIface contract), so
///    timers need no locks at all;
///  * crash injection at dispatch boundaries: a crash scheduled with
///    `schedule_crash` (or requested live with `request_crash`) takes
///    effect between handlers, never mid-handler — the paper's crash
///    model stops a process between atomic guarded actions. The corpse's
///    worker keeps draining its mailbox (recording kDrop) so senders
///    never block on a dead peer's full mailbox;
///  * seed-deterministic per-actor rng streams, derived exactly as the
///    simulator derives them (`Rng(seed).fork(p + 1)`), and a
///    seed-deterministic link-fault layer (drop/dup coins drawn from a
///    per-sender stream) for lossy-channel experiments — by default the
///    coins apply to detector traffic only: the dining layer rides the
///    reliable in-process channels, matching the paper's model (reliable
///    dining channels, a merely eventually-accurate detector).
///
/// Every observable transition is funneled through the `Recorder`, which
/// linearizes the run for the online monitors and the post-hoc checkers.
///
/// Park/wake protocol (lost-wakeup freedom): an idle worker publishes
/// `sleeping = true` (seq_cst), re-probes its mailbox and flags (seq_cst),
/// and only then waits on its condvar — capped at `park_cap_ns` as a
/// belt-and-braces backstop. A producer completes its push (seq_cst claim)
/// and then probes `sleeping` (seq_cst). In the single total order of
/// those four operations, either the producer sees `sleeping` and
/// notifies under the park mutex, or the worker's re-probe sees the push.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rt/clock.hpp"
#include "rt/mailbox.hpp"
#include "rt/recorder.hpp"
#include "sim/actor.hpp"
#include "sim/net_hooks.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/transport_iface.hpp"

namespace ekbd::rt {

/// Seed-deterministic link faults for the rt engine (per-sender coin
/// streams). `include_dining` extends the faults to the dining layer —
/// only meaningful for model-violation experiments, since the paper
/// assumes reliable dining channels (see docs/RUNTIME.md).
struct FaultParams {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  bool include_dining = false;

  [[nodiscard]] bool any() const { return drop_prob > 0.0 || dup_prob > 0.0; }
  [[nodiscard]] bool covers(sim::MsgLayer layer) const {
    if (layer == sim::MsgLayer::kDetector) return true;
    return include_dining &&
           (layer == sim::MsgLayer::kDining || layer == sim::MsgLayer::kTransport);
  }
};

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t tick_ns = 100'000;        ///< wall nanoseconds per tick (100 µs)
  std::size_t mailbox_capacity = 1024;    ///< per-actor, rounded up to a power of 2
  MailboxKind mailbox = MailboxKind::kLockFree;
  FaultParams faults{};
  int spin_polls = 64;                    ///< idle probes before parking
  std::uint64_t park_cap_ns = 2'000'000;  ///< max condvar wait (backstop)
};

class Runtime final : public sim::TransportIface {
 public:
  /// The recorder must outlive the runtime; it is shared with the scenario
  /// layer (monitors, post-run checkers).
  Runtime(Options opt, Recorder& recorder);
  ~Runtime() override;  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // -- topology (single-threaded, before start) --------------------------

  /// Register an actor; returns its ProcessId (0, 1, 2, ... in order).
  sim::ProcessId add_actor(std::unique_ptr<sim::Actor> actor);

  template <typename T, typename... Args>
  T* make_actor(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    add_actor(std::move(owned));
    return raw;
  }

  [[nodiscard]] std::size_t num_processes() const { return actors_.size(); }
  [[nodiscard]] sim::Actor* actor(sim::ProcessId p) {
    return actors_[static_cast<std::size_t>(p)].get();
  }

  /// Interpose an ARQ shim (rt::RtArq), mirroring Simulator::set_transport:
  /// sends on layers the transport covers divert to its logical_send, and
  /// popped MsgLayer::kTransport messages are offered to its
  /// on_physical_deliver before the actor sees them. Install before
  /// start(); not owned; nullptr detaches. While a transport is installed,
  /// raw_send never blocks on a full mailbox (the shim calls it while
  /// holding its own lock): the message is recorded as a congestion loss
  /// instead, and the ARQ's retransmission makes it good.
  void set_transport(sim::Transport* t) {
    assert(!started_.load(std::memory_order_relaxed) &&
           "install the transport before start()");
    transport_ = t;
  }
  [[nodiscard]] sim::Transport* transport() const { return transport_; }

  /// Physical send, bypassing the transport diversion: the path every
  /// message took before set_transport existed, and the path the ARQ's own
  /// segments take. Draws the sender's fault coins, records, enqueues.
  void raw_send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
                sim::MsgLayer layer);

  /// Hand a reassembled *logical* message straight to `to`'s actor. ARQ
  /// engines call this from inside `to`'s own dispatch slot (their
  /// on_physical_deliver runs on `to`'s worker thread), so handler
  /// atomicity per actor is preserved; the caller has already booked the
  /// delivery through the Recorder's logical hooks.
  void dispatch_logical(const sim::Message& m) {
    actors_[static_cast<std::size_t>(m.to)]->on_message(m);
  }

  // -- fault plan (single-threaded, before start) ------------------------

  /// Crash `p` at tick `at` (takes effect at `p`'s first dispatch boundary
  /// at or after `at`; `at` = 0 crashes before on_start, like the sim).
  void schedule_crash(sim::ProcessId p, sim::Time at);

  /// Run `fn` on `p`'s worker thread `delay` ticks from now. Callable
  /// before start or from `p`'s own handlers (the driver's scheduling
  /// loop); never runs once `p` has crashed.
  void call_after(sim::ProcessId p, sim::Time delay, std::function<void()> fn);

  // -- execution ---------------------------------------------------------

  /// Launch all worker threads. The tick clock is rebased here: tick 0 is
  /// "now", setup cost never eats into the horizon.
  void start();

  /// Ask every worker to stop at its next dispatch boundary and join the
  /// threads. Messages still in flight stay in flight (the books keep
  /// them in transit, like undelivered events at the sim's horizon).
  void stop_and_join();

  /// start() + sleep until tick `horizon` + stop_and_join(), then stamp
  /// the trace end time. The whole-run convenience the scenario uses.
  void run_for(sim::Time horizon);

  // -- live queries (any thread) -----------------------------------------

  /// Crash `p` at its next dispatch boundary (live fault injection from
  /// tests or a chaos driver).
  void request_crash(sim::ProcessId p);

  [[nodiscard]] bool crashed(sim::ProcessId p) const {
    return workers_[static_cast<std::size_t>(p)]->crashed.load(std::memory_order_acquire);
  }
  /// Tick at which `p` crashed (-1 if alive).
  [[nodiscard]] sim::Time crash_time(sim::ProcessId p) const {
    return workers_[static_cast<std::size_t>(p)]->crash_tick.load(std::memory_order_acquire);
  }
  /// Crash times for all processes, indexed by id (-1 = alive) — the shape
  /// the property checkers take.
  [[nodiscard]] std::vector<sim::Time> crash_times() const;

  [[nodiscard]] const TickClock& clock() const { return clock_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] Recorder& recorder() { return rec_; }

  // -- sim::TransportIface -----------------------------------------------

  void send(sim::ProcessId from, sim::ProcessId to, const sim::Payload& payload,
            sim::MsgLayer layer) override;
  sim::TimerId set_timer(sim::ProcessId owner, sim::Time delay) override;
  void cancel_timer(sim::ProcessId owner, sim::TimerId id) override;
  [[nodiscard]] sim::Time now() const override {
    return started_.load(std::memory_order_acquire) ? clock_.now_ticks() : 0;
  }
  sim::Rng& actor_rng(sim::ProcessId p) override {
    return *workers_[static_cast<std::size_t>(p)]->rng;
  }

 private:
  struct TimerEntry {
    sim::Time at = 0;
    sim::TimerId id = 0;
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      return a.at > b.at || (a.at == b.at && a.id > b.id);
    }
  };

  struct Worker {
    std::unique_ptr<Mailbox> mailbox;
    std::thread thread;

    // Owner-thread-only state (or pre-start, single-threaded):
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers;
    std::unordered_set<sim::TimerId> active;  ///< armed actor timers
    std::unordered_map<sim::TimerId, std::function<void()>> calls;
    sim::TimerId next_timer_id = 1;
    std::unique_ptr<sim::Rng> rng;        ///< Rng(seed).fork(p + 1)
    std::unique_ptr<sim::Rng> fault_rng;  ///< per-sender drop/dup coins
    sim::Time crash_at = -1;              ///< scheduled crash tick (-1 = none)

    // Shared state:
    std::atomic<bool> crashed{false};
    std::atomic<sim::Time> crash_tick{-1};
    std::atomic<bool> crash_req{false};
    std::atomic<bool> sleeping{false};
    std::mutex park;
    std::condition_variable park_cv;
  };

  void worker_loop(sim::ProcessId p);
  void do_crash(Worker& w, sim::Actor& a, sim::ProcessId p);
  /// True if a timer was due and dispatched (one per call: crash checks
  /// run between dispatches).
  bool fire_one_timer(Worker& w, sim::Actor& a, sim::ProcessId p);
  void park(Worker& w);
  /// Push with backpressure: yields while the mailbox is full; gives up
  /// only at shutdown (the message then stays "in flight" forever, like
  /// an undelivered event at the horizon).
  void push_blocking(Worker& w, const sim::Message& m);
  /// push_blocking without a transport; with one, a non-blocking push
  /// whose failure is recorded as a congestion loss. Returns whether the
  /// message was enqueued.
  bool enqueue(Worker& w, const sim::Message& m);
  void wake(Worker& w);

  Options opt_;
  Recorder& rec_;
  TickClock clock_;
  sim::Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<sim::Actor>> actors_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  bool joined_ = false;
};

}  // namespace ekbd::rt
