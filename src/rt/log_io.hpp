/// \file log_io.hpp
/// Recorder log shipping: streaming on-disk serialization of one node's
/// observable history, and the merge/rebuild machinery that turns a set
/// of shipped per-node logs back into the Trace + EventLog + Network
/// books every checker and the MonitorHub consume.
///
/// The socket engine's node processes die for real (SIGKILL), so the
/// writer is streaming and crash-tolerant: one checksummed codec frame
/// per record, flushed as written — killing a node mid-record loses at
/// most that record, and the loader simply stops at the first bad frame
/// and marks the recording truncated. No recovery pass, no index, no
/// rewrite-on-close.
///
/// File layout: a plain concatenation of sim::codec frames —
/// kEvent (one sim::LoggedEvent), kTrace (one dining trace record:
/// at i64, process i32, kind u8), and an optional kEndTime trailer
/// (i64) written by a node that shut down cleanly.
///
/// Merging: per-node recordings are concatenated and stable-sorted by
/// timestamp. All nodes stamp ticks against the *same* orchestrator-
/// chosen CLOCK_MONOTONIC epoch (TickClock::rebase_to_epoch), and the
/// socket engine runs nanosecond ticks, so causally ordered cross-node
/// events (a send and its delivery) carry strictly increasing stamps and
/// the merged order is a linearization of the run. The orchestrator's
/// ground-truth crash times are inserted as kCrash events (and kCrashed
/// trace records) during the merge — a SIGKILLed process cannot write
/// its own obituary.
#pragma once

#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dining/trace.hpp"
#include "obs/monitors.hpp"
#include "rt/segment.hpp"
#include "sim/codec.hpp"
#include "sim/event_log.hpp"
#include "sim/network.hpp"

namespace ekbd::rt {

/// One node's shipped history (or the cluster-wide merge of them).
struct Recording {
  std::vector<sim::LoggedEvent> events;
  std::vector<dining::TraceEvent> trace;
  sim::Time end_time = -1;  ///< kEndTime trailer; -1 if the node died
  bool truncated = false;   ///< file ended mid-frame (killed mid-write)
};

/// Streaming log writer. Implements the Recorder's two streaming hats
/// (EventSink + TraceObserver), so a node wires it with
/// `rec.set_event_sink(&w); rec.set_trace_observer(&w)` and every record
/// hits the disk before the next dispatch.
class LogWriter final : public sim::EventSink, public dining::TraceObserver {
 public:
  explicit LogWriter(const std::string& path);
  ~LogWriter() override;

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// False if the file could not be opened or a write failed.
  [[nodiscard]] bool ok() const { return file_ != nullptr && !failed_; }

  void on_event(const sim::LoggedEvent& ev) override;
  void on_trace_event(const dining::TraceEvent& ev) override;

  /// Clean-shutdown trailer: the run horizon (written once, at exit).
  void append_end_time(sim::Time t);

  void close();

 private:
  void write_frame(std::size_t frame_len);

  std::FILE* file_ = nullptr;
  bool failed_ = false;
  std::uint8_t buf_[sim::codec::kMaxFrameSize] = {};
};

/// Load one shipped log. Unreadable files come back empty and truncated;
/// a file that ends mid-frame (the writer was SIGKILLed) yields every
/// record before the tear with `truncated` set.
[[nodiscard]] Recording load_recording(const std::string& path);

/// Merge per-node recordings into one linearization: concatenate,
/// stable-sort by timestamp (stable — each node's own order is already a
/// valid local history), and insert the orchestrator's ground-truth
/// crash records. `end_time` is the max of the parts' trailers and the
/// last merged record.
[[nodiscard]] Recording merge_recordings(
    const std::vector<Recording>& parts,
    const std::vector<std::pair<sim::ProcessId, sim::Time>>& crashes);

/// Drive a merged recording through the three books exactly as a live
/// run would: every LoggedEvent goes to `hub`'s EventSink hat and to the
/// Network's logical books (which fire the hub's NetworkWatch hat —
/// `net`'s watch is pointed at `hub`), then the trace records replay
/// through `trace` with the hub observing. After this returns,
/// `hub.agreement_failures(trace, graph, net)` compares post-hoc
/// checkers against the rebuilt online verdicts. Optionally also appends
/// every event to `log`.
void rebuild(const Recording& rec, obs::MonitorHub& hub, sim::Network& net,
             dining::Trace& trace, sim::EventLog* log = nullptr);

/// Apply one logged event to the network books exactly as `rebuild` (and
/// the live single-mutex recorder) does: sends and injected duplicates
/// book through `logical_sent` — firing the attached NetworkWatch —
/// deliveries/drops/losses settle through `logical_delivered`, and a
/// crash updates `crashed`, the set from which every later send's
/// target-crashed flag is re-derived. This is the shared per-event step
/// of the offline rebuild and the streaming recorder's collector.
void apply_event(const sim::LoggedEvent& ev, sim::Network& net,
                 std::set<sim::ProcessId>& crashed);

/// One segment's pending records: drained from a `RecorderSegment` but
/// not yet merged; `head` is the merge cursor. Records within a pool are
/// already ordered by key (the per-segment monotonic clamp).
struct SegmentPool {
  std::vector<SegmentRecord> recs;
  std::size_t head = 0;
};

/// K-way merge of per-segment pools: invokes `apply` for every record
/// with key <= `horizon` in (key, merge_class, segment index) order,
/// advancing the pool cursors; returns how many records were consumed.
/// The streaming collector calls this once per window with the min
/// worker watermark as the horizon; the final drain passes INT64_MAX.
std::size_t merge_segments(std::vector<SegmentPool>& pools, std::int64_t horizon,
                           const std::function<void(const SegmentRecord&)>& apply);

}  // namespace ekbd::rt
