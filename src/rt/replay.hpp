/// \file replay.hpp
/// Deterministic replay of a recorded rt run into fresh monitors.
///
/// A concurrent execution cannot be re-executed bit-for-bit, but its
/// *linearization* can: the Recorder's EventLog + Trace capture the total
/// order the monitors saw live. `replay` feeds that order through a fresh
/// `obs::MonitorHub`, synthesizing the NetworkWatch stream (per-pair
/// occupancy, high-water marks, sends-to-crashed) from the logged events —
/// the same bookkeeping `sim::Network` does, replayed from its own output.
///
/// Guarantee (asserted by the rt test suite): replaying the same recording
/// yields monitor verdicts identical to the live hub's, run after run.
/// That is the reproducibility story of the rt engine — seeds make the
/// *inputs* deterministic, recordings make the *analysis* deterministic.
#pragma once

#include "dining/trace.hpp"
#include "obs/monitors.hpp"
#include "sim/event_log.hpp"

namespace ekbd::rt {

/// Replay a recorded run into `hub` (which must be freshly constructed).
/// Events are replayed first, then the scheduling trace; the hub's
/// monitors consume disjoint streams, so the grouping does not affect
/// verdicts relative to the live interleaving.
void replay(const sim::EventLog& log, const dining::Trace& trace, obs::MonitorHub& hub);

}  // namespace ekbd::rt
